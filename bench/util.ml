(* Shared helpers for the benchmark harness: wall-clock timing with
   repetitions, and aligned table printing. *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, (Unix.gettimeofday () -. t0) *. 1000.0)

(* median of [reps] runs, milliseconds *)
let time_median ?(reps = 5) f =
  let samples =
    List.init reps (fun _ -> snd (time_once f)) |> List.sort compare
  in
  List.nth samples (reps / 2)

(* minimum of [reps] runs, milliseconds — the robust estimator for
   pass/fail gates: scheduler noise only ever adds time, so the min is
   the closest sample to the true cost on a loaded CI box *)
let time_min ?(reps = 5) f =
  List.init reps (fun _ -> snd (time_once f))
  |> List.fold_left min infinity

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let table ~columns rows =
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length c) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
      cells;
    print_newline ()
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let fms ms = Printf.sprintf "%.2f" ms
let fint = string_of_int
let ffloat f = Printf.sprintf "%.2f" f

let note fmt = Printf.printf ("  " ^^ fmt ^^ "\n")

(* ------------------------------------------------------------------ *)
(* BENCH_*.json emission. Creates missing parent directories instead of
   dying with a bare [Sys_error], and names the offending path when the
   file still cannot be opened (e.g. the parent exists but is a file). *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_json path fields =
  mkdir_p (Filename.dirname path);
  let oc =
    try open_out path
    with Sys_error e ->
      failwith
        (Printf.sprintf "write_json: cannot open %S for writing (%s)" path e)
  in
  output_string oc "{\n";
  List.iteri
    (fun i (k, value) ->
      Printf.fprintf oc "  \"%s\": %s%s\n" k value
        (if i = List.length fields - 1 then "" else ","))
    fields;
  output_string oc "}\n";
  close_out oc
