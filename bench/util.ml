(* Shared helpers for the benchmark harness: wall-clock timing with
   repetitions, and aligned table printing. *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, (Unix.gettimeofday () -. t0) *. 1000.0)

(* median of [reps] runs, milliseconds *)
let time_median ?(reps = 5) f =
  let samples =
    List.init reps (fun _ -> snd (time_once f)) |> List.sort compare
  in
  List.nth samples (reps / 2)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let table ~columns rows =
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length c) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
      cells;
    print_newline ()
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let fms ms = Printf.sprintf "%.2f" ms
let fint = string_of_int
let ffloat f = Printf.sprintf "%.2f" f

let note fmt = Printf.printf ("  " ^^ fmt ^^ "\n")
