(* T1 — Table 1: the GCM <-> F-logic mapping, exercised as a round trip
   over every core expression plus a throughput figure.

   E2 — Example 2: partial-order integrity constraints over generated
   relations with injected violations; witnesses must appear iff
   injected, and the transitivity check's cost grows with |R|^2-ish
   work.

   E3 — Example 3: cardinality constraints with injected violations. *)

open Kind
module Molecule = Flogic.Molecule
module Constraints = Gcm.Constraints

let t = Logic.Term.sym

let t1 () =
  Util.header "T1  Table 1: GCM core expressions <-> F-logic molecules";
  let samples =
    [
      Gcm.Decl.Instance (t "x", t "c");
      Gcm.Decl.Subclass (t "c1", t "c2");
      Gcm.Decl.Method (t "c", "m", t "cm");
      Gcm.Decl.Method_inst (t "x", "m", t "y");
      Gcm.Decl.Relation ("r", [ ("a1", t "c1"); ("a2", t "c2") ]);
      Gcm.Decl.Relation_inst ("r", [ ("a1", t "x1"); ("a2", t "x2") ]);
    ]
  in
  Util.table ~columns:[ "GCM expression"; "F-logic molecule"; "round trip" ]
    (List.map
       (fun d ->
         let m = Gcm.Decl.to_molecule d in
         [
           Gcm.Decl.to_string d;
           Molecule.to_string m;
           string_of_bool (Gcm.Decl.of_molecule m = Some d);
         ])
       samples);
  let n = 100_000 in
  let ms =
    Util.time_median (fun () ->
        for _ = 1 to n do
          List.iter
            (fun d -> ignore (Gcm.Decl.of_molecule (Gcm.Decl.to_molecule d)))
            samples
        done)
  in
  Util.note "round-trip throughput: %.1f M expressions/s"
    (float_of_int (n * List.length samples) /. ms /. 1000.0)

(* random preorder data with optional injected violations *)
let po_workload ~nodes ~seed ~inject =
  let rng = Random.State.make [| seed |] in
  let name k = Printf.sprintf "n%d" k in
  let member =
    List.init nodes (fun k -> Molecule.fact (Molecule.isa (t (name k)) (t "node")))
  in
  (* a valid partial order: reflexive edges + the order on indices
     restricted to a random subset closed under transitivity *)
  let refl =
    List.init nodes (fun k ->
        Molecule.fact (Molecule.pred "r" [ t (name k); t (name k) ]))
  in
  let chains = ref [] in
  for i = 0 to nodes - 1 do
    for j = i + 1 to nodes - 1 do
      if Random.State.int rng 100 < 60 then
        chains := Molecule.fact (Molecule.pred "r" [ t (name i); t (name j) ]) :: !chains
    done
  done;
  (* close transitively so the clean workload is genuinely consistent *)
  let pairs =
    List.filter_map
      (fun (rl : Molecule.rule) ->
        match rl.Molecule.heads with
        | [ Molecule.Pred a ] -> (
          match a.Logic.Atom.args with
          | [ x; y ] -> Some (Logic.Term.to_string x, Logic.Term.to_string y)
          | _ -> None)
        | _ -> None)
      !chains
  in
  let closed = Domain_map.Closure.tc pairs in
  let closure_facts =
    List.map (fun (x, y) -> Molecule.fact (Molecule.pred "r" [ t x; t y ])) closed
  in
  let violations =
    if inject = 0 then []
    else
      List.init inject (fun k ->
          (* break antisymmetry with back edges *)
          Molecule.fact
            (Molecule.pred "r" [ t (name ((k + 1) mod nodes)); t (name 0) ]))
  in
  member @ refl @ closure_facts @ violations

let e2 () =
  Util.header "E2  Example 2: partial-order constraints (wrc / wtc / was)";
  let po = Constraints.partial_order ~cls:"node" ~rel:"r" in
  let rows =
    List.concat_map
      (fun nodes ->
        List.map
          (fun inject ->
            let facts = po_workload ~nodes ~seed:(nodes + inject) ~inject in
            let db = ref (Datalog.Database.create ()) in
            let ms =
              Util.time_median ~reps:3 (fun () ->
                  db := Flogic.Fl_program.run (Flogic.Fl_program.make (facts @ po)))
            in
            let ws = Flogic.Ic.violations !db in
            let edge_count = Datalog.Database.count !db "r" in
            [
              Util.fint nodes;
              Util.fint edge_count;
              Util.fint inject;
              Util.fint (List.length ws);
              string_of_bool ((ws = []) = (inject = 0));
              Util.fms ms;
            ])
          [ 0; 3 ])
      [ 10; 20; 40 ]
  in
  Util.table
    ~columns:
      [ "nodes"; "|r|"; "injected"; "witnesses"; "sound"; "check ms" ]
    rows;
  Util.note "shape check: witnesses appear iff violations were injected;";
  Util.note "cost grows superlinearly in |r| (the wtc join is |r|^2-ish)."

let e3 () =
  Util.header "E3  Example 3: cardinality constraints on has(neuron, axon)";
  let sg = Flogic.Signature.declare "has" [ "whole"; "part" ] Flogic.Signature.empty in
  let card =
    Constraints.cardinality ~sg ~rel:"has" ~counted:"whole" ~per:[ "part" ]
      ~exactly:1 ()
    @ Constraints.cardinality ~sg ~rel:"has" ~counted:"part" ~per:[ "whole" ]
        ~max_count:2 ()
  in
  let workload ~neurons ~inject_shared ~inject_triple ~seed =
    let rng = Random.State.make [| seed |] in
    let facts = ref [] in
    for k = 1 to neurons do
      let axons = 1 + Random.State.int rng 2 in
      for a = 1 to axons do
        facts :=
          Molecule.fact
            (Molecule.Rel_val
               ( "has",
                 [
                   ("whole", t (Printf.sprintf "n%d" k));
                   ("part", t (Printf.sprintf "ax%d_%d" k a));
                 ] ))
          :: !facts
      done
    done;
    for k = 1 to inject_shared do
      facts :=
        Molecule.fact
          (Molecule.Rel_val
             ( "has",
               [ ("whole", t (Printf.sprintf "n%d_dup" k)); ("part", t (Printf.sprintf "ax%d_1" k)) ] ))
        :: !facts
    done;
    for k = 1 to inject_triple do
      let n = Printf.sprintf "nt%d" k in
      for a = 1 to 3 do
        facts :=
          Molecule.fact
            (Molecule.Rel_val
               ("has", [ ("whole", t n); ("part", t (Printf.sprintf "%s_ax%d" n a)) ]))
          :: !facts
      done
    done;
    !facts
  in
  let rows =
    List.map
      (fun (neurons, shared, triple) ->
        let facts = workload ~neurons ~inject_shared:shared ~inject_triple:triple ~seed:7 in
        let db = ref (Datalog.Database.create ()) in
        let ms =
          Util.time_median ~reps:3 (fun () ->
              db :=
                Flogic.Fl_program.run
                  (Flogic.Fl_program.make ~signature:sg (facts @ card)))
        in
        let by = Flogic.Ic.by_constraint !db in
        let get n = match List.assoc_opt n by with Some k -> k | None -> 0 in
        [
          Util.fint neurons;
          Util.fint shared;
          Util.fint triple;
          Util.fint (get "w_card_ne");
          Util.fint (get "w_card_hi");
          string_of_bool (get "w_card_ne" >= shared && get "w_card_hi" = triple);
          Util.fms ms;
        ])
      [ (50, 0, 0); (50, 4, 0); (50, 0, 3); (200, 6, 5); (800, 10, 10) ]
  in
  Util.table
    ~columns:
      [
        "neurons"; "shared axons"; "3-axon cells"; "w_card_ne"; "w_card_hi";
        "all caught"; "ms";
      ]
    rows
