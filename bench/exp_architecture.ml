(* F2 — Figure 2: the mediator architecture at work.
   End-to-end federation bench: register k sources and run the Section 5
   query; compare the model-based mediator against the structural
   baseline as the federation grows. The claim whose shape must hold:
   the model-based mediator touches only the anchored sources, the
   baseline broadcasts to all k, so the gap grows with k.

   Q5 — Section 5: the four-step query plan, per-step costs and the
   three ablations (no index / no pushdown / no lub). *)

open Kind
module M = Mediation.Mediator
module S5 = Mediation.Section5
module B = Mediation.Baseline

let federation ~config ~distractors params =
  let med = Neuro.Sources.standard_mediator ~config params in
  for i = 1 to distractors do
    match M.register_source med (Neuro.Sources.distractor params ~index:i) with
    | Ok () -> ()
    | Error e -> failwith e
  done;
  med

let run_model med =
  match
    S5.calcium_binding_query med ~organism:"rat"
      ~transmitting_compartment:"parallel_fiber" ~ion:"calcium" ()
  with
  | Ok o -> o
  | Error e -> failwith ("model-based query failed: " ^ e)

let run_baseline med =
  match
    B.calcium_binding_query med ~organism:"rat"
      ~transmitting_compartment:"parallel_fiber" ~ion:"calcium" ()
  with
  | Ok o -> o
  | Error e -> failwith ("baseline query failed: " ^ e)

let f2 () =
  Util.header "F2  Figure 2: model-based vs structural mediation as the federation grows";
  let params = { Neuro.Sources.seed = 5; scale = 40 } in
  let rows =
    List.map
      (fun distractors ->
        let k = 3 + distractors in
        let med = federation ~config:M.default_config ~distractors params in
        let o = run_model med in
        let ms_model = Util.time_median ~reps:3 (fun () -> ignore (run_model med)) in
        let b = run_baseline med in
        let ms_base = Util.time_median ~reps:3 (fun () -> ignore (run_baseline med)) in
        [
          Util.fint k;
          Util.fint (List.length o.S5.sources_contacted);
          Util.fint o.S5.tuples_moved;
          Util.fms ms_model;
          Util.fint (List.length b.B.sources_contacted);
          Util.fint b.B.tuples_moved;
          Util.fms ms_base;
          Printf.sprintf "%.1fx"
            (float_of_int b.B.tuples_moved /. float_of_int (max 1 o.S5.tuples_moved));
        ])
      [ 0; 2; 5; 10; 20 ]
  in
  Util.table
    ~columns:
      [
        "sources"; "mbm srcs"; "mbm tuples"; "mbm ms"; "base srcs";
        "base tuples"; "base ms"; "tuple gap";
      ]
    rows;
  Util.note "shape check: mbm contacts a constant 2 sources; the baseline's";
  Util.note "tuples and latency grow with every registered source."

let q5 () =
  Util.header "Q5  Section 5: the four-step query plan and its ablations";
  let params = { Neuro.Sources.seed = 5; scale = 60 } in
  let med = federation ~config:M.default_config ~distractors:5 params in
  let o = run_model med in
  Util.note "per-step report (full architecture, 8-source federation):";
  Util.table ~columns:[ "step"; "ms"; "tuples"; "detail" ]
    (List.map
       (fun (s : S5.step_report) ->
         [ s.S5.label; Util.fms s.S5.duration_ms; Util.fint s.S5.tuples; s.S5.note ])
       o.S5.steps);
  print_newline ();
  Util.note "ablations (same query, one ingredient removed at a time):";
  let variant label config =
    let med = federation ~config ~distractors:5 params in
    let o = run_model med in
    let ms = Util.time_median ~reps:3 (fun () -> ignore (run_model med)) in
    let tree_nodes =
      List.fold_left
        (fun a (_, t) -> a + Mediation.Aggregate.size t)
        0 o.S5.distributions
    in
    [
      label;
      Util.fint (List.length o.S5.sources_contacted);
      Util.fint o.S5.tuples_moved;
      Util.fint tree_nodes;
      Util.fms ms;
    ]
  in
  Util.table
    ~columns:[ "variant"; "sources"; "tuples moved"; "tree nodes"; "ms" ]
    [
      variant "full architecture" M.default_config;
      variant "no semantic index" { M.default_config with M.use_semantic_index = false };
      variant "no selection pushdown" { M.default_config with M.pushdown = false };
      variant "no lub (whole-map root)" { M.default_config with M.use_lub = false };
    ];
  Util.note "shape check: each ablation is strictly worse on its own axis —";
  Util.note "index cuts sources, pushdown cuts tuples, lub cuts the tree."

(* registration throughput: how fast can sources join the federation? *)
let registration () =
  Util.header "F2b Registration throughput (wrapper -> wire -> mediator)";
  let params = { Neuro.Sources.seed = 5; scale = 40 } in
  let rows =
    List.map
      (fun scale ->
        let p = { params with Neuro.Sources.scale } in
        let src = Neuro.Sources.ncmir p in
        let doc = Wrapper.Source.export_xml src in
        let xml_str = Xmlkit.Print.to_string doc in
        let ms_export =
          Util.time_median (fun () -> ignore (Wrapper.Source.export_xml src))
        in
        let ms_reimport =
          Util.time_median (fun () ->
              let med = M.create Neuro.Anatom.full in
              match
                M.register_xml med ~format:"gcm-xml" ~source_name:"N2"
                  (Xmlkit.Parse.parse_exn xml_str)
              with
              | Ok () -> ()
              | Error e -> failwith e)
        in
        [
          Util.fint scale;
          Util.fint (String.length xml_str);
          Util.fms ms_export;
          Util.fms ms_reimport;
        ])
      [ 20; 50; 100; 200 ]
  in
  Util.table
    ~columns:[ "scale"; "wire bytes"; "export ms"; "parse+register ms" ]
    rows
