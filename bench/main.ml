(* The benchmark harness: one experiment per entry of DESIGN.md's
   experiment index. Running with no arguments executes everything;
   passing experiment ids (f1 f2 f3 t1 e2 e3 e4 q5 p1 a1 a2 micro)
   selects a subset.

   Results are qualitative-shape reproductions: the paper (an
   architecture paper) reports no absolute numbers, so EXPERIMENTS.md
   records, per experiment, the claim whose shape must hold and the
   measured series from this harness. *)

let experiments =
  [
    ("f1", "Figure 1 domain map + closure scaling", Exp_figures.f1);
    ("f2", "Figure 2 architecture: model-based vs structural", Exp_architecture.f2);
    ("f2b", "registration throughput over the wire", Exp_architecture.registration);
    ("f3", "Figure 3 dynamic registration", Exp_figures.f3);
    ("t1", "Table 1 GCM <-> FL round trip", Exp_constraints.t1);
    ("e2", "Example 2 partial-order constraints", Exp_constraints.e2);
    ("e3", "Example 3 cardinality constraints", Exp_constraints.e3);
    ("e4", "Example 4 protein_distribution view", Exp_views.e4);
    ("q5", "Section 5 query plan + ablations", Exp_architecture.q5);
    ("p1", "Proposition 1 decidability guard + EL scaling", Exp_reasoning.p1);
    ("a1", "engine ablation: semi-naive vs naive", Exp_engine.a1);
    ("a2", "plug-in overhead across dialects", Exp_engine.a2);
    ("a3", "tabling ablation: top-down vs materialization", Exp_engine.a3);
    ("a4", "incremental maintenance vs re-materialization", Exp_engine.a4);
    ("inc", "delta-driven view maintenance vs full rebuild", Exp_incremental.run);
    ("abs", "dead-rule pruning via abstract interpretation", Exp_absint.run);
    ("q5b", "generic federated planner vs materialize-and-query", Exp_planner.q5b);
    ("dm", "Section 4 execution modes: ICs vs assertions", Exp_modes.run);
    ("join", "join-kernel: compiled plans vs interpreted", Exp_join.run);
    ("faults", "fault-injection runtime: overhead and fast-fail", Exp_faults.run);
    ("join-smoke", "join-kernel regression gate vs BENCH_join.json", Exp_join.smoke);
    ("cost", "cardinality/cost oracle vs greedy planner", Exp_cost.run);
    ("cost-smoke", "cost-oracle regression gate (self-contained)", Exp_cost.smoke);
    ("contain", "semantic minimization: minimized vs original programs", Exp_contain.run);
    ("contain-smoke", "minimization regression gate (self-contained)", Exp_contain.smoke);
    ("par", "domain-parallel joins + concurrent gather at 1/2/4 domains", Exp_parallel.run);
    ("par-smoke", "parallel-evaluation gate (self-contained, core-aware)", Exp_parallel.smoke);
    ("recovery", "crash recovery: checkpoint + WAL replay vs cold rebuild", Exp_recovery.run);
    ("recovery-smoke", "recovery gate: replay beats cold rebuild (self-contained)", Exp_recovery.smoke);
    ("micro", "Bechamel micro-benchmarks", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> ids
    | _ ->
      (* the smoke gates exit non-zero on regression (and join-smoke
         needs a committed reference file), so they only run when
         asked for *)
      List.filter_map
        (fun (id, _, _) ->
          if id = "join-smoke" || id = "cost-smoke" || id = "contain-smoke"
             || id = "par-smoke" || id = "recovery-smoke"
          then None
          else Some id)
        experiments
  in
  Printf.printf
    "KIND benchmark harness — model-based mediation with domain maps (ICDE 2001)\n";
  List.iter
    (fun id ->
      match List.find_opt (fun (i, _, _) -> i = id) experiments with
      | Some (_, _, run) -> run ()
      | None ->
        Printf.printf "unknown experiment %s (have: %s)\n" id
          (String.concat ", " (List.map (fun (i, _, _) -> i) experiments)))
    requested;
  Printf.printf "\ndone.\n"
