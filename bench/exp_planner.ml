(* Q5b — the general federated planner vs materialize-then-query.

   The Section 5 walk-through is a hand-built plan; Conjunctive is the
   generic bind-join planner over the same capability metadata. This
   experiment runs the same federated query both ways:

   - lazily, through the planner (fetch only what the bind join needs);
   - eagerly, by materializing the whole mediated object base and
     solving the query on the engine.

   Answers must agree; costs diverge as source data grows, since
   materialization pulls every source in full. *)

open Kind
module M = Mediation.Mediator
module CQ = Mediation.Conjunctive

let query_text =
  "?- N : 'SENSELAB.neurotransmission', N[organism ->> \"rat\"], \
   N[receiving_compartment ->> C], A : 'NCMIR.protein_amount', \
   A[location ->> C], A[protein_name ->> P]."

let q5b () =
  Util.header "Q5b Generic federated planner vs materialize-and-query";
  let rows =
    List.map
      (fun scale ->
        let med =
          Neuro.Sources.standard_mediator { Neuro.Sources.seed = 9; scale }
        in
        let lazy_answers = ref 0 and lazy_tuples = ref 0 in
        let ms_lazy =
          Util.time_median ~reps:3 (fun () ->
              match CQ.run_text med query_text with
              | Ok (answers, report) ->
                lazy_answers := List.length answers;
                lazy_tuples := report.CQ.tuples_moved
              | Error e -> failwith e)
        in
        let eager_answers = ref 0 in
        let ms_eager =
          Util.time_median ~reps:3 (fun () ->
              M.invalidate med;
              match M.query_text med query_text with
              | Ok answers -> eager_answers := List.length answers
              | Error e -> failwith e)
        in
        let total_facts =
          List.fold_left
            (fun acc src ->
              acc
              + Datalog.Database.cardinal
                  (Wrapper.Store.database (Wrapper.Source.store src)))
            0 (M.sources med)
        in
        assert (!lazy_answers = !eager_answers);
        [
          Util.fint scale;
          Util.fint total_facts;
          Util.fint !lazy_answers;
          Util.fint !lazy_tuples;
          Util.fms ms_lazy;
          Util.fms ms_eager;
          Printf.sprintf "%.1fx" (ms_eager /. max 0.001 ms_lazy);
        ])
      [ 20; 40; 80; 160 ]
  in
  Util.table
    ~columns:
      [
        "scale"; "source facts"; "answers"; "lazy tuples"; "planner ms";
        "materialize ms"; "gap";
      ]
    rows;
  Util.note "shape check: the planner's cost tracks the answer set; the";
  Util.note "eager path re-pulls and closes every source's data first."
