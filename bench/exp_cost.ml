(* COST — the cardinality/cost analysis as a planning oracle: run the
   join-kernel workloads (plus one selective-join workload the greedy
   syntactic planner orders badly) with and without
   [Engine.config.cost_oracle], check the answers agree, and record
   estimate-vs-actual accuracy and analysis time. Writes
   BENCH_cost.json; [smoke] is the @cost-smoke regression gate — the
   oracle must never be more than 1.2x slower than the greedy planner,
   and must win on at least one workload. *)

open Kind
module Engine = Datalog.Engine
module Card = Analysis.Card

let v = Logic.Term.var
let s = Logic.Term.sym

let fact p args = Logic.Rule.fact (Logic.Atom.make p args)
let rule h b = Logic.Rule.make h b
let atom p args = Logic.Atom.make p args
let pos = Logic.Literal.pos

(* ------------------------------------------------------------------ *)
(* Workload: a join whose selective literal comes last syntactically.
   The greedy planner scores literals by boundness only, so it scans
   [a] (the big relation) first and filters at the very end; the
   cardinality oracle starts from [sel] (2 rows) and drives the whole
   join through index probes. *)

let sel_rules =
  [
    rule
      (atom "picked" [ v "X"; v "Z" ])
      [ pos "a" [ v "X"; v "Y" ]; pos "b" [ v "Y"; v "Z" ]; pos "sel" [ v "Z" ] ];
  ]

let sel_join ~rows =
  let classes = 200 in
  let fanout = 25 in
  let a =
    List.init rows (fun i ->
        fact "a"
          [ s (Printf.sprintf "x%d" i); s (Printf.sprintf "y%d" (i mod classes)) ])
  in
  (* every y fans out to [fanout] distinct z's: the greedy a->b->sel
     order materializes rows*fanout intermediate tuples before the
     filter; sel->b->a touches a handful *)
  let b =
    List.concat
      (List.init classes (fun i ->
           List.init fanout (fun j ->
               fact "b"
                 [
                   s (Printf.sprintf "y%d" i);
                   s (Printf.sprintf "z%d" ((i * fanout) + j));
                 ])))
  in
  let sel = [ fact "sel" [ s "z0" ]; fact "sel" [ s "z2501" ] ] in
  Datalog.Program.make_exn (sel_rules @ a @ b @ sel)

let workloads ~full =
  Exp_join.workloads ~full
  @ [ ("sel-join", sel_join ~rows:(if full then 30_000 else 6_000)) ]

(* ------------------------------------------------------------------ *)

type row = {
  name : string;
  greedy_ms : float;
  oracle_ms : float;
  analysis_ms : float;
  used : int;
  est_vs_actual : float;
  derived : int;
}

let measure_pair (name, p) =
  let t0 = Unix.gettimeofday () in
  let res = Card.analyze (Datalog.Program.rules p) in
  let oracle = Card.oracle res in
  let analysis_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let greedy_ms, rep_g = Exp_join.measure ~config:Engine.default_config p in
  let oracle_config =
    { Engine.default_config with Engine.cost_oracle = Some oracle }
  in
  let oracle_ms, rep_o = Exp_join.measure ~config:oracle_config p in
  if rep_g.Engine.derived <> rep_o.Engine.derived then
    failwith
      (Printf.sprintf
         "cost bench: oracle and greedy plans disagree on %s (%d vs %d \
          derived)"
         name rep_g.Engine.derived rep_o.Engine.derived);
  {
    name;
    greedy_ms;
    oracle_ms;
    analysis_ms;
    used = rep_o.Engine.cost_oracle_used;
    est_vs_actual = rep_o.Engine.est_vs_actual;
    derived = rep_o.Engine.derived;
  }

let run () =
  Util.header
    "COST  cardinality analysis as planning oracle: analysis-ordered vs \
     greedy joins";
  let rows = List.map measure_pair (workloads ~full:true) in
  Util.table
    ~columns:
      [
        "workload"; "derived"; "greedy-ms"; "oracle-ms"; "ratio";
        "analysis-ms"; "oracle-used"; "est/actual";
      ]
    (List.map
       (fun r ->
         [
           r.name;
           Util.fint r.derived;
           Util.fms r.greedy_ms;
           Util.fms r.oracle_ms;
           Printf.sprintf "%.2fx" (r.oracle_ms /. r.greedy_ms);
           Util.fms r.analysis_ms;
           Util.fint r.used;
           Printf.sprintf "%.2f" r.est_vs_actual;
         ])
       rows);
  let fields =
    [
      ( "experiment",
        "\"cardinality/cost analysis: oracle-ordered joins vs greedy \
         syntactic planner\"" );
      ( "protocol",
        "\"fastest of 5 repetitions per config; analysis timed once, cold; \
         est/actual is the geometric mean over finite-estimate predicates\""
      );
    ]
    @ List.concat_map
        (fun r ->
          let k = Exp_join.key r.name in
          [
            (k ^ "_greedy_ms", Printf.sprintf "%.3f" r.greedy_ms);
            (k ^ "_oracle_ms", Printf.sprintf "%.3f" r.oracle_ms);
            (k ^ "_ratio", Printf.sprintf "%.3f" (r.oracle_ms /. r.greedy_ms));
            (k ^ "_analysis_ms", Printf.sprintf "%.3f" r.analysis_ms);
            (k ^ "_oracle_used", string_of_int r.used);
            (k ^ "_est_vs_actual", Printf.sprintf "%.3f" r.est_vs_actual);
            (k ^ "_derived", string_of_int r.derived);
          ])
        rows
  in
  Exp_join.write_json "BENCH_cost.json" fields;
  Util.note "wrote BENCH_cost.json"

(* ------------------------------------------------------------------ *)
(* Smoke gate (`dune build @cost-smoke`): self-contained — both
   configurations run here and now, so no committed reference is
   needed. The oracle must stay within 1.2x of greedy everywhere (with
   a 1 ms floor so micro-jitter on trivial workloads cannot fail the
   gate) and must be strictly faster on at least one workload. *)

let smoke () =
  Util.header "COST-SMOKE  oracle-ordered joins vs greedy, trimmed workloads";
  let rows = List.map measure_pair (workloads ~full:false) in
  let failures = ref 0 in
  let wins = ref 0 in
  List.iter
    (fun r ->
      let limit = (1.2 *. r.greedy_ms) +. 1.0 in
      let ok = r.oracle_ms <= limit in
      if not ok then incr failures;
      if r.oracle_ms < r.greedy_ms then incr wins;
      Printf.printf "  %-12s greedy %s  oracle %s  limit %s  %s\n" r.name
        (Util.fms r.greedy_ms) (Util.fms r.oracle_ms) (Util.fms limit)
        (if ok then "ok" else "REGRESSION"))
    rows;
  if !wins = 0 then begin
    Printf.printf
      "  the oracle won on no workload (expected at least sel-join)\n";
    incr failures
  end;
  if !failures > 0 then begin
    Printf.printf "cost-smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  Util.note "cost-smoke passed"
