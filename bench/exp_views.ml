(* E4 — Example 4: the protein_distribution integrated view.
   Compute the mediated view over synthetic NCMIR+SENSELAB+ANATOM and
   sweep the data size; the aggregate traversal must stay linear in the
   anchored data and confined to the has_a_star region under the root. *)

open Kind
module S5 = Mediation.Section5

let e4 () =
  Util.header "E4  Example 4: protein_distribution (rat / cerebellum / ryanodine receptor)";
  let rows =
    List.map
      (fun scale ->
        let params = { Neuro.Sources.seed = 3; scale } in
        let med = Neuro.Sources.standard_mediator params in
        let tree = ref None in
        let ms =
          Util.time_median ~reps:3 (fun () ->
              match
                S5.protein_distribution med ~protein:"ryanodine_receptor"
                  ~organism:"rat" ~root:"cerebellum"
              with
              | Ok tr -> tree := Some tr
              | Error e -> failwith e)
        in
        match !tree with
        | None -> assert false
        | Some tr ->
          let ncmir_rows =
            Wrapper.Store.object_count
              (Wrapper.Source.store
                 (Option.get (Mediation.Mediator.find_source med "NCMIR")))
              ~cls:"protein_amount"
          in
          [
            Util.fint scale;
            Util.fint ncmir_rows;
            Util.fint (Mediation.Aggregate.size tr);
            Util.fint (Mediation.Aggregate.depth tr);
            Util.ffloat tr.Mediation.Aggregate.total;
            Util.fms ms;
          ])
      [ 20; 50; 100; 200; 400 ]
  in
  Util.table
    ~columns:
      [ "scale"; "NCMIR rows"; "tree nodes"; "tree depth"; "total mass"; "ms" ]
    rows;
  Util.note "shape check: tree size/depth stay constant (the region is fixed";
  Util.note "by the domain map); time grows ~linearly with the anchored rows.";
  print_newline ();
  (* the distribution itself, at the default scale — the system
     snapshot the paper points to in [GLM01] *)
  let med = Neuro.Sources.standard_mediator { Neuro.Sources.seed = 3; scale = 50 } in
  match
    S5.protein_distribution med ~protein:"ryanodine_receptor" ~organism:"rat"
      ~root:"cerebellum"
  with
  | Ok tree ->
    Util.note "distribution tree (pruned):";
    Format.printf "%a@." Mediation.Aggregate.pp (Mediation.Aggregate.prune tree)
  | Error e -> Util.note "FAILED: %s" e
