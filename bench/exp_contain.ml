(* CONTAIN — semantic rule minimization as an engine hook: run the
   join-kernel workloads (plus one workload whose rules carry
   redundant body atoms the containment analysis can drop) with and
   without [Engine.config.minimize], check the answers agree, and
   record how long the containment analysis itself takes. Writes
   BENCH_contain.json; [smoke] is the @contain-smoke regression gate —
   minimized plans must never be more than 1.1x slower than the
   untouched ones, and the analysis must stay under 10 ms per
   workload. *)

open Kind
module Engine = Datalog.Engine
module Contain = Analysis.Contain

let v = Logic.Term.var
let s = Logic.Term.sym

let fact p args = Logic.Rule.fact (Logic.Atom.make p args)
let rule h b = Logic.Rule.make h b
let atom p args = Logic.Atom.make p args
let pos = Logic.Literal.pos

(* ------------------------------------------------------------------ *)
(* Workload: joins written with redundant body atoms. [a(X, W)] folds
   onto [a(X, Y)] (W -> Y) and [b(Y, U)] onto [b(Y, Z)] (U -> Z), so
   the minimized rule does two joins where the original does four —
   the gap the containment hook is supposed to close. The join-kernel
   workloads (tc-deep, dm-closure, ivd-join) are already minimal, so
   on them the hook only has overhead to show. *)

let redundant_rules =
  [
    rule
      (atom "big" [ v "X"; v "Z" ])
      [
        pos "a" [ v "X"; v "Y" ];
        pos "a" [ v "X"; v "W" ];
        pos "b" [ v "Y"; v "Z" ];
        pos "b" [ v "Y"; v "U" ];
      ];
    rule
      (atom "wide" [ v "X" ])
      [ pos "big" [ v "X"; v "Z" ]; pos "big" [ v "X"; v "Z2" ] ];
  ]

let redundant_join ~rows =
  let classes = 60 in
  let a =
    List.init rows (fun i ->
        fact "a"
          [ s (Printf.sprintf "x%d" (i mod classes)); s (Printf.sprintf "y%d" i) ])
  in
  let b =
    List.init rows (fun i ->
        fact "b"
          [ s (Printf.sprintf "y%d" i); s (Printf.sprintf "z%d" (i mod 7)) ])
  in
  Datalog.Program.make_exn (redundant_rules @ a @ b)

let workloads ~full =
  Exp_join.workloads ~full
  @ [ ("redundant-join", redundant_join ~rows:(if full then 6_000 else 1_200)) ]

(* ------------------------------------------------------------------ *)

type row = {
  name : string;
  base_ms : float;
  min_ms : float;
  analysis_ms : float;
  atoms_minimized : int;
  derived : int;
}

let measure_pair (name, p) =
  let rules = Datalog.Program.rules p in
  (* the analysis is timed once, cold: build the context (harvesting
     ground sub facts) and minimize every rule, exactly what the hook
     does on the engine's first call *)
  let t0 = Unix.gettimeofday () in
  let ctx = Contain.make_ctx ~rules () in
  ignore (Contain.minimize ctx rules);
  let analysis_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let base_ms, rep_b = Exp_join.measure ~config:Engine.default_config p in
  let min_config =
    { Engine.default_config with Engine.minimize = Some (Contain.minimize ctx) }
  in
  let min_ms, rep_m = Exp_join.measure ~config:min_config p in
  if rep_b.Engine.derived <> rep_m.Engine.derived then
    failwith
      (Printf.sprintf
         "contain bench: minimized and original programs disagree on %s (%d \
          vs %d derived)"
         name rep_b.Engine.derived rep_m.Engine.derived);
  {
    name;
    base_ms;
    min_ms;
    analysis_ms;
    atoms_minimized = rep_m.Engine.atoms_minimized;
    derived = rep_m.Engine.derived;
  }

let run () =
  Util.header
    "CONTAIN  semantic rule minimization: containment-minimized vs original \
     programs";
  let rows = List.map measure_pair (workloads ~full:true) in
  Util.table
    ~columns:
      [
        "workload"; "derived"; "base-ms"; "minimized-ms"; "ratio";
        "analysis-ms"; "atoms-dropped";
      ]
    (List.map
       (fun r ->
         [
           r.name;
           Util.fint r.derived;
           Util.fms r.base_ms;
           Util.fms r.min_ms;
           Printf.sprintf "%.2fx" (r.min_ms /. r.base_ms);
           Util.fms r.analysis_ms;
           string_of_int r.atoms_minimized;
         ])
       rows);
  let fields =
    [
      ( "experiment",
        "\"semantic rule minimization: containment-minimized programs vs \
         originals\"" );
      ( "protocol",
        "\"fastest of 5 repetitions per config; analysis (context build + \
         minimization) timed once, cold\"" );
    ]
    @ List.concat_map
        (fun r ->
          let k = Exp_join.key r.name in
          [
            (k ^ "_base_ms", Printf.sprintf "%.3f" r.base_ms);
            (k ^ "_minimized_ms", Printf.sprintf "%.3f" r.min_ms);
            (k ^ "_ratio", Printf.sprintf "%.3f" (r.min_ms /. r.base_ms));
            (k ^ "_analysis_ms", Printf.sprintf "%.3f" r.analysis_ms);
            (k ^ "_atoms_minimized", string_of_int r.atoms_minimized);
            (k ^ "_derived", string_of_int r.derived);
          ])
        rows
  in
  Exp_join.write_json "BENCH_contain.json" fields;
  Util.note "wrote BENCH_contain.json"

(* ------------------------------------------------------------------ *)
(* Smoke gate (`dune build @contain-smoke`): self-contained — both
   configurations run here and now, so no committed reference is
   needed. Minimization must stay within 1.1x of the untouched run
   everywhere (with a 1 ms floor so micro-jitter on trivial workloads
   cannot fail the gate), the analysis itself must finish in under
   10 ms per workload, and the redundant workload must actually have
   atoms dropped. *)

let smoke () =
  Util.header
    "CONTAIN-SMOKE  containment-minimized vs original, trimmed workloads";
  let rows = List.map measure_pair (workloads ~full:false) in
  let failures = ref 0 in
  List.iter
    (fun r ->
      let limit = (1.1 *. r.base_ms) +. 1.0 in
      let ok_time = r.min_ms <= limit in
      let ok_analysis = r.analysis_ms < 10.0 in
      if not ok_time then incr failures;
      if not ok_analysis then incr failures;
      Printf.printf "  %-14s base %s  minimized %s  limit %s  analysis %s  %s\n"
        r.name (Util.fms r.base_ms) (Util.fms r.min_ms) (Util.fms limit)
        (Util.fms r.analysis_ms)
        (if ok_time && ok_analysis then "ok"
         else if not ok_time then "REGRESSION"
         else "ANALYSIS-TOO-SLOW"))
    rows;
  (match List.find_opt (fun r -> r.name = "redundant-join") rows with
  | Some r when r.atoms_minimized = 0 ->
    Printf.printf "  redundant-join: no atoms dropped (expected > 0)\n";
    incr failures
  | _ -> ());
  if !failures > 0 then begin
    Printf.printf "contain-smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  Util.note "contain-smoke passed"
