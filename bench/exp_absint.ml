(* ABS — dead-rule pruning and the cost of the abstract interpreter.

   The workload is a transitive closure over 400 chains (the live
   part) plus a block of expensive dead rules: each joins tc with
   itself — quadratic in path length — and then filters through a
   predicate that is provably empty or a constant that provably never
   occurs. The abstract interpreter (Analysis.Absint) proves the block
   dead from the rules and the EDB alone, so evaluation with the
   [prune] hook installed never pays for the big joins.

   Measured claims, recorded in BENCH_absint.json:
   - pruned materialization is faster than unpruned (the speedup), with
     the analysis itself costing a fraction of one materialization;
   - pruning is semantics-preserving (pruned model == unpruned model);
   - linting the sample corpus (which now runs the emptiness and
     provenance fixpoints) stays in single-digit milliseconds. *)

open Kind
module Engine = Datalog.Engine
module Database = Datalog.Database
module Absint = Analysis.Absint
module D = Analysis.Diagnostic

let v = Logic.Term.var
let s = Logic.Term.sym
let rule = Logic.Rule.make
let atom = Logic.Atom.make
let pos = Logic.Literal.pos

let chains = 400
let len = 12
let dead_rules = 8

let node c k = s (Printf.sprintf "c%d_n%d" c k)

let edges () =
  atom "flag" [ s "on" ]
  :: List.concat_map
       (fun c ->
         List.init len (fun k -> atom "edge" [ node c k; node c (k + 1) ]))
       (List.init chains Fun.id)

let live_rules =
  [
    rule (atom "tc" [ v "X"; v "Y" ]) [ pos "edge" [ v "X"; v "Y" ] ];
    rule
      (atom "tc" [ v "X"; v "Y" ])
      [ pos "tc" [ v "X"; v "Z" ]; pos "edge" [ v "Z"; v "Y" ] ];
  ]

(* Each dead rule starts from the expensive self-join of tc; half are
   killed by an empty predicate, half by a ground constant foreign to
   the (small) flag relation's only column — edge's node column widens
   past the constant cap to ⊤, so a foreign constant there would
   rightly NOT be refuted. Literal order puts the join first on
   purpose: a syntactic "is some body predicate empty?" check placed
   after join planning would still pay for the reordering — the
   abstract interpreter refutes the rule before the engine ever sees
   it. *)
let dead_block =
  List.init dead_rules (fun i ->
      let head = atom (Printf.sprintf "dead%d" i) [ v "X"; v "Y" ] in
      let join = [ pos "tc" [ v "X"; v "Z" ]; pos "tc" [ v "Z"; v "Y" ] ] in
      if i mod 2 = 0 then rule head (join @ [ pos "never" [ v "Y" ] ])
      else rule head (join @ [ pos "flag" [ s "ghost" ] ]))

let write_json = Util.write_json

let read_sample name =
  let path = Filename.concat "samples" name in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    Some src
  end

let lint_sample src =
  let parsed = Flogic.Fl_parser.parse_program_exn src in
  let program =
    Flogic.Fl_program.make ~signature:parsed.Flogic.Fl_parser.signature
      parsed.Flogic.Fl_parser.rules
  in
  Analysis.Kindlint.lint_program
    ~positions:parsed.Flogic.Fl_parser.rule_positions program

let run () =
  Util.header "ABS  Dead-rule pruning: abstract interpretation pays for itself";
  let rules = live_rules @ dead_block in
  let p = Datalog.Program.make_exn rules in
  let edb = Database.of_facts (edges ()) in
  let ms_analysis =
    Util.time_median ~reps:5 (fun () -> ignore (Absint.prune rules edb))
  in
  let surviving = Absint.prune rules edb in
  let pruned_count = List.length rules - List.length surviving in
  let config = { Engine.default_config with prune = Some Absint.prune } in
  let ms_unpruned =
    Util.time_median ~reps:3 (fun () -> ignore (Engine.materialize p edb))
  in
  let ms_pruned =
    Util.time_median ~reps:3 (fun () ->
        ignore (Engine.materialize ~config p edb))
  in
  let full = Engine.materialize p edb in
  let pruned_db = Engine.materialize ~config p edb in
  let equal =
    Database.cardinal full = Database.cardinal pruned_db
    && List.for_all (Database.mem pruned_db) (Database.all_facts full)
  in
  let speedup = ms_unpruned /. max 0.001 ms_pruned in
  Util.table
    ~columns:[ "variant"; "ms"; "rules"; "facts" ]
    [
      [
        "unpruned";
        Util.fms ms_unpruned;
        Util.fint (List.length rules);
        Util.fint (Database.cardinal full);
      ];
      [
        "pruned";
        Util.fms ms_pruned;
        Util.fint (List.length surviving);
        Util.fint (Database.cardinal pruned_db);
      ];
    ];
  Util.note "analysis: %.2f ms for %d rules (%d proved dead)" ms_analysis
    (List.length rules) pruned_count;
  Util.note "speedup: %.1fx; models equal: %b" speedup equal;
  (* lint wall-time over the sample corpus, now that the deep passes
     run the emptiness and provenance fixpoints *)
  let lint_ms name =
    match read_sample name with
    | None ->
      Util.note "sample %s not found (run from the repo root)" name;
      (0.0, 0)
    | Some src ->
      let diags = lint_sample src in
      (Util.time_median ~reps:5 (fun () -> ignore (lint_sample src)),
       List.length diags)
  in
  let broken_ms, broken_n = lint_ms "broken.flp" in
  let spines_ms, spines_n = lint_ms "spines.flp" in
  Util.note "kindlint: broken.flp %.2f ms (%d findings), spines.flp %.2f ms (%d)"
    broken_ms broken_n spines_ms spines_n;
  write_json "BENCH_absint.json"
    [
      ("experiment", "\"dead-rule pruning via abstract interpretation\"");
      ("edb_facts", string_of_int (Database.cardinal edb));
      ("rules_total", string_of_int (List.length rules));
      ("rules_pruned", string_of_int pruned_count);
      ("analysis_ms", Printf.sprintf "%.3f" ms_analysis);
      ("unpruned_materialize_ms", Printf.sprintf "%.3f" ms_unpruned);
      ("pruned_materialize_ms", Printf.sprintf "%.3f" ms_pruned);
      ("speedup", Printf.sprintf "%.1f" speedup);
      ("models_equal", string_of_bool equal);
      ("lint_broken_ms", Printf.sprintf "%.3f" broken_ms);
      ("lint_broken_findings", string_of_int broken_n);
      ("lint_spines_ms", Printf.sprintf "%.3f" spines_ms);
      ("lint_spines_findings", string_of_int spines_n);
    ];
  Util.note "wrote BENCH_absint.json"
