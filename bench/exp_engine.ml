(* A1 — engine ablation: semi-naive vs naive evaluation on closure
   workloads (the engine underlies everything the mediator does; the
   paper's FLORA relies on the same property via tabling).

   A2 — plug-in overhead: translating the same CM through each XML
   dialect vs consuming native GCM, demonstrating the "single GCM
   engine, translators at the edge" economics. *)

open Kind
module Engine = Datalog.Engine

let v = Logic.Term.var
let s = Logic.Term.sym

let tc_rules =
  [
    Logic.Rule.make
      (Logic.Atom.make "tc" [ v "X"; v "Y" ])
      [ Logic.Literal.pos "edge" [ v "X"; v "Y" ] ];
    Logic.Rule.make
      (Logic.Atom.make "tc" [ v "X"; v "Y" ])
      [ Logic.Literal.pos "tc" [ v "X"; v "Z" ]; Logic.Literal.pos "edge" [ v "Z"; v "Y" ] ];
  ]

let chain n =
  List.init n (fun k ->
      Logic.Rule.fact
        (Logic.Atom.make "edge"
           [ s (Printf.sprintf "n%d" k); s (Printf.sprintf "n%d" (k + 1)) ]))

let a1 () =
  Util.header "A1  Engine ablation: semi-naive vs naive evaluation";
  let rows =
    List.map
      (fun n ->
        let p = Datalog.Program.make_exn (tc_rules @ chain n) in
        let run strategy report =
          Util.time_median ~reps:3 (fun () ->
              ignore
                (Engine.materialize
                   ~config:{ Engine.default_config with Engine.strategy }
                   ~report p (Datalog.Database.create ())))
        in
        let rn = ref Engine.empty_report in
        let rs = ref !rn in
        let ms_naive = run Engine.Naive rn in
        let ms_semi = run Engine.Seminaive rs in
        [
          Util.fint n;
          Util.fint !rs.Engine.derived;
          Util.fms ms_semi;
          Util.fint !rs.Engine.tuples_scanned;
          Util.fms ms_naive;
          Util.fint !rn.Engine.tuples_scanned;
          Printf.sprintf "%.1fx" (ms_naive /. max 0.001 ms_semi);
        ])
      [ 32; 64; 128; 256 ]
  in
  Util.table
    ~columns:
      [
        "chain"; "tc facts"; "semi ms"; "semi scans"; "naive ms";
        "naive scans"; "speedup";
      ]
    rows;
  Util.note "shape check: the speedup grows with the number of iterations";
  Util.note "(chain length) — the semi-naive delta avoids rescanning."

(* A4: incremental maintenance — a new source registers (or a wrapper
   streams fresh observations) and the mediated closure must absorb the
   delta without re-materializing. *)
let a4 () =
  Util.header "A4  Incremental maintenance: absorb a delta vs re-materialize";
  let rows =
    List.map
      (fun n ->
        let base = chain n in
        let p = Datalog.Program.make_exn (tc_rules @ base) in
        let delta =
          Logic.Atom.make "edge"
            [ s (Printf.sprintf "n%d" (n + 1)); s (Printf.sprintf "n%d" (n + 2)) ]
        in
        (* measure just the delta absorption on a prebuilt database *)
        let prebuilt = Engine.materialize p (Datalog.Database.create ()) in
        let ms_incr =
          Util.time_median ~reps:3 (fun () ->
              let db = Datalog.Database.copy prebuilt in
              match Engine.extend p db [ delta ] with
              | Ok _ -> ()
              | Error e -> failwith e)
        in
        let ms_rebuild =
          Util.time_median ~reps:3 (fun () ->
              ignore
                (Engine.materialize
                   (Datalog.Program.make_exn
                      (tc_rules @ base @ [ Logic.Rule.fact delta ]))
                   (Datalog.Database.create ())))
        in
        [
          Util.fint n;
          Util.fms ms_incr;
          Util.fms ms_rebuild;
          Printf.sprintf "%.1fx" (ms_rebuild /. max 0.001 ms_incr);
        ])
      [ 32; 64; 128; 256 ]
  in
  Util.table
    ~columns:[ "chain"; "absorb delta ms"; "re-materialize ms"; "speedup" ]
    rows;
  Util.note "shape check: the delta touches one frontier, so absorption cost";
  Util.note "is near-flat while re-materialization grows with the closure."

(* A3: tabled top-down vs full materialization on selective goals —
   the goal-directedness FLORA gets from XSB's tabling. Workload:
   k disconnected chain islands; the goal asks about one island only. *)
let a3 () =
  Util.header "A3  Tabling ablation: goal-directed top-down vs materialization";
  let islands ~count ~len =
    List.concat
      (List.init count (fun i ->
           List.init len (fun k ->
               Logic.Rule.fact
                 (Logic.Atom.make "edge"
                    [
                      s (Printf.sprintf "i%d_n%d" i k);
                      s (Printf.sprintf "i%d_n%d" i (k + 1));
                    ]))))
  in
  let goal = Logic.Atom.make "tc" [ s "i0_n0"; v "Y" ] in
  let rows =
    List.map
      (fun count ->
        let p = Datalog.Program.make_exn (tc_rules @ islands ~count ~len:24) in
        let stats = Datalog.Topdown.new_stats () in
        let td = ref [] in
        let ms_td =
          Util.time_median ~reps:3 (fun () ->
              td := Datalog.Topdown.solve ~stats p (Datalog.Database.create ()) goal)
        in
        let bu = ref [] in
        let ms_bu =
          Util.time_median ~reps:3 (fun () ->
              let db = Engine.materialize p (Datalog.Database.create ()) in
              bu := Engine.answers db goal)
        in
        assert (List.sort compare !bu = List.sort compare !td);
        [
          Util.fint count;
          Util.fint (List.length !td);
          Util.fms ms_td;
          Util.fint stats.Datalog.Topdown.answers;
          Util.fms ms_bu;
          Printf.sprintf "%.1fx" (ms_bu /. max 0.001 ms_td);
        ])
      [ 1; 4; 16; 64 ]
  in
  Util.table
    ~columns:
      [
        "islands"; "goal answers"; "top-down ms"; "tabled answers";
        "materialize ms"; "speedup";
      ]
    rows;
  Util.note "shape check: the bound goal's cost is flat while materialization";
  Util.note "pays for every island — goal-directedness, as in XSB tabling."

let a2 () =
  Util.header "A2  Plug-in overhead: XML dialects -> one GCM engine";
  let reg = Cm_plugins.Defaults.registry () in
  (* one CM, four dialects; build documents of growing size *)
  let gcm_doc n =
    let b = Buffer.create 4096 in
    Buffer.add_string b "<gcm source=\"L\"><class name=\"c\"/>";
    for k = 1 to n do
      Buffer.add_string b (Printf.sprintf "<instance id=\"o%d\" class=\"c\"/>" k)
    done;
    Buffer.add_string b "</gcm>";
    Buffer.contents b
  in
  let er_doc n =
    let b = Buffer.create 4096 in
    Buffer.add_string b "<er name=\"L\"><entity name=\"c\"/>";
    for k = 1 to n do
      Buffer.add_string b
        (Printf.sprintf "<entity-instance entity=\"c\" key=\"o%d\"/>" k)
    done;
    Buffer.add_string b "</er>";
    Buffer.contents b
  in
  let uxf_doc n =
    let b = Buffer.create 4096 in
    Buffer.add_string b "<uxf><class name=\"C\"/>";
    for k = 1 to n do
      Buffer.add_string b (Printf.sprintf "<object name=\"o%d\" class=\"C\"/>" k)
    done;
    Buffer.add_string b "</uxf>";
    Buffer.contents b
  in
  let rdf_doc n =
    let b = Buffer.create 4096 in
    Buffer.add_string b "<rdf:RDF name=\"L\"><rdfs:Class rdf:ID=\"c\"/>";
    for k = 1 to n do
      Buffer.add_string b
        (Printf.sprintf
           "<rdf:Description rdf:ID=\"o%d\"><rdf:type rdf:resource=\"c\"/></rdf:Description>"
           k)
    done;
    Buffer.add_string b "</rdf:RDF>";
    Buffer.contents b
  in
  let n = 2000 in
  let rows =
    List.map
      (fun (format, doc) ->
        let ms =
          Util.time_median ~reps:3 (fun () ->
              match Cm_plugins.Plugin.translate_string reg ~format doc with
              | Ok tr -> assert (List.length tr.Cm_plugins.Plugin.facts >= n)
              | Error e -> failwith e)
        in
        [
          format;
          Util.fint (String.length doc);
          Util.fms ms;
          Printf.sprintf "%.0f" (float_of_int n /. ms *. 1000.0);
        ])
      [
        ("gcm-xml", gcm_doc n);
        ("er-xml", er_doc n);
        ("uxf", uxf_doc n);
        ("rdfs", rdf_doc n);
      ]
  in
  Util.table ~columns:[ "dialect"; "bytes"; "translate ms"; "objects/s" ] rows;
  Util.note "shape check: every dialect lands within a small constant factor";
  Util.note "of the native one — translators are cheap, the engine is shared."
