(* REC — crash recovery: checkpoint + WAL replay vs cold rebuild.

   The durability claim under test (DESIGN.md §14): recovering a
   materialization from the last checkpoint plus the WAL suffix costs
   time proportional to the log suffix, not to the database — so on
   the tc-deep workload (a single deep chain closed under transitive
   closure, the quadratic-model shape from the join benchmarks),
   [Engine.recover] must beat re-materializing from scratch, and the
   gap must shrink as the un-checkpointed suffix grows.

   Measured series: cold rebuild of the final database vs recovery
   after W maintenance batches since the checkpoint, for W in
   {0, 8, 32, 128}. Results land in BENCH_recovery.json; the
   [recovery-smoke] gate re-runs a trimmed version and fails when
   recovery at the mid suffix is slower than the cold rebuild. *)

open Kind
module Engine = Datalog.Engine
module Database = Datalog.Database
module Maintain = Datalog.Maintain

let v = Logic.Term.var
let s = Logic.Term.sym
let node k = s (Printf.sprintf "n%d" k)
let edge a b = Logic.Atom.make "edge" [ a; b ]

let tc_program =
  Datalog.Program.make_exn
    [
      Logic.Rule.make
        (Logic.Atom.make "tc" [ v "X"; v "Y" ])
        [ Logic.Literal.pos "edge" [ v "X"; v "Y" ] ];
      Logic.Rule.make
        (Logic.Atom.make "tc" [ v "X"; v "Y" ])
        [
          Logic.Literal.pos "tc" [ v "X"; v "Z" ];
          Logic.Literal.pos "edge" [ v "Z"; v "Y" ];
        ];
    ]

let chain n = List.init n (fun k -> edge (node k) (node (k + 1)))

(* Batch j hangs a fresh leaf off a node low in the chain — the
   mediator-shaped update: a source asserts a new fact about an
   existing entity. Its derived footprint is the leaf's ancestor set
   (at most [spread] tc facts), so replay cost is proportional to the
   suffix, independent of the database. A chain-{e tip} extension
   would instead rederive ~depth facts per entry — a whole-database
   recomputation smuggled into the log, which no incremental scheme
   (and no checkpoint) can beat. *)
let spread = 16

let leaf j = s (Printf.sprintf "m%d" j)

let batch j =
  { Maintain.additions = [ edge (node (j mod spread)) (leaf j) ]; deletions = [] }

let suffix_edges w = List.init w batch |> List.concat_map (fun b -> b.Maintain.additions)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "kind-bench-recovery-%d-%d" (Unix.getpid ()) !counter)

let cleanup dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* Build a durable store: checkpoint at depth [depth], then [w] WAL
   batches on top. Returns the directory and the config to recover
   with. *)
let build_store ~depth ~w =
  let dir = fresh_dir () in
  cleanup dir;
  let config =
    {
      Engine.default_config with
      Engine.durability = Some (Engine.durability ~dir ());
    }
  in
  let db = Engine.materialize ~config tc_program (Database.of_facts (chain depth)) in
  for j = 0 to w - 1 do
    match Engine.maintain ~config tc_program db (batch j) with
    | Ok _ -> ()
    | Error e -> failwith ("exp_recovery: maintain: " ^ e)
  done;
  (dir, config, Database.cardinal db)

let recover_ms ?(timer = Util.time_median) ~reps config =
  let once () =
    match Engine.recover ~config tc_program with
    | Ok (Some db) -> ignore (Database.cardinal db)
    | Ok None -> failwith "exp_recovery: checkpoint missing"
    | Error e -> failwith ("exp_recovery: recover: " ^ e)
  in
  once () (* untimed warmup: page cache, intern pool, allocator *);
  timer ~reps once

let cold_ms ?(timer = Util.time_median) ~reps ~depth ~w () =
  let edb = chain depth @ suffix_edges w in
  let once () =
    ignore (Engine.materialize tc_program (Database.of_facts edb))
  in
  once ();
  timer ~reps once

let suffixes = [ 0; 8; 32; 128 ]

let measure ~reps ~depth =
  List.map
    (fun w ->
      let dir, config, cardinal = build_store ~depth ~w in
      let rec_ms = recover_ms ~reps config in
      let wal_bytes =
        match config.Engine.durability with
        | Some d -> d.Engine.fs.Codec.size Engine.wal_file
        | None -> 0
      in
      cleanup dir;
      (w, rec_ms, cold_ms ~reps ~depth ~w (), cardinal, wal_bytes))
    suffixes

let run () =
  Util.header "REC  Crash recovery: checkpoint + WAL replay vs cold rebuild";
  let depth = 240 in
  let rows = measure ~reps:5 ~depth in
  Util.table
    ~columns:[ "wal suffix"; "recover ms"; "cold rebuild ms"; "speedup"; "facts"; "wal bytes" ]
    (List.map
       (fun (w, r, c, n, wb) ->
         [
           Util.fint w; Util.fms r; Util.fms c;
           Printf.sprintf "%.1fx" (c /. r); Util.fint n; Util.fint wb;
         ])
       rows);
  Util.note "claim: replay cost tracks the WAL suffix, not the database —";
  Util.note "recovery from a fresh checkpoint is a read, not a fixpoint.";
  let field w name v = (Printf.sprintf "%s_w%d" name w, v) in
  Util.write_json "BENCH_recovery.json"
    (("workload", "\"tc-deep\"")
    :: ("depth", string_of_int depth)
    :: List.concat_map
         (fun (w, r, c, n, wb) ->
           [
             field w "recovery_ms" (Util.fms r);
             field w "cold_rebuild_ms" (Util.fms c);
             field w "facts" (string_of_int n);
             field w "wal_bytes" (string_of_int wb);
           ])
         rows);
  Util.note "wrote BENCH_recovery.json"

(* The CI gate: recovery at the mid suffix must not be slower than the
   cold rebuild it replaces. Self-contained (no committed reference),
   trimmed depth so it runs in seconds. *)
let smoke () =
  Util.header "REC-SMOKE  recovery_ms <= cold_rebuild_ms on tc-deep";
  (* min-of-reps on both sides: scheduler noise only adds time, so the
     gate compares true costs, not whichever run a CI neighbor hit *)
  let depth = 240 and w = 32 in
  let dir, config, _ = build_store ~depth ~w in
  let rec_ms = recover_ms ~timer:Util.time_min ~reps:7 config in
  cleanup dir;
  let cold = cold_ms ~timer:Util.time_min ~reps:7 ~depth ~w () in
  Util.table
    ~columns:[ "wal suffix"; "recover ms"; "cold rebuild ms" ]
    [ [ Util.fint w; Util.fms rec_ms; Util.fms cold ] ];
  if rec_ms > cold then begin
    Printf.printf
      "FAIL: recovery (%.2f ms) slower than the cold rebuild (%.2f ms)\n"
      rec_ms cold;
    exit 1
  end;
  Util.note "gate passed: %.1fx faster than the cold rebuild" (cold /. rec_ms)
