(* JOIN — join-kernel benchmark: deep-recursion materialization over
   transitive closure, domain-map closures, and a Section-5-shaped IVD
   join workload. Pins the speedup of the compiled-plan kernel
   (interned terms + packed tuples + signature indexes + compiled
   plans) against the pre-overhaul kernel, writes BENCH_join.json, and
   doubles as the @bench-smoke regression gate (see [smoke]). *)

open Kind
module Engine = Datalog.Engine
module Database = Datalog.Database

let v = Logic.Term.var
let s = Logic.Term.sym

let fact p args = Logic.Rule.fact (Logic.Atom.make p args)
let rule h b = Logic.Rule.make h b
let atom p args = Logic.Atom.make p args
let pos = Logic.Literal.pos

(* ------------------------------------------------------------------ *)
(* Workload 1: deep transitive closure — one long chain, so the
   semi-naive delta is one tuple per round and the round count equals
   the chain length (recursion depth stress). *)

let tc_rules =
  [
    rule (atom "tc" [ v "X"; v "Y" ]) [ pos "edge" [ v "X"; v "Y" ] ];
    rule
      (atom "tc" [ v "X"; v "Y" ])
      [ pos "tc" [ v "X"; v "Z" ]; pos "edge" [ v "Z"; v "Y" ] ];
  ]

let tc_deep n =
  let edges =
    List.init n (fun k ->
        fact "edge" [ s (Printf.sprintf "n%d" k); s (Printf.sprintf "n%d" (k + 1)) ])
  in
  Datalog.Program.make_exn (tc_rules @ edges)

(* ------------------------------------------------------------------ *)
(* Workload 2: domain-map closures — an isa tree (the domain map) plus
   has_a cross edges, closed under the paper's tc / has_a_star axioms
   (Section 4: `tc` over isa, part-of closure mixing isa and has_a). *)

let dm_rules =
  [
    rule (atom "isa_tc" [ v "X"; v "Y" ]) [ pos "isa" [ v "X"; v "Y" ] ];
    rule
      (atom "isa_tc" [ v "X"; v "Y" ])
      [ pos "isa" [ v "X"; v "Z" ]; pos "isa_tc" [ v "Z"; v "Y" ] ];
    rule (atom "has_a_star" [ v "X"; v "Y" ]) [ pos "has_a" [ v "X"; v "Y" ] ];
    rule
      (atom "has_a_star" [ v "X"; v "Y" ])
      [ pos "has_a" [ v "X"; v "Z" ]; pos "has_a_star" [ v "Z"; v "Y" ] ];
    rule
      (atom "has_a_star" [ v "X"; v "Y" ])
      [ pos "isa" [ v "X"; v "Z" ]; pos "has_a_star" [ v "Z"; v "Y" ] ];
  ]

(* a [fanout]-ary isa tree of the given depth, with a has_a edge from
   every third node to its parent's sibling subtree *)
let dm_closure ~fanout ~depth =
  let facts = ref [] in
  let add f = facts := f :: !facts in
  let node path = s ("c" ^ path) in
  let rec build path d =
    if d < depth then
      for i = 0 to fanout - 1 do
        let child = Printf.sprintf "%s_%d" path i in
        add (fact "isa" [ node child; node path ]);
        if (d * fanout) + i mod 3 = 0 then
          add (fact "has_a" [ node path; node child ]);
        build child (d + 1)
      done
  in
  build "r" 0;
  Datalog.Program.make_exn (dm_rules @ !facts)

(* ------------------------------------------------------------------ *)
(* Workload 3: Section-5-shaped IVD join — instance data under an isa
   hierarchy with upward `:` propagation, joined through located /
   region / selective constants, i.e. the multi-literal joins the
   mediator runs per IVD when answering a federation query. *)

let ivd_rules =
  [
    rule
      (atom "inst" [ v "X"; v "C" ])
      [ pos "inst0" [ v "X"; v "C" ] ];
    rule
      (atom "inst" [ v "X"; v "D" ])
      [ pos "inst" [ v "X"; v "C" ]; pos "isa" [ v "C"; v "D" ] ];
    rule
      (atom "answer" [ v "P"; v "L" ])
      [
        pos "inst" [ v "P"; s "protein" ];
        pos "located" [ v "P"; v "L" ];
        pos "region" [ v "L"; v "R" ];
        pos "relevant" [ v "R" ];
      ];
  ]

let ivd_join ~objects =
  let classes = 40 in
  let regions = 25 in
  let isa =
    (* a chain of classes ending at "protein": every object propagates
       up through ~half the chain on average *)
    List.init (classes - 1) (fun k ->
        fact "isa"
          [
            s (Printf.sprintf "cls%d" k);
            (if k = classes - 2 then s "protein"
             else s (Printf.sprintf "cls%d" (k + 1)));
          ])
  in
  let objs =
    List.concat
      (List.init objects (fun o ->
           let obj = s (Printf.sprintf "o%d" o) in
           [
             fact "inst0" [ obj; s (Printf.sprintf "cls%d" (o mod (classes - 1))) ];
             fact "located" [ obj; s (Printf.sprintf "loc%d" (o mod 120)) ];
           ]))
  in
  let locs =
    List.init 120 (fun l ->
        fact "region"
          [ s (Printf.sprintf "loc%d" l); s (Printf.sprintf "reg%d" (l mod regions)) ])
  in
  let rel = List.init 5 (fun r -> fact "relevant" [ s (Printf.sprintf "reg%d" (r * 4)) ]) in
  Datalog.Program.make_exn (ivd_rules @ isa @ objs @ locs @ rel)

(* ------------------------------------------------------------------ *)

(* Pre-overhaul kernel times for the full workloads: measured at the
   commit immediately preceding this overhaul (structural tuples,
   first-ground-column single-key indexes, per-round greedy ordering
   over string-keyed substitution maps) with these exact workloads on
   the same machine, same protocol as [measure] below. Re-measure by
   checking out that commit, dropping this file and main.ml into
   bench/, and running `main.exe -- join`. *)
let baselines =
  [ ("tc-deep", 141.4); ("dm-closure", 349.5); ("ivd-join", 251.3) ]

(* Every repetition starts from a collected heap so one workload's
   garbage is not billed to the next one's run — without the
   [Gc.full_major] the cross-workload interference is worth ±25% on
   the closure workloads. The reported time is the fastest repetition:
   materialization is deterministic and CPU-bound, so the minimum is
   the least-interfered sample (scheduler and frequency noise only ever
   add time). *)
let measure ?(reps = 5) ~config p =
  let rep = ref Engine.empty_report in
  let samples =
    List.init reps (fun _ ->
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        ignore (Engine.materialize ~config ~report:rep p (Database.create ()));
        (Unix.gettimeofday () -. t0) *. 1000.)
    |> List.sort compare
  in
  (List.hd samples, !rep)

let workloads ~full =
  if full then
    [
      ("tc-deep", tc_deep 360);
      ("dm-closure", dm_closure ~fanout:2 ~depth:12);
      ("ivd-join", ivd_join ~objects:4000);
    ]
  else
    [
      ("tc-deep", tc_deep 120);
      ("dm-closure", dm_closure ~fanout:3 ~depth:5);
      ("ivd-join", ivd_join ~objects:800);
    ]

let write_json = Util.write_json

let key name = String.map (fun c -> if c = '-' then '_' else c) name

let run () =
  Util.header "JOIN  Join-kernel overhaul: compiled plans vs interpreted vs pre-PR";
  let interpreted_config =
    { Engine.default_config with Engine.compiled_plans = false }
  in
  let results =
    List.map
      (fun (name, p) ->
        let ms, rep = measure ~config:Engine.default_config p in
        let ms_interp, rep_interp = measure ~config:interpreted_config p in
        if rep.Engine.derived <> rep_interp.Engine.derived then
          failwith
            (Printf.sprintf
               "join bench: compiled and interpreted kernels disagree on %s \
                (%d vs %d derived)"
               name rep.Engine.derived rep_interp.Engine.derived);
        (name, ms, ms_interp, rep))
      (workloads ~full:true)
  in
  Util.table
    ~columns:
      [
        "workload"; "derived"; "rounds"; "idx-hits"; "plan-hits"; "interp-ms";
        "ms"; "pre-PR-ms"; "speedup";
      ]
    (List.map
       (fun (name, ms, ms_interp, rep) ->
         let base = List.assoc name baselines in
         [
           name;
           Util.fint rep.Engine.derived;
           Util.fint rep.Engine.rounds;
           Util.fint rep.Engine.index_hits;
           Util.fint rep.Engine.plan_cache_hits;
           Util.fms ms_interp;
           Util.fms ms;
           Util.fms base;
           Printf.sprintf "%.1fx" (base /. ms);
         ])
       results);
  (* trimmed-workload reference times for the @bench-smoke gate *)
  let smoke =
    List.map
      (fun (name, p) ->
        let ms, _ = measure ~config:Engine.default_config p in
        (name, ms))
      (workloads ~full:false)
  in
  let fields =
    [
      ( "experiment",
        "\"join kernel: compiled plans + interned terms + signature indexes\""
      );
      ( "baseline",
        "\"pre-overhaul kernel at the preceding commit, same workloads, same \
         machine, fastest of 5 repetitions\"" );
    ]
    @ List.concat_map
        (fun (name, ms, ms_interp, rep) ->
          let k = key name in
          let base = List.assoc name baselines in
          [
            (k ^ "_compiled_ms", Printf.sprintf "%.3f" ms);
            (k ^ "_interpreted_ms", Printf.sprintf "%.3f" ms_interp);
            (k ^ "_baseline_ms", Printf.sprintf "%.3f" base);
            (k ^ "_speedup", Printf.sprintf "%.2f" (base /. ms));
            (k ^ "_derived", string_of_int rep.Engine.derived);
            (k ^ "_index_hits", string_of_int rep.Engine.index_hits);
            (k ^ "_plan_cache_hits", string_of_int rep.Engine.plan_cache_hits);
          ])
        results
    @ List.map
        (fun (name, ms) -> ("smoke_" ^ key name ^ "_ms", Printf.sprintf "%.3f" ms))
        smoke
  in
  write_json "BENCH_join.json" fields;
  Util.note "wrote BENCH_join.json"

(* ------------------------------------------------------------------ *)
(* Smoke gate: run the trimmed workloads and fail (exit 1) if any
   materialization is more than 2x slower than the committed
   BENCH_join.json reference. Wired as `dune build @bench-smoke`. *)

let read_reference path =
  let ic = open_in path in
  let fields = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       try Scanf.sscanf line "%S: %f" (fun k x -> fields := (k, x) :: !fields)
       with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
     done
   with End_of_file -> close_in ic);
  !fields

let smoke () =
  let path =
    match Sys.getenv_opt "KIND_JOIN_BASELINE" with
    | Some p -> p
    | None -> "BENCH_join.json"
  in
  if not (Sys.file_exists path) then begin
    Printf.printf "bench-smoke: reference %s not found\n" path;
    exit 1
  end;
  let reference = read_reference path in
  Util.header "JOIN-SMOKE  trimmed workloads vs committed BENCH_join.json";
  let failures = ref 0 in
  List.iter
    (fun (name, p) ->
      let ms, _ = measure ~config:Engine.default_config p in
      match List.assoc_opt ("smoke_" ^ key name ^ "_ms") reference with
      | None ->
        Printf.printf "  %-12s %6.2f ms  (no reference entry)\n" name ms;
        incr failures
      | Some ref_ms ->
        (* the +1ms floor keeps sub-millisecond noise from tripping the
           gate on the fastest workload *)
        let ok = ms <= (2.0 *. ref_ms) +. 1.0 in
        Printf.printf "  %-12s %6.2f ms  (reference %.2f ms) %s\n" name ms
          ref_ms
          (if ok then "ok" else "REGRESSION (>2x)");
        if not ok then incr failures)
    (workloads ~full:false);
  if !failures > 0 then exit 1;
  Util.note "bench-smoke: within 2x of committed reference"
