(* DM — Section 4's two execution modes for domain-map axioms.

   Each edge C -r-> D can run as an integrity constraint (witnesses in
   ic when the object base lacks the r-successor: the "data-complete"
   reading) or as an assertion (virtual placeholder objects f_C_r_D(x)
   complete the base). This experiment materializes the same federation
   both ways and reports what each mode produces and costs. *)

open Kind
module M = Mediation.Mediator

let run () =
  Util.header "DM  Section 4: domain-map axioms as ICs vs as assertions";
  let params = { Neuro.Sources.seed = 5; scale = 40 } in
  let rows =
    List.map
      (fun (label, mode) ->
        let med =
          Neuro.Sources.standard_mediator
            ~config:{ M.default_config with M.dl_mode = mode }
            params
        in
        let db = ref (Datalog.Database.create ()) in
        let ms = Util.time_median ~reps:3 (fun () ->
            M.invalidate med;
            db := M.materialize med)
        in
        let witnesses = List.length (Flogic.Ic.violations !db) in
        let placeholders =
          Datalog.Database.facts !db Flogic.Compile.isa_p
          |> List.filter (fun (a : Logic.Atom.t) ->
                 match a.Logic.Atom.args with
                 | [ x; _ ] -> Dl.Translate.is_placeholder x
                 | _ -> false)
          |> List.length
        in
        [
          label;
          Util.fint (Datalog.Database.cardinal !db);
          Util.fint witnesses;
          Util.fint placeholders;
          Util.fms ms;
        ])
      [ ("assertion (default)", Dl.Translate.Assertion); ("integrity constraint", Dl.Translate.Ic) ]
  in
  Util.table
    ~columns:[ "mode"; "facts"; "ic witnesses"; "placeholder memberships"; "ms" ]
    rows;
  Util.note "shape check: assertion mode completes the base with virtual";
  Util.note "placeholders and stays witness-free; IC mode creates no objects";
  Util.note "but reports every data-incompleteness as an ic witness."
