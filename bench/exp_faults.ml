(* FT — the fault-tolerance runtime's cost and its fast-fail benefit.

   Three questions, measured on the standard three-source federation:

   1. overhead: what does routing every fetch through the fault channel
      + retry/breaker stack cost on a clean run? (the [clean] row is
      the whole answer — the stack is always on, so its cost is simply
      the baseline materialization time);
   2. absorption: what do seeded transient faults cost when retries
      absorb them? ([flaky] — same fixpoint, extra fetches);
   3. fast-fail: once a dead source trips its breaker, how much cheaper
      is the degraded materialization than the first one that burned
      retries discovering the outage? ([outage cold] vs [outage open]).

   Results land in BENCH_faults.json. Everything is deterministic:
   fault schedules are seeded, time is virtual inside the channels, and
   only the wall-clock medians vary by machine. *)

open Kind
module M = Mediation.Mediator
module R = Mediation.Runtime
module F = Wrapper.Fault

let build () =
  Neuro.Sources.standard_mediator { Neuro.Sources.seed = 11; scale = 40 }

let set_plan med src plan =
  match M.set_fault_plan med ~source:src plan with
  | Ok () -> ()
  | Error e -> failwith e

let ms_materialize ?(reps = 5) med =
  Util.time_median ~reps (fun () ->
      M.invalidate med;
      ignore (M.materialize med))

let write_json = Util.write_json

let run () =
  Util.header "FT   Fault-injection runtime: overhead, absorption, fast-fail";
  (* 1. clean: the always-on stack at work, no faults scheduled *)
  let clean = build () in
  let clean_ms = ms_materialize clean in
  (* 2. flaky: seeded transients on NCMIR, absorbed by retries *)
  let flaky = build () in
  set_plan flaky "NCMIR"
    (F.Seeded { seed = 3; rates = { F.no_faults with F.transient = 400 } });
  let flaky_ms = ms_materialize flaky in
  let flaky_h = R.health (M.runtime flaky) "NCMIR" in
  (* 3. outage: SENSELAB answers nothing; the first materializations
     burn full retry ladders, then the breaker opens and fetches
     fast-fail *)
  let outage = build () in
  set_plan outage "SENSELAB" (F.Always F.Timeout);
  let cold_ms = ms_materialize ~reps:1 outage in
  let cold_h = R.health (M.runtime outage) "SENSELAB" in
  (* the health record is live-mutable: snapshot the cold counters now *)
  let cold_fails = cold_h.R.failures
  and cold_retries = cold_h.R.retries
  and cold_state = R.state_to_string cold_h.R.state in
  (* two more failed fetches trip the breaker (trip_after = 3) *)
  ignore (ms_materialize ~reps:2 outage);
  let open_ms = ms_materialize outage in
  let outage_h = R.health (M.runtime outage) "SENSELAB" in
  let skipped med =
    Util.fint (List.length (M.completeness med).M.skipped)
  in
  Util.table
    ~columns:[ "scenario"; "ms/materialize"; "skipped"; "fails"; "retries"; "breaker" ]
    [
      [ "clean"; Util.fms clean_ms; skipped clean; "0"; "0"; "closed" ];
      [
        "flaky (400\xe2\x80\xb0 transient)";
        Util.fms flaky_ms;
        skipped flaky;
        Util.fint flaky_h.R.failures;
        Util.fint flaky_h.R.retries;
        R.state_to_string flaky_h.R.state;
      ];
      [
        "outage cold (retries)";
        Util.fms cold_ms;
        skipped outage;
        Util.fint cold_fails;
        Util.fint cold_retries;
        cold_state;
      ];
      [
        "outage open (fast-fail)";
        Util.fms open_ms;
        skipped outage;
        Util.fint outage_h.R.failures;
        Util.fint outage_h.R.retries;
        R.state_to_string outage_h.R.state;
      ];
    ];
  Util.note
    "fast-fail: with the breaker open the dead source costs no fetch \
     attempts at all; the degraded run pays only the (smaller) fixpoint.";
  write_json "BENCH_faults.json"
    [
      ("clean_ms", Util.fms clean_ms);
      ("flaky_ms", Util.fms flaky_ms);
      ("flaky_retries", Util.fint flaky_h.R.retries);
      ("flaky_absorbed", Util.fint flaky_h.R.absorbed);
      ("outage_cold_ms", Util.fms cold_ms);
      ("outage_open_ms", Util.fms open_ms);
      ("outage_trips", Util.fint outage_h.R.trips);
      ("breaker_state", Printf.sprintf "%S" (R.state_to_string outage_h.R.state));
    ];
  print_endline "wrote BENCH_faults.json"
