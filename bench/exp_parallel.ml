(* PAR — multicore evaluation: domain-parallel semi-naive joins and
   the concurrent federation gather. Measures the same materialization
   at 1, 2 and 4 worker domains (plus the gather's virtual clock under
   injected delays, which is core-independent), checks that every
   domain count derives the identical database, writes
   BENCH_parallel.json, and doubles as the @par-smoke regression gate
   (see [smoke]).

   Honesty note: wall-clock speedup needs physical cores. The JSON
   records [cores] (Domain.recommended_domain_count) next to every
   series, and the smoke gate only enforces the 4-domain speedup
   threshold when the machine actually has 4 cores to run it on — the
   1-domain no-regression bound and the cross-domain-count equality
   checks hold everywhere. *)

open Kind
module Engine = Datalog.Engine
module Database = Datalog.Database

let v = Logic.Term.var
let s = Logic.Term.sym
let fact p args = Logic.Rule.fact (Logic.Atom.make p args)
let rule h b = Logic.Rule.make h b
let atom p args = Logic.Atom.make p args
let pos = Logic.Literal.pos

(* ------------------------------------------------------------------ *)
(* Workload 1: deep AND wide transitive closure. exp_join's tc-deep is
   a single chain — a 1-tuple delta per round, which is the worst case
   for partitioning (nothing to fan out). Parallel evaluation needs
   per-round deltas wider than Parexec.min_rows, so this variant is a
   layered graph: [layers] layers of [width] nodes, each node wired to
   [fan] nodes of the next layer. The delta in round r holds all pairs
   at distance r — O(width^2) rows per round once paths saturate —
   while the recursion is still [layers] deep. *)

let tc_rules =
  [
    rule (atom "tc" [ v "X"; v "Y" ]) [ pos "edge" [ v "X"; v "Y" ] ];
    rule
      (atom "tc" [ v "X"; v "Y" ])
      [ pos "tc" [ v "X"; v "Z" ]; pos "edge" [ v "Z"; v "Y" ] ];
  ]

let tc_wide ~layers ~width ~fan =
  let node l j = s (Printf.sprintf "n%d_%d" l j) in
  let edges = ref [] in
  for l = 0 to layers - 2 do
    for j = 0 to width - 1 do
      for k = 0 to fan - 1 do
        edges := fact "edge" [ node l j; node (l + 1) ((j + k) mod width) ] :: !edges
      done
    done
  done;
  Datalog.Program.make_exn (tc_rules @ !edges)

(* Workload 2: the domain-map closure from the join bench (isa tree +
   has_a cross edges under the Section 4 tc / has_a_star axioms) — a
   branching workload whose deltas are naturally wide. *)
let dm_closure = Exp_join.dm_closure

(* ------------------------------------------------------------------ *)

let measure ?(reps = 5) ~config p =
  let rep = ref Engine.empty_report in
  let samples =
    List.init reps (fun _ ->
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        ignore (Engine.materialize ~config ~report:rep p (Database.create ()));
        (Unix.gettimeofday () -. t0) *. 1000.)
    |> List.sort compare
  in
  (List.hd samples, !rep)

let config_for d = { Engine.default_config with Engine.domains = d }

let domain_counts = [ 1; 2; 4 ]

(* Measure one workload across the domain counts and fail loudly if
   any count disagrees with sequential on what it derived — the bench
   doubles as a coarse end-to-end differential. *)
let sweep ?reps (name, p) =
  let series =
    List.map
      (fun d ->
        let ms, rep = measure ?reps ~config:(config_for d) p in
        (d, ms, rep))
      domain_counts
  in
  let _, _, seq = List.hd series in
  List.iter
    (fun (d, _, rep) ->
      if
        rep.Engine.derived <> seq.Engine.derived
        || rep.Engine.rounds <> seq.Engine.rounds
      then
        failwith
          (Printf.sprintf
             "par bench: %s diverges at %d domains (%d facts / %d rounds vs \
              %d / %d sequential)"
             name d rep.Engine.derived rep.Engine.rounds seq.Engine.derived
             seq.Engine.rounds))
    series;
  (name, series)

(* ------------------------------------------------------------------ *)
(* Workload 3: the federation gather. Three demo sources, each under an
   [Always (Delay 30)] plan, so a fetch costs 31 virtual ms (1 ms call
   + 30 ms delay). A sequential gather pays the sum on the runtime
   clock; the concurrent gather starts all fetches at the same virtual
   instant and pays the max — a deterministic, core-independent
   signature of the concurrency, reported next to the wall time. *)

let delay_ms = 30

let gather_mediator ~domains ~scale =
  let config = { Mediation.Mediator.default_config with domains } in
  let med = Neuro.Sources.standard_mediator ~config { Neuro.Sources.seed = 7; scale } in
  List.iter
    (fun src ->
      match
        Mediation.Mediator.set_fault_plan med
          ~source:(Wrapper.Source.name src)
          (Wrapper.Fault.Always (Wrapper.Fault.Delay delay_ms))
      with
      | Ok () -> ()
      | Error e -> failwith e)
    (Mediation.Mediator.sources med);
  med

let measure_gather ?(reps = 3) ~domains ~scale () =
  let samples =
    List.init reps (fun _ ->
        let med = gather_mediator ~domains ~scale in
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        let db = Mediation.Mediator.materialize med in
        let ms = (Unix.gettimeofday () -. t0) *. 1000. in
        let clock = Mediation.Runtime.clock (Mediation.Mediator.runtime med) in
        let comp = Mediation.Mediator.completeness med in
        (ms, clock, List.length comp.Mediation.Mediator.contributed,
         Database.cardinal db))
    |> List.sort compare
  in
  List.hd samples

(* ------------------------------------------------------------------ *)

let cores = Domain.recommended_domain_count ()

let workloads ~full =
  if full then
    [
      ("tc-deep", tc_wide ~layers:48 ~width:24 ~fan:2);
      ("dm-closure", dm_closure ~fanout:2 ~depth:12);
    ]
  else
    [
      ("tc-deep", tc_wide ~layers:24 ~width:20 ~fan:2);
      ("dm-closure", dm_closure ~fanout:3 ~depth:5);
    ]

let key = Exp_join.key

let run () =
  Util.header
    (Printf.sprintf
       "PAR  Domain-parallel semi-naive joins + concurrent gather (%d core%s)"
       cores (if cores = 1 then "" else "s"));
  let results = List.map (sweep ?reps:None) (workloads ~full:true) in
  Util.table
    ~columns:
      [ "workload"; "derived"; "rounds"; "batches@4"; "1d-ms"; "2d-ms";
        "4d-ms"; "speedup@4" ]
    (List.map
       (fun (name, series) ->
         let ms_at d = let _, ms, _ = List.find (fun (d', _, _) -> d' = d) series in ms in
         let _, _, rep4 = List.find (fun (d, _, _) -> d = 4) series in
         let _, _, rep1 = List.hd series in
         [
           name;
           Util.fint rep1.Engine.derived;
           Util.fint rep1.Engine.rounds;
           Util.fint rep4.Engine.parallel_batches;
           Util.fms (ms_at 1);
           Util.fms (ms_at 2);
           Util.fms (ms_at 4);
           Printf.sprintf "%.2fx" (ms_at 1 /. ms_at 4);
         ])
       results);
  let gather =
    List.map
      (fun d -> (d, measure_gather ~domains:d ~scale:120 ()))
      domain_counts
  in
  Util.table
    ~columns:[ "gather"; "wall-ms"; "virtual-clock-ms"; "contributed"; "facts" ]
    (List.map
       (fun (d, (ms, clock, contributed, facts)) ->
         [
           Printf.sprintf "%d domain%s" d (if d = 1 then "" else "s");
           Util.fms ms;
           Util.fint clock;
           Util.fint contributed;
           Util.fint facts;
         ])
       gather);
  let _, (_, clock1, _, facts1) = List.find (fun (d, _) -> d = 1) gather in
  List.iter
    (fun (d, (_, _, _, facts)) ->
      if facts <> facts1 then
        failwith
          (Printf.sprintf
             "par bench: gather at %d domains materialized %d facts vs %d \
              sequential"
             d facts facts1))
    gather;
  let fields =
    [
      ( "experiment",
        "\"domain-parallel semi-naive joins + concurrent federation gather\"" );
      ("cores", string_of_int cores);
      ( "note",
        "\"wall-clock speedups require physical cores; the virtual-clock \
         series is core-independent (sequential gather pays the sum of \
         per-source delays, concurrent pays the max)\"" );
    ]
    @ List.concat_map
        (fun (name, series) ->
          let k = key name in
          let ms_at d = let _, ms, _ = List.find (fun (d', _, _) -> d' = d) series in ms in
          let _, _, rep4 = List.find (fun (d, _, _) -> d = 4) series in
          let _, _, rep1 = List.hd series in
          List.map
            (fun (d, ms, _) -> (Printf.sprintf "%s_%dd_ms" k d, Printf.sprintf "%.3f" ms))
            series
          @ [
              (k ^ "_speedup_4d", Printf.sprintf "%.2f" (ms_at 1 /. ms_at 4));
              (k ^ "_derived", string_of_int rep1.Engine.derived);
              (k ^ "_parallel_batches_4d", string_of_int rep4.Engine.parallel_batches);
            ])
        results
    @ List.concat_map
        (fun (d, (ms, clock, _, _)) ->
          [
            (Printf.sprintf "gather_%dd_wall_ms" d, Printf.sprintf "%.3f" ms);
            (Printf.sprintf "gather_%dd_clock_ms" d, string_of_int clock);
          ])
        gather
    @ [ ("gather_clock_speedup_4d",
         Printf.sprintf "%.2f" (float_of_int clock1 /. float_of_int
           (let _, (_, c, _, _) = List.find (fun (d, _) -> d = 4) gather in c))) ]
  in
  Exp_join.write_json "BENCH_parallel.json" fields;
  Util.note "wrote BENCH_parallel.json"

(* ------------------------------------------------------------------ *)
(* @par-smoke: the regression gate, self-contained (no committed
   reference). Four checks:

   1. differential — 1, 2 and 4 domains derive identical databases
      (facts and rounds) on both engine workloads; enforced everywhere;
   2. coverage — at 4 domains the tc workload actually fans out
      (parallel_batches > 0), so the gate cannot silently pass by
      never entering the parallel path; enforced everywhere;
   3. no 1-domain regression — explicit domains=1 stays within 1.05x
      (+1 ms noise floor) of the default sequential config: a bug that
      spun up pool machinery at one domain shows up here; enforced
      everywhere;
   4. speedup — tc-deep at 4 domains is >= 1.5x faster than at 1;
      enforced only when the machine has >= 4 cores (CI does), because
      on fewer cores the extra domains can only time-share. The gather
      virtual-clock check stands in for it elsewhere: concurrent must
      beat sequential on the (core-independent) virtual clock. *)

let smoke () =
  Util.header
    (Printf.sprintf "PAR-SMOKE  parallel gate (%d core%s available)" cores
       (if cores = 1 then "" else "s"));
  let failures = ref 0 in
  let check name ok detail =
    Printf.printf "  %-34s %s%s\n" name (if ok then "ok" else "FAIL")
      (if detail = "" then "" else "  (" ^ detail ^ ")");
    if not ok then incr failures
  in
  let full = cores >= 4 in
  List.iter
    (fun (name, p) ->
      match sweep ~reps:3 (name, p) with
      | _, series ->
        let ms_at d = let _, ms, _ = List.find (fun (d', _, _) -> d' = d) series in ms in
        let _, _, rep4 = List.find (fun (d, _, _) -> d = 4) series in
        check (name ^ ": 1/2/4-domain differential") true "";
        if name = "tc-deep" then
          check "tc-deep: fans out at 4 domains"
            (rep4.Engine.parallel_batches > 0)
            (Printf.sprintf "%d batches" rep4.Engine.parallel_batches);
        let default_ms, _ = measure ~reps:3 ~config:Engine.default_config p in
        check (name ^ ": no 1-domain regression")
          (ms_at 1 <= (1.05 *. default_ms) +. 1.0)
          (Printf.sprintf "%.2f ms vs %.2f ms default" (ms_at 1) default_ms);
        if full && name = "tc-deep" then
          check "tc-deep: >=1.5x at 4 domains"
            (ms_at 1 /. ms_at 4 >= 1.5)
            (Printf.sprintf "%.2fx" (ms_at 1 /. ms_at 4))
        else if name = "tc-deep" then
          Printf.printf
            "  %-34s skipped (%d core%s < 4; differential + clock checks \
             still gate)\n"
            "tc-deep: >=1.5x at 4 domains" cores (if cores = 1 then "" else "s")
      | exception Failure msg -> check (name ^ ": differential") false msg)
    (workloads ~full);
  let _, clock1, contrib1, facts1 = measure_gather ~reps:1 ~domains:1 ~scale:40 () in
  let _, clock4, contrib4, facts4 = measure_gather ~reps:1 ~domains:4 ~scale:40 () in
  check "gather: same facts + completeness"
    (facts1 = facts4 && contrib1 = contrib4)
    (Printf.sprintf "%d/%d facts, %d/%d contributed" facts1 facts4 contrib1
       contrib4);
  check "gather: concurrent clock beats sum"
    (clock4 < clock1)
    (Printf.sprintf "%d ms vs %d ms sequential" clock4 clock1);
  if !failures > 0 then exit 1;
  Util.note "par-smoke: parallel evaluation gates hold"
