(* P1 — Proposition 1: subsumption/satisfiability are undecidable for
   unrestricted GCM domain maps, but the restricted (EL) fragment is
   decided in polynomial time and "is often sufficient" (e.g. ANATOM).

   The bench shows (a) the guard refusing out-of-fragment inputs, and
   (b) polynomial-looking classification cost on growing synthetic
   TBoxes. *)

open Kind
module C = Dl.Concept
module Reason = Dl.Reason

let n = C.name

let guard () =
  Util.header "P1  Proposition 1: the decidability guard";
  let cases =
    [
      ( "purkinje [= neuron (ANATOM fragment)",
        Reason.check ~tbox:(Domain_map.Dmap.to_axioms Neuro.Anatom.fig1)
          (n "purkinje_cell") (n "neuron") );
      ( "neuron [= purkinje (must fail)",
        Reason.check ~tbox:(Domain_map.Dmap.to_axioms Neuro.Anatom.fig1)
          (n "neuron") (n "purkinje_cell") );
      ( "spiny == neuron AND EXISTS has.spine recognised",
        Reason.check ~tbox:(Domain_map.Dmap.to_axioms Neuro.Anatom.fig1)
          (C.conj [ n "neuron"; C.exists "has" (n "spine") ])
          (n "spiny_neuron") );
      ( "disjunction refused (outside fragment)",
        Reason.check ~tbox:[] (n "a") (C.disj [ n "b"; n "c" ]) );
      ( "value restriction refused (outside fragment)",
        Reason.check ~tbox:[] (n "a") (C.forall "r" (n "b")) );
    ]
  in
  Util.table ~columns:[ "query"; "verdict" ]
    (List.map
       (fun (l, v) ->
         [
           l;
           (match v with
           | Reason.Subsumed -> "subsumed"
           | Reason.Not_subsumed -> "not subsumed"
           | Reason.Outside_fragment f -> "REFUSED: " ^ f);
         ])
       cases)

(* synthetic EL TBox: chains + conjunction definitions + role axioms *)
let synthetic_tbox ~size ~seed =
  let rng = Random.State.make [| seed |] in
  let name k = Printf.sprintf "k%d" k in
  List.concat
    (List.init size (fun k ->
         if k = 0 then []
         else
           let parent = Random.State.int rng k in
           let base = [ C.subsumes (n (name k)) (n (name parent)) ] in
           let extra =
             if Random.State.int rng 100 < 30 then
               [
                 C.subsumes (n (name k))
                   (C.exists "r" (n (name (Random.State.int rng (max 1 k)))));
               ]
             else if Random.State.int rng 100 < 15 && k > 2 then
               [
                 C.equiv
                   (n (Printf.sprintf "def%d" k))
                   (C.conj
                      [
                        n (name (Random.State.int rng k));
                        C.exists "r" (n (name (Random.State.int rng k)));
                      ]);
               ]
             else []
           in
           base @ extra))

let scaling () =
  print_newline ();
  Util.note "EL completion cost on synthetic TBoxes (polynomial shape):";
  let rows =
    List.map
      (fun size ->
        let tbox = synthetic_tbox ~size ~seed:99 in
        let ms = Util.time_median ~reps:3 (fun () -> ignore (Reason.classify tbox)) in
        let t = Result.get_ok (Reason.classify tbox) in
        let names = Reason.concept_names t in
        let subsumptions =
          List.fold_left
            (fun acc a -> acc + List.length (Reason.subsumers t a))
            0 names
        in
        [
          Util.fint size;
          Util.fint (List.length tbox);
          Util.fint subsumptions;
          Util.fms ms;
        ])
      [ 25; 50; 100; 200; 400 ]
  in
  Util.table ~columns:[ "concepts"; "axioms"; "subsumptions"; "classify ms" ] rows

let p1 () =
  guard ();
  scaling ()
