(* Bechamel micro-benchmarks for the hot paths under every experiment:
   unification, body solving, closure computation, subsumption, XML
   parsing, and the end-to-end Section 5 plan. One Test.make per table
   of DESIGN.md's experiment index, grouped in a single run. *)

open Bechamel
open Toolkit
open Kind

let v = Logic.Term.var
let s = Logic.Term.sym

let t_unify =
  let t1 = Logic.Term.app "f" [ v "X"; Logic.Term.app "g" [ v "Y"; s "a" ]; v "Z" ] in
  let t2 = Logic.Term.app "f" [ s "b"; Logic.Term.app "g" [ s "c"; v "W" ]; s "d" ] in
  Test.make ~name:"T1: unify f/3 terms"
    (Staged.stage (fun () -> ignore (Logic.Unify.unify t1 t2)))

let t_tc =
  let p =
    Datalog.Program.make_exn
      ([
         Logic.Rule.make
           (Logic.Atom.make "tc" [ v "X"; v "Y" ])
           [ Logic.Literal.pos "e" [ v "X"; v "Y" ] ];
         Logic.Rule.make
           (Logic.Atom.make "tc" [ v "X"; v "Y" ])
           [ Logic.Literal.pos "tc" [ v "X"; v "Z" ]; Logic.Literal.pos "e" [ v "Z"; v "Y" ] ];
       ]
      @ List.init 64 (fun k ->
            Logic.Rule.fact
              (Logic.Atom.make "e"
                 [ s (Printf.sprintf "n%d" k); s (Printf.sprintf "n%d" (k + 1)) ])))
  in
  Test.make ~name:"A1: tc of a 64-chain (semi-naive)"
    (Staged.stage (fun () ->
         ignore (Datalog.Engine.materialize p (Datalog.Database.create ()))))

let t_closure =
  let dm = Neuro.Anatom.sprawl ~concepts:200 ~seed:21 in
  Test.make ~name:"F1: has_a_star on a 200-concept map"
    (Staged.stage (fun () -> ignore (Domain_map.Closure.has_a_star dm)))

let t_lub =
  let dm = Neuro.Anatom.full in
  Test.make ~name:"Q5: lub of {purkinje_cell, spine}"
    (Staged.stage (fun () ->
         ignore (Domain_map.Lub.lub_unique dm [ "purkinje_cell"; "spine" ])))

let t_subsume =
  let tbox = Domain_map.Dmap.to_axioms Neuro.Anatom.fig1 in
  Test.make ~name:"P1: EL classify Figure 1"
    (Staged.stage (fun () -> ignore (Dl.Reason.classify tbox)))

let t_xml =
  let doc =
    Xmlkit.Print.to_string
      (Wrapper.Source.export_xml
         (Neuro.Sources.ncmir { Neuro.Sources.seed = 1; scale = 20 }))
  in
  Test.make ~name:"A2: parse NCMIR wire document"
    (Staged.stage (fun () -> ignore (Xmlkit.Parse.parse_exn doc)))

let t_q5 =
  let med = Neuro.Sources.standard_mediator { Neuro.Sources.seed = 1; scale = 20 } in
  Test.make ~name:"Q5: four-step plan end to end"
    (Staged.stage (fun () ->
         ignore
           (Mediation.Section5.calcium_binding_query med ~organism:"rat"
              ~transmitting_compartment:"parallel_fiber" ~ion:"calcium" ())))

let t_ic =
  let sg = Flogic.Signature.declare "has" [ "whole"; "part" ] Flogic.Signature.empty in
  let rules =
    Gcm.Constraints.cardinality ~sg ~rel:"has" ~counted:"part" ~per:[ "whole" ]
      ~max_count:2 ()
    @ List.init 100 (fun k ->
          Flogic.Molecule.fact
            (Flogic.Molecule.Rel_val
               ( "has",
                 [
                   ("whole", s (Printf.sprintf "n%d" (k mod 40)));
                   ("part", s (Printf.sprintf "p%d" k));
                 ] )))
  in
  Test.make ~name:"E3: cardinality audit of 100 tuples"
    (Staged.stage (fun () ->
         ignore (Flogic.Fl_program.run (Flogic.Fl_program.make ~signature:sg rules))))

let all_tests =
  [ t_unify; t_tc; t_closure; t_lub; t_subsume; t_xml; t_q5; t_ic ]

let run () =
  Util.header "Micro-benchmarks (Bechamel, monotonic clock)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let analysed = Analyze.all ols instance results in
        Hashtbl.fold
          (fun name ols_result acc ->
            let ns =
              match Analyze.OLS.estimates ols_result with
              | Some [ est ] -> est
              | _ -> nan
            in
            [ name; Printf.sprintf "%.0f" ns ] :: acc)
          analysed []
        |> List.concat)
      all_tests
  in
  Util.table ~columns:[ "benchmark"; "ns/run" ] rows
