(* F1 — Figure 1: the SYNAPSE+NCMIR domain map.
   Reproduce the figure's content from the Example 1 DL statements,
   verify the paper's narrative inferences, then sweep domain-map size
   to show closure costs scale and that has_a_star stays far smaller
   than its transitive closure ("it would be wasteful to compute the
   much larger tc(has_a_star)").

   F3 — Figure 3: dynamic registration of MyNeuron / MyDendrite.
   Verify the derived knowledge the paper states, then show that
   incremental registration cost is independent of domain-map size. *)

open Kind
module Dmap = Domain_map.Dmap
module Closure = Domain_map.Closure
module Register = Domain_map.Register

let f1 () =
  Util.header "F1  Figure 1: domain map for SYNAPSE and NCMIR";
  let dm = Neuro.Anatom.fig1 in
  let nodes, edges = Dmap.size dm in
  Util.note "built from the paper's DL statements: %d nodes, %d edges" nodes edges;
  (* the narrative inferences of Example 1 *)
  let isa = Closure.isa_tc dm in
  let star = Closure.has_a_star dm in
  let contains = Closure.role_dc dm ~role:"contains" in
  let checks =
    [
      ("purkinje_cell isa* neuron", List.mem ("purkinje_cell", "neuron") isa);
      ("pyramidal_cell isa* neuron", List.mem ("pyramidal_cell", "neuron") isa);
      ( "spine isa* ion_regulating_component",
        List.mem ("spine", "ion_regulating_component") isa );
      ("purkinje_cell has* spine", List.mem ("purkinje_cell", "spine") star);
      ("dendrite has* branch", List.mem ("dendrite", "branch") star);
      ( "spine contains* ion_binding_protein",
        List.mem ("spine", "ion_binding_protein") contains );
      ( "ion_binding_protein isa* protein",
        List.mem ("ion_binding_protein", "protein") isa );
    ]
  in
  Util.table ~columns:[ "inference (paper narrative)"; "derived" ]
    (List.map (fun (l, b) -> [ l; string_of_bool b ]) checks);
  (* scaling sweep *)
  print_newline ();
  Util.note "closure cost sweep over synthetic anatomies (seed 11):";
  let rows =
    List.map
      (fun n ->
        let dm = Neuro.Anatom.sprawl ~concepts:n ~seed:11 in
        let _, e = Dmap.size dm in
        let ms_isa = Util.time_median (fun () -> ignore (Closure.isa_tc dm)) in
        let ms_star = Util.time_median (fun () -> ignore (Closure.has_a_star dm)) in
        let star = Closure.has_a_star dm in
        let tc_star = Closure.tc star in
        [
          Util.fint n;
          Util.fint e;
          Util.fms ms_isa;
          Util.fms ms_star;
          Util.fint (List.length star);
          Util.fint (List.length tc_star);
          Printf.sprintf "%.1fx"
            (float_of_int (List.length tc_star)
            /. float_of_int (max 1 (List.length star)));
        ])
      [ 50; 100; 200; 400; 800 ]
  in
  Util.table
    ~columns:
      [
        "concepts"; "edges"; "tc(isa) ms"; "has_a_star ms"; "|has_a_star|";
        "|tc(has_a_star)|"; "blowup";
      ]
    rows;
  Util.note
    "shape check: |tc(has_a_star)| >> |has_a_star| — the paper's reason for";
  Util.note "keeping the closure non-transitive and traversing direct links."

let f3 () =
  Util.header "F3  Figure 3: registering MyNeuron and MyDendrite";
  let dm = Neuro.Anatom.fig3_base in
  (match Register.register dm Neuro.Anatom.fig3_registration with
  | Error e -> Util.note "registration FAILED: %s" e
  | Ok out ->
    let dm' = out.Register.dmap in
    let proj = (Dmap.role_links dm' "proj").Dmap.definite in
    let poss = (Dmap.role_links dm' "proj").Dmap.possible in
    let checks =
      [
        ( "my_neuron isa* medium_spiny_neuron",
          List.mem "medium_spiny_neuron" (Closure.ancestors dm' "my_neuron") );
        ( "my_neuron definitely projects to GPE (new knowledge)",
          List.mem ("my_neuron", "globus_pallidus_external") proj );
        ( "medium_spiny_neuron only possibly projects (OR node)",
          List.mem ("medium_spiny_neuron", "globus_pallidus_external") poss
          && not (List.exists (fun (a, _) -> a = "medium_spiny_neuron") proj) );
        ( "my_dendrite isa* dendrite",
          List.mem "dendrite" (Closure.ancestors dm' "my_dendrite") );
      ]
    in
    Util.table ~columns:[ "derived knowledge (paper narrative)"; "holds" ]
      (List.map (fun (l, b) -> [ l; string_of_bool b ]) checks));
  (* incremental registration vs full rebuild, as the map grows: the
     structural merge must stay flat; the optional satisfiability guard
     pays one whole-map EL classification *)
  print_newline ();
  Util.note "registration cost vs domain-map size:";
  let rows =
    List.map
      (fun n ->
        let big =
          Dmap.merge (Neuro.Anatom.sprawl ~concepts:n ~seed:13) Neuro.Anatom.fig3_base
        in
        let ms_merge =
          Util.time_median (fun () ->
              ignore (Register.register ~guard:false big Neuro.Anatom.fig3_registration))
        in
        let ms_guarded =
          Util.time_median (fun () ->
              ignore (Register.register big Neuro.Anatom.fig3_registration))
        in
        let ms_rebuild =
          Util.time_median (fun () ->
              ignore (Dmap.of_axioms (Dmap.to_axioms big @ Neuro.Anatom.fig3_registration)))
        in
        [ Util.fint n; Util.fms ms_merge; Util.fms ms_guarded; Util.fms ms_rebuild ])
      [ 50; 100; 200; 400; 800 ]
  in
  Util.table
    ~columns:
      [ "map concepts"; "merge ms"; "merge+guard ms"; "axiom rebuild ms" ]
    rows;
  Util.note "shape check: the structural merge stays flat; the EL guard grows";
  Util.note "polynomially with the map (Prop 1: full reasoning is optional)."
