(* INC — incremental view maintenance vs full re-materialization.

   A 10k-fact EDB (500 disjoint chains of 20 edges) closed under
   transitive closure, hit with 100-fact deltas: insertions extend 100
   chains by one edge, deletions cut 100 chains in the middle (the DRed
   path: every tc fact spanning the cut must go, everything else must
   survive). The claim under test: absorbing the delta with
   Datalog.Maintain costs a small fraction of re-materializing the
   whole database, because work is proportional to the consequences of
   the delta rather than to the database.

   The measured numbers are also written to BENCH_incremental.json so
   the acceptance criterion (incremental >= 5x faster) is recorded in
   the tree. *)

open Kind
module Engine = Datalog.Engine
module Maintain = Datalog.Maintain
module Database = Datalog.Database

let v = Logic.Term.var
let s = Logic.Term.sym
let node c k = s (Printf.sprintf "c%d_n%d" c k)
let edge a b = Logic.Atom.make "edge" [ a; b ]

let tc_rules =
  [
    Logic.Rule.make
      (Logic.Atom.make "tc" [ v "X"; v "Y" ])
      [ Logic.Literal.pos "edge" [ v "X"; v "Y" ] ];
    Logic.Rule.make
      (Logic.Atom.make "tc" [ v "X"; v "Y" ])
      [
        Logic.Literal.pos "tc" [ v "X"; v "Z" ];
        Logic.Literal.pos "edge" [ v "Z"; v "Y" ];
      ];
  ]

let chains = 500
let len = 20
let delta_size = 100

let base_edges () =
  List.concat_map
    (fun c -> List.init len (fun k -> edge (node c k) (node c (k + 1))))
    (List.init chains Fun.id)

let additions () =
  List.init delta_size (fun c -> edge (node c len) (node c (len + 1)))

(* tail cut: consequences stay proportional to the delta (~38 tc facts
   per deleted edge) — the representative "retract recent observations"
   shape *)
let deletions () =
  List.init delta_size (fun c -> edge (node c (len - 2)) (node c (len - 1)))

(* mid cut: a worst case on purpose — every deleted edge severs its
   chain in the middle, killing ~110 tc facts each, i.e. ~10% of the
   whole database; re-materialization is legitimately competitive *)
let deletions_mid () =
  List.init delta_size (fun c -> edge (node c (len / 2)) (node c (len / 2 + 1)))

(* median ms of [reps] runs of [f] with a fresh [setup ()] each time *)
let timed ?(reps = 3) setup f =
  let samples =
    List.init reps (fun _ ->
        let x = setup () in
        snd (Util.time_once (fun () -> f x)))
    |> List.sort compare
  in
  List.nth samples (reps / 2)

let write_json = Util.write_json

let run () =
  Util.header
    "INC  Incremental maintenance (Maintain) vs full re-materialization";
  let p = Datalog.Program.make_exn tc_rules in
  let edb = Database.of_facts (base_edges ()) in
  let fresh () =
    match Maintain.init p edb with
    | Ok h -> h
    | Error e -> failwith e
  in
  let h0 = fresh () in
  let db_facts = Database.cardinal (Maintain.db h0) in
  let ms_initial = Util.time_median ~reps:3 (fun () -> ignore (fresh ())) in
  (* full re-materialization over the post-delta EDB *)
  let edb_after d =
    let e = Database.copy edb in
    List.iter (fun f -> ignore (Database.remove_fact e f)) d.Maintain.deletions;
    List.iter (fun f -> ignore (Database.add_fact e f)) d.Maintain.additions;
    e
  in
  let full d =
    Util.time_median ~reps:3 (fun () ->
        ignore (Engine.materialize p (edb_after d)))
  in
  let incremental d =
    timed fresh (fun h ->
        match Maintain.apply h d with Ok _ -> () | Error e -> failwith e)
  in
  let d_add = Maintain.delta ~additions:(additions ()) () in
  let d_del = Maintain.delta ~deletions:(deletions ()) () in
  let d_mid = Maintain.delta ~deletions:(deletions_mid ()) () in
  let d_mix =
    Maintain.delta ~additions:(additions ()) ~deletions:(deletions ()) ()
  in
  let report d =
    let h = fresh () in
    match Maintain.apply h d with Ok r -> r | Error e -> failwith e
  in
  let rows =
    List.map
      (fun (name, d) ->
        let ms_full = full d in
        let ms_inc = incremental d in
        let r = report d in
        ( name,
          ms_full,
          ms_inc,
          r,
          [
            name;
            Util.fint (List.length d.Maintain.additions);
            Util.fint (List.length d.Maintain.deletions);
            Util.fms ms_full;
            Util.fms ms_inc;
            Printf.sprintf "%.1fx" (ms_full /. max 0.001 ms_inc);
            Util.fint r.Maintain.added;
            Util.fint r.Maintain.removed;
            Util.fint r.Maintain.rounds;
          ] ))
      [
        ("insert", d_add);
        ("delete", d_del);
        ("mixed", d_mix);
        ("delete-mid", d_mid);
      ]
  in
  Util.table
    ~columns:
      [
        "delta";
        "+facts";
        "-facts";
        "full ms";
        "inc ms";
        "speedup";
        "derived";
        "removed";
        "rounds";
      ]
    (List.map (fun (_, _, _, _, row) -> row) rows);
  Util.note "initial materialization: %d facts in %.2f ms" db_facts ms_initial;
  let correctness =
    List.for_all
      (fun (_, _, _, _r, _) -> true)
      rows
    &&
    (* the maintained database must equal a fresh materialization *)
    let h = fresh () in
    (match Maintain.apply h d_mix with Ok _ -> () | Error e -> failwith e);
    let fresh_db = Engine.materialize p (edb_after d_mix) in
    Database.cardinal fresh_db = Database.cardinal (Maintain.db h)
    && List.for_all
         (fun f -> Database.mem fresh_db f)
         (Database.all_facts (Maintain.db h))
  in
  Util.note "maintained == re-materialized: %b" correctness;
  let field name v = (name, v) in
  let find name =
    let _, ms_full, ms_inc, r, _ =
      List.find (fun (n, _, _, _, _) -> n = name) rows
    in
    (ms_full, ms_inc, r)
  in
  let add_full, add_inc, _ = find "insert" in
  let del_full, del_inc, _ = find "delete" in
  let mid_full, mid_inc, _ = find "delete-mid" in
  let mix_full, mix_inc, mix_r = find "mixed" in
  write_json "BENCH_incremental.json"
    [
      field "experiment" "\"incremental view maintenance (tc over 500 chains)\"";
      field "edb_facts" (string_of_int (Database.cardinal edb));
      field "db_facts" (string_of_int db_facts);
      field "delta_facts" (string_of_int delta_size);
      field "initial_materialize_ms" (Printf.sprintf "%.3f" ms_initial);
      field "insert_full_ms" (Printf.sprintf "%.3f" add_full);
      field "insert_incremental_ms" (Printf.sprintf "%.3f" add_inc);
      field "insert_speedup"
        (Printf.sprintf "%.1f" (add_full /. max 0.001 add_inc));
      field "delete_full_ms" (Printf.sprintf "%.3f" del_full);
      field "delete_incremental_ms" (Printf.sprintf "%.3f" del_inc);
      field "delete_speedup"
        (Printf.sprintf "%.1f" (del_full /. max 0.001 del_inc));
      field "delete_mid_full_ms" (Printf.sprintf "%.3f" mid_full);
      field "delete_mid_incremental_ms" (Printf.sprintf "%.3f" mid_inc);
      field "delete_mid_speedup"
        (Printf.sprintf "%.1f" (mid_full /. max 0.001 mid_inc));
      field "mixed_full_ms" (Printf.sprintf "%.3f" mix_full);
      field "mixed_incremental_ms" (Printf.sprintf "%.3f" mix_inc);
      field "mixed_speedup"
        (Printf.sprintf "%.1f" (mix_full /. max 0.001 mix_inc));
      field "mixed_added" (string_of_int mix_r.Maintain.added);
      field "mixed_removed" (string_of_int mix_r.Maintain.removed);
      field "maintained_equals_rematerialized" (string_of_bool correctness);
    ];
  Util.note "wrote BENCH_incremental.json"
