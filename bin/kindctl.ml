(* kindctl — command-line access to the KIND mediator stack.

   Subcommands:
     run        evaluate an F-logic program file and answer its queries
     check      audit an F-logic program for integrity violations
     lint       static analysis (kindlint) of programs or the demo
                federation, without evaluating anything
     provenance per derived predicate, the registered sources that can
                transitively reach it (abstract interpretation)
     translate  run a CM plug-in over an XML document
     dmap       print/export the ANATOM domain map (text or Graphviz)
     classify   subsumers of a concept in the ANATOM map
     demo       the Section 5 walk-through, with ablation switches
     maintain   stream source updates against a live materialization and
                report incremental-maintenance and result-cache stats
     checkpoint write a durable checkpoint of the demo federation
     recover    rebuild the demo federation from checkpoint + WAL
     wal-status inspect a durability directory *)

open Kind
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --domains N: the single parallelism hook for every layer. Setting
   the pool default overrides KIND_DOMAINS, and every component whose
   config leaves domains at 0 (engine, maintenance handle, mediator
   gather) resolves its worker count through [Pool.env_domains]. *)
let domains_t =
  let doc =
    "Worker domains for parallel evaluation: semi-naive joins, \
     maintenance propagation and the federation gather all fan out \
     across $(docv) domains. Overrides $(b,KIND_DOMAINS); 1 forces \
     sequential evaluation (the default when neither is given)."
  in
  let set = function Some n -> Pool.set_default_domains n | None -> () in
  Term.(
    const set
    $ Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc))

let pp_answers lits answers =
  let vars =
    List.concat_map
      (fun l ->
        match l with
        | Flogic.Molecule.Pos m | Flogic.Molecule.Neg m -> Flogic.Molecule.vars m
        | _ -> [])
      lits
    |> List.filter (fun v -> not (String.length v > 1 && v.[0] = '_'))
    |> List.sort_uniq String.compare
  in
  if answers = [] then print_endline "  no."
  else
    List.iter
      (fun sub ->
        let bindings =
          List.filter_map
            (fun v ->
              match Logic.Subst.find v sub with
              | Some t -> Some (Printf.sprintf "%s = %s" v (Logic.Term.to_string t))
              | None -> None)
            vars
        in
        print_endline
          ("  " ^ if bindings = [] then "yes." else String.concat ", " bindings))
      answers

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"F-logic program")
  in
  let query =
    Arg.(value & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY"
           ~doc:"additional goal to solve, e.g. \"X : spine, X[diameter ->> D]\"")
  in
  let engine =
    Arg.(value & opt string "bottomup" & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"bottomup (materialize, default) or topdown (tabled, \
                 goal-directed; queries only, no aggregates/skolems)")
  in
  let solve_topdown t parsed goals =
    match Flogic.Fl_program.compile t with
    | Error e ->
      prerr_endline e;
      1
    | Ok p ->
      List.iter
        (fun lits ->
          Printf.printf "?- %s\n"
            (String.concat ", "
               (List.map
                  (fun l -> Format.asprintf "%a" Flogic.Molecule.pp_lit l)
                  lits));
          (* wrap the conjunctive goal in a fresh tabled predicate *)
          let vars =
            List.concat_map
              (fun l ->
                match l with
                | Flogic.Molecule.Pos m | Flogic.Molecule.Neg m ->
                  Flogic.Molecule.vars m
                | _ -> [])
              lits
            |> List.sort_uniq String.compare
            |> List.filter (fun v -> not (String.length v > 1 && v.[0] = '_'))
          in
          let goal_head =
            Logic.Atom.make "goal_" (List.map Logic.Term.var vars)
          in
          let body =
            List.concat_map
              (Flogic.Compile.body_literals parsed.Flogic.Fl_parser.signature)
              lits
          in
          match
            Datalog.Program.add_rule p (Logic.Rule.make goal_head body)
          with
          | Error e -> prerr_endline e
          | Ok p' -> (
            match
              Datalog.Topdown.solve p' (Datalog.Database.create ()) goal_head
            with
            | exception Datalog.Topdown.Unsupported m ->
              Printf.printf "  top-down unsupported here (%s); use --engine bottomup\n" m
            | tuples ->
              if tuples = [] then print_endline "  no."
              else
                List.iter
                  (fun tup ->
                    print_endline
                      ("  "
                      ^ String.concat ", "
                          (List.map2
                             (fun v t ->
                               Printf.sprintf "%s = %s" v (Logic.Term.to_string t))
                             vars tup)))
                  tuples))
        goals;
      0
  in
  let run () file query engine =
    match Flogic.Fl_parser.parse_program (read_file file) with
    | Error e ->
      prerr_endline e;
      1
    | Ok parsed -> (
      let t =
        Flogic.Fl_program.make ~signature:parsed.Flogic.Fl_parser.signature
          parsed.Flogic.Fl_parser.rules
      in
      let goals =
        parsed.Flogic.Fl_parser.queries
        @
        match query with
        | None -> []
        | Some q -> (
          match
            Flogic.Fl_parser.parse_query
              ~signature:parsed.Flogic.Fl_parser.signature q
          with
          | Ok lits -> [ lits ]
          | Error e ->
            prerr_endline e;
            [])
      in
      if String.equal engine "topdown" then solve_topdown t parsed goals
      else
        match Flogic.Fl_program.compile t with
        | Error e ->
          prerr_endline e;
          1
        | Ok _ ->
          let db = Flogic.Fl_program.run t in
          Printf.printf "%d facts derived.\n" (Datalog.Database.cardinal db);
          List.iter
            (fun lits ->
              Printf.printf "?- %s\n"
                (String.concat ", "
                   (List.map
                      (fun l -> Format.asprintf "%a" Flogic.Molecule.pp_lit l)
                      lits));
              pp_answers lits (Flogic.Fl_program.query t db lits))
            goals;
          0)
  in
  Cmd.v (Cmd.info "run" ~doc:"evaluate an F-logic program and answer its queries")
    Term.(const run $ domains_t $ file $ query $ engine)

(* ------------------------------------------------------------------ *)
(* check *)

let check_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"F-logic program")
  in
  let run () file =
    match Flogic.Fl_parser.parse_program (read_file file) with
    | Error e ->
      prerr_endline e;
      1
    | Ok parsed ->
      let t =
        Flogic.Fl_program.make ~signature:parsed.Flogic.Fl_parser.signature
          parsed.Flogic.Fl_parser.rules
      in
      let db = Flogic.Fl_program.run t in
      let ws = Flogic.Ic.violations db in
      if ws = [] then begin
        print_endline "consistent: no integrity-constraint witnesses.";
        0
      end
      else begin
        Printf.printf "%d violation(s):\n" (List.length ws);
        List.iter
          (fun w -> Format.printf "  %a@." Flogic.Ic.pp_witness w)
          ws;
        1
      end
  in
  Cmd.v
    (Cmd.info "check" ~doc:"audit an F-logic program for integrity violations")
    Term.(const run $ domains_t $ file)

(* ------------------------------------------------------------------ *)
(* lint *)

(* shared by [lint] and [cost]: 0 clean, 1 strict warnings, 2 errors,
   3 usage *)
let lint_exits =
  Cmd.Exit.info 0 ~doc:"no diagnostics (warnings only, without \
                        $(b,--strict))."
  :: Cmd.Exit.info 1 ~doc:"warning-severity diagnostics under \
                           $(b,--strict)."
  :: Cmd.Exit.info 2 ~doc:"reject-level (error-severity) diagnostics."
  :: Cmd.Exit.info 3 ~doc:"usage errors: no input given, unreadable or \
                           unparsable arguments."
  :: List.filter (fun i -> Cmd.Exit.info_code i <> 0) Cmd.Exit.defaults

let lint_cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE"
           ~doc:"F-logic program(s) to lint")
  in
  let demo =
    Arg.(value & flag & info [ "demo" ]
           ~doc:"lint the Section 5 demo federation (domain map, sources, \
                 IVDs, capabilities) instead of program files")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"machine-readable JSON output")
  in
  let sarif =
    Arg.(value & flag & info [ "sarif" ]
           ~doc:"SARIF 2.1.0 output (one run, rule ids $(i,pass/code)) — \
                 what CI uploads as a code-scanning artifact; takes \
                 precedence over $(b,--json)")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ]
           ~doc:"exit nonzero on warnings too, and treat a negative cycle \
                 as an error rather than relying on the well-founded \
                 fallback")
  in
  let scale =
    Arg.(value & opt int 10 & info [ "scale" ] ~docv:"N"
           ~doc:"rows per class for --demo")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N") in
  let run files demo json sarif strict scale seed =
    let lint_file f =
      match Flogic.Fl_parser.parse_program (read_file f) with
      | Error e ->
        [
          Analysis.Diagnostic.make ~severity:Analysis.Diagnostic.Error
            ~pass:"rules" ~code:"parse-error"
            ~location:(Analysis.Diagnostic.Source f) e;
        ]
      | Ok parsed ->
        Analysis.Kindlint.lint_program ~fallback_ok:(not strict)
          ~positions:parsed.Flogic.Fl_parser.rule_positions
          (Flogic.Fl_program.make
             ~signature:parsed.Flogic.Fl_parser.signature
             parsed.Flogic.Fl_parser.rules)
    in
    let demo_diags () =
      let med =
        Neuro.Sources.standard_mediator { Neuro.Sources.seed; scale }
      in
      Mediation.Lint.federation med
    in
    if files = [] && not demo then begin
      prerr_endline "lint: nothing to do; give program FILEs or --demo";
      3
    end
    else begin
      let per_file = List.map (fun f -> (f, lint_file f)) files in
      let demo_d = if demo then demo_diags () else [] in
      let sorted =
        Analysis.Diagnostic.sort (List.concat_map snd per_file @ demo_d)
      in
      if sarif then
        print_endline
          (Analysis.Diagnostic.list_to_sarif
             (List.map (fun (f, ds) -> (Some f, ds)) per_file
             @ if demo then [ (None, demo_d) ] else []))
      else if json then print_endline (Analysis.Diagnostic.list_to_json sorted)
      else begin
        List.iter
          (fun (f, ds) ->
            Format.printf "%s:@." f;
            Format.printf "%a@." Analysis.Diagnostic.pp_report ds)
          per_file;
        if demo then begin
          Format.printf "demo federation:@.";
          Format.printf "%a@." Analysis.Diagnostic.pp_report demo_d
        end
      end;
      if Analysis.Diagnostic.count sorted Analysis.Diagnostic.Error > 0 then 2
      else if
        strict
        && Analysis.Diagnostic.count sorted Analysis.Diagnostic.Warning > 0
      then 1
      else 0
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"kindlint: static analysis of F-logic programs and the demo \
             federation — rule safety, stratification, schema conformance, \
             capability feasibility, domain-map well-formedness"
       ~exits:lint_exits)
    Term.(const run $ files $ demo $ json $ sarif $ strict $ scale $ seed)

(* ------------------------------------------------------------------ *)
(* provenance *)

let json_str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* contain *)

let contain_cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE"
           ~doc:"F-logic program(s) to analyze")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"machine-readable JSON output")
  in
  let run files json =
    let module C = Analysis.Contain in
    let module T = Analysis.Terminate in
    if files = [] then begin
      prerr_endline "contain: nothing to do; give program FILEs";
      3
    end
    else begin
      let failed = ref false in
      let analyze f =
        match Flogic.Fl_parser.parse_program (read_file f) with
        | Error e ->
          failed := true;
          (f, Error e)
        | Ok parsed -> (
          let p =
            Flogic.Fl_program.make
              ~signature:parsed.Flogic.Fl_parser.signature
              parsed.Flogic.Fl_parser.rules
          in
          match
            try
              Ok
                ( (match Flogic.Fl_program.compile p with
                  | Ok dp -> Datalog.Program.rules dp
                  | Error e -> raise (Flogic.Compile.Compile_error e)),
                  List.concat_map
                    (Flogic.Compile.rule p.Flogic.Fl_program.signature)
                    p.Flogic.Fl_program.rules )
            with Flogic.Compile.Compile_error e -> Error e
          with
          | Error e ->
            failed := true;
            (f, Error e)
          | Ok (all, user_rules) ->
            let ctx = C.make_ctx ~rules:all () in
            let per_rule =
              List.map
                (fun r ->
                  let mini = C.minimize_rule ctx r in
                  ( r,
                    C.unsatisfiable ctx r,
                    C.implied_atoms ctx r,
                    if Logic.Rule.equal mini r then None else Some mini ))
                user_rules
            in
            (f, Ok (per_rule, T.analyze all)))
      in
      let reports = List.map analyze files in
      let term_json = function
        | T.Safe { refined } ->
          Printf.sprintf "{\"safe\":true,\"refined\":%b,\"cycle\":null}"
            refined
        | T.Unsafe cyc ->
          Printf.sprintf "{\"safe\":false,\"refined\":false,\"cycle\":%s}"
            (json_str (T.cycle_to_string cyc))
      in
      if json then begin
        let file_json (f, res) =
          match res with
          | Error e ->
            Printf.sprintf "{\"file\":%s,\"error\":%s}" (json_str f)
              (json_str e)
          | Ok (per_rule, verdict) ->
            let rule_json (r, unsat, implied, mini) =
              Printf.sprintf
                "{\"rule\":%s,\"unsatisfiable\":%s,\"implied\":[%s],\
                 \"minimized\":%s}"
                (json_str (Logic.Rule.to_string r))
                (match unsat with
                | None -> "null"
                | Some reason -> json_str reason)
                (String.concat ","
                   (List.map
                      (fun a -> json_str (Logic.Atom.to_string a))
                      implied))
                (match mini with
                | None -> "null"
                | Some m -> json_str (Logic.Rule.to_string m))
            in
            Printf.sprintf
              "{\"file\":%s,\"rules\":[%s],\"termination\":%s}" (json_str f)
              (String.concat ",\n  " (List.map rule_json per_rule))
              (term_json verdict)
        in
        Printf.printf "[%s]\n"
          (String.concat ",\n " (List.map file_json reports))
      end
      else
        List.iter
          (fun (f, res) ->
            Format.printf "%s:@." f;
            match res with
            | Error e -> Format.printf "  error: %s@." e
            | Ok (per_rule, verdict) ->
              List.iter
                (fun (r, unsat, implied, mini) ->
                  Format.printf "  %s@." (Logic.Rule.to_string r);
                  (match unsat with
                  | Some reason ->
                    Format.printf "    unsatisfiable: %s@." reason
                  | None -> ());
                  List.iter
                    (fun a ->
                      Format.printf "    implied atom: %s@."
                        (Logic.Atom.to_string a))
                    implied;
                  match mini with
                  | Some m ->
                    Format.printf "    minimized: %s@."
                      (Logic.Rule.to_string m)
                  | None -> ())
                per_rule;
              (match verdict with
              | T.Safe { refined = false } ->
                Format.printf "  termination: safe (weakly acyclic)@."
              | T.Safe { refined = true } ->
                Format.printf
                  "  termination: safe (super-weak-acyclicity refinement)@."
              | T.Unsafe cyc ->
                Format.printf "  termination: possible nontermination — %s@."
                  (T.cycle_to_string cyc)))
          reports;
      if !failed then 2 else 0
    end
  in
  Cmd.v
    (Cmd.info "contain"
       ~doc:"semantic containment analysis: per-rule satisfiability, \
             implied body atoms and the minimized rule (Chandra–Merlin \
             containment modulo the GCM axioms), plus the skolem-safety \
             termination verdict"
       ~exits:lint_exits)
    Term.(const run $ files $ json)

(* ------------------------------------------------------------------ *)
(* cost *)

let cost_cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE"
           ~doc:"F-logic program(s) to analyze")
  in
  let demo =
    Arg.(value & flag & info [ "demo" ]
           ~doc:"analyze the Section 5 demo federation (with the \
                 walkthrough views installed) instead of program files")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"machine-readable JSON output")
  in
  let budget =
    Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"N"
           ~doc:"row budget: a rule whose estimated result exceeds N rows \
                 (or is provably unbounded while synthesising fresh \
                 values) gets a reject-level over-budget error")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"exit nonzero on warnings too")
  in
  let scale =
    Arg.(value & opt int 10 & info [ "scale" ] ~docv:"N"
           ~doc:"rows per class for --demo")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N") in
  let run files demo json budget strict scale seed =
    let module C = Analysis.Cost_lint in
    let module Card = Analysis.Card in
    let module D = Analysis.Diagnostic in
    let error_report ~code f e =
      {
        C.empty with
        C.diags =
          [
            D.make ~severity:D.Error ~pass:"rules" ~code
              ~location:(D.Source f) e;
          ];
      }
    in
    let analyze_rules p rules =
      C.analyze ?budget
        ~assume_nonempty:
          (Analysis.Kindlint.open_predicate
             ~signature:p.Flogic.Fl_program.signature rules)
        rules
    in
    let report_of_file f =
      match Flogic.Fl_parser.parse_program (read_file f) with
      | Error e -> error_report ~code:"parse-error" f e
      | Ok parsed -> (
        let p =
          Flogic.Fl_program.make
            ~signature:parsed.Flogic.Fl_parser.signature
            parsed.Flogic.Fl_parser.rules
        in
        match Flogic.Fl_program.compile p with
        | Ok dp -> analyze_rules p (Datalog.Program.rules dp)
        | Error e -> (
          (* the whole program does not compile; like kindlint, still
             analyze the rules that are individually fine, with the
             GCM axioms in scope *)
          match
            List.concat_map
              (fun r ->
                try Flogic.Compile.rule p.Flogic.Fl_program.signature r
                with Flogic.Compile.Compile_error _ -> [])
              p.Flogic.Fl_program.rules
          with
          | exception Flogic.Compile.Compile_error e' ->
            error_report ~code:"compile-error" f e'
          | dl_rules -> (
            let safe =
              Flogic.Gcm_axioms.core
              @ (if p.Flogic.Fl_program.inheritance then
                   Flogic.Gcm_axioms.nonmonotonic_inheritance
                 else [])
              @ List.filter
                  (fun r -> Logic.Rule.safety_errors r = [])
                  dl_rules
            in
            match Datalog.Program.make safe with
            | Error _ -> error_report ~code:"compile-error" f e
            | Ok dp ->
              let r = analyze_rules p (Datalog.Program.rules dp) in
              {
                r with
                C.diags =
                  (error_report ~code:"compile-error" f e).C.diags
                  @ r.C.diags;
              })))
    in
    let demo_report () =
      let med =
        Neuro.Sources.standard_mediator { Neuro.Sources.seed; scale }
      in
      (* the provenance walkthrough views, so the report has IVDs to
         price (colocated is a genuine cross-product) *)
      (match
         Mediation.Mediator.add_ivd_text med
           "big_spine(X) :- X : 'SYNAPSE.spine_measure', X[diameter ->> \
            D], D > 0.5.\n\
            spiny_signal(N) :- N : neurotransmission.\n\
            colocated(N, X) :- spiny_signal(N), big_spine(X)."
       with
      | Ok () -> ()
      | Error e -> prerr_endline e);
      Mediation.Lint.cost ?budget med
    in
    let iv_json (i : Card.interval) =
      Printf.sprintf "{\"lo\":%d,\"hi\":%s}" i.Card.lo
        (match i.Card.hi with
        | None -> "null"
        | Some h -> string_of_int h)
    in
    let json_of_report (r : C.report) =
      let preds =
        List.map
          (fun (p, iv) ->
            Printf.sprintf "%s:%s" (json_str p) (iv_json iv))
          r.C.intervals
      in
      let costs =
        List.map
          (fun ((rule : Logic.Rule.t), (c : Card.rule_cost)) ->
            Printf.sprintf
              "{\"rule\":%s,\"order\":[%s],\"est\":%s,\"cost\":%s,\
               \"greedy_cost\":%s,\"cross_products\":%d,\
               \"recursive\":%b,\"growing\":%b}"
              (json_str (Logic.Rule.to_string rule))
              (String.concat "," (List.map string_of_int c.Card.order))
              (iv_json c.Card.est)
              (match c.Card.cost with
              | None -> "null"
              | Some n -> string_of_int n)
              (match c.Card.greedy_cost with
              | None -> "null"
              | Some n -> string_of_int n)
              c.Card.cross_products c.Card.recursive c.Card.growing)
          r.C.costs
      in
      Printf.sprintf
        "{\"intervals\":{%s},\n \"rules\":[%s],\n \"diagnostics\":%s}"
        (String.concat "," preds)
        (String.concat ",\n  " costs)
        (D.list_to_json (D.normalize r.C.diags))
    in
    let pp_text label (r : C.report) =
      Format.printf "%s:@." label;
      Format.printf "  per-predicate cardinality bounds:@.";
      List.iter
        (fun (p, iv) -> Format.printf "    %-28s %a@." p Card.pp_interval iv)
        r.C.intervals;
      if r.C.costs <> [] then Format.printf "  per-rule plans:@.";
      List.iter
        (fun ((rule : Logic.Rule.t), (c : Card.rule_cost)) ->
          Format.printf "    %s@." (Logic.Rule.to_string rule);
          Format.printf "      order [%s]  est %a%s%s%s@."
            (String.concat " " (List.map string_of_int c.Card.order))
            Card.pp_interval c.Card.est
            (match (c.Card.cost, c.Card.greedy_cost) with
            | Some o, Some g when o <> g ->
              Printf.sprintf "  cost %d (greedy %d)" o g
            | Some o, _ -> Printf.sprintf "  cost %d" o
            | None, _ -> "")
            (if c.Card.cross_products > 0 then "  [cross-product]" else "")
            (if c.Card.growing then "  [unbounded growth]" else ""))
        r.C.costs;
      let ds = D.normalize r.C.diags in
      if ds <> [] then Format.printf "%a@." D.pp_report ds
    in
    if files = [] && not demo then begin
      prerr_endline "cost: nothing to do; give program FILEs or --demo";
      3
    end
    else begin
      let labeled =
        List.map (fun f -> (f, report_of_file f)) files
        @ (if demo then [ ("demo federation", demo_report ()) ] else [])
      in
      if json then
        print_endline
          (match labeled with
          | [ (_, r) ] -> json_of_report r
          | _ ->
            Printf.sprintf "{%s}"
              (String.concat ",\n"
                 (List.map
                    (fun (l, r) ->
                      Printf.sprintf "%s:%s" (json_str l)
                        (json_of_report r))
                    labeled)))
      else List.iter (fun (l, r) -> pp_text l r) labeled;
      let all = List.concat_map (fun (_, r) -> r.C.diags) labeled in
      if D.count all D.Error > 0 then 2
      else if strict && D.count all D.Warning > 0 then 1
      else 0
    end
  in
  Cmd.v
    (Cmd.info "cost"
       ~doc:"cardinality/cost abstract interpretation: per-predicate row \
             bounds, per-rule join orders and estimates, and complexity \
             hazards (cross-product joins, unbounded skolem growth, \
             over-budget views)"
       ~exits:lint_exits)
    Term.(const run $ files $ demo $ json $ budget $ strict $ scale $ seed)

let provenance_cmd =
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"F-logic program whose views to analyze (instead of --demo)")
  in
  let demo =
    Arg.(value & flag & info [ "demo" ]
           ~doc:"analyze the IVDs of the Section 5 demo federation")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"machine-readable JSON output")
  in
  let srcs =
    Arg.(value & opt_all string [] & info [ "source" ] ~docv:"NAME"
           ~doc:"treat NAME as a registered source (FILE mode; repeatable)")
  in
  let scale =
    Arg.(value & opt int 10 & info [ "scale" ] ~docv:"N"
           ~doc:"rows per class for --demo")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N") in
  let run file demo json srcs scale seed =
    let analyzed =
      if demo then begin
        let med =
          Neuro.Sources.standard_mediator { Neuro.Sources.seed; scale }
        in
        (* the walkthrough views: one per source, one composed *)
        (match
           Mediation.Mediator.add_ivd_text med
             "big_spine(X) :- X : 'SYNAPSE.spine_measure', X[diameter ->> \
              D], D > 0.5.\n\
              spiny_signal(N) :- N : neurotransmission.\n\
              colocated(N, X) :- spiny_signal(N), big_spine(X)."
         with
        | Ok () -> ()
        | Error e -> prerr_endline e);
        Some (Mediation.Lint.provenance med, Mediation.Mediator.ivds med)
      end
      else
        match file with
        | None -> None
        | Some f -> (
          match Flogic.Fl_parser.parse_program (read_file f) with
          | Error e ->
            prerr_endline e;
            None
          | Ok parsed ->
            let rules = parsed.Flogic.Fl_parser.rules in
            Some (Analysis.Prov_lint.analyze ~sources:srcs rules, rules))
    in
    match analyzed with
    | None ->
      prerr_endline "provenance: nothing to do; give a program FILE or --demo";
      2
    | Some (result, rules) ->
      if json then begin
        let preds =
          List.map
            (fun (p, ss) ->
              Printf.sprintf "%s:[%s]" (json_str p)
                (String.concat "," (List.map json_str ss)))
            result.Analysis.Prov_lint.predicates
        in
        let rule_objs =
          List.map2
            (fun r ss ->
              Printf.sprintf "{\"rule\":%s,\"sources\":[%s]}"
                (json_str (Flogic.Molecule.rule_to_string r))
                (String.concat "," (List.map json_str ss)))
            rules result.Analysis.Prov_lint.rule_sources
        in
        Printf.printf
          "{\"predicates\":{%s},\n \"rules\":[%s],\n \"diagnostics\":%s}\n"
          (String.concat "," preds)
          (String.concat ",\n  " rule_objs)
          (Analysis.Diagnostic.list_to_json result.Analysis.Prov_lint.diags)
      end
      else begin
        Printf.printf "source provenance of %d rule(s):\n" (List.length rules);
        List.iter2
          (fun r ss ->
            Printf.printf "  %s\n    <- %s\n"
              (Flogic.Molecule.rule_to_string r)
              (if ss = [] then "(no registered source)"
               else String.concat ", " ss))
          rules result.Analysis.Prov_lint.rule_sources;
        print_endline "per derived predicate:";
        List.iter
          (fun (p, ss) ->
            Printf.printf "  %-24s %s\n" p
              (if ss = [] then "(none)" else String.concat ", " ss))
          result.Analysis.Prov_lint.predicates;
        if result.Analysis.Prov_lint.diags <> [] then
          Format.printf "%a"
            Analysis.Diagnostic.pp_report result.Analysis.Prov_lint.diags
      end;
      if Analysis.Diagnostic.errors result.Analysis.Prov_lint.diags <> []
      then 1
      else 0
  in
  Cmd.v
    (Cmd.info "provenance"
       ~doc:"which registered sources can reach each derived predicate \
             (abstract interpretation over the view graph)")
    Term.(const run $ file $ demo $ json $ srcs $ scale $ seed)

(* ------------------------------------------------------------------ *)
(* explain *)

let explain_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"F-logic program")
  in
  let fact_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FACT"
           ~doc:"ground fact to explain, e.g. \"tc(a, c)\" or \"s1 : spine\"")
  in
  let run file fact_s =
    match Flogic.Fl_parser.parse_program (read_file file) with
    | Error e ->
      prerr_endline e;
      1
    | Ok parsed -> (
      let t =
        Flogic.Fl_program.make ~signature:parsed.Flogic.Fl_parser.signature
          parsed.Flogic.Fl_parser.rules
      in
      match Flogic.Fl_program.compile t with
      | Error e ->
        prerr_endline e;
        1
      | Ok p -> (
        match
          Flogic.Fl_parser.parse_query
            ~signature:parsed.Flogic.Fl_parser.signature fact_s
        with
        | Error e ->
          prerr_endline e;
          1
        | Ok lits -> (
          let atoms =
            List.concat_map
              (Flogic.Compile.body_literals parsed.Flogic.Fl_parser.signature)
              lits
            |> List.filter_map (function
                 | Logic.Literal.Pos a -> Some a
                 | _ -> None)
          in
          match atoms with
          | [ goal ] when Logic.Atom.is_ground goal -> (
            let facts, rules_only = Datalog.Program.split_facts p in
            let edb = Datalog.Database.of_facts facts in
            let db =
              Datalog.Engine.materialize p (Datalog.Database.create ())
            in
            let rules_p =
              Datalog.Program.make_exn (Datalog.Program.rules rules_only)
            in
            match Datalog.Explain.explain rules_p db ~edb goal with
            | Some proof ->
              Format.printf "%a@." Datalog.Explain.pp proof;
              Printf.printf "rests on %d source fact(s)\n"
                (List.length
                   (List.sort_uniq compare (Datalog.Explain.leaves proof)));
              0
            | None ->
              Printf.printf "%s does not hold.\n" fact_s;
              1)
          | _ ->
            prerr_endline "explain expects exactly one ground fact";
            1)))
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"derivation tree (why-provenance) for a fact")
    Term.(const run $ file $ fact_arg)

(* ------------------------------------------------------------------ *)
(* translate *)

let translate_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"XML document")
  in
  let format =
    Arg.(value & opt string "gcm-xml" & info [ "f"; "format" ] ~docv:"FORMAT"
           ~doc:"CM dialect: gcm-xml, er-xml, uxf or rdfs")
  in
  let run file format =
    let reg = Cm_plugins.Defaults.registry () in
    match Cm_plugins.Plugin.translate_string reg ~format (read_file file) with
    | Error e ->
      prerr_endline e;
      1
    | Ok tr ->
      Format.printf "%a" Gcm.Schema.pp tr.Cm_plugins.Plugin.schema;
      Printf.printf "facts (%d):\n" (List.length tr.Cm_plugins.Plugin.facts);
      List.iter
        (fun m -> Format.printf "  %a.@." Flogic.Molecule.pp m)
        tr.Cm_plugins.Plugin.facts;
      List.iter
        (fun (cls, concept, ctx) ->
          Printf.printf "anchor: %s @ %s%s\n" cls concept
            (if ctx = [] then "" else " [" ^ String.concat " " ctx ^ "]"))
        tr.Cm_plugins.Plugin.anchors;
      0
  in
  Cmd.v
    (Cmd.info "translate" ~doc:"run a CM plug-in over an XML document")
    Term.(const run $ file $ format)

(* ------------------------------------------------------------------ *)
(* dmap *)

let which_map =
  Arg.(value & opt string "full" & info [ "m"; "map" ] ~docv:"MAP"
         ~doc:"fig1, fig3 (base + registration) or full")

let get_map = function
  | "fig1" -> (Neuro.Anatom.fig1, [])
  | "fig3" -> (
    match
      Domain_map.Register.register Neuro.Anatom.fig3_base
        Neuro.Anatom.fig3_registration
    with
    | Ok out -> (out.Domain_map.Register.dmap, out.Domain_map.Register.added_concepts)
    | Error e -> failwith e)
  | "full" -> (Neuro.Anatom.full, [])
  | m -> failwith ("unknown map " ^ m ^ " (use fig1, fig3 or full)")

let dmap_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"emit Graphviz") in
  let run map dot =
    let dm, highlight = get_map map in
    if dot then print_string (Domain_map.Dmap.to_dot ~highlight dm)
    else Format.printf "%a" Domain_map.Dmap.pp dm;
    0
  in
  Cmd.v
    (Cmd.info "dmap" ~doc:"print or export a domain map")
    Term.(const run $ which_map $ dot)

(* ------------------------------------------------------------------ *)
(* classify *)

let classify_cmd =
  let concept =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CONCEPT")
  in
  let run map concept =
    let dm, _ = get_map map in
    match Domain_map.Register.classification dm concept with
    | Ok supers ->
      Printf.printf "%s is subsumed by: %s\n" concept (String.concat ", " supers);
      0
    | Error f ->
      Printf.printf "outside the decidable fragment: %s\n" f;
      1
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"named subsumers of a concept (EL completion)")
    Term.(const run $ which_map $ concept)

(* ------------------------------------------------------------------ *)
(* query: federated conjunctive queries over the demo federation *)

let query_cmd =
  let goal =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"GOAL"
           ~doc:"e.g. \"X : spine, X[diameter ->> D], D > 0.6\"")
  in
  let scale =
    Arg.(value & opt int 50 & info [ "scale" ] ~docv:"N" ~doc:"rows per class")
  in
  let run () goal scale =
    let med =
      Neuro.Sources.standard_mediator { Neuro.Sources.seed = 42; scale }
    in
    match Mediation.Conjunctive.run_text med goal with
    | Error e ->
      prerr_endline e;
      1
    | Ok (answers, report) ->
      Format.printf "%a" Mediation.Conjunctive.pp_report report;
      (match
         Flogic.Fl_parser.parse_query
           ~signature:(Mediation.Mediator.signature med) goal
       with
      | Ok lits -> pp_answers lits answers
      | Error _ -> ());
      0
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"plan and run a federated conjunctive query over the demo sources")
    Term.(const run $ domains_t $ goal $ scale)

(* ------------------------------------------------------------------ *)
(* demo *)

let demo_cmd =
  let scale =
    Arg.(value & opt int 50 & info [ "scale" ] ~docv:"N" ~doc:"rows per class")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N") in
  let no_index = Arg.(value & flag & info [ "no-index" ] ~doc:"disable the semantic index") in
  let no_push = Arg.(value & flag & info [ "no-pushdown" ] ~doc:"disable selection pushdown") in
  let no_lub = Arg.(value & flag & info [ "no-lub" ] ~doc:"use the whole-map root") in
  let run () scale seed no_index no_push no_lub =
    let config =
      {
        Mediation.Mediator.default_config with
        Mediation.Mediator.use_semantic_index = not no_index;
        pushdown = not no_push;
        use_lub = not no_lub;
      }
    in
    let med =
      Neuro.Sources.standard_mediator ~config { Neuro.Sources.seed; scale }
    in
    match
      Mediation.Section5.calcium_binding_query med ~organism:"rat"
        ~transmitting_compartment:"parallel_fiber" ~ion:"calcium" ()
    with
    | Ok o ->
      Mediation.Section5.pp_outcome Format.std_formatter o;
      0
    | Error e ->
      prerr_endline e;
      1
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"the Section 5 calcium-binding-protein walk-through")
    Term.(const run $ domains_t $ scale $ seed $ no_index $ no_push $ no_lub)

(* ------------------------------------------------------------------ *)
(* maintain: a live update stream against the materialized mediator *)

let maintain_cmd =
  let scale =
    Arg.(value & opt int 50 & info [ "scale" ] ~docv:"N" ~doc:"rows per class")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N") in
  let updates =
    Arg.(value & opt int 5 & info [ "updates" ] ~docv:"K"
           ~doc:"number of source updates to stream")
  in
  let goal =
    Arg.(value & opt string "X : spine, X[diameter ->> D], D > 0.6"
           & info [ "q"; "query" ] ~docv:"GOAL"
             ~doc:"query run before and after the update stream")
  in
  let assertion =
    Arg.(value & flag & info [ "assertion-mode" ]
           ~doc:"execute domain-map axioms as assertions (Section 4). The \
                 skolem rules negate through their own consequences, so \
                 the program is unstratified and updates fall back to \
                 full rebuilds; the default (integrity-constraint mode, \
                 inheritance off) keeps the materialization stratified \
                 and maintainable")
  in
  let run () scale seed updates goal assertion =
    let config =
      if assertion then Mediation.Mediator.default_config
      else
        {
          Mediation.Mediator.default_config with
          Mediation.Mediator.dl_mode = Dl.Translate.Ic;
          inheritance = false;
        }
    in
    let med =
      Neuro.Sources.standard_mediator ~config { Neuro.Sources.seed; scale }
    in
    let ask label =
      match Mediation.Mediator.query_text med goal with
      | Error e ->
        prerr_endline e;
        false
      | Ok answers ->
        Printf.printf "%-32s %d answer(s)\n" label (List.length answers);
        true
    in
    let pp_action = function
      | Datalog.Maintain.Skipped -> "skipped"
      | Datalog.Maintain.Propagated -> "propagated"
      | Datalog.Maintain.Recomputed -> "recomputed"
    in
    let pp_report k (r : Datalog.Maintain.report) =
      Printf.printf
        "update %-2d +%d/-%d facts in %d round(s); %d/%d strata skipped; \
         %d predicate(s) touched\n"
        k r.Datalog.Maintain.added r.Datalog.Maintain.removed
        r.Datalog.Maintain.rounds r.Datalog.Maintain.skipped
        r.Datalog.Maintain.strata
        (List.length r.Datalog.Maintain.touched);
      List.iter
        (fun (s : Datalog.Maintain.stratum_report) ->
          if s.Datalog.Maintain.action <> Datalog.Maintain.Skipped then
            Printf.printf "  stratum %-3d %-10s +%d -%d\n"
              s.Datalog.Maintain.stratum
              (pp_action s.Datalog.Maintain.action)
              s.Datalog.Maintain.added s.Datalog.Maintain.removed)
        r.Datalog.Maintain.per_stratum
    in
    let spine k =
      let id = Logic.Term.sym (Printf.sprintf "live_spine_%d" k) in
      [
        Flogic.Molecule.Isa (id, Logic.Term.sym "spine_measure");
        Flogic.Molecule.Meth_val (id, "diameter", Logic.Term.float 0.9);
        Flogic.Molecule.Meth_val (id, "location", Logic.Term.sym "pyramidal_cell");
        Flogic.Molecule.Meth_val (id, "species", Logic.Term.str "rat");
      ]
    in
    let push k ~additions ~deletions =
      match
        Mediation.Mediator.update_source med ~source:"SYNAPSE" ~additions
          ~deletions ()
      with
      | Error e ->
        prerr_endline e;
        false
      | Ok None ->
        print_endline "no materialization live; store updated";
        true
      | Ok (Some r) ->
        pp_report k r;
        true
    in
    let ok = ref (ask "initial query (cold):" && ask "repeat query (cached):") in
    for k = 1 to updates do
      ok := !ok && push k ~additions:(spine k) ~deletions:[]
    done;
    if updates > 0 then
      (* retract the first streamed observation again: the DRed path *)
      ok := !ok && push (updates + 1) ~additions:[] ~deletions:(spine 1);
    ok := !ok && ask "query after updates (cold):" && ask "repeat query (cached):";
    let s = Mediation.Mediator.cache_stats med in
    Printf.printf
      "result cache: %d hit(s), %d miss(es), %d invalidation(s); %d \
       incremental pass(es), %d full rebuild(s)\n"
      s.Mediation.Mediator.hits s.Mediation.Mediator.misses
      s.Mediation.Mediator.invalidated s.Mediation.Mediator.maintained
      s.Mediation.Mediator.rebuilt;
    if !ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "maintain"
       ~doc:"stream source updates into a live materialization and report \
             maintenance + cache statistics")
    Term.(const run $ domains_t $ scale $ seed $ updates $ goal $ assertion)

(* ------------------------------------------------------------------ *)
(* health: the fault-tolerance runtime over the demo federation *)

let health_cmd =
  let scale =
    Arg.(value & opt int 20 & info [ "scale" ] ~docv:"N" ~doc:"rows per class")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N") in
  let faults =
    Arg.(
      value & opt_all string []
      & info [ "fault" ] ~docv:"SRC=KIND[:N]"
          ~doc:
            "inject a deterministic fault plan on a demo source (SYNAPSE, \
             NCMIR, SENSELAB) before querying. KIND is one of: crash, \
             timeout, flaky[:K] (K transient errors, default 2), slow[:MS], \
             garble, truncate[:PERMILLE], stale. Repeatable.")
  in
  let revives =
    Arg.(
      value & opt_all string []
      & info [ "revive" ] ~docv:"SRC"
          ~doc:
            "after the degraded query, bring SRC back through the Figure-3 \
             re-registration path and query again. Repeatable.")
  in
  let goal =
    Arg.(value & opt string "X : spine, X[diameter ->> D], D > 0.6"
           & info [ "q"; "query" ] ~docv:"GOAL")
  in
  let run () scale seed faults revives goal =
    let module F = Wrapper.Fault in
    let module M = Mediation.Mediator in
    let module R = Mediation.Runtime in
    let parse_fault spec =
      match String.index_opt spec '=' with
      | None -> Error (spec ^ ": expected SRC=KIND[:N]")
      | Some i ->
        let src = String.sub spec 0 i in
        let kind = String.sub spec (i + 1) (String.length spec - i - 1) in
        let kind, arg =
          match String.index_opt kind ':' with
          | None -> (kind, None)
          | Some j ->
            ( String.sub kind 0 j,
              int_of_string_opt
                (String.sub kind (j + 1) (String.length kind - j - 1)) )
        in
        let script events = Ok (src, F.Script events) in
        (match kind with
        | "crash" -> script [ { F.at = 1; fault = F.Crash } ]
        | "stale" -> script [ { F.at = 1; fault = F.Stale_caps } ]
        | "flaky" ->
          script
            (List.init
               (Option.value ~default:2 arg)
               (fun i -> { F.at = i + 1; fault = F.Transient "flaky" }))
        | "timeout" -> Ok (src, F.Always F.Timeout)
        | "slow" -> Ok (src, F.Always (F.Delay (Option.value ~default:80 arg)))
        | "garble" -> Ok (src, F.Always F.Garble)
        | "truncate" ->
          Ok (src, F.Always (F.Truncate (Option.value ~default:500 arg)))
        | k -> Error (spec ^ ": unknown fault kind " ^ k))
    in
    let med = Neuro.Sources.standard_mediator { Neuro.Sources.seed; scale } in
    let apply spec =
      match parse_fault spec with
      | Error e ->
        prerr_endline e;
        false
      | Ok (src, plan) -> (
        match M.set_fault_plan med ~source:src plan with
        | Ok () -> true
        | Error e ->
          prerr_endline e;
          false)
    in
    let pp_completeness (c : M.completeness) =
      Printf.printf "contributed: %s\n"
        (if c.M.contributed = [] then "(none)"
         else String.concat ", " c.M.contributed);
      List.iter
        (fun (s, why) -> Printf.printf "skipped:     %s (%s)\n" s why)
        c.M.skipped;
      if c.M.suspect <> [] then
        Printf.printf "suspect:     %s\n" (String.concat ", " c.M.suspect)
    in
    let ask label =
      match M.query_text med goal with
      | Error e ->
        prerr_endline e;
        false
      | Ok answers ->
        Printf.printf "%-24s %d answer(s)\n" label (List.length answers);
        pp_completeness (M.completeness med);
        true
    in
    if List.for_all apply faults then begin
      let ok = ref (ask "query:") in
      print_newline ();
      Printf.printf "%-10s %-9s %6s %6s %7s %6s %9s\n" "source" "breaker"
        "calls" "fails" "retries" "trips" "absorbed";
      List.iter
        (fun (name, (h : R.health)) ->
          Printf.printf "%-10s %-9s %6d %6d %7d %6d %9d%s\n" name
            (R.state_to_string h.R.state)
            h.R.calls h.R.failures h.R.retries h.R.trips h.R.absorbed
            (if h.R.quarantined then "  [quarantined]" else ""))
        (M.health med);
      let radius = Mediation.Lint.blast_radius med in
      List.iter
        (fun (s, _) ->
          match List.assoc_opt s radius with
          | Some (_ :: _ as preds) ->
            Printf.printf "losing %s can deplete: %s\n" s
              (String.concat ", " preds)
          | _ -> ())
        (M.completeness med).M.skipped;
      List.iter
        (fun src ->
          print_newline ();
          match M.revive_source med src with
          | Error e ->
            prerr_endline e;
            ok := false
          | Ok () ->
            Printf.printf "revived %s\n" src;
            ok := !ok && ask "query after revival:")
        revives;
      let totals = R.totals (M.runtime med) in
      Printf.printf
        "\nruntime: %d fetch(es), %d failure(s), %d retrie(s), %d trip(s); \
         %d degraded quer(ies); virtual clock %d ms\n"
        totals.R.total_calls totals.R.total_failures totals.R.total_retries
        totals.R.total_trips (M.degraded_queries med)
        (R.clock (M.runtime med));
      if !ok then 0 else 1
    end
    else 1
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:"query the demo federation under injected faults and report \
             per-source breaker state, completeness and degradation")
    Term.(const run $ domains_t $ scale $ seed $ faults $ revives $ goal)

(* ------------------------------------------------------------------ *)
(* checkpoint / recover / wal-status: the durability surface over the
   demo federation. The store directory comes from --dir or the
   KIND_DURABLE_DIR environment variable. *)

let dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR"
        ~doc:
          "durability directory (checkpoint, write-ahead log and \
           federation state). Defaults to $(b,KIND_DURABLE_DIR).")

let demo_scale = Arg.(value & opt int 20 & info [ "scale" ] ~docv:"N" ~doc:"rows per class")
let demo_seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N")

let checkpoint_cmd =
  let updates =
    Arg.(value & opt int 0 & info [ "updates" ] ~docv:"K"
           ~doc:"source updates to stream (and log to the WAL) after the \
                 checkpoint, so a later $(b,recover) has a suffix to replay")
  in
  let run () dir scale seed updates =
    let med =
      Neuro.Sources.standard_mediator
        ~config:
          {
            Mediation.Mediator.default_config with
            Mediation.Mediator.dl_mode = Dl.Translate.Ic;
            inheritance = false;
            durability =
              Option.map
                (fun dir -> Datalog.Engine.durability ~dir ())
                dir;
          }
        { Neuro.Sources.seed; scale }
    in
    match Mediation.Mediator.checkpoint ?dir med with
    | Error e ->
      prerr_endline e;
      1
    | Ok bytes ->
      Printf.printf "checkpoint written (%d bytes)\n" bytes;
      let ok = ref true in
      for k = 1 to updates do
        let id = Logic.Term.sym (Printf.sprintf "ckpt_spine_%d" k) in
        match
          Mediation.Mediator.update_source med ~source:"SYNAPSE"
            ~additions:
              [
                Flogic.Molecule.Isa (id, Logic.Term.sym "spine_measure");
                Flogic.Molecule.Meth_val (id, "diameter", Logic.Term.float 0.7);
              ]
            ()
        with
        | Ok _ -> ()
        | Error e ->
          prerr_endline e;
          ok := false
      done;
      if updates > 0 then
        Printf.printf "streamed %d update(s) into the write-ahead log\n" updates;
      if !ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:"materialize the demo federation and write a durable checkpoint \
             (engine snapshot + federation state, WAL compacted)")
    Term.(const run $ domains_t $ dir_t $ demo_scale $ demo_seed $ updates)

let recover_cmd =
  let goal =
    Arg.(value & opt string "X : spine, X[diameter ->> D], D > 0.6"
           & info [ "q"; "query" ] ~docv:"GOAL"
             ~doc:"query answered from the recovered materialization")
  in
  let run () dir scale seed goal =
    (* the topology is re-registered from the same generator parameters;
       recover then adopts the checkpointed database instead of
       gathering from the sources *)
    let med =
      Neuro.Sources.standard_mediator
        ~config:
          {
            Mediation.Mediator.default_config with
            Mediation.Mediator.dl_mode = Dl.Translate.Ic;
            inheritance = false;
          }
        { Neuro.Sources.seed; scale }
    in
    match Mediation.Mediator.recover ?dir med with
    | Error e ->
      prerr_endline e;
      1
    | Ok false ->
      print_endline "no checkpoint found (cold-start: run kindctl checkpoint first)";
      1
    | Ok true -> (
      print_endline "recovered from checkpoint + WAL";
      let s = Mediation.Mediator.cache_stats med in
      Printf.printf "rebuilds since creation: %d (0 = no cold rebuild ran)\n"
        s.Mediation.Mediator.rebuilt;
      match Mediation.Mediator.query_text med goal with
      | Error e ->
        prerr_endline e;
        1
      | Ok answers ->
        Printf.printf "%-24s %d answer(s)\n" "query after recovery:"
          (List.length answers);
        0)
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"rebuild the demo federation from a durable checkpoint and its \
             WAL suffix, then answer a query")
    Term.(const run $ domains_t $ dir_t $ demo_scale $ demo_seed $ goal)

let wal_status_cmd =
  let run () dir =
    let dir =
      match dir with
      | Some d -> Some d
      | None -> (
        match Sys.getenv_opt "KIND_DURABLE_DIR" with
        | Some d when d <> "" -> Some d
        | _ -> None)
    in
    match dir with
    | None ->
      prerr_endline "wal-status: pass --dir or set KIND_DURABLE_DIR";
      1
    | Some dir ->
      let fs = Codec.real_fs ~root:dir in
      let ckpt = Datalog.Engine.checkpoint_file in
      let wal = Datalog.Engine.wal_file in
      let ckpt_gen = ref None in
      (match Datalog.Snapshot.read fs ~path:ckpt with
      | Error e -> Printf.printf "checkpoint: unreadable (%s)\n" e
      | Ok None -> print_endline "checkpoint: absent"
      | Ok (Some snap) ->
        (match
           List.assoc_opt "generation" snap.Datalog.Snapshot.counters
         with
        | Some g -> ckpt_gen := Some (int_of_float g)
        | None -> ());
        Printf.printf "checkpoint: %d bytes, %d facts (%d base), generation %d\n"
          (fs.Codec.size ckpt)
          (Datalog.Database.cardinal snap.Datalog.Snapshot.db)
          (Datalog.Database.cardinal snap.Datalog.Snapshot.edb)
          (match !ckpt_gen with Some g -> g | None -> 0));
      (match Datalog.Wal.replay fs ~path:wal with
      | Error e -> Printf.printf "wal: unreadable (%s)\n" e
      | Ok (gen, entries, tail) ->
        Printf.printf "wal: %d bytes, %d batch(es), generation %d%s%s\n"
          (fs.Codec.size wal) (List.length entries) gen
          (match tail with
          | Codec.Clean -> ""
          | Codec.Torn { at; reason } ->
            Printf.sprintf ", torn tail at byte %d (%s) — dropped" at reason)
          (match !ckpt_gen with
          | Some g when g <> gen ->
            " — STALE: generation mismatch with checkpoint, ignored on \
             recovery"
          | _ -> ""));
      (match Mediation.Durable.load fs with
      | Error e -> Printf.printf "federation: unreadable (%s)\n" e
      | Ok None -> print_endline "federation: absent"
      | Ok (Some st) ->
        Printf.printf
          "federation: clock %d ms, %d degraded quer(ies), %d source(s)\n"
          st.Mediation.Durable.clock st.Mediation.Durable.degraded
          (List.length st.Mediation.Durable.sources);
        List.iter
          (fun (s : Mediation.Durable.source_state) ->
            Printf.printf "  %-10s %-9s %d call(s), %d failure(s)%s%s\n"
              s.Mediation.Durable.name
              (Mediation.Runtime.state_to_string s.Mediation.Durable.state)
              s.Mediation.Durable.calls s.Mediation.Durable.failures
              (if s.Mediation.Durable.quarantined then "  [quarantined]"
               else "")
              (if s.Mediation.Durable.channel_stale then "  [stale caps]"
               else ""))
          st.Mediation.Durable.sources);
      0
  in
  Cmd.v
    (Cmd.info "wal-status"
       ~doc:"inspect a durability directory: checkpoint size, WAL batches \
             and torn-tail state, federation breaker ledger")
    Term.(const run $ domains_t $ dir_t)

let () =
  let info =
    Cmd.info "kindctl" ~version:"1.0.0"
      ~doc:"model-based mediation with domain maps (KIND)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            run_cmd; check_cmd; lint_cmd; contain_cmd; cost_cmd;
            provenance_cmd;
            explain_cmd;
            translate_cmd; dmap_cmd; classify_cmd; demo_cmd; query_cmd;
            maintain_cmd; health_cmd;
            checkpoint_cmd; recover_cmd; wal_status_cmd;
          ]))
