module Term = Logic.Term
module Atom = Logic.Atom
module Literal = Logic.Literal
module Rule = Logic.Rule

let v = Term.var
let r h b = Rule.make h b
let a p args = Atom.make p args
let p name args = Literal.pos name args

let () =
  let ctx = Analysis.Contain.empty_ctx in
  (* q1: h(C,D) :- meth_sig(C, m, D). *)
  let q1 =
    r (a "h" [ v "C"; v "D" ]) [ p "meth_sig" [ v "C"; Term.sym "m"; v "D" ] ]
  in
  (* q2: h(C,D) :- meth_sig(C, m, D), class(D). *)
  let q2 =
    r (a "h" [ v "C"; v "D" ])
      [ p "meth_sig" [ v "C"; Term.sym "m"; v "D" ]; p "class" [ v "D" ] ]
  in
  Printf.printf "contained q1 q2 = %b\n" (Analysis.Contain.contained ctx q1 q2);
  (* ground truth: database with meth_sig_d(c,m,d) closed under GCM axioms *)
  let facts = [ r (a "meth_sig_d" [ Term.sym "c"; Term.sym "m"; Term.sym "d" ]) [] ] in
  let prog = Datalog.Program.make_exn (facts @ Flogic.Gcm_axioms.core @ [q1]) in
  let db = Datalog.Engine.materialize prog (Datalog.Database.create ()) in
  let q1_ans = List.filter (fun (at : Atom.t) -> at.Atom.pred = "h") (Datalog.Database.all_facts db) in
  List.iter (fun (at : Atom.t) -> Printf.printf "q1 answer: %s\n" (Atom.to_string at)) q1_ans;
  let has_class_d = Datalog.Database.mem db (a "class" [ Term.sym "d" ]) in
  Printf.printf "class(d) in model = %b\n" has_class_d
