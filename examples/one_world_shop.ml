(* The introduction's contrast case: a ONE-world scenario
   ("comparison shopping with amazon.com and barnesandnoble.com"),
   where the paper concedes that plain structural mediation is "very
   powerful and useful" — the sources' schemas overlap directly and no
   domain knowledge is needed to correlate them.

   We build the bookshop federation with the same machinery as the
   Neuroscience case and show that here (a) the domain map is a single
   concept, (b) model-based and structural mediation return identical
   answers, and (c) the semantic index cannot narrow anything: every
   source anchors at the same concept. The multiple-worlds machinery
   only starts paying when the worlds stop overlapping — which is the
   paper's whole point.

   Run with: dune exec examples/one_world_shop.exe *)

open Kind
module Molecule = Flogic.Molecule
module M = Mediation.Mediator

let t = Logic.Term.sym
let str = Logic.Term.str
let fl = Logic.Term.float

let shop name books =
  let schema =
    Gcm.Schema.make ~name
      ~classes:
        [
          Gcm.Schema.class_def "book"
            ~methods:[ ("title", "string"); ("price", "number") ];
        ]
      ()
  in
  Wrapper.Source.make ~name ~schema
    ~capabilities:
      [
        Wrapper.Capability.scan_class "book";
        Wrapper.Capability.select_class ~cls:"book" ~on:[ "title" ];
      ]
    ~anchors:[ ("book", "book", []) ]
    ~data:
      (List.concat
         (List.mapi
            (fun i (title, price) ->
              let id = t (Printf.sprintf "%s_b%d" name i) in
              [
                Molecule.Isa (id, t "book");
                Molecule.Meth_val (id, "title", str title);
                Molecule.Meth_val (id, "price", fl price);
              ])
            books))
    ()

let () =
  (* the whole "domain map": one concept. *)
  let dmap = Domain_map.Dmap.add_concept Domain_map.Dmap.empty "book" in
  let med = M.create dmap in
  List.iter
    (fun src -> Result.get_ok (M.register_source med src))
    [
      shop "AMZN"
        [ ("Dendrites", 89.0); ("The Axon", 45.0); ("Spines", 120.0) ];
      shop "BN" [ ("Dendrites", 79.0); ("Spines", 125.0); ("Ion Channels", 60.0) ];
    ];

  Format.printf "domain map size: %d concept(s)@."
    (List.length (Domain_map.Dmap.concepts (M.dmap med)));
  Format.printf "sources anchored at 'book': %s@."
    (String.concat ", " (M.select_sources med ~concepts:[ "book" ]));
  Format.printf
    "-> the semantic index cannot discriminate: one world, one concept.@.";

  (* comparison shopping via an integrated view: same title, both shops *)
  Result.get_ok
    (M.add_ivd_text med
       {| cheaper_at_bn(T, PA, PB) :-
            A : 'AMZN.book', A[title ->> T; price ->> PA],
            B : 'BN.book',   B[title ->> T; price ->> PB],
            PB < PA. |});
  (match M.query_text med "?- cheaper_at_bn(T, PA, PB)." with
  | Ok answers ->
    Format.printf "@.titles cheaper at BN: %d@." (List.length answers);
    List.iter
      (fun sub ->
        match
          ( Logic.Subst.find "T" sub,
            Logic.Subst.find "PA" sub,
            Logic.Subst.find "PB" sub )
        with
        | Some t', Some pa, Some pb ->
          Format.printf "  %s: %s -> %s@." (Logic.Term.to_string t')
            (Logic.Term.to_string pa) (Logic.Term.to_string pb)
        | _ -> ())
      answers
  | Error e -> failwith e);

  (* the same join runs fine through the generic planner — and through
     plain structural joining, because titles match by string equality:
     no domain map needed. *)
  (match
     Mediation.Conjunctive.run_text med
       "?- A : 'AMZN.book', A[title ->> T], B : 'BN.book', B[title ->> T]."
   with
  | Ok (answers, report) ->
    Format.printf "@.planner join on shared titles: %d matches, %d tuples moved@."
      (List.length answers)
      report.Mediation.Conjunctive.tuples_moved
  | Error e -> failwith e);

  Format.printf
    "@.contrast: in the Neuroscience federation the schemas share no@.\
     attribute at all — correlation only exists through ANATOM@.\
     (run examples/neuro_federation.exe and examples/protein_distribution.exe).@."
