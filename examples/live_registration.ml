(* A "living" federation: sources join over the wire protocol and
   stream fresh observations; the mediator absorbs each delta
   incrementally instead of re-materializing.

   Demonstrates: Protocol (the XML dialogues of Section 2),
   Mediator.register_xml, Datalog.Engine.extend, and the semantic index
   updating as the federation grows.

   Run with: dune exec examples/live_registration.exe *)

open Kind
module Molecule = Flogic.Molecule
module Protocol = Mediation.Protocol

let t = Logic.Term.sym
let section title = Format.printf "@.== %s ==@." title

let () =
  section "An empty mediator over the ANATOM map";
  let med = Mediation.Mediator.create Neuro.Anatom.full in
  Format.printf "sources: %d@." (List.length (Mediation.Mediator.sources med));

  section "A laboratory joins over the wire";
  let registration_doc =
    Xmlkit.Parse.parse_exn
      {|<gcm source="LIVE_LAB">
          <class name="observation">
            <method name="site" range="anatomical_term"/>
            <method name="calcium_level" range="number"/>
          </class>
          <instance id="obs1" class="observation"/>
          <value object="obs1" method="site">spine</value>
          <value object="obs1" method="calcium_level">0.8</value>
          <anchor class="observation" concept="spine" context="cerebellum"/>
        </gcm>|}
  in
  let wire =
    Protocol.encode_request
      (Protocol.Register { format = "gcm-xml"; document = registration_doc })
  in
  Format.printf "register message on the wire (%d bytes)@."
    (String.length (Xmlkit.Print.to_string wire));
  (match Protocol.decode_request wire with
  | Ok (Protocol.Register { format; document }) -> (
    match
      Protocol.register_remote med ~source_name:"LIVE_LAB" ~format document
    with
    | Ok () -> Format.printf "LIVE_LAB registered.@."
    | Error e -> failwith e)
  | _ -> failwith "wire decode failed");
  Format.printf "who knows about spines now? %s@."
    (String.concat ", " (Mediation.Mediator.select_sources med ~concepts:[ "spine" ]));

  section "Fetching through the wrapper protocol";
  let src = Option.get (Mediation.Mediator.find_source med "LIVE_LAB") in
  let ep = Protocol.endpoint src in
  (match
     Protocol.call ep
       (Protocol.Fetch_instances { cls = "observation"; selections = [] })
   with
  | Protocol.Objects objs -> Format.printf "%d observation(s) served@." (List.length objs)
  | _ -> failwith "fetch failed");

  section "Streaming observations into a materialized closure";
  (* A standing program: roll calcium levels up the has_a_star links of
     the domain map (pure positive datalog -> incrementally
     maintainable). *)
  let dm_prog, _ =
    Domain_map.To_program.program ~include_instance_rules:false
      (Mediation.Mediator.dmap med)
  in
  let standing =
    Flogic.Fl_program.add_rules dm_prog
      (Flogic.Fl_parser.parse_program_exn
         {| seen_at(C) :- obs_at(O, C).
            seen_under(C) :- has_a_star(C, D), seen_at(D).
            seen_under(C) :- seen_at(C). |})
        .Flogic.Fl_parser.rules
  in
  let compiled =
    match Flogic.Fl_program.compile standing with
    | Ok p -> p
    | Error e -> failwith e
  in
  let db = Datalog.Engine.materialize compiled (Datalog.Database.create ()) in
  Format.printf "standing closure: %d facts@." (Datalog.Database.cardinal db);
  let stream =
    [ ("obs2", "spine"); ("obs3", "dendrite"); ("obs4", "soma"); ("obs5", "spine") ]
  in
  List.iter
    (fun (o, site) ->
      match
        Datalog.Engine.extend compiled db
          [ Logic.Atom.make "obs_at" [ t o; t site ] ]
      with
      | Ok n -> Format.printf "  %s@%s absorbed: %d new facts@." o site n
      | Error e -> failwith e)
    stream;
  let seen_under c =
    Datalog.Database.mem db (Logic.Atom.make "seen_under" [ t c ])
  in
  Format.printf "observations visible under purkinje_cell: %b@."
    (seen_under "purkinje_cell");
  Format.printf "observations visible under neostriatum: %b@."
    (seen_under "neostriatum")
