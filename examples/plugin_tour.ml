(* The CM plug-in mechanism (Section 2): one conceptual model expressed
   in four XML dialects, all landing in the same GCM — "the mediator
   needs only a single GCM engine for handling arbitrary CMs".

   Run with: dune exec examples/plugin_tour.exe *)

open Kind
module Plugin = Cm_plugins.Plugin

let gcm_doc =
  {|<gcm source="LAB">
      <class name="purkinje" super="neuron"/>
      <class name="neuron">
        <method name="organism" range="string"/>
      </class>
      <instance id="n1" class="purkinje"/>
      <value object="n1" method="organism">rat</value>
    </gcm>|}

let er_doc =
  {|<er name="LAB">
      <entity name="neuron">
        <attribute name="organism" domain="string"/>
      </entity>
      <isa sub="purkinje" super="neuron"/>
      <entity-instance entity="purkinje" key="n1">
        <attribute-value name="organism">rat</attribute-value>
      </entity-instance>
    </er>|}

let uxf_doc =
  {|<uxf>
      <class name="Purkinje"><superclass name="Neuron"/></class>
      <class name="Neuron"><attribute name="organism" type="String"/></class>
      <object name="n1" class="Purkinje">
        <slot name="organism">rat</slot>
      </object>
    </uxf>|}

let rdf_doc =
  {|<rdf:RDF name="LAB">
      <rdfs:Class rdf:ID="neuron"/>
      <rdfs:Class rdf:ID="purkinje">
        <rdfs:subClassOf rdf:resource="neuron"/>
      </rdfs:Class>
      <rdf:Property rdf:ID="organism">
        <rdfs:domain rdf:resource="neuron"/>
        <rdfs:range rdf:resource="Literal"/>
      </rdf:Property>
      <rdf:Description rdf:ID="n1">
        <rdf:type rdf:resource="purkinje"/>
        <organism>rat</organism>
      </rdf:Description>
    </rdf:RDF>|}

let () =
  let reg = Cm_plugins.Defaults.registry () in
  Format.printf "registered plug-ins: %s@.@."
    (String.concat ", " (Plugin.formats reg));
  List.iter
    (fun (format, doc) ->
      match Plugin.translate_string reg ~format doc with
      | Error e -> Format.printf "%-8s FAILED: %s@." format e
      | Ok tr ->
        let t =
          Flogic.Fl_program.make
            ~signature:(Gcm.Schema.signature tr.Plugin.schema)
            (Gcm.Schema.to_rules tr.Plugin.schema
            @ List.map Flogic.Molecule.fact tr.Plugin.facts)
        in
        let db = Flogic.Fl_program.run t in
        let n1_is_neuron =
          Flogic.Fl_program.holds t db
            (Flogic.Molecule.isa (Logic.Term.sym "n1")
               (Logic.Term.sym
                  (match format with "rdfs" -> "neuron" | _ -> "neuron")))
        in
        Format.printf
          "%-8s -> classes %-30s  n1 : neuron (derived) = %b@." format
          (String.concat ", " (Gcm.Schema.class_names tr.Plugin.schema))
          n1_is_neuron)
    [
      ("gcm-xml", gcm_doc);
      ("er-xml", er_doc);
      ("uxf", uxf_doc);
      ("rdfs", rdf_doc);
    ];

  (* Round trip: a source's registration document survives the wire. *)
  Format.printf "@.wire round trip through the native dialect:@.";
  match Plugin.translate_string reg ~format:"gcm-xml" gcm_doc with
  | Error e -> failwith e
  | Ok tr ->
    let xml = Cm_plugins.Gcm_xml.export ~source:"LAB" tr in
    Format.printf "%s@." (Xmlkit.Print.to_string ~indent:true xml)
