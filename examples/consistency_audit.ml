(* Integrity constraints as denials with failure witnesses
   (Section 3, Examples 2 and 3): audit a source whose data violates
   its declared constraints and read back the witnesses from the
   distinguished inconsistency class ic.

   Run with: dune exec examples/consistency_audit.exe *)

open Kind
module Molecule = Flogic.Molecule
module Constraints = Gcm.Constraints

let t = Logic.Term.sym

let section title = Format.printf "@.== %s ==@." title

let audit title rules =
  let db = Flogic.Fl_program.run (Flogic.Fl_program.make rules) in
  let ws = Flogic.Ic.violations db in
  Format.printf "%-40s %s@." title
    (if ws = [] then "consistent"
     else
       Printf.sprintf "%d violation(s): %s" (List.length ws)
         (String.concat ", "
            (List.map (fun w -> Format.asprintf "%a" Flogic.Ic.pp_witness w) ws)))

let () =
  section "Example 2: is a relation a partial order?";
  let member x = Molecule.Isa (x, t "stage") in
  let po = Constraints.partial_order_on ~member ~rel:"precedes" in
  let stages =
    List.map
      (fun s -> Molecule.fact (Molecule.isa (t s) (t "stage")))
      [ "larva"; "pupa"; "adult" ]
  in
  let edge a b = Molecule.fact (Molecule.pred "precedes" [ t a; t b ]) in
  let refl = List.map (fun s -> Molecule.fact (Molecule.pred "precedes" [ t s; t s ])) [ "larva"; "pupa"; "adult" ] in
  audit "valid development order"
    (stages @ refl @ [ edge "larva" "pupa"; edge "pupa" "adult"; edge "larva" "adult" ] @ po);
  audit "missing transitive edge"
    (stages @ refl @ [ edge "larva" "pupa"; edge "pupa" "adult" ] @ po);
  audit "a 2-cycle (antisymmetry)"
    (stages @ refl
    @ [ edge "larva" "pupa"; edge "pupa" "larva" ]
    @ po);

  section "Example 2 meta: is :: itself a partial order?";
  audit "subclass DAG"
    ([ Molecule.fact (Molecule.sub (t "a") (t "b")) ]
    @ Constraints.subclass_partial_order);
  audit "subclass cycle"
    ([
       Molecule.fact (Molecule.sub (t "a") (t "b"));
       Molecule.fact (Molecule.sub (t "b") (t "a"));
     ]
    @ Constraints.subclass_partial_order);

  section "Example 3: neuron/axon cardinalities";
  let sg = Flogic.Signature.declare "has" [ "whole"; "part" ] Flogic.Signature.empty in
  let card =
    Constraints.cardinality ~sg ~rel:"has" ~counted:"whole" ~per:[ "part" ]
      ~exactly:1 ()
    @ Constraints.cardinality ~sg ~rel:"has" ~counted:"part" ~per:[ "whole" ]
        ~max_count:2 ()
  in
  let has w p =
    Molecule.fact (Molecule.Rel_val ("has", [ ("whole", t w); ("part", t p) ]))
  in
  let audit_sg title rules =
    let db =
      Flogic.Fl_program.run (Flogic.Fl_program.make ~signature:sg rules)
    in
    let ws = Flogic.Ic.by_constraint db in
    Format.printf "%-40s %s@." title
      (if ws = [] then "consistent"
       else
         String.concat ", "
           (List.map (fun (n, k) -> Printf.sprintf "%s x%d" n k) ws))
  in
  audit_sg "neuron with two axons" (card @ [ has "n1" "ax1"; has "n1" "ax2" ]);
  audit_sg "axon shared by two neurons"
    (card @ [ has "n1" "ax1"; has "n2" "ax1" ]);
  audit_sg "neuron with three axons"
    (card @ [ has "n1" "ax1"; has "n1" "ax2"; has "n1" "ax3" ]);

  section "Domain-map axioms as integrity constraints";
  (* dendrite ⊑ ∃has.branch, checked (not asserted) against the data *)
  let out =
    Dl.Translate.axiom ~mode:Dl.Translate.Ic
      (Dl.Concept.subsumes (Dl.Concept.name "dendrite")
         (Dl.Concept.exists "has" (Dl.Concept.name "branch")))
  in
  audit "dendrite without a branch (data-incomplete)"
    (Molecule.fact (Molecule.isa (t "d1") (t "dendrite"))
    :: out.Dl.Translate.rules);
  audit "dendrite with its branch"
    ([
       Molecule.fact (Molecule.isa (t "d1") (t "dendrite"));
       Molecule.fact (Molecule.isa (t "b1") (t "branch"));
       Molecule.fact (Molecule.pred "has" [ t "d1"; t "b1" ]);
     ]
    @ out.Dl.Translate.rules)
