(* Quickstart: build a small domain map, wrap two toy sources, register
   them with a mediator, and ask a cross-source question.

   Run with: dune exec examples/quickstart.exe *)

open Kind
module C = Dl.Concept
module Molecule = Flogic.Molecule

let t = Logic.Term.sym
let str = Logic.Term.str
let fl = Logic.Term.float

let () =
  (* 1. Domain knowledge: a miniature anatomy, as DL axioms
        (Definition 1). *)
  let dmap =
    Domain_map.Dmap.of_axioms
      [
        C.subsumes (C.name "neuron") (C.exists "has" (C.name "dendrite"));
        C.subsumes (C.name "dendrite") (C.exists "has" (C.name "spine"));
        C.subsumes (C.name "purkinje_cell") (C.name "neuron");
        C.subsumes (C.name "pyramidal_cell") (C.name "neuron");
      ]
  in
  Format.printf "Domain map:@.%a@." Domain_map.Dmap.pp dmap;

  (* 2. Two wrapped sources from different "worlds". *)
  let morphology =
    Wrapper.Source.make ~name:"MORPH"
      ~schema:
        (Gcm.Schema.make ~name:"MORPH"
           ~classes:
             [
               Gcm.Schema.class_def "spine_measure"
                 ~methods:[ ("diameter", "number"); ("cell", "anatomical_term") ];
             ]
           ())
      ~capabilities:
        [
          Wrapper.Capability.scan_class "spine_measure";
          Wrapper.Capability.select_class ~cls:"spine_measure" ~on:[ "cell" ];
        ]
      ~anchors:[ ("spine_measure", "spine", []) ]
      ~data:
        [
          Molecule.Isa (t "m1", t "spine_measure");
          Molecule.Meth_val (t "m1", "diameter", fl 0.42);
          Molecule.Meth_val (t "m1", "cell", t "purkinje_cell");
          Molecule.Isa (t "m2", t "spine_measure");
          Molecule.Meth_val (t "m2", "diameter", fl 0.77);
          Molecule.Meth_val (t "m2", "cell", t "pyramidal_cell");
        ]
      ()
  in
  let proteins =
    Wrapper.Source.make ~name:"PROT"
      ~schema:
        (Gcm.Schema.make ~name:"PROT"
           ~classes:
             [
               Gcm.Schema.class_def "localization"
                 ~methods:
                   [ ("protein", "string"); ("site", "anatomical_term") ];
             ]
           ())
      ~anchors:[ ("localization", "dendrite", []) ]
      ~data:
        [
          Molecule.Isa (t "l1", t "localization");
          Molecule.Meth_val (t "l1", "protein", str "calbindin");
          Molecule.Meth_val (t "l1", "site", t "dendrite");
        ]
      ()
  in

  (* 3. Register both with a mediator. *)
  let med = Mediation.Mediator.create dmap in
  List.iter
    (fun src ->
      match Mediation.Mediator.register_source med src with
      | Ok () -> Format.printf "registered %s@." (Wrapper.Source.name src)
      | Error e -> failwith e)
    [ morphology; proteins ];

  (* 4. The semantic index knows who can answer what. *)
  List.iter
    (fun concept ->
      Format.printf "sources with data about %s: %s@." concept
        (String.concat ", "
           (Mediation.Mediator.select_sources med ~concepts:[ concept ])))
    [ "spine"; "dendrite" ];

  (* 5. An integrated view across both worlds: measurements and protein
        sites correlate through the domain map (loose federation,
        Example 1 of the paper). *)
  (match
     Mediation.Mediator.add_ivd_text med
       {| correlated(M, P) :-
            M : 'MORPH.spine_measure',
            L : 'PROT.localization', L[protein ->> P]. |}
   with
  | Ok () -> ()
  | Error e -> failwith e);
  (match
     Mediation.Mediator.query_text med "?- correlated(M, P)."
   with
  | Ok answers ->
    Format.printf "correlated measurement/protein pairs: %d@."
      (List.length answers)
  | Error e -> failwith e);

  (* 6. Conceptual-level query: everything that is (or is anchored at)
        a spine, wherever it came from. *)
  let spines =
    Mediation.Mediator.query med
      [ Molecule.Pos (Molecule.isa (Logic.Term.var "X") (t "spine")) ]
  in
  Format.printf "objects lifted to the 'spine' concept: %d@."
    (List.length spines)
