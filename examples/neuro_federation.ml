(* The paper's Neuroscience federation, end to end:

   - the ANATOM domain map (Figures 1 and 3);
   - SYNAPSE / NCMIR / SENSELAB registration with semantic indexing;
   - dynamic registration of MyNeuron / MyDendrite (Figure 3);
   - the loose federation of Example 1 (correlating the two worlds
     through the map without computing integrated objects).

   Run with: dune exec examples/neuro_federation.exe *)

open Kind
module Dmap = Domain_map.Dmap
module Closure = Domain_map.Closure
module Molecule = Flogic.Molecule

let section title = Format.printf "@.== %s ==@." title

let () =
  section "ANATOM domain map";
  let nodes, edges = Dmap.size Neuro.Anatom.full in
  Format.printf "%d nodes, %d edges, roles: %s@." nodes edges
    (String.concat ", " (Dmap.roles Neuro.Anatom.full));

  section "Registering the three laboratories";
  let med = Neuro.Sources.standard_mediator Neuro.Sources.default_params in
  List.iter
    (fun src ->
      Format.printf "%s: %d facts, anchors at {%s}@."
        (Wrapper.Source.name src)
        (Datalog.Database.cardinal
           (Wrapper.Store.database (Wrapper.Source.store src)))
        (String.concat ", "
           (List.map (fun (_, c, _) -> c) (Wrapper.Source.anchors src))))
    (Mediation.Mediator.sources med);

  section "Semantic index at work";
  List.iter
    (fun concept ->
      Format.printf "who knows about %-25s -> %s@." concept
        (String.concat ", "
           (Mediation.Mediator.select_sources med ~concepts:[ concept ])))
    [ "spine"; "purkinje_cell"; "neurotransmission"; "soma"; "neuron" ];

  section "Example 1: the two worlds correlate through the map";
  (* SYNAPSE measures spines; NCMIR localizes ion-binding proteins.
     The domain map links them: spines contain ion-binding proteins. *)
  let dm = Mediation.Mediator.dmap med in
  let contains = Closure.role_dc dm ~role:"contains" in
  Format.printf "spine -contains->* ion_binding_protein: %b@."
    (List.mem ("spine", "ion_binding_protein") contains);
  (match
     Mediation.Mediator.query_text med
       {| ?- M : 'SYNAPSE.spine_measure', M[diameter ->> D], D > 0.7,
             A : 'NCMIR.protein_amount', A[location ->> spine],
             A[protein_name ->> P]. |}
   with
  | Ok answers ->
    Format.printf
      "wide-spine measurements joined with spine-localized proteins: %d rows@."
      (List.length answers)
  | Error e -> failwith e);

  section "Figure 3: registering MyNeuron and MyDendrite";
  (match Mediation.Mediator.extend_dmap med Neuro.Anatom.fig3_registration with
  | Ok () -> ()
  | Error e -> failwith e);
  let dm' = Mediation.Mediator.dmap med in
  Format.printf "my_neuron classified under: %s@."
    (match Domain_map.Register.classification dm' "my_neuron" with
    | Ok supers -> String.concat ", " supers
    | Error e -> "<" ^ e ^ ">");
  let proj = (Dmap.role_links dm' "proj").Dmap.definite in
  Format.printf "my_neuron definitely projects to: %s@."
    (String.concat ", "
       (List.filter_map
          (fun (a, b) -> if a = "my_neuron" then Some b else None)
          proj));
  let poss = (Dmap.role_links dm' "proj").Dmap.possible in
  Format.printf "medium_spiny_neuron possibly projects to: %s@."
    (String.concat ", "
       (List.filter_map
          (fun (a, b) -> if a = "medium_spiny_neuron" then Some b else None)
          poss));

  section "Consistency of the mediated object base";
  Format.printf "integrity-constraint witnesses: %d@."
    (List.length (Mediation.Mediator.violations med))
