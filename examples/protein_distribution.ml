(* Example 4 and the Section 5 walk-through:

   "What is the distribution of those calcium-binding proteins that are
    found in neurons that receive signals from parallel fibers in rat
    brains?"

   Shows the four-step plan with per-step costs, the resulting protein
   distribution trees, and what each architectural ingredient buys
   (ablations + the structural baseline).

   Run with: dune exec examples/protein_distribution.exe *)

open Kind
module M = Mediation.Mediator
module S5 = Mediation.Section5

let section title = Format.printf "@.== %s ==@." title

let run med =
  match
    S5.calcium_binding_query med ~organism:"rat"
      ~transmitting_compartment:"parallel_fiber" ~ion:"calcium" ()
  with
  | Ok o -> o
  | Error e -> failwith e

let () =
  let params = { Neuro.Sources.seed = 2026; scale = 60 } in

  section "Example 4: protein_distribution view";
  let med = Neuro.Sources.standard_mediator params in
  (match
     S5.protein_distribution med ~protein:"ryanodine_receptor" ~organism:"rat"
       ~root:"cerebellum"
   with
  | Ok tree ->
    Format.printf "ryanodine_receptor in rat cerebellum:@.%a@."
      Mediation.Aggregate.pp
      (Mediation.Aggregate.prune tree)
  | Error e -> failwith e);

  section "Section 5: the four-step query plan";
  let outcome = run med in
  S5.pp_outcome Format.std_formatter outcome;

  section "Ablations";
  let show label cfg =
    let med = Neuro.Sources.standard_mediator ~config:cfg params in
    let o = run med in
    Format.printf "%-28s sources=%d tuples_moved=%d@." label
      (List.length o.S5.sources_contacted)
      o.S5.tuples_moved
  in
  show "full architecture" M.default_config;
  show "no semantic index" { M.default_config with M.use_semantic_index = false };
  show "no selection pushdown" { M.default_config with M.pushdown = false };
  show "no lub (whole-map root)" { M.default_config with M.use_lub = false };

  section "Structural (XML-level) baseline";
  let med = Neuro.Sources.standard_mediator params in
  (match
     Mediation.Baseline.calcium_binding_query med ~organism:"rat"
       ~transmitting_compartment:"parallel_fiber" ~ion:"calcium" ()
   with
  | Ok b ->
    Format.printf "sources contacted: %d, tuples moved: %d@."
      (List.length b.Mediation.Baseline.sources_contacted)
      b.Mediation.Baseline.tuples_moved;
    Format.printf "same proteins found: %b@."
      (b.Mediation.Baseline.proteins = outcome.S5.proteins);
    Format.printf
      "but: flat per-location sums only — no domain map, no rollup@."
  | Error e -> failwith e)
