let registry () =
  let reg = Plugin.create_registry () in
  Plugin.register reg Gcm_xml.plugin;
  Plugin.register reg Er_xml.plugin;
  Plugin.register reg Uxf.plugin;
  Plugin.register reg Rdfs.plugin;
  Plugin.register reg Xsd.plugin;
  reg
