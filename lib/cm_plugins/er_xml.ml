module Xml = Xmlkit.Xml
module Molecule = Flogic.Molecule
module Term = Logic.Term

let ( let* ) = Result.bind

let collect f xs =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) xs
  |> Result.map List.rev

let translate doc =
  match Xml.tag doc with
  | Some "er" ->
    let name = Option.value ~default:"er-source" (Xml.attr "name" doc) in
    let* entities =
      collect
        (fun el ->
          let* ename = Plugin.require_attr el "name" in
          let* methods =
            collect
              (fun a ->
                let* aname = Plugin.require_attr a "name" in
                Ok (aname, Option.value ~default:"string" (Xml.attr "domain" a)))
              (Xml.find_children "attribute" el)
          in
          Ok (ename, methods))
        (Xml.find_children "entity" doc)
    in
    let* isa_pairs =
      collect
        (fun el ->
          let* sub = Plugin.require_attr el "sub" in
          let* super = Plugin.require_attr el "super" in
          Ok (sub, super))
        (Xml.find_children "isa" doc)
    in
    let supers_of e =
      List.filter_map (fun (s, p) -> if s = e then Some p else None) isa_pairs
    in
    (* isa may introduce entities that have no <entity> element *)
    let all_entity_names =
      List.map fst entities
      @ List.concat_map (fun (s, p) -> [ s; p ]) isa_pairs
      |> List.sort_uniq String.compare
    in
    let classes =
      List.map
        (fun e ->
          let methods =
            match List.assoc_opt e entities with Some ms -> ms | None -> []
          in
          Gcm.Schema.class_def e ~supers:(supers_of e) ~methods)
        all_entity_names
    in
    let* rels =
      collect
        (fun el ->
          let* rname = Plugin.require_attr el "name" in
          let* roles =
            collect
              (fun r ->
                let* role = Plugin.require_attr r "name" in
                let* entity = Plugin.require_attr r "entity" in
                Ok (role, entity, Xml.attr "card" r))
              (Xml.find_children "role" el)
          in
          if roles = [] then Error (Printf.sprintf "relationship %s has no roles" rname)
          else Ok (rname, roles))
        (Xml.find_children "relationship" doc)
    in
    let relations =
      List.map (fun (r, roles) -> (r, List.map (fun (a, e, _) -> (a, e)) roles)) rels
    in
    let sg =
      List.fold_left
        (fun sg (r, avs) -> Flogic.Signature.declare r (List.map fst avs) sg)
        Flogic.Signature.empty relations
    in
    (* Cardinality 1 on a role: each combination of the other roles
       determines it uniquely (Example 3 style). *)
    let card_rules =
      List.concat_map
        (fun (r, roles) ->
          List.concat_map
            (fun (a, _, card) ->
              match card with
              | Some "1" ->
                let others = List.filter_map (fun (b, _, _) -> if b = a then None else Some b) roles in
                if others = [] then []
                else
                  Gcm.Constraints.cardinality ~sg ~rel:r ~counted:a ~per:others
                    ~exactly:1 ()
              | _ -> [])
            roles)
        rels
    in
    let* instance_facts =
      collect
        (fun el ->
          let* entity = Plugin.require_attr el "entity" in
          let* key = Plugin.require_attr el "key" in
          let* vals =
            collect
              (fun a ->
                let* aname = Plugin.require_attr a "name" in
                Ok (Molecule.meth_val (Term.sym key) aname
                      (Plugin.term_of_text (Xml.text_content a))))
              (Xml.find_children "attribute-value" el)
          in
          Ok (Molecule.isa (Term.sym key) (Term.sym entity) :: vals))
        (Xml.find_children "entity-instance" doc)
    in
    let* rel_facts =
      collect
        (fun el ->
          let* rname = Plugin.require_attr el "name" in
          let* fields =
            collect
              (fun f ->
                let* role = Plugin.require_attr f "role" in
                Ok (role, Plugin.ident_of_text (Xml.text_content f)))
              (Xml.find_children "role-value" el)
          in
          Ok (Molecule.Rel_val (rname, fields)))
        (Xml.find_children "relationship-instance" doc)
    in
    let schema = Gcm.Schema.make ~name ~classes ~relations ~rules:card_rules () in
    let* () = Gcm.Schema.validate schema in
    Ok
      {
        Plugin.schema;
        facts = List.concat instance_facts @ rel_facts;
        anchors = [];
      }
  | _ -> Error "expected an <er> document"

let plugin = { Plugin.format = "er-xml"; translate }
