(** The native GCM XML dialect: the format wrappers use when they export
    their conceptual model directly in GCM (no translation needed beyond
    parsing). Doubles as the reference dialect the other plug-ins are
    tested against.

    {v
    <gcm source="SYNAPSE">
      <class name="spine" super="compartment">
        <method name="diameter" range="number"/>
      </class>
      <relation name="has">
        <attr name="whole" class="neuron"/>
        <attr name="part" class="compartment"/>
      </relation>
      <instance id="s1" class="spine"/>
      <value object="s1" method="diameter">0.52</value>
      <tuple relation="has"><field attr="whole">n1</field>
                            <field attr="part">d1</field></tuple>
      <anchor class="spine" concept="spine" context="hippocampus rat"/>
      <rule>big(S) :- S : spine, S[diameter -&gt;&gt; D], D &gt; 0.5.</rule>
    </gcm>
    v} *)

val plugin : Plugin.t

val export : source:string -> Plugin.translation -> Xmlkit.Xml.t
(** Inverse direction: render a translation back into the dialect
    (used by wrappers to put their CM "on the wire"). *)
