module Xml = Xmlkit.Xml
module Molecule = Flogic.Molecule
module Term = Logic.Term

let ( let* ) = Result.bind

let collect f xs =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) xs
  |> Result.map List.rev

let normalise_name s =
  let buf = Buffer.create (String.length s + 4) in
  String.iteri
    (fun i c ->
      if c >= 'A' && c <= 'Z' then begin
        if i > 0 then Buffer.add_char buf '_';
        Buffer.add_char buf (Char.lowercase_ascii c)
      end
      else Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* "0..2" -> upper bound 2; "1" -> exactly 1; "*"/"0..*" -> none. *)
let upper_bound mult =
  match String.split_on_char '.' mult with
  | [ one ] -> int_of_string_opt one |> Option.map (fun k -> (`Exactly, k))
  | [ _; ""; hi ] | [ _; hi ] ->
    int_of_string_opt hi |> Option.map (fun k -> (`At_most, k))
  | _ -> None

let translate doc =
  match Xml.tag doc with
  | Some "uxf" ->
    let name = Option.value ~default:"uml-source" (Xml.attr "name" doc) in
    let* classes =
      collect
        (fun el ->
          let* cname = Plugin.require_attr el "name" in
          let supers =
            List.filter_map (Xml.attr "name") (Xml.find_children "superclass" el)
            |> List.map normalise_name
          in
          let* attrs =
            collect
              (fun a ->
                let* aname = Plugin.require_attr a "name" in
                Ok
                  ( normalise_name aname,
                    normalise_name (Option.value ~default:"String" (Xml.attr "type" a)) ))
              (Xml.find_children "attribute" el @ Xml.find_children "operation" el)
          in
          Ok (Gcm.Schema.class_def (normalise_name cname) ~supers ~methods:attrs))
        (Xml.find_children "class" doc)
    in
    let* assocs =
      collect
        (fun el ->
          let* aname = Plugin.require_attr el "name" in
          let* ends =
            collect
              (fun e ->
                let* role = Plugin.require_attr e "role" in
                let* cls = Plugin.require_attr e "class" in
                Ok (role, normalise_name cls, Xml.attr "multiplicity" e))
              (Xml.find_children "assocEnd" el)
          in
          if ends = [] then Error (Printf.sprintf "association %s has no ends" aname)
          else Ok (normalise_name aname, ends))
        (Xml.find_children "association" doc)
    in
    let relations =
      List.map (fun (a, ends) -> (a, List.map (fun (r, c, _) -> (r, c)) ends)) assocs
    in
    let sg =
      List.fold_left
        (fun sg (r, avs) -> Flogic.Signature.declare r (List.map fst avs) sg)
        Flogic.Signature.empty relations
    in
    let mult_rules =
      List.concat_map
        (fun (a, ends) ->
          List.concat_map
            (fun (role, _, mult) ->
              match Option.map upper_bound mult |> Option.join with
              | Some (kind, k) ->
                let others =
                  List.filter_map (fun (r, _, _) -> if r = role then None else Some r) ends
                in
                if others = [] then []
                else (
                  match kind with
                  | `Exactly ->
                    Gcm.Constraints.cardinality ~sg ~rel:a ~counted:role
                      ~per:others ~exactly:k ()
                  | `At_most ->
                    Gcm.Constraints.cardinality ~sg ~rel:a ~counted:role
                      ~per:others ~max_count:k ())
              | None -> [])
            ends)
        assocs
    in
    let* object_facts =
      collect
        (fun el ->
          let* oname = Plugin.require_attr el "name" in
          let* cls = Plugin.require_attr el "class" in
          let* slots =
            collect
              (fun s ->
                let* sname = Plugin.require_attr s "name" in
                Ok
                  (Molecule.meth_val (Term.sym oname) (normalise_name sname)
                     (Plugin.term_of_text (Xml.text_content s))))
              (Xml.find_children "slot" el)
          in
          Ok (Molecule.isa (Term.sym oname) (Term.sym (normalise_name cls)) :: slots))
        (Xml.find_children "object" doc)
    in
    let* link_facts =
      collect
        (fun el ->
          let* assoc = Plugin.require_attr el "association" in
          let* ends =
            collect
              (fun e ->
                let* role = Plugin.require_attr e "role" in
                let* obj = Plugin.require_attr e "object" in
                Ok (role, Term.sym obj))
              (Xml.find_children "linkEnd" el)
          in
          Ok (Molecule.Rel_val (normalise_name assoc, ends)))
        (Xml.find_children "link" doc)
    in
    let schema = Gcm.Schema.make ~name ~classes ~relations ~rules:mult_rules () in
    let* () = Gcm.Schema.validate schema in
    Ok { Plugin.schema; facts = List.concat object_facts @ link_facts; anchors = [] }
  | _ -> Error "expected a <uxf> document"

let plugin = { Plugin.format = "uxf"; translate }
