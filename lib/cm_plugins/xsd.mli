(** XML Schema plug-in (subset): the paper's first-choice CM syntax —
    "CMs formalized in XML Schema or RDF Schema come directly in XML
    syntax".

    Supported subset:

    {v
    <xs:schema name="LAB">
      <xs:complexType name="Neuron">
        <xs:sequence>
          <xs:element name="organism" type="xs:string"/>
          <xs:element name="somaSize" type="xs:decimal"/>
        </xs:sequence>
      </xs:complexType>
      <xs:complexType name="Purkinje">
        <xs:complexContent><xs:extension base="Neuron"/></xs:complexContent>
      </xs:complexType>
      <xs:element name="neuron" type="Neuron"/>
      <data>
        <neuron id="n1"><organism>rat</organism></neuron>
      </data>
    </xs:schema>
    v}

    complexTypes become classes, [xs:extension] bases become
    superclasses, simple-typed child elements become methods, and the
    [<data>] island (our instance-document convention) yields instances
    keyed by their [id] attribute. Names are case-normalised like the
    UXF plug-in. *)

val plugin : Plugin.t
