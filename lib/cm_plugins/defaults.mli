(** The registry with the five shipped plug-ins pre-registered:
    [gcm-xml], [er-xml], [uxf], [rdfs], [xsd]. *)

val registry : unit -> Plugin.registry
