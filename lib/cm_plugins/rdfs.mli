(** RDFS plug-in: a subset of RDF Schema sufficient for class
    hierarchies, typed properties and instance descriptions — the paper
    notes "RDF or XML Schema, when used with a rule language like
    F-logic, can be used as a GCM".

    {v
    <rdf:RDF>
      <rdfs:Class rdf:ID="Neuron"/>
      <rdfs:Class rdf:ID="Purkinje">
        <rdfs:subClassOf rdf:resource="Neuron"/>
      </rdfs:Class>
      <rdf:Property rdf:ID="organism">
        <rdfs:domain rdf:resource="Neuron"/>
        <rdfs:range rdf:resource="Literal"/>
      </rdf:Property>
      <rdf:Description rdf:ID="n1">
        <rdf:type rdf:resource="Purkinje"/>
        <organism>rat</organism>
      </rdf:Description>
    </rdf:RDF>
    v}

    Properties whose range is another class become binary relations;
    literal-ranged properties become methods on their domain class.
    Property values in descriptions referencing resources use
    [rdf:resource]; literal values use element text. *)

val plugin : Plugin.t
