(** UXF-style UML plug-in — the paper's running example of the plug-in
    mechanism ("a new CM formalism say UXF [SY98] is added to the
    system by simply plugging an UXF-2-GCM translator into the
    mediator").

    The dialect follows UXF's class-diagram subset:

    {v
    <uxf>
      <class name="Neuron">
        <superclass name="Cell"/>
        <attribute name="organism" type="String"/>
        <operation name="somaSize" type="Real"/>
      </class>
      <association name="has">
        <assocEnd role="whole" class="Neuron" multiplicity="1"/>
        <assocEnd role="part" class="Compartment" multiplicity="0..2"/>
      </association>
      <object name="n1" class="Neuron">
        <slot name="organism">rat</slot>
      </object>
      <link association="has">
        <linkEnd role="whole" object="n1"/>
        <linkEnd role="part" object="d1"/>
      </link>
    </uxf>
    v}

    UML class names are case-normalised to GCM convention (lowercase,
    underscores); multiplicities with a finite upper bound become
    cardinality integrity constraints. *)

val plugin : Plugin.t

val normalise_name : string -> string
(** ["SpinyNeuron"] -> ["spiny_neuron"]. *)
