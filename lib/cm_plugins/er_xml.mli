(** ER-diagram plug-in: maps an XML serialisation of (extended)
    entity-relationship diagrams onto the GCM — entities become
    classes, ER attributes become methods, relationships with roles
    become typed relations, and isa constructs become subclass edges.

    {v
    <er name="LAB">
      <entity name="neuron">
        <attribute name="organism" domain="string"/>
      </entity>
      <isa sub="purkinje" super="neuron"/>
      <relationship name="has">
        <role name="whole" entity="neuron" card="1"/>
        <role name="part" entity="compartment" card="N"/>
      </relationship>
      <entity-instance entity="neuron" key="n1">
        <attribute-value name="organism">rat</attribute-value>
      </entity-instance>
      <relationship-instance name="has">
        <role-value role="whole">n1</role-value>
        <role-value role="part">d1</role-value>
      </relationship-instance>
    </er>
    v}

    Cardinality annotations ([card="1"]) become Example-3-style
    integrity constraints on the relation. *)

val plugin : Plugin.t
