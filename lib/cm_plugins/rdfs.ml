module Xml = Xmlkit.Xml
module Molecule = Flogic.Molecule
module Term = Logic.Term

let ( let* ) = Result.bind

let collect f xs =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) xs
  |> Result.map List.rev

let id el =
  match Xml.attr "rdf:ID" el with
  | Some v -> Ok v
  | None -> Plugin.require_attr el "rdf:about"

let resource el = Xml.attr "rdf:resource" el

let is_literal_range = function
  | Some ("Literal" | "rdfs:Literal" | "string" | "int" | "float") | None -> true
  | Some _ -> false

let translate doc =
  match Xml.tag doc with
  | Some ("rdf:RDF" | "rdf") ->
    let name = Option.value ~default:"rdf-source" (Xml.attr "name" doc) in
    let* class_infos =
      collect
        (fun el ->
          let* cname = id el in
          let supers =
            List.filter_map resource (Xml.find_children "rdfs:subClassOf" el)
          in
          Ok (cname, supers))
        (Xml.find_children "rdfs:Class" doc)
    in
    let* props =
      collect
        (fun el ->
          let* pname = id el in
          let domain =
            List.filter_map resource (Xml.find_children "rdfs:domain" el)
          in
          let range =
            List.filter_map resource (Xml.find_children "rdfs:range" el)
          in
          Ok (pname, domain, (match range with r :: _ -> Some r | [] -> None)))
        (Xml.find_children "rdf:Property" doc)
    in
    (* literal-ranged properties become methods of their domain class;
       class-ranged ones become binary relations. *)
    let class_names =
      List.map fst class_infos
      @ List.concat_map (fun (_, s) -> s) class_infos
      |> List.sort_uniq String.compare
    in
    let methods_of c =
      List.filter_map
        (fun (p, domain, range) ->
          if List.mem c domain && is_literal_range range then
            Some (p, Option.value ~default:"string" range)
          else None)
        props
    in
    let classes =
      List.map
        (fun c ->
          let supers =
            match List.assoc_opt c class_infos with Some s -> s | None -> []
          in
          Gcm.Schema.class_def c ~supers ~methods:(methods_of c))
        class_names
    in
    let rel_props =
      List.filter_map
        (fun (p, domain, range) ->
          match range with
          | Some r when not (is_literal_range (Some r)) ->
            Some (p, [ ("subject", (match domain with d :: _ -> d | [] -> "thing")); ("object", r) ])
          | _ -> None)
        props
    in
    let rel_names = List.map fst rel_props in
    let* desc_facts =
      collect
        (fun el ->
          let* oname = id el in
          let types =
            List.filter_map resource (Xml.find_children "rdf:type" el)
          in
          let prop_facts =
            List.concat_map
              (fun child ->
                match Xml.tag child with
                | Some p when p <> "rdf:type" -> (
                  match resource child with
                  | Some obj when List.mem p rel_names ->
                    [
                      Molecule.Rel_val
                        (p, [ ("subject", Term.sym oname); ("object", Term.sym obj) ]);
                    ]
                  | Some obj ->
                    [ Molecule.meth_val (Term.sym oname) p (Term.sym obj) ]
                  | None ->
                    [
                      Molecule.meth_val (Term.sym oname) p
                        (Plugin.term_of_text (Xml.text_content child));
                    ])
                | _ -> [])
              (Xml.child_elements el)
          in
          Ok
            (List.map (fun ty -> Molecule.isa (Term.sym oname) (Term.sym ty)) types
            @ prop_facts))
        (Xml.find_children "rdf:Description" doc)
    in
    let schema = Gcm.Schema.make ~name ~classes ~relations:rel_props () in
    let* () = Gcm.Schema.validate schema in
    Ok { Plugin.schema; facts = List.concat desc_facts; anchors = [] }
  | _ -> Error "expected an <rdf:RDF> document"

let plugin = { Plugin.format = "rdfs"; translate }
