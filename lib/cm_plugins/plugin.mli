(** The CM plug-in mechanism (Section 2).

    "A new CM formalism ... is added to the system by simply plugging
    a [formalism]-2-GCM translator into the mediator. Essentially such
    a translator is nothing more than a complex XML query ... Hence, in
    this architecture the mediator needs only a single GCM engine for
    handling arbitrary CMs."

    A plug-in maps one XML dialect to the common currency of the
    mediator: a GCM schema, instance-level facts, and semantic-index
    anchor hints. Plug-ins ship with the library for the native GCM
    dialect ({!Gcm_xml}), ER diagrams ({!Er_xml}), UXF-style UML
    ({!Uxf}) and an RDFS subset ({!Rdfs}); new ones are added with
    {!register} at runtime, without touching the engine. *)

type translation = {
  schema : Gcm.Schema.t;
  facts : Flogic.Molecule.t list;   (** instance-level data *)
  anchors : (string * string * string list) list;
      (** (cm_class, concept, context) semantic-index entries *)
}

type t = {
  format : string;  (** dialect name, e.g. ["uxf"] *)
  translate : Xmlkit.Xml.t -> (translation, string) result;
}

val empty_translation : name:string -> translation

(** {1 Registry} *)

type registry

val create_registry : unit -> registry
val register : registry -> t -> unit
(** Raises [Invalid_argument] on duplicate format names. *)

val find : registry -> string -> t option
val formats : registry -> string list

val translate :
  registry -> format:string -> Xmlkit.Xml.t -> (translation, string) result

val translate_string :
  registry -> format:string -> string -> (translation, string) result
(** Parse the document, then translate. *)

(** {1 Helpers shared by plug-in implementations} *)

val term_of_text : string -> Logic.Term.t
(** Numeric-looking text becomes [Int]/[Float], anything else [Str].
    For attribute/method {e values}. *)

val ident_of_text : string -> Logic.Term.t
(** Like {!term_of_text} but non-numeric text becomes a [Sym]: used for
    object identifiers (tuple fields, role values, resource refs). *)

val require_attr : Xmlkit.Xml.t -> string -> (string, string) result
