module Xml = Xmlkit.Xml
module Molecule = Flogic.Molecule
module Term = Logic.Term

let ( let* ) = Result.bind

let collect f xs =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) xs
  |> Result.map List.rev

let norm = Uxf.normalise_name

let simple_type t =
  (* xs:string -> string, xs:decimal/xs:double/xs:integer -> number *)
  match t with
  | "xs:string" | "xs:ID" | "xs:anyURI" -> Some "string"
  | "xs:decimal" | "xs:double" | "xs:float" | "xs:integer" | "xs:int" ->
    Some "number"
  | "xs:boolean" -> Some "boolean"
  | _ -> None

let find_extension_base el =
  match Xml.find_child "xs:complexContent" el with
  | Some cc -> (
    match Xml.find_child "xs:extension" cc with
    | Some ext -> Xml.attr "base" ext
    | None -> None)
  | None -> (
    match Xml.find_child "xs:extension" el with
    | Some ext -> Xml.attr "base" ext
    | None -> None)

let element_decls el =
  (* xs:element children anywhere under xs:sequence / xs:all /
     extension content *)
  let rec gather t =
    match Xml.tag t with
    | Some "xs:element" -> [ t ]
    | Some _ -> List.concat_map gather (Xml.child_elements t)
    | None -> []
  in
  List.concat_map gather (Xml.child_elements el)

let parse_complex_type el =
  let* name = Plugin.require_attr el "name" in
  let supers =
    match find_extension_base el with Some b -> [ norm b ] | None -> []
  in
  let* methods =
    collect
      (fun e ->
        let* ename = Plugin.require_attr e "name" in
        let range =
          match Xml.attr "type" e with
          | Some t -> (
            match simple_type t with
            | Some s -> s
            | None -> norm t (* element typed by another complexType *))
          | None -> "string"
        in
        Ok (norm ename, range))
      (element_decls el)
  in
  Ok (Gcm.Schema.class_def (norm name) ~supers ~methods)

let translate doc =
  match Xml.tag doc with
  | Some ("xs:schema" | "xsd:schema" | "schema") ->
    let name = Option.value ~default:"xsd-source" (Xml.attr "name" doc) in
    let* classes =
      collect parse_complex_type (Xml.find_children "xs:complexType" doc)
    in
    (* global element declarations: tag -> class *)
    let* tag_types =
      collect
        (fun e ->
          let* ename = Plugin.require_attr e "name" in
          let* ty = Plugin.require_attr e "type" in
          Ok (ename, norm ty))
        (Xml.find_children "xs:element" doc)
    in
    let* instance_facts =
      match Xml.find_child "data" doc with
      | None -> Ok []
      | Some data ->
        collect
          (fun inst ->
            let tag = Option.value ~default:"?" (Xml.tag inst) in
            let* cls =
              match List.assoc_opt tag tag_types with
              | Some c -> Ok c
              | None ->
                Error
                  (Printf.sprintf
                     "instance element <%s> has no xs:element declaration" tag)
            in
            let* id = Plugin.require_attr inst "id" in
            let values =
              List.filter_map
                (fun child ->
                  match Xml.tag child with
                  | Some field ->
                    Some
                      (Molecule.meth_val (Term.sym id) (norm field)
                         (Plugin.term_of_text (Xml.text_content child)))
                  | None -> None)
                (Xml.child_elements inst)
            in
            Ok (Molecule.isa (Term.sym id) (Term.sym cls) :: values))
          (Xml.child_elements data)
        |> Result.map List.concat
    in
    let schema = Gcm.Schema.make ~name ~classes () in
    let* () = Gcm.Schema.validate schema in
    Ok { Plugin.schema; facts = instance_facts; anchors = [] }
  | _ -> Error "expected an <xs:schema> document"

let plugin = { Plugin.format = "xsd"; translate }
