module Xml = Xmlkit.Xml
module Molecule = Flogic.Molecule
module Term = Logic.Term

let ( let* ) = Result.bind

let collect f xs =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) xs
  |> Result.map List.rev

let parse_class el =
  let* name = Plugin.require_attr el "name" in
  let supers =
    match Xml.attr "super" el with
    | Some s -> String.split_on_char ' ' s |> List.filter (( <> ) "")
    | None -> []
  in
  let* methods =
    collect
      (fun m ->
        let* mname = Plugin.require_attr m "name" in
        let range = Option.value ~default:"string" (Xml.attr "range" m) in
        Ok (mname, range))
      (Xml.find_children "method" el)
  in
  Ok (Gcm.Schema.class_def name ~supers ~methods)

let parse_relation el =
  let* name = Plugin.require_attr el "name" in
  let* attrs =
    collect
      (fun a ->
        let* aname = Plugin.require_attr a "name" in
        let cls = Option.value ~default:"thing" (Xml.attr "class" a) in
        Ok (aname, cls))
      (Xml.find_children "attr" el)
  in
  if attrs = [] then Error (Printf.sprintf "relation %s has no attributes" name)
  else Ok (name, attrs)

let parse_tuple sg el =
  let* rel = Plugin.require_attr el "relation" in
  let* fields =
    collect
      (fun f ->
        let* attr = Plugin.require_attr f "attr" in
        Ok (attr, Plugin.ident_of_text (Xml.text_content f)))
      (Xml.find_children "field" el)
  in
  ignore sg;
  Ok (Molecule.Rel_val (rel, fields))

let translate doc =
  match Xml.tag doc with
  | Some "gcm" -> (
    let source = Option.value ~default:"unnamed" (Xml.attr "source" doc) in
    let* classes = collect parse_class (Xml.find_children "class" doc) in
    let* relations = collect parse_relation (Xml.find_children "relation" doc) in
    let* instance_facts =
      collect
        (fun el ->
          let* id = Plugin.require_attr el "id" in
          let* cls = Plugin.require_attr el "class" in
          Ok (Molecule.isa (Term.sym id) (Term.sym cls)))
        (Xml.find_children "instance" doc)
    in
    let* value_facts =
      collect
        (fun el ->
          let* obj = Plugin.require_attr el "object" in
          let* m = Plugin.require_attr el "method" in
          Ok
            (Molecule.meth_val (Term.sym obj) m
               (Plugin.term_of_text (Xml.text_content el))))
        (Xml.find_children "value" doc)
    in
    let sg =
      List.fold_left
        (fun sg (r, avs) -> Flogic.Signature.declare r (List.map fst avs) sg)
        Flogic.Signature.empty relations
    in
    let* tuple_facts = collect (parse_tuple sg) (Xml.find_children "tuple" doc) in
    let* anchors =
      collect
        (fun el ->
          let* cls = Plugin.require_attr el "class" in
          let* concept = Plugin.require_attr el "concept" in
          let context =
            match Xml.attr "context" el with
            | Some c -> String.split_on_char ' ' c |> List.filter (( <> ) "")
            | None -> []
          in
          Ok (cls, concept, context))
        (Xml.find_children "anchor" doc)
    in
    let* rules =
      collect
        (fun el ->
          match Flogic.Fl_parser.parse_program ~signature:sg (Xml.text_content el) with
          | Ok parsed -> Ok parsed.Flogic.Fl_parser.rules
          | Error e -> Error (Printf.sprintf "bad <rule>: %s" e))
        (Xml.find_children "rule" doc)
    in
    let schema =
      Gcm.Schema.make ~name:source ~classes ~relations
        ~rules:(List.concat rules) ()
    in
    let* () = Gcm.Schema.validate schema in
    Ok
      {
        Plugin.schema;
        facts = instance_facts @ value_facts @ tuple_facts;
        anchors;
      })
  | _ -> Error "expected a <gcm> document"

let plugin = { Plugin.format = "gcm-xml"; translate }

(* ------------------------------------------------------------------ *)
(* Export *)

let term_text t =
  match t with
  | Term.Const (Term.Str s) | Term.Const (Term.Sym s) -> s
  | t -> Term.to_string t

let export ~source (tr : Plugin.translation) =
  let schema = tr.Plugin.schema in
  let class_els =
    List.map
      (fun (c : Gcm.Schema.class_def) ->
        Xml.elt "class"
          ~attrs:
            ((("name", c.Gcm.Schema.cname)
             ::
             (if c.Gcm.Schema.supers = [] then []
              else [ ("super", String.concat " " c.Gcm.Schema.supers) ])))
          (List.map
             (fun (m, r) -> Xml.elt "method" ~attrs:[ ("name", m); ("range", r) ] [])
             c.Gcm.Schema.methods))
      schema.Gcm.Schema.classes
  in
  let rel_els =
    List.map
      (fun (r, avs) ->
        Xml.elt "relation" ~attrs:[ ("name", r) ]
          (List.map
             (fun (a, c) -> Xml.elt "attr" ~attrs:[ ("name", a); ("class", c) ] [])
             avs))
      schema.Gcm.Schema.relations
  in
  let fact_els =
    List.filter_map
      (fun m ->
        match m with
        | Molecule.Isa (x, c) ->
          Some
            (Xml.elt "instance"
               ~attrs:[ ("id", term_text x); ("class", term_text c) ]
               [])
        | Molecule.Meth_val (x, meth, v) ->
          Some
            (Xml.elt "value"
               ~attrs:[ ("object", term_text x); ("method", meth) ]
               [ Xml.text (term_text v) ])
        | Molecule.Rel_val (r, avs) ->
          Some
            (Xml.elt "tuple" ~attrs:[ ("relation", r) ]
               (List.map
                  (fun (a, v) ->
                    Xml.elt "field" ~attrs:[ ("attr", a) ] [ Xml.text (term_text v) ])
                  avs))
        | _ -> None)
      tr.Plugin.facts
  in
  let anchor_els =
    List.map
      (fun (cls, concept, context) ->
        Xml.elt "anchor"
          ~attrs:
            ([ ("class", cls); ("concept", concept) ]
            @ if context = [] then [] else [ ("context", String.concat " " context) ])
          [])
      tr.Plugin.anchors
  in
  let rule_els =
    List.map
      (fun r -> Xml.leaf "rule" (Molecule.rule_to_string r))
      schema.Gcm.Schema.rules
  in
  Xml.elt "gcm" ~attrs:[ ("source", source) ]
    (class_els @ rel_els @ fact_els @ anchor_els @ rule_els)
