type translation = {
  schema : Gcm.Schema.t;
  facts : Flogic.Molecule.t list;
  anchors : (string * string * string list) list;
}

type t = {
  format : string;
  translate : Xmlkit.Xml.t -> (translation, string) result;
}

let empty_translation ~name =
  { schema = Gcm.Schema.make ~name (); facts = []; anchors = [] }

type registry = (string, t) Hashtbl.t

let create_registry () : registry = Hashtbl.create 8

let register reg p =
  if Hashtbl.mem reg p.format then
    invalid_arg (Printf.sprintf "Plugin.register: %s already registered" p.format)
  else Hashtbl.add reg p.format p

let find reg format = Hashtbl.find_opt reg format

let formats reg =
  Hashtbl.fold (fun f _ acc -> f :: acc) reg [] |> List.sort String.compare

let translate reg ~format doc =
  match find reg format with
  | None ->
    Error
      (Printf.sprintf "no CM plug-in for format %s (have: %s)" format
         (String.concat ", " (formats reg)))
  | Some p -> p.translate doc

let translate_string reg ~format src =
  match Xmlkit.Parse.parse src with
  | Error e -> Error e
  | Ok doc -> translate reg ~format doc

let term_of_text s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some i -> Logic.Term.int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Logic.Term.float f
    | None -> Logic.Term.str s)

let ident_of_text s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some i -> Logic.Term.int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Logic.Term.float f
    | None -> Logic.Term.sym s)

let require_attr t name =
  match Xmlkit.Xml.attr name t with
  | Some v -> Ok v
  | None ->
    Error
      (Printf.sprintf "element <%s> is missing required attribute %s"
         (Option.value ~default:"?" (Xmlkit.Xml.tag t))
         name)

