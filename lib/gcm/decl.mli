(** The GCM core expressions of Section 3 of the paper, and their
    F-logic incarnation (Table 1).

    - [instance(X, C)] — object X is an instance of class C (INST)
    - [subclass(C1, C2)] — C1 is a subclass of C2 (SUB)
    - [method(C, M, CM)] — method M on C yields objects in CM (METH)
    - [methodinst(X, M, Y)] — concrete method result
    - [relation(R, A1=C1, ..., An=Cn)] — n-ary typed relation (REL)
    - [relationinst(R, A1=X1, ..., An=Xn)] — a tuple of R *)

type t =
  | Instance of Logic.Term.t * Logic.Term.t
  | Subclass of Logic.Term.t * Logic.Term.t
  | Method of Logic.Term.t * string * Logic.Term.t
  | Method_inst of Logic.Term.t * string * Logic.Term.t
  | Relation of string * (string * Logic.Term.t) list
  | Relation_inst of string * (string * Logic.Term.t) list

val to_molecule : t -> Flogic.Molecule.t
(** The FL expression of the declaration, per Table 1. *)

val of_molecule : Flogic.Molecule.t -> t option
(** Inverse of {!to_molecule}; [None] for plain predicate atoms, which
    have no GCM core reading. *)

val signature_of : t list -> Flogic.Signature.t
(** Relation layouts harvested from [Relation] declarations. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
