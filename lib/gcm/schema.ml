module Term = Logic.Term
module Molecule = Flogic.Molecule
module Signature = Flogic.Signature

type class_def = {
  cname : string;
  supers : string list;
  methods : (string * string) list;
}

type t = {
  name : string;
  classes : class_def list;
  relations : (string * (string * string) list) list;
  rules : Molecule.rule list;
}

let make ~name ?(classes = []) ?(relations = []) ?(rules = []) () =
  { name; classes; relations; rules }

let class_def ?(supers = []) ?(methods = []) cname = { cname; supers; methods }

let find_dup xs =
  let rec go = function
    | a :: b :: _ when String.equal a b -> Some a
    | _ :: rest -> go rest
    | [] -> None
  in
  go (List.sort String.compare xs)

let validate t =
  let ( let* ) r f = Result.bind r f in
  let* () =
    match find_dup (List.map (fun c -> c.cname) t.classes) with
    | Some c -> Error (Printf.sprintf "schema %s: duplicate class %s" t.name c)
    | None -> Ok ()
  in
  let* () =
    match find_dup (List.map fst t.relations) with
    | Some r -> Error (Printf.sprintf "schema %s: duplicate relation %s" t.name r)
    | None -> Ok ()
  in
  let* () =
    match
      List.find_opt (fun (r, _) -> List.mem r Flogic.Compile.reserved) t.relations
    with
    | Some (r, _) ->
      Error (Printf.sprintf "schema %s: relation name %s is reserved" t.name r)
    | None -> Ok ()
  in
  let* () =
    List.fold_left
      (fun acc c ->
        let* () = acc in
        match find_dup (List.map fst c.methods) with
        | Some m ->
          Error
            (Printf.sprintf "schema %s: class %s declares method %s twice"
               t.name c.cname m)
        | None -> Ok ())
      (Ok ()) t.classes
  in
  List.fold_left
    (fun acc (r, avs) ->
      let* () = acc in
      match find_dup (List.map fst avs) with
      | Some a ->
        Error
          (Printf.sprintf "schema %s: relation %s has duplicate attribute %s"
             t.name r a)
      | None -> Ok ())
    (Ok ()) t.relations

let signature t =
  List.fold_left
    (fun sg (r, avs) -> Signature.declare r (List.map fst avs) sg)
    Signature.empty t.relations

let class_names t = List.map (fun c -> c.cname) t.classes
let relation_names t = List.map fst t.relations

let declarations t =
  let class_decls =
    List.concat_map
      (fun c ->
        let self = Term.sym c.cname in
        List.map (fun s -> Decl.Subclass (self, Term.sym s)) c.supers
        @ List.map (fun (m, range) -> Decl.Method (self, m, Term.sym range)) c.methods)
      t.classes
  in
  let rel_decls =
    List.map
      (fun (r, avs) ->
        Decl.Relation (r, List.map (fun (a, c) -> (a, Term.sym c)) avs))
      t.relations
  in
  class_decls @ rel_decls

let to_rules t =
  (* Register every class with the meta-class predicate so classhood
     does not depend on having supers, methods or instances. *)
  List.map
    (fun c -> Molecule.fact (Molecule.pred Flogic.Compile.class_p [ Term.sym c.cname ]))
    t.classes
  @ List.map (fun d -> Molecule.fact (Decl.to_molecule d)) (declarations t)
  @ t.rules

let to_fl_program t =
  Flogic.Fl_program.make ~signature:(signature t) (to_rules t)

let pp ppf t =
  Format.fprintf ppf "schema %s:@." t.name;
  List.iter
    (fun c ->
      Format.fprintf ppf "  class %s" c.cname;
      if c.supers <> [] then
        Format.fprintf ppf " :: %s" (String.concat ", " c.supers);
      List.iter (fun (m, r) -> Format.fprintf ppf "@.    %s => %s" m r) c.methods;
      Format.fprintf ppf "@.")
    t.classes;
  List.iter
    (fun (r, avs) ->
      Format.fprintf ppf "  relation %s(%s)@." r
        (String.concat ", " (List.map (fun (a, c) -> a ^ ":" ^ c) avs)))
    t.relations;
  List.iter
    (fun r -> Format.fprintf ppf "  rule %a@." Molecule.pp_rule r)
    t.rules
