module Term = Logic.Term
module Literal = Logic.Literal
module Molecule = Flogic.Molecule
module Ic = Flogic.Ic

type kind =
  | Component_of
  | Member_of
  | Portion_of
  | Stuff_of
  | Feature_of
  | Place_in

let kind_name = function
  | Component_of -> "component-of"
  | Member_of -> "member-of"
  | Portion_of -> "portion-of"
  | Stuff_of -> "stuff-of"
  | Feature_of -> "feature-of"
  | Place_in -> "place-in"

let is_transitive = function
  | Component_of | Portion_of | Feature_of | Place_in -> true
  | Member_of | Stuff_of -> false

let is_exclusive = function
  | Component_of -> true
  | Member_of | Portion_of | Stuff_of | Feature_of | Place_in -> false

let is_homeomeric = function
  | Portion_of -> true
  | Component_of | Member_of | Stuff_of | Feature_of | Place_in -> false

let v = Term.var

let star rel = rel ^ "_star"

let rules kind ~rel =
  let r2 p x y = Molecule.Pos (Molecule.pred p [ x; y ]) in
  let base =
    [
      (* irreflexivity: nothing is a proper part of itself *)
      Ic.denial
        ~name:("w_" ^ rel ^ "_irrefl")
        ~args:[ v "X" ]
        [ r2 rel (v "X") (v "X") ];
      (* antisymmetry *)
      Ic.denial
        ~name:("w_" ^ rel ^ "_antisym")
        ~args:[ v "X"; v "Y" ]
        [
          r2 rel (v "X") (v "Y");
          r2 rel (v "Y") (v "X");
          Molecule.Cmp (Literal.Ne, v "X", v "Y");
        ];
    ]
  in
  let transitive =
    if is_transitive kind then
      [
        Molecule.rule (Molecule.pred (star rel) [ v "X"; v "Y" ]) [ r2 rel (v "X") (v "Y") ];
        Molecule.rule
          (Molecule.pred (star rel) [ v "X"; v "Y" ])
          [ r2 rel (v "X") (v "Z"); r2 (star rel) (v "Z") (v "Y") ];
        (* a cycle through the closure also breaks the part order *)
        Ic.denial
          ~name:("w_" ^ rel ^ "_cycle")
          ~args:[ v "X" ]
          [ r2 (star rel) (v "X") (v "X") ];
      ]
    else []
  in
  let exclusive =
    if is_exclusive kind then
      [
        (* a component belongs to at most one integral whole *)
        Ic.denial
          ~name:("w_" ^ rel ^ "_shared")
          ~args:[ v "P"; v "W1"; v "W2" ]
          [
            r2 rel (v "P") (v "W1");
            r2 rel (v "P") (v "W2");
            Molecule.Cmp (Literal.Ne, v "W1", v "W2");
          ];
      ]
    else []
  in
  let homeomeric =
    if is_homeomeric kind then
      [
        (* portions are of their whole's kind *)
        Molecule.rule
          (Molecule.Isa (v "P", v "C"))
          [
            r2 rel (v "P") (v "W");
            Molecule.Pos (Molecule.Isa (v "W", v "C"));
          ];
      ]
    else []
  in
  base @ transitive @ exclusive @ homeomeric

let describe kind =
  let feats =
    List.filter_map
      (fun (b, label) -> if b then Some label else None)
      [
        (is_transitive kind, "transitive");
        (is_exclusive kind, "exclusive");
        (is_homeomeric kind, "homeomeric");
      ]
  in
  Printf.sprintf "%s (%s)" (kind_name kind)
    (if feats = [] then "plain" else String.concat ", " feats)
