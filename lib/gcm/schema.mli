(** Conceptual-model schemas: what a wrapped source exports when it
    registers with the mediator (Section 2: "class schemas, relationship
    schemas, and semantic rules").

    A schema is declarative data; {!to_rules} turns it into F-logic
    facts/rules for the mediator's GCM engine. Class and method range
    names may refer to classes defined elsewhere (e.g. domain-map
    concepts) — validation only rejects internal inconsistencies. *)

type class_def = {
  cname : string;
  supers : string list;          (** direct superclasses *)
  methods : (string * string) list;  (** method name, range class *)
}

type t = {
  name : string;                 (** schema / source name *)
  classes : class_def list;
  relations : (string * (string * string) list) list;
      (** relation name, (attribute, class) list in positional order *)
  rules : Flogic.Molecule.rule list;  (** semantic rules and constraints *)
}

val make :
  name:string ->
  ?classes:class_def list ->
  ?relations:(string * (string * string) list) list ->
  ?rules:Flogic.Molecule.rule list ->
  unit ->
  t

val class_def :
  ?supers:string list -> ?methods:(string * string) list -> string -> class_def

val validate : t -> (unit, string) result
(** Rejects duplicate class/relation names, duplicate methods within a
    class, relations clashing with reserved predicate names, and
    duplicate attributes. *)

val signature : t -> Flogic.Signature.t
val class_names : t -> string list
val relation_names : t -> string list

val declarations : t -> Decl.t list
(** The schema-level GCM declarations: one [Subclass] per super edge,
    one [Method] per method, one [Relation] per relation, plus a
    class-membership fact for every class. *)

val to_rules : t -> Flogic.Molecule.rule list
(** Declarations as facts, followed by the schema's semantic rules. *)

val to_fl_program : t -> Flogic.Fl_program.t

val pp : Format.formatter -> t -> unit
