(** Whole/part relationships with specific semantics.

    Section 3 of the paper: "Objects can participate in relationships
    (or associations) which can be further constrained to be
    aggregations, compositions, or other whole/part relationships with
    a specific semantics [Ode94]."

    Odell distinguishes six kinds of composition; each carries
    different inference rules and integrity constraints. This module
    generates, per declared parthood relation, the FL rules for the
    kind's semantics:

    - {b Component_of} (wheel/car): transitive, parts are separable,
      exclusive (a component belongs to at most one integral whole);
    - {b Member_of} (tree/forest): {e not} transitive; no exclusivity;
    - {b Portion_of} (slice/pie): transitive, and the portion is of the
      same kind as the whole (homeomeronomy: the portion inherits the
      whole's class);
    - {b Stuff_of} (steel/car): not transitive across kinds, not
      separable;
    - {b Feature_of} (paying/shopping): activities — transitive;
    - {b Place_in} (oasis/desert): transitive, no separability.

    All kinds are irreflexive and antisymmetric (checked via Example 2
    style denials). The generated predicates are the relation name
    itself plus [<rel>_star] for the transitive kinds. *)

type kind =
  | Component_of
  | Member_of
  | Portion_of
  | Stuff_of
  | Feature_of
  | Place_in

val kind_name : kind -> string

val is_transitive : kind -> bool
val is_exclusive : kind -> bool
(** A part belongs to at most one whole. *)

val is_homeomeric : kind -> bool
(** The part inherits the whole's class (portions of a pie are pie). *)

val rules : kind -> rel:string -> Flogic.Molecule.rule list
(** Derivation rules ([<rel>_star] closure when transitive, class
    inheritance when homeomeric) plus integrity denials (irreflexivity
    and antisymmetry always; exclusivity when the kind demands it).
    Witness names are prefixed with the relation name. *)

val describe : kind -> string
