module Term = Logic.Term
module Literal = Logic.Literal
module Molecule = Flogic.Molecule
module Signature = Flogic.Signature
module Ic = Flogic.Ic

let v = Term.var
let s = Term.sym

let check_attrs ~sg ~rel attrs =
  match Signature.attributes sg rel with
  | None -> invalid_arg (Printf.sprintf "Constraints: relation %s not declared" rel)
  | Some declared ->
    List.iter
      (fun a ->
        if not (List.mem a declared) then
          invalid_arg
            (Printf.sprintf "Constraints: relation %s has no attribute %s" rel a))
      attrs

(* ------------------------------------------------------------------ *)
(* Example 2: partial orders *)

let partial_order_on ~member ~rel =
  let r2 x y = Molecule.Pos (Molecule.pred rel [ x; y ]) in
  [
    (* (1) reflexivity: wrc(C,R,X) : ic :- X : C, not R(X,X). *)
    Ic.denial ~name:"wrc" ~args:[ s rel; v "X" ]
      [ Molecule.Pos (member (v "X")); Molecule.Neg (Molecule.pred rel [ v "X"; v "X" ]) ];
    (* (2) transitivity: wtc reports missing transitive edges. *)
    Ic.denial ~name:"wtc" ~args:[ s rel; v "X"; v "Z"; v "Y" ]
      [
        Molecule.Pos (member (v "X"));
        Molecule.Pos (member (v "Y"));
        Molecule.Pos (member (v "Z"));
        r2 (v "X") (v "Z");
        r2 (v "Z") (v "Y");
        Molecule.Neg (Molecule.pred rel [ v "X"; v "Y" ]);
      ];
    (* (3) antisymmetry: was reports 2-cycles. *)
    Ic.denial ~name:"was" ~args:[ s rel; v "X"; v "Y" ]
      [
        Molecule.Pos (member (v "X"));
        r2 (v "X") (v "Y");
        r2 (v "Y") (v "X");
        Molecule.Cmp (Literal.Ne, v "X", v "Y");
      ];
  ]

let partial_order ~cls ~rel =
  partial_order_on ~member:(fun x -> Molecule.Isa (x, s cls)) ~rel

let subclass_partial_order =
  partial_order_on
    ~member:(fun x -> Molecule.Pred (Logic.Atom.make Flogic.Compile.class_p [ x ]))
    ~rel:Flogic.Compile.sub_p

(* ------------------------------------------------------------------ *)
(* Example 3: cardinality *)

let cardinality ~sg ~rel ~counted ~per ?min_count ?max_count ?exactly () =
  check_attrs ~sg ~rel (counted :: per);
  let n = v "N" in
  let group_vars = List.map (fun a -> v ("G_" ^ a)) per in
  let bindings =
    (counted, v "V_counted") :: List.map2 (fun a g -> (a, g)) per group_vars
  in
  let agg =
    Molecule.Agg
      {
        Molecule.func = Literal.Count;
        target = v "V_counted";
        group_by = group_vars;
        result = n;
        body = [ Molecule.Rel_val (rel, bindings) ];
      }
  in
  let witness name bound =
    Ic.denial ~name
      ~args:([ s rel; s counted ] @ group_vars @ [ n ])
      [ agg; bound ]
  in
  List.concat
    [
      (match exactly with
      | Some k -> [ witness "w_card_ne" (Molecule.Cmp (Literal.Ne, n, Term.int k)) ]
      | None -> []);
      (match max_count with
      | Some k -> [ witness "w_card_hi" (Molecule.Cmp (Literal.Gt, n, Term.int k)) ]
      | None -> []);
      (match min_count with
      | Some k -> [ witness "w_card_lo" (Molecule.Cmp (Literal.Lt, n, Term.int k)) ]
      | None -> []);
    ]

let proj_pred rel attr = Printf.sprintf "proj_%s_%s" rel attr

let projection_rule ~rel ~attr =
  Molecule.rule
    (Molecule.pred (proj_pred rel attr) [ v "V" ])
    [ Molecule.Pos (Molecule.Rel_val (rel, [ (attr, v "V") ])) ]

let total_participation ~sg ~cls ~rel ~attr =
  check_attrs ~sg ~rel [ attr ];
  [
    projection_rule ~rel ~attr;
    Ic.denial ~name:"w_total"
      ~args:[ s cls; s rel; s attr; v "X" ]
      [
        Molecule.Pos (Molecule.Isa (v "X", s cls));
        Molecule.Neg (Molecule.pred (proj_pred rel attr) [ v "X" ]);
      ];
  ]

(* ------------------------------------------------------------------ *)
(* Relational constraints *)

let functional_dependency ~sg ~rel ~from ~to_ =
  check_attrs ~sg ~rel (to_ :: from);
  let key_bindings = List.map (fun a -> (a, v ("K_" ^ a))) from in
  let t1 = Molecule.Rel_val (rel, (to_, v "Y") :: key_bindings) in
  let t2 = Molecule.Rel_val (rel, (to_, v "Y2") :: key_bindings) in
  [
    Ic.denial ~name:"w_fd"
      ~args:[ s rel; s to_; v "Y"; v "Y2" ]
      [ Molecule.Pos t1; Molecule.Pos t2; Molecule.Cmp (Literal.Ne, v "Y", v "Y2") ];
  ]

let inclusion ~sg ~from_rel ~from_attr ~to_rel ~to_attr =
  check_attrs ~sg ~rel:from_rel [ from_attr ];
  check_attrs ~sg ~rel:to_rel [ to_attr ];
  [
    projection_rule ~rel:to_rel ~attr:to_attr;
    Ic.denial ~name:"w_incl"
      ~args:[ s from_rel; s from_attr; s to_rel; s to_attr; v "V" ]
      [
        Molecule.Pos (Molecule.Rel_val (from_rel, [ (from_attr, v "V") ]));
        Molecule.Neg (Molecule.pred (proj_pred to_rel to_attr) [ v "V" ]);
      ];
  ]

let attribute_typed ~sg ~rel ~attr ~cls =
  check_attrs ~sg ~rel [ attr ];
  [
    Ic.denial ~name:"w_type"
      ~args:[ s rel; s attr; s cls; v "V" ]
      [
        Molecule.Pos (Molecule.Rel_val (rel, [ (attr, v "V") ]));
        Molecule.Neg (Molecule.Isa (v "V", s cls));
      ];
  ]
