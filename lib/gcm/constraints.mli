(** A library of integrity-constraint generators, reproducing the
    paper's Examples 2 (inductive properties / partial orders) and 3
    (cardinality constraints), plus the usual relational constraints the
    paper lists as GCM requirements (key/functional dependencies,
    inclusion dependencies, attribute typing).

    Every generator returns denial rules in the style of Section 3:
    violated constraints insert failure witnesses into the [ic] class;
    query them with {!Flogic.Ic.violations}. *)

(** {1 Example 2 — partial orders} *)

val partial_order_on :
  member:(Logic.Term.t -> Flogic.Molecule.t) ->
  rel:string ->
  Flogic.Molecule.rule list
(** The three denials of Example 2 — [wrc] (reflexivity), [wtc]
    (transitivity), [was] (antisymmetry) — for binary predicate [rel]
    over the domain described by [member] (e.g.
    [fun x -> Molecule.Isa (x, Term.sym "node")]). *)

val partial_order : cls:string -> rel:string -> Flogic.Molecule.rule list
(** [partial_order_on] with membership [X : cls]. *)

val subclass_partial_order : Flogic.Molecule.rule list
(** The paper's meta instantiation: check that [::] is a partial order
    on the meta-class [class] ("this example also shows the power of
    schema reasoning in FL"). *)

(** {1 Example 3 — cardinality constraints} *)

val cardinality :
  sg:Flogic.Signature.t ->
  rel:string ->
  counted:string ->
  per:string list ->
  ?min_count:int ->
  ?max_count:int ->
  ?exactly:int ->
  unit ->
  Flogic.Molecule.rule list
(** Count distinct values of attribute [counted] grouped by attributes
    [per]; emit a witness [w_card_lo]/[w_card_hi]/[w_card_ne] when the
    count of an existing group falls outside the bounds. (Groups with
    zero tuples never appear; combine with {!total_participation} for
    lower bounds over a class domain.) Raises [Invalid_argument] on
    unknown relation or attributes. *)

val total_participation :
  sg:Flogic.Signature.t ->
  cls:string ->
  rel:string ->
  attr:string ->
  Flogic.Molecule.rule list
(** Every instance of [cls] must occur in attribute [attr] of [rel];
    witnesses are [w_total(cls, rel, attr, X)]. Emits a helper
    projection rule plus the denial. *)

(** {1 Relational constraints} *)

val functional_dependency :
  sg:Flogic.Signature.t ->
  rel:string ->
  from:string list ->
  to_:string ->
  Flogic.Molecule.rule list
(** Two tuples agreeing on [from] must agree on [to_]; witnesses are
    [w_fd(rel, to_, Y, Y')]. A key constraint is an FD from the key
    attributes to each non-key attribute. *)

val inclusion :
  sg:Flogic.Signature.t ->
  from_rel:string ->
  from_attr:string ->
  to_rel:string ->
  to_attr:string ->
  Flogic.Molecule.rule list
(** Values of [from_rel.from_attr] must appear in [to_rel.to_attr]. *)

val attribute_typed :
  sg:Flogic.Signature.t ->
  rel:string ->
  attr:string ->
  cls:string ->
  Flogic.Molecule.rule list
(** Values of [rel.attr] must be instances of [cls] — executes the
    typing half of the (REL) declaration. *)
