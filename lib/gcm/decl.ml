module Term = Logic.Term
module Molecule = Flogic.Molecule
module Signature = Flogic.Signature

type t =
  | Instance of Term.t * Term.t
  | Subclass of Term.t * Term.t
  | Method of Term.t * string * Term.t
  | Method_inst of Term.t * string * Term.t
  | Relation of string * (string * Term.t) list
  | Relation_inst of string * (string * Term.t) list

let to_molecule = function
  | Instance (x, c) -> Molecule.Isa (x, c)
  | Subclass (c1, c2) -> Molecule.Sub (c1, c2)
  | Method (c, m, d) -> Molecule.Meth_sig (c, m, d)
  | Method_inst (x, m, y) -> Molecule.Meth_val (x, m, y)
  | Relation (r, avs) -> Molecule.Rel_sig (r, avs)
  | Relation_inst (r, avs) -> Molecule.Rel_val (r, avs)

let of_molecule = function
  | Molecule.Isa (x, c) -> Some (Instance (x, c))
  | Molecule.Sub (c1, c2) -> Some (Subclass (c1, c2))
  | Molecule.Meth_sig (c, m, d) -> Some (Method (c, m, d))
  | Molecule.Meth_val (x, m, y) -> Some (Method_inst (x, m, y))
  | Molecule.Rel_sig (r, avs) -> Some (Relation (r, avs))
  | Molecule.Rel_val (r, avs) -> Some (Relation_inst (r, avs))
  | Molecule.Pred _ -> None

let signature_of decls =
  List.fold_left
    (fun sg d ->
      match d with
      | Relation (r, avs) -> Signature.declare r (List.map fst avs) sg
      | _ -> sg)
    Signature.empty decls

let pp ppf d = Molecule.pp ppf (to_molecule d)
let to_string d = Format.asprintf "%a" pp d
