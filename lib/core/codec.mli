(** Versioned, CRC32-checksummed, length-prefixed binary frames — the
    durability substrate shared by the engine checkpoint
    ({!Datalog.Snapshot}), the write-ahead log ({!Datalog.Wal}) and the
    federation state file ({!Mediation.Durable}).

    A durable file is [magic ^ version ^ frame*]. Each frame is

    {v [u32 payload-len][u32 crc][u8 kind][payload] v}

    (little-endian fixed-width integers) where the CRC covers the kind
    byte and the payload. The reader is torn-tail tolerant: a truncated
    or corrupted {e final} frame is detected by the length prefix or the
    checksum and dropped — it is reported as a {!tail}, never mis-parsed
    as data. Everything before the first bad frame is trusted; nothing
    after it is (a frame boundary cannot be re-synchronized past a
    corruption).

    Writers go through a {!sink} and files through a {!fs} record so the
    crash-point harness ({!Wrapper.Crashpoint}) can substitute a
    write-truncating sandbox for the real filesystem. *)

val format_version : int
(** Bumped on any incompatible frame or payload change; {!decode_file}
    rejects files written by another version. *)

val crc32 : string -> int
(** CRC-32 (the IEEE 802.3 polynomial, as in zip/png), in [0, 2^32). *)

(** {1 Payload encoding helpers} *)

module Enc : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u32 : t -> int -> unit
  val i64 : t -> int -> unit
  val f64 : t -> float -> unit
  val bool : t -> bool -> unit
  val str : t -> string -> unit
  (** Length-prefixed (u32) byte string. *)

  val contents : t -> string
end

module Dec : sig
  type t

  exception Corrupt of string
  (** Raised by every reader on a short or malformed payload. A
      CRC-valid frame should never trigger it; if one does, the file
      was written by incompatible code — callers map it to an error,
      not a torn tail. *)

  val of_string : string -> t
  val u8 : t -> int
  val u32 : t -> int
  val i64 : t -> int
  val f64 : t -> float
  val bool : t -> bool
  val str : t -> string
  val at_end : t -> bool
end

(** {1 Frames} *)

type frame = { kind : int; payload : string }

type tail =
  | Clean
  | Torn of { at : int; reason : string }
      (** The file ends in garbage starting at byte [at]: a partially
          written (torn) or corrupted final frame, dropped by the
          reader. *)

val encode_frame : frame -> string
val file_header : magic:string -> string
(** [magic] must be exactly 8 bytes. *)

val decode_file : magic:string -> string -> (frame list * tail, string) result
(** Every complete, checksum-valid frame in prefix order, plus what the
    tail looked like. [Error] only on a {e structural} mismatch that no
    crash can produce — wrong magic or a version from different code. A
    file shorter than its header (torn during creation) is
    [Ok ([], Torn _)]. *)

(** {1 Filesystem abstraction} *)

type sink = {
  write : string -> unit;
  flush : unit -> unit;  (** barrier: fsync, or the sandbox equivalent *)
  close : unit -> unit;
}

type fs = {
  read : string -> string option;  (** whole file; [None] when absent *)
  sink : append:bool -> string -> sink;
  rename : string -> string -> unit;  (** atomic replace *)
  remove : string -> unit;  (** no-op when absent *)
  exists : string -> bool;
  size : string -> int;  (** 0 when absent *)
}
(** Paths are names relative to the store's root directory. *)

val real_fs : root:string -> fs
(** The actual filesystem under directory [root] (created, with its
    parents, on first use); [flush] is [Unix.fsync]. *)

val write_file_atomic : fs -> path:string -> string -> unit
(** Write-to-temp, fsync, rename: after a crash at any point the file
    holds either its previous content or the new content, never a
    mixture. The temp file is [path ^ ".tmp"]. *)
