let format_version = 1

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3 / zlib polynomial), table-driven.                *)

(* Slicing-by-8: eight derived tables let the hot loop fold eight
   input bytes per iteration with two word loads, computing the exact
   same CRC-32 as the classic one-byte table walk (checkpoint images
   run to megabytes, and every recovery checksums all of them). *)
let crc_tables =
  lazy
    (let t0 =
       Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
             else c := !c lsr 1
           done;
           !c)
     in
     let ts = Array.make 8 t0 in
     for k = 1 to 7 do
       ts.(k) <-
         Array.map (fun c -> t0.(c land 0xFF) lxor (c lsr 8)) ts.(k - 1)
     done;
     ts)

let crc32 s =
  let ts = Lazy.force crc_tables in
  let t0 = ts.(0) and t1 = ts.(1) and t2 = ts.(2) and t3 = ts.(3) in
  let t4 = ts.(4) and t5 = ts.(5) and t6 = ts.(6) and t7 = ts.(7) in
  let len = String.length s in
  let c = ref 0xFFFFFFFF in
  let pos = ref 0 in
  while !pos + 8 <= len do
    let lo =
      !c lxor (Int32.to_int (String.get_int32_le s !pos) land 0xFFFFFFFF)
    in
    let hi = Int32.to_int (String.get_int32_le s (!pos + 4)) land 0xFFFFFFFF in
    c :=
      t7.(lo land 0xFF)
      lxor t6.((lo lsr 8) land 0xFF)
      lxor t5.((lo lsr 16) land 0xFF)
      lxor t4.(lo lsr 24)
      lxor t3.(hi land 0xFF)
      lxor t2.((hi lsr 8) land 0xFF)
      lxor t1.((hi lsr 16) land 0xFF)
      lxor t0.(hi lsr 24);
    pos := !pos + 8
  done;
  for i = !pos to len - 1 do
    c := t0.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Payload encoding: little-endian fixed-width scalars over Buffer.    *)

module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let u8 b n = Buffer.add_char b (Char.chr (n land 0xFF))

  let u32 b n =
    if n < 0 || n > 0xFFFFFFFF then
      invalid_arg (Printf.sprintf "Codec.Enc.u32: %d out of range" n);
    Buffer.add_char b (Char.chr (n land 0xFF));
    Buffer.add_char b (Char.chr ((n lsr 8) land 0xFF));
    Buffer.add_char b (Char.chr ((n lsr 16) land 0xFF));
    Buffer.add_char b (Char.chr ((n lsr 24) land 0xFF))

  let i64 b n = Buffer.add_int64_le b (Int64.of_int n)
  let f64 b x = Buffer.add_int64_le b (Int64.bits_of_float x)
  let bool b v = u8 b (if v then 1 else 0)

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let contents = Buffer.contents
end

module Dec = struct
  type t = { data : string; mutable pos : int }

  exception Corrupt of string

  let of_string data = { data; pos = 0 }

  let take d n what =
    if d.pos + n > String.length d.data then
      raise (Corrupt (Printf.sprintf "short read: %s at byte %d" what d.pos));
    let off = d.pos in
    d.pos <- d.pos + n;
    off

  let u8 d =
    let off = take d 1 "u8" in
    Char.code d.data.[off]

  let u32 d =
    let off = take d 4 "u32" in
    Int32.to_int (String.get_int32_le d.data off) land 0xFFFFFFFF

  let i64 d =
    let off = take d 8 "i64" in
    Int64.to_int (String.get_int64_le d.data off)

  let f64 d =
    let off = take d 8 "f64" in
    Int64.float_of_bits (String.get_int64_le d.data off)

  let bool d =
    match u8 d with
    | 0 -> false
    | 1 -> true
    | n -> raise (Corrupt (Printf.sprintf "bad bool byte %d" n))

  let str d =
    let n = u32 d in
    let off = take d n "string body" in
    String.sub d.data off n

  let at_end d = d.pos = String.length d.data
end

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)

type frame = { kind : int; payload : string }

type tail = Clean | Torn of { at : int; reason : string }

let frame_header_len = 9 (* u32 len + u32 crc + u8 kind *)
let max_payload = 1 lsl 30

let encode_frame { kind; payload } =
  let b = Enc.create () in
  Enc.u32 b (String.length payload);
  Enc.u32 b (crc32 (String.make 1 (Char.chr (kind land 0xFF)) ^ payload));
  Enc.u8 b kind;
  Buffer.add_string b payload;
  Enc.contents b

let magic_len = 8

let file_header ~magic =
  if String.length magic <> magic_len then
    invalid_arg "Codec.file_header: magic must be 8 bytes";
  let b = Enc.create () in
  Buffer.add_string b magic;
  Enc.u32 b format_version;
  Enc.contents b

let header_len = magic_len + 4

let decode_file ~magic s =
  if String.length magic <> magic_len then
    invalid_arg "Codec.decode_file: magic must be 8 bytes";
  let len = String.length s in
  if len < header_len then
    (* torn during file creation: nothing durable yet *)
    if String.length s <= magic_len && String.sub magic 0 (min len magic_len) = s
       || len > magic_len && String.sub s 0 magic_len = magic
    then Ok ([], Torn { at = 0; reason = "truncated header" })
    else if s = "" then Ok ([], Torn { at = 0; reason = "empty file" })
    else Error "bad magic"
  else if String.sub s 0 magic_len <> magic then Error "bad magic"
  else
    let d = Dec.of_string (String.sub s magic_len 4) in
    let version = Dec.u32 d in
    if version <> format_version then
      Error
        (Printf.sprintf "format version %d, this build reads %d" version
           format_version)
    else begin
      let frames = ref [] in
      let rec loop off =
        if off = len then (List.rev !frames, Clean)
        else if len - off < frame_header_len then
          (List.rev !frames, Torn { at = off; reason = "truncated frame header" })
        else
          let d = Dec.of_string (String.sub s off frame_header_len) in
          let plen = Dec.u32 d in
          let crc = Dec.u32 d in
          let kind = Dec.u8 d in
          if plen > max_payload then
            ( List.rev !frames,
              Torn { at = off; reason = "implausible frame length" } )
          else if plen > len - off - frame_header_len then
            (List.rev !frames, Torn { at = off; reason = "truncated frame body" })
          else
            let payload = String.sub s (off + frame_header_len) plen in
            if crc32 (String.make 1 (Char.chr kind) ^ payload) <> crc then
              (List.rev !frames, Torn { at = off; reason = "checksum mismatch" })
            else begin
              frames := { kind; payload } :: !frames;
              loop (off + frame_header_len + plen)
            end
      in
      Ok (loop header_len)
    end

(* ------------------------------------------------------------------ *)
(* Filesystem abstraction                                              *)

type sink = {
  write : string -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

type fs = {
  read : string -> string option;
  sink : append:bool -> string -> sink;
  rename : string -> string -> unit;
  remove : string -> unit;
  exists : string -> bool;
  size : string -> int;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* Durability of directory *entries* (a rename, a newly created file)
   requires fsyncing the parent directory — file-data fsync alone does
   not order the metadata on many filesystems. Some platforms refuse
   fsync on a directory fd (EINVAL/EBADF); there the entry durability
   falls back to whatever the filesystem's rename semantics give. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd

let real_fs ~root =
  mkdir_p root;
  let p name = Filename.concat root name in
  {
    read =
      (fun name -> if Sys.file_exists (p name) then Some (read_whole (p name)) else None);
    sink =
      (fun ~append name ->
        let flags =
          [ Unix.O_WRONLY; Unix.O_CREAT ]
          @ if append then [ Unix.O_APPEND ] else [ Unix.O_TRUNC ]
        in
        let existed = Sys.file_exists (p name) in
        let fd = Unix.openfile (p name) flags 0o644 in
        (* a file the open just created has no durable directory entry
           yet; make it one before any fsync'd data is acknowledged *)
        if not existed then fsync_dir root;
        {
          write = (fun s -> write_all fd s);
          flush = (fun () -> Unix.fsync fd);
          close = (fun () -> Unix.close fd);
        });
    rename =
      (fun a b ->
        Sys.rename (p a) (p b);
        (* the rename must be durable before callers act on it — e.g.
           Wal.reset after a checkpoint: if the truncation survived a
           crash but the checkpoint rename did not, acknowledged
           batches would be lost *)
        fsync_dir root);
    remove = (fun name -> if Sys.file_exists (p name) then Sys.remove (p name));
    exists = (fun name -> Sys.file_exists (p name));
    size =
      (fun name ->
        if Sys.file_exists (p name) then (Unix.stat (p name)).Unix.st_size
        else 0);
  }

let write_file_atomic fs ~path data =
  let tmp = path ^ ".tmp" in
  let s = fs.sink ~append:false tmp in
  (try
     s.write data;
     s.flush ()
   with e ->
     s.close ();
     raise e);
  s.close ();
  fs.rename tmp path
