(* A small fixed-size domain pool for data-parallel evaluation.

   Design constraints (DESIGN.md §13):
   - no dependencies beyond the OCaml 5 stdlib ([Domain], [Mutex],
     [Condition], [Atomic]) and [Unix] (the wall-clock deadline of the
     bounded shutdown);
   - deterministic result order: [run_list] returns results in
     submission order regardless of which worker ran which task;
   - exception propagation: the first (by submission index) exception
     raised by a task is re-raised on the caller with its original
     backtrace, after all tasks of the batch have finished;
   - sequential fallback: a pool of size <= 1 never spawns domains and
     [run_list] degenerates to [List.map]; nested [run_list] calls
     from inside a task also run inline (no deadlock, no oversubscription);
   - interning safety: batch execution is bracketed by
     [Logic.Term.enter_parallel]/[exit_parallel] so the global term
     intern pool takes its mutex only while workers are live. *)

type t = {
  size : int; (* lanes including the caller's domain *)
  queue : (unit -> unit) Queue.t;
  mu : Mutex.t;
  work : Condition.t; (* signaled when tasks are queued or on stop *)
  finished : Condition.t; (* signaled when a batch drains *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  busy : bool Atomic.t; (* a batch is in flight: nested calls run inline *)
  live : int Atomic.t; (* workers that have not exited their loop yet *)
}

let size t = t.size

let worker_loop t =
  let rec loop () =
    Mutex.lock t.mu;
    while (not t.stop) && Queue.is_empty t.queue do
      Condition.wait t.work t.mu
    done;
    if t.stop && Queue.is_empty t.queue then Mutex.unlock t.mu
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mu;
      task ();
      loop ()
    end
  in
  (* the decrement must run even if a task escapes with an exception:
     the bounded shutdown below keys off [live], and a worker that died
     raising would otherwise count as running forever *)
  Fun.protect ~finally:(fun () -> Atomic.decr t.live) loop

let create size =
  let size = max 1 size in
  let t =
    {
      size;
      queue = Queue.create ();
      mu = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      stop = false;
      workers = [];
      busy = Atomic.make false;
      live = Atomic.make 0;
    }
  in
  if size > 1 then begin
    Atomic.set t.live (size - 1);
    t.workers <-
      List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t))
  end;
  t

let shutdown ?deadline t =
  if t.workers <> [] then begin
    Mutex.lock t.mu;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mu;
    match deadline with
    | None ->
      List.iter Domain.join t.workers;
      t.workers <- []
    | Some secs ->
      (* bounded join: a worker wedged in a task (or dead of an
         exception that wedged its batch) must not hang process exit.
         Wait for every loop to confirm exit, then join — joins are
         then immediate — or give up at the deadline and report the
         stragglers instead of blocking on them. *)
      let until = Unix.gettimeofday () +. secs in
      let rec wait () =
        if Atomic.get t.live <= 0 then begin
          (* every loop has exited, so these joins return immediately;
             a worker that died raising re-raises here — report it
             instead of blowing up process exit *)
          let died = ref 0 in
          List.iter
            (fun d -> try Domain.join d with _ -> incr died)
            t.workers;
          t.workers <- [];
          if !died > 0 then
            Printf.eprintf
              "Pool.shutdown: %d worker domain(s) exited with an uncaught \
               exception\n%!"
              !died
        end
        else if Unix.gettimeofday () >= until then
          Printf.eprintf
            "Pool.shutdown: %d worker domain(s) still running %.1fs after \
             stop; abandoning them (not joined)\n%!"
            (Atomic.get t.live) secs
        else begin
          ignore (Unix.select [] [] [] 0.001);
          wait ()
        end
      in
      wait ()
  end

(* [run_list] executes the thunks across the pool (the caller's domain
   participates), returning results in submission order. Tasks are
   claimed from a shared atomic cursor, i.e. chunk-of-one scheduling:
   batches here are few and coarse (one task per delta partition), so
   finer chunking buys nothing. *)
let run_list (type a) t (thunks : (unit -> a) list) : a list =
  match thunks with
  | [] -> []
  | [ f ] -> [ f () ]
  | _ when t.size <= 1 || not (Atomic.compare_and_set t.busy false true) ->
    (* size-1 pool, or re-entrant call from inside a task: run inline *)
    List.map (fun f -> f ()) thunks
  | _ ->
    let finally () = Atomic.set t.busy false in
    Fun.protect ~finally @@ fun () ->
    Logic.Term.enter_parallel ();
    let finally () = Logic.Term.exit_parallel () in
    Fun.protect ~finally @@ fun () ->
    let arr = Array.of_list thunks in
    let n = Array.length arr in
    let results : a option array = Array.make n None in
    let errors : (exn * Printexc.raw_backtrace) option array =
      Array.make n None
    in
    let next = Atomic.make 0 in
    let remaining = Atomic.make n in
    let run_one i =
      (match arr.(i) () with
      | v -> results.(i) <- Some v
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        errors.(i) <- Some (e, bt));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock t.mu;
        Condition.broadcast t.finished;
        Mutex.unlock t.mu
      end
    in
    let rec drain () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        run_one i;
        drain ()
      end
    in
    let helpers = min (t.size - 1) (n - 1) in
    Mutex.lock t.mu;
    for _ = 1 to helpers do
      Queue.push drain t.queue
    done;
    Condition.broadcast t.work;
    Mutex.unlock t.mu;
    (* the caller's domain drains alongside the workers, then waits for
       stragglers: the condition sync also publishes the workers' writes
       to [results]/[errors]. *)
    drain ();
    Mutex.lock t.mu;
    while Atomic.get remaining > 0 do
      Condition.wait t.finished t.mu
    done;
    Mutex.unlock t.mu;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      errors;
    List.init n (fun i ->
        match results.(i) with
        | Some v -> v
        | None -> assert false (* no error above => every slot filled *))

(* ------------------------------------------------------------------ *)
(* Default domain count: explicit override > KIND_DOMAINS env > 1.     *)

let env_parsed =
  lazy
    (match Sys.getenv_opt "KIND_DOMAINS" with
    | None | Some "" -> None
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (min n 64)
      | _ -> None))

let default_override = ref None
let set_default_domains n = default_override := Some (max 1 (min n 64))

let env_domains () =
  match !default_override with
  | Some n -> n
  | None -> ( match Lazy.force env_parsed with Some n -> n | None -> 1)

(* ------------------------------------------------------------------ *)
(* Shared pool: grown on demand, reused across evaluations so repeated
   materializations don't pay domain-spawn latency each time. *)

let shared : t option ref = ref None

let get n =
  if n <= 1 then None
  else
    match !shared with
    | Some p when p.size >= n -> Some p
    | prev ->
      (match prev with Some p -> shutdown p | None -> ());
      let p = create n in
      shared := Some p;
      Some p

let () =
  (* bounded: a wedged worker (or one that died raising mid-batch) must
     not turn process exit into a hang *)
  at_exit (fun () ->
      match !shared with Some p -> shutdown ~deadline:2.0 p | None -> ())
