(** KIND — Knowledge-based Integration of Neuroscience Data.

    Umbrella module re-exporting the whole model-based-mediation stack;
    [open Kind] (or dune-depend on [kind]) gives access to every layer:

    - {!Logic}, {!Datalog} — the deductive engine substrate;
    - {!Flogic}, {!Gcm} — F-logic / generic conceptual model (Table 1);
    - {!Dl}, {!Domain_map} — description logic and domain maps;
    - {!Xmlkit}, {!Cm_plugins} — wire format and the CM plug-in
      mechanism;
    - {!Wrapper}, {!Mediation} — sources and the mediator;
    - {!Analysis} — kindlint, the federation-wide static analyzer;
    - {!Neuro} — the Neuroscience scenario of the paper. *)

module Logic = Logic
module Datalog = Datalog
module Flogic = Flogic
module Gcm = Gcm
module Dl = Dl
module Domain_map = Domain_map
module Xmlkit = Xmlkit
module Cm_plugins = Cm_plugins
module Wrapper = Wrapper
module Analysis = Analysis
module Mediation = Mediation
module Neuro = Neuro
module Pool = Pool
module Codec = Codec
