(** A small fixed-size domain pool for data-parallel evaluation.

    The pool owns [size - 1] worker domains; the caller's domain
    always participates in batch execution, so a pool of size [k]
    runs up to [k] tasks concurrently. A pool of size [<= 1] spawns
    nothing and executes batches inline — the sequential fallback the
    engine relies on when [KIND_DOMAINS] is unset.

    Batches submitted from inside a running task (re-entrant use) are
    executed inline on the submitting domain, so nesting cannot
    deadlock the fixed worker set. *)

type t

val create : int -> t
(** [create k] makes a pool with [k] lanes ([k - 1] spawned domains).
    [k] is clamped to at least 1. *)

val size : t -> int
(** Number of lanes, including the caller's. *)

val run_list : t -> (unit -> 'a) list -> 'a list
(** [run_list t thunks] runs every thunk to completion across the pool
    and returns their results in submission order. If one or more
    thunks raise, all tasks of the batch still run to completion, then
    the exception of the lowest-indexed failing thunk is re-raised
    with its original backtrace. Batch execution is bracketed by
    {!Logic.Term.enter_parallel}/[exit_parallel] so term interning is
    safe inside tasks. *)

val shutdown : ?deadline:float -> t -> unit
(** Stop and join the worker domains. Idempotent. With [?deadline]
    (seconds) the join is bounded: workers are given that long to exit
    their loops, and any still running — wedged in a task, or dead of
    an exception that stranded their batch — are reported to stderr
    and abandoned instead of blocking the caller; a later [shutdown]
    without a deadline can still join them. The process-exit hook
    joins the shared pool with a 2 s deadline. *)

val env_domains : unit -> int
(** The default domain count: the value set by {!set_default_domains}
    if any, else [KIND_DOMAINS] from the environment (clamped to
    [1..64]), else [1]. *)

val set_default_domains : int -> unit
(** Override the [KIND_DOMAINS] default for this process (used by
    [kindctl --domains]). *)

val get : int -> t option
(** [get n] returns the shared process-wide pool grown to at least [n]
    lanes, or [None] when [n <= 1] (callers take the sequential
    path). The shared pool is reused across evaluations and joined at
    process exit. *)
