(** First-order terms: the data values of the whole mediator stack.

    Terms are shared by the Datalog engine, the F-logic layer, the GCM
    declarations and the domain-map machinery. Variables are identified
    by name; constants carry a small scalar universe sufficient for the
    mediation scenarios of the paper (symbols, strings, numbers,
    booleans). Function application terms ({!App}) are used for skolem
    placeholder objects such as [f_{C,r,D}(X)] created when a domain-map
    edge is executed as an assertion (Section 4 of the paper). *)

type const =
  | Sym of string    (** interned symbol, e.g. [neuron], [has_a] *)
  | Str of string    (** quoted string data value *)
  | Int of int
  | Float of float
  | Bool of bool

type t =
  | Var of string           (** logic variable, conventionally capitalised *)
  | Const of const
  | App of string * t list  (** function term [f(t1,...,tn)], n >= 1 *)

(** {1 Constructors} *)

val var : string -> t
val sym : string -> t
val str : string -> t
val int : int -> t
val float : float -> t
val bool : bool -> t
val app : string -> t list -> t
(** [app f args] builds a function term. Raises [Invalid_argument] when
    [args] is empty: nullary applications must be {!sym} constants so
    that term equality stays canonical. *)

(** {1 Inspection} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val is_ground : t -> bool
(** [is_ground t] is [true] iff [t] contains no variable. *)

val vars : t -> string list
(** Variables occurring in the term, each listed once, in first-occurrence
    order. *)

val depth : t -> int
(** Nesting depth: constants and variables have depth 1, [f(t1..tn)] has
    depth [1 + max (depth ti)]. Used to bound skolem creation. *)

val size : t -> int
(** Number of nodes in the term tree. *)

val occurs : string -> t -> bool
(** [occurs x t] is [true] iff variable [x] occurs in [t]. *)

(** {1 Conversions} *)

val as_const : t -> const option
val as_sym : t -> string option
val as_int : t -> int option
val as_string : t -> string option
(** [as_string t] extracts the payload of a [Sym] or [Str] constant. *)

val compare_const : const -> const -> int
val equal_const : const -> const -> bool

val compare_list : t list -> t list -> int
(** Lexicographic comparison; shorter lists sort first. *)

(** {1 Interning}

    Every ground term can be interned into a process-global pool that
    assigns it a stable small integer id. Two ground terms are equal iff
    their ids are equal, so the datalog kernel compares and hashes rows
    by cached int keys instead of structural walks. See {!Intern} for
    pool introspection. *)

val id : t -> int
(** [id t] interns the ground term [t] (a memoized hash-consing lookup)
    and returns its id. Raises [Invalid_argument] on non-ground terms. *)

val id_opt : t -> int option
(** [Some (id t)] when [t] is ground, [None] otherwise. *)

val find_id : t -> int option
(** The id of an already-interned term, without interning: [None] means
    the term has never been interned (so it cannot occur in any
    interned row). Negative membership probes use this to avoid growing
    the pool. *)

val of_id : int -> t
(** The term interned under an id. Raises [Invalid_argument] on ids the
    pool never issued. *)

val pool_size : unit -> int
(** Number of distinct ground terms interned so far. *)

val enter_parallel : unit -> unit
(** Enter parallel mode: until the matching {!exit_parallel}, every
    pool access ({!id}, {!find_id}, {!of_id}) synchronizes on a mutex
    so concurrent domains may intern safely. Outside parallel mode the
    pool is lock-free (single [Atomic.get] per access). Calls nest. *)

val exit_parallel : unit -> unit
(** Leave parallel mode (must pair with an {!enter_parallel}). *)

(** {1 Pretty-printing} *)

val pp_const : Format.formatter -> const -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
