type t = { pred : string; args : Term.t list }

let make pred args = { pred; args }

let arity a = List.length a.args

let vars a =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  List.iter
    (fun t ->
      List.iter
        (fun x ->
          if not (Hashtbl.mem seen x) then begin
            Hashtbl.add seen x ();
            acc := x :: !acc
          end)
        (Term.vars t))
    a.args;
  List.rev !acc

let is_ground a = List.for_all Term.is_ground a.args

let apply s a = { a with args = List.map (Subst.apply s) a.args }

let unify ?(init = Subst.empty) a1 a2 =
  if String.equal a1.pred a2.pred && arity a1 = arity a2 then
    Unify.unify_list ~init a1.args a2.args
  else None

let matches ?(init = Subst.empty) ~pattern a =
  if String.equal pattern.pred a.pred && arity pattern = arity a then
    Unify.matches_list ~init ~patterns:pattern.args a.args
  else None

let rename_apart ~suffix a =
  { a with args = List.map (Unify.rename_apart ~suffix) a.args }

let compare a1 a2 =
  let c = String.compare a1.pred a2.pred in
  if c <> 0 then c else Term.compare_list a1.args a2.args

let equal a1 a2 = compare a1 a2 = 0

let pp ppf a =
  if a.args = [] then Format.pp_print_string ppf a.pred
  else
    Format.fprintf ppf "%s(%a)" a.pred
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Term.pp)
      a.args

let to_string a = Format.asprintf "%a" pp a
