(** Syntactic unification and one-sided matching on {!Term.t}.

    Both run with an occurs check; the substitutions returned are
    idempotent most general unifiers. *)

val unify : ?init:Subst.t -> Term.t -> Term.t -> Subst.t option
(** [unify t1 t2] is the mgu of [t1] and [t2] extending [init]
    (default empty), or [None] if none exists. *)

val unify_list : ?init:Subst.t -> Term.t list -> Term.t list -> Subst.t option
(** Simultaneous unification of two equal-length term lists; [None] on
    length mismatch or clash. *)

val matches : ?init:Subst.t -> pattern:Term.t -> Term.t -> Subst.t option
(** One-sided matching: find [s] with [Subst.apply s pattern = t],
    binding only variables of [pattern]. The subject term is treated as
    ground even if it contains variables (they match only themselves). *)

val matches_list :
  ?init:Subst.t -> patterns:Term.t list -> Term.t list -> Subst.t option

val variant : Term.t -> Term.t -> bool
(** [variant t1 t2] holds iff the terms are equal up to consistent
    variable renaming. *)

val rename_apart : suffix:string -> Term.t -> Term.t
(** Append [suffix] to every variable name, used to keep rule variables
    disjoint from query variables. *)
