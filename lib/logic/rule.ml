type t = { head : Atom.t; body : Literal.t list }

let make head body = { head; body }
let fact head = { head; body = [] }
let is_fact r = r.body = []
let head_pred r = r.head.Atom.pred

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let vars r = dedup (Atom.vars r.head @ List.concat_map Literal.vars r.body)

let apply s r =
  { head = Atom.apply s r.head; body = List.map (Literal.apply s) r.body }

let rename_apart ~suffix r =
  {
    head = Atom.rename_apart ~suffix r.head;
    body = List.map (Literal.rename_apart ~suffix) r.body;
  }

module SS = Set.Make (String)

let check_safety r =
  (* Fixpoint: repeatedly pick up variables bound by literals that are
     already evaluable; a literal binds once its needs are satisfied. *)
  let lits = r.body in
  let all_needed =
    dedup
      (Atom.vars r.head
      @ List.concat_map
          (fun l ->
            match l with
            | Literal.Neg a -> Atom.vars a
            | Literal.Cmp (_, t1, t2) -> Term.vars t1 @ Term.vars t2
            | _ -> [])
          lits)
  in
  let rec grow bound =
    let bound' =
      List.fold_left
        (fun acc l ->
          let fireable =
            match l with
            | Literal.Cmp (Literal.Eq, t1, t2) ->
              (* Equality unifies; it can only ground the other side
                 once one side is fully bound. *)
              List.for_all (fun x -> SS.mem x acc) (Term.vars t1)
              || List.for_all (fun x -> SS.mem x acc) (Term.vars t2)
            | l -> List.for_all (fun x -> SS.mem x acc) (Literal.needs l)
          in
          if fireable then
            List.fold_left (fun acc x -> SS.add x acc) acc (Literal.binds l)
          else acc)
        bound lits
    in
    if SS.equal bound bound' then bound else grow bound'
  in
  let bound = grow SS.empty in
  (* Aggregate inner bodies must bind their own target and group_by. *)
  let agg_ok =
    List.for_all
      (fun l ->
        match l with
        | Literal.Agg { target; group_by; body; _ } ->
          let inner =
            List.fold_left
              (fun acc a ->
                List.fold_left (fun acc x -> SS.add x acc) acc (Atom.vars a))
              SS.empty body
          in
          List.for_all
            (fun x -> SS.mem x inner)
            (dedup (Term.vars target @ List.concat_map Term.vars group_by))
        | _ -> true)
      lits
  in
  if not agg_ok then
    Error
      (Printf.sprintf
         "rule %s: aggregate target/group-by variables not bound by inner body"
         (Atom.to_string r.head))
  else
    match List.find_opt (fun x -> not (SS.mem x bound)) all_needed with
    | Some x ->
      Error
        (Printf.sprintf "rule %s: variable %s is not range-restricted"
           (Atom.to_string r.head) x)
    | None ->
      (* Every literal must eventually be evaluable. *)
      let stuck =
        List.find_opt
          (fun l ->
            not (List.for_all (fun x -> SS.mem x bound) (Literal.needs l)))
          lits
      in
      (match stuck with
      | Some l ->
        Error
          (Printf.sprintf "rule %s: literal %s can never be evaluated"
             (Atom.to_string r.head) (Literal.to_string l))
      | None -> Ok ())

let body_predicates r = List.concat_map Literal.predicates r.body

let compare r1 r2 =
  let c = Atom.compare r1.head r2.head in
  if c <> 0 then c
  else Stdlib.compare (List.map Literal.to_string r1.body)
         (List.map Literal.to_string r2.body)

let equal r1 r2 = compare r1 r2 = 0

let pp ppf r =
  if r.body = [] then Format.fprintf ppf "%a." Atom.pp r.head
  else
    Format.fprintf ppf "%a :- %a." Atom.pp r.head
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Literal.pp)
      r.body

let to_string r = Format.asprintf "%a" pp r
