type t = { head : Atom.t; body : Literal.t list }

let make head body = { head; body }
let fact head = { head; body = [] }
let is_fact r = r.body = []
let head_pred r = r.head.Atom.pred

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let vars r = dedup (Atom.vars r.head @ List.concat_map Literal.vars r.body)

let apply s r =
  { head = Atom.apply s r.head; body = List.map (Literal.apply s) r.body }

let rename_apart ~suffix r =
  {
    head = Atom.rename_apart ~suffix r.head;
    body = List.map (Literal.rename_apart ~suffix) r.body;
  }

module SS = Set.Make (String)

type safety_error =
  | Agg_unbound of string
  | Unbound_var of string
  | Stuck_literal of Literal.t

let pp_safety_error head ppf = function
  | Agg_unbound x ->
    Format.fprintf ppf
      "rule %s: aggregate target/group-by variable %s not bound by inner body"
      (Atom.to_string head) x
  | Unbound_var x ->
    Format.fprintf ppf "rule %s: variable %s is not range-restricted"
      (Atom.to_string head) x
  | Stuck_literal l ->
    Format.fprintf ppf "rule %s: literal %s can never be evaluated"
      (Atom.to_string head) (Literal.to_string l)

let safety_errors r =
  (* Fixpoint: repeatedly pick up variables bound by literals that are
     already evaluable; a literal binds once its needs are satisfied. *)
  let lits = r.body in
  let all_needed =
    dedup
      (Atom.vars r.head
      @ List.concat_map
          (fun l ->
            match l with
            | Literal.Neg a -> Atom.vars a
            | Literal.Cmp (_, t1, t2) -> Term.vars t1 @ Term.vars t2
            | _ -> [])
          lits)
  in
  let rec grow bound =
    let bound' =
      List.fold_left
        (fun acc l ->
          let fireable =
            match l with
            | Literal.Cmp (Literal.Eq, t1, t2) ->
              (* Equality unifies; it can only ground the other side
                 once one side is fully bound. *)
              List.for_all (fun x -> SS.mem x acc) (Term.vars t1)
              || List.for_all (fun x -> SS.mem x acc) (Term.vars t2)
            | l -> List.for_all (fun x -> SS.mem x acc) (Literal.needs l)
          in
          if fireable then
            List.fold_left (fun acc x -> SS.add x acc) acc (Literal.binds l)
          else acc)
        bound lits
    in
    if SS.equal bound bound' then bound else grow bound'
  in
  let bound = grow SS.empty in
  (* Aggregate inner bodies must bind their own target and group_by. *)
  let agg_errors =
    List.concat_map
      (fun l ->
        match l with
        | Literal.Agg { target; group_by; body; _ } ->
          let inner =
            List.fold_left
              (fun acc a ->
                List.fold_left (fun acc x -> SS.add x acc) acc (Atom.vars a))
              SS.empty body
          in
          List.filter_map
            (fun x -> if SS.mem x inner then None else Some (Agg_unbound x))
            (dedup (Term.vars target @ List.concat_map Term.vars group_by))
        | _ -> [])
      lits
  in
  let unbound =
    List.filter_map
      (fun x -> if SS.mem x bound then None else Some (Unbound_var x))
      all_needed
  in
  (* Every literal must eventually be evaluable; only report literals
     whose unmet needs are not already reported as unbound required
     variables. *)
  let stuck =
    List.filter_map
      (fun l ->
        let unmet =
          List.filter (fun x -> not (SS.mem x bound)) (Literal.needs l)
        in
        if unmet = [] then None
        else if
          List.for_all (fun x -> List.mem (Unbound_var x) unbound) unmet
          && unbound <> []
        then None
        else Some (Stuck_literal l))
      lits
  in
  agg_errors @ unbound @ stuck

let check_safety r =
  match safety_errors r with
  | [] -> Ok ()
  | e :: _ -> Error (Format.asprintf "%a" (pp_safety_error r.head) e)

let body_predicates r = List.concat_map Literal.predicates r.body

let compare r1 r2 =
  let c = Atom.compare r1.head r2.head in
  if c <> 0 then c
  else Stdlib.compare (List.map Literal.to_string r1.body)
         (List.map Literal.to_string r2.body)

let equal r1 r2 = compare r1 r2 = 0

let pp ppf r =
  if r.body = [] then Format.fprintf ppf "%a." Atom.pp r.head
  else
    Format.fprintf ppf "%a :- %a." Atom.pp r.head
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Literal.pp)
      r.body

let to_string r = Format.asprintf "%a" pp r
