(** Substitutions: finite maps from variable names to terms.

    Substitutions produced by {!Unify} are idempotent (no bound variable
    occurs in any binding's range), and [apply] exploits that — it does
    not iterate to a fixpoint. *)

type t

val empty : t
val is_empty : t -> bool

val singleton : string -> Term.t -> t

val bind : string -> Term.t -> t -> t
(** [bind x t s] extends [s] with [x -> t], normalising existing
    bindings so the result stays idempotent. Raises [Invalid_argument]
    if [x] is already bound to a different term.

    When [t] is ground and every existing range term is ground (the
    common case in the join kernel, which only ever matches variables
    against ground tuples), the normalisation pass is skipped: the new
    binding cannot occur in any range, so a plain insert is already
    idempotent. *)

val find : string -> t -> Term.t option
val mem : string -> t -> bool
val domain : t -> string list
val bindings : t -> (string * Term.t) list
val cardinal : t -> int

val apply : t -> Term.t -> Term.t
(** Apply the substitution to a term, replacing each bound variable by
    its binding. *)

val compose : t -> t -> t
(** [compose s1 s2] is the substitution [fun t -> apply s2 (apply s1 t)]
    represented as a map: [s1]'s bindings are pushed through [s2], and
    bindings of [s2] on variables not bound by [s1] are kept. *)

val restrict : string list -> t -> t
(** Keep only the bindings of the given variables. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
