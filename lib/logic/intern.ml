let id = Term.id
let id_opt = Term.id_opt
let find_id = Term.find_id
let of_id = Term.of_id
let size = Term.pool_size

let same t1 t2 =
  match Term.id_opt t1, Term.id_opt t2 with
  | Some i, Some j -> i = j
  | _ -> Term.equal t1 t2

let ids ts = List.map Term.id ts

type stats = { interned : int }

let stats () = { interned = Term.pool_size () }
