(** Body literals of GCM/F-logic rules.

    Besides positive and negated atoms, rule bodies may contain
    comparison tests, arithmetic evaluation, and grouped aggregation in
    the style of the paper's Example 3
    ([N = count{VA [VB]; R(VA,VB)}, N =/= 1]). *)

type cmp = Lt | Le | Gt | Ge | Eq | Ne

type arith_op = Add | Sub | Mul | Div

type expr =
  | Leaf of Term.t
  | Bin of arith_op * expr * expr

type agg_fun = Count | Sum | Min | Max | Avg

type agg = {
  func : agg_fun;
  target : Term.t;       (** term aggregated over, e.g. [VA] *)
  group_by : Term.t list; (** grouping terms, e.g. [[VB]] *)
  result : Term.t;       (** variable receiving the aggregate value *)
  body : Atom.t list;    (** inner positive conjunction *)
}

type t =
  | Pos of Atom.t
  | Neg of Atom.t
  | Cmp of cmp * Term.t * Term.t
  | Assign of Term.t * expr  (** [X is e]; [e] must be ground at eval time *)
  | Agg of agg

(** {1 Structural builtins}

    Atoms whose predicate starts with ["builtin:"] are evaluated
    structurally on ground terms instead of being looked up in a
    relation; they bind nothing and require their variables bound.
    The engine supports:
    - [builtin:is_app(T)] — [T] is a function term;
    - [builtin:is_const(T)] — [T] is a constant;
    - [builtin:functor_prefix(T, P)] — [T = f(...)] and the string/
      symbol [P] is a prefix of [f];
    - [builtin:not_functor_prefix(T, P)] — negation of the above
      (constants trivially satisfy it). *)

val builtin_prefix : string
val is_builtin : string -> bool

(** {1 Constructors} *)

val pos : string -> Term.t list -> t
val neg : string -> Term.t list -> t
val cmp : cmp -> Term.t -> Term.t -> t
val assign : Term.t -> expr -> t
val count :
  target:Term.t -> group_by:Term.t list -> result:Term.t -> Atom.t list -> t
val agg :
  agg_fun ->
  target:Term.t ->
  group_by:Term.t list ->
  result:Term.t ->
  Atom.t list ->
  t

(** {1 Inspection} *)

val vars : t -> string list
(** All variables of the literal (for aggregates: group-by, result and
    inner-body variables; the target/local variables are included too —
    use {!binds} / {!needs} for safety analysis). *)

val binds : t -> string list
(** Variables the literal can bind when evaluated: the variables of a
    positive atom, the left-hand side of [Assign], the [result] of an
    aggregate, and an [Eq] comparison's variable sides. *)

val needs : t -> string list
(** Variables the literal requires to be bound before evaluation:
    variables of negated atoms, of non-[Eq] comparisons, of [Assign]
    right-hand sides, and aggregate group-by variables that also occur
    outside the aggregate. *)

val apply : Subst.t -> t -> t
val apply_expr : Subst.t -> expr -> expr
val rename_apart : suffix:string -> t -> t
val predicates : t -> (string * bool) list
(** Predicates referenced, paired with [true] when the reference is
    through negation or aggregation (a "nonmonotonic" edge for
    stratification purposes). *)

val eval_cmp : cmp -> Term.t -> Term.t -> bool option
(** Evaluate a comparison on ground terms; [None] if either side is
    non-ground or the comparison is heterogeneous in a way we reject
    ([Lt] between an int and a symbol, etc. — [Eq]/[Ne] always work). *)

val eval_expr : expr -> Term.t option
(** Evaluate an arithmetic expression over ground numeric leaves. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_cmp : Format.formatter -> cmp -> unit
val pp_expr : Format.formatter -> expr -> unit
