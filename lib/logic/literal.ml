type cmp = Lt | Le | Gt | Ge | Eq | Ne

type arith_op = Add | Sub | Mul | Div

type expr =
  | Leaf of Term.t
  | Bin of arith_op * expr * expr

type agg_fun = Count | Sum | Min | Max | Avg

type agg = {
  func : agg_fun;
  target : Term.t;
  group_by : Term.t list;
  result : Term.t;
  body : Atom.t list;
}

type t =
  | Pos of Atom.t
  | Neg of Atom.t
  | Cmp of cmp * Term.t * Term.t
  | Assign of Term.t * expr
  | Agg of agg

let builtin_prefix = "builtin:"

let is_builtin p =
  String.length p >= String.length builtin_prefix
  && String.sub p 0 (String.length builtin_prefix) = builtin_prefix

let pos p args = Pos (Atom.make p args)
let neg p args = Neg (Atom.make p args)
let cmp op t1 t2 = Cmp (op, t1, t2)
let assign t e = Assign (t, e)

let agg func ~target ~group_by ~result body =
  Agg { func; target; group_by; result; body }

let count ~target ~group_by ~result body =
  agg Count ~target ~group_by ~result body

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let rec expr_vars = function
  | Leaf t -> Term.vars t
  | Bin (_, e1, e2) -> expr_vars e1 @ expr_vars e2

let vars = function
  | Pos a | Neg a -> Atom.vars a
  | Cmp (_, t1, t2) -> dedup (Term.vars t1 @ Term.vars t2)
  | Assign (t, e) -> dedup (Term.vars t @ expr_vars e)
  | Agg { target; group_by; result; body; _ } ->
    dedup
      (Term.vars target
      @ List.concat_map Term.vars group_by
      @ Term.vars result
      @ List.concat_map Atom.vars body)

let binds = function
  | Pos a when is_builtin a.Atom.pred -> []
  | Pos a -> Atom.vars a
  | Neg _ -> []
  | Cmp (Eq, t1, t2) -> dedup (Term.vars t1 @ Term.vars t2)
  | Cmp _ -> []
  | Assign (t, _) -> Term.vars t
  | Agg { result; group_by; _ } ->
    dedup (Term.vars result @ List.concat_map Term.vars group_by)

let needs = function
  | Pos a when is_builtin a.Atom.pred -> Atom.vars a
  | Pos _ -> []
  | Neg a -> Atom.vars a
  | Cmp (Eq, _, _) -> []
  | Cmp (_, t1, t2) -> dedup (Term.vars t1 @ Term.vars t2)
  | Assign (_, e) -> dedup (expr_vars e)
  | Agg _ ->
    (* Group-by and inner-body variables are evaluated against the
       current database, not the outer bindings, so an aggregate literal
       needs nothing from the outer rule; joins happen via group_by
       variables shared with earlier literals, handled in the engine. *)
    []

let rec apply_expr s = function
  | Leaf t -> Leaf (Subst.apply s t)
  | Bin (op, e1, e2) -> Bin (op, apply_expr s e1, apply_expr s e2)

let apply s = function
  | Pos a -> Pos (Atom.apply s a)
  | Neg a -> Neg (Atom.apply s a)
  | Cmp (op, t1, t2) -> Cmp (op, Subst.apply s t1, Subst.apply s t2)
  | Assign (t, e) -> Assign (Subst.apply s t, apply_expr s e)
  | Agg a ->
    Agg
      {
        a with
        target = Subst.apply s a.target;
        group_by = List.map (Subst.apply s) a.group_by;
        result = Subst.apply s a.result;
        body = List.map (Atom.apply s) a.body;
      }

let rec rename_expr ~suffix = function
  | Leaf t -> Leaf (Unify.rename_apart ~suffix t)
  | Bin (op, e1, e2) ->
    Bin (op, rename_expr ~suffix e1, rename_expr ~suffix e2)

let rename_apart ~suffix = function
  | Pos a -> Pos (Atom.rename_apart ~suffix a)
  | Neg a -> Neg (Atom.rename_apart ~suffix a)
  | Cmp (op, t1, t2) ->
    Cmp (op, Unify.rename_apart ~suffix t1, Unify.rename_apart ~suffix t2)
  | Assign (t, e) ->
    Assign (Unify.rename_apart ~suffix t, rename_expr ~suffix e)
  | Agg a ->
    Agg
      {
        a with
        target = Unify.rename_apart ~suffix a.target;
        group_by = List.map (Unify.rename_apart ~suffix) a.group_by;
        result = Unify.rename_apart ~suffix a.result;
        body = List.map (Atom.rename_apart ~suffix) a.body;
      }

let predicates = function
  | Pos a when is_builtin a.Atom.pred -> []
  | Pos a -> [ (a.Atom.pred, false) ]
  | Neg a -> [ (a.Atom.pred, true) ]
  | Cmp _ | Assign _ -> []
  | Agg { body; _ } -> List.map (fun a -> (a.Atom.pred, true)) body

let num_pair t1 t2 =
  match t1, t2 with
  | Term.Const (Term.Int a), Term.Const (Term.Int b) ->
    Some (float_of_int a, float_of_int b)
  | Term.Const (Term.Float a), Term.Const (Term.Float b) -> Some (a, b)
  | Term.Const (Term.Int a), Term.Const (Term.Float b) ->
    Some (float_of_int a, b)
  | Term.Const (Term.Float a), Term.Const (Term.Int b) ->
    Some (a, float_of_int b)
  | _ -> None

let eval_cmp op t1 t2 =
  if not (Term.is_ground t1 && Term.is_ground t2) then None
  else
    match op with
    | Eq -> Some (Term.equal t1 t2)
    | Ne -> Some (not (Term.equal t1 t2))
    | Lt | Le | Gt | Ge -> (
      let test c =
        match op with
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | Eq | Ne -> assert false
      in
      match num_pair t1 t2 with
      | Some (a, b) -> Some (test (Float.compare a b))
      | None -> (
        (* Order strings/symbols lexicographically; reject mixtures. *)
        match Term.as_string t1, Term.as_string t2 with
        | Some a, Some b -> Some (test (String.compare a b))
        | _ -> None))

let rec eval_expr = function
  | Leaf t -> if Term.is_ground t then Some t else None
  | Bin (op, e1, e2) -> (
    match eval_expr e1, eval_expr e2 with
    | Some t1, Some t2 -> (
      match t1, t2 with
      | Term.Const (Term.Int a), Term.Const (Term.Int b) -> (
        match op with
        | Add -> Some (Term.int (a + b))
        | Sub -> Some (Term.int (a - b))
        | Mul -> Some (Term.int (a * b))
        | Div -> if b = 0 then None else Some (Term.int (a / b)))
      | _ -> (
        match num_pair t1 t2 with
        | Some (a, b) -> (
          match op with
          | Add -> Some (Term.float (a +. b))
          | Sub -> Some (Term.float (a -. b))
          | Mul -> Some (Term.float (a *. b))
          | Div -> if b = 0.0 then None else Some (Term.float (a /. b)))
        | None -> None))
    | _ -> None)

let pp_cmp ppf op =
  Format.pp_print_string ppf
    (match op with
    | Lt -> "<"
    | Le -> "=<"
    | Gt -> ">"
    | Ge -> ">="
    | Eq -> "="
    | Ne -> "=/=")

let pp_arith_op ppf op =
  Format.pp_print_string ppf
    (match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/")

let rec pp_expr ppf = function
  | Leaf t -> Term.pp ppf t
  | Bin (op, e1, e2) ->
    Format.fprintf ppf "(%a %a %a)" pp_expr e1 pp_arith_op op pp_expr e2

let pp_agg_fun ppf f =
  Format.pp_print_string ppf
    (match f with
    | Count -> "count"
    | Sum -> "sum"
    | Min -> "min"
    | Max -> "max"
    | Avg -> "avg")

let pp ppf = function
  | Pos a -> Atom.pp ppf a
  | Neg a -> Format.fprintf ppf "not %a" Atom.pp a
  | Cmp (op, t1, t2) ->
    Format.fprintf ppf "%a %a %a" Term.pp t1 pp_cmp op Term.pp t2
  | Assign (t, e) -> Format.fprintf ppf "%a is %a" Term.pp t pp_expr e
  | Agg { func; target; group_by; result; body } ->
    Format.fprintf ppf "%a = %a{%a [%a]; %a}" Term.pp result pp_agg_fun func
      Term.pp target
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Term.pp)
      group_by
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Atom.pp)
      body

let to_string l = Format.asprintf "%a" pp l
