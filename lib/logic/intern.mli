(** The global term intern pool.

    Ground terms are hash-consed into a process-global table assigning
    each a stable small int id ({!Term.id}); interning is memoized, id
    equality coincides with structural equality, and ids double as hash
    keys. The datalog layer caches one id per tuple column, turning the
    join kernel's compares and index probes into int operations.

    Ids are never recycled: the pool only grows, bounded by the number
    of distinct ground terms the process ever touches (data values plus
    derived skolems, which {!Datalog.Engine}'s depth guard bounds). *)

val id : Term.t -> int
(** Intern a ground term; raises [Invalid_argument] on non-ground. *)

val id_opt : Term.t -> int option

val find_id : Term.t -> int option
(** Lookup without interning (see {!Term.find_id}). *)

val of_id : int -> Term.t
(** Inverse of {!id}; raises [Invalid_argument] on unknown ids. *)

val ids : Term.t list -> int list

val same : Term.t -> Term.t -> bool
(** Equality through the pool: id comparison for ground terms, falling
    back to structural {!Term.equal} when either side has variables. *)

val size : unit -> int
(** Distinct ground terms interned so far. *)

type stats = { interned : int }

val stats : unit -> stats
