type const =
  | Sym of string
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type t =
  | Var of string
  | Const of const
  | App of string * t list

let var x = Var x
let sym s = Const (Sym s)
let str s = Const (Str s)
let int i = Const (Int i)
let float f = Const (Float f)
let bool b = Const (Bool b)

let app f = function
  | [] -> invalid_arg "Term.app: empty argument list (use Term.sym)"
  | args -> App (f, args)

let compare_const c1 c2 =
  match c1, c2 with
  | Sym a, Sym b -> String.compare a b
  | Sym _, _ -> -1
  | _, Sym _ -> 1
  | Str a, Str b -> String.compare a b
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Int a, Int b -> Int.compare a b
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Float a, Float b -> Float.compare a b
  | Float _, _ -> -1
  | _, Float _ -> 1
  | Bool a, Bool b -> Bool.compare a b

let equal_const c1 c2 = compare_const c1 c2 = 0

let rec compare t1 t2 =
  match t1, t2 with
  | Var a, Var b -> String.compare a b
  | Var _, _ -> -1
  | _, Var _ -> 1
  | Const a, Const b -> compare_const a b
  | Const _, _ -> -1
  | _, Const _ -> 1
  | App (f, xs), App (g, ys) ->
    let c = String.compare f g in
    if c <> 0 then c else compare_list xs ys

and compare_list xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_list xs' ys'

let equal t1 t2 = compare t1 t2 = 0

let hash t = Hashtbl.hash t

let rec is_ground = function
  | Var _ -> false
  | Const _ -> true
  | App (_, args) -> List.for_all is_ground args

let vars t =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Var x ->
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        acc := x :: !acc
      end
    | Const _ -> ()
    | App (_, args) -> List.iter go args
  in
  go t;
  List.rev !acc

let rec depth = function
  | Var _ | Const _ -> 1
  | App (_, args) -> 1 + List.fold_left (fun m a -> max m (depth a)) 0 args

let rec size = function
  | Var _ | Const _ -> 1
  | App (_, args) -> 1 + List.fold_left (fun s a -> s + size a) 0 args

let rec occurs x = function
  | Var y -> String.equal x y
  | Const _ -> false
  | App (_, args) -> List.exists (occurs x) args

let as_const = function Const c -> Some c | Var _ | App _ -> None

let as_sym = function Const (Sym s) -> Some s | _ -> None

let as_int = function Const (Int i) -> Some i | _ -> None

let as_string = function
  | Const (Sym s) | Const (Str s) -> Some s
  | _ -> None

let pp_const ppf = function
  | Sym s -> Format.pp_print_string ppf s
  | Str s -> Format.fprintf ppf "%S" s
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Bool b -> Format.pp_print_bool ppf b

let rec pp ppf = function
  | Var x -> Format.fprintf ppf "%s" x
  | Const c -> pp_const ppf c
  | App (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp)
      args

let to_string t = Format.asprintf "%a" pp t

(* ------------------------------------------------------------------ *)
(* Intern pool: every ground term gets a stable small int id, so the
   datalog kernel can compare and hash terms in O(1) via cached ids
   instead of walking structures. The pool lives here (not in Intern)
   to avoid a dependency cycle; {!Intern} re-exports it together with
   pool introspection. Ids are process-global and never recycled. *)

module H = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = Hashtbl.hash
end)

let pool : int H.t = H.create 4096
let pool_rev : t array ref = ref (Array.make 4096 (Const (Int 0)))
let pool_next = ref 0

(* Parallel mode: while the domain pool runs a batch, every pool access
   takes [pool_mu]. Outside parallel regions (the common case) the only
   cost is one [Atomic.get] per access, and the sequential fast path is
   byte-for-byte the pre-multicore behavior. The depth is a counter so
   nested/overlapping batches compose. *)
let pool_mu = Mutex.create ()
let parallel_depth = Atomic.make 0
let enter_parallel () = Atomic.incr parallel_depth
let exit_parallel () = Atomic.decr parallel_depth

let locked f =
  if Atomic.get parallel_depth = 0 then f ()
  else begin
    Mutex.lock pool_mu;
    match f () with
    | v ->
      Mutex.unlock pool_mu;
      v
    | exception e ->
      Mutex.unlock pool_mu;
      raise e
  end

let id t =
  locked @@ fun () ->
  match H.find_opt pool t with
  | Some i -> i
  | None ->
    if not (is_ground t) then
      invalid_arg ("Term.id: cannot intern non-ground term " ^ to_string t);
    let i = !pool_next in
    incr pool_next;
    H.add pool t i;
    let cap = Array.length !pool_rev in
    if i >= cap then begin
      let bigger = Array.make (2 * cap) t in
      Array.blit !pool_rev 0 bigger 0 cap;
      pool_rev := bigger
    end;
    !pool_rev.(i) <- t;
    i

let id_opt t = if is_ground t then Some (id t) else None
let find_id t = locked @@ fun () -> H.find_opt pool t

let of_id i =
  locked @@ fun () ->
  if i < 0 || i >= !pool_next then invalid_arg "Term.of_id: unknown id"
  else !pool_rev.(i)

let pool_size () = !pool_next
