module M = Map.Make (String)

(* [ground] is true when every range term is ground. That is the
   overwhelmingly common kernel state (pattern matching against ground
   tuples only ever binds variables to ground terms), and it licenses
   the O(log n) fast path in [bind]: a new ground binding cannot occur
   in any ground range, so no re-normalization pass is needed. *)
type t = { m : Term.t M.t; ground : bool }

let empty = { m = M.empty; ground = true }
let is_empty s = M.is_empty s.m

let rec apply s t =
  match t with
  | Term.Var x -> ( match M.find_opt x s.m with Some u -> u | None -> t)
  | Term.Const _ -> t
  | Term.App (f, args) -> Term.App (f, List.map (apply s) args)

let singleton x t = { m = M.singleton x t; ground = Term.is_ground t }

let bind x t s =
  match M.find_opt x s.m with
  | Some t' when not (Term.equal t t') ->
    invalid_arg
      (Printf.sprintf "Subst.bind: %s already bound to %s, cannot rebind to %s"
         x (Term.to_string t') (Term.to_string t))
  | Some _ -> s
  | None ->
    if s.ground && Term.is_ground t then { m = M.add x t s.m; ground = true }
    else begin
      (* Normalise: substitute the new binding into existing ranges so
         the substitution stays idempotent, and resolve existing
         bindings inside the new range (e.g. bind X->Y then Y->c must
         leave X->c, not X->Y). *)
      let one = { m = M.singleton x t; ground = false } in
      let m' = M.map (apply one) s.m in
      let s' = { m = m'; ground = false } in
      let m'' = M.add x (apply s' t) m' in
      { m = m''; ground = M.for_all (fun _ u -> Term.is_ground u) m'' }
    end

let find x s = M.find_opt x s.m
let mem x s = M.mem x s.m
let domain s = M.fold (fun x _ acc -> x :: acc) s.m [] |> List.rev
let bindings s = M.bindings s.m
let cardinal s = M.cardinal s.m

let of_map m = { m; ground = M.for_all (fun _ u -> Term.is_ground u) m }

let compose s1 s2 =
  let pushed = M.map (apply s2) s1.m in
  of_map (M.union (fun _ t _ -> Some t) pushed s2.m)

let restrict xs s =
  let keep = List.fold_left (fun acc x -> M.add x () acc) M.empty xs in
  (* dropping bindings cannot un-ground the remaining ranges *)
  { s with m = M.filter (fun x _ -> M.mem x keep) s.m }

let equal s1 s2 = M.equal Term.equal s1.m s2.m

let pp ppf s =
  let pp_binding ppf (x, t) = Format.fprintf ppf "%s := %a" x Term.pp t in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_binding)
    (M.bindings s.m)
