module M = Map.Make (String)

type t = Term.t M.t

let empty = M.empty
let is_empty = M.is_empty

let rec apply s t =
  match t with
  | Term.Var x -> ( match M.find_opt x s with Some u -> u | None -> t)
  | Term.Const _ -> t
  | Term.App (f, args) -> Term.App (f, List.map (apply s) args)

let singleton x t = M.singleton x t

let bind x t s =
  match M.find_opt x s with
  | Some t' when not (Term.equal t t') ->
    invalid_arg
      (Printf.sprintf "Subst.bind: %s already bound to %s, cannot rebind to %s"
         x (Term.to_string t') (Term.to_string t))
  | Some _ -> s
  | None ->
    (* Normalise: substitute the new binding into existing ranges so the
       substitution stays idempotent. *)
    let one = M.singleton x t in
    let s' = M.map (apply one) s in
    M.add x (apply s' t) s'

let find x s = M.find_opt x s
let mem x s = M.mem x s
let domain s = M.fold (fun x _ acc -> x :: acc) s [] |> List.rev
let bindings s = M.bindings s
let cardinal s = M.cardinal s

let compose s1 s2 =
  let pushed = M.map (apply s2) s1 in
  M.union (fun _ t _ -> Some t) pushed s2

let restrict xs s =
  let keep = List.fold_left (fun acc x -> M.add x () acc) M.empty xs in
  M.filter (fun x _ -> M.mem x keep) s

let equal s1 s2 = M.equal Term.equal s1 s2

let pp ppf s =
  let pp_binding ppf (x, t) = Format.fprintf ppf "%s := %a" x Term.pp t in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_binding)
    (M.bindings s)
