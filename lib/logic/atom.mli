(** Predicate atoms [p(t1,...,tn)]. *)

type t = { pred : string; args : Term.t list }

val make : string -> Term.t list -> t
val arity : t -> int
val vars : t -> string list
val is_ground : t -> bool
val apply : Subst.t -> t -> t

val unify : ?init:Subst.t -> t -> t -> Subst.t option
(** Unify two atoms: same predicate, same arity, unifiable arguments. *)

val matches : ?init:Subst.t -> pattern:t -> t -> Subst.t option
(** One-sided matching of [pattern] against a (typically ground) atom. *)

val rename_apart : suffix:string -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
