let rec unify ?(init = Subst.empty) t1 t2 =
  let t1 = Subst.apply init t1 and t2 = Subst.apply init t2 in
  match t1, t2 with
  | t1, t2 when Term.equal t1 t2 -> Some init
  | Term.Var x, t | t, Term.Var x ->
    if Term.occurs x t then None else Some (Subst.bind x t init)
  | Term.App (f, xs), Term.App (g, ys)
    when String.equal f g && List.length xs = List.length ys ->
    unify_list ~init xs ys
  | _ -> None

and unify_list ?(init = Subst.empty) xs ys =
  match xs, ys with
  | [], [] -> Some init
  | x :: xs', y :: ys' -> (
    match unify ~init x y with
    | None -> None
    | Some s -> unify_list ~init:s xs' ys')
  | _ -> None

let rec matches ?(init = Subst.empty) ~pattern t =
  match pattern, t with
  | Term.Var x, _ -> (
    match Subst.find x init with
    | Some t' -> if Term.equal t t' then Some init else None
    | None -> Some (Subst.bind x t init))
  | Term.Const c1, Term.Const c2 when Term.equal_const c1 c2 -> Some init
  | Term.App (f, xs), Term.App (g, ys)
    when String.equal f g && List.length xs = List.length ys ->
    matches_list ~init ~patterns:xs ys
  | _ -> None

and matches_list ?(init = Subst.empty) ~patterns ts =
  match patterns, ts with
  | [], [] -> Some init
  | p :: ps, t :: ts' -> (
    match matches ~init ~pattern:p t with
    | None -> None
    | Some s -> matches_list ~init:s ~patterns:ps ts')
  | _ -> None

let variant t1 t2 =
  match matches ~pattern:t1 t2, matches ~pattern:t2 t1 with
  | Some s1, Some s2 ->
    (* Both matchings must be injective renamings: every binding maps a
       variable to a distinct variable. *)
    let renaming s =
      let bs = Subst.bindings s in
      List.for_all (fun (_, t) -> match t with Term.Var _ -> true | _ -> false) bs
      &&
      let range = List.map snd bs in
      List.length (List.sort_uniq Term.compare range) = List.length range
    in
    renaming s1 && renaming s2
  | _ -> false

let rec rename_apart ~suffix = function
  | Term.Var x -> Term.Var (x ^ suffix)
  | Term.Const _ as t -> t
  | Term.App (f, args) -> Term.App (f, List.map (rename_apart ~suffix) args)
