(** Rules [head :- body] and facts (rules with empty bodies).

    Rules are the extension mechanism of the GCM (requirement (RULES) of
    Section 3). Integrity constraints are ordinary rules whose head
    predicate is the distinguished inconsistency class — see
    {!Flogic.Ic}. *)

type t = { head : Atom.t; body : Literal.t list }

val make : Atom.t -> Literal.t list -> t
val fact : Atom.t -> t
val is_fact : t -> bool

val head_pred : t -> string

val vars : t -> string list

val apply : Subst.t -> t -> t
val rename_apart : suffix:string -> t -> t

type safety_error =
  | Agg_unbound of string
      (** aggregate target/group-by variable not bound by the inner
          conjunction *)
  | Unbound_var of string
      (** required variable (head, negation, comparison input) never
          range-restricted *)
  | Stuck_literal of Literal.t
      (** a literal whose needs can never all be bound (and whose unmet
          variables are not already reported as [Unbound_var]) *)

val safety_errors : t -> safety_error list
(** All range-restriction violations of the rule, for diagnostic
    tooling; [[]] iff {!check_safety} succeeds. *)

val check_safety : t -> (unit, string) result
(** Range restriction: every variable of the head, of each negated
    literal, of comparison/assignment inputs, and every aggregate
    group-by variable must be bound by a positive body literal, an
    equality, an assignment target, or an aggregate result, considering
    literals in any order that admits such a binding. Aggregate inner
    bodies are checked separately (target and group-by variables must be
    bound by the inner conjunction). [Error] carries the first entry of
    {!safety_errors}, rendered. *)

val body_predicates : t -> (string * bool) list
(** Predicates of the body with their nonmonotonic flag, for
    stratification. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
