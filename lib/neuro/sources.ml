module Term = Logic.Term
module Schema = Gcm.Schema
module Source = Wrapper.Source
module Capability = Wrapper.Capability
module Molecule = Flogic.Molecule

type params = { seed : int; scale : int }

let default_params = { seed = 42; scale = 50 }

let proteins =
  [
    "ryanodine_receptor";
    "ip3_receptor";
    "calbindin";
    "parvalbumin";
    "calmodulin";
    "gfap";
    "actin";
    "tubulin";
  ]

let calcium_binders =
  [ "ryanodine_receptor"; "ip3_receptor"; "calbindin"; "parvalbumin"; "calmodulin" ]

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

(* ------------------------------------------------------------------ *)
(* SYNAPSE: spine morphometry of hippocampal pyramidal cells *)

let synapse_schema =
  Schema.make ~name:"SYNAPSE"
    ~classes:
      [
        Schema.class_def "spine_measure"
          ~methods:
            [
              ("diameter", "number");
              ("volume", "number");
              ("location", "anatomical_term");
              ("species", "string");
              ("age_days", "number");
            ];
        Schema.class_def "dendrite_measure"
          ~methods:
            [
              ("segment_length", "number");
              ("branch_order", "number");
              ("location", "anatomical_term");
              ("species", "string");
            ];
      ]
    ()

let synapse { seed; scale } =
  let rng = Random.State.make [| seed; 1 |] in
  let data = ref [] in
  let emit m = data := m :: !data in
  for k = 1 to scale do
    let id = Term.sym (Printf.sprintf "syn_spine_%d" k) in
    emit (Molecule.Isa (id, Term.sym "spine_measure"));
    emit
      (Molecule.Meth_val
         (id, "diameter", Term.float (0.2 +. Random.State.float rng 0.8)));
    emit
      (Molecule.Meth_val (id, "volume", Term.float (Random.State.float rng 0.15)));
    emit
      (Molecule.Meth_val
         ( id,
           "location",
           Term.sym (pick rng [ "pyramidal_cell"; "dendrite"; "shaft" ]) ));
    emit
      (Molecule.Meth_val
         (id, "species", Term.str (pick rng [ "rat"; "mouse" ])));
    emit
      (Molecule.Meth_val (id, "age_days", Term.int (7 + Random.State.int rng 90)))
  done;
  for k = 1 to max 1 (scale / 3) do
    let id = Term.sym (Printf.sprintf "syn_dend_%d" k) in
    emit (Molecule.Isa (id, Term.sym "dendrite_measure"));
    emit
      (Molecule.Meth_val
         (id, "segment_length", Term.float (5.0 +. Random.State.float rng 80.0)));
    emit (Molecule.Meth_val (id, "branch_order", Term.int (1 + Random.State.int rng 5)));
    emit (Molecule.Meth_val (id, "location", Term.sym "dendrite"));
    emit (Molecule.Meth_val (id, "species", Term.str "rat"))
  done;
  Source.make ~name:"SYNAPSE" ~schema:synapse_schema
    ~capabilities:
      (Capability.scan_class "spine_measure"
      :: Capability.scan_class "dendrite_measure"
      :: Capability.select_class ~cls:"spine_measure" ~on:[ "location"; "species" ]
      :: [ Capability.select_class ~cls:"dendrite_measure" ~on:[ "location" ] ])
    ~anchors:
      [
        ("spine_measure", "spine", [ "hippocampus" ]);
        ("dendrite_measure", "dendrite", [ "hippocampus" ]);
      ]
    ~data:(List.rev !data) ()

(* ------------------------------------------------------------------ *)
(* NCMIR: protein localization in Purkinje cells *)

let ncmir_schema =
  Schema.make ~name:"NCMIR"
    ~classes:
      [
        Schema.class_def "protein_amount"
          ~methods:
            [
              ("protein_name", "string");
              ("location", "anatomical_term");
              ("amount", "number");
              ("organism", "string");
            ];
        Schema.class_def "protein"
          ~methods:[ ("name", "string"); ("ion_bound", "ion") ];
      ]
    ()

let ncmir_locations = [ "purkinje_cell"; "dendrite"; "branch"; "spine"; "soma" ]

let ncmir { seed; scale } =
  let rng = Random.State.make [| seed; 2 |] in
  let data = ref [] in
  let emit m = data := m :: !data in
  (* protein metadata *)
  List.iteri
    (fun i p ->
      let id = Term.sym (Printf.sprintf "ncmir_prot_%d" i) in
      emit (Molecule.Isa (id, Term.sym "protein"));
      emit (Molecule.Meth_val (id, "name", Term.sym p));
      if List.mem p calcium_binders then
        emit (Molecule.Meth_val (id, "ion_bound", Term.sym "calcium"))
      else
        emit (Molecule.Meth_val (id, "ion_bound", Term.sym "none")))
    proteins;
  (* amounts: each protein measured at each location, scale/10 replicates *)
  let reps = max 1 (scale / 10) in
  let n = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun loc ->
          for _ = 1 to reps do
            incr n;
            let id = Term.sym (Printf.sprintf "ncmir_amt_%d" !n) in
            emit (Molecule.Isa (id, Term.sym "protein_amount"));
            emit (Molecule.Meth_val (id, "protein_name", Term.sym p));
            emit (Molecule.Meth_val (id, "location", Term.sym loc));
            emit
              (Molecule.Meth_val
                 (id, "amount", Term.float (Random.State.float rng 10.0)));
            emit (Molecule.Meth_val (id, "organism", Term.str "rat"))
          done)
        ncmir_locations)
    proteins;
  Source.make ~name:"NCMIR" ~schema:ncmir_schema
    ~capabilities:
      [
        Capability.scan_class "protein_amount";
        Capability.scan_class "protein";
        Capability.select_class ~cls:"protein_amount"
          ~on:[ "location"; "protein_name"; "organism" ];
        Capability.select_class ~cls:"protein" ~on:[ "ion_bound"; "name" ];
        Capability.template ~name:"amounts_at"
          ~params:[ "loc" ]
          ~body:
            "X : protein_amount, X[location ->> $loc], X[protein_name ->> P], \
             X[amount ->> A]";
      ]
    ~anchors:
      (List.map
         (fun loc -> ("protein_amount", loc, [ "cerebellum" ]))
         ncmir_locations
      @ [ ("protein", "protein", []) ])
    ~data:(List.rev !data) ()

(* ------------------------------------------------------------------ *)
(* SENSELAB: neurotransmission events (the Section 5 class) *)

let senselab_schema =
  Schema.make ~name:"SENSELAB"
    ~classes:
      [
        Schema.class_def "neurotransmission"
          ~methods:
            [
              ("organism", "string");
              ("transmitting_neuron", "anatomical_term");
              ("transmitting_compartment", "anatomical_term");
              ("receiving_neuron", "anatomical_term");
              ("receiving_compartment", "anatomical_term");
              ("neurotransmitter", "substance");
            ];
      ]
    ()

let senselab { seed; scale } =
  let rng = Random.State.make [| seed; 3 |] in
  let data = ref [] in
  let emit m = data := m :: !data in
  let row k (org, tn, tc, rn, rc, nt) =
    let id = Term.sym (Printf.sprintf "sl_nt_%d" k) in
    emit (Molecule.Isa (id, Term.sym "neurotransmission"));
    emit (Molecule.Meth_val (id, "organism", Term.str org));
    emit (Molecule.Meth_val (id, "transmitting_neuron", Term.sym tn));
    emit (Molecule.Meth_val (id, "transmitting_compartment", Term.sym tc));
    emit (Molecule.Meth_val (id, "receiving_neuron", Term.sym rn));
    emit (Molecule.Meth_val (id, "receiving_compartment", Term.sym rc));
    emit (Molecule.Meth_val (id, "neurotransmitter", Term.sym nt))
  in
  (* the rows the Section 5 query must hit: parallel fiber -> Purkinje *)
  for k = 1 to max 2 (scale / 5) do
    row k
      ( "rat",
        "granule_cell",
        "parallel_fiber",
        "purkinje_cell",
        (if Random.State.bool rng then "spine" else "dendrite"),
        "glutamate" )
  done;
  (* background rows: other circuits and organisms *)
  let k0 = max 2 (scale / 5) in
  for k = k0 + 1 to k0 + scale do
    let circuits =
      [
        ("rat", "pyramidal_cell", "axon", "pyramidal_cell", "dendrite", "glutamate");
        ("mouse", "granule_cell", "parallel_fiber", "purkinje_cell", "spine", "glutamate");
        ("rat", "medium_spiny_neuron", "axon", "medium_spiny_neuron", "soma", "gaba");
        ("rat", "purkinje_cell", "axon", "medium_spiny_neuron", "dendrite", "gaba");
      ]
    in
    row k (pick rng circuits)
  done;
  Source.make ~name:"SENSELAB" ~schema:senselab_schema
    ~capabilities:
      [
        Capability.scan_class "neurotransmission";
        Capability.select_class ~cls:"neurotransmission"
          ~on:[ "organism"; "transmitting_compartment"; "neurotransmitter" ];
      ]
    ~anchors:[ ("neurotransmission", "neurotransmission", []) ]
    ~data:(List.rev !data) ()

(* ------------------------------------------------------------------ *)
(* Distractor federation members *)

let distractor { seed; scale } ~index =
  let rng = Random.State.make [| seed; 100 + index |] in
  let name = Printf.sprintf "GENELAB_%d" index in
  let schema =
    Schema.make ~name
      ~classes:
        [
          Schema.class_def "gene_expression"
            ~methods:
              [ ("gene", "string"); ("level", "number"); ("tissue", "anatomical_term") ];
        ]
      ()
  in
  let anchor_concept =
    pick rng [ "hippocampus"; "neostriatum"; "soma"; "gaba"; "substance_p" ]
  in
  let data = ref [] in
  for k = 1 to scale do
    let id = Term.sym (Printf.sprintf "%s_row_%d" name k) in
    data :=
      Molecule.Meth_val (id, "level", Term.float (Random.State.float rng 100.0))
      :: Molecule.Meth_val
           (id, "gene", Term.sym (Printf.sprintf "gene_%d" (Random.State.int rng 500)))
      :: Molecule.Meth_val (id, "tissue", Term.sym anchor_concept)
      :: Molecule.Isa (id, Term.sym "gene_expression")
      :: !data
  done;
  Source.make ~name ~schema
    ~capabilities:
      [
        Capability.scan_class "gene_expression";
        Capability.select_class ~cls:"gene_expression" ~on:[ "tissue"; "gene" ];
      ]
    ~anchors:[ ("gene_expression", anchor_concept, []) ]
    ~data:(List.rev !data) ()

let standard_mediator ?config params =
  let med = Mediation.Mediator.create ?config Anatom.full in
  List.iter
    (fun src ->
      match Mediation.Mediator.register_source med src with
      | Ok () -> ()
      | Error e -> invalid_arg ("standard_mediator: " ^ e))
    [ synapse params; ncmir params; senselab params ];
  med
