module C = Dl.Concept
module Dmap = Domain_map.Dmap

let n = C.name

(* ------------------------------------------------------------------ *)
(* Figure 1 — Example 1's DL statements, verbatim. *)

let fig1_axioms =
  [
    C.subsumes (n "neuron") (C.exists "has" (n "compartment"));
    C.subsumes (n "axon") (n "compartment");
    C.subsumes (n "dendrite") (n "compartment");
    C.subsumes (n "soma") (n "compartment");
    C.equiv (n "spiny_neuron") (C.conj [ n "neuron"; C.exists "has" (n "spine") ]);
    C.subsumes (n "purkinje_cell") (n "spiny_neuron");
    C.subsumes (n "pyramidal_cell") (n "spiny_neuron");
    C.subsumes (n "dendrite") (C.exists "has" (n "branch"));
    C.subsumes (n "shaft") (C.conj [ n "branch"; C.exists "has" (n "spine") ]);
    C.subsumes (n "spine") (C.exists "contains" (n "ion_binding_protein"));
    C.subsumes (n "spine") (n "ion_regulating_component");
    C.subsumes (n "ion_activity") (C.exists "subprocess_of" (n "neurotransmission"));
    C.subsumes (n "ion_binding_protein")
      (C.conj [ n "protein"; C.exists "controls" (n "ion_activity") ]);
    C.equiv (n "ion_regulating_component") (C.exists "regulates" (n "ion_activity"));
  ]

let fig1 = Dmap.of_axioms fig1_axioms

(* ------------------------------------------------------------------ *)
(* Figure 3 (light nodes) *)

let fig3_base_axioms =
  [
    C.subsumes (n "neuron") (C.exists "has" (n "compartment"));
    C.subsumes (n "soma") (n "compartment");
    C.subsumes (n "axon") (n "compartment");
    C.subsumes (n "dendrite") (n "compartment");
    C.subsumes (n "spiny_neuron") (n "neuron");
    C.subsumes (n "medium_spiny_neuron") (n "spiny_neuron");
    C.subsumes (n "neostriatum") (C.exists "has" (n "medium_spiny_neuron"));
    (* expressed neurotransmitters / receptors *)
    C.subsumes (n "gaba") (n "neurotransmitter");
    C.subsumes (n "substance_p") (n "neurotransmitter");
    C.subsumes (n "medium_spiny_neuron") (C.exists "exp" (n "gaba"));
    C.subsumes (n "medium_spiny_neuron") (C.exists "exp" (n "substance_p"));
    C.subsumes (n "medium_spiny_neuron") (C.exists "exp" (n "dopamine_r"));
    (* projection targets: one of four structures (the OR node) *)
    C.subsumes (n "medium_spiny_neuron")
      (C.exists "proj"
         (C.disj
            [
              n "substantia_nigra_pr";
              n "substantia_nigra_pc";
              n "globus_pallidus_external";
              n "globus_pallidus_internal";
            ]));
  ]

let fig3_base = Dmap.of_axioms fig3_base_axioms

let fig3_registration =
  [
    C.equiv (n "my_dendrite")
      (C.conj [ n "dendrite"; C.exists "exp" (n "dopamine_r") ]);
    C.subsumes (n "my_neuron")
      (C.conj
         [
           n "medium_spiny_neuron";
           C.exists "proj" (n "globus_pallidus_external");
           C.forall "has" (n "my_dendrite");
         ]);
  ]

(* ------------------------------------------------------------------ *)
(* Section 5 needs parallel fibers and brain regions for the walkthrough
   query. *)

let parallel_fiber_extension =
  [
    C.subsumes (n "parallel_fiber") (n "axon");
    C.subsumes (n "granule_cell") (n "neuron");
    C.subsumes (n "granule_cell") (C.exists "has" (n "parallel_fiber"));
    C.subsumes (n "purkinje_cell") (C.exists "in_region" (n "cerebellum"));
    C.subsumes (n "cerebellum") (n "brain_region");
    C.subsumes (n "neostriatum") (n "brain_region");
    C.subsumes (n "hippocampus") (n "brain_region");
    C.subsumes (n "cerebellum") (C.exists "has" (n "purkinje_cell"));
    C.subsumes (n "hippocampus") (C.exists "has" (n "pyramidal_cell"));
    (* nervous_system root for Example 4's distribution_root *)
    C.subsumes (n "brain") (n "nervous_system_part");
    C.subsumes (n "cerebellum") (n "nervous_system_part");
    C.subsumes (n "brain") (C.exists "has" (n "cerebellum"));
    C.subsumes (n "brain") (C.exists "has" (n "hippocampus"));
    C.subsumes (n "brain") (C.exists "has" (n "neostriatum"));
    C.subsumes (n "purkinje_cell") (C.exists "receives_from" (n "parallel_fiber"));
  ]

let full =
  Dmap.merge
    (Dmap.merge fig1 fig3_base)
    (Dmap.of_axioms parallel_fiber_extension)

(* ------------------------------------------------------------------ *)
(* Scalable synthetic anatomy *)

let sprawl ~concepts ~seed =
  let rng = Random.State.make [| seed |] in
  let name k = Printf.sprintf "c%d" k in
  (* isa forest: each concept (except roots) picks a parent among the
     previous ones, biased toward recent concepts to get deep chains
     like dendrite->branch->shaft->spine. *)
  let dm = ref (Dmap.add_concept Dmap.empty (name 0)) in
  for k = 1 to concepts - 1 do
    let parent =
      if Random.State.int rng 100 < 70 && k > 4 then
        k - 1 - Random.State.int rng (min 4 k)
      else Random.State.int rng k
    in
    dm := Dmap.isa !dm (name k) (name parent);
    (* has-decomposition: about half the concepts decompose into an
       earlier sibling region/part. *)
    if Random.State.int rng 100 < 50 && k > 2 then begin
      let part = Random.State.int rng k in
      if part <> k then dm := Dmap.ex !dm ~role:"has" (name k) (name part)
    end;
    (* sparse protein / activity side links *)
    if Random.State.int rng 100 < 15 then
      dm := Dmap.ex !dm ~role:"contains" (name k) (name (Random.State.int rng concepts mod max 1 k));
    if Random.State.int rng 100 < 10 then
      dm := Dmap.ex !dm ~role:"exp" (name k) (name (Random.State.int rng (max 1 k)))
  done;
  !dm
