(** The ANATOM domain map: the paper's Figures 1 and 3, plus a
    parameterised generator that scales the anatomy to arbitrary size
    for the benchmark sweeps.

    Substitution note (DESIGN.md): the real ANATOM knowledge base was a
    hand-curated neuroanatomy ontology; the figures define the fragment
    the paper actually reasons over, and the generator preserves its
    shape (an isa backbone with [has]-part decomposition and
    protein/activity side links) at any size. *)

val fig1 : Domain_map.Dmap.t
(** Figure 1: the SYNAPSE + NCMIR domain map — dendritic spines,
    branches, ion-binding proteins, neurotransmission. *)

val fig1_axioms : Dl.Concept.axiom list
(** The DL statements of Example 1, exactly as printed in the paper. *)

val fig3_base : Domain_map.Dmap.t
(** Figure 3 {e before} the dark (registered) nodes: medium spiny
    neurons, their projection targets (an OR node) and expressed
    neurotransmitters. *)

val fig3_registration : Dl.Concept.axiom list
(** The MyNeuron / MyDendrite axioms a source sends to the mediator. *)

val sprawl : concepts:int -> seed:int -> Domain_map.Dmap.t
(** A synthetic anatomy of roughly [concepts] concepts: a random isa
    tree (branching like the cerebellar fragment), [has]-decomposition
    edges along the tree, and sparse [contains]/[exp] protein links.
    Deterministic in [seed]. *)

val parallel_fiber_extension : Dl.Concept.axiom list
(** Concepts needed by the Section 5 query ("neurons that receive
    signals from parallel fibers"): parallel fibers, Purkinje cells in
    the cerebellum, and their synapse relationship. Merged into [fig1]
    by {!full}. *)

val full : Domain_map.Dmap.t
(** [fig1] + [fig3_base] + {!parallel_fiber_extension}: the map the
    end-to-end examples and benches run against. *)
