(** The three Neuroscience "worlds" of the paper, as wrapped sources
    with seeded synthetic data.

    Substitution note (DESIGN.md): the real laboratories' databases are
    not available; these generators reproduce the {e schemas} the paper
    prints (Example 1, Example 4, the [neurotransmission] class of
    Section 5), the anchor structure into ANATOM, and plausible
    cardinalities. Anatomical location values are symbols equal to
    domain-map concept names; organisms are strings.

    - {b SYNAPSE}: 3-D reconstructions of dendritic spines of pyramidal
      cells in the hippocampus — [spine_measure] objects with
      morphometry methods.
    - {b NCMIR}: protein localization in Purkinje-cell compartments —
      [protein_amount] rows plus [protein] metadata (which ion a
      protein binds).
    - {b SENSELAB}: neurotransmission events — the Section 5 class with
      organism / transmitting / receiving fields. *)

type params = {
  seed : int;
  scale : int;
      (** rows per class ≈ [scale] (spine measures, protein rows,
          transmission events grow linearly in it) *)
}

val default_params : params

val synapse : params -> Wrapper.Source.t
val ncmir : params -> Wrapper.Source.t
val senselab : params -> Wrapper.Source.t

val proteins : string list
(** The protein universe; the calcium binders are a known subset. *)

val calcium_binders : string list

val distractor : params -> index:int -> Wrapper.Source.t
(** An unrelated source (e.g. a genomics lab) anchored at concepts
    disjoint from the Section 5 query: used by the F2 bench to grow the
    federation without growing the relevant data. *)

val standard_mediator :
  ?config:Mediation.Mediator.config -> params -> Mediation.Mediator.t
(** The ANATOM domain map ({!Anatom.full}) with the three sources
    registered. Raises [Invalid_argument] on registration failure. *)
