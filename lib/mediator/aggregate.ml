module Closure = Domain_map.Closure

type tree = {
  concept : string;
  own : float;
  total : float;
  children : tree list;
}

let distribution dm ~root ~measure =
  let next = Closure.traversal dm in
  let successors c =
    List.filter_map (fun (a, b) -> if String.equal a c then Some b else None) next
    |> List.sort_uniq String.compare
  in
  let visited = Hashtbl.create 64 in
  let rec go concept =
    Hashtbl.add visited concept ();
    let own = List.fold_left ( +. ) 0.0 (measure concept) in
    let children =
      List.filter_map
        (fun c -> if Hashtbl.mem visited c then None else Some (go c))
        (successors concept)
    in
    let total = List.fold_left (fun t ch -> t +. ch.total) own children in
    { concept; own; total; children }
  in
  go root

let rec flatten t =
  (t.concept, t.total) :: List.concat_map flatten t.children

let rec depth t =
  1 + List.fold_left (fun d ch -> max d (depth ch)) 0 t.children

let rec size t = 1 + List.fold_left (fun s ch -> s + size ch) 0 t.children

let rec to_term t =
  Logic.Term.app "dist"
    [
      Logic.Term.sym t.concept;
      Logic.Term.float t.total;
      (match t.children with
      | [] -> Logic.Term.sym "nil"
      | children ->
        List.fold_right
          (fun ch acc -> Logic.Term.app "cons" [ to_term ch; acc ])
          children (Logic.Term.sym "nil"));
    ]

let rec prune t =
  {
    t with
    children =
      List.filter_map
        (fun ch -> if ch.total = 0.0 then None else Some (prune ch))
        t.children;
  }

let to_dot ?(title = "distribution") t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph distribution {\n";
  Buffer.add_string buf
    (Printf.sprintf "  label=%S; rankdir=TB; node [shape=box, fontname=\"Helvetica\"];\n"
       title);
  let k = ref 0 in
  let rec go t =
    incr k;
    let my = !k in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\\n%.2f (own %.2f)\"%s];\n" my t.concept
         t.total t.own
         (if t.own > 0.0 then ", style=filled, fillcolor=gray90" else ""));
    List.iter
      (fun ch ->
        let child = go ch in
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" my child))
      t.children;
    my
  in
  ignore (go t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let rec pp ppf t =
  Format.fprintf ppf "@[<v 2>%s: %.3f (own %.3f)" t.concept t.total t.own;
  List.iter (fun ch -> Format.fprintf ppf "@,%a" pp ch) t.children;
  Format.fprintf ppf "@]"
