module Term = Logic.Term
module Literal = Logic.Literal
module Source = Wrapper.Source
module Store = Wrapper.Store
module Region = Domain_map.Region
module Lub = Domain_map.Lub
module Dmap = Domain_map.Dmap

type spec = {
  nt_class : string;
  organism_field : string;
  trans_comp_field : string;
  recv_neuron_field : string;
  recv_comp_field : string;
  protein_amount_class : string;
  protein_name_field : string;
  location_field : string;
  amount_field : string;
  protein_class : string;
  name_field : string;
  ion_field : string;
}

let default_spec =
  {
    nt_class = "neurotransmission";
    organism_field = "organism";
    trans_comp_field = "transmitting_compartment";
    recv_neuron_field = "receiving_neuron";
    recv_comp_field = "receiving_compartment";
    protein_amount_class = "protein_amount";
    protein_name_field = "protein_name";
    location_field = "location";
    amount_field = "amount";
    protein_class = "protein";
    name_field = "name";
    ion_field = "ion_bound";
  }

type step_report = {
  label : string;
  duration_ms : float;
  tuples : int;
  note : string;
}

type outcome = {
  locations : string list;
  sources_contacted : string list;
  proteins : string list;
  root : string option;
  distributions : (string * Aggregate.tree) list;
  steps : step_report list;
  tuples_moved : int;
}

(* ------------------------------------------------------------------ *)
(* Helpers *)

let satisfies values (meth, op, rhs) =
  List.exists
    (fun (m, v) ->
      String.equal m meth
      && match Literal.eval_cmp op v rhs with Some true -> true | _ -> false)
    values

(* Fetch with capability-respecting pushdown, falling back to
   scan-and-filter at the mediator when pushdown is disabled or not
   advertised. Returns the surviving objects; wrapper meters count what
   was actually shipped. *)
let fetch_objects med src ~cls ~selections =
  let cfg = Mediator.config med in
  let scan_and_filter () =
    let objs = Source.fetch_instances src ~cls ~selections:[] in
    List.filter
      (fun (o : Store.obj) -> List.for_all (satisfies o.Store.values) selections)
      objs
  in
  if cfg.Mediator.pushdown && selections <> [] then
    try Source.fetch_instances src ~cls ~selections
    with Source.Unsupported _ -> scan_and_filter ()
  else scan_and_filter ()

let has_class src cls =
  List.mem cls (Gcm.Schema.class_names (Source.schema src))

let value_str (o : Store.obj) field =
  List.filter_map
    (fun (m, v) -> if String.equal m field then Term.as_string v else None)
    o.Store.values

let value_float (o : Store.obj) field =
  List.filter_map
    (fun (m, v) ->
      if String.equal m field then
        match v with
        | Term.Const (Term.Float f) -> Some f
        | Term.Const (Term.Int i) -> Some (float_of_int i)
        | _ -> None
      else None)
    o.Store.values

let total_meter med =
  List.fold_left
    (fun acc s -> acc + (Source.served s).Source.tuples)
    0 (Mediator.sources med)

let timed f =
  let t0 = Sys.time () in
  let y = f () in
  (y, (Sys.time () -. t0) *. 1000.0)

(* The widest traversal root: used when the lub optimisation is off
   ("forcing the mediator to provide a reasonable root" degenerates to
   the whole-map root). *)
let whole_map_root dm =
  let concepts = Dmap.concepts dm in
  let best =
    List.fold_left
      (fun best c ->
        let r = Region.downward dm ~root:c () in
        match best with
        | Some (_, n) when n >= Region.size r -> best
        | _ -> Some (c, Region.size r))
      None concepts
  in
  Option.map fst best

(* ------------------------------------------------------------------ *)

let measure_from_rows rows protein concept =
  List.filter_map
    (fun (p, loc, amount) ->
      if String.equal p protein && String.equal loc concept then Some amount
      else None)
    rows

(* The "amounts_at" query template, when a wrapper declares one, is the
   strongest capability: the whole (protein, location, amount)
   subquery runs wrapper-side and only bindings travel. *)
let rows_via_template med src ~locations =
  if not (Mediator.config med).Mediator.pushdown then None
  else
    match Wrapper.Capability.find_template (Source.capabilities src) "amounts_at" with
    | None -> None
    | Some _ -> (
      try
        Some
          (List.concat_map
             (fun loc ->
               Source.run_template src ~name:"amounts_at"
                 ~args:[ ("loc", Term.sym loc) ]
               |> List.filter_map (fun sub ->
                      match
                        ( Logic.Subst.find "P" sub,
                          Logic.Subst.find "A" sub )
                      with
                      | Some p, Some a -> (
                        match Term.as_string p, a with
                        | Some p, Term.Const (Term.Float amount) ->
                          Some (p, loc, amount)
                        | Some p, Term.Const (Term.Int amount) ->
                          Some (p, loc, float_of_int amount)
                        | _ -> None)
                      | _ -> None))
             locations)
      with Source.Unsupported _ -> None)

let collect_protein_rows spec med ~sources ~locations ~ion =
  (* step 3: retrieve (protein, location, amount) rows for the given
     locations from the given sources, restricted to proteins binding
     [ion]. *)
  let rows = ref [] in
  let skipped = ref [] in
  List.iter
    (fun src_name ->
      match Mediator.find_source med src_name with
      | None -> ()
      | Some src ->
        if has_class src spec.protein_amount_class then begin
          (* ion filter via the protein metadata class *)
          let binding_proteins =
            if has_class src spec.protein_class then
              fetch_objects med src ~cls:spec.protein_class
                ~selections:[ (spec.ion_field, Literal.Eq, Term.sym ion) ]
              |> List.concat_map (fun o -> value_str o spec.name_field)
            else []
          in
          let keep (p, loc, amount) =
            if binding_proteins = [] || List.mem p binding_proteins then
              rows := (p, loc, amount) :: !rows
          in
          match rows_via_template med src ~locations with
          | Some template_rows ->
            (* strongest capability: the subquery ran wrapper-side *)
            List.iter keep template_rows
          | None ->
            let fetched =
              if (Mediator.config med).Mediator.pushdown then
                List.concat_map
                  (fun loc ->
                    fetch_objects med src ~cls:spec.protein_amount_class
                      ~selections:[ (spec.location_field, Literal.Eq, Term.sym loc) ])
                  locations
              else
                fetch_objects med src ~cls:spec.protein_amount_class
                  ~selections:[]
                |> List.filter (fun o ->
                       List.exists
                         (fun loc ->
                           satisfies o.Store.values
                             (spec.location_field, Literal.Eq, Term.sym loc))
                         locations)
            in
            List.iter
              (fun (o : Store.obj) ->
                match
                  ( value_str o spec.protein_name_field,
                    value_str o spec.location_field,
                    value_float o spec.amount_field )
                with
                | p :: _, loc :: _, amount :: _ -> keep (p, loc, amount)
                | _ -> ())
              fetched
        end
        else skipped := src_name :: !skipped)
    sources;
  (List.rev !rows, List.rev !skipped)

let calcium_binding_query ?(spec = default_spec) med ~organism
    ~transmitting_compartment ~ion () =
  List.iter Source.reset_meter (Mediator.sources med);
  let steps = ref [] in
  let record label note tuples duration_ms =
    steps := { label; note; tuples; duration_ms } :: !steps
  in
  (* -- step 1: push selections to the neurotransmission source ------- *)
  let nt_source =
    List.find_opt (fun s -> has_class s spec.nt_class) (Mediator.sources med)
  in
  match nt_source with
  | None -> Error (Printf.sprintf "no registered source exports %s" spec.nt_class)
  | Some nt_src ->
    let before = total_meter med in
    let nt_rows, ms1 =
      timed (fun () ->
          fetch_objects med nt_src ~cls:spec.nt_class
            ~selections:
              [
                (spec.organism_field, Literal.Eq, Term.str organism);
                ( spec.trans_comp_field,
                  Literal.Eq,
                  Term.sym transmitting_compartment );
              ])
    in
    let pairs =
      List.concat_map
        (fun o ->
          List.concat_map
            (fun n ->
              List.map (fun c -> (n, c)) (value_str o spec.recv_comp_field))
            (value_str o spec.recv_neuron_field))
        nt_rows
      |> List.sort_uniq compare
    in
    let locations =
      List.concat_map (fun (n, c) -> [ n; c ]) pairs
      |> List.sort_uniq String.compare
    in
    record "1: push selections to neurotransmission source"
      (Printf.sprintf "%s, %d bindings: {%s}" (Source.name nt_src)
         (List.length nt_rows)
         (String.concat ", " locations))
      (total_meter med - before)
      ms1;
    if locations = [] then
      Error
        (Printf.sprintf "no neurotransmission data for organism=%s, %s=%s"
           organism spec.trans_comp_field transmitting_compartment)
    else begin
      (* -- step 2: source selection via the semantic index ------------ *)
      let chosen, ms2 =
        timed (fun () ->
            Mediator.select_sources_for_pairs med ~pairs
            |> List.filter (fun s -> not (String.equal s (Source.name nt_src))))
      in
      record "2: select sources via domain map"
        (Printf.sprintf "{%s}" (String.concat ", " chosen))
        0 ms2;
      (* -- step 3: push location selections, retrieve proteins -------- *)
      let before3 = total_meter med in
      let (rows, skipped), ms3 =
        timed (fun () ->
            collect_protein_rows spec med ~sources:chosen ~locations ~ion)
      in
      let proteins =
        List.map (fun (p, _, _) -> p) rows |> List.sort_uniq String.compare
      in
      record "3: push selections to protein sources"
        (Printf.sprintf "%d rows, proteins {%s}%s" (List.length rows)
           (String.concat ", " proteins)
           (if skipped = [] then ""
            else " (skipped: " ^ String.concat ", " skipped ^ ")"))
        (total_meter med - before3)
        ms3;
      (* -- step 4: lub root + downward-closure aggregation ------------ *)
      let dm = Mediator.dmap med in
      let root, ms4a =
        timed (fun () ->
            if (Mediator.config med).Mediator.use_lub then
              Option.map (fun (r : Region.t) -> r.Region.root)
                (Region.of_concepts dm locations)
            else whole_map_root dm)
      in
      match root with
      | None -> Error "no distribution root covers the bound locations"
      | Some root_c ->
        let distributions, ms4b =
          timed (fun () ->
              List.map
                (fun p ->
                  ( p,
                    Aggregate.distribution dm ~root:root_c
                      ~measure:(measure_from_rows rows p) ))
                proteins)
        in
        record "4: lub root + aggregate traversal"
          (Printf.sprintf "root=%s, %d distributions" root_c
             (List.length distributions))
          0 (ms4a +. ms4b);
        Ok
          {
            locations;
            sources_contacted = Source.name nt_src :: chosen;
            proteins;
            root = Some root_c;
            distributions;
            steps = List.rev !steps;
            tuples_moved = total_meter med;
          }
    end

let protein_distribution ?(spec = default_spec) med ~protein ~organism ~root =
  ignore organism;
  let region = Region.downward (Mediator.dmap med) ~root () in
  let sources =
    Mediator.select_sources med ~concepts:region.Region.members
  in
  let rows, _ =
    collect_protein_rows spec med ~sources ~locations:region.Region.members
      ~ion:""
  in
  let rows = List.filter (fun (p, _, _) -> String.equal p protein) rows in
  if rows = [] then
    Error (Printf.sprintf "no %s data under %s" protein root)
  else
    Ok
      (Aggregate.distribution (Mediator.dmap med) ~root
         ~measure:(measure_from_rows rows protein))

let pp_outcome ppf o =
  Format.fprintf ppf "locations: %s@." (String.concat ", " o.locations);
  Format.fprintf ppf "sources: %s@." (String.concat ", " o.sources_contacted);
  Format.fprintf ppf "proteins: %s@." (String.concat ", " o.proteins);
  (match o.root with
  | Some r -> Format.fprintf ppf "root: %s@." r
  | None -> ());
  List.iter
    (fun s ->
      Format.fprintf ppf "  [%s] %.2f ms, %d tuples — %s@." s.label
        s.duration_ms s.tuples s.note)
    o.steps;
  Format.fprintf ppf "tuples moved: %d@." o.tuples_moved;
  List.iter
    (fun (p, tree) -> Format.fprintf ppf "%s:@.%a@." p Aggregate.pp (Aggregate.prune tree))
    o.distributions
