(** The mediator/wrapper wire dialogues.

    "Syntactically all information (queries, CM signatures and data,
    mediator/wrapper dialogues, etc.) goes over the wire in XML syntax"
    (Section 2). This module defines the message vocabulary and codecs,
    plus an in-process {!session} that routes encoded messages to a
    wrapper endpoint — the shape a networked deployment would have,
    exercised end-to-end in tests and the F2b bench without sockets.

    Messages:
    - [register]   — wrapper → mediator: the CM document (any plug-in
      dialect) plus capability declarations;
    - [fetch]      — mediator → wrapper: class scan with pushed
      selections, or relation access with a binding pattern;
    - [answers]    — wrapper → mediator: objects or tuples;
    - [update-facts] — a source pushes a data change (assert/retract
      ground molecules), the Figure 3 update arrow that drives
      incremental maintenance on the mediator side;
    - [error]      — either direction. *)

type selection_msg = string * Logic.Literal.cmp * Logic.Term.t

type request =
  | Register of { format : string; document : Xmlkit.Xml.t }
  | Fetch_instances of { cls : string; selections : selection_msg list }
  | Fetch_tuples of { rel : string; pattern : (string * Logic.Term.t) list }
  | Run_template of { name : string; args : (string * Logic.Term.t) list }
  | Update_facts of {
      source : string;
      additions : Flogic.Molecule.t list;
      deletions : Flogic.Molecule.t list;
    }
  | Ping  (** liveness probe (the breaker's half-open state sends it) *)

type response =
  | Registered of { source : string }
  | Objects of Wrapper.Store.obj list
  | Tuples of Datalog.Tuple.t list
  | Bindings of (string * Logic.Term.t) list list
  | Updated of { added : int; removed : int }
      (** [added] molecules asserted; [removed] declared facts that were
          present and are now gone *)
  | Pong of { source : string }
  | Timed_out of { source : string; after : int }
      (** the wrapper gave up after [after] virtual ms *)
  | Unavailable of { source : string; retry_in : int option }
      (** transient outage when [retry_in] suggests a delay; a dead
          source when [None] *)
  | Failed of string

(** {1 Codecs} *)

val encode_request : request -> Xmlkit.Xml.t
val decode_request : Xmlkit.Xml.t -> (request, string) result
val encode_response : response -> Xmlkit.Xml.t
val decode_response : Xmlkit.Xml.t -> (response, string) result

(** {1 Endpoints} *)

type endpoint = Wrapper.Fault.t
(** A wrapper-side message handler around one {!Wrapper.Source.t},
    behind its fault-injection channel. *)

val endpoint : Wrapper.Source.t -> endpoint
(** A pristine ({!Wrapper.Fault.Reliable}) endpoint. *)

val faulty_endpoint : Wrapper.Fault.t -> endpoint
(** An endpoint over an existing fault channel: injected timeouts,
    outages and crashes travel as [Timed_out]/[Unavailable] responses,
    and scheduled payload corruption damages {!handle_text}'s output. *)

val handle : endpoint -> Xmlkit.Xml.t -> Xmlkit.Xml.t
(** Decode a request, execute it against the source, encode the
    response ([Failed] on any error — the wire never raises; injected
    faults become [Timed_out]/[Unavailable]). *)

val call : endpoint -> request -> response
(** [handle] with the codecs applied on both ends: exactly what a
    remote client observes. *)

val handle_text : endpoint -> string -> string
(** The serialized wire: parse the request text, execute, print the
    response — then apply any {!Wrapper.Fault.Truncate}/[Garble]
    corruption the channel scheduled for this call. Never raises. *)

val decode_response_text :
  string -> (response * int, string) result
(** Mediator-side receive: strict parse first, then
    {!Xmlkit.Parse.parse_lenient} on damaged payloads. [Ok (resp, n)]
    carries the number of recoveries the lenient parser needed ([0] on
    a clean payload). *)

val call_text : endpoint -> request -> (response * int, string) result
(** The full serialized dialogue: encode and print the request,
    {!handle_text}, {!decode_response_text} the answer. *)

(** {1 Mediator-side convenience} *)

val register_remote :
  Mediator.t ->
  source_name:string ->
  ?capabilities:Wrapper.Capability.t list ->
  format:string ->
  Xmlkit.Xml.t ->
  (unit, string) result
(** Accept a [register] message body: run the plug-in, wrap the result
    as a source, register it. (Same as {!Mediator.register_xml},
    re-exported here so the protocol module covers the full dialogue
    vocabulary.) *)

val update_remote :
  Mediator.t ->
  Xmlkit.Xml.t ->
  (Datalog.Maintain.report option, string) result
(** Accept an [update-facts] message body on the mediator side: decode
    it and hand the molecules to {!Mediator.update_source}, which
    updates the named source's store and incrementally maintains the
    live materialization. *)
