(** kindlint over a whole federation.

    {!Mediator.register_source} already applies the source-local checks
    (per the {!Mediator.lint_policy}); this module runs every analysis
    pass over the assembled mediator — the shape [kindctl lint --demo]
    and the registration-time policy both build on:

    - pass 5 on the domain map plus the semantic index's anchors;
    - pass 3 on each source's conceptual model (domain-map concepts
      count as known classes) and on the IVDs;
    - passes 1–2 on the federation program ({!Mediator.program}),
      i.e. exactly what {!Mediator.materialize} would hand the engine;
    - pass 4 on each IVD body and each source's query templates;
    - pass 6 (type/emptiness inference, widened over the domain map's
      concept cones) on the compiled federation program;
    - pass 7 (source provenance) on the program and the IVDs, plus the
      composed {b infeasible-provenance} check: a view whose every
      source-bearing subgoal is infeasible under the declared
      capabilities can never receive source data;
    - passes 9–10 (semantic containment and skolem-safety, widened over
      the domain map) on the compiled federation program, plus the
      cross-view {b redundant-ivd} check: a view contained (modulo the
      domain map) in the views installed before it adds no answers.

    Nothing is materialized and no wrapper is contacted. *)

val class_targets : Mediator.t -> string -> (string * string) list
(** Resolve a class name as the conjunctive planner would: a namespaced
    ['SRC.cls'] to its own source, a domain-map concept to the
    [(source, source-local class)] pairs covering it through the
    semantic index. Unknown names resolve to []. *)

val query :
  Mediator.t -> ?label:string -> Flogic.Molecule.lit list ->
  Analysis.Diagnostic.t list
(** Capability feasibility (pass 4) and unknown-namespace references
    (pass 7) of one conjunctive query against the registered sources,
    without running it. *)

val provenance : Mediator.t -> Analysis.Prov_lint.result
(** Per-view source provenance of the installed IVDs: which registered
    sources can transitively reach each derived predicate
    ([kindctl provenance] renders this). *)

val blast_radius : Mediator.t -> (string * string list) list
(** Per registered source, the derived predicates it can transitively
    reach in the federation program (pass 7's provenance inference) —
    the static counterpart of {!Mediator.completeness}'s [suspect] set:
    losing that source can deplete exactly these extents.
    [kindctl health] renders this next to the live counters. *)

val federation : Mediator.t -> Analysis.Diagnostic.t list
(** All passes — including pass 8 (cardinality/cost hazards, seeded
    with {!Mediator.cardinality_seed} and budgeted by
    [config.cost_budget]) — {!Analysis.Diagnostic.normalize}d (dedup +
    deterministic order) then sorted by severity. *)

val cost : ?budget:int -> Mediator.t -> Analysis.Cost_lint.report
(** The full pass-8 analysis of the federation program: per-predicate
    cardinality intervals, per-rule join orders and estimates, and the
    hazard diagnostics ([kindctl cost --demo] renders this). [budget]
    overrides [config.cost_budget]. *)
