(** Source namespacing.

    At the mediator, the classes, relations and rule-defined predicates
    of a registered source [S] are qualified as [S.name] — the paper's
    ['NCMIR'.protein] notation — so that two laboratories can both
    export a [neuron] class without clashing, while domain-map concepts
    (unqualified) remain shared. *)

val qualify : source:string -> string -> string
(** ["NCMIR" "protein" -> "NCMIR.protein"]. *)

val split : string -> (string * string) option
(** Inverse: ["NCMIR.protein" -> Some ("NCMIR", "protein")]. *)

val schema : source:string -> Gcm.Schema.t -> Gcm.Schema.t
(** Qualify every class name, relation name, rule predicate and
    internal reference of the schema. References to names not defined
    by the schema (domain-map concepts, shared value classes like
    [string]) are left unqualified. *)

val rule :
  source:string -> own:string list -> Flogic.Molecule.rule -> Flogic.Molecule.rule
(** Qualify the names in [own] wherever they occur in class or
    relation position (and as derived predicate names). *)
