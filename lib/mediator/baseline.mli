(** The structural (XML-level) mediation baseline.

    This is the architecture the paper argues against for multiple-world
    scenarios: wrappers still normalise syntax, but the mediator sees
    only uninterpreted structure — no conceptual models, no domain map,
    no semantic index, no capability-driven pushdown. Consequently a
    query must: contact {e every} source, ship whole classes, and join
    at the mediator on string equality; and with no domain map there is
    no lub root and no [has_a_star] rollup — the "distribution" stays a
    flat per-location table.

    The F2/Q5 benches run this side by side with {!Section5} to
    reproduce the architectural claim: the model-based mediator touches
    only the relevant sources and ships a fraction of the tuples, with
    the gap growing linearly in the number of registered sources. *)

type outcome = {
  rows : (string * string * float) list;
      (** (protein, location, amount) surviving the mediator-side join *)
  proteins : string list;
  per_location : (string * float) list;  (** flat sums, no rollup *)
  sources_contacted : string list;
  tuples_moved : int;
  duration_ms : float;
}

val calcium_binding_query :
  ?spec:Section5.spec ->
  Mediator.t ->
  organism:string ->
  transmitting_compartment:string ->
  ion:string ->
  unit ->
  (outcome, string) result
(** Same question as {!Section5.calcium_binding_query}, answered the
    structural way. The answers (protein sets, per-location amounts)
    must agree with the model-based plan; only the cost differs. *)
