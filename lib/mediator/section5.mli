(** The Section 5 walk-through: planning and executing

    "What is the distribution of those calcium-binding proteins that
    are found in neurons that receive signals from parallel fibers in
    rat brains?"

    The four steps of the paper's query plan, instrumented:

    + push selections (rat, parallel fiber) to the neurotransmission
      source and get bindings for the receiving neuron/compartment;
    + using the domain map, {e select sources} that have data anchored
      for those neuron/compartment pairs;
    + push the location selections to the selected sources and retrieve
      only the proteins found there (filtered to the requested ion);
    + compute the lub of the locations as the distribution root and
      evaluate the [protein_distribution] view by downward closure
      along [has_a_star].

    The mediator's {!Mediator.config} ablations change how each step
    runs (broadcast instead of index, scan+filter instead of pushdown,
    whole-map root instead of lub); the per-step reports expose the
    difference. *)

type spec = {
  nt_class : string;            (** neurotransmission class name *)
  organism_field : string;
  trans_comp_field : string;
  recv_neuron_field : string;
  recv_comp_field : string;
  protein_amount_class : string;
  protein_name_field : string;
  location_field : string;
  amount_field : string;
  protein_class : string;       (** protein metadata class *)
  name_field : string;
  ion_field : string;
}

val default_spec : spec
(** Field names matching {!Neuro}'s sources (and the paper's class
    signatures). *)

type step_report = {
  label : string;
  duration_ms : float;
  tuples : int;      (** tuples shipped from wrappers in this step *)
  note : string;
}

type outcome = {
  locations : string list;       (** step-1 neuron/compartment bindings *)
  sources_contacted : string list;  (** step-2 selection *)
  proteins : string list;           (** step-3 result *)
  root : string option;             (** step-4 lub *)
  distributions : (string * Aggregate.tree) list;
  steps : step_report list;
  tuples_moved : int;
}

val calcium_binding_query :
  ?spec:spec ->
  Mediator.t ->
  organism:string ->
  transmitting_compartment:string ->
  ion:string ->
  unit ->
  (outcome, string) result

val protein_distribution :
  ?spec:spec ->
  Mediator.t ->
  protein:string ->
  organism:string ->
  root:string ->
  (Aggregate.tree, string) result
(** Example 4 in isolation: the mediated [protein_distribution] view
    for one protein / organism / distribution root. *)

val pp_outcome : Format.formatter -> outcome -> unit
