module Term = Logic.Term
module Atom = Logic.Atom
module Literal = Logic.Literal
module Rule = Logic.Rule
module Cq = Datalog.Cq

type view = { vname : string; definition : Cq.t }

let view ~name definition = { vname = name; definition }

let invert v =
  let q = v.definition in
  let head_vars = Atom.vars q.Cq.head in
  let head_args = List.map Term.var head_vars in
  let view_atom = Atom.make v.vname q.Cq.head.Atom.args in
  (* existential variables (in the body but not the head) are
     skolemised over the head variables *)
  let skolemise t =
    match t with
    | Term.Var x when not (List.mem x head_vars) ->
      Term.app (Printf.sprintf "f_%s_%s" v.vname x) head_args
    | t -> t
  in
  List.map
    (fun (body_atom : Atom.t) ->
      Rule.make
        (Atom.make body_atom.Atom.pred (List.map skolemise body_atom.Atom.args))
        [ Literal.Pos view_atom ])
    q.Cq.body

let answer ~views ~extensions goal =
  let rules = List.concat_map invert views in
  let p = Datalog.Program.make_exn rules in
  let db = Datalog.Engine.materialize p extensions in
  Datalog.Engine.answers db goal
  |> List.filter (fun tuple ->
         (* certain answers are the skolem-free ones *)
         List.for_all
           (fun t -> match t with Term.App _ -> false | _ -> true)
           tuple)

let inversion_obstacle (r : Flogic.Molecule.rule) =
  let rec check_lits = function
    | [] -> None
    | Flogic.Molecule.Neg _ :: _ -> Some "negation in the view body"
    | Flogic.Molecule.Agg _ :: _ ->
      Some "aggregation in the view body (Example 4's aggregate)"
    | Flogic.Molecule.Assign _ :: _ -> Some "arithmetic in the view body"
    | Flogic.Molecule.Cmp _ :: rest -> check_lits rest
    | Flogic.Molecule.Pos m :: rest -> (
      match m with
      | Flogic.Molecule.Pred a
        when List.mem a.Atom.pred
               [ "tc_isa"; "dc_role"; "has_a_star" ] ->
        Some
          (Printf.sprintf
             "recursion: %s is a recursively defined domain-map relation"
             a.Atom.pred)
      | _ -> check_lits rest)
  in
  match check_lits r.Flogic.Molecule.body with
  | Some obstacle -> Some obstacle
  | None ->
    (* multi-head rules (object molecules) also fall outside plain CQ
       views *)
    if List.length r.Flogic.Molecule.heads > 1 then
      Some "object-molecule head (asserts several atoms at once)"
    else None
