module Term = Logic.Term
module Molecule = Flogic.Molecule
module Signature = Flogic.Signature
module Dmap = Domain_map.Dmap
module Index = Domain_map.Index
module Source = Wrapper.Source

type lint_policy = Lint_off | Lint_warn | Lint_reject

type config = {
  dl_mode : Dl.Translate.mode;
  use_semantic_index : bool;
  pushdown : bool;
  use_lub : bool;
  inheritance : bool;
  lint : lint_policy;
  prune_dead : bool;
  minimize : bool;
  runtime : Runtime.policy;
  cost_budget : int option;
  domains : int;
  durability : Datalog.Engine.durability option;
}

let default_config =
  {
    dl_mode = Dl.Translate.Assertion;
    use_semantic_index = true;
    pushdown = true;
    use_lub = true;
    inheritance = false;
    lint = Lint_warn;
    prune_dead = false;
    minimize = false;
    runtime = Runtime.default_policy;
    cost_budget = None;
    domains = 0;
    durability = None;
  }

let env_durability =
  lazy
    (match Sys.getenv_opt "KIND_DURABLE_DIR" with
    | Some dir when dir <> "" -> Some (Datalog.Engine.durability ~dir ())
    | _ -> None)

module SSet = Set.Make (String)

type cache_stats = {
  hits : int;
  misses : int;
  invalidated : int;
  maintained : int;
  rebuilt : int;
}

let empty_cache_stats =
  { hits = 0; misses = 0; invalidated = 0; maintained = 0; rebuilt = 0 }

type cache_entry = { answers : Logic.Subst.t list; reads : SSet.t }

type completeness = {
  contributed : string list;
  skipped : (string * string) list;
  suspect : string list;
}

type t = {
  mutable dmap : Dmap.t;
  mutable index : Index.t;
  mutable sources : Source.t list;  (* registration order *)
  mutable ivds : Molecule.rule list;
  mutable sg : Signature.t;
  mutable cache : Datalog.Database.t option;
  mutable maint : Datalog.Maintain.t option;
      (* incremental-maintenance handle over [cache]; [None] when the
         materialization came through the well-founded fallback *)
  mutable last_maintenance : Datalog.Maintain.report option;
  qcache : (string, cache_entry) Hashtbl.t;
  mutable cstats : cache_stats;
  mutable warnings : string list;
  mutable cfg : config;
  plugins : Cm_plugins.Plugin.registry;
  channels : (string, Wrapper.Fault.t) Hashtbl.t;
  runtime : Runtime.t;
  mutable last_completeness : completeness option;
  mutable degraded : int;  (* queries answered while sources were skipped *)
}

let create ?(config = default_config) dmap =
  {
    dmap;
    index = Index.empty;
    sources = [];
    ivds = [];
    sg = Signature.empty;
    cache = None;
    maint = None;
    last_maintenance = None;
    qcache = Hashtbl.create 64;
    cstats = empty_cache_stats;
    warnings = [];
    cfg = config;
    plugins = Cm_plugins.Defaults.registry ();
    channels = Hashtbl.create 8;
    runtime = Runtime.create ~policy:config.runtime ();
    last_completeness = None;
    degraded = 0;
  }

let invalidate t =
  let stale = Hashtbl.length t.qcache in
  Hashtbl.reset t.qcache;
  t.cstats <- { t.cstats with invalidated = t.cstats.invalidated + stale };
  t.cache <- None;
  t.maint <- None

(* Drop exactly the cached answers that read a predicate whose extent a
   maintenance pass changed. *)
let invalidate_touched t touched =
  let ts = SSet.of_list touched in
  let stale =
    Hashtbl.fold
      (fun k (e : cache_entry) acc ->
        if SSet.exists (fun p -> SSet.mem p ts) e.reads then k :: acc else acc)
      t.qcache []
  in
  List.iter (Hashtbl.remove t.qcache) stale;
  t.cstats <-
    { t.cstats with invalidated = t.cstats.invalidated + List.length stale }

let record_maintenance t (rep : Datalog.Maintain.report) =
  t.last_maintenance <- Some rep;
  t.cstats <- { t.cstats with maintained = t.cstats.maintained + 1 };
  invalidate_touched t rep.Datalog.Maintain.touched

let cache_stats t = t.cstats
let last_maintenance t = t.last_maintenance

let effective_durability t =
  match t.cfg.durability with
  | Some _ as d -> d
  | None -> Lazy.force env_durability

let durable_of ?dir t =
  match dir with
  | Some dir -> Some (Datalog.Engine.durability ~dir ())
  | None -> effective_durability t

(* Lift one declared store atom to a conceptual-level molecule, the
   namespacing step of Figure 3's "lifting". *)
let lift_atom ~source sg (a : Logic.Atom.t) =
  let d = Flogic.Compile.declared in
  match a.Logic.Atom.pred, a.Logic.Atom.args with
  | p, [ x; c ] when p = d Flogic.Compile.isa_p ->
    Option.map
      (fun c -> Molecule.Isa (x, Term.sym (Namespace.qualify ~source c)))
      (Term.as_string c)
  | p, [ x; m; v ] when p = d Flogic.Compile.meth_val_p ->
    Option.map (fun m -> Molecule.Meth_val (x, m, v)) (Term.as_string m)
  | rel, args -> (
    match Signature.attributes sg rel with
    | Some attrs when List.length attrs = List.length args ->
      Some
        (Molecule.Rel_val
           (Namespace.qualify ~source rel, List.combine attrs args))
    | _ -> None)

let source_facts src =
  let name = Source.name src in
  let store = Source.store src in
  let sg = Wrapper.Store.signature store in
  Datalog.Database.all_facts (Wrapper.Store.database store)
  |> List.filter_map (lift_atom ~source:name sg)

(* anchor rule: X : concept :- X : 'SRC.cls'. *)
let anchor_rule ~cm_class ~concept =
  Molecule.rule
    (Molecule.Isa (Term.var "X", Term.sym concept))
    [ Molecule.Pos (Molecule.Isa (Term.var "X", Term.sym cm_class)) ]

(* Absorb freshly added molecule rules into a live materialization by
   growing the maintenance handle; anything that prevents that (nothing
   materialized, well-founded fallback, compile failure, lost
   stratification) degrades to a full invalidation. *)
let absorb_rules t mol_rules =
  match t.cache, t.maint with
  | Some _, Some h -> (
    match
      try Ok (Flogic.Compile.rules t.sg mol_rules)
      with Flogic.Compile.Compile_error _ -> Error ()
    with
    | Error () -> invalidate t
    | Ok dl_rules -> (
      match Datalog.Maintain.extend_rules h dl_rules with
      | Ok rep -> record_maintenance t rep
      | Error _ -> invalidate t))
  | _ -> invalidate t

let lift_class _t ~source cls = Namespace.qualify ~source cls

(* ------------------------------------------------------------------ *)
(* Fault channels: every query-time fetch from a registered source goes
   through a Wrapper.Fault channel under the Runtime retry/breaker
   policies. Reliable unless a plan is installed. *)

let channel t src =
  let name = Source.name src in
  match Hashtbl.find_opt t.channels name with
  | Some ch -> ch
  | None ->
    let ch = Wrapper.Fault.wrap src in
    Hashtbl.replace t.channels name ch;
    ch

let find_channel t name = Hashtbl.find_opt t.channels name

(* ------------------------------------------------------------------ *)
(* Durability: the engine half (checkpoint + WAL) goes through
   Datalog.Snapshot/Wal; the federation half (breakers, channels,
   clocks, ledger) through Durable. *)

let federation_state t =
  let sources =
    List.map
      (fun src ->
        let name = Source.name src in
        let h = Runtime.health t.runtime name in
        let ch = channel t src in
        {
          Durable.name;
          state = h.Runtime.state;
          open_until = h.Runtime.open_until;
          consecutive = h.Runtime.consecutive;
          calls = h.Runtime.calls;
          failures = h.Runtime.failures;
          retries = h.Runtime.retries;
          trips = h.Runtime.trips;
          absorbed = h.Runtime.absorbed;
          quarantined = h.Runtime.quarantined;
          transitions = Runtime.transitions h;
          plan = Wrapper.Fault.plan ch;
          channel_calls = Wrapper.Fault.calls ch;
          channel_crashed = Wrapper.Fault.crashed ch;
          channel_stale = Wrapper.Fault.stale ch;
          channel_clock = Wrapper.Fault.clock ch;
          capabilities =
            List.map
              (Format.asprintf "%a" Wrapper.Capability.pp)
              (Wrapper.Fault.capabilities ch);
        })
      t.sources
  in
  {
    Durable.clock = Runtime.clock t.runtime;
    degraded = t.degraded;
    completeness =
      Option.map
        (fun c -> (c.contributed, c.skipped, c.suspect))
        t.last_completeness;
    sources;
  }

(* checkpoint the maintained materialization + federation state, and
   compact the WAL (a fresh checkpoint subsumes every logged batch).
   Checkpoint and reset carry a fresh generation so a crash between the
   two leaves a detectably stale log instead of one recovery would
   replay over a state it never belonged to. *)
let write_checkpoint t (d : Datalog.Engine.durability) h =
  let gen =
    Datalog.Wal.generation d.Datalog.Engine.fs ~path:Datalog.Engine.wal_file
    + 1
  in
  let bytes =
    Datalog.Snapshot.write d.Datalog.Engine.fs
      ~path:Datalog.Engine.checkpoint_file
      {
        Datalog.Snapshot.db = Datalog.Maintain.db h;
        edb = Datalog.Maintain.edb h;
        counters = [ ("generation", float_of_int gen) ];
      }
  in
  Datalog.Wal.reset d.Datalog.Engine.fs ~path:Datalog.Engine.wal_file ~gen;
  Durable.save d.Datalog.Engine.fs (federation_state t);
  bytes

(* Static checks applied at registration time, per the [lint] policy:
   the source's own schema conformance, anchors into the domain map,
   and query-template hygiene. Whole-federation analysis (IVD
   feasibility, stratification of the combined program) lives in
   {!Lint.federation} — it needs every source registered first. *)
let registration_diags t src =
  let module D = Analysis.Diagnostic in
  let name = Source.name src in
  let anchor_diags =
    List.filter_map
      (fun (cls, concept, _context) ->
        if Dmap.mem t.dmap concept then None
        else
          Some
            (D.make ~severity:D.Error ~pass:"domain-map"
               ~code:"unknown-anchor-concept" ~location:(D.Concept concept)
               (Printf.sprintf
                  "source %s anchors class %s at %s, which is not a concept \
                   of the domain map"
                  name cls concept)
               ~hint:
                 "the anchored data can never be selected; extend the domain \
                  map or fix the anchor"))
      (Source.anchors src)
  in
  Analysis.Schema_lint.lint
    ~known_class:(fun c -> Dmap.mem t.dmap c)
    (Source.schema src)
  @ anchor_diags
  @ Analysis.Cap_lint.lint_templates (Analysis.Cap_lint.of_source src)

let register_source t src =
  let name = Source.name src in
  if List.exists (fun s -> String.equal (Source.name s) name) t.sources then
    Error (Printf.sprintf "source %s is already registered" name)
  else
    match Gcm.Schema.validate (Source.schema src) with
    | Error e -> Error e
    | Ok () ->
      let module D = Analysis.Diagnostic in
      let diags =
        if t.cfg.lint = Lint_off then [] else registration_diags t src
      in
      let render d = Format.asprintf "%a" D.pp d in
      if t.cfg.lint = Lint_reject && D.errors diags <> [] then
        Error
          (Printf.sprintf "source %s rejected by lint:\n%s" name
             (String.concat "\n" (List.map render (D.errors diags))))
      else (
      t.warnings <-
        t.warnings
        @ List.map render
            (List.filter (fun (d : D.t) -> d.D.severity <> D.Info) diags);
      let ns_schema = Namespace.schema ~source:name (Source.schema src) in
      match
        try Ok (Signature.merge t.sg (Gcm.Schema.signature ns_schema))
        with Invalid_argument e -> Error e
      with
      | Error e -> Error e
      | Ok sg ->
        t.sg <- sg;
        t.sources <- t.sources @ [ src ];
        ignore (channel t src);
        (* data arriving at registration time is fresh by definition *)
        (match t.last_completeness with
        | Some c ->
          t.last_completeness <-
            Some { c with contributed = c.contributed @ [ name ] }
        | None -> ());
        List.iter
          (fun (cls, concept, context) ->
            t.index <-
              Index.add t.index ~source:name
                ~cm_class:(Namespace.qualify ~source:name cls)
                ~concept ~context ())
          (Source.anchors src);
        (* registration is a program delta: the source's schema rules,
           its anchor rules and its lifted data, absorbed incrementally
           when something is already materialized *)
        absorb_rules t
          (Gcm.Schema.to_rules ns_schema
          @ List.map
              (fun (cls, concept, _context) ->
                anchor_rule
                  ~cm_class:(Namespace.qualify ~source:name cls)
                  ~concept)
              (Source.anchors src)
          @ List.map Molecule.fact (source_facts src));
        Ok ())

let register_xml t ~format ?capabilities ~source_name doc =
  match Cm_plugins.Plugin.translate t.plugins ~format doc with
  | Error e -> Error e
  | Ok tr ->
    register_source t (Source.of_translation ~name:source_name ?capabilities tr)

let extend_dmap t axioms =
  match Domain_map.Register.register t.dmap axioms with
  | Error e -> Error e
  | Ok out ->
    t.dmap <- out.Domain_map.Register.dmap;
    t.warnings <- t.warnings @ out.Domain_map.Register.warnings;
    invalidate t;
    Ok ()

(* Provenance lint of freshly added views, per the [lint] policy: a
   federation IVD must not reference unknown namespaces, and a view no
   registered source can reach is worth a warning (pass 7). *)
let ivd_diags t rules =
  if t.cfg.lint = Lint_off then []
  else
    (Analysis.Prov_lint.analyze ~require_sources:true
       ~sources:(List.map Source.name t.sources)
       ~class_sources:(fun c ->
         if Dmap.mem t.dmap c then
           Index.sources_at t.dmap t.index ~concept:c
         else [])
       rules)
      .Analysis.Prov_lint.diags

let dmap t = t.dmap
let index t = t.index
let sources t = t.sources

let find_source t name =
  List.find_opt (fun s -> String.equal (Source.name s) name) t.sources

let config t = t.cfg

let set_config t cfg =
  if t.cfg <> cfg then begin
    t.cfg <- cfg;
    Runtime.set_policy t.runtime cfg.runtime;
    invalidate t
  end

let signature t = t.sg
let ivds t = t.ivds
let plugins t = t.plugins
let translation_warnings t = t.warnings

(* ------------------------------------------------------------------ *)
(* The mediated object base *)

let anchor_rules t =
  List.map
    (fun (a : Index.anchor) ->
      anchor_rule ~cm_class:a.Index.cm_class ~concept:a.Index.concept)
    (Index.anchors t.index)

let build_program_with t ~data =
  let dm_prog, warnings =
    Domain_map.To_program.program ~mode:t.cfg.dl_mode t.dmap
  in
  t.warnings <- t.warnings @ warnings;
  let schema_rules =
    List.concat_map
      (fun src ->
        Gcm.Schema.to_rules (Namespace.schema ~source:(Source.name src) (Source.schema src)))
      t.sources
  in
  let rules =
    schema_rules @ anchor_rules t
    @ List.map Molecule.fact data
    @ t.ivds
  in
  Flogic.Fl_program.merge dm_prog
    (Flogic.Fl_program.make ~inheritance:t.cfg.inheritance ~signature:t.sg rules)

(* the fault-free program: data read straight from the stores, no
   channels — what static analysis (Lint.federation) looks at *)
let build_program t =
  build_program_with t ~data:(List.concat_map source_facts t.sources)

let program t = build_program t

(* Trusted cardinality caps for the cost analysis ({!Analysis.Card}):
   store counts for qualified source relations (the registration
   metadata also surfaced by [Cap_lint.of_source]) and domain-map cone
   sizes for the closure predicates — tc_isa holds exactly one pair per
   (concept, cone member). *)
let cardinality_seed t =
  let module Card = Analysis.Card in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun src ->
      let store = Source.store src in
      let sname = Source.name src in
      List.iter
        (fun r ->
          Hashtbl.replace tbl
            (Namespace.qualify ~source:sname r)
            (Wrapper.Store.tuple_count store ~rel:r))
        (Wrapper.Store.relations store))
    t.sources;
  let concepts = Dmap.concepts t.dmap in
  let cone_pairs =
    List.fold_left
      (fun acc c -> acc + List.length (Domain_map.Closure.cones t.dmap c))
      0 concepts
  in
  let n = List.length concepts in
  Hashtbl.replace tbl "dm_isa" cone_pairs;
  Hashtbl.replace tbl "tc_isa" cone_pairs;
  Hashtbl.replace tbl "has_a_star" (n * n);
  fun p ->
    Option.map
      (fun hi -> { Card.lo = 0; hi = Some hi })
      (Hashtbl.find_opt tbl p)

(* Cost lint of candidate views, against the whole federation program:
   a view is costed in context (its body predicates' extents come from
   the sources and the closure), but only diagnostics on the candidate
   rules themselves are reported. Active only when [cost_budget] is
   configured — the budget also escalates over-budget estimates to
   reject-level errors. *)
let ivd_cost_diags t rules =
  match (t.cfg.lint, t.cfg.cost_budget) with
  | Lint_off, _ | _, None -> []
  | _, Some budget -> (
    let candidate = Flogic.Fl_program.add_rules (build_program t) rules in
    match Flogic.Fl_program.compile candidate with
    | Error _ -> [] (* surfaces as a compile error elsewhere *)
    | Ok dp ->
      let dl_rules = Datalog.Program.rules dp in
      let candidate_texts =
        try
          List.concat_map
            (Flogic.Compile.rule candidate.Flogic.Fl_program.signature)
            rules
          |> List.map Logic.Rule.to_string
          |> SSet.of_list
        with Flogic.Compile.Compile_error _ -> SSet.empty
      in
      Analysis.Cost_lint.lint ~budget
        ~assume_nonempty:
          (Analysis.Kindlint.open_predicate
             ~signature:candidate.Flogic.Fl_program.signature dl_rules)
        ~seed:(cardinality_seed t) dl_rules
      |> List.filter (fun (d : Analysis.Diagnostic.t) ->
             match d.Analysis.Diagnostic.location with
             | Analysis.Diagnostic.Rule { text; _ } ->
               SSet.mem text candidate_texts
             | _ -> false))

(* Pass 9 at the registration boundary: a candidate view whose every
   compiled rule is contained (modulo the domain map) in some
   already-installed view with the same head adds no answers. *)
let ivd_contain_diags t rules =
  if t.cfg.lint = Lint_off || t.ivds = [] || rules = [] then []
  else
    let module D = Analysis.Diagnostic in
    match
      try Ok (Flogic.Compile.rules t.sg rules, Flogic.Compile.rules t.sg t.ivds)
      with Flogic.Compile.Compile_error _ -> Error ()
    with
    | Error () -> [] (* surfaces as a compile error elsewhere *)
    | Ok (cand, against) ->
      let ctx = Analysis.Contain.make_ctx ~dm:t.dmap () in
      if cand <> [] && Analysis.Contain.redundant_view ctx ~against cand then
        [
          D.make ~severity:D.Warning ~pass:"contain" ~code:"redundant-ivd"
            ~location:D.Federation
            (Printf.sprintf
               "view (%d rule%s) is contained in the already-installed views \
                and adds no answers"
               (List.length rules)
               (if List.length rules = 1 then "" else "s"))
            ~hint:
              "every answer the view can produce is already derived; drop it \
               or generalize it";
        ]
      else []

let add_ivd t rules =
  let module D = Analysis.Diagnostic in
  t.warnings <-
    t.warnings
    @ List.map
        (Format.asprintf "%a" D.pp)
        (List.filter
           (fun (d : D.t) -> d.D.severity <> D.Info)
           (ivd_diags t rules @ ivd_cost_diags t rules
           @ ivd_contain_diags t rules));
  t.ivds <- t.ivds @ rules;
  absorb_rules t rules

let add_ivd_text t src =
  match Flogic.Fl_parser.parse_program ~signature:t.sg src with
  | Error e -> Error e
  | Ok parsed ->
    let module D = Analysis.Diagnostic in
    let errors =
      if t.cfg.lint = Lint_reject then
        D.errors
          (ivd_diags t parsed.Flogic.Fl_parser.rules
          @ ivd_cost_diags t parsed.Flogic.Fl_parser.rules)
      else []
    in
    if errors <> [] then
      Error
        (Printf.sprintf "view rejected by lint:\n%s"
           (String.concat "\n"
              (List.map (Format.asprintf "%a" D.pp) errors)))
    else begin
      t.sg <- parsed.Flogic.Fl_parser.signature;
      add_ivd t parsed.Flogic.Fl_parser.rules;
      Ok ()
    end

(* ------------------------------------------------------------------ *)
(* Graceful degradation: pull each source's data through its fault
   channel; sources the runtime gives up on are skipped, and the
   materialization proceeds without them, tagged with a completeness
   report. *)

(* Prov_lint's provenance inference, turned on the skipped sources:
   a derived predicate is suspect when some skipped source can reach
   it — its extent may be missing answers. *)
let suspect_predicates t ~skipped =
  if skipped = [] then []
  else
    let skip = SSet.of_list (List.map fst skipped) in
    let result =
      Analysis.Prov_lint.analyze
        ~sources:(List.map Source.name t.sources)
        ~class_sources:(fun c ->
          if Dmap.mem t.dmap c then Index.sources_at t.dmap t.index ~concept:c
          else [])
        (anchor_rules t @ t.ivds)
    in
    List.filter_map
      (fun (p, srcs) ->
        if List.exists (fun s -> SSet.mem s skip) srcs then Some p else None)
      result.Analysis.Prov_lint.predicates
    |> List.sort_uniq String.compare

(* Domain count for the mediator's own fan-out: an explicit config
   value wins, otherwise KIND_DOMAINS / kindctl --domains. *)
let effective_domains t =
  if t.cfg.domains > 0 then min t.cfg.domains 64 else Pool.env_domains ()

let gather_facts t =
  let fetches =
    (* Resolve the fault channel and health record for every source up
       front, on this domain: both are lazily inserted into Hashtbls,
       so the fan-out below must only touch pre-existing per-source
       state. *)
    List.map
      (fun src ->
        let ch = channel t src in
        ignore (Runtime.health t.runtime (Source.name src));
        (src, ch))
      t.sources
  in
  let outcomes =
    match Pool.get (effective_domains t) with
    | Some pool when List.length fetches > 1 ->
      (* Concurrent-start semantics: every fetch begins at the current
         virtual instant and the shared clock then advances by the
         slowest one, as if the sources were polled in parallel. Each
         task owns its source's channel and health record exclusively,
         so per-channel fault transcripts stay replay-exact, and the
         merge below is in registration order, so the completeness
         report is deterministic. *)
      let start = Runtime.clock t.runtime in
      let results =
        Pool.run_list pool
          (List.map
             (fun (src, ch) () ->
               let now = ref start in
               let r = Runtime.fetch_at t.runtime ~now ch source_facts in
               (src, r, !now - start))
             fetches)
      in
      Runtime.advance t.runtime
        (List.fold_left (fun acc (_, _, e) -> max acc e) 0 results);
      List.map (fun (src, r, _) -> (src, r)) results
    | _ ->
      List.map
        (fun (src, ch) -> (src, Runtime.fetch t.runtime ch source_facts))
        fetches
  in
  let data, contributed, skipped =
    List.fold_left
      (fun (data, contributed, skipped) (src, r) ->
        match r with
        | Ok fs -> (fs :: data, Source.name src :: contributed, skipped)
        | Error reason ->
          (data, contributed, (Source.name src, reason) :: skipped))
      ([], [], []) outcomes
  in
  let skipped = List.rev skipped in
  ( List.concat (List.rev data),
    {
      contributed = List.rev contributed;
      skipped;
      suspect = suspect_predicates t ~skipped;
    } )

(* Dead-rule pruning hook for the engine (pass 6 acting, not just
   reporting): concept cones come from the domain map, and predicates
   the program itself does not define stay open so nothing reachable
   from a source is ever dropped. *)
let prune_hook t rules db =
  let cones =
    {
      Analysis.Absint.members = Domain_map.Closure.cones t.dmap;
      lub = (fun cs -> Domain_map.Lub.lub_unique t.dmap cs);
    }
  in
  Analysis.Absint.prune ~cones
    ~assume_nonempty:(Analysis.Kindlint.open_predicate ~signature:t.sg rules)
    rules db

(* Semantic minimization hook for the engine (pass 9 acting): the
   containment context is built from the domain map ONLY — program
   [sub] facts may come from sources, and a deletion could retract
   them, whereas the domain map is a mediator-level invariant no base
   delta can break. That makes the minimized rules equivalent over
   every database the handle can evolve into, which is what
   [Maintain.init ?minimize] requires. *)
let minimize_hook t =
  let ctx = Analysis.Contain.make_ctx ~dm:t.dmap () in
  Analysis.Contain.minimize ctx

let materialize t =
  match t.cache with
  | Some db -> db
  | None ->
    let data, completeness = gather_facts t in
    t.last_completeness <- Some completeness;
    let p = build_program_with t ~data in
    let prune = if t.cfg.prune_dead then Some (prune_hook t) else None in
    let minimize = if t.cfg.minimize then Some (minimize_hook t) else None in
    let db =
      match Flogic.Fl_program.compile p with
      | Error e -> invalid_arg e
      | Ok dp -> (
        match
          Datalog.Maintain.init ?prune ?minimize
            ?pool:(Pool.get (effective_domains t))
            dp
            (Datalog.Database.create ())
        with
        | Ok h ->
          t.maint <- Some h;
          Datalog.Maintain.db h
        | Error _ ->
          (* unstratified (default inheritance, or domain-map axioms in
             assertion mode, entangle negation with recursion):
             well-founded fallback, no incremental handle *)
          t.maint <- None;
          Flogic.Fl_program.run
            ~config:
              {
                Datalog.Engine.default_config with
                prune;
                minimize;
                domains = t.cfg.domains;
              }
            p)
    in
    t.cstats <- { t.cstats with rebuilt = t.cstats.rebuilt + 1 };
    t.cache <- Some db;
    (* auto-checkpoint a fresh maintained materialization; the
       well-founded fallback is not checkpointed (snapshots encode
       two-valued databases, and there is no maintenance handle to
       replay a WAL through) *)
    (match (effective_durability t, t.maint) with
    | Some d, Some h -> ignore (write_checkpoint t d h)
    | _ -> ());
    db

let query t lits =
  let db = materialize t in
  (match t.last_completeness with
  | Some { skipped = _ :: _; _ } -> t.degraded <- t.degraded + 1
  | _ -> ());
  let compiled = List.concat_map (Flogic.Compile.body_literals t.sg) lits in
  let key = String.concat " & " (List.map Logic.Literal.to_string compiled) in
  match Hashtbl.find_opt t.qcache key with
  | Some e ->
    t.cstats <- { t.cstats with hits = t.cstats.hits + 1 };
    e.answers
  | None ->
    let answers = Datalog.Engine.query db compiled in
    let reads =
      List.fold_left
        (fun acc l ->
          List.fold_left
            (fun acc (p, _) -> SSet.add p acc)
            acc (Logic.Literal.predicates l))
        SSet.empty compiled
    in
    t.cstats <- { t.cstats with misses = t.cstats.misses + 1 };
    Hashtbl.replace t.qcache key { answers; reads };
    answers

(* Figure 3's data-update arrow: a source pushes observations; the
   wrapper store is the ground truth (a later full rebuild re-reads it),
   and a live materialization absorbs the same change as a base delta. *)
let update_source t ~source ?(additions = []) ?(deletions = []) () =
  match find_source t source with
  | None ->
    Error (Printf.sprintf "Mediator.update_source: unknown source %s" source)
  | Some src -> (
    let store = Source.store src in
    let store_sg = Wrapper.Store.signature store in
    let lift ms =
      List.concat_map
        (fun m ->
          Flogic.Compile.head_atoms store_sg m
          |> List.filter_map (lift_atom ~source store_sg)
          |> List.concat_map (Flogic.Compile.head_atoms t.sg))
        ms
    in
    match
      try Ok (lift additions, lift deletions)
      with Flogic.Compile.Compile_error e -> Error e
    with
    | Error e -> Error e
    | Ok (added, removed) -> (
      List.iter (fun m -> ignore (Wrapper.Store.remove_fact store m)) deletions;
      List.iter (fun m -> Wrapper.Store.add_fact store m) additions;
      match t.cache, t.maint with
      | Some _, Some h -> (
        (* write-ahead: the lifted batch is fsync'd to the WAL before
           it is applied, so recovery replays exactly the batches that
           made it into the materialization (a torn last append belongs
           to a batch that was never applied). Only a batch [apply]
           will accept is logged — non-ground facts fail validation
           without mutating and must not poison replay. *)
        let wal =
          match effective_durability t with
          | Some d when List.for_all Logic.Atom.is_ground (added @ removed) ->
            let w =
              Datalog.Wal.open_log d.Datalog.Engine.fs
                ~path:Datalog.Engine.wal_file
            in
            Datalog.Wal.append w
              { Datalog.Wal.additions = added; deletions = removed };
            Some (d, w)
          | _ -> None
        in
        (* close the sink even when [apply] raises mid-maintenance;
           [Wal.close] is idempotent, so the rotation path's early
           close composes with the finalizer *)
        Fun.protect
          ~finally:(fun () ->
            match wal with
            | Some (_, w) -> Datalog.Wal.close w
            | None -> ())
        @@ fun () ->
        match
          Datalog.Maintain.apply h
            (Datalog.Maintain.delta ~additions:added ~deletions:removed ())
        with
        | Ok rep ->
          (match wal with
          | Some (d, w) ->
            let bytes = Datalog.Wal.bytes w in
            Datalog.Wal.close w;
            if bytes > d.Datalog.Engine.wal_max_bytes then
              ignore (write_checkpoint t d h)
          | None -> ());
          record_maintenance t rep;
          Ok (Some rep)
        | Error e ->
          invalidate t;
          Error e)
      | _ ->
        invalidate t;
        Ok None))

let query_text t src =
  match Flogic.Fl_parser.parse_query ~signature:t.sg src with
  | Error e -> Error e
  | Ok lits -> Ok (query t lits)

let holds t m = query t [ Molecule.Pos m ] <> []

let violations t = Flogic.Ic.violations (materialize t)
let consistent t = violations t = []

let select_sources t ~concepts =
  if t.cfg.use_semantic_index then
    Index.sources_for t.dmap t.index ~concepts
  else List.map Source.name t.sources

let select_sources_for_pairs t ~pairs =
  if t.cfg.use_semantic_index then
    Index.sources_for_pairs t.dmap t.index ~pairs
  else List.map Source.name t.sources

(* ------------------------------------------------------------------ *)
(* The fault-tolerance surface *)

let runtime t = t.runtime
let degraded_queries t = t.degraded

let set_fault_plan t ~source plan =
  match find_source t source with
  | None -> Error (Printf.sprintf "Mediator.set_fault_plan: unknown source %s" source)
  | Some src ->
    Hashtbl.replace t.channels source (Wrapper.Fault.wrap ~plan src);
    invalidate t;
    Ok ()

let fault_channel t source = find_channel t source

let capabilities_of t source =
  match find_source t source with
  | None -> []
  | Some src -> (
    match find_channel t source with
    | Some ch -> Wrapper.Fault.capabilities ch
    | None -> Source.capabilities src)

let fetch t ~source f =
  match find_source t source with
  | None -> Error (Printf.sprintf "Mediator.fetch: unknown source %s" source)
  | Some src -> Runtime.fetch t.runtime (channel t src) f

let completeness t =
  ignore (materialize t);
  match t.last_completeness with
  | Some c -> c
  | None ->
    (* unreachable after materialize, but keep it total *)
    { contributed = List.map Source.name t.sources; skipped = []; suspect = [] }

type report = { answers : Logic.Subst.t list; completeness : completeness }

let query_report t lits =
  let answers = query t lits in
  { answers; completeness = completeness t }

let health t =
  List.map
    (fun src ->
      let name = Source.name src in
      (name, Runtime.health t.runtime name))
    t.sources

(* Figure 3 again: a quarantined source comes back by re-registering.
   The schema and anchors are already installed, so revival re-opens a
   pristine channel, lifts the quarantine, and replays the source's
   current data into the live materialization as a registration delta. *)
let revive_source t source =
  match find_source t source with
  | None ->
    Error (Printf.sprintf "Mediator.revive_source: unknown source %s" source)
  | Some src ->
    Hashtbl.replace t.channels source (Wrapper.Fault.wrap src);
    Runtime.revive t.runtime source;
    let was_skipped =
      match t.last_completeness with
      | Some c -> List.mem_assoc source c.skipped
      | None -> false
    in
    if was_skipped then begin
      (* answers cached while this source was skipped may be missing
         its tuples even when absorbing its data leaves their read
         extents unchanged (e.g. another source already proved the same
         facts) — drop everything the revived source can reach, plus
         its own namespaced predicates *)
      let reachable = suspect_predicates t ~skipped:[ (source, "revived") ] in
      let prefix = source ^ "." in
      let is_stale (e : cache_entry) =
        SSet.exists
          (fun p ->
            List.mem p reachable
            || String.length p > String.length prefix
               && String.sub p 0 (String.length prefix) = prefix)
          e.reads
      in
      let stale =
        Hashtbl.fold
          (fun k e acc -> if is_stale e then k :: acc else acc)
          t.qcache []
      in
      List.iter (Hashtbl.remove t.qcache) stale;
      t.cstats <-
        {
          t.cstats with
          invalidated = t.cstats.invalidated + List.length stale;
        };
      (match t.cache with
      | Some _ -> absorb_rules t (List.map Molecule.fact (source_facts src))
      | None -> ());
      match t.last_completeness with
      | Some c ->
        let skipped = List.remove_assoc source c.skipped in
        t.last_completeness <-
          Some
            {
              contributed = c.contributed @ [ source ];
              skipped;
              suspect = suspect_predicates t ~skipped;
            }
      | None -> ()
    end;
    Ok ()

(* ------------------------------------------------------------------ *)
(* Durable checkpoint / recovery *)

let checkpoint ?dir t =
  match durable_of ?dir t with
  | None ->
    Error
      "Mediator.checkpoint: no durability configured (set \
       config.durability, pass ~dir, or KIND_DURABLE_DIR)"
  | Some d -> (
    ignore (materialize t);
    match t.maint with
    | None ->
      Error
        "Mediator.checkpoint: the materialization came through the \
         well-founded fallback (snapshots encode two-valued databases \
         only)"
    | Some h -> Ok (write_checkpoint t d h))

let restore_federation t (st : Durable.state) =
  Runtime.advance t.runtime (st.Durable.clock - Runtime.clock t.runtime);
  t.degraded <- st.Durable.degraded;
  t.last_completeness <-
    Option.map
      (fun (contributed, skipped, suspect) -> { contributed; skipped; suspect })
      st.Durable.completeness;
  List.iter
    (fun (s : Durable.source_state) ->
      match find_source t s.Durable.name with
      | None ->
        t.warnings <-
          t.warnings
          @ [
              Printf.sprintf
                "recover: federation state names source %s, which is not \
                 re-registered; its breaker state was dropped"
                s.Durable.name;
            ]
      | Some src ->
        let h = Runtime.health t.runtime s.Durable.name in
        h.Runtime.state <- s.Durable.state;
        h.Runtime.open_until <- s.Durable.open_until;
        h.Runtime.consecutive <- s.Durable.consecutive;
        h.Runtime.calls <- s.Durable.calls;
        h.Runtime.failures <- s.Durable.failures;
        h.Runtime.retries <- s.Durable.retries;
        h.Runtime.trips <- s.Durable.trips;
        h.Runtime.absorbed <- s.Durable.absorbed;
        h.Runtime.quarantined <- s.Durable.quarantined;
        h.Runtime.transitions <- List.rev s.Durable.transitions;
        Hashtbl.replace t.channels s.Durable.name
          (Wrapper.Fault.restore ~plan:s.Durable.plan
             ~calls:s.Durable.channel_calls ~crashed:s.Durable.channel_crashed
             ~stale:s.Durable.channel_stale ~clock:s.Durable.channel_clock src))
    st.Durable.sources

let recover ?dir t =
  match durable_of ?dir t with
  | None ->
    Error
      "Mediator.recover: no durability configured (set config.durability, \
       pass ~dir, or KIND_DURABLE_DIR)"
  | Some d -> (
    match
      Datalog.Snapshot.read d.Datalog.Engine.fs
        ~path:Datalog.Engine.checkpoint_file
    with
    | Error e -> Error ("Mediator.recover: " ^ e)
    | Ok None -> Ok false
    | Ok (Some snap) -> (
      (* the program is rebuilt from the re-registered federation
         topology; the checkpoint's base database carries the lifted
         source data, so no gather runs *)
      let p = build_program_with t ~data:[] in
      match Flogic.Fl_program.compile p with
      | Error e -> Error ("Mediator.recover: " ^ e)
      | Ok dp -> (
        match
          Datalog.Maintain.of_materialized
            ?pool:(Pool.get (effective_domains t))
            ~edb:snap.Datalog.Snapshot.edb dp snap.Datalog.Snapshot.db
        with
        | Error e -> Error ("Mediator.recover: " ^ e)
        | Ok h -> (
          match
            Datalog.Wal.replay d.Datalog.Engine.fs
              ~path:Datalog.Engine.wal_file
          with
          | Error e -> Error ("Mediator.recover: " ^ e)
          | Ok (wal_gen, entries, _tail) -> (
            (* a torn tail is a batch whose append never completed: it
               was not applied pre-crash, so dropping it is the
               pre-batch state *)
            let ckpt_gen =
              match
                List.assoc_opt "generation" snap.Datalog.Snapshot.counters
              with
              | Some v -> int_of_float v
              | None -> 0
            in
            (* mismatched generations: the crash fell between a
               checkpoint write and its log reset, so the surviving
               entries belong to the previous checkpoint — use the
               checkpoint alone and repair the pairing on disk *)
            let entries =
              if wal_gen = ckpt_gen then entries
              else begin
                Datalog.Wal.reset d.Datalog.Engine.fs
                  ~path:Datalog.Engine.wal_file ~gen:ckpt_gen;
                []
              end
            in
            (* the model is a function of the final base database, so
               the suffix replays as ONE coalesced batch — one
               propagation pass instead of one per entry *)
            let net = Datalog.Wal.coalesce entries in
            let replayed =
              if
                net.Datalog.Wal.additions = []
                && net.Datalog.Wal.deletions = []
              then Ok ()
              else
                match
                  Datalog.Maintain.apply h
                    (Datalog.Maintain.delta
                       ~additions:net.Datalog.Wal.additions
                       ~deletions:net.Datalog.Wal.deletions ())
                with
                | Ok rep ->
                  t.last_maintenance <- Some rep;
                  Ok ()
                | Error err -> Error ("Mediator.recover: replay: " ^ err)
            in
            match replayed with
            | Error e -> Error e
            | Ok () ->
              t.maint <- Some h;
              t.cache <- Some (Datalog.Maintain.db h);
              Hashtbl.reset t.qcache;
              (* the federation half: breakers resume where they were —
                 an open breaker stays open and goes half-open when its
                 cooldown lapses on the restored clock; recovery must
                 NOT revive anything *)
              (match Durable.load d.Datalog.Engine.fs with
              | Error e -> t.warnings <- t.warnings @ [ "recover: " ^ e ]
              | Ok None -> ()
              | Ok (Some st) -> restore_federation t st);
              Ok true)))))
