module Term = Logic.Term
module Molecule = Flogic.Molecule
module Signature = Flogic.Signature
module Dmap = Domain_map.Dmap
module Index = Domain_map.Index
module Source = Wrapper.Source

type config = {
  dl_mode : Dl.Translate.mode;
  use_semantic_index : bool;
  pushdown : bool;
  use_lub : bool;
  inheritance : bool;
}

let default_config =
  {
    dl_mode = Dl.Translate.Assertion;
    use_semantic_index = true;
    pushdown = true;
    use_lub = true;
    inheritance = false;
  }

type t = {
  mutable dmap : Dmap.t;
  mutable index : Index.t;
  mutable sources : Source.t list;  (* registration order *)
  mutable ivds : Molecule.rule list;
  mutable sg : Signature.t;
  mutable cache : Datalog.Database.t option;
  mutable warnings : string list;
  mutable cfg : config;
  plugins : Cm_plugins.Plugin.registry;
}

let create ?(config = default_config) dmap =
  {
    dmap;
    index = Index.empty;
    sources = [];
    ivds = [];
    sg = Signature.empty;
    cache = None;
    warnings = [];
    cfg = config;
    plugins = Cm_plugins.Defaults.registry ();
  }

let invalidate t = t.cache <- None

let lift_class _t ~source cls = Namespace.qualify ~source cls

let register_source t src =
  let name = Source.name src in
  if List.exists (fun s -> String.equal (Source.name s) name) t.sources then
    Error (Printf.sprintf "source %s is already registered" name)
  else
    match Gcm.Schema.validate (Source.schema src) with
    | Error e -> Error e
    | Ok () -> (
      let ns_schema = Namespace.schema ~source:name (Source.schema src) in
      match
        try Ok (Signature.merge t.sg (Gcm.Schema.signature ns_schema))
        with Invalid_argument e -> Error e
      with
      | Error e -> Error e
      | Ok sg ->
        t.sg <- sg;
        t.sources <- t.sources @ [ src ];
        List.iter
          (fun (cls, concept, context) ->
            t.index <-
              Index.add t.index ~source:name
                ~cm_class:(Namespace.qualify ~source:name cls)
                ~concept ~context ())
          (Source.anchors src);
        invalidate t;
        Ok ())

let register_xml t ~format ?capabilities ~source_name doc =
  match Cm_plugins.Plugin.translate t.plugins ~format doc with
  | Error e -> Error e
  | Ok tr ->
    register_source t (Source.of_translation ~name:source_name ?capabilities tr)

let extend_dmap t axioms =
  match Domain_map.Register.register t.dmap axioms with
  | Error e -> Error e
  | Ok out ->
    t.dmap <- out.Domain_map.Register.dmap;
    t.warnings <- t.warnings @ out.Domain_map.Register.warnings;
    invalidate t;
    Ok ()

let add_ivd t rules =
  t.ivds <- t.ivds @ rules;
  invalidate t

let add_ivd_text t src =
  match Flogic.Fl_parser.parse_program ~signature:t.sg src with
  | Error e -> Error e
  | Ok parsed ->
    t.sg <- parsed.Flogic.Fl_parser.signature;
    add_ivd t parsed.Flogic.Fl_parser.rules;
    Ok ()

let dmap t = t.dmap
let index t = t.index
let sources t = t.sources

let find_source t name =
  List.find_opt (fun s -> String.equal (Source.name s) name) t.sources

let config t = t.cfg

let set_config t cfg =
  if t.cfg <> cfg then begin
    t.cfg <- cfg;
    invalidate t
  end

let signature t = t.sg
let plugins t = t.plugins
let translation_warnings t = t.warnings

(* ------------------------------------------------------------------ *)
(* Lifting source data to the conceptual level *)

let source_facts src =
  let name = Source.name src in
  let store = Source.store src in
  let sg = Wrapper.Store.signature store in
  let d = Flogic.Compile.declared in
  Datalog.Database.all_facts (Wrapper.Store.database store)
  |> List.filter_map (fun (a : Logic.Atom.t) ->
         match a.Logic.Atom.pred, a.Logic.Atom.args with
         | p, [ x; c ] when p = d Flogic.Compile.isa_p ->
           Option.map
             (fun c -> Molecule.Isa (x, Term.sym (Namespace.qualify ~source:name c)))
             (Term.as_string c)
         | p, [ x; m; v ] when p = d Flogic.Compile.meth_val_p ->
           Option.map (fun m -> Molecule.Meth_val (x, m, v)) (Term.as_string m)
         | rel, args -> (
           match Signature.attributes sg rel with
           | Some attrs when List.length attrs = List.length args ->
             Some
               (Molecule.Rel_val
                  (Namespace.qualify ~source:name rel, List.combine attrs args))
           | _ -> None))

(* anchor rule: X : concept :- X : 'SRC.cls'. *)
let anchor_rules t =
  List.map
    (fun (a : Index.anchor) ->
      Molecule.rule
        (Molecule.Isa (Term.var "X", Term.sym a.Index.concept))
        [ Molecule.Pos (Molecule.Isa (Term.var "X", Term.sym a.Index.cm_class)) ])
    (Index.anchors t.index)

let build_program t =
  let dm_prog, warnings =
    Domain_map.To_program.program ~mode:t.cfg.dl_mode t.dmap
  in
  t.warnings <- t.warnings @ warnings;
  let schema_rules =
    List.concat_map
      (fun src ->
        Gcm.Schema.to_rules (Namespace.schema ~source:(Source.name src) (Source.schema src)))
      t.sources
  in
  let data = List.concat_map source_facts t.sources in
  let rules =
    schema_rules @ anchor_rules t
    @ List.map Molecule.fact data
    @ t.ivds
  in
  Flogic.Fl_program.merge dm_prog
    (Flogic.Fl_program.make ~inheritance:t.cfg.inheritance ~signature:t.sg rules)

let materialize t =
  match t.cache with
  | Some db -> db
  | None ->
    let db = Flogic.Fl_program.run (build_program t) in
    t.cache <- Some db;
    db

let query t lits =
  let db = materialize t in
  Flogic.Fl_program.query (Flogic.Fl_program.make ~signature:t.sg []) db lits

let query_text t src =
  match Flogic.Fl_parser.parse_query ~signature:t.sg src with
  | Error e -> Error e
  | Ok lits -> Ok (query t lits)

let holds t m = query t [ Molecule.Pos m ] <> []

let violations t = Flogic.Ic.violations (materialize t)
let consistent t = violations t = []

let select_sources t ~concepts =
  if t.cfg.use_semantic_index then
    Index.sources_for t.dmap t.index ~concepts
  else List.map Source.name t.sources

let select_sources_for_pairs t ~pairs =
  if t.cfg.use_semantic_index then
    Index.sources_for_pairs t.dmap t.index ~pairs
  else List.map Source.name t.sources
