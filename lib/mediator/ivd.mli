(** Integrated view definitions as mediated classes.

    Example 4 defines the mediated class [protein_distribution] whose
    instances carry [protein_name], [animal], [distribution_root] and a
    recursively aggregated [distribution]. This module computes those
    instances with the Section 5 machinery and installs them into the
    mediator's object base, so that the paper's user query

    {v answer(P, D) :- neurotransmission[organism -> 'rat'; ...],
                       D : protein_distribution[protein_name -> P;
                                                ion_bound ->> {calcium}; ...]. v}

    runs as an ordinary F-logic query over mediated classes. *)

val class_name : string
(** ["protein_distribution"]. *)

val schema_rules : Flogic.Molecule.rule list
(** Class and method-signature declarations for the mediated class. *)

val materialize_distributions :
  ?spec:Section5.spec ->
  Mediator.t ->
  organism:string ->
  ion:string ->
  root:string ->
  (int, string) result
(** Compute one [protein_distribution] instance per [ion]-binding
    protein found under [root], install the facts (including per-level
    [pd_level(D, concept, amount)] rows), and return how many instances
    were created. *)

val answer_query :
  ?spec:Section5.spec ->
  Mediator.t ->
  organism:string ->
  transmitting_compartment:string ->
  ion:string ->
  (Logic.Subst.t list, string) result
(** The paper's final query, end to end: run the Section 5 plan,
    materialize the view, and solve
    [answer(P, D)] via FL over the mediated object base. Bindings
    carry [P] (protein) and [D] (the distribution object). *)
