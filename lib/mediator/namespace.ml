module Term = Logic.Term
module Molecule = Flogic.Molecule

let qualify ~source name = source ^ "." ^ name

let split name =
  match String.index_opt name '.' with
  | Some i ->
    Some (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))
  | None -> None

let rename own source name =
  if List.mem name own then qualify ~source name else name

(* Qualify a term when it is a symbol naming an owned class/relation.
   Only applied in class/relation positions. *)
let rename_term own source t =
  match t with
  | Term.Const (Term.Sym s) -> Term.sym (rename own source s)
  | t -> t

let rec rename_molecule own source = function
  | Molecule.Isa (x, c) -> Molecule.Isa (x, rename_term own source c)
  | Molecule.Sub (c1, c2) ->
    Molecule.Sub (rename_term own source c1, rename_term own source c2)
  | Molecule.Meth_sig (c, m, d) ->
    Molecule.Meth_sig (rename_term own source c, m, rename_term own source d)
  | Molecule.Meth_val (x, m, y) -> Molecule.Meth_val (x, m, y)
  | Molecule.Rel_sig (r, avs) ->
    Molecule.Rel_sig
      (rename own source r, List.map (fun (a, c) -> (a, rename_term own source c)) avs)
  | Molecule.Rel_val (r, avs) -> Molecule.Rel_val (rename own source r, avs)
  | Molecule.Pred a ->
    (* rule-defined predicates are owned by the source *)
    Molecule.Pred
      (Logic.Atom.make (rename own source a.Logic.Atom.pred) a.Logic.Atom.args)

and rename_lit own source = function
  | Molecule.Pos m -> Molecule.Pos (rename_molecule own source m)
  | Molecule.Neg m -> Molecule.Neg (rename_molecule own source m)
  | Molecule.Cmp _ as l -> l
  | Molecule.Assign _ as l -> l
  | Molecule.Agg a ->
    Molecule.Agg
      { a with Molecule.body = List.map (rename_molecule own source) a.Molecule.body }

let rule ~source ~own (r : Molecule.rule) =
  {
    Molecule.heads = List.map (rename_molecule own source) r.Molecule.heads;
    body = List.map (rename_lit own source) r.Molecule.body;
  }

let schema ~source (s : Gcm.Schema.t) =
  let own =
    Gcm.Schema.class_names s @ Gcm.Schema.relation_names s
    @ List.map
        (fun (r : Flogic.Molecule.rule) ->
          (* predicates defined by the schema's own rules *)
          List.filter_map
            (fun h ->
              match h with
              | Molecule.Pred a
                when not (Logic.Literal.is_builtin a.Logic.Atom.pred) ->
                Some a.Logic.Atom.pred
              | _ -> None)
            r.Molecule.heads
          |> function
          | [] -> ""
          | p :: _ -> p)
        s.Gcm.Schema.rules
    |> List.filter (( <> ) "")
    |> List.sort_uniq String.compare
  in
  let q = rename own source in
  {
    Gcm.Schema.name = s.Gcm.Schema.name;
    classes =
      List.map
        (fun (c : Gcm.Schema.class_def) ->
          {
            Gcm.Schema.cname = q c.Gcm.Schema.cname;
            supers = List.map q c.Gcm.Schema.supers;
            methods = c.Gcm.Schema.methods;
          })
        s.Gcm.Schema.classes;
    relations =
      List.map
        (fun (r, avs) -> (q r, List.map (fun (a, c) -> (a, q c)) avs))
        s.Gcm.Schema.relations;
    rules = List.map (rule ~source ~own) s.Gcm.Schema.rules;
  }
