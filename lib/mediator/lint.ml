module A = Analysis
module Molecule = Flogic.Molecule
module Dmap = Domain_map.Dmap
module Index = Domain_map.Index
module Source = Wrapper.Source

let class_targets m c =
  let dm = Mediator.dmap m in
  match Namespace.split c with
  | Some (src, cls) when Mediator.find_source m src <> None -> [ (src, cls) ]
  | _ ->
    if Dmap.mem dm c then
      Index.coverage dm (Mediator.index m) ~concept:c
      |> List.map (fun (s, qcls) ->
             match Namespace.split qcls with
             | Some (s', cls) when String.equal s s' -> (s, cls)
             | _ -> (s, qcls))
    else []

let source_infos m = List.map A.Cap_lint.of_source (Mediator.sources m)

let query m ?label lits =
  A.Cap_lint.feasibility ~sources:(source_infos m)
    ~class_targets:(class_targets m) ?label lits

let federation m =
  let dm = Mediator.dmap m in
  let known_class c = Dmap.mem dm c in
  let anchors = Index.anchors (Mediator.index m) in
  let infos = source_infos m in
  let dmap_diags = A.Dmap_lint.lint ~anchors dm in
  let schema_diags =
    List.concat_map
      (fun s -> A.Schema_lint.lint ~known_class (Source.schema s))
      (Mediator.sources m)
  in
  let template_diags = List.concat_map A.Cap_lint.lint_templates infos in
  let program_diags =
    A.Kindlint.lint_program ~known_class (Mediator.program m)
  in
  let ivd_caps =
    List.concat_map
      (fun (r : Molecule.rule) ->
        A.Cap_lint.feasibility ~sources:infos ~class_targets:(class_targets m)
          ~label:(Molecule.rule_to_string r) r.Molecule.body)
      (Mediator.ivds m)
  in
  A.Diagnostic.sort
    (dmap_diags @ schema_diags @ template_diags @ program_diags @ ivd_caps)
