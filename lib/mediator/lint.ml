module A = Analysis
module Molecule = Flogic.Molecule
module Dmap = Domain_map.Dmap
module Index = Domain_map.Index
module Source = Wrapper.Source

let class_targets m c =
  let dm = Mediator.dmap m in
  match Namespace.split c with
  | Some (src, cls) when Mediator.find_source m src <> None -> [ (src, cls) ]
  | _ ->
    if Dmap.mem dm c then
      Index.coverage dm (Mediator.index m) ~concept:c
      |> List.map (fun (s, qcls) ->
             match Namespace.split qcls with
             | Some (s', cls) when String.equal s s' -> (s, cls)
             | _ -> (s, qcls))
    else []

let source_infos m = List.map A.Cap_lint.of_source (Mediator.sources m)

let source_names m = List.map Source.name (Mediator.sources m)

let class_sources m c =
  let dm = Mediator.dmap m in
  if Dmap.mem dm c then Index.sources_at dm (Mediator.index m) ~concept:c
  else []

let query m ?label lits =
  A.Cap_lint.feasibility ~sources:(source_infos m)
    ~class_targets:(class_targets m) ?label lits
  @ A.Prov_lint.query_diags ~sources:(source_names m) ?label lits

let provenance m =
  A.Prov_lint.analyze ~require_sources:true ~sources:(source_names m)
    ~class_sources:(class_sources m) (Mediator.ivds m)

let blast_radius m =
  (* which derived predicates each source can transitively reach —
     the static counterpart of a completeness report's [suspect] set *)
  let result =
    A.Prov_lint.analyze ~sources:(source_names m)
      ~class_sources:(class_sources m)
      (Mediator.program m).Flogic.Fl_program.rules
  in
  List.map
    (fun s ->
      let name = Source.name s in
      let reach =
        List.filter_map
          (fun (p, srcs) ->
            if List.exists (String.equal name) srcs then Some p else None)
          result.A.Prov_lint.predicates
        |> List.sort_uniq String.compare
      in
      (name, reach))
    (Mediator.sources m)

let federation m =
  let dm = Mediator.dmap m in
  let known_class c = Dmap.mem dm c in
  let anchors = Index.anchors (Mediator.index m) in
  let infos = source_infos m in
  let dmap_diags = A.Dmap_lint.lint ~anchors dm in
  let schema_diags =
    List.concat_map
      (fun s -> A.Schema_lint.lint ~known_class (Source.schema s))
      (Mediator.sources m)
  in
  let template_diags = List.concat_map A.Cap_lint.lint_templates infos in
  let cones =
    {
      A.Absint.members = Domain_map.Closure.cones dm;
      lub = (fun cs -> Domain_map.Lub.lub_unique dm cs);
    }
  in
  let program_diags =
    A.Kindlint.lint_program ~known_class ~cones ~sources:(source_names m)
      ~class_sources:(class_sources m)
      ?budget:(Mediator.config m).Mediator.cost_budget
      ~seed:(Mediator.cardinality_seed m) ~dm (Mediator.program m)
  in
  (* pass 9 across the installed views: a view contained in the views
     installed before it (modulo the domain map) adds no answers *)
  let ivd_redundant =
    let ivds = Mediator.ivds m in
    if List.length ivds < 2 then []
    else
      match
        try
          Ok
            (List.map
               (fun r -> (r, Flogic.Compile.rule (Mediator.signature m) r))
               ivds)
        with Flogic.Compile.Compile_error _ -> Error ()
      with
      | Error () -> [] (* surfaces as a compile error elsewhere *)
      | Ok compiled ->
        let ctx = A.Contain.make_ctx ~dm () in
        List.concat
          (List.mapi
             (fun i (r, cand) ->
               let against =
                 List.concat
                   (List.filteri (fun j _ -> j < i) (List.map snd compiled))
               in
               if
                 against <> [] && cand <> []
                 && A.Contain.redundant_view ctx ~against cand
               then
                 [
                   A.Diagnostic.make ~severity:A.Diagnostic.Warning
                     ~pass:"contain" ~code:"redundant-ivd"
                     ~location:
                       (A.Diagnostic.Query (Molecule.rule_to_string r))
                     "this view is contained in the views installed before \
                      it; it adds no answers"
                     ~hint:"drop the view or generalize it";
                 ]
               else [])
             compiled)
  in
  let ivd_prov = (provenance m).A.Prov_lint.diags in
  let ivd_caps =
    List.concat_map
      (fun (r : Molecule.rule) ->
        let label = Molecule.rule_to_string r in
        let diags, stats =
          A.Cap_lint.feasibility_stats ~sources:infos
            ~class_targets:(class_targets m) ~label r.Molecule.body
        in
        (* pass 7 × pass 4: a view may draw from sources on paper, yet
           every subgoal that could reach one is unanswerable *)
        if
          stats.A.Cap_lint.source_subgoals > 0
          && stats.A.Cap_lint.infeasible_subgoals
             = stats.A.Cap_lint.source_subgoals
        then
          diags
          @ [
              A.Diagnostic.make ~severity:A.Diagnostic.Warning
                ~pass:"provenance" ~code:"infeasible-provenance"
                ~location:(A.Diagnostic.Query label)
                "every source-bearing subgoal of this view is infeasible; \
                 no source data can ever reach it"
                ~hint:
                  "fix the capability or coverage problems reported on its \
                   subgoals, or drop the view";
            ]
        else diags)
      (Mediator.ivds m)
  in
  A.Diagnostic.sort
    (A.Diagnostic.normalize
       (dmap_diags @ schema_diags @ template_diags @ program_diags
      @ ivd_redundant @ ivd_prov @ ivd_caps))

(* The full cost analysis of the federation program — what
   [kindctl cost --demo] renders: per-predicate cardinality intervals,
   per-rule orders/estimates, and the hazard diagnostics. *)
let cost ?budget m =
  let budget =
    match budget with
    | Some _ -> budget
    | None -> (Mediator.config m).Mediator.cost_budget
  in
  match Flogic.Fl_program.compile (Mediator.program m) with
  | Error e ->
    {
      A.Cost_lint.empty with
      A.Cost_lint.diags =
        [
          A.Diagnostic.make ~severity:A.Diagnostic.Error ~pass:"rules"
            ~code:"compile-error" ~location:A.Diagnostic.Federation e;
        ];
    }
  | Ok dp ->
    let rules = Datalog.Program.rules dp in
    let report =
      A.Cost_lint.analyze ?budget
        ~assume_nonempty:
          (A.Kindlint.open_predicate
             ~signature:(Mediator.program m).Flogic.Fl_program.signature
             rules)
        ~seed:(Mediator.cardinality_seed m) rules
    in
    { report with A.Cost_lint.diags = A.Diagnostic.normalize report.A.Cost_lint.diags }
