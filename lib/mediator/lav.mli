(** Local-as-view mediation by inverse rules — and why the paper
    doesn't use it.

    The Discussion section contrasts the system's global-as-view (GAV)
    integration with LAV approaches like SIMS: "For answering a user
    query on the global schema, an inverse operation is used to map the
    query to appropriate local schemata. Often, such inverse operations
    may not, and in the case of our complex, recursive views, do not
    exist."

    This module implements the classical inverse-rules construction for
    LAV source descriptions that are conjunctive views over a global
    schema, so the claim can be demonstrated rather than asserted:

    - {!invert} produces the inverse rules of a CQ view (skolemising
      existential view variables);
    - {!answer} evaluates a query over the global schema using only the
      sources' extensions, via the inverted rules;
    - {!inversion_obstacle} reports why a given view definition falls
      outside the invertible fragment (recursion through [tc]/
      [has_a_star], aggregation, negation) — exactly the features the
      paper's domain-map views rely on. *)

type view = {
  vname : string;           (** source relation (the view's extension) *)
  definition : Datalog.Cq.t;  (** CQ over the global schema *)
}

val view : name:string -> Datalog.Cq.t -> view

val invert : view -> Logic.Rule.t list
(** One rule per body atom of the definition: the global relation is
    partially reconstructed from the view tuples, with existential view
    variables skolemised ([f_<view>_<var>(head vars)]). *)

val answer :
  views:view list ->
  extensions:Datalog.Database.t ->
  Logic.Atom.t ->
  Datalog.Tuple.t list
(** Evaluate a goal over the global schema from the views' extensions:
    materialize the inverse rules and keep the skolem-free answers
    (the certain answers for CQ views). *)

val inversion_obstacle : Flogic.Molecule.rule -> string option
(** [None] when the rule is an invertible CQ view; otherwise the
    feature that blocks inversion. Applied to the paper's domain-map
    views this returns the recursion/aggregation obstacles the
    Discussion points at. *)
