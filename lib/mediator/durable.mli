(** Persistent federation runtime state.

    The engine checkpoint ({!Datalog.Snapshot}) preserves the mediated
    object base; this module preserves the {e federation} half of a
    mediator: per-source breaker status and health counters, fault-plan
    and channel positions (so a {!Wrapper.Fault.Seeded} PRNG resumes
    mid-stream), the virtual clock, the advertised-capability cache,
    and the degraded-query ledger. Together they let
    {!Mediator.recover} rebuild a live federation that continues
    exactly where the crashed process stopped — an open breaker is
    still open and resumes half-open probing when its cooldown lapses
    on the restored clock.

    Serialized with {!Codec} frames (one frame per source), so the file
    shares the torn-tail story of the checkpoint: it is only ever
    written whole through {!Codec.write_file_atomic}, and any tear
    means "no state", never partial state. *)

type source_state = {
  name : string;
  state : Runtime.state;
  open_until : int;
  consecutive : int;
  calls : int;
  failures : int;
  retries : int;
  trips : int;
  absorbed : int;
  quarantined : bool;
  transitions : (int * Runtime.state) list;  (** chronological *)
  plan : Wrapper.Fault.plan;
  channel_calls : int;
  channel_crashed : bool;
  channel_stale : bool;
  channel_clock : int;
  capabilities : string list;
      (** the capabilities the channel advertised at checkpoint time,
          rendered — a ledger for [kindctl wal-status]-style inspection;
          live capabilities are recomputed from the source on recovery *)
}

type state = {
  clock : int;  (** the runtime's virtual clock *)
  degraded : int;  (** queries answered while sources were skipped *)
  completeness :
    (string list * (string * string) list * string list) option;
      (** last completeness report: contributed, skipped (with
          reasons), suspect predicates *)
  sources : source_state list;  (** registration order *)
}

val federation_file : string
(** ["federation.kind"] — path relative to the durability [fs] root. *)

val encode : state -> string
val decode : string -> (state, string) result

val save : Codec.fs -> state -> unit
(** Atomic write to {!federation_file}. *)

val load : Codec.fs -> (state option, string) result
(** [Ok None] when the file is absent or torn during creation (the
    atomic write protocol means a tear can only be a never-completed
    first write). *)
