(** Example 4's [aggregate] operator: "recursively traverses a binary
    relation R (here: has_a_star) starting from node P, and computes
    the aggregate of the specified attribute at each level of the
    relation".

    The traversal follows the domain map's direct [has_a_star] links
    plus isa descent (data anchored at specializations belongs to the
    region), visiting each concept once (the map is a DAG but links can
    converge). *)

type tree = {
  concept : string;
  own : float;      (** measure contributed by data anchored right here *)
  total : float;    (** own + children totals *)
  children : tree list;
}

val distribution :
  Domain_map.Dmap.t ->
  root:string ->
  measure:(string -> float list) ->
  tree
(** [measure c] returns the data values observed at concept [c] (e.g.
    amounts of one protein in compartments of kind [c]); they are
    summed into [own]. *)

val flatten : tree -> (string * float) list
(** Per-concept totals, preorder. *)

val depth : tree -> int
val size : tree -> int

val to_term : tree -> Logic.Term.t
(** [dist(concept, total, children-list-term)] — lets distribution
    values live inside the mediated object base as method values of the
    [protein_distribution] class. *)

val prune : tree -> tree
(** Drop subtrees with [total = 0] (keeps the root). *)

val to_dot : ?title:string -> tree -> string
(** Graphviz rendering of a distribution (node label = concept with
    its own/total mass) — the [GLM01] demo drew these for the user
    interface. *)

val pp : Format.formatter -> tree -> unit
