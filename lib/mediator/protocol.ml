module Xml = Xmlkit.Xml
module Term = Logic.Term
module Literal = Logic.Literal

type selection_msg = string * Literal.cmp * Term.t

module Molecule = Flogic.Molecule

type request =
  | Register of { format : string; document : Xml.t }
  | Fetch_instances of { cls : string; selections : selection_msg list }
  | Fetch_tuples of { rel : string; pattern : (string * Term.t) list }
  | Run_template of { name : string; args : (string * Term.t) list }
  | Update_facts of {
      source : string;
      additions : Molecule.t list;
      deletions : Molecule.t list;
    }
  | Ping

type response =
  | Registered of { source : string }
  | Objects of Wrapper.Store.obj list
  | Tuples of Datalog.Tuple.t list
  | Bindings of (string * Term.t) list list
  | Updated of { added : int; removed : int }
  | Pong of { source : string }
  | Timed_out of { source : string; after : int }
  | Unavailable of { source : string; retry_in : int option }
  | Failed of string

(* ------------------------------------------------------------------ *)
(* term codec: terms travel as FL surface syntax (the parser is the
   decoder we already trust); symbols that are not plain lowercase
   identifiers are quoted so the text re-parses *)

let plain_ident s =
  String.length s > 0
  && s.[0] >= 'a'
  && s.[0] <= 'z'
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_')
       s

let rec term_to_text t =
  match t with
  | Term.Const (Term.Sym s) when not (plain_ident s) ->
    "'" ^ String.concat "\\'" (String.split_on_char '\'' s) ^ "'"
  | Term.App (f, args) ->
    Printf.sprintf "%s(%s)"
      (if plain_ident f then f else "'" ^ f ^ "'")
      (String.concat "," (List.map term_to_text args))
  | t -> Term.to_string t

let term_of_text s =
  match Flogic.Fl_parser.parse_term s with
  | Ok t -> Ok t
  | Error e -> Error e

let cmp_to_text op = Format.asprintf "%a" Literal.pp_cmp op

let cmp_of_text = function
  | "<" -> Ok Literal.Lt
  | "=<" -> Ok Literal.Le
  | ">" -> Ok Literal.Gt
  | ">=" -> Ok Literal.Ge
  | "=" -> Ok Literal.Eq
  | "=/=" -> Ok Literal.Ne
  | s -> Error ("unknown comparison " ^ s)

let ( let* ) = Result.bind

let collect f xs =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) xs
  |> Result.map List.rev

(* ------------------------------------------------------------------ *)
(* molecule codec: ground declaration molecules travel structurally,
   one element per molecule, terms in the shared term codec *)

let molecule_to_xml m =
  let term t = Xml.leaf "term" (term_to_text t) in
  let attr_elt (a, t) =
    Xml.elt "attr" ~attrs:[ ("name", a) ] [ Xml.text (term_to_text t) ]
  in
  match m with
  | Molecule.Isa (x, c) ->
    Xml.elt "molecule" ~attrs:[ ("kind", "isa") ] [ term x; term c ]
  | Molecule.Sub (c, d) ->
    Xml.elt "molecule" ~attrs:[ ("kind", "sub") ] [ term c; term d ]
  | Molecule.Meth_sig (c, meth, d) ->
    Xml.elt "molecule"
      ~attrs:[ ("kind", "meth-sig"); ("method", meth) ]
      [ term c; term d ]
  | Molecule.Meth_val (x, meth, v) ->
    Xml.elt "molecule"
      ~attrs:[ ("kind", "meth-val"); ("method", meth) ]
      [ term x; term v ]
  | Molecule.Rel_sig (r, fields) ->
    Xml.elt "molecule"
      ~attrs:[ ("kind", "rel-sig"); ("relation", r) ]
      (List.map attr_elt fields)
  | Molecule.Rel_val (r, fields) ->
    Xml.elt "molecule"
      ~attrs:[ ("kind", "rel-val"); ("relation", r) ]
      (List.map attr_elt fields)
  | Molecule.Pred a ->
    Xml.elt "molecule"
      ~attrs:[ ("kind", "pred"); ("name", a.Logic.Atom.pred) ]
      (List.map term a.Logic.Atom.args)

let molecule_of_xml e =
  let* kind = Cm_plugins.Plugin.require_attr e "kind" in
  let terms () =
    collect
      (fun te -> term_of_text (Xml.text_content te))
      (Xml.find_children "term" e)
  in
  let two name k =
    let* ts = terms () in
    match ts with
    | [ a; b ] -> Ok (k a b)
    | _ -> Error (name ^ " molecule expects exactly two terms")
  in
  let fields () =
    collect
      (fun ae ->
        let* a = Cm_plugins.Plugin.require_attr ae "name" in
        let* t = term_of_text (Xml.text_content ae) in
        Ok (a, t))
      (Xml.find_children "attr" e)
  in
  match kind with
  | "isa" -> two "isa" (fun x c -> Molecule.Isa (x, c))
  | "sub" -> two "sub" (fun c d -> Molecule.Sub (c, d))
  | "meth-sig" ->
    let* meth = Cm_plugins.Plugin.require_attr e "method" in
    two "meth-sig" (fun c d -> Molecule.Meth_sig (c, meth, d))
  | "meth-val" ->
    let* meth = Cm_plugins.Plugin.require_attr e "method" in
    two "meth-val" (fun x v -> Molecule.Meth_val (x, meth, v))
  | "rel-sig" ->
    let* r = Cm_plugins.Plugin.require_attr e "relation" in
    let* fs = fields () in
    Ok (Molecule.Rel_sig (r, fs))
  | "rel-val" ->
    let* r = Cm_plugins.Plugin.require_attr e "relation" in
    let* fs = fields () in
    Ok (Molecule.Rel_val (r, fs))
  | "pred" ->
    let* name = Cm_plugins.Plugin.require_attr e "name" in
    let* ts = terms () in
    Ok (Molecule.Pred (Logic.Atom.make name ts))
  | k -> Error ("unknown molecule kind " ^ k)

(* ------------------------------------------------------------------ *)
(* request codec *)

let encode_request = function
  | Register { format; document } ->
    Xml.elt "register" ~attrs:[ ("format", format) ] [ document ]
  | Fetch_instances { cls; selections } ->
    Xml.elt "fetch-instances" ~attrs:[ ("class", cls) ]
      (List.map
         (fun (m, op, t) ->
           Xml.elt "selection"
             ~attrs:[ ("method", m); ("op", cmp_to_text op) ]
             [ Xml.text (term_to_text t) ])
         selections)
  | Fetch_tuples { rel; pattern } ->
    Xml.elt "fetch-tuples" ~attrs:[ ("relation", rel) ]
      (List.map
         (fun (a, t) ->
           Xml.elt "bind" ~attrs:[ ("attr", a) ] [ Xml.text (term_to_text t) ])
         pattern)
  | Run_template { name; args } ->
    Xml.elt "run-template" ~attrs:[ ("name", name) ]
      (List.map
         (fun (p, t) ->
           Xml.elt "arg" ~attrs:[ ("param", p) ] [ Xml.text (term_to_text t) ])
         args)
  | Update_facts { source; additions; deletions } ->
    Xml.elt "update-facts" ~attrs:[ ("source", source) ]
      [
        Xml.elt "assert" (List.map molecule_to_xml additions);
        Xml.elt "retract" (List.map molecule_to_xml deletions);
      ]
  | Ping -> Xml.elt "ping" []

let decode_request doc =
  match Xml.tag doc with
  | Some "register" -> (
    let* format = Cm_plugins.Plugin.require_attr doc "format" in
    match Xml.child_elements doc with
    | [ document ] -> Ok (Register { format; document })
    | _ -> Error "register expects exactly one embedded CM document")
  | Some "fetch-instances" ->
    let* cls = Cm_plugins.Plugin.require_attr doc "class" in
    let* selections =
      collect
        (fun e ->
          let* m = Cm_plugins.Plugin.require_attr e "method" in
          let* op_s = Cm_plugins.Plugin.require_attr e "op" in
          let* op = cmp_of_text op_s in
          let* t = term_of_text (Xml.text_content e) in
          Ok (m, op, t))
        (Xml.find_children "selection" doc)
    in
    Ok (Fetch_instances { cls; selections })
  | Some "fetch-tuples" ->
    let* rel = Cm_plugins.Plugin.require_attr doc "relation" in
    let* pattern =
      collect
        (fun e ->
          let* a = Cm_plugins.Plugin.require_attr e "attr" in
          let* t = term_of_text (Xml.text_content e) in
          Ok (a, t))
        (Xml.find_children "bind" doc)
    in
    Ok (Fetch_tuples { rel; pattern })
  | Some "run-template" ->
    let* name = Cm_plugins.Plugin.require_attr doc "name" in
    let* args =
      collect
        (fun e ->
          let* p = Cm_plugins.Plugin.require_attr e "param" in
          let* t = term_of_text (Xml.text_content e) in
          Ok (p, t))
        (Xml.find_children "arg" doc)
    in
    Ok (Run_template { name; args })
  | Some "update-facts" ->
    let* source = Cm_plugins.Plugin.require_attr doc "source" in
    let molecules tag =
      List.concat_map (Xml.find_children "molecule") (Xml.find_children tag doc)
      |> collect molecule_of_xml
    in
    let* additions = molecules "assert" in
    let* deletions = molecules "retract" in
    Ok (Update_facts { source; additions; deletions })
  | Some "ping" -> Ok Ping
  | _ -> Error "unknown request message"

(* ------------------------------------------------------------------ *)
(* response codec *)

let obj_to_xml (o : Wrapper.Store.obj) =
  Xml.elt "object"
    ~attrs:[ ("id", term_to_text o.Wrapper.Store.id) ]
    (List.map
       (fun (m, v) ->
         Xml.elt "value" ~attrs:[ ("method", m) ] [ Xml.text (term_to_text v) ])
       o.Wrapper.Store.values)

let obj_of_xml e =
  let* id_s = Cm_plugins.Plugin.require_attr e "id" in
  let* id = term_of_text id_s in
  let* values =
    collect
      (fun ve ->
        let* m = Cm_plugins.Plugin.require_attr ve "method" in
        let* v = term_of_text (Xml.text_content ve) in
        Ok (m, v))
      (Xml.find_children "value" e)
  in
  Ok { Wrapper.Store.id; values }

let encode_response = function
  | Registered { source } ->
    Xml.elt "registered" ~attrs:[ ("source", source) ] []
  | Objects objs -> Xml.elt "objects" (List.map obj_to_xml objs)
  | Tuples tuples ->
    Xml.elt "tuples"
      (List.map
         (fun tup ->
           Xml.elt "tuple"
             (List.map (fun t -> Xml.leaf "field" (term_to_text t)) tup))
         tuples)
  | Bindings rows ->
    Xml.elt "bindings"
      (List.map
         (fun row ->
           Xml.elt "row"
             (List.map
                (fun (x, t) ->
                  Xml.elt "bind" ~attrs:[ ("var", x) ]
                    [ Xml.text (term_to_text t) ])
                row))
         rows)
  | Updated { added; removed } ->
    Xml.elt "updated"
      ~attrs:
        [ ("added", string_of_int added); ("removed", string_of_int removed) ]
      []
  | Pong { source } -> Xml.elt "pong" ~attrs:[ ("source", source) ] []
  | Timed_out { source; after } ->
    Xml.elt "timed-out"
      ~attrs:[ ("source", source); ("after", string_of_int after) ]
      []
  | Unavailable { source; retry_in } ->
    Xml.elt "unavailable"
      ~attrs:
        (("source", source)
        :: (match retry_in with
           | Some ms -> [ ("retry-in", string_of_int ms) ]
           | None -> []))
      []
  | Failed msg -> Xml.leaf "error" msg

let decode_response doc =
  match Xml.tag doc with
  | Some "registered" ->
    let* source = Cm_plugins.Plugin.require_attr doc "source" in
    Ok (Registered { source })
  | Some "objects" ->
    let* objs = collect obj_of_xml (Xml.find_children "object" doc) in
    Ok (Objects objs)
  | Some "tuples" ->
    let* tuples =
      collect
        (fun te ->
          collect
            (fun fe -> term_of_text (Xml.text_content fe))
            (Xml.find_children "field" te))
        (Xml.find_children "tuple" doc)
    in
    Ok (Tuples tuples)
  | Some "bindings" ->
    let* rows =
      collect
        (fun re ->
          collect
            (fun be ->
              let* x = Cm_plugins.Plugin.require_attr be "var" in
              let* t = term_of_text (Xml.text_content be) in
              Ok (x, t))
            (Xml.find_children "bind" re))
        (Xml.find_children "row" doc)
    in
    Ok (Bindings rows)
  | Some "updated" ->
    let* added_s = Cm_plugins.Plugin.require_attr doc "added" in
    let* removed_s = Cm_plugins.Plugin.require_attr doc "removed" in
    let int_of name s =
      match int_of_string_opt s with
      | Some n -> Ok n
      | None -> Error ("updated: " ^ name ^ " is not an integer")
    in
    let* added = int_of "added" added_s in
    let* removed = int_of "removed" removed_s in
    Ok (Updated { added; removed })
  | Some "pong" ->
    let* source = Cm_plugins.Plugin.require_attr doc "source" in
    Ok (Pong { source })
  | Some "timed-out" ->
    let* source = Cm_plugins.Plugin.require_attr doc "source" in
    let* after_s = Cm_plugins.Plugin.require_attr doc "after" in
    (match int_of_string_opt after_s with
    | Some after -> Ok (Timed_out { source; after })
    | None -> Error "timed-out: after is not an integer")
  | Some "unavailable" ->
    let* source = Cm_plugins.Plugin.require_attr doc "source" in
    (match Xml.attr "retry-in" doc with
    | None -> Ok (Unavailable { source; retry_in = None })
    | Some s -> (
      match int_of_string_opt s with
      | Some ms -> Ok (Unavailable { source; retry_in = Some ms })
      | None -> Error "unavailable: retry-in is not an integer"))
  | Some "error" -> Ok (Failed (Xml.text_content doc))
  | _ -> Error "unknown response message"

(* ------------------------------------------------------------------ *)
(* wrapper endpoint *)

module Fault = Wrapper.Fault

type endpoint = Fault.t

let endpoint src = Fault.wrap src
let faulty_endpoint ch = ch

(* how an injected fault shows up on the wire *)
let fault_response ~source = function
  | Fault.Timeout -> Timed_out { source; after = Fault.timeout_cost }
  | Fault.Crash -> Unavailable { source; retry_in = None }
  | Fault.Transient _ ->
    Unavailable { source; retry_in = Some 50 }
  | f -> Failed (Fault.fault_to_string f)

let execute ch req =
  let source = Fault.name ch in
  let guarded f =
    match Fault.call ch f with
    | resp -> resp
    | exception Wrapper.Source.Unsupported m -> Failed m
    | exception Fault.Injected { fault; _ } -> fault_response ~source fault
  in
  match req with
  | Register _ -> Failed "wrappers do not accept register messages"
  | Ping ->
    guarded (fun src ->
        Wrapper.Source.ping src;
        Pong { source })
  | Fetch_instances { cls; selections } ->
    guarded (fun src ->
        Objects (Wrapper.Source.fetch_instances src ~cls ~selections))
  | Fetch_tuples { rel; pattern } ->
    guarded (fun src -> Tuples (Wrapper.Source.fetch_tuples src ~rel ~pattern))
  | Run_template { name; args } ->
    guarded (fun src ->
        let substs = Wrapper.Source.run_template src ~name ~args in
        Bindings (List.map Logic.Subst.bindings substs))
  | Update_facts { source = _; additions; deletions } ->
    guarded (fun src ->
        try
          let store = Wrapper.Source.store src in
          let removed =
            List.fold_left
              (fun n m -> n + Wrapper.Store.remove_fact store m)
              0 deletions
          in
          List.iter (Wrapper.Store.add_fact store) additions;
          Updated { added = List.length additions; removed }
        with Flogic.Compile.Compile_error m | Invalid_argument m -> Failed m)

let handle ch doc =
  match decode_request doc with
  | Error m -> encode_response (Failed m)
  | Ok req -> encode_response (execute ch req)

let call ch req =
  match decode_response (handle ch (encode_request req)) with
  | Ok resp -> resp
  | Error m -> Failed ("response codec: " ^ m)

(* ------------------------------------------------------------------ *)
(* the text wire: serialized payloads, where in-transit corruption can
   happen and the receiving side may have to parse leniently *)

let handle_text ch text =
  let response =
    match Xmlkit.Parse.parse text with
    | Error m -> encode_response (Failed ("request parse: " ^ m))
    | Ok doc -> handle ch doc
  in
  let printed = Xmlkit.Print.to_string response in
  match Fault.consume_corruption ch with
  | Some f -> Fault.corrupt_payload f printed
  | None -> printed

let decode_response_text text =
  match Xmlkit.Parse.parse text with
  | Ok doc -> Result.map (fun r -> (r, 0)) (decode_response doc)
  | Error strict_err -> (
    match Xmlkit.Parse.parse_lenient text with
    | Some (doc, recoveries) -> (
      match decode_response doc with
      | Ok r -> Ok (r, List.length recoveries)
      | Error _ -> Error strict_err)
    | None -> Error strict_err)

let call_text ch req =
  decode_response_text
    (handle_text ch (Xmlkit.Print.to_string (encode_request req)))

let register_remote med ~source_name ?capabilities ~format doc =
  Mediator.register_xml med ~format ?capabilities ~source_name doc

let update_remote med doc =
  match decode_request doc with
  | Error e -> Error e
  | Ok (Update_facts { source; additions; deletions }) ->
    Mediator.update_source med ~source ~additions ~deletions ()
  | Ok _ -> Error "expected an update-facts message"
