(** The model-based mediator M (Figure 2).

    Holds the domain map DM(M), the semantic index, the registered
    wrapped sources with their conceptual models CM(S), and the
    integrated view definitions; materializes the mediated object base
    on the single GCM engine and answers FL queries over it.

    Ablation switches in {!config} let the benchmarks turn off the
    architecture's individual ingredients (semantic index, selection
    pushdown, lub root selection) to quantify what each contributes —
    see {!Section5} and {!Baseline}. *)

type lint_policy =
  | Lint_off     (** no static checks at registration *)
  | Lint_warn    (** diagnostics accumulate in {!translation_warnings} *)
  | Lint_reject  (** error-severity diagnostics fail the registration *)

type config = {
  dl_mode : Dl.Translate.mode;
      (** execute domain-map axioms as integrity constraints or as
          assertions (Section 4) *)
  use_semantic_index : bool;  (** step-2 source selection *)
  pushdown : bool;            (** step-1/3 selection pushdown *)
  use_lub : bool;             (** step-4 lub root vs whole-map root *)
  inheritance : bool;         (** nonmonotonic default inheritance *)
  lint : lint_policy;
      (** kindlint at {!register_source} time: schema conformance,
          anchor targets, template hygiene (default [Lint_warn]); at
          {!add_ivd} time: source provenance of the new views *)
  prune_dead : bool;
      (** drop rules the abstract interpreter ({!Analysis.Absint})
          proves can derive nothing before materializing — semantics
          preserving; counts surface in {!Datalog.Engine.report} /
          {!Datalog.Maintain.report} (default [false]) *)
  minimize : bool;
      (** semantically minimize rule bodies before materializing:
          containment analysis modulo the domain map
          ({!Analysis.Contain.minimize}) drops body atoms implied by
          the rest of their rule — equivalence preserving for every
          database the maintenance handle can evolve into, because the
          context is built from the domain map only, never from
          retractable source facts (default [false]) *)
  runtime : Runtime.policy;
      (** per-source retry-with-backoff and circuit-breaker policies
          applied to every query-time fetch (default
          {!Runtime.default_policy}) *)
  cost_budget : int option;
      (** row budget for incoming IVDs: when set, {!add_ivd} /
          {!add_ivd_text} run the cardinality analysis
          ({!Analysis.Card}, seeded with {!cardinality_seed}) over the
          federation program plus the candidate views, and a view whose
          estimated result exceeds the budget (or is provably
          unbounded) gets a reject-level [over-budget] error — which
          [Lint_reject] turns into a refused registration (default
          [None]: no cost policy) *)
  domains : int;
      (** worker domains for the mediator's evaluation and federation
          fan-out: query-time {e gather} polls every registered source
          concurrently (virtual clocks advance by the slowest fetch,
          per-channel fault transcripts stay replay-exact, and the
          completeness report is merged in registration order), and the
          materialization runs its semi-naive joins through the same
          pool ({!Datalog.Engine.config.domains}). [0] (the default)
          defers to the [KIND_DOMAINS] environment variable /
          [kindctl --domains]; [1] forces sequential. *)
  durability : Datalog.Engine.durability option;
      (** when set, {!materialize} auto-checkpoints a freshly maintained
          materialization (engine snapshot + federation state, WAL
          compacted), {!update_source} appends each lifted batch to the
          WAL {e before} applying it and rotates the log past
          [wal_max_bytes], and {!recover} rebuilds the live federation.
          [None] (the default) falls back to the [KIND_DURABLE_DIR]
          environment variable; unset means durability off. The
          well-founded fallback never checkpoints. *)
}

val default_config : config

type t

val create : ?config:config -> Domain_map.Dmap.t -> t

(** {1 Registration} *)

val register_source : t -> Wrapper.Source.t -> (unit, string) result
(** Validates and namespaces the source's schema, merges its relation
    signature, and indexes its anchors. *)

val register_xml :
  t -> format:string -> ?capabilities:Wrapper.Capability.t list ->
  source_name:string -> Xmlkit.Xml.t -> (unit, string) result
(** Wire-format registration: run the CM plug-in for [format], then
    {!register_source} the result. *)

val extend_dmap : t -> Dl.Concept.axiom list -> (unit, string) result
(** Figure 3: a source refines the mediator's domain map. *)

val add_ivd : t -> Flogic.Molecule.rule list -> unit
(** Install integrated-view rules (global-as-view). When a
    materialization is live, the new rules are absorbed incrementally
    ({!Datalog.Maintain.extend_rules}) instead of invalidating it.
    Unless the lint policy is [Lint_off], the rules' source provenance
    is checked ({!Analysis.Prov_lint}), a candidate view contained in
    the already-installed views (modulo the domain map,
    {!Analysis.Contain.redundant_view}) gets a [redundant-ivd]
    warning, and findings accumulate in {!translation_warnings}. *)

val update_source :
  t ->
  source:string ->
  ?additions:Flogic.Molecule.t list ->
  ?deletions:Flogic.Molecule.t list ->
  unit ->
  (Datalog.Maintain.report option, string) result
(** A source pushes a data change (Figure 3's update arrow): ground
    declaration molecules in the {e source's} vocabulary, as accepted
    by {!Wrapper.Store.add_fact}. The wrapper store is updated, and a
    live materialization absorbs the lifted facts as a base delta —
    only the strata whose predicates are affected re-evaluate, and only
    the cached query results that read a touched predicate are dropped.
    [Ok None] when nothing was materialized yet (the store update will
    be picked up lazily); [Ok (Some report)] after an incremental pass. *)

val add_ivd_text : t -> string -> (unit, string) result
(** IVD in FL surface syntax, parsed with the mediator's accumulated
    signature. Under [Lint_reject], error-severity provenance findings
    (references to unregistered namespaces) fail the installation. *)

(** {1 Introspection} *)

val dmap : t -> Domain_map.Dmap.t
val index : t -> Domain_map.Index.t
val sources : t -> Wrapper.Source.t list
val find_source : t -> string -> Wrapper.Source.t option
val config : t -> config
val set_config : t -> config -> unit
val signature : t -> Flogic.Signature.t
val ivds : t -> Flogic.Molecule.rule list
(** Installed integrated-view rules, in installation order. *)

val program : t -> Flogic.Fl_program.t
(** The full federation program — domain-map rules, namespaced schema
    rules, anchor rules, lifted source facts and IVDs — exactly as
    {!materialize} would compile it, but without materializing. This is
    what [Lint.federation] analyzes. *)

val cardinality_seed : t -> string -> Analysis.Card.interval option
(** Trusted cardinality caps for the cost analysis: store tuple counts
    for qualified ['SRC.rel'] predicates, and domain-map cone sizes for
    the closure predicates ([tc_isa]/[dm_isa]: one pair per (concept,
    cone member); [has_a_star]: |concepts|²). What [Lint.federation]
    and the IVD budget check seed {!Analysis.Card.analyze} with. *)

val plugins : t -> Cm_plugins.Plugin.registry
val translation_warnings : t -> string list

(** {1 The mediated object base} *)

val materialize : t -> Datalog.Database.t
(** Pull every source's data, lift it through the anchors into the
    domain map, close it under the GCM axioms, the domain-map rules and
    the IVDs. Cached, and kept under incremental maintenance
    ({!Datalog.Maintain}): source registration, IVD installation and
    {!update_source} mutate the live materialization in place instead
    of invalidating it. Domain-map extension and configuration changes
    still trigger a full rebuild. *)

val invalidate : t -> unit

type cache_stats = {
  hits : int;          (** query answers served from the result cache *)
  misses : int;        (** queries evaluated against the database *)
  invalidated : int;   (** cached results dropped (precise + full) *)
  maintained : int;    (** deltas absorbed incrementally *)
  rebuilt : int;       (** full materializations *)
}

val cache_stats : t -> cache_stats

val last_maintenance : t -> Datalog.Maintain.report option
(** The report of the most recent incremental pass, if any — per-stratum
    skip/propagate/recompute actions and the touched-predicate set that
    drove result-cache invalidation. *)

val query : t -> Flogic.Molecule.lit list -> Logic.Subst.t list
val query_text : t -> string -> (Logic.Subst.t list, string) result
val holds : t -> Flogic.Molecule.t -> bool
val consistent : t -> bool
(** No integrity-constraint witnesses in the mediated object base. *)

val violations : t -> Flogic.Ic.witness list

(** {1 Concept-level services} *)

val select_sources : t -> concepts:string list -> string list
(** Step 2 of the paper's query plan: the sources whose anchored data
    can speak to the given concepts. With [use_semantic_index = false]
    every registered source is returned (broadcast). *)

val select_sources_for_pairs :
  t -> pairs:(string * string) list -> string list
(** Pair- and context-aware source selection
    ({!Domain_map.Index.sources_for_pairs}); broadcast when the index
    is off. *)

val lift_class : t -> source:string -> string -> string
(** The mediator-level (namespaced) name of a source class. *)

(** {1 Fault tolerance}

    Every query-time fetch from a registered source runs through a
    deterministic {!Wrapper.Fault} channel under the {!Runtime} retry
    and circuit-breaker policies. Sources the runtime gives up on are
    {e skipped}: {!materialize} proceeds without their data and tags
    the result with a {!completeness} report instead of failing the
    whole federation. *)

type completeness = {
  contributed : string list;  (** sources whose data is in the answer *)
  skipped : (string * string) list;  (** skipped source, reason *)
  suspect : string list;
      (** derived predicates some skipped source can reach (by
          {!Analysis.Prov_lint}'s provenance inference) — their extents
          may be missing answers *)
}

val set_fault_plan :
  t -> source:string -> Wrapper.Fault.plan -> (unit, string) result
(** Install a fault plan on a source's channel (replacing the channel)
    and invalidate the materialization so the next query replays the
    fetches under the plan. *)

val fault_channel : t -> string -> Wrapper.Fault.t option

val capabilities_of : t -> string -> Wrapper.Capability.t list
(** The capabilities the source's channel currently advertises — the
    over-approximated set once a [Stale_caps] fault has fired. *)

val fetch :
  t -> source:string -> (Wrapper.Source.t -> 'a) -> ('a, string) result
(** Run one operation against a source under the full fault-tolerance
    stack (channel, retries, breaker). *)

val completeness : t -> completeness
(** The completeness report of the current materialization (forces
    one). [skipped = []] means the answer is exact. *)

type report = { answers : Logic.Subst.t list; completeness : completeness }

val query_report : t -> Flogic.Molecule.lit list -> report
(** {!query}, with the completeness report the partial answer carries. *)

val revive_source : t -> string -> (unit, string) result
(** The Figure-3 re-registration path for a quarantined or dead source:
    open a pristine channel, close the breaker, and replay the source's
    current data into the live materialization as a registration
    delta. *)

val runtime : t -> Runtime.t
val health : t -> (string * Runtime.health) list
(** Per-source health counters, in registration order. *)

val degraded_queries : t -> int
(** Queries answered from a materialization with skipped sources. *)

(** {1 Durability}

    The engine half of the state (the mediated object base and its base
    facts) lives in a {!Datalog.Snapshot} checkpoint plus a
    {!Datalog.Wal} of maintenance batches; the federation half
    (per-source breaker status and health counters, fault-channel
    positions, the virtual clock, the degraded-query ledger) in a
    {!Durable} state file. All three are written through the durability
    {!Codec.fs}, so the crash-point harness ({!Wrapper.Crashpoint}) can
    kill a write mid-frame. See DESIGN.md §14. *)

val checkpoint : ?dir:string -> t -> (int, string) result
(** Write a full checkpoint — engine snapshot, federation state, WAL
    compacted — to the configured durability store ([?dir] overrides
    it). Forces a materialization. Returns the snapshot size in bytes.
    [Error] when no durability is configured or the materialization
    came through the well-founded fallback. *)

val recover : ?dir:string -> t -> (bool, string) result
(** Rebuild the live federation from the durability store: read the
    checkpoint, adopt it under incremental maintenance (the program is
    recompiled from the {e re-registered} topology — register the same
    sources and IVDs first), replay the WAL suffix, and restore the
    federation runtime — breaker states and counters, fault channels
    resuming mid-plan ({!Wrapper.Fault.restore}), the virtual clock,
    the last completeness report and the degraded-query ledger. An open
    breaker stays open and resumes half-open probing when its cooldown
    lapses on the restored clock; recovery never revives. [Ok false]
    when no checkpoint exists (cold-start — call {!materialize}).
    Federation state naming a source that was not re-registered is
    dropped with a warning in {!translation_warnings}. *)
