(** A capability-aware planner for conjunctive queries over the
    federation — the general mechanism behind the hand-planned Section 5
    walk-through.

    Supported query literals:
    - [X : 'SRC.class'] — objects of one source's class;
    - [X : concept] — objects of {e any} source anchored at the
      domain-map concept (resolved through the semantic index, so the
      user need not know which laboratory holds the data);
    - [X\[m ->> V\]] — method values of a fetched object;
    - ['SRC.rel'\[a1 -> T1; ...\]] — relation access against the
      source's declared binding patterns: attributes ground at
      execution time form the access pattern, refused patterns fall
      back to a scan (metered, so the ablation shows up in
      tuples-moved);
    - comparisons ([D > 0.5], [P = calbindin]);
    - concept-level domain-map tests: [dm_isa(a, b)], [tc_isa(a, b)],
      [has_a_star(a, b)].

    The planner groups literals by object variable, orders groups most
    selective first, executes them as a bind join (constants bound by
    earlier groups become pushdown selections for later ones, subject
    to each source's declared capabilities and the mediator's
    configuration), and evaluates residual comparisons and domain-map
    tests in memory. Wrapper meters record the shipped tuples. *)

type plan_step = {
  variable : string;
  targets : (string * string) list;  (** (source, unqualified class) *)
  pushed : string list;              (** method selections pushed down *)
  residual : string list;            (** filtered at the mediator *)
}

type report = {
  steps : plan_step list;
  sources_contacted : string list;
  tuples_moved : int;
  answers : int;
}

exception Unplannable of string
(** Raised (wrapped in [Error]) for literals outside the supported
    fragment, with an explanation. *)

val plan :
  Mediator.t -> Flogic.Molecule.lit list -> (plan_step list, string) result
(** Plan only (no execution): useful for inspecting pushdown
    decisions. *)

val run :
  Mediator.t ->
  Flogic.Molecule.lit list ->
  (Logic.Subst.t list * report, string) result

val run_text :
  Mediator.t -> string -> (Logic.Subst.t list * report, string) result

val pp_report : Format.formatter -> report -> unit
