module Term = Logic.Term
module Literal = Logic.Literal
module Subst = Logic.Subst
module Unify = Logic.Unify
module Molecule = Flogic.Molecule
module Source = Wrapper.Source
module Store = Wrapper.Store
module Capability = Wrapper.Capability
module Index = Domain_map.Index
module Closure = Domain_map.Closure

exception Unplannable of string

let fail fmt = Format.kasprintf (fun m -> raise (Unplannable m)) fmt

type group = {
  gvar : string;
  targets : (Source.t * string) list;  (* source handle, unqualified class *)
  mutable methods : (string * Term.t) list;
}

(* a relation access 'SRC.rel'[a1 -> T1; ...] *)
type rel_access = {
  rsource : Source.t;
  rel : string;  (* unqualified *)
  fields : (string * Term.t) list;
}

type plan_step = {
  variable : string;
  targets : (string * string) list;
  pushed : string list;
  residual : string list;
}

type report = {
  steps : plan_step list;
  sources_contacted : string list;
  tuples_moved : int;
  answers : int;
}

let dm_predicates = [ "dm_isa"; "tc_isa"; "has_a_star" ]

(* ------------------------------------------------------------------ *)
(* Analysis *)

let targets_of_class med cname =
  match Namespace.split cname with
  | Some (src_name, cls) -> (
    match Mediator.find_source med src_name with
    | Some src -> [ (src, cls) ]
    | None -> fail "query names unknown source %s" src_name)
  | None ->
    (* a domain-map concept: resolve through the semantic index *)
    let cover =
      Index.coverage (Mediator.dmap med) (Mediator.index med) ~concept:cname
    in
    List.filter_map
      (fun (src_name, ns_class) ->
        match Mediator.find_source med src_name, Namespace.split ns_class with
        | Some src, Some (_, cls) -> Some (src, cls)
        | _ -> None)
      cover

let analyze med lits =
  let groups : (string, group) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let rels = ref [] in
  let comparisons = ref [] in
  let dm_tests = ref [] in
  List.iter
    (fun lit ->
      match lit with
      | Molecule.Pos (Molecule.Isa (Term.Var x, Term.Const (Term.Sym c))) ->
        if Hashtbl.mem groups x then
          fail "variable %s has two class constraints" x;
        let g = { gvar = x; targets = targets_of_class med c; methods = [] } in
        Hashtbl.add groups x g;
        order := g :: !order
      | Molecule.Pos (Molecule.Meth_val (Term.Var x, m, t)) -> (
        match Hashtbl.find_opt groups x with
        | Some g -> g.methods <- g.methods @ [ (m, t) ]
        | None ->
          fail "method access %s[%s ->> _] before a class constraint for %s" x
            m x)
      | Molecule.Pos (Molecule.Rel_val (qrel, fields)) -> (
        match Namespace.split qrel with
        | Some (src_name, rel) -> (
          match Mediator.find_source med src_name with
          | Some rsource -> rels := { rsource; rel; fields } :: !rels
          | None -> fail "relation access names unknown source %s" src_name)
        | None -> fail "relation %s must be source-qualified ('SRC.rel')" qrel)
      | Molecule.Cmp (op, t1, t2) -> comparisons := (op, t1, t2) :: !comparisons
      | Molecule.Pos (Molecule.Pred a)
        when List.mem a.Logic.Atom.pred dm_predicates -> (
        match a.Logic.Atom.args with
        | [ t1; t2 ] -> dm_tests := (a.Logic.Atom.pred, t1, t2) :: !dm_tests
        | _ -> fail "%s expects two arguments" a.Logic.Atom.pred)
      | l ->
        fail "literal %s is outside the plannable fragment"
          (Format.asprintf "%a" Molecule.pp_lit l))
    lits;
  (List.rev !order, List.rev !rels, List.rev !comparisons, List.rev !dm_tests)

(* Most selective first: more ground method constraints, then fewer
   targets. Ground terms here are constants written in the query;
   bind-join adds more at runtime. *)
let order_groups groups =
  let score g =
    let ground =
      List.length (List.filter (fun (_, t) -> Term.is_ground t) g.methods)
    in
    (-ground, List.length g.targets)
  in
  List.stable_sort (fun a b -> compare (score a) (score b)) groups

(* ------------------------------------------------------------------ *)
(* Execution *)

let fetch_group med cache src cls selections =
  let key =
    ( Source.name src,
      cls,
      List.map (fun (m, _, t) -> (m, Term.to_string t)) selections )
  in
  match Hashtbl.find_opt cache key with
  | Some objs -> objs
  | None ->
    let cfg = Mediator.config med in
    let caps = Source.capabilities src in
    let pushable = Capability.pushable_selections caps ~cls in
    let pushed, residual =
      if cfg.Mediator.pushdown then
        List.partition (fun (m, _, _) -> List.mem m pushable) selections
      else ([], selections)
    in
    let fetched =
      try Source.fetch_instances src ~cls ~selections:pushed
      with Source.Unsupported _ -> (
        try Source.fetch_instances src ~cls ~selections:[]
        with Source.Unsupported _ -> [])
    in
    let satisfies (o : Store.obj) (m, op, rhs) =
      List.exists
        (fun (m', v) ->
          String.equal m' m
          && match Literal.eval_cmp op v rhs with Some true -> true | _ -> false)
        o.Store.values
    in
    let objs =
      List.filter (fun o -> List.for_all (satisfies o) residual) fetched
    in
    Hashtbl.add cache key objs;
    objs

let extend_with_methods g (o : Store.obj) s0 =
  List.fold_left
    (fun ss (m, t) ->
      List.concat_map
        (fun s ->
          List.filter_map
            (fun (m', v) ->
              if String.equal m m' then Unify.unify ~init:s (Subst.apply s t) v
              else None)
            o.Store.values)
        ss)
    [ s0 ] g.methods

let run_group med cache g substs =
  List.concat_map
    (fun s ->
      let selections =
        List.filter_map
          (fun (m, t) ->
            let t' = Subst.apply s t in
            if Term.is_ground t' then Some (m, Literal.Eq, t') else None)
          g.methods
      in
      List.concat_map
        (fun (src, cls) ->
          let objs = fetch_group med cache src cls selections in
          List.concat_map
            (fun (o : Store.obj) ->
              match Unify.unify ~init:s (Subst.apply s (Term.var g.gvar)) o.Store.id with
              | None -> []
              | Some s1 -> extend_with_methods g o s1)
            objs)
        g.targets)
    substs

(* Relation access: use the binding pattern induced by the current
   bindings; fall back to a scan-and-filter when no declared capability
   admits it. *)
let run_rel_access med r substs =
  let sg = Store.signature (Source.store r.rsource) in
  let attrs =
    match Flogic.Signature.attributes sg r.rel with
    | Some attrs -> attrs
    | None -> fail "source %s has no relation %s" (Source.name r.rsource) r.rel
  in
  List.iter
    (fun (a, _) ->
      if not (List.mem a attrs) then
        fail "relation %s has no attribute %s" r.rel a)
    r.fields;
  let cfg = Mediator.config med in
  List.concat_map
    (fun s ->
      let bound_fields =
        List.filter_map
          (fun (a, t) ->
            let t' = Subst.apply s t in
            if Term.is_ground t' then Some (a, t') else None)
          r.fields
      in
      let pattern = if cfg.Mediator.pushdown then bound_fields else [] in
      let tuples =
        try Source.fetch_tuples r.rsource ~rel:r.rel ~pattern
        with Source.Unsupported _ -> (
          try Source.fetch_tuples r.rsource ~rel:r.rel ~pattern:[]
          with Source.Unsupported _ ->
            fail "source %s refuses every access to %s"
              (Source.name r.rsource) r.rel)
      in
      List.filter_map
        (fun tuple ->
          (* bind every named field against the tuple *)
          List.fold_left
            (fun acc (a, t) ->
              match acc with
              | None -> None
              | Some s -> (
                let rec pos k = function
                  | [] -> None
                  | a' :: _ when String.equal a a' -> Some k
                  | _ :: rest -> pos (k + 1) rest
                in
                match pos 0 attrs with
                | None -> None
                | Some k ->
                  Unify.unify ~init:s (Subst.apply s t) (List.nth tuple k)))
            (Some s) r.fields)
        tuples)
    substs

let dm_pairs med = function
  | "dm_isa" -> (Domain_map.Dmap.isa_links (Mediator.dmap med)).Domain_map.Dmap.definite
  | "tc_isa" -> Closure.isa_tc (Mediator.dmap med)
  | "has_a_star" -> Closure.has_a_star (Mediator.dmap med)
  | p -> fail "unknown domain-map predicate %s" p

let apply_dm_test med pairs_cache (pred, t1, t2) substs =
  let pairs =
    match Hashtbl.find_opt pairs_cache pred with
    | Some ps -> ps
    | None ->
      let ps = dm_pairs med pred in
      Hashtbl.add pairs_cache pred ps;
      ps
  in
  List.concat_map
    (fun s ->
      let a = Subst.apply s t1 and b = Subst.apply s t2 in
      match Term.as_sym a, Term.as_sym b with
      | Some x, Some y -> if List.mem (x, y) pairs then [ s ] else []
      | _ ->
        (* enumerate matching pairs, binding open sides *)
        List.filter_map
          (fun (x, y) ->
            match Unify.unify ~init:s a (Term.sym x) with
            | None -> None
            | Some s' -> Unify.unify ~init:s' (Subst.apply s' b) (Term.sym y))
          pairs)
    substs

let apply_comparisons comparisons substs =
  List.filter
    (fun s ->
      List.for_all
        (fun (op, t1, t2) ->
          match Literal.eval_cmp op (Subst.apply s t1) (Subst.apply s t2) with
          | Some b -> b
          | None -> false)
        comparisons)
    substs

let plan_steps med groups =
  let cfg = Mediator.config med in
  List.map
    (fun g ->
      let ground_methods =
        List.filter_map
          (fun (m, t) -> if Term.is_ground t then Some m else None)
          g.methods
      in
      let pushed, residual =
        List.partition
          (fun m ->
            cfg.Mediator.pushdown
            && List.exists
                 (fun (src, cls) ->
                   List.mem m
                     (Capability.pushable_selections (Source.capabilities src) ~cls))
                 g.targets)
          ground_methods
      in
      {
        variable = g.gvar;
        targets = List.map (fun (src, cls) -> (Source.name src, cls)) g.targets;
        pushed;
        residual;
      })
    groups

let rel_steps med rels =
  let cfg = Mediator.config med in
  List.map
    (fun r ->
      let bound = List.map fst r.fields in
      {
        variable = "<" ^ r.rel ^ ">";
        targets = [ (Source.name r.rsource, r.rel) ];
        pushed = (if cfg.Mediator.pushdown then bound else []);
        residual = (if cfg.Mediator.pushdown then [] else bound);
      })
    rels

let plan med lits =
  match analyze med lits with
  | groups, rels, _, _ ->
    Ok (plan_steps med (order_groups groups) @ rel_steps med rels)
  | exception Unplannable m -> Error m

let run med lits =
  match analyze med lits with
  | exception Unplannable m -> Error m
  | groups, rels, comparisons, dm_tests -> (
    List.iter Source.reset_meter (Mediator.sources med);
    let groups = order_groups groups in
    let cache = Hashtbl.create 16 in
    let pairs_cache = Hashtbl.create 4 in
    match
      let substs =
        List.fold_left
          (fun ss g -> run_group med cache g ss)
          [ Subst.empty ] groups
      in
      let substs =
        List.fold_left (fun ss r -> run_rel_access med r ss) substs rels
      in
      let substs = apply_comparisons comparisons substs in
      List.fold_left
        (fun ss test -> apply_dm_test med pairs_cache test ss)
        substs dm_tests
    with
    | exception Unplannable m -> Error m
    | substs ->
      let contacted =
        Hashtbl.fold (fun (s, _, _) _ acc -> s :: acc) cache []
        @ (if rels = [] then []
           else
             List.filter_map
               (fun r ->
                 if (Source.served r.rsource).Source.requests > 0 then
                   Some (Source.name r.rsource)
                 else None)
               rels)
        |> List.sort_uniq String.compare
      in
      let tuples =
        List.fold_left
          (fun acc s -> acc + (Source.served s).Source.tuples)
          0 (Mediator.sources med)
      in
      Ok
        ( substs,
          {
            steps = plan_steps med groups @ rel_steps med rels;
            sources_contacted = contacted;
            tuples_moved = tuples;
            answers = List.length substs;
          } ))

let run_text med src =
  match Flogic.Fl_parser.parse_query ~signature:(Mediator.signature med) src with
  | Error e -> Error e
  | Ok lits -> run med lits

let pp_report ppf r =
  List.iter
    (fun st ->
      Format.fprintf ppf "fetch %s from {%s}" st.variable
        (String.concat ", "
           (List.map (fun (s, c) -> s ^ "." ^ c) st.targets));
      if st.pushed <> [] then
        Format.fprintf ppf " pushing [%s]" (String.concat ", " st.pushed);
      if st.residual <> [] then
        Format.fprintf ppf " filtering [%s]" (String.concat ", " st.residual);
      Format.fprintf ppf "@.")
    r.steps;
  Format.fprintf ppf "sources: %s; tuples moved: %d; answers: %d@."
    (String.concat ", " r.sources_contacted)
    r.tuples_moved r.answers
