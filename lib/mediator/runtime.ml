module Fault = Wrapper.Fault

type retry_policy = { attempts : int; backoff : int; budget : int }
type breaker_policy = { trip_after : int; cooldown : int }
type policy = { retry : retry_policy; breaker : breaker_policy }

let default_policy =
  {
    retry = { attempts = 3; backoff = 50; budget = 10_000 };
    breaker = { trip_after = 3; cooldown = 1_000 };
  }

type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type health = {
  mutable state : state;
  mutable open_until : int;
  mutable consecutive : int;
  mutable calls : int;
  mutable failures : int;
  mutable retries : int;
  mutable trips : int;
  mutable absorbed : int;
  mutable quarantined : bool;
  mutable transitions : (int * state) list;
}

type t = {
  mutable policy : policy;
  mutable clock : int;
  table : (string, health) Hashtbl.t;
  order : string list ref;  (* first-use order, for stable reporting *)
}

let create ?(policy = default_policy) () =
  { policy; clock = 0; table = Hashtbl.create 8; order = ref [] }

let policy t = t.policy
let set_policy t p = t.policy <- p
let clock t = t.clock
let advance t ms = t.clock <- t.clock + max 0 ms

let health t name =
  match Hashtbl.find_opt t.table name with
  | Some h -> h
  | None ->
    let h =
      {
        state = Closed;
        open_until = 0;
        consecutive = 0;
        calls = 0;
        failures = 0;
        retries = 0;
        trips = 0;
        absorbed = 0;
        quarantined = false;
        transitions = [];
      }
    in
    Hashtbl.replace t.table name h;
    t.order := !(t.order) @ [ name ];
    h

let sources t = !(t.order)
let transitions h = List.rev h.transitions

let transition_at stamp h s =
  if h.state <> s then begin
    h.state <- s;
    h.transitions <- (stamp, s) :: h.transitions
  end

let transition t h s = transition_at t.clock h s

let trip_at stamp h ~until =
  h.trips <- h.trips + 1;
  h.open_until <- until;
  transition_at stamp h Open

(* The fetch state machine against a caller-owned clock. [now] starts
   at the caller's notion of "when this fetch begins" and is advanced
   by the channel's virtual elapsed time and by backoff delays; the
   caller decides how a batch of fetches composes into the runtime's
   global clock (sequential gather: each fetch starts where the last
   ended; concurrent gather: all fetches start together and the global
   clock advances by the slowest — see Mediator.gather_facts).

   Under a concurrent gather each task must target a distinct source:
   the health record and the fault channel are per-source mutable
   state, exclusive to the one task fetching that source, and the
   caller pre-creates health records so [health]'s lazy Hashtbl insert
   never runs off the coordinating domain. *)
let fetch_at t ~now ch f =
  let h = health t (Fault.name ch) in
  h.calls <- h.calls + 1;
  if h.quarantined then Error "quarantined after crash; awaiting re-registration"
  else begin
    (* an elapsed cooldown lets one probe through *)
    (match h.state with
    | Open when !now >= h.open_until -> transition_at !now h Half_open
    | _ -> ());
    match h.state with
    | Open ->
      Error
        (Printf.sprintf "circuit open (cooldown ends at t=%dms)" h.open_until)
    | Closed | Half_open ->
      let probing = h.state = Half_open in
      let attempts = if probing then 1 else t.policy.retry.attempts in
      let give_up reason =
        h.consecutive <- h.consecutive + 1;
        if probing then trip_at !now h ~until:(!now + t.policy.breaker.cooldown)
        else if h.consecutive >= t.policy.breaker.trip_after then
          trip_at !now h ~until:(!now + t.policy.breaker.cooldown);
        Error reason
      in
      let rec attempt n backed_off =
        let before = Fault.clock ch in
        let outcome =
          match Fault.call ch f with
          | v -> (
            match Fault.consume_corruption ch with
            | None -> Ok v
            | Some fl ->
              Error (`Fail (Printf.sprintf "corrupt payload (%s)" (Fault.fault_to_string fl))))
          | exception Fault.Injected { fault = Fault.Crash; _ } -> Error `Crash
          | exception Fault.Injected { fault; _ } ->
            Error (`Fail (Fault.fault_to_string fault))
        in
        now := !now + (Fault.clock ch - before);
        match outcome with
        | Ok v ->
          if n > 1 then h.absorbed <- h.absorbed + 1;
          h.consecutive <- 0;
          if probing then transition_at !now h Closed;
          Ok v
        | Error `Crash ->
          h.failures <- h.failures + 1;
          h.quarantined <- true;
          trip_at !now h ~until:max_int;
          Error "crashed; quarantined until re-registration"
        | Error (`Fail reason) ->
          h.failures <- h.failures + 1;
          let delay = t.policy.retry.backoff * (1 lsl (n - 1)) in
          if n < attempts && backed_off + delay <= t.policy.retry.budget then begin
            h.retries <- h.retries + 1;
            now := !now + delay;
            attempt (n + 1) (backed_off + delay)
          end
          else give_up reason
      in
      attempt 1 0
  end

let fetch t ch f =
  let now = ref t.clock in
  let r = fetch_at t ~now ch f in
  t.clock <- !now;
  r

let revive t name =
  let h = health t name in
  h.quarantined <- false;
  h.consecutive <- 0;
  h.open_until <- 0;
  transition t h Closed

type totals = {
  total_calls : int;
  total_failures : int;
  total_retries : int;
  total_trips : int;
  total_absorbed : int;
  quarantined_sources : string list;
}

let totals t =
  List.fold_left
    (fun acc name ->
      let h = health t name in
      {
        total_calls = acc.total_calls + h.calls;
        total_failures = acc.total_failures + h.failures;
        total_retries = acc.total_retries + h.retries;
        total_trips = acc.total_trips + h.trips;
        total_absorbed = acc.total_absorbed + h.absorbed;
        quarantined_sources =
          (if h.quarantined then acc.quarantined_sources @ [ name ]
           else acc.quarantined_sources);
      })
    {
      total_calls = 0;
      total_failures = 0;
      total_retries = 0;
      total_trips = 0;
      total_absorbed = 0;
      quarantined_sources = [];
    }
    (sources t)

let pp_health ppf (name, h) =
  Format.fprintf ppf
    "%s: %s%s, %d fetch(es), %d failure(s), %d retr%s, %d trip(s), %d absorbed"
    name
    (state_to_string h.state)
    (if h.quarantined then " (quarantined)" else "")
    h.calls h.failures h.retries
    (if h.retries = 1 then "y" else "ies")
    h.trips h.absorbed
