(** Fault-tolerant fetch runtime: per-source retry-with-backoff and a
    circuit breaker, all in virtual time.

    Every mediator → source fetch goes through {!fetch}, which wraps
    the operation in the source's {!Wrapper.Fault} channel and absorbs
    what it can: transient faults are retried with exponential backoff
    under a virtual-time budget; repeated failures trip a per-source
    breaker (closed → open → half-open → closed); a {!Wrapper.Fault.Crash}
    quarantines the source until it re-registers through the Figure-3
    dynamic-registration path ({!revive}). The clock is virtual — it
    advances by channel call costs and backoff delays only — so every
    run of the same fault plan produces the identical transition
    transcript. *)

type retry_policy = {
  attempts : int;  (** total tries per fetch, first one included *)
  backoff : int;  (** first retry delay, virtual ms; doubles per retry *)
  budget : int;  (** cap on cumulative backoff per fetch, virtual ms *)
}

type breaker_policy = {
  trip_after : int;  (** consecutive failed fetches that open the breaker *)
  cooldown : int;  (** virtual ms the breaker stays open before probing *)
}

type policy = { retry : retry_policy; breaker : breaker_policy }

val default_policy : policy
(** 3 attempts, 50 ms initial backoff, 10 s budget; trip after 3,
    1 s cooldown. *)

type state = Closed | Open | Half_open

val state_to_string : state -> string

type health = {
  mutable state : state;
  mutable open_until : int;  (** clock value that ends an open period *)
  mutable consecutive : int;  (** consecutive failed fetches *)
  mutable calls : int;  (** fetches attempted (not retries) *)
  mutable failures : int;  (** failed call attempts, retried ones included *)
  mutable retries : int;
  mutable trips : int;  (** breaker openings, quarantines included *)
  mutable absorbed : int;  (** fetches that succeeded only thanks to retries *)
  mutable quarantined : bool;
  mutable transitions : (int * state) list;  (** newest first *)
}

type t

val create : ?policy:policy -> unit -> t
val policy : t -> policy
val set_policy : t -> policy -> unit

val clock : t -> int
val advance : t -> int -> unit
(** Let virtual time pass (e.g. to ride out a cooldown). *)

val health : t -> string -> health
(** The health record for a source, created on first use. *)

val sources : t -> string list

val transitions : health -> (int * state) list
(** Breaker transitions in chronological order, clock-stamped. *)

val fetch : t -> Wrapper.Fault.t -> (Wrapper.Source.t -> 'a) -> ('a, string) result
(** Run one operation against a source through its fault channel under
    the retry and breaker policies. [Error reason] means the source is
    skipped for this fetch: breaker open, quarantined, or retries
    exhausted. Non-fault exceptions (e.g. {!Wrapper.Source.Unsupported})
    propagate unchanged. Advances the runtime clock by the fetch's
    virtual elapsed time (channel costs plus backoff delays). *)

val fetch_at :
  t -> now:int ref -> Wrapper.Fault.t -> (Wrapper.Source.t -> 'a) -> ('a, string) result
(** Like {!fetch}, but against a caller-owned clock: cooldown checks
    read [!now] and elapsed time accumulates into [now] instead of the
    runtime clock, which is left untouched. This is what lets a batch
    of fetches compose concurrently — start every source's [now] at the
    same instant, fan out (one task per {e distinct} source: health
    records and fault channels are per-source mutable state, and the
    caller must pre-create both on the coordinating domain), then
    {!advance} the shared clock by the slowest task's elapsed time.
    [fetch t ch f] is [fetch_at] with [now] seeded from and written
    back to the runtime clock. *)

val revive : t -> string -> unit
(** Figure-3 re-registration: lift a quarantine, close the breaker,
    clear the consecutive-failure count. Lifetime counters survive. *)

type totals = {
  total_calls : int;
  total_failures : int;
  total_retries : int;
  total_trips : int;
  total_absorbed : int;
  quarantined_sources : string list;
}

val totals : t -> totals

val pp_health : Format.formatter -> string * health -> unit
