module Term = Logic.Term
module Molecule = Flogic.Molecule

let class_name = "protein_distribution"

let schema_rules =
  let c = Term.sym class_name in
  [
    Molecule.fact (Molecule.pred Flogic.Compile.class_p [ c ]);
    Molecule.fact (Molecule.meth_sig c "protein_name" (Term.sym "string"));
    Molecule.fact (Molecule.meth_sig c "animal" (Term.sym "string"));
    Molecule.fact (Molecule.meth_sig c "ion_bound" (Term.sym "ion"));
    Molecule.fact (Molecule.meth_sig c "distribution_root" (Term.sym "anatomical_term"));
    Molecule.fact (Molecule.meth_sig c "distribution" (Term.sym "dist_tree"));
  ]

let instance_facts ~protein ~organism ~ion ~root tree =
  let id = Term.app "pd" [ Term.sym protein; Term.str organism; Term.sym root ] in
  let base =
    [
      Molecule.Isa (id, Term.sym class_name);
      Molecule.Meth_val (id, "protein_name", Term.sym protein);
      Molecule.Meth_val (id, "animal", Term.str organism);
      Molecule.Meth_val (id, "ion_bound", Term.sym ion);
      Molecule.Meth_val (id, "distribution_root", Term.sym root);
      Molecule.Meth_val (id, "distribution", Aggregate.to_term tree);
    ]
  in
  let levels =
    List.map
      (fun (concept, total) ->
        Molecule.Pred
          (Logic.Atom.make "pd_level"
             [ id; Term.sym concept; Term.float total ]))
      (Aggregate.flatten tree)
  in
  base @ levels

let materialize_distributions ?spec med ~organism ~ion ~root =
  let default = Section5.default_spec in
  let sp = Option.value ~default spec in
  (* discover the ion-binding proteins available under the root *)
  let region = Domain_map.Region.downward (Mediator.dmap med) ~root () in
  let sources =
    Mediator.select_sources med ~concepts:region.Domain_map.Region.members
  in
  let proteins =
    List.concat_map
      (fun src_name ->
        (* fetch through the fault-tolerance stack: a skipped source
           contributes nothing rather than sinking the whole IVD *)
        match
          Mediator.fetch med ~source:src_name (fun src ->
              try
                Wrapper.Source.fetch_instances src
                  ~cls:sp.Section5.protein_class
                  ~selections:
                    [ (sp.Section5.ion_field, Logic.Literal.Eq, Term.sym ion) ]
                |> List.concat_map (fun (o : Wrapper.Store.obj) ->
                       List.filter_map
                         (fun (m, v) ->
                           if String.equal m sp.Section5.name_field then
                             Term.as_string v
                           else None)
                         o.Wrapper.Store.values)
              with Wrapper.Source.Unsupported _ -> [])
        with
        | Ok names -> names
        | Error _ -> [])
      sources
    |> List.sort_uniq String.compare
  in
  let facts = ref schema_rules in
  let count = ref 0 in
  let rec collect = function
    | [] -> Ok ()
    | p :: rest -> (
      match Section5.protein_distribution ?spec med ~protein:p ~organism ~root with
      | Ok tree ->
        incr count;
        facts :=
          !facts
          @ List.map Molecule.fact (instance_facts ~protein:p ~organism ~ion ~root tree);
        collect rest
      | Error _ -> collect rest (* protein not observed under this root *))
  in
  match collect proteins with
  | Error e -> Error e
  | Ok () ->
    if !count = 0 then
      Error (Printf.sprintf "no %s-binding protein has data under %s" ion root)
    else begin
      Mediator.add_ivd med !facts;
      Ok !count
    end

let answer_query ?spec med ~organism ~transmitting_compartment ~ion =
  match
    Section5.calcium_binding_query ?spec med ~organism ~transmitting_compartment
      ~ion ()
  with
  | Error e -> Error e
  | Ok outcome -> (
    match outcome.Section5.root with
    | None -> Error "no distribution root"
    | Some root -> (
      match materialize_distributions ?spec med ~organism ~ion ~root with
      | Error e -> Error e
      | Ok _ ->
        (* the paper's answer(P, D) over mediated classes *)
        let v = Term.var in
        Ok
          (Mediator.query med
             [
               Molecule.Pos (Molecule.Isa (v "D", Term.sym class_name));
               Molecule.Pos (Molecule.Meth_val (v "D", "protein_name", v "P"));
               Molecule.Pos (Molecule.Meth_val (v "D", "ion_bound", Term.sym ion));
               Molecule.Pos
                 (Molecule.Meth_val (v "D", "distribution_root", Term.sym root));
             ])))
