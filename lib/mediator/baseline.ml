module Term = Logic.Term
module Source = Wrapper.Source
module Store = Wrapper.Store

type outcome = {
  rows : (string * string * float) list;
  proteins : string list;
  per_location : (string * float) list;
  sources_contacted : string list;
  tuples_moved : int;
  duration_ms : float;
}

let value_str (o : Store.obj) field =
  List.filter_map
    (fun (m, v) -> if String.equal m field then Term.as_string v else None)
    o.Store.values

let value_float (o : Store.obj) field =
  List.filter_map
    (fun (m, v) ->
      if String.equal m field then
        match v with
        | Term.Const (Term.Float f) -> Some f
        | Term.Const (Term.Int i) -> Some (float_of_int i)
        | _ -> None
      else None)
    o.Store.values

let calcium_binding_query ?(spec = Section5.default_spec) med ~organism
    ~transmitting_compartment ~ion () =
  List.iter Source.reset_meter (Mediator.sources med);
  let t0 = Sys.time () in
  (* Broadcast: pull every class of every source, unfiltered. *)
  let all_objects =
    List.concat_map
      (fun src ->
        List.concat_map
          (fun cls ->
            try
              List.map
                (fun o -> (cls, o))
                (Source.fetch_instances src ~cls ~selections:[])
            with Source.Unsupported _ -> [])
          (Gcm.Schema.class_names (Source.schema src)))
      (Mediator.sources med)
  in
  (* Mediator-side filtering and string joins. *)
  let nt_rows =
    List.filter_map
      (fun (cls, o) ->
        if
          String.equal cls spec.Section5.nt_class
          && List.mem organism (value_str o spec.Section5.organism_field)
          && List.mem transmitting_compartment
               (value_str o spec.Section5.trans_comp_field)
        then Some o
        else None)
      all_objects
  in
  if nt_rows = [] then
    Error
      (Printf.sprintf "no neurotransmission data for organism=%s, %s=%s"
         organism spec.Section5.trans_comp_field transmitting_compartment)
  else begin
    let locations =
      List.concat_map
        (fun o ->
          value_str o spec.Section5.recv_neuron_field
          @ value_str o spec.Section5.recv_comp_field)
        nt_rows
      |> List.sort_uniq String.compare
    in
    let binding_proteins =
      List.concat_map
        (fun (cls, o) ->
          if
            String.equal cls spec.Section5.protein_class
            && List.mem ion (value_str o spec.Section5.ion_field)
          then value_str o spec.Section5.name_field
          else [])
        all_objects
      |> List.sort_uniq String.compare
    in
    let rows =
      List.filter_map
        (fun (cls, o) ->
          if String.equal cls spec.Section5.protein_amount_class then
            match
              ( value_str o spec.Section5.protein_name_field,
                value_str o spec.Section5.location_field,
                value_float o spec.Section5.amount_field )
            with
            | p :: _, loc :: _, amount :: _
              when List.mem loc locations
                   && (binding_proteins = [] || List.mem p binding_proteins) ->
              Some (p, loc, amount)
            | _ -> None
          else None)
        all_objects
    in
    let proteins =
      List.map (fun (p, _, _) -> p) rows |> List.sort_uniq String.compare
    in
    let per_location =
      List.fold_left
        (fun acc (_, loc, amount) ->
          let prev = match List.assoc_opt loc acc with Some x -> x | None -> 0.0 in
          (loc, prev +. amount) :: List.remove_assoc loc acc)
        [] rows
      |> List.sort compare
    in
    let tuples_moved =
      List.fold_left
        (fun acc s -> acc + (Source.served s).Source.tuples)
        0 (Mediator.sources med)
    in
    Ok
      {
        rows;
        proteins;
        per_location;
        sources_contacted = List.map Source.name (Mediator.sources med);
        tuples_moved;
        duration_ms = (Sys.time () -. t0) *. 1000.0;
      }
  end
