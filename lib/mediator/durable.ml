module Fault = Wrapper.Fault

type source_state = {
  name : string;
  state : Runtime.state;
  open_until : int;
  consecutive : int;
  calls : int;
  failures : int;
  retries : int;
  trips : int;
  absorbed : int;
  quarantined : bool;
  transitions : (int * Runtime.state) list;
  plan : Fault.plan;
  channel_calls : int;
  channel_crashed : bool;
  channel_stale : bool;
  channel_clock : int;
  capabilities : string list;
}

type state = {
  clock : int;
  degraded : int;
  completeness : (string list * (string * string) list * string list) option;
  sources : source_state list;
}

let magic = "KINDFED1"
let federation_file = "federation.kind"

(* frame kinds *)
let k_runtime = 1
let k_source = 2
let k_end = 255

let breaker_tag = function
  | Runtime.Closed -> 0
  | Runtime.Open -> 1
  | Runtime.Half_open -> 2

let breaker_of_tag = function
  | 0 -> Runtime.Closed
  | 1 -> Runtime.Open
  | 2 -> Runtime.Half_open
  | n -> raise (Codec.Dec.Corrupt (Printf.sprintf "federation: breaker tag %d" n))

let enc_fault e (f : Fault.fault) =
  match f with
  | Fault.Delay n ->
    Codec.Enc.u8 e 0;
    Codec.Enc.i64 e n
  | Fault.Timeout -> Codec.Enc.u8 e 1
  | Fault.Transient m ->
    Codec.Enc.u8 e 2;
    Codec.Enc.str e m
  | Fault.Crash -> Codec.Enc.u8 e 3
  | Fault.Truncate k ->
    Codec.Enc.u8 e 4;
    Codec.Enc.i64 e k
  | Fault.Garble -> Codec.Enc.u8 e 5
  | Fault.Stale_caps -> Codec.Enc.u8 e 6

let dec_fault d : Fault.fault =
  match Codec.Dec.u8 d with
  | 0 -> Fault.Delay (Codec.Dec.i64 d)
  | 1 -> Fault.Timeout
  | 2 -> Fault.Transient (Codec.Dec.str d)
  | 3 -> Fault.Crash
  | 4 -> Fault.Truncate (Codec.Dec.i64 d)
  | 5 -> Fault.Garble
  | 6 -> Fault.Stale_caps
  | n -> raise (Codec.Dec.Corrupt (Printf.sprintf "federation: fault tag %d" n))

let enc_plan e (p : Fault.plan) =
  match p with
  | Fault.Reliable -> Codec.Enc.u8 e 0
  | Fault.Script events ->
    Codec.Enc.u8 e 1;
    Codec.Enc.u32 e (List.length events);
    List.iter
      (fun (ev : Fault.event) ->
        Codec.Enc.u32 e ev.Fault.at;
        enc_fault e ev.Fault.fault)
      events
  | Fault.Always f ->
    Codec.Enc.u8 e 2;
    enc_fault e f
  | Fault.Seeded { seed; rates } ->
    Codec.Enc.u8 e 3;
    Codec.Enc.i64 e seed;
    Codec.Enc.u32 e rates.Fault.delay;
    Codec.Enc.u32 e rates.Fault.timeout;
    Codec.Enc.u32 e rates.Fault.transient;
    Codec.Enc.u32 e rates.Fault.crash;
    Codec.Enc.u32 e rates.Fault.truncate;
    Codec.Enc.u32 e rates.Fault.garble;
    Codec.Enc.u32 e rates.Fault.stale

let dec_plan d : Fault.plan =
  match Codec.Dec.u8 d with
  | 0 -> Fault.Reliable
  | 1 ->
    let n = Codec.Dec.u32 d in
    Fault.Script
      (List.init n (fun _ ->
           let at = Codec.Dec.u32 d in
           let fault = dec_fault d in
           { Fault.at; fault }))
  | 2 -> Fault.Always (dec_fault d)
  | 3 ->
    let seed = Codec.Dec.i64 d in
    let delay = Codec.Dec.u32 d in
    let timeout = Codec.Dec.u32 d in
    let transient = Codec.Dec.u32 d in
    let crash = Codec.Dec.u32 d in
    let truncate = Codec.Dec.u32 d in
    let garble = Codec.Dec.u32 d in
    let stale = Codec.Dec.u32 d in
    Fault.Seeded
      { seed;
        rates =
          { Fault.delay; timeout; transient; crash; truncate; garble; stale } }
  | n -> raise (Codec.Dec.Corrupt (Printf.sprintf "federation: plan tag %d" n))

let enc_str_list e l =
  Codec.Enc.u32 e (List.length l);
  List.iter (Codec.Enc.str e) l

let dec_str_list d =
  let n = Codec.Dec.u32 d in
  List.init n (fun _ -> Codec.Dec.str d)

let encode_source (s : source_state) =
  let e = Codec.Enc.create () in
  Codec.Enc.str e s.name;
  Codec.Enc.u8 e (breaker_tag s.state);
  Codec.Enc.i64 e s.open_until;
  Codec.Enc.u32 e s.consecutive;
  Codec.Enc.u32 e s.calls;
  Codec.Enc.u32 e s.failures;
  Codec.Enc.u32 e s.retries;
  Codec.Enc.u32 e s.trips;
  Codec.Enc.u32 e s.absorbed;
  Codec.Enc.bool e s.quarantined;
  Codec.Enc.u32 e (List.length s.transitions);
  List.iter
    (fun (at, st) ->
      Codec.Enc.i64 e at;
      Codec.Enc.u8 e (breaker_tag st))
    s.transitions;
  enc_plan e s.plan;
  Codec.Enc.u32 e s.channel_calls;
  Codec.Enc.bool e s.channel_crashed;
  Codec.Enc.bool e s.channel_stale;
  Codec.Enc.i64 e s.channel_clock;
  enc_str_list e s.capabilities;
  Codec.encode_frame { Codec.kind = k_source; payload = Codec.Enc.contents e }

let decode_source payload =
  let d = Codec.Dec.of_string payload in
  let name = Codec.Dec.str d in
  let state = breaker_of_tag (Codec.Dec.u8 d) in
  let open_until = Codec.Dec.i64 d in
  let consecutive = Codec.Dec.u32 d in
  let calls = Codec.Dec.u32 d in
  let failures = Codec.Dec.u32 d in
  let retries = Codec.Dec.u32 d in
  let trips = Codec.Dec.u32 d in
  let absorbed = Codec.Dec.u32 d in
  let quarantined = Codec.Dec.bool d in
  let n_tr = Codec.Dec.u32 d in
  let transitions =
    List.init n_tr (fun _ ->
        let at = Codec.Dec.i64 d in
        let st = breaker_of_tag (Codec.Dec.u8 d) in
        (at, st))
  in
  let plan = dec_plan d in
  let channel_calls = Codec.Dec.u32 d in
  let channel_crashed = Codec.Dec.bool d in
  let channel_stale = Codec.Dec.bool d in
  let channel_clock = Codec.Dec.i64 d in
  let capabilities = dec_str_list d in
  {
    name;
    state;
    open_until;
    consecutive;
    calls;
    failures;
    retries;
    trips;
    absorbed;
    quarantined;
    transitions;
    plan;
    channel_calls;
    channel_crashed;
    channel_stale;
    channel_clock;
    capabilities;
  }

let encode (st : state) =
  let b = Buffer.create 512 in
  Buffer.add_string b (Codec.file_header ~magic);
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e st.clock;
  Codec.Enc.u32 e st.degraded;
  (match st.completeness with
  | None -> Codec.Enc.bool e false
  | Some (contributed, skipped, suspect) ->
    Codec.Enc.bool e true;
    enc_str_list e contributed;
    Codec.Enc.u32 e (List.length skipped);
    List.iter
      (fun (n, r) ->
        Codec.Enc.str e n;
        Codec.Enc.str e r)
      skipped;
    enc_str_list e suspect);
  Buffer.add_string b
    (Codec.encode_frame
       { Codec.kind = k_runtime; payload = Codec.Enc.contents e });
  List.iter (fun s -> Buffer.add_string b (encode_source s)) st.sources;
  Buffer.add_string b
    (Codec.encode_frame { Codec.kind = k_end; payload = "" });
  Buffer.contents b

let decode s =
  match Codec.decode_file ~magic s with
  | Error e -> Error ("federation: " ^ e)
  | Ok (_, Codec.Torn { at; reason }) ->
    (* written only via atomic replace: any tear means the file never
       completed and there is no trustworthy prefix *)
    Error (Printf.sprintf "federation: torn at byte %d (%s)" at reason)
  | Ok (frames, Codec.Clean) -> (
    try
      let clock = ref 0
      and degraded = ref 0
      and completeness = ref None
      and sources = ref []
      and ended = ref false in
      List.iter
        (fun { Codec.kind; payload } ->
          if kind = k_runtime then begin
            let d = Codec.Dec.of_string payload in
            clock := Codec.Dec.i64 d;
            degraded := Codec.Dec.u32 d;
            if Codec.Dec.bool d then begin
              let contributed = dec_str_list d in
              let n = Codec.Dec.u32 d in
              let skipped =
                List.init n (fun _ ->
                    let name = Codec.Dec.str d in
                    let reason = Codec.Dec.str d in
                    (name, reason))
              in
              let suspect = dec_str_list d in
              completeness := Some (contributed, skipped, suspect)
            end
          end
          else if kind = k_source then
            sources := decode_source payload :: !sources
          else if kind = k_end then ended := true)
        frames;
      if not !ended then Error "federation: missing end marker"
      else
        Ok
          {
            clock = !clock;
            degraded = !degraded;
            completeness = !completeness;
            sources = List.rev !sources;
          }
    with Codec.Dec.Corrupt msg -> Error msg)

let save fs st = Codec.write_file_atomic fs ~path:federation_file (encode st)

let load fs =
  match fs.Codec.read federation_file with
  | None -> Ok None
  | Some s -> (
    match decode s with
    | Ok st -> Ok (Some st)
    | Error e ->
      (* distinguish "never completed" from "structurally wrong": a torn
         creation behaves like absence *)
      if String.length s < String.length (Codec.file_header ~magic) then
        Ok None
      else Error e)
