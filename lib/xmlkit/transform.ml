type t = Xml.t -> Xml.t list

let id x = [ x ]
let none _ = []
let const outs _ = outs

let select path x = Path.select path x
let select_str s = select (Path.parse_exn s)

let seq f g x = List.concat_map g (f x)
let ( >>> ) = seq
let alt f g x = f x @ g x

let when_tag tag f x =
  match Xml.tag x with
  | Some t when String.equal t tag -> f x
  | _ -> []

let rename tag x =
  match x with
  | Xml.Element (_, attrs, children) -> [ Xml.Element (tag, attrs, children) ]
  | Xml.Text _ -> [ x ]

let wrap tag ?(attrs = []) f x = [ Xml.elt tag ~attrs (f x) ]

let map_children f x =
  match x with
  | Xml.Element (tag, attrs, children) ->
    [ Xml.Element (tag, attrs, List.concat_map f children) ]
  | Xml.Text _ -> [ x ]

let set_attr k v x =
  match x with
  | Xml.Element (tag, attrs, children) ->
    [ Xml.Element (tag, (k, v) :: List.remove_assoc k attrs, children) ]
  | Xml.Text _ -> [ x ]

let drop_attr k x =
  match x with
  | Xml.Element (tag, attrs, children) ->
    [ Xml.Element (tag, List.remove_assoc k attrs, children) ]
  | Xml.Text _ -> [ x ]

let text_of x = [ Xml.Text (Xml.text_content x) ]

let element tag ?(attrs = []) parts x =
  let computed_attrs =
    List.filter_map (fun (k, f) -> Option.map (fun v -> (k, v)) (f x)) attrs
  in
  [ Xml.elt tag ~attrs:computed_attrs (List.concat_map (fun p -> p x) parts) ]

let apply f x = f x

let apply_one f x =
  match f x with
  | [ out ] -> Ok out
  | outs -> Error (Printf.sprintf "expected 1 output tree, got %d" (List.length outs))
