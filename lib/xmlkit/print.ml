let escape generic s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' when not generic -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_text = escape true
let escape_attr = escape false

let to_string ?(indent = false) t =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Xml.Text s ->
      pad depth;
      Buffer.add_string buf (escape_text s);
      nl ()
    | Xml.Element (tag, attrs, children) ->
      pad depth;
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_attr v);
          Buffer.add_char buf '"')
        attrs;
      if children = [] then begin
        Buffer.add_string buf "/>";
        nl ()
      end
      else begin
        Buffer.add_char buf '>';
        nl ();
        List.iter (go (depth + 1)) children;
        pad depth;
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_char buf '>';
        nl ()
      end
  in
  go 0 t;
  Buffer.contents buf
