(** A small, dependency-free XML parser: elements, attributes, text,
    comments, CDATA, the five predefined entities and numeric character
    references. No DTD processing (declarations are skipped) — exactly
    what the mediator's wire format needs, nothing more. *)

exception Error of string * int
(** message, character offset *)

val parse : string -> (Xml.t, string) result
(** Parse a document; whitespace-only text between elements is
    dropped. *)

val parse_exn : string -> Xml.t

(** {1 Recoverable-error mode} *)

type recovery = { offset : int; reason : string }
(** One repair the lenient parser applied: byte [offset] in the input,
    human-readable [reason]. *)

val line_col_of_offset : string -> int -> int * int
(** [line_col_of_offset src offset] is the 1-based (line, column) of
    byte [offset] in [src]. {!recovery.offset} (like {!Error}'s offset)
    is a byte offset into the damaged payload — rendering it directly
    in a line:col location (e.g. {!Analysis.Diagnostic}) drifts as soon
    as the payload spans more than one line; translate it with this.
    An offset past the end of [src] maps to the position just past the
    last byte. *)

val parse_lenient : string -> (Xml.t * recovery list) option
(** Tolerant scan for payloads damaged in transit. Unclosed elements are
    auto-closed, stray closing tags dropped, broken entities and
    attribute syntax repaired, truncation at any byte tolerated — each
    repair recorded in order. Returns the first root element found, or
    [None] if the input contains no element at all. Never raises. On a
    well-formed document it agrees with {!parse} and reports no
    recoveries. *)

val parse_fragment : string -> (Xml.t list, string) result
(** Parse a sequence of top-level elements (no single-root rule). *)
