(** A small, dependency-free XML parser: elements, attributes, text,
    comments, CDATA, the five predefined entities and numeric character
    references. No DTD processing (declarations are skipped) — exactly
    what the mediator's wire format needs, nothing more. *)

exception Error of string * int
(** message, character offset *)

val parse : string -> (Xml.t, string) result
(** Parse a document; whitespace-only text between elements is
    dropped. *)

val parse_exn : string -> Xml.t

(** {1 Recoverable-error mode} *)

type recovery = { offset : int; reason : string }
(** One repair the lenient parser applied: byte [offset] in the input,
    human-readable [reason]. *)

val parse_lenient : string -> (Xml.t * recovery list) option
(** Tolerant scan for payloads damaged in transit. Unclosed elements are
    auto-closed, stray closing tags dropped, broken entities and
    attribute syntax repaired, truncation at any byte tolerated — each
    repair recorded in order. Returns the first root element found, or
    [None] if the input contains no element at all. Never raises. On a
    well-formed document it agrees with {!parse} and reports no
    recoveries. *)

val parse_fragment : string -> (Xml.t list, string) result
(** Parse a sequence of top-level elements (no single-root rule). *)
