(** A small, dependency-free XML parser: elements, attributes, text,
    comments, CDATA, the five predefined entities and numeric character
    references. No DTD processing (declarations are skipped) — exactly
    what the mediator's wire format needs, nothing more. *)

exception Error of string * int
(** message, character offset *)

val parse : string -> (Xml.t, string) result
(** Parse a document; whitespace-only text between elements is
    dropped. *)

val parse_exn : string -> Xml.t

val parse_fragment : string -> (Xml.t list, string) result
(** Parse a sequence of top-level elements (no single-root rule). *)
