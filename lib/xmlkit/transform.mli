(** Tree-transformation combinators: the "complex XML query
    expressions" a source sends to install a CM plug-in (Section 2).
    A transform maps one XML tree to a list of output trees; combinators
    compose them into document-to-document rewritings.

    The shipped plug-ins are hand-written OCaml for efficiency, but
    {!Transform} is the declarative counterpart: a translator expressed
    as data, which could itself travel over the wire. *)

type t = Xml.t -> Xml.t list

(** {1 Primitives} *)

val id : t
val none : t
val const : Xml.t list -> t

val select : Path.t -> t
(** All elements the path selects from the input. *)

val select_str : string -> t

(** {1 Composition} *)

val seq : t -> t -> t
(** [seq f g] — apply [g] to every output of [f], concatenating. *)

val ( >>> ) : t -> t -> t
val alt : t -> t -> t
(** Outputs of both transforms. *)

val when_tag : string -> t -> t
(** Apply only to elements with the given tag (else no output). *)

(** {1 Element builders} *)

val rename : string -> t
(** Replace the element's tag, keeping attributes and children. *)

val wrap : string -> ?attrs:(string * string) list -> t -> t
(** Collect the transform's outputs under a fresh element. *)

val map_children : t -> t
(** Rebuild the element with each child rewritten (children producing
    no output are dropped; multiple outputs are spliced). *)

val set_attr : string -> string -> t
val drop_attr : string -> t

val text_of : t
(** The element's text content as a text node. *)

val element :
  string ->
  ?attrs:(string * (Xml.t -> string option)) list ->
  (Xml.t -> Xml.t list) list ->
  t
(** [element tag ~attrs parts] builds one output element per input:
    attributes are computed from the input (skipped on [None]), the
    children are the concatenated outputs of [parts]. *)

(** {1 Running} *)

val apply : t -> Xml.t -> Xml.t list
val apply_one : t -> Xml.t -> (Xml.t, string) result
(** Expect exactly one output tree. *)
