exception Error of string * int

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let fail st msg = raise (Error (msg, st.pos))

let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let eat st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st (Printf.sprintf "expected %S" s)

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ()

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let read_name st =
  let start = st.pos in
  while
    match peek st with Some c when is_name_char c -> true | _ -> false
  do
    advance st
  done;
  if st.pos = start then fail st "expected name";
  String.sub st.src start (st.pos - start)

let decode_entities st s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      match String.index_from_opt s !i ';' with
      | None -> fail st "unterminated entity"
      | Some j ->
        let ent = String.sub s (!i + 1) (j - !i - 1) in
        (match ent with
        | "lt" -> Buffer.add_char buf '<'
        | "gt" -> Buffer.add_char buf '>'
        | "amp" -> Buffer.add_char buf '&'
        | "apos" -> Buffer.add_char buf '\''
        | "quot" -> Buffer.add_char buf '"'
        | _ when String.length ent > 1 && ent.[0] = '#' -> (
          let code =
            if ent.[1] = 'x' || ent.[1] = 'X' then
              int_of_string_opt ("0x" ^ String.sub ent 2 (String.length ent - 2))
            else int_of_string_opt (String.sub ent 1 (String.length ent - 1))
          in
          match code with
          | Some c when c < 128 -> Buffer.add_char buf (Char.chr c)
          | Some c ->
            (* encode as UTF-8 *)
            if c < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
            end
          | None -> fail st ("bad character reference &" ^ ent ^ ";"))
        | _ -> fail st ("unknown entity &" ^ ent ^ ";"));
        i := j + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let read_attr_value st =
  let quote =
    match peek st with
    | Some ('"' as q) | Some ('\'' as q) ->
      advance st;
      q
    | _ -> fail st "expected quoted attribute value"
  in
  let start = st.pos in
  while (match peek st with Some c when c <> quote -> true | _ -> false) do
    advance st
  done;
  let v = String.sub st.src start (st.pos - start) in
  (match peek st with
  | Some c when c = quote -> advance st
  | _ -> fail st "unterminated attribute value");
  decode_entities st v

let skip_misc st =
  (* comments, processing instructions, doctype *)
  let rec go () =
    skip_ws st;
    if looking_at st "<!--" then begin
      match
        let rec find i =
          if i + 3 > String.length st.src then None
          else if String.sub st.src i 3 = "-->" then Some (i + 3)
          else find (i + 1)
        in
        find (st.pos + 4)
      with
      | Some j ->
        st.pos <- j;
        go ()
      | None -> fail st "unterminated comment"
    end
    else if looking_at st "<?" || looking_at st "<!DOCTYPE" then begin
      match String.index_from_opt st.src st.pos '>' with
      | Some j ->
        st.pos <- j + 1;
        go ()
      | None -> fail st "unterminated declaration"
    end
  in
  go ()

let rec parse_element st =
  eat st "<";
  let name = read_name st in
  let rec read_attrs acc =
    skip_ws st;
    match peek st with
    | Some '>' | Some '/' -> List.rev acc
    | _ ->
      let aname = read_name st in
      skip_ws st;
      eat st "=";
      skip_ws st;
      let v = read_attr_value st in
      read_attrs ((aname, v) :: acc)
  in
  let attrs = read_attrs [] in
  skip_ws st;
  if looking_at st "/>" then begin
    eat st "/>";
    Xml.Element (name, attrs, [])
  end
  else begin
    eat st ">";
    let children = parse_content st in
    eat st "</";
    let close = read_name st in
    if not (String.equal close name) then
      fail st (Printf.sprintf "mismatched closing tag %s for %s" close name);
    skip_ws st;
    eat st ">";
    Xml.Element (name, attrs, children)
  end

and parse_content st =
  let children = ref [] in
  let rec go () =
    if looking_at st "</" then ()
    else if looking_at st "<!--" then begin
      skip_misc st;
      go ()
    end
    else if looking_at st "<![CDATA[" then begin
      let start = st.pos + 9 in
      let rec find i =
        if i + 3 > String.length st.src then fail st "unterminated CDATA"
        else if String.sub st.src i 3 = "]]>" then i
        else find (i + 1)
      in
      let stop = find start in
      children := Xml.Text (String.sub st.src start (stop - start)) :: !children;
      st.pos <- stop + 3;
      go ()
    end
    else if looking_at st "<?" then begin
      skip_misc st;
      go ()
    end
    else if looking_at st "<" then begin
      children := parse_element st :: !children;
      go ()
    end
    else if st.pos >= String.length st.src then fail st "unexpected end of input"
    else begin
      let start = st.pos in
      while (match peek st with Some c when c <> '<' -> true | _ -> false) do
        advance st
      done;
      let txt = decode_entities st (String.sub st.src start (st.pos - start)) in
      if String.trim txt <> "" then children := Xml.Text txt :: !children;
      go ()
    end
  in
  go ();
  List.rev !children

let parse_exn src =
  let st = { src; pos = 0 } in
  skip_misc st;
  let root = parse_element st in
  skip_misc st;
  if st.pos < String.length src then fail st "trailing content after document";
  root

let parse src =
  match parse_exn src with
  | t -> Ok t
  | exception Error (msg, pos) ->
    Error (Printf.sprintf "XML parse error at offset %d: %s" pos msg)

let parse_fragment src =
  match
    let st = { src; pos = 0 } in
    let rec go acc =
      skip_misc st;
      if st.pos >= String.length src then List.rev acc
      else go (parse_element st :: acc)
    in
    go []
  with
  | ts -> Ok ts
  | exception Error (msg, pos) ->
    Error (Printf.sprintf "XML parse error at offset %d: %s" pos msg)
