exception Error of string * int

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let fail st msg = raise (Error (msg, st.pos))

let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let eat st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st (Printf.sprintf "expected %S" s)

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ()

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let read_name st =
  let start = st.pos in
  while
    match peek st with Some c when is_name_char c -> true | _ -> false
  do
    advance st
  done;
  if st.pos = start then fail st "expected name";
  String.sub st.src start (st.pos - start)

let decode_entities st s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      match String.index_from_opt s !i ';' with
      | None -> fail st "unterminated entity"
      | Some j ->
        let ent = String.sub s (!i + 1) (j - !i - 1) in
        (match ent with
        | "lt" -> Buffer.add_char buf '<'
        | "gt" -> Buffer.add_char buf '>'
        | "amp" -> Buffer.add_char buf '&'
        | "apos" -> Buffer.add_char buf '\''
        | "quot" -> Buffer.add_char buf '"'
        | _ when String.length ent > 1 && ent.[0] = '#' -> (
          let code =
            if ent.[1] = 'x' || ent.[1] = 'X' then
              int_of_string_opt ("0x" ^ String.sub ent 2 (String.length ent - 2))
            else int_of_string_opt (String.sub ent 1 (String.length ent - 1))
          in
          match code with
          | Some c when c < 128 -> Buffer.add_char buf (Char.chr c)
          | Some c ->
            (* encode as UTF-8 *)
            if c < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
            end
          | None -> fail st ("bad character reference &" ^ ent ^ ";"))
        | _ -> fail st ("unknown entity &" ^ ent ^ ";"));
        i := j + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let read_attr_value st =
  let quote =
    match peek st with
    | Some ('"' as q) | Some ('\'' as q) ->
      advance st;
      q
    | _ -> fail st "expected quoted attribute value"
  in
  let start = st.pos in
  while (match peek st with Some c when c <> quote -> true | _ -> false) do
    advance st
  done;
  let v = String.sub st.src start (st.pos - start) in
  (match peek st with
  | Some c when c = quote -> advance st
  | _ -> fail st "unterminated attribute value");
  decode_entities st v

let skip_misc st =
  (* comments, processing instructions, doctype *)
  let rec go () =
    skip_ws st;
    if looking_at st "<!--" then begin
      match
        let rec find i =
          if i + 3 > String.length st.src then None
          else if String.sub st.src i 3 = "-->" then Some (i + 3)
          else find (i + 1)
        in
        find (st.pos + 4)
      with
      | Some j ->
        st.pos <- j;
        go ()
      | None -> fail st "unterminated comment"
    end
    else if looking_at st "<?" || looking_at st "<!DOCTYPE" then begin
      match String.index_from_opt st.src st.pos '>' with
      | Some j ->
        st.pos <- j + 1;
        go ()
      | None -> fail st "unterminated declaration"
    end
  in
  go ()

let rec parse_element st =
  eat st "<";
  let name = read_name st in
  let rec read_attrs acc =
    skip_ws st;
    match peek st with
    | Some '>' | Some '/' -> List.rev acc
    | _ ->
      let aname = read_name st in
      skip_ws st;
      eat st "=";
      skip_ws st;
      let v = read_attr_value st in
      read_attrs ((aname, v) :: acc)
  in
  let attrs = read_attrs [] in
  skip_ws st;
  if looking_at st "/>" then begin
    eat st "/>";
    Xml.Element (name, attrs, [])
  end
  else begin
    eat st ">";
    let children = parse_content st in
    eat st "</";
    let close = read_name st in
    if not (String.equal close name) then
      fail st (Printf.sprintf "mismatched closing tag %s for %s" close name);
    skip_ws st;
    eat st ">";
    Xml.Element (name, attrs, children)
  end

and parse_content st =
  let children = ref [] in
  let rec go () =
    if looking_at st "</" then ()
    else if looking_at st "<!--" then begin
      skip_misc st;
      go ()
    end
    else if looking_at st "<![CDATA[" then begin
      let start = st.pos + 9 in
      let rec find i =
        if i + 3 > String.length st.src then fail st "unterminated CDATA"
        else if String.sub st.src i 3 = "]]>" then i
        else find (i + 1)
      in
      let stop = find start in
      children := Xml.Text (String.sub st.src start (stop - start)) :: !children;
      st.pos <- stop + 3;
      go ()
    end
    else if looking_at st "<?" then begin
      skip_misc st;
      go ()
    end
    else if looking_at st "<" then begin
      children := parse_element st :: !children;
      go ()
    end
    else if st.pos >= String.length st.src then fail st "unexpected end of input"
    else begin
      let start = st.pos in
      while (match peek st with Some c when c <> '<' -> true | _ -> false) do
        advance st
      done;
      let txt = decode_entities st (String.sub st.src start (st.pos - start)) in
      if String.trim txt <> "" then children := Xml.Text txt :: !children;
      go ()
    end
  in
  go ();
  List.rev !children

let parse_exn src =
  let st = { src; pos = 0 } in
  skip_misc st;
  let root = parse_element st in
  skip_misc st;
  if st.pos < String.length src then fail st "trailing content after document";
  root

let parse src =
  match parse_exn src with
  | t -> Ok t
  | exception Error (msg, pos) ->
    Error (Printf.sprintf "XML parse error at offset %d: %s" pos msg)

(* ------------------------------------------------------------------ *)
(* Recoverable-error mode: a tolerant scanner for payloads damaged in
   transit (truncation, garbled bytes, entity junk). Never raises;
   every deviation from well-formedness is repaired and recorded. *)

type recovery = { offset : int; reason : string }

(* [recovery.offset] is a BYTE offset into the damaged payload;
   anything that renders it in a Diagnostic-style line:col location
   must translate it, or offsets past the first newline drift (byte 40
   of a 3-line payload is not column 40). *)
let line_col_of_offset src offset =
  let n = min (max 0 offset) (String.length src) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to n - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, n - !bol + 1)

let parse_lenient src =
  let n = String.length src in
  let recoveries = ref [] in
  let note offset reason = recoveries := { offset; reason } :: !recoveries in
  let roots = ref [] in
  let stack = ref [] in
  (* open frames: (tag, attrs, reverse children) *)
  let add_child node =
    match !stack with
    | (name, attrs, kids) :: rest ->
      stack := (name, attrs, node :: kids) :: rest
    | [] -> (
      match node with
      | Xml.Element _ -> roots := node :: !roots
      | Xml.Text _ -> ())
  in
  let close_frame () =
    match !stack with
    | (name, attrs, kids) :: rest ->
      stack := rest;
      add_child (Xml.Element (name, attrs, List.rev kids))
    | [] -> ()
  in
  let decode offset s =
    (* Parse.decode_entities, made total: anything undecodable is
       copied through literally with a note *)
    let buf = Buffer.create (String.length s) in
    let m = String.length s in
    let i = ref 0 in
    while !i < m do
      if s.[!i] = '&' then begin
        match String.index_from_opt s !i ';' with
        | None ->
          note (offset + !i) "unterminated entity";
          Buffer.add_char buf '&';
          incr i
        | Some j -> (
          let ent = String.sub s (!i + 1) (j - !i - 1) in
          let put d =
            Buffer.add_string buf d;
            i := j + 1
          in
          match ent with
          | "lt" -> put "<"
          | "gt" -> put ">"
          | "amp" -> put "&"
          | "apos" -> put "'"
          | "quot" -> put "\""
          | _ when String.length ent > 1 && ent.[0] = '#' -> (
            let code =
              if ent.[1] = 'x' || ent.[1] = 'X' then
                int_of_string_opt ("0x" ^ String.sub ent 2 (String.length ent - 2))
              else int_of_string_opt (String.sub ent 1 (String.length ent - 1))
            in
            match code with
            | Some c when c >= 0 && c < 128 -> put (String.make 1 (Char.chr c))
            | Some c when c >= 0 && c < 0x800 ->
              let b = Bytes.create 2 in
              Bytes.set b 0 (Char.chr (0xC0 lor (c lsr 6)));
              Bytes.set b 1 (Char.chr (0x80 lor (c land 0x3F)));
              put (Bytes.to_string b)
            | Some c when c >= 0 && c < 0x10000 ->
              let b = Bytes.create 3 in
              Bytes.set b 0 (Char.chr (0xE0 lor (c lsr 12)));
              Bytes.set b 1 (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
              Bytes.set b 2 (Char.chr (0x80 lor (c land 0x3F)));
              put (Bytes.to_string b)
            | Some c when c >= 0 && c <= 0x10FFFF ->
              let b = Bytes.create 4 in
              Bytes.set b 0 (Char.chr (0xF0 lor (c lsr 18)));
              Bytes.set b 1 (Char.chr (0x80 lor ((c lsr 12) land 0x3F)));
              Bytes.set b 2 (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
              Bytes.set b 3 (Char.chr (0x80 lor (c land 0x3F)));
              put (Bytes.to_string b)
            | _ ->
              note (offset + !i) ("bad character reference &" ^ ent ^ ";");
              Buffer.add_char buf '&';
              incr i)
          | _ ->
            note (offset + !i) ("unknown entity &" ^ ent ^ ";");
            Buffer.add_char buf '&';
            incr i)
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  let looking p s = p + String.length s <= n && String.sub src p (String.length s) = s
  and name_end p =
    let q = ref p in
    while !q < n && is_name_char src.[!q] do incr q done;
    !q
  and ws_end p =
    let q = ref p in
    while
      !q < n && (match src.[!q] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr q
    done;
    !q
  in
  let find_from p needle =
    let len = String.length needle in
    let rec go i = if i + len > n then None else if String.sub src i len = needle then Some i else go (i + 1) in
    if p > n then None else go p
  in
  let add_text start stop =
    if stop > start then begin
      let txt = decode start (String.sub src start (stop - start)) in
      if String.trim txt <> "" then add_child (Xml.Text txt)
    end
  in
  (* lenient attribute list: returns (attrs, position past the tag,
     whether the element is self-closing) *)
  let read_attrs p0 =
    let attrs = ref [] and p = ref p0 and closed = ref `Open and stop = ref false in
    while not !stop do
      p := ws_end !p;
      if !p >= n then begin
        note n "unterminated tag";
        closed := `SelfClose;
        stop := true
      end
      else if looking !p "/>" then begin
        closed := `SelfClose;
        p := !p + 2;
        stop := true
      end
      else if src.[!p] = '>' then begin
        incr p;
        stop := true
      end
      else if is_name_char src.[!p] then begin
        let ne = name_end !p in
        let aname = String.sub src !p (ne - !p) in
        p := ws_end ne;
        if !p < n && src.[!p] = '=' then begin
          p := ws_end (!p + 1);
          if !p < n && (src.[!p] = '"' || src.[!p] = '\'') then begin
            let quote = src.[!p] in
            let vstart = !p + 1 in
            match String.index_from_opt src vstart quote with
            | Some q ->
              attrs := (aname, decode vstart (String.sub src vstart (q - vstart))) :: !attrs;
              p := q + 1
            | None ->
              note !p "unterminated attribute value";
              attrs := (aname, decode vstart (String.sub src vstart (n - vstart))) :: !attrs;
              p := n
          end
          else begin
            (* unquoted value: up to whitespace or tag end *)
            let vstart = !p in
            while
              !p < n
              && (match src.[!p] with
                 | ' ' | '\t' | '\n' | '\r' | '>' | '/' -> false
                 | _ -> true)
            do
              incr p
            done;
            note vstart "unquoted attribute value";
            attrs := (aname, decode vstart (String.sub src vstart (!p - vstart))) :: !attrs
          end
        end
        else begin
          note ne "attribute without value";
          attrs := (aname, "") :: !attrs
        end
      end
      else begin
        note !p "garbage in tag";
        incr p
      end
    done;
    (List.rev !attrs, !p, !closed)
  in
  let pos = ref 0 in
  while !pos < n do
    match String.index_from_opt src !pos '<' with
    | None ->
      add_text !pos n;
      pos := n
    | Some lt ->
      add_text !pos lt;
      if looking lt "<!--" then (
        match find_from (lt + 4) "-->" with
        | Some j -> pos := j + 3
        | None ->
          note lt "unterminated comment";
          pos := n)
      else if looking lt "<![CDATA[" then (
        match find_from (lt + 9) "]]>" with
        | Some j ->
          add_child (Xml.Text (String.sub src (lt + 9) (j - lt - 9)));
          pos := j + 3
        | None ->
          note lt "unterminated CDATA";
          add_child (Xml.Text (String.sub src (lt + 9) (n - lt - 9)));
          pos := n)
      else if looking lt "</" then begin
        let ne = name_end (lt + 2) in
        if ne = lt + 2 then begin
          note lt "stray '</'";
          pos := lt + 2
        end
        else begin
          let name = String.sub src (lt + 2) (ne - lt - 2) in
          let p = ws_end ne in
          if p < n && src.[p] = '>' then pos := p + 1
          else begin
            note ne "malformed closing tag";
            pos := p
          end;
          if List.exists (fun (nm, _, _) -> String.equal nm name) !stack then begin
            let rec pop () =
              match !stack with
              | (nm, _, _) :: _ when String.equal nm name -> close_frame ()
              | (nm, _, _) :: _ ->
                note lt (Printf.sprintf "auto-closing unclosed <%s>" nm);
                close_frame ();
                pop ()
              | [] -> ()
            in
            pop ()
          end
          else note lt (Printf.sprintf "stray closing tag </%s>" name)
        end
      end
      else if looking lt "<?" || looking lt "<!" then (
        match String.index_from_opt src lt '>' with
        | Some j -> pos := j + 1
        | None ->
          note lt "unterminated declaration";
          pos := n)
      else if lt + 1 < n && is_name_char src.[lt + 1] then begin
        let ne = name_end (lt + 1) in
        let name = String.sub src (lt + 1) (ne - lt - 1) in
        let attrs, p, closed = read_attrs ne in
        pos := p;
        match closed with
        | `SelfClose -> add_child (Xml.Element (name, attrs, []))
        | `Open -> stack := (name, attrs, []) :: !stack
      end
      else begin
        note lt "stray '<'";
        pos := lt + 1
      end
  done;
  while !stack <> [] do
    note n "unclosed element at end of input";
    close_frame ()
  done;
  match List.rev !roots with
  | [] -> None
  | root :: _ -> Some (root, List.rev !recoveries)

let parse_fragment src =
  match
    let st = { src; pos = 0 } in
    let rec go acc =
      skip_misc st;
      if st.pos >= String.length src then List.rev acc
      else go (parse_element st :: acc)
    in
    go []
  with
  | ts -> Ok ts
  | exception Error (msg, pos) ->
    Error (Printf.sprintf "XML parse error at offset %d: %s" pos msg)
