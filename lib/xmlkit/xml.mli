(** The XML transport substrate.

    "Syntactically all information (queries, CM signatures and data,
    mediator/wrapper dialogues, etc.) goes over the wire in XML syntax"
    (Section 2). This module is the small tree model; {!Parse} and
    {!Print} are the wire codecs; {!Path} and {!Transform} are the
    "XML sublanguage for translating between XML and the mediator's
    local GCM representation" that the CM plug-ins are written in. *)

type t =
  | Element of string * (string * string) list * t list
      (** tag, attributes, children *)
  | Text of string

(** {1 Constructors} *)

val elt : ?attrs:(string * string) list -> string -> t list -> t
val text : string -> t
val leaf : ?attrs:(string * string) list -> string -> string -> t
(** [leaf tag s] = [elt tag [text s]]. *)

(** {1 Accessors} *)

val tag : t -> string option
val attrs : t -> (string * string) list
val attr : string -> t -> string option
val children : t -> t list
val child_elements : t -> t list
val find_child : string -> t -> t option
val find_children : string -> t -> t list
val text_content : t -> string
(** Concatenated text of the subtree. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
