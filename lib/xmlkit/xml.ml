type t =
  | Element of string * (string * string) list * t list
  | Text of string

let elt ?(attrs = []) tag children = Element (tag, attrs, children)
let text s = Text s
let leaf ?attrs tag s = elt ?attrs tag [ Text s ]

let tag = function Element (t, _, _) -> Some t | Text _ -> None
let attrs = function Element (_, a, _) -> a | Text _ -> []
let attr name t = List.assoc_opt name (attrs t)
let children = function Element (_, _, c) -> c | Text _ -> []

let child_elements t =
  List.filter (function Element _ -> true | Text _ -> false) (children t)

let find_child tag t =
  List.find_opt
    (function Element (n, _, _) -> String.equal n tag | Text _ -> false)
    (children t)

let find_children tag t =
  List.filter
    (function Element (n, _, _) -> String.equal n tag | Text _ -> false)
    (children t)

let rec text_content = function
  | Text s -> s
  | Element (_, _, cs) -> String.concat "" (List.map text_content cs)

let rec equal t1 t2 =
  match t1, t2 with
  | Text a, Text b -> String.equal a b
  | Element (n1, a1, c1), Element (n2, a2, c2) ->
    String.equal n1 n2
    && List.sort compare a1 = List.sort compare a2
    && List.length c1 = List.length c2
    && List.for_all2 equal c1 c2
  | _ -> false

let rec pp ppf = function
  | Text s -> Format.pp_print_string ppf s
  | Element (tag, attrs, children) ->
    let pp_attr ppf (k, v) = Format.fprintf ppf " %s=%S" k v in
    if children = [] then
      Format.fprintf ppf "<%s%a/>" tag (Format.pp_print_list pp_attr) attrs
    else
      Format.fprintf ppf "<%s%a>%a</%s>" tag
        (Format.pp_print_list pp_attr)
        attrs
        (Format.pp_print_list pp)
        children tag
