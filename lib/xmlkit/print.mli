(** Serialisation of {!Xml.t} trees, inverse of {!Parse}. *)

val to_string : ?indent:bool -> Xml.t -> string
(** [indent] (default false) pretty-prints with two-space nesting;
    the compact form round-trips exactly through {!Parse.parse} for
    trees without whitespace-only text nodes. *)

val escape_text : string -> string
val escape_attr : string -> string
