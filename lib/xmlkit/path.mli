(** A small XPath-like selection language over {!Xml.t}:

    {v
    /a/b          children path from the root
    //m           descendant-or-self search
    /a/*/c        wildcard step
    /a/b[@k='v']  attribute-value filter
    /a/b[@k]      attribute-presence filter
    /a/b[2]       positional filter (1-based)
    /a/b/@k       trailing attribute extraction (select_attrs)
    v}

    This is the query language the CM plug-ins ("a complex XML query
    that a source sends once to the mediator", Section 2) are written
    in. *)

type step = {
  axis : [ `Child | `Descendant ];
  name : string option;  (** [None] = wildcard *)
  filters : filter list;
}

and filter =
  | Attr_eq of string * string
  | Attr_present of string
  | Position of int

type t = { steps : step list; attribute : string option }

val parse : string -> (t, string) result
val parse_exn : string -> t

val select : t -> Xml.t -> Xml.t list
(** Matching elements; the root element matches a leading step by name
    (i.e. [/catalog/book] against a [<catalog>] document selects its
    [book] children). *)

val select_str : string -> Xml.t -> Xml.t list
(** [select (parse_exn path)], for literal paths. *)

val select_attrs : t -> Xml.t -> string list
(** Values of the trailing [/@attr]; requires the path to have one. *)

val texts : t -> Xml.t -> string list
(** Text content of each selected element. *)

val pp : Format.formatter -> t -> unit
