type step = {
  axis : [ `Child | `Descendant ];
  name : string option;
  filters : filter list;
}

and filter =
  | Attr_eq of string * string
  | Attr_present of string
  | Position of int

type t = { steps : step list; attribute : string option }

exception Bad of string

(* ------------------------------------------------------------------ *)
(* Parsing *)

let split_filters seg =
  (* "book[@id='x'][2]" -> ("book", [filters]) *)
  match String.index_opt seg '[' with
  | None -> (seg, [])
  | Some i ->
    let name = String.sub seg 0 i in
    let rest = String.sub seg i (String.length seg - i) in
    let filters = ref [] in
    let pos = ref 0 in
    let n = String.length rest in
    while !pos < n do
      if rest.[!pos] <> '[' then raise (Bad "expected [");
      let close =
        match String.index_from_opt rest !pos ']' with
        | Some j -> j
        | None -> raise (Bad "unclosed filter")
      in
      let body = String.sub rest (!pos + 1) (close - !pos - 1) in
      let f =
        if String.length body > 0 && body.[0] = '@' then begin
          match String.index_opt body '=' with
          | None -> Attr_present (String.sub body 1 (String.length body - 1))
          | Some eq ->
            let k = String.sub body 1 (eq - 1) in
            let v = String.sub body (eq + 1) (String.length body - eq - 1) in
            let v =
              let lv = String.length v in
              if lv >= 2 && (v.[0] = '\'' || v.[0] = '"') then String.sub v 1 (lv - 2)
              else v
            in
            Attr_eq (k, v)
        end
        else
          match int_of_string_opt body with
          | Some k -> Position k
          | None -> raise (Bad ("bad filter " ^ body))
      in
      filters := f :: !filters;
      pos := close + 1
    done;
    (name, List.rev !filters)

let parse_exn src =
  if src = "" then raise (Bad "empty path");
  (* tokenize on '/', treating '//' as descendant marker for the next
     segment. *)
  let segs = String.split_on_char '/' src in
  (* leading '/' produces an empty first segment; '//' produces empty
     segments in the middle. *)
  let rec build axis = function
    | [] -> []
    | "" :: rest -> build `Descendant rest
    | seg :: rest ->
      let name, filters = split_filters seg in
      let name = if name = "*" then None else Some name in
      { axis; name; filters } :: build `Child rest
  in
  let segs = match segs with "" :: rest -> rest | segs -> segs in
  let steps = build `Child segs in
  (* trailing attribute step? *)
  let rec split_last acc = function
    | [] -> (List.rev acc, None)
    | [ { name = Some n; axis = `Child; filters = [] } ]
      when String.length n > 0 && n.[0] = '@' ->
      (List.rev acc, Some (String.sub n 1 (String.length n - 1)))
    | s :: rest -> split_last (s :: acc) rest
  in
  let steps, attribute = split_last [] steps in
  if steps = [] && attribute = None then raise (Bad "empty path");
  { steps; attribute }

let parse src =
  match parse_exn src with
  | t -> Ok t
  | exception Bad msg -> Error ("path parse error: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Evaluation *)

let rec descendants_or_self t =
  t :: List.concat_map descendants_or_self (Xml.child_elements t)

let matches_name name t =
  match name, Xml.tag t with
  | None, Some _ -> true
  | Some n, Some tag -> String.equal n tag
  | _, None -> false

let apply_filters filters nodes =
  List.fold_left
    (fun nodes f ->
      match f with
      | Attr_present k -> List.filter (fun t -> Xml.attr k t <> None) nodes
      | Attr_eq (k, v) ->
        List.filter (fun t -> Xml.attr k t = Some v) nodes
      | Position k ->
        (match List.nth_opt nodes (k - 1) with Some t -> [ t ] | None -> []))
    nodes filters

let step_from nodes step =
  let candidates =
    match step.axis with
    | `Child -> List.concat_map Xml.child_elements nodes
    | `Descendant ->
      List.concat_map descendants_or_self nodes
      |> List.filter (function Xml.Element _ -> true | _ -> false)
  in
  apply_filters step.filters (List.filter (matches_name step.name) candidates)

let select path root =
  match path.steps with
  | [] -> [ root ]
  | first :: rest ->
    (* The first child-axis step may match the root element itself
       (document-root semantics). *)
    let start =
      match first.axis with
      | `Child ->
        apply_filters first.filters
          (List.filter (matches_name first.name) [ root ])
      | `Descendant ->
        apply_filters first.filters
          (List.filter (matches_name first.name) (descendants_or_self root))
    in
    List.fold_left step_from start rest

let select_str s root = select (parse_exn s) root

let select_attrs path root =
  match path.attribute with
  | None -> invalid_arg "Path.select_attrs: path has no trailing /@attr"
  | Some a -> List.filter_map (Xml.attr a) (select path root)

let texts path root = List.map Xml.text_content (select path root)

let pp ppf t =
  List.iter
    (fun s ->
      Format.pp_print_string ppf (match s.axis with `Child -> "/" | `Descendant -> "//");
      Format.pp_print_string ppf (match s.name with Some n -> n | None -> "*");
      List.iter
        (fun f ->
          match f with
          | Attr_eq (k, v) -> Format.fprintf ppf "[@%s='%s']" k v
          | Attr_present k -> Format.fprintf ppf "[@%s]" k
          | Position k -> Format.fprintf ppf "[%d]" k)
        s.filters)
    t.steps;
  match t.attribute with
  | Some a -> Format.fprintf ppf "/@%s" a
  | None -> ()
