(** F-logic molecules: the syntax of Table 1 of the paper.

    The generic conceptual model GCM is incarnated as an F-logic
    fragment; its core expressions map to molecules as follows:

    - [instance(X,C)]      ~ [X : C]              ({!Isa})
    - [subclass(C1,C2)]    ~ [C1 :: C2]           ({!Sub})
    - [method(C,M,CM)]     ~ [C\[M => CM\]]       ({!Meth_sig})
    - [methodinst(X,M,Y)]  ~ [X\[M ->> Y\]]       ({!Meth_val})
    - [relation(R,Ai=Ci)]  ~ [R\[A1 => C1;...\]]  ({!Rel_sig})
    - [relationinst(...)]  ~ [R\[A1 -> X1;...\]]  ({!Rel_val})

    Plain predicate atoms ({!Pred}) carry ordinary Datalog relations
    (e.g. the positional view [r(X1,...,Xn)] of a relation instance). *)

type t =
  | Isa of Logic.Term.t * Logic.Term.t      (** [X : C] *)
  | Sub of Logic.Term.t * Logic.Term.t      (** [C1 :: C2] *)
  | Meth_sig of Logic.Term.t * string * Logic.Term.t  (** [C\[M => D\]] *)
  | Meth_val of Logic.Term.t * string * Logic.Term.t  (** [X\[M ->> Y\]] *)
  | Rel_sig of string * (string * Logic.Term.t) list  (** [R\[A=>C;...\]] *)
  | Rel_val of string * (string * Logic.Term.t) list  (** [R\[A->X;...\]] *)
  | Pred of Logic.Atom.t

type lit =
  | Pos of t
  | Neg of t
  | Cmp of Logic.Literal.cmp * Logic.Term.t * Logic.Term.t
  | Assign of Logic.Term.t * Logic.Literal.expr
  | Agg of agg

and agg = {
  func : Logic.Literal.agg_fun;
  target : Logic.Term.t;
  group_by : Logic.Term.t list;
  result : Logic.Term.t;
  body : t list;  (** inner conjunction of positive molecules *)
}

type rule = { heads : t list; body : lit list }
(** A multi-head rule abbreviates one rule per head over the shared
    body — the F-logic idiom for object molecules such as
    [D : protein_distribution\[protein_name -> Y; ...\] :- ...] of the
    paper's Example 4, which asserts the instance-of and each method
    value simultaneously. *)

(** {1 Constructors} *)

val isa : Logic.Term.t -> Logic.Term.t -> t
val sub : Logic.Term.t -> Logic.Term.t -> t
val meth_sig : Logic.Term.t -> string -> Logic.Term.t -> t
val meth_val : Logic.Term.t -> string -> Logic.Term.t -> t
val pred : string -> Logic.Term.t list -> t
val rule : t -> lit list -> rule
val rule_multi : t list -> lit list -> rule
val fact : t -> rule
val obj :
  Logic.Term.t -> Logic.Term.t -> (string * Logic.Term.t) list -> t list
(** [obj d c methods] is the head list for an object molecule
    [d : c\[m1 -> v1; ...\]]. *)

val vars : t -> string list
val pp : Format.formatter -> t -> unit
val pp_lit : Format.formatter -> lit -> unit
val pp_rule : Format.formatter -> rule -> unit
val to_string : t -> string
val rule_to_string : rule -> string
