(** Compilation of F-logic molecules onto the Datalog engine.

    Reserved predicates of the encoding:

    - [isa_d], [sub_d], [meth_sig_d], [meth_val_d] — {e declared} facts,
      written by rule heads;
    - [isa], [sub], [meth_sig], [meth_val], [class] — {e closed}
      versions derived by the GCM axioms ({!Gcm_axioms}), read by rule
      bodies;
    - [rel_sig] — relation typing; relation instances live in a
      positional predicate named after the relation itself;
    - [ic] — the distinguished inconsistency class (witnesses are
      [ic_d(w)] facts, see {!ic_p}).

    The asymmetry (heads write declared predicates, bodies read closed
    ones) implements Table 1: user rules never have to restate
    reflexivity/transitivity of [::] or the upward propagation of [:]. *)

val isa_p : string
val sub_p : string
val meth_sig_p : string
val meth_val_p : string
val class_p : string
val rel_sig_p : string
val ic_class : string

val ic_p : string
(** Datalog predicate holding the failure witnesses. Membership in the
    inconsistency class compiles to this dedicated unary predicate
    instead of travelling through the [isa] closure: denial bodies read
    ordinary class membership under negation, and routing their heads
    back into [isa_d] would destratify every program with an integrity
    constraint. [ic] has no subclasses, so closure adds nothing. *)

val declared : string -> string
(** [declared "isa" = "isa_d"] etc. *)

val reserved : string list
(** All reserved predicate names; sources may not export relations with
    these names. *)

exception Compile_error of string

val head_atoms : Signature.t -> Molecule.t -> Logic.Atom.t list
(** Datalog atoms written when the molecule appears in a head: declared
    predicates, positional relation instances ([Rel_val] must bind every
    attribute), one [rel_sig] atom per attribute for [Rel_sig]. *)

val body_literals : Signature.t -> Molecule.lit -> Logic.Literal.t list
(** Datalog literals read when the molecule appears in a body: closed
    predicates; a [Rel_val] with missing attributes gets fresh
    variables in the unnamed positions. Negation of a multi-atom
    molecule ([Rel_sig] with several attributes) is rejected. *)

val rule : Signature.t -> Molecule.rule -> Logic.Rule.t list
(** One Datalog rule per head atom of the (multi-head) F-logic rule. *)

val rules : Signature.t -> Molecule.rule list -> Logic.Rule.t list
