(** F-logic programs: molecules + signature, compiled and evaluated on
    the Datalog engine with the GCM axioms included. This is the "single
    GCM engine" of the paper's architecture (Section 2). *)

type t = {
  signature : Signature.t;
  rules : Molecule.rule list;
  inheritance : bool;
      (** include the nonmonotonic default-inheritance axioms *)
}

val make : ?inheritance:bool -> ?signature:Signature.t -> Molecule.rule list -> t

val add_rules : t -> Molecule.rule list -> t
val add_facts : t -> Molecule.t list -> t
val merge : t -> t -> t

val compile : t -> (Datalog.Program.t, string) result
(** Translate molecules (plus axioms) into a safety-checked Datalog
    program. [Error] carries a compile or safety diagnostic. *)

val run :
  ?config:Datalog.Engine.config ->
  ?report:Datalog.Engine.report ref ->
  ?edb:Datalog.Database.t ->
  t ->
  Datalog.Database.t
(** Compile and materialize. Raises [Invalid_argument] on compile
    errors — use {!compile} first for recoverable handling. *)

val run_wellfounded :
  ?edb:Datalog.Database.t -> t -> Datalog.Wellfounded.model
(** Compile and compute the three-valued well-founded model directly —
    for programs where {!run} raises [Undefined_atoms] (negation
    genuinely entangled with recursion) and the undefined layer itself
    is of interest. *)

val query :
  t -> Datalog.Database.t -> Molecule.lit list -> Logic.Subst.t list
(** Solve an FL conjunctive query against a materialized database. *)

val holds : t -> Datalog.Database.t -> Molecule.t -> bool

val instances_of : Datalog.Database.t -> string -> Logic.Term.t list
(** Objects [X] with [isa(X, c)] in the database. *)

val subclasses_of : Datalog.Database.t -> string -> Logic.Term.t list
