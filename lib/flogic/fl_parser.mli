(** Recursive-descent parser for the F-logic surface syntax.

    The concrete syntax follows the paper's notation as closely as ASCII
    allows:

    {v
    % comment        // comment        /* comment */
    @relation has(whole, part).              % signature declaration
    spine :: ion_regulating_component.       % C1 :: C2
    s42 : spine.                             % X : C
    X[diameter ->> D] :- measured(X, D).     % method value rule
    spine[diameter => number].               % method signature
    has[whole -> X; part -> Y].              % relation instance (declared rel)
    w(C,R,X) : ic :- X : C, not r(X,X).      % denial with failure witness
    N = count{VA [VB]; r(VA,VB)}             % aggregation (in bodies)
    Y is X * 3 + 1                           % arithmetic
    D : pd[name -> Y; amount -> A] :- ...    % object molecule (multi-head)
    ?- X : spine, X[diameter ->> D], D > 0.5.
    v}

    A bracket molecule [r\[a -> t; ...\]] is read as a relation instance
    when [r] is a declared relation (via [@relation] or the ambient
    signature), and as method values on object [r] otherwise. *)

type statement =
  | Relation_decl of string * string list
  | Rule of Molecule.rule
  | Query of Molecule.lit list

type parsed = {
  signature : Signature.t;  (** ambient signature plus declarations *)
  rules : Molecule.rule list;
  queries : Molecule.lit list list;
  rule_positions : (int * int) list;
      (** 1-based (line, column) where each rule starts, aligned with
          [rules] — feed to {!Analysis.Kindlint.lint_program}'s
          [positions] so diagnostics point into the source file *)
}

exception Parse_error of string * int

val parse_program : ?signature:Signature.t -> string -> (parsed, string) result

val parse_program_exn : ?signature:Signature.t -> string -> parsed

val parse_query :
  ?signature:Signature.t -> string -> (Molecule.lit list, string) result
(** Parse a single goal, with or without the leading [?-] and trailing
    dot. *)

val parse_term : string -> (Logic.Term.t, string) result
