module Term = Logic.Term
module Atom = Logic.Atom
module Literal = Logic.Literal
module Rule = Logic.Rule

let v = Term.var
let d = Compile.declared

let r h b = Rule.make h b
let a p args = Atom.make p args
let p name args = Literal.pos name args

let default_p = "default_d"
let strict_sub_p = "strict_sub"

let core =
  [
    (* Closure of declared facts. *)
    r (a Compile.isa_p [ v "X"; v "C" ]) [ p (d Compile.isa_p) [ v "X"; v "C" ] ];
    r (a Compile.sub_p [ v "C"; v "D" ]) [ p (d Compile.sub_p) [ v "C"; v "D" ] ];
    r
      (a Compile.meth_sig_p [ v "C"; v "M"; v "D" ])
      [ p (d Compile.meth_sig_p) [ v "C"; v "M"; v "D" ] ];
    r
      (a Compile.meth_val_p [ v "X"; v "M"; v "Y" ])
      [ p (d Compile.meth_val_p) [ v "X"; v "M"; v "Y" ] ];
    r (a Compile.class_p [ v "C" ]) [ p (d Compile.class_p) [ v "C" ] ];
    (* Classhood of everything mentioned at the schema level. *)
    r (a Compile.class_p [ v "C" ]) [ p (d Compile.sub_p) [ v "C"; v "D" ] ];
    r (a Compile.class_p [ v "D" ]) [ p (d Compile.sub_p) [ v "C"; v "D" ] ];
    r (a Compile.class_p [ v "C" ]) [ p (d Compile.isa_p) [ v "X"; v "C" ] ];
    r
      (a Compile.class_p [ v "C" ])
      [ p (d Compile.meth_sig_p) [ v "C"; v "M"; v "D" ] ];
    (* Reflexivity and transitivity of :: (Table 1). *)
    r (a Compile.sub_p [ v "C"; v "C" ]) [ p Compile.class_p [ v "C" ] ];
    r
      (a Compile.sub_p [ v "C1"; v "C2" ])
      [ p Compile.sub_p [ v "C1"; v "C3" ]; p Compile.sub_p [ v "C3"; v "C2" ] ];
    (* Upward propagation of : along :: (Table 1). *)
    r
      (a Compile.isa_p [ v "X"; v "C2" ])
      [ p Compile.isa_p [ v "X"; v "C1" ]; p Compile.sub_p [ v "C1"; v "C2" ] ];
    (* Structural inheritance: signatures flow down the hierarchy. *)
    r
      (a Compile.meth_sig_p [ v "C1"; v "M"; v "D" ])
      [
        p Compile.sub_p [ v "C1"; v "C2" ];
        p (d Compile.meth_sig_p) [ v "C2"; v "M"; v "D" ];
      ];
  ]

let nonmonotonic_inheritance =
  [
    (* strict_sub(C1,C2): C1 properly below C2. *)
    r
      (a strict_sub_p [ v "C1"; v "C2" ])
      [
        p Compile.sub_p [ v "C1"; v "C2" ];
        Literal.neg Compile.sub_p [ v "C2"; v "C1" ];
      ];
    (* A default is overridden at X for (M, C) when a properly more
       specific class of X also declares a default for M ... *)
    r
      (a "overridden" [ v "X"; v "M"; v "C" ])
      [
        p Compile.isa_p [ v "X"; v "C1" ];
        p default_p [ v "C1"; v "M"; v "V1" ];
        p default_p [ v "C"; v "M"; v "V" ];
        p strict_sub_p [ v "C1"; v "C" ];
      ];
    (* ... or when the instance declares its own value for M. *)
    r
      (a "overridden" [ v "X"; v "M"; v "C" ])
      [
        p (d Compile.meth_val_p) [ v "X"; v "M"; v "W" ];
        p default_p [ v "C"; v "M"; v "V" ];
      ];
    (* Inherit the most specific unoverridden default. *)
    r
      (a Compile.meth_val_p [ v "X"; v "M"; v "V" ])
      [
        p Compile.isa_p [ v "X"; v "C" ];
        p default_p [ v "C"; v "M"; v "V" ];
        Literal.neg "overridden" [ v "X"; v "M"; v "C" ];
      ];
  ]
