(** Tokenizer for the F-logic surface syntax (see {!Fl_parser}). *)

type token =
  | IDENT of string      (** lowercase identifier or quoted 'symbol' *)
  | VAR of string        (** uppercase or [_] identifier *)
  | STRING of string     (** double-quoted string literal *)
  | INT of int
  | FLOAT of float
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | LBRACE | RBRACE
  | COMMA | SEMI | DOT
  | COLON                (** [:] *)
  | ISA_SUB              (** [::] *)
  | IF                   (** [:-] *)
  | QUERY                (** [?-] *)
  | ARROW                (** [->] *)
  | DARROW               (** [->>] *)
  | SARROW               (** [=>] *)
  | AMP                  (** [&] *)
  | NOT                  (** [not] *)
  | IS                   (** [is] *)
  | AT_RELATION          (** [@relation] *)
  | CMP of Logic.Literal.cmp
  | PLUS | MINUS | STAR | SLASH
  | EOF

exception Lex_error of string * int
(** message and character offset *)

val tokenize : string -> (token * int) list
(** All tokens with their start offsets, ending with [EOF]. *)

val pp_token : Format.formatter -> token -> unit
