module Term = Logic.Term
module Atom = Logic.Atom

type t = {
  signature : Signature.t;
  rules : Molecule.rule list;
  inheritance : bool;
}

let make ?(inheritance = false) ?(signature = Signature.empty) rules =
  { signature; rules; inheritance }

let add_rules t rules = { t with rules = t.rules @ rules }
let add_facts t facts = add_rules t (List.map Molecule.fact facts)

let merge t1 t2 =
  {
    signature = Signature.merge t1.signature t2.signature;
    rules = t1.rules @ t2.rules;
    inheritance = t1.inheritance || t2.inheritance;
  }

let compile t =
  match Compile.rules t.signature t.rules with
  | exception Compile.Compile_error e -> Error e
  | compiled ->
    let axioms =
      Gcm_axioms.core
      @ if t.inheritance then Gcm_axioms.nonmonotonic_inheritance else []
    in
    Datalog.Program.make (axioms @ compiled)

let run ?config ?report ?(edb = Datalog.Database.create ()) t =
  match compile t with
  | Error e -> invalid_arg ("Fl_program.run: " ^ e)
  | Ok p -> Datalog.Engine.materialize ?config ?report p edb

let run_wellfounded ?(edb = Datalog.Database.create ()) t =
  match compile t with
  | Error e -> invalid_arg ("Fl_program.run_wellfounded: " ^ e)
  | Ok p ->
    let facts, p' = Datalog.Program.split_facts p in
    let edb = Datalog.Database.copy edb in
    List.iter (fun f -> ignore (Datalog.Database.add_fact edb f)) facts;
    Datalog.Wellfounded.compute p' edb

let query t db lits =
  let compiled = List.concat_map (Compile.body_literals t.signature) lits in
  Datalog.Engine.query db compiled

let holds t db m = query t db [ Molecule.Pos m ] <> []

let instances_of db c =
  Datalog.Engine.answers db
    (Atom.make Compile.isa_p [ Term.var "X"; Term.sym c ])
  |> List.filter_map (function [ x; _ ] -> Some x | _ -> None)

let subclasses_of db c =
  Datalog.Engine.answers db
    (Atom.make Compile.sub_p [ Term.var "X"; Term.sym c ])
  |> List.filter_map (function [ x; _ ] -> Some x | _ -> None)
