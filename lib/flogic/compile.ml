module Term = Logic.Term
module Atom = Logic.Atom
module Literal = Logic.Literal
module Rule = Logic.Rule

let isa_p = "isa"
let sub_p = "sub"
let meth_sig_p = "meth_sig"
let meth_val_p = "meth_val"
let class_p = "class"
let rel_sig_p = "rel_sig"
let ic_class = "ic"

let declared p = p ^ "_d"

(* The inconsistency class compiles to its own predicate: witnesses must
   not travel through the [isa] closure, or every denial body that reads
   class membership under negation puts [isa_d] in a nonmonotonic cycle
   and the whole mediated program loses stratification (and with it
   incremental maintainability). [ic] has no subclasses, so nothing is
   lost by keeping it outside the closure. *)
let ic_p = declared ic_class

let closed_preds = [ isa_p; sub_p; meth_sig_p; meth_val_p; class_p ]

let reserved = (rel_sig_p :: closed_preds) @ List.map declared closed_preds

exception Compile_error of string

let err fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

let fresh_counter = ref 0

let fresh_var () =
  incr fresh_counter;
  Term.var (Printf.sprintf "_G%d" !fresh_counter)

(* Positional argument list of a relation instance from named attribute
   bindings. [exhaustive] demands every attribute be named (heads). *)
let positional ~exhaustive sg r avs =
  match Signature.attributes sg r with
  | None -> err "relation %s is not declared in the signature" r
  | Some attrs ->
    List.iter
      (fun (a, _) ->
        if not (List.mem a attrs) then
          err "relation %s has no attribute %s" r a)
      avs;
    let dup =
      let rec first_dup = function
        | a :: b :: _ when String.equal a b -> Some a
        | _ :: rest -> first_dup rest
        | [] -> None
      in
      first_dup (List.sort String.compare (List.map fst avs))
    in
    (match dup with
    | Some a -> err "relation %s: attribute %s bound twice" r a
    | None -> ());
    List.map
      (fun a ->
        match List.assoc_opt a avs with
        | Some t -> t
        | None ->
          if exhaustive then
            err "relation %s: attribute %s must be bound in a rule head" r a
          else fresh_var ())
      attrs

(* In heads the closed predicates are written through their declared
   counterparts, so the GCM axioms stay in control of closure. *)
let head_pred_name p =
  if List.mem p closed_preds then declared p
  else if List.mem p (List.map declared closed_preds) then p
  else p

let head_atoms sg = function
  | Molecule.Isa (x, Term.Const (Term.Sym c)) when String.equal c ic_class ->
    [ Atom.make ic_p [ x ] ]
  | Molecule.Isa (x, c) -> [ Atom.make (declared isa_p) [ x; c ] ]
  | Molecule.Sub (c1, c2) -> [ Atom.make (declared sub_p) [ c1; c2 ] ]
  | Molecule.Meth_sig (c, m, d) ->
    [ Atom.make (declared meth_sig_p) [ c; Term.sym m; d ] ]
  | Molecule.Meth_val (x, m, y) ->
    [ Atom.make (declared meth_val_p) [ x; Term.sym m; y ] ]
  | Molecule.Rel_sig (r, avs) ->
    List.map (fun (a, c) -> Atom.make rel_sig_p [ Term.sym r; Term.sym a; c ]) avs
  | Molecule.Rel_val (r, avs) ->
    [ Atom.make r (positional ~exhaustive:true sg r avs) ]
  | Molecule.Pred a ->
    if String.equal a.Atom.pred rel_sig_p then
      err "rel_sig may not be written directly; use a Rel_sig molecule"
    else [ Atom.make (head_pred_name a.Atom.pred) a.Atom.args ]

let body_atoms sg = function
  | Molecule.Isa (x, Term.Const (Term.Sym c)) when String.equal c ic_class ->
    [ Atom.make ic_p [ x ] ]
  | Molecule.Isa (x, c) -> [ Atom.make isa_p [ x; c ] ]
  | Molecule.Sub (c1, c2) -> [ Atom.make sub_p [ c1; c2 ] ]
  | Molecule.Meth_sig (c, m, d) ->
    [ Atom.make meth_sig_p [ c; Term.sym m; d ] ]
  | Molecule.Meth_val (x, m, y) ->
    [ Atom.make meth_val_p [ x; Term.sym m; y ] ]
  | Molecule.Rel_sig (r, avs) ->
    List.map (fun (a, c) -> Atom.make rel_sig_p [ Term.sym r; Term.sym a; c ]) avs
  | Molecule.Rel_val (r, avs) ->
    [ Atom.make r (positional ~exhaustive:false sg r avs) ]
  | Molecule.Pred a -> [ a ]

let body_literals sg = function
  | Molecule.Pos m -> List.map (fun a -> Literal.Pos a) (body_atoms sg m)
  | Molecule.Neg m -> (
    match body_atoms sg m with
    | [ a ] -> [ Literal.Neg a ]
    | _ ->
      err "cannot negate multi-atom molecule %s" (Molecule.to_string m))
  | Molecule.Cmp (op, t1, t2) -> [ Literal.Cmp (op, t1, t2) ]
  | Molecule.Assign (t, e) -> [ Literal.Assign (t, e) ]
  | Molecule.Agg { func; target; group_by; result; body } ->
    let inner = List.concat_map (body_atoms sg) body in
    [ Literal.Agg { Literal.func; target; group_by; result; body = inner } ]

let rule sg (r : Molecule.rule) =
  let body = List.concat_map (body_literals sg) r.Molecule.body in
  List.concat_map
    (fun head -> List.map (fun h -> Rule.make h body) (head_atoms sg head))
    r.Molecule.heads

let rules sg rs = List.concat_map (rule sg) rs
