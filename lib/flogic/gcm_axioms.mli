(** The minimal F-logic axiom set of Table 1, plus optional
    nonmonotonic value inheritance.

    Core axioms (always included by {!Fl_program}):
    - closure of declarations:
      [isa/sub/meth_sig/meth_val/class :- *_d];
    - [C :: C :- C : class] — reflexivity of subclass on known classes;
    - [C1 :: C2 :- C1 :: C3, C3 :: C2] — transitivity;
    - [X : C2 :- X : C1, C1 :: C2] — upward propagation of instance-of;
    - [C\[M => D\]] is inherited by subclasses (structural/signature
      inheritance);
    - every endpoint of a declared [::], every class of a declared [:]
      and every method-signature carrier is a [class].

    Optional ({!nonmonotonic_inheritance}): class-level default method
    values ([default_d(C, M, V)] facts) propagate to instances along
    [isa], with more specific classes and instance-level declarations
    overriding — the mechanism the paper invokes for
    "MyNeuron ... only projects to Globus Pallidus External"
    (Section 4). Uses stratified negation. *)

val core : Logic.Rule.t list

val nonmonotonic_inheritance : Logic.Rule.t list

val default_p : string
(** Predicate for declaring class-level defaults: [default_d(C, M, V)].
    Used by {!nonmonotonic_inheritance}. *)

val strict_sub_p : string
(** Derived strict (irreflexive) subclass predicate. *)
