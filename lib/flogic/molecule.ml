module Term = Logic.Term
module Atom = Logic.Atom
module Literal = Logic.Literal

type t =
  | Isa of Term.t * Term.t
  | Sub of Term.t * Term.t
  | Meth_sig of Term.t * string * Term.t
  | Meth_val of Term.t * string * Term.t
  | Rel_sig of string * (string * Term.t) list
  | Rel_val of string * (string * Term.t) list
  | Pred of Atom.t

type lit =
  | Pos of t
  | Neg of t
  | Cmp of Literal.cmp * Term.t * Term.t
  | Assign of Term.t * Literal.expr
  | Agg of agg

and agg = {
  func : Literal.agg_fun;
  target : Term.t;
  group_by : Term.t list;
  result : Term.t;
  body : t list;
}

type rule = { heads : t list; body : lit list }

let isa x c = Isa (x, c)
let sub c1 c2 = Sub (c1, c2)
let meth_sig c m d = Meth_sig (c, m, d)
let meth_val x m y = Meth_val (x, m, y)
let pred p args = Pred (Atom.make p args)
let rule head body = { heads = [ head ]; body }
let rule_multi heads body = { heads; body }
let fact head = { heads = [ head ]; body = [] }

let obj d c methods =
  Isa (d, c) :: List.map (fun (m, v) -> Meth_val (d, m, v)) methods

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else (Hashtbl.add seen x (); true))
    xs

let vars = function
  | Isa (t1, t2) | Sub (t1, t2) -> dedup (Term.vars t1 @ Term.vars t2)
  | Meth_sig (t1, _, t2) | Meth_val (t1, _, t2) ->
    dedup (Term.vars t1 @ Term.vars t2)
  | Rel_sig (_, avs) | Rel_val (_, avs) ->
    dedup (List.concat_map (fun (_, t) -> Term.vars t) avs)
  | Pred a -> Atom.vars a

let pp_attr arrow ppf (a, t) = Format.fprintf ppf "%s %s %a" a arrow Term.pp t

let pp ppf = function
  | Isa (x, c) -> Format.fprintf ppf "%a : %a" Term.pp x Term.pp c
  | Sub (c1, c2) -> Format.fprintf ppf "%a :: %a" Term.pp c1 Term.pp c2
  | Meth_sig (c, m, d) ->
    Format.fprintf ppf "%a[%s => %a]" Term.pp c m Term.pp d
  | Meth_val (x, m, y) ->
    Format.fprintf ppf "%a[%s ->> %a]" Term.pp x m Term.pp y
  | Rel_sig (r, avs) ->
    Format.fprintf ppf "%s[%a]" r
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (pp_attr "=>"))
      avs
  | Rel_val (r, avs) ->
    Format.fprintf ppf "%s[%a]" r
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (pp_attr "->"))
      avs
  | Pred a -> Atom.pp ppf a

let pp_lit ppf = function
  | Pos m -> pp ppf m
  | Neg m -> Format.fprintf ppf "not %a" pp m
  | Cmp (op, t1, t2) ->
    Format.fprintf ppf "%a %a %a" Term.pp t1 Literal.pp_cmp op Term.pp t2
  | Assign (t, e) ->
    Format.fprintf ppf "%a is %a" Term.pp t Literal.pp_expr e
  | Agg { func; target; group_by; result; body } ->
    let fname =
      match func with
      | Literal.Count -> "count"
      | Literal.Sum -> "sum"
      | Literal.Min -> "min"
      | Literal.Max -> "max"
      | Literal.Avg -> "avg"
    in
    Format.fprintf ppf "%a = %s{%a [%a]; %a}" Term.pp result fname Term.pp
      target
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Term.pp)
      group_by
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp)
      body

let pp_heads ppf heads =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ")
    pp ppf heads

let pp_rule ppf { heads; body } =
  if body = [] then Format.fprintf ppf "%a." pp_heads heads
  else
    Format.fprintf ppf "%a :- %a." pp_heads heads
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_lit)
      body

let to_string m = Format.asprintf "%a" pp m
let rule_to_string r = Format.asprintf "%a" pp_rule r
