(** Relation signatures: the attribute order of n-ary relations.

    The GCM core expression [relation(R, A1=C1, ..., An=Cn)] both types
    the relation and fixes the positional layout of its instances
    ([r(X1,...,Xn) : R\[A1->X1;...\]] in Table 1). The compiler needs
    that layout to translate attribute-style molecules into positional
    Datalog atoms. *)

type t

val empty : t

val declare : string -> string list -> t -> t
(** [declare r attrs sg] records relation [r] with its attribute names
    in order. Raises [Invalid_argument] on duplicate declaration with a
    different layout, or on duplicate attribute names. *)

val attributes : t -> string -> string list option
val arity : t -> string -> int option
val mem : t -> string -> bool
val relations : t -> string list

val position : t -> string -> string -> int option
(** [position sg r a] is the index of attribute [a] in relation [r]. *)

val merge : t -> t -> t
(** Union of two signatures; raises [Invalid_argument] on conflicting
    layouts (same relation, different attributes). *)

val pp : Format.formatter -> t -> unit
