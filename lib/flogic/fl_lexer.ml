type token =
  | IDENT of string
  | VAR of string
  | STRING of string
  | INT of int
  | FLOAT of float
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | LBRACE | RBRACE
  | COMMA | SEMI | DOT
  | COLON
  | ISA_SUB
  | IF
  | QUERY
  | ARROW
  | DARROW
  | SARROW
  | AMP
  | NOT
  | IS
  | AT_RELATION
  | CMP of Logic.Literal.cmp
  | PLUS | MINUS | STAR | SLASH
  | EOF

exception Lex_error of string * int

let is_digit c = c >= '0' && c <= '9'
let is_lower c = (c >= 'a' && c <= 'z')
let is_upper c = c >= 'A' && c <= 'Z'
let is_ident_char c = is_lower c || is_upper c || is_digit c || c = '_'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit tok pos = tokens := (tok, pos) :: !tokens in
  let rec skip_ws i =
    if i >= n then i
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> skip_ws (i + 1)
      | '%' ->
        let rec eol j = if j >= n || src.[j] = '\n' then j else eol (j + 1) in
        skip_ws (eol i)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        let rec eol j = if j >= n || src.[j] = '\n' then j else eol (j + 1) in
        skip_ws (eol i)
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
        let rec close j =
          if j + 1 >= n then raise (Lex_error ("unterminated comment", i))
          else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
          else close (j + 1)
        in
        skip_ws (close (i + 2))
      | _ -> i
  in
  let read_while pred i =
    let rec go j = if j < n && pred src.[j] then go (j + 1) else j in
    let j = go i in
    (String.sub src i (j - i), j)
  in
  let read_quoted quote i =
    let buf = Buffer.create 16 in
    let rec go j =
      if j >= n then raise (Lex_error ("unterminated quoted literal", i))
      else if src.[j] = quote then j + 1
      else if src.[j] = '\\' && j + 1 < n then begin
        (match src.[j + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | c -> Buffer.add_char buf c);
        go (j + 2)
      end
      else begin
        Buffer.add_char buf src.[j];
        go (j + 1)
      end
    in
    let j = go i in
    (Buffer.contents buf, j)
  in
  let rec loop i =
    let i = skip_ws i in
    if i >= n then emit EOF i
    else begin
      let c = src.[i] in
      let continue_at j = loop j in
      match c with
      | '(' -> emit LPAREN i; continue_at (i + 1)
      | ')' -> emit RPAREN i; continue_at (i + 1)
      | '[' -> emit LBRACKET i; continue_at (i + 1)
      | ']' -> emit RBRACKET i; continue_at (i + 1)
      | '{' -> emit LBRACE i; continue_at (i + 1)
      | '}' -> emit RBRACE i; continue_at (i + 1)
      | ',' -> emit COMMA i; continue_at (i + 1)
      | ';' -> emit SEMI i; continue_at (i + 1)
      | '&' -> emit AMP i; continue_at (i + 1)
      | '+' -> emit PLUS i; continue_at (i + 1)
      | '*' -> emit STAR i; continue_at (i + 1)
      | '/' -> emit SLASH i; continue_at (i + 1)
      | '.' -> emit DOT i; continue_at (i + 1)
      | '@' ->
        let word, j = read_while is_ident_char (i + 1) in
        if String.equal word "relation" then begin
          emit AT_RELATION i;
          continue_at j
        end
        else raise (Lex_error ("unknown directive @" ^ word, i))
      | ':' ->
        if i + 1 < n && src.[i + 1] = ':' then begin
          emit ISA_SUB i;
          continue_at (i + 2)
        end
        else if i + 1 < n && src.[i + 1] = '-' then begin
          emit IF i;
          continue_at (i + 2)
        end
        else begin
          emit COLON i;
          continue_at (i + 1)
        end
      | '?' ->
        if i + 1 < n && src.[i + 1] = '-' then begin
          emit QUERY i;
          continue_at (i + 2)
        end
        else raise (Lex_error ("expected ?-", i))
      | '-' ->
        if i + 2 < n && src.[i + 1] = '>' && src.[i + 2] = '>' then begin
          emit DARROW i;
          continue_at (i + 3)
        end
        else if i + 1 < n && src.[i + 1] = '>' then begin
          emit ARROW i;
          continue_at (i + 2)
        end
        else begin
          emit MINUS i;
          continue_at (i + 1)
        end
      | '=' ->
        if i + 1 < n && src.[i + 1] = '>' then begin
          emit SARROW i;
          continue_at (i + 2)
        end
        else if i + 1 < n && src.[i + 1] = '<' then begin
          emit (CMP Logic.Literal.Le) i;
          continue_at (i + 2)
        end
        else if i + 2 < n && src.[i + 1] = '/' && src.[i + 2] = '=' then begin
          emit (CMP Logic.Literal.Ne) i;
          continue_at (i + 3)
        end
        else begin
          emit (CMP Logic.Literal.Eq) i;
          continue_at (i + 1)
        end
      | '!' ->
        if i + 1 < n && src.[i + 1] = '=' then begin
          emit (CMP Logic.Literal.Ne) i;
          continue_at (i + 2)
        end
        else raise (Lex_error ("expected !=", i))
      | '<' -> emit (CMP Logic.Literal.Lt) i; continue_at (i + 1)
      | '>' ->
        if i + 1 < n && src.[i + 1] = '=' then begin
          emit (CMP Logic.Literal.Ge) i;
          continue_at (i + 2)
        end
        else begin
          emit (CMP Logic.Literal.Gt) i;
          continue_at (i + 1)
        end
      | '\'' ->
        let s, j = read_quoted '\'' (i + 1) in
        emit (IDENT s) i;
        continue_at j
      | '"' ->
        let s, j = read_quoted '"' (i + 1) in
        emit (STRING s) i;
        continue_at j
      | c when is_digit c ->
        let num, j = read_while (fun c -> is_digit c || c = '.') i in
        (* Trailing '.' is the end-of-statement dot, not a decimal. *)
        let num, j =
          if String.length num > 0 && num.[String.length num - 1] = '.' then
            (String.sub num 0 (String.length num - 1), j - 1)
          else (num, j)
        in
        (if String.contains num '.' then
           match float_of_string_opt num with
           | Some f -> emit (FLOAT f) i
           | None -> raise (Lex_error ("bad number " ^ num, i))
         else
           match int_of_string_opt num with
           | Some k -> emit (INT k) i
           | None -> raise (Lex_error ("bad number " ^ num, i)));
        continue_at j
      | c when is_lower c ->
        let word, j = read_while is_ident_char i in
        (match word with
        | "not" -> emit NOT i
        | "is" -> emit IS i
        | _ -> emit (IDENT word) i);
        continue_at j
      | c when is_upper c || c = '_' ->
        let word, j = read_while is_ident_char i in
        emit (VAR word) i;
        continue_at j
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, i))
    end
  in
  loop 0;
  List.rev !tokens

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "ident %s" s
  | VAR s -> Format.fprintf ppf "var %s" s
  | STRING s -> Format.fprintf ppf "string %S" s
  | INT i -> Format.fprintf ppf "int %d" i
  | FLOAT f -> Format.fprintf ppf "float %g" f
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | LBRACKET -> Format.pp_print_string ppf "["
  | RBRACKET -> Format.pp_print_string ppf "]"
  | LBRACE -> Format.pp_print_string ppf "{"
  | RBRACE -> Format.pp_print_string ppf "}"
  | COMMA -> Format.pp_print_string ppf ","
  | SEMI -> Format.pp_print_string ppf ";"
  | DOT -> Format.pp_print_string ppf "."
  | COLON -> Format.pp_print_string ppf ":"
  | ISA_SUB -> Format.pp_print_string ppf "::"
  | IF -> Format.pp_print_string ppf ":-"
  | QUERY -> Format.pp_print_string ppf "?-"
  | ARROW -> Format.pp_print_string ppf "->"
  | DARROW -> Format.pp_print_string ppf "->>"
  | SARROW -> Format.pp_print_string ppf "=>"
  | AMP -> Format.pp_print_string ppf "&"
  | NOT -> Format.pp_print_string ppf "not"
  | IS -> Format.pp_print_string ppf "is"
  | AT_RELATION -> Format.pp_print_string ppf "@relation"
  | CMP op -> Logic.Literal.pp_cmp ppf op
  | PLUS -> Format.pp_print_string ppf "+"
  | MINUS -> Format.pp_print_string ppf "-"
  | STAR -> Format.pp_print_string ppf "*"
  | SLASH -> Format.pp_print_string ppf "/"
  | EOF -> Format.pp_print_string ppf "<eof>"
