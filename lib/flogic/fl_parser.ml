module Term = Logic.Term
module Literal = Logic.Literal
open Fl_lexer

type statement =
  | Relation_decl of string * string list
  | Rule of Molecule.rule
  | Query of Molecule.lit list

type parsed = {
  signature : Signature.t;
  rules : Molecule.rule list;
  queries : Molecule.lit list list;
  rule_positions : (int * int) list;
}

(* 1-based (line, column) of byte [offset] in [src]. *)
let line_col src offset =
  let line = ref 1 and bol = ref 0 in
  let n = min offset (String.length src) in
  for i = 0 to n - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, n - !bol + 1)

exception Parse_error of string * int

type state = {
  mutable toks : (token * int) list;
  mutable sg : Signature.t;
}

let err st msg =
  let pos = match st.toks with (_, p) :: _ -> p | [] -> -1 in
  raise (Parse_error (msg, pos))

let peek st = match st.toks with (t, _) :: _ -> t | [] -> EOF

let peek2 st = match st.toks with _ :: (t, _) :: _ -> t | _ -> EOF

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let expect st tok what =
  if peek st = tok then advance st else err st ("expected " ^ what)

let agg_fun_of_name = function
  | "count" -> Some Literal.Count
  | "sum" -> Some Literal.Sum
  | "min" -> Some Literal.Min
  | "max" -> Some Literal.Max
  | "avg" -> Some Literal.Avg
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Terms *)

let rec parse_term_st st =
  match peek st with
  | VAR x ->
    advance st;
    Term.var x
  | INT i ->
    advance st;
    Term.int i
  | FLOAT f ->
    advance st;
    Term.float f
  | STRING s ->
    advance st;
    Term.str s
  | MINUS ->
    advance st;
    (match peek st with
    | INT i ->
      advance st;
      Term.int (-i)
    | FLOAT f ->
      advance st;
      Term.float (-.f)
    | _ -> err st "expected number after -")
  | IDENT f -> (
    advance st;
    match peek st with
    | LPAREN ->
      advance st;
      let args = parse_term_list st in
      expect st RPAREN ")";
      Term.app f args
    | _ -> Term.sym f)
  | _ -> err st "expected term"

and parse_term_list st =
  let t = parse_term_st st in
  match peek st with
  | COMMA ->
    advance st;
    t :: parse_term_list st
  | _ -> [ t ]

(* ------------------------------------------------------------------ *)
(* Bracket specs: name (=> | -> | ->>) term; ... *)

type spec = Sig_spec of string * Term.t | Val_spec of string * Term.t

let rec parse_specs st =
  let name =
    match peek st with
    | IDENT a ->
      advance st;
      a
    | _ -> err st "expected attribute/method name in [...]"
  in
  let spec =
    match peek st with
    | SARROW ->
      advance st;
      Sig_spec (name, parse_term_st st)
    | ARROW | DARROW ->
      advance st;
      Val_spec (name, parse_term_st st)
    | _ -> err st "expected =>, -> or ->> in [...]"
  in
  match peek st with
  | SEMI ->
    advance st;
    spec :: parse_specs st
  | _ -> [ spec ]

(* Molecules produced by a bracket on subject [subj]. *)
let bracket_molecules st subj =
  expect st LBRACKET "[";
  let specs = parse_specs st in
  expect st RBRACKET "]";
  let is_relation =
    match subj with
    | Term.Const (Term.Sym r) -> Signature.mem st.sg r
    | _ -> false
  in
  if is_relation then begin
    let r = match subj with Term.Const (Term.Sym r) -> r | _ -> assert false in
    let sigs = List.filter_map (function Sig_spec (a, t) -> Some (a, t) | _ -> None) specs in
    let vals = List.filter_map (function Val_spec (a, t) -> Some (a, t) | _ -> None) specs in
    (if sigs <> [] && vals <> [] then
       err st "cannot mix => and -> in one relation molecule");
    if sigs <> [] then [ Molecule.Rel_sig (r, sigs) ]
    else [ Molecule.Rel_val (r, vals) ]
  end
  else
    List.map
      (function
        | Sig_spec (m, t) -> Molecule.Meth_sig (subj, m, t)
        | Val_spec (m, t) -> Molecule.Meth_val (subj, m, t))
      specs

(* A molecule group starting from an already-parsed subject term:
   returns one or more molecules (object sugar expands). *)
let molecules_after_term st subj =
  match peek st with
  | COLON ->
    advance st;
    let cls = parse_term_st st in
    let isa = Molecule.Isa (subj, cls) in
    if peek st = LBRACKET then isa :: bracket_molecules st subj else [ isa ]
  | ISA_SUB ->
    advance st;
    let sup = parse_term_st st in
    [ Molecule.Sub (subj, sup) ]
  | LBRACKET -> bracket_molecules st subj
  | _ -> (
    (* Plain predicate atom. *)
    match subj with
    | Term.App (p, args) -> [ Molecule.Pred (Logic.Atom.make p args) ]
    | Term.Const (Term.Sym p) -> [ Molecule.Pred (Logic.Atom.make p []) ]
    | _ -> err st "expected a molecule")

let parse_molecules st =
  let subj = parse_term_st st in
  molecules_after_term st subj

(* ------------------------------------------------------------------ *)
(* Arithmetic expressions *)

let rec parse_expr st =
  let lhs = parse_expr_factor st in
  match peek st with
  | PLUS ->
    advance st;
    Literal.Bin (Literal.Add, lhs, parse_expr st)
  | MINUS ->
    advance st;
    Literal.Bin (Literal.Sub, lhs, parse_expr st)
  | _ -> lhs

and parse_expr_factor st =
  let lhs = parse_expr_atom st in
  match peek st with
  | STAR ->
    advance st;
    Literal.Bin (Literal.Mul, lhs, parse_expr_factor st)
  | SLASH ->
    advance st;
    Literal.Bin (Literal.Div, lhs, parse_expr_factor st)
  | _ -> lhs

and parse_expr_atom st =
  match peek st with
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN ")";
    e
  | _ -> Literal.Leaf (parse_term_st st)

(* ------------------------------------------------------------------ *)
(* Body literals *)

let parse_agg st result =
  let fname =
    match peek st with
    | IDENT f -> (
      match agg_fun_of_name f with
      | Some fn ->
        advance st;
        fn
      | None -> err st "expected aggregate function name")
    | _ -> err st "expected aggregate function name"
  in
  expect st LBRACE "{";
  let target = parse_term_st st in
  let group_by =
    if peek st = LBRACKET then begin
      advance st;
      let gs = if peek st = RBRACKET then [] else parse_term_list st in
      expect st RBRACKET "]";
      gs
    end
    else []
  in
  expect st SEMI "; before aggregate body";
  let rec inner () =
    let ms = parse_molecules st in
    match peek st with
    | COMMA ->
      advance st;
      ms @ inner ()
    | _ -> ms
  in
  let body = inner () in
  expect st RBRACE "}";
  Molecule.Agg { Molecule.func = fname; target; group_by; result; body }

let rec parse_body st =
  let lits = parse_lit st in
  match peek st with
  | COMMA ->
    advance st;
    lits @ parse_body st
  | _ -> lits

and parse_lit st =
  match peek st with
  | NOT ->
    advance st;
    let ms = parse_molecules st in
    List.map (fun m -> Molecule.Neg m) ms
  | _ -> (
    let subj = parse_term_st st in
    match peek st with
    | IS ->
      advance st;
      [ Molecule.Assign (subj, parse_expr st) ]
    | CMP Literal.Eq
      when (match peek2 st with
           | IDENT f -> agg_fun_of_name f <> None
           | _ -> false) ->
      advance st;
      [ parse_agg st subj ]
    | CMP op ->
      advance st;
      (* Right side may be an arithmetic expression. *)
      let rhs = parse_expr st in
      (match rhs with
      | Literal.Leaf t -> [ Molecule.Cmp (op, subj, t) ]
      | _ ->
        (* introduce a hidden assignment: subj op expr *)
        err st "comparison against arithmetic expression: use 'is' first")
    | PLUS | MINUS | STAR | SLASH ->
      err st "arithmetic must appear on the right of 'is'"
    | _ -> List.map (fun m -> Molecule.Pos m) (molecules_after_term st subj))

(* ------------------------------------------------------------------ *)
(* Statements *)

let parse_heads st =
  let rec go () =
    let ms = parse_molecules st in
    match peek st with
    | AMP ->
      advance st;
      ms @ go ()
    | _ -> ms
  in
  go ()

let parse_statement st =
  match peek st with
  | AT_RELATION ->
    advance st;
    let name =
      match peek st with
      | IDENT r ->
        advance st;
        r
      | _ -> err st "expected relation name after @relation"
    in
    expect st LPAREN "(";
    let rec attrs () =
      match peek st with
      | IDENT a ->
        advance st;
        if peek st = COMMA then begin
          advance st;
          a :: attrs ()
        end
        else [ a ]
      | _ -> err st "expected attribute name"
    in
    let attr_list = attrs () in
    expect st RPAREN ")";
    expect st DOT ".";
    st.sg <- Signature.declare name attr_list st.sg;
    Relation_decl (name, attr_list)
  | QUERY ->
    advance st;
    let body = parse_body st in
    expect st DOT ".";
    Query body
  | _ -> (
    let heads = parse_heads st in
    match peek st with
    | DOT ->
      advance st;
      Rule (Molecule.rule_multi heads [])
    | IF ->
      advance st;
      let body = parse_body st in
      expect st DOT ".";
      Rule (Molecule.rule_multi heads body)
    | _ -> err st "expected . or :- after rule head")

let parse_program ?(signature = Signature.empty) src =
  match
    let st = { toks = tokenize src; sg = signature } in
    let offset () = match st.toks with (_, p) :: _ -> p | [] -> 0 in
    let rec go acc =
      if peek st = EOF then List.rev acc
      else
        let p = offset () in
        go ((p, parse_statement st) :: acc)
    in
    let stmts = go [] in
    let rules =
      List.filter_map (function _, Rule r -> Some r | _ -> None) stmts
    in
    let rule_positions =
      List.filter_map
        (function p, Rule _ -> Some (line_col src p) | _ -> None)
        stmts
    in
    let queries =
      List.filter_map (function _, Query q -> Some q | _ -> None) stmts
    in
    { signature = st.sg; rules; queries; rule_positions }
  with
  | parsed -> Ok parsed
  | exception Parse_error (msg, pos) ->
    Error (Printf.sprintf "parse error at offset %d: %s" pos msg)
  | exception Lex_error (msg, pos) ->
    Error (Printf.sprintf "lex error at offset %d: %s" pos msg)
  | exception Invalid_argument msg -> Error msg

let parse_program_exn ?signature src =
  match parse_program ?signature src with
  | Ok p -> p
  | Error e -> invalid_arg e

let parse_query ?(signature = Signature.empty) src =
  match
    let st = { toks = tokenize src; sg = signature } in
    if peek st = QUERY then advance st;
    let body = parse_body st in
    if peek st = DOT then advance st;
    if peek st <> EOF then err st "trailing input after query";
    body
  with
  | body -> Ok body
  | exception Parse_error (msg, pos) ->
    Error (Printf.sprintf "parse error at offset %d: %s" pos msg)
  | exception Lex_error (msg, pos) ->
    Error (Printf.sprintf "lex error at offset %d: %s" pos msg)

let parse_term src =
  match
    let st = { toks = tokenize src; sg = Signature.empty } in
    let t = parse_term_st st in
    if peek st <> EOF then err st "trailing input after term";
    t
  with
  | t -> Ok t
  | exception Parse_error (msg, pos) ->
    Error (Printf.sprintf "parse error at offset %d: %s" pos msg)
  | exception Lex_error (msg, pos) ->
    Error (Printf.sprintf "lex error at offset %d: %s" pos msg)
