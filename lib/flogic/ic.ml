module Term = Logic.Term

type witness = { name : string; args : Term.t list }

let witness_term ~name ~args =
  match args with [] -> Term.sym name | _ -> Term.app name args

let denial ~name ~args body =
  Molecule.rule (Molecule.Isa (witness_term ~name ~args, Term.sym Compile.ic_class)) body

let ic_members db =
  (* Witnesses live in the dedicated [ic_d] predicate, kept outside the
     isa closure so denial rules do not destratify it. [Compile] routes
     every [_ : ic] head there, so it is the single source of truth. *)
  Datalog.Database.facts db Compile.ic_p
  |> List.filter_map (fun (a : Logic.Atom.t) ->
         match a.Logic.Atom.args with [ w ] -> Some w | _ -> None)
  |> List.sort_uniq Term.compare

let violations db =
  List.map
    (fun w ->
      match w with
      | Term.App (name, args) -> { name; args }
      | Term.Const (Term.Sym name) -> { name; args = [] }
      | other -> { name = Term.to_string other; args = [] })
    (ic_members db)

let consistent db = ic_members db = []

let by_constraint db =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun w ->
      let n = match Hashtbl.find_opt tbl w.name with Some n -> n | None -> 0 in
      Hashtbl.replace tbl w.name (n + 1))
    (violations db);
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_witness ppf w =
  Logic.Term.pp ppf (witness_term ~name:w.name ~args:w.args)
