(** Integrity constraints as denials with failure witnesses.

    Following Section 3 of the paper, an integrity constraint φ is
    expressed as a denial rule that, on violation, inserts a {e failure
    witness} object into the distinguished inconsistency class [ic].
    A witness is a function term [w_name(args)] recording which
    constraint fired and on what data (Example 2's [wrc], [wtc],
    [was]). *)

type witness = { name : string; args : Logic.Term.t list }

val denial : name:string -> args:Logic.Term.t list -> Molecule.lit list -> Molecule.rule
(** [denial ~name ~args body] builds the FL rule
    [w_name(args) : ic :- body]. *)

val witness_term : name:string -> args:Logic.Term.t list -> Logic.Term.t

val violations : Datalog.Database.t -> witness list
(** All failure witnesses in a materialized database — the contents of
    the dedicated [ic_d] predicate ({!Compile.ic_p}), which is where
    {!Compile} routes every [_ : ic] head. Function-term witnesses keep
    their arguments; other members are reported with empty [args]. *)

val consistent : Datalog.Database.t -> bool
(** [true] iff the [ic] class is empty. *)

val by_constraint : Datalog.Database.t -> (string * int) list
(** Violation counts grouped by constraint name, sorted by name. *)

val pp_witness : Format.formatter -> witness -> unit
