module SM = Map.Make (String)

type t = string list SM.t

let empty = SM.empty

let declare r attrs sg =
  let sorted = List.sort_uniq String.compare attrs in
  if List.length sorted <> List.length attrs then
    invalid_arg (Printf.sprintf "Signature.declare: duplicate attribute in %s" r);
  match SM.find_opt r sg with
  | Some attrs' when attrs' <> attrs ->
    invalid_arg
      (Printf.sprintf "Signature.declare: relation %s redeclared with layout (%s) vs (%s)"
         r (String.concat "," attrs) (String.concat "," attrs'))
  | Some _ -> sg
  | None -> SM.add r attrs sg

let attributes sg r = SM.find_opt r sg
let arity sg r = Option.map List.length (SM.find_opt r sg)
let mem sg r = SM.mem r sg
let relations sg = SM.fold (fun r _ acc -> r :: acc) sg [] |> List.rev

let position sg r a =
  match SM.find_opt r sg with
  | None -> None
  | Some attrs ->
    let rec go k = function
      | [] -> None
      | a' :: _ when String.equal a a' -> Some k
      | _ :: rest -> go (k + 1) rest
    in
    go 0 attrs

let merge sg1 sg2 =
  SM.union
    (fun r a1 a2 ->
      if a1 = a2 then Some a1
      else
        invalid_arg
          (Printf.sprintf
             "Signature.merge: relation %s declared with conflicting layouts \
              (%s) vs (%s)"
             r (String.concat "," a1) (String.concat "," a2)))
    sg1 sg2

let pp ppf sg =
  SM.iter
    (fun r attrs ->
      Format.fprintf ppf "%s[%s]@." r (String.concat "; " attrs))
    sg
