(** Graph operations on domain maps (Section 4, "Integrated Views Using
    Domain Maps").

    The paper's rules:
    {v
    tc(R)(X,Y) :- R(X,Y).
    tc(R)(X,Y) :- tc(R)(X,Z), tc(R)(Z,Y).
    dc(R)(X,Y) :- tc(isa)(X,Z), R(Z,Y).
    dc(R)(X,Y) :- R(X,Z), tc(isa)(Z,Y).
    has_a_star(X,Y) :- dc(has_a)(X,Y).
    v}

    [dc R] additionally contains [R] itself (the paper's [tc] is
    irreflexive, but a deductive closure that dropped the base edges
    would make the recursive traversal of Example 4 skip direct links).
    Note that [has_a_star] is deliberately {e not} transitive — the
    paper: "it would be wasteful to compute the much larger
    [tc(has_a_star)] ... since a recursive traversal of the direct links
    is sufficient". The ablation bench A1/F1 quantifies that remark by
    comparing against {!tc} of the same relation.

    All functions operate on named-concept links with anonymous nodes
    already resolved ({!Dmap.isa_links}); by default only definite links
    are used, [include_possible] adds OR alternatives. *)

type pairs = (string * string) list

val tc : pairs -> pairs
(** Transitive closure of an arbitrary binary relation (irreflexive
    unless the input has cycles). *)

val isa_tc : ?include_possible:bool -> Dmap.t -> pairs
(** [tc] of the isa links, eqv edges contributing both directions. *)

val dc : isa_tc:pairs -> pairs -> pairs
(** Deductive closure of a relation w.r.t. a precomputed isa closure:
    base edges, plus links propagated down (from superclass to
    subclass) and up (target generalised). *)

val role_dc : ?include_possible:bool -> Dmap.t -> role:string -> pairs
(** [dc] of one role's links. *)

val has_a_star : ?include_possible:bool -> ?role:string -> Dmap.t -> pairs
(** The paper's [has_a_star]: [dc] of the [has] role (override with
    [role]). *)

val dc_down : isa_tc:pairs -> pairs -> pairs
(** Like {!dc} but without the upward target generalisation: base links
    plus links inherited by specialisations of the source. This is the
    relation the Example 4 traversal follows — generalising targets and
    then descending isa would leak into sibling subtrees (hippocampus
    has pyramidal cells, pyramidal isa* neuron, purkinje isa* neuron —
    but the hippocampus does not contain Purkinje cells). *)

val traversal : ?include_possible:bool -> ?role:string -> Dmap.t -> pairs
(** The downward-traversal relation: [dc_down] of the part-of role
    (default ["has"]) plus isa descent (from a concept to its
    specialisations). Drives {!Region} and the aggregate operator. *)

val reachable : pairs -> string -> string list
(** Nodes reachable from a start node by recursively traversing direct
    links — the traversal Example 4's [aggregate] performs. Includes the
    start node; sorted. *)

val descendants : Dmap.t -> string -> string list
(** Concepts [d] with [d isa* c], including [c]; sorted. *)

val ancestors : Dmap.t -> string -> string list

val cones : Dmap.t -> string -> string list
(** Memoizing variant of {!descendants}: the isa closure is computed
    once and each concept's cone on first request. This is the
    [members] half of the abstract-interpretation cone oracle
    ([Analysis.Absint.cones]) — concept cones are the domain map's
    "semantic coordinate system" used as abstract values. *)

val successors : pairs -> string -> string list
(** Direct successors in a link set; sorted. *)
