type t = { root : string; members : string list }

let downward dm ?role ~root () =
  { root; members = Closure.reachable (Closure.traversal ?role dm) root }

let covers region cs = List.for_all (fun c -> List.mem c region.members) cs

let of_concepts dm ?role cs =
  (* Prefer the isa-lub; when the concepts share no ancestor (or the
     lub's part-of region misses some of them), fall back to the
     tightest traversal root: the concept whose downward region covers
     all of them and is smallest. Section 5 only needs "a reasonable
     root for the neuron-compartment pairs". *)
  let from_lub =
    match Lub.lub_unique dm cs with
    | Some root ->
      let r = downward dm ?role ~root () in
      if covers r cs then Some r else None
    | None -> None
  in
  match from_lub with
  | Some r -> Some r
  | None ->
    Dmap.concepts dm
    |> List.filter_map (fun root ->
           let r = downward dm ?role ~root () in
           if covers r cs then Some r else None)
    |> List.sort (fun a b ->
           compare
             (List.length a.members, a.root)
             (List.length b.members, b.root))
    |> function
    | r :: _ -> Some r
    | [] -> None

let correspondence dm index ?role ~source1 ~source2 () =
  let c1 = Index.anchored_concepts index ~source:source1 in
  let c2 = Index.anchored_concepts index ~source:source2 in
  if c1 = [] || c2 = [] then None
  else
    match of_concepts dm ?role (c1 @ c2) with
    | None -> None
    | Some region ->
      (* Keep concepts that carry data of either source, plus those on
         the traversal frontier (members whose subtree contains an
         anchor). *)
      let anchored = c1 @ c2 in
      let keep m =
        List.exists
          (fun a -> List.mem a (Closure.descendants dm m) || List.mem m (Closure.descendants dm a))
          anchored
        || List.exists (fun a -> String.equal a m) anchored
      in
      Some { region with members = List.filter keep region.members }

let restrict t ~to_ =
  { t with members = List.filter (fun m -> List.mem m to_) t.members }

let mem t c = List.mem c t.members
let size t = List.length t.members

let pp ppf t =
  Format.fprintf ppf "region(%s): {%s}" t.root (String.concat ", " t.members)
