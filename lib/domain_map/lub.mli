(** Least upper bounds in the isa hierarchy.

    The Section 5 query plan computes "the least upper bound (lub) of
    locations in the domain map" to pick the root of a protein
    distribution. In a DAG there may be several minimal common
    ancestors; {!lub} returns all of them, and {!lub_unique} applies the
    mediator's tie-break (fewest descendants, then name). *)

val common_ancestors : Dmap.t -> string list -> string list
(** Concepts that are isa-ancestors (reflexively) of every input;
    sorted. Empty input yields the empty list. *)

val lub : Dmap.t -> string list -> string list
(** Minimal elements of {!common_ancestors} w.r.t. isa (no other common
    ancestor lies strictly below them). *)

val lub_unique : Dmap.t -> string list -> string option
(** A single representative: the lub candidate with the smallest
    descendant cone (the tightest "region of correspondence" root),
    ties broken by name. [None] when the concepts share no ancestor. *)

val glb : Dmap.t -> string list -> string list
(** Dual: maximal common descendants. *)

val compare_specificity : Dmap.t -> string -> string -> int
(** Orders concepts by descendant-cone size (more specific first). *)
