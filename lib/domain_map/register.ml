type outcome = {
  dmap : Dmap.t;
  added_concepts : string list;
  warnings : string list;
}

let el_subset axioms =
  List.filter
    (fun ax ->
      match ax with
      | Dl.Concept.Subsumes (c, d) | Dl.Concept.Equiv (c, d) ->
        Dl.Concept.is_el c && Dl.Concept.is_el d)
    axioms

let register ?(strict = false) ?(guard = true) dm axioms =
  let known = Dmap.nodes dm in
  let mentioned =
    List.concat_map Dl.Concept.axiom_names axioms
    |> List.sort_uniq String.compare
  in
  let defined =
    List.filter_map
      (fun ax ->
        match ax with
        | Dl.Concept.Subsumes (Dl.Concept.Name c, _)
        | Dl.Concept.Equiv (Dl.Concept.Name c, _) ->
          Some c
        | _ -> None)
      axioms
  in
  let unknown =
    List.filter
      (fun n -> (not (List.mem n known)) && not (List.mem n defined))
      mentioned
  in
  let warnings =
    List.map
      (fun n -> Printf.sprintf "referenced concept %s is not in the domain map" n)
      unknown
  in
  if strict && unknown <> [] then
    Error (String.concat "; " warnings)
  else begin
    (* Satisfiability guard on the decidable subset of old + new axioms. *)
    let unsat_new =
      if not guard then []
      else
        let tbox = el_subset (Dmap.to_axioms dm @ axioms) in
        match Dl.Reason.classify tbox with
        | Error _ -> [] (* outside fragment even after filtering: skip check *)
        | Ok t -> List.filter (fun c -> Dl.Reason.unsatisfiable t c) defined
    in
    match unsat_new with
    | c :: _ ->
      Error (Printf.sprintf "registration makes concept %s unsatisfiable" c)
    | [] ->
      let dm' = List.fold_left (fun d ax -> Dmap.merge d (Dmap.of_axioms [ ax ])) dm axioms in
      let added =
        List.filter (fun c -> not (List.mem c known)) defined
        |> List.sort_uniq String.compare
      in
      Ok { dmap = dm'; added_concepts = added; warnings }
  end

let classification dm concept =
  let tbox = el_subset (Dmap.to_axioms dm) in
  match Dl.Reason.classify tbox with
  | Error f -> Error f
  | Ok t ->
    Ok (List.filter (fun s -> not (String.equal s concept)) (Dl.Reason.subsumers t concept))
