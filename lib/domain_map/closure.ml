module SS = Set.Make (String)

type pairs = (string * string) list

let adjacency pairs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      match Hashtbl.find_opt tbl a with
      | Some l -> l := b :: !l
      | None -> Hashtbl.add tbl a (ref [ b ]))
    pairs;
  fun a -> match Hashtbl.find_opt tbl a with Some l -> !l | None -> []

let reachable_set next start =
  let seen = Hashtbl.create 32 in
  let rec go n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      List.iter go (next n)
    end
  in
  go start;
  Hashtbl.fold (fun n () acc -> SS.add n acc) seen SS.empty

let tc pairs =
  let next = adjacency pairs in
  let sources =
    List.fold_left (fun acc (a, _) -> SS.add a acc) SS.empty pairs
  in
  SS.fold
    (fun a acc ->
      let reach = reachable_set next a in
      SS.fold
        (fun b acc -> if String.equal a b then acc else (a, b) :: acc)
        reach acc)
    sources []
  |> List.sort_uniq compare

let links ?(include_possible = false) (l : Dmap.links) =
  if include_possible then l.Dmap.definite @ l.Dmap.possible else l.Dmap.definite

let isa_tc ?include_possible dm =
  let isa = links ?include_possible (Dmap.isa_links dm) in
  let eqv = Dmap.eqv_links dm in
  let sym = List.concat_map (fun (a, b) -> [ (a, b); (b, a) ]) eqv in
  tc (isa @ sym)

let dc ~isa_tc pairs =
  let up = adjacency isa_tc in
  (* down: X isa* Z, R(Z,Y) => R links inherited by specialisations. *)
  let down_of =
    let by_src = Hashtbl.create 64 in
    List.iter
      (fun (z, x) ->
        (* z isa* x — record x's specialisation z *)
        match Hashtbl.find_opt by_src x with
        | Some l -> l := z :: !l
        | None -> Hashtbl.add by_src x (ref [ z ]))
      isa_tc;
    fun x -> match Hashtbl.find_opt by_src x with Some l -> !l | None -> []
  in
  let acc = ref [] in
  List.iter
    (fun (z, y) ->
      (* base link *)
      acc := (z, y) :: !acc;
      (* down: specialisations of z inherit the link *)
      List.iter (fun x -> acc := (x, y) :: !acc) (down_of z);
      (* up: the target generalises *)
      List.iter (fun y' -> acc := (z, y') :: !acc) (up y))
    pairs;
  List.sort_uniq compare !acc

let dc_down ~isa_tc pairs =
  let down_of =
    let by_src = Hashtbl.create 64 in
    List.iter
      (fun (z, x) ->
        match Hashtbl.find_opt by_src x with
        | Some l -> l := z :: !l
        | None -> Hashtbl.add by_src x (ref [ z ]))
      isa_tc;
    fun x -> match Hashtbl.find_opt by_src x with Some l -> !l | None -> []
  in
  let acc = ref [] in
  List.iter
    (fun (z, y) ->
      acc := (z, y) :: !acc;
      List.iter (fun x -> acc := (x, y) :: !acc) (down_of z))
    pairs;
  List.sort_uniq compare !acc

let traversal ?include_possible ?(role = "has") dm =
  let isa = isa_tc ?include_possible dm in
  let base = links ?include_possible (Dmap.role_links dm role) in
  let star_down = dc_down ~isa_tc:isa base in
  let isa_down = List.map (fun (a, b) -> (b, a)) isa in
  List.sort_uniq compare (star_down @ isa_down)

let role_dc ?include_possible dm ~role =
  let base = links ?include_possible (Dmap.role_links dm role) in
  dc ~isa_tc:(isa_tc ?include_possible dm) base

let has_a_star ?include_possible ?(role = "has") dm =
  role_dc ?include_possible dm ~role

let reachable pairs start =
  let next = adjacency pairs in
  SS.elements (reachable_set next start)

let descendants dm c =
  let isa = isa_tc dm in
  c
  :: List.filter_map (fun (a, b) -> if String.equal b c then Some a else None) isa
  |> List.sort_uniq String.compare

let ancestors dm c =
  let isa = isa_tc dm in
  c
  :: List.filter_map (fun (a, b) -> if String.equal a c then Some b else None) isa
  |> List.sort_uniq String.compare

let cones dm =
  (* one isa closure, then per-concept cones memoized — the
     descendant-cone oracle abstract interpretation widens with
     (Analysis.Absint.cones) asks for the same few cones repeatedly *)
  let isa = lazy (isa_tc dm) in
  let cache : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  fun c ->
    match Hashtbl.find_opt cache c with
    | Some cone -> cone
    | None ->
      let cone =
        c
        :: List.filter_map
             (fun (a, b) -> if String.equal b c then Some a else None)
             (Lazy.force isa)
        |> List.sort_uniq String.compare
      in
      Hashtbl.add cache c cone;
      cone

let successors pairs n =
  List.filter_map (fun (a, b) -> if String.equal a n then Some b else None) pairs
  |> List.sort_uniq String.compare
