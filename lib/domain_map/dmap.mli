(** Domain maps (Definition 1): edge-labeled digraphs whose nodes are
    concepts (plus anonymous [AND]/[OR] nodes) and whose edge labels are
    roles. A domain map both {e is} a graph (navigated by the closure
    operations, the semantic index and the query planner) and {e means}
    a set of DL axioms (executed at the instance level via
    {!Dl.Translate}).

    Edge forms and their DL readings:
    - [C -> D] (unlabeled)      : [C ⊑ D]           (isa)
    - [C -r-> D]                : [C ⊑ ∃r.D]        (ex)
    - [C -ALL:r-> D]            : [C ⊑ ∀r.D]        (all)
    - [AND -> {Ci}]             : [C1 ⊓ ... ⊓ Cn]   (and)
    - [OR -> {Ci}]              : [C1 ⊔ ... ⊔ Cn]   (or)
    - [C -=-> D]                : [C ≡ D]           (eqv) *)

type node_kind = Concept | And_node | Or_node

type edge_kind =
  | Isa
  | Eqv
  | Ex of string   (** existential edge labeled with a role *)
  | All of string  (** universal (ALL:r) edge *)

type edge = { src : string; dst : string; kind : edge_kind }

type t

val empty : t

(** {1 Construction} *)

val add_concept : t -> string -> t
(** Idempotent. Raises [Invalid_argument] if the name is already an
    anonymous node. *)

val add_concepts : t -> string list -> t

val isa : t -> string -> string -> t
(** [isa dm c d] adds the edge [c -> d], creating missing concepts. *)

val ex : t -> role:string -> string -> string -> t
val all_ : t -> role:string -> string -> string -> t
val eqv : t -> string -> string -> t

val and_node : t -> string list -> t * string
(** Create an anonymous AND node with unlabeled edges to the members;
    returns its generated id. *)

val or_node : t -> string list -> t * string

val add_edge : t -> edge -> t

(** {1 Inspection} *)

val mem : t -> string -> bool
val kind_of : t -> string -> node_kind option
val concepts : t -> string list
(** Named concepts only (no anonymous nodes), sorted. *)

val nodes : t -> string list
val roles : t -> string list
val edges : t -> edge list
val out_edges : t -> string -> edge list
val in_edges : t -> string -> edge list
val size : t -> int * int
(** (node count, edge count). *)

val members : t -> string -> string list
(** Members of an anonymous node (targets of its unlabeled edges);
    the node itself for concepts. *)

(** {1 Concept-level relations}

    Anonymous nodes are resolved: an edge into an [AND] node yields a
    {e definite} link to each member, an edge into an [OR] node yields a
    {e possible} link to each member. *)

type links = { definite : (string * string) list; possible : (string * string) list }

val isa_links : t -> links
val role_links : t -> string -> links
val eqv_links : t -> (string * string) list

(** {1 DL interface} *)

val to_axioms : t -> Dl.Concept.axiom list
val of_axioms : Dl.Concept.axiom list -> t
(** Structural reading per Definition 1. Conjunctive right-hand sides
    attach directly to the subject concept ("when unique, AND nodes are
    omitted"); nested fillers get anonymous nodes. *)

val merge : t -> t -> t
val validate : t -> (unit, string) result
(** Rejects dangling edges and anonymous nodes without members. *)

val pp : Format.formatter -> t -> unit
val pp_edge : Format.formatter -> edge -> unit

val to_dot : ?highlight:string list -> t -> string
(** Graphviz rendering in the style of Figures 1 and 3: concepts as
    boxes, AND/OR nodes as small diamonds, unlabeled gray edges for
    isa, labeled edges for roles, [=] for eqv; [highlight] names are
    drawn dark (the figures' "newly registered" nodes). *)
