(** Dynamic registration of new knowledge into a domain map (Figure 3).

    A source may refine the mediator's domain map by sending DL axioms
    for new concepts, e.g.

    {v MyDendrite == Dendrite AND EXISTS exp.Dopamine_R
       MyNeuron  [= Medium_Spiny_Neuron
                    AND EXISTS proj.Globus_Pallidus_External
                    AND ALL has.MyDendrite v}

    Registration validates the axioms first: new-concept names must not
    collide with anonymous nodes, referenced concepts should exist
    (warnings otherwise), and — when the axioms stay inside the
    decidable fragment — satisfiability is checked with {!Dl.Reason} so
    an inconsistent registration is rejected rather than silently
    merged. *)

type outcome = {
  dmap : Dmap.t;
  added_concepts : string list;
  warnings : string list;
}

val register :
  ?strict:bool ->
  ?guard:bool ->
  Dmap.t ->
  Dl.Concept.axiom list ->
  (outcome, string) result
(** [strict] (default false) upgrades unknown-concept warnings to
    errors. [guard] (default true) runs the EL satisfiability check
    over the merged TBox before accepting; it costs a whole-map
    classification (polynomial but map-sized), whereas the structural
    merge itself is independent of map size — the F3 bench reports
    both. *)

val classification : Dmap.t -> string -> (string list, string) result
(** Where a concept sits after registration: its derived named
    subsumers according to {!Dl.Reason} on the map's axioms, or [Error]
    outside the decidable fragment (with the axioms restricted to the
    EL subset as fallback — see implementation notes). *)
