(** Regions of correspondence (Section 5, steps 2-4).

    The last two operations of the paper's query plan "filter out a
    segment in the domain map as the region of correspondence between
    the two information sources": pick a root (the lub of the locations
    in play) and take its downward closure along [has_a_star]. *)

type t = {
  root : string;
  members : string list;  (** concepts reachable from [root], sorted *)
}

val downward : Dmap.t -> ?role:string -> root:string -> unit -> t
(** Downward closure from [root] along [has_a_star] (or another role's
    deductive closure). *)

val of_concepts : Dmap.t -> ?role:string -> string list -> t option
(** The region rooted at the unique lub of the given concepts ([None]
    if they share no ancestor). *)

val correspondence :
  Dmap.t -> Index.t -> ?role:string -> source1:string -> source2:string ->
  unit -> t option
(** The region of correspondence between two registered sources: rooted
    at the lub of all concepts either source anchors data at, restricted
    to concepts under which at least one of the two sources has data or
    that lie on the paths between root and those anchors. *)

val restrict : t -> to_:string list -> t
val mem : t -> string -> bool
val size : t -> int
val pp : Format.formatter -> t -> unit
