(** Executing a domain map on the GCM engine.

    Two layers are emitted:

    - {b concept level}: the map's links as reified facts
      ([dm_isa(c,d)], [dm_role(r,c,d)], [dm_poss(r,c,d)]) plus the
      paper's generic closure rules ([tc_isa], [dc_role],
      [has_a_star]) so that IVDs can navigate the map inside ordinary
      FL rules (Example 4 joins [has_a_star] with source data);
    - {b instance level}: the DL axioms translated by {!Dl.Translate}
      (integrity-constraint or assertion mode) so the object base
      respects — or is completed to respect — the domain knowledge.

    Predicates:
    [dm_isa], [dm_role], [dm_poss], [tc_isa], [dc_role],
    [has_a_star]. *)

val dm_isa_p : string
val dm_role_p : string
val dm_poss_p : string
val tc_isa_p : string
val dc_role_p : string
val has_a_star_p : string

val concept_facts : Dmap.t -> Flogic.Molecule.rule list
(** Reified link facts (definite and possible). *)

val closure_rules : ?quadratic_tc:bool -> ?has_role:string -> unit -> Flogic.Molecule.rule list
(** The paper's Section 4 rules. [quadratic_tc] uses the paper's
    doubly-recursive [tc] formulation (kept for the ablation bench);
    the default right-linear version derives the same relation.
    [has_role] names the role whose deductive closure feeds
    [has_a_star] (default ["has"]). *)

val instance_rules : mode:Dl.Translate.mode -> Dmap.t -> Dl.Translate.output

val program :
  ?mode:Dl.Translate.mode ->
  ?quadratic_tc:bool ->
  ?has_role:string ->
  ?include_instance_rules:bool ->
  Dmap.t ->
  Flogic.Fl_program.t * string list
(** Full FL program of the map (concept facts + closures + optional
    instance rules, default assertion mode) and the translation
    warnings. *)
