module SS = Set.Make (String)

let ancestor_sets dm cs =
  List.map (fun c -> SS.of_list (Closure.ancestors dm c)) cs

let common_ancestors dm cs =
  match ancestor_sets dm cs with
  | [] -> []
  | s :: rest -> SS.elements (List.fold_left SS.inter s rest)

let strictly_below dm a b =
  (* a strictly below b in isa order *)
  (not (String.equal a b)) && List.mem b (Closure.ancestors dm a)

let lub dm cs =
  let common = common_ancestors dm cs in
  List.filter
    (fun c ->
      not (List.exists (fun c' -> strictly_below dm c' c) common))
    common

let cone_size dm c = List.length (Closure.descendants dm c)

let compare_specificity dm a b =
  let d = compare (cone_size dm a) (cone_size dm b) in
  if d <> 0 then d else String.compare a b

let lub_unique dm cs =
  match lub dm cs with
  | [] -> None
  | candidates ->
    Some (List.hd (List.sort (compare_specificity dm) candidates))

let common_descendants dm cs =
  match List.map (fun c -> SS.of_list (Closure.descendants dm c)) cs with
  | [] -> []
  | s :: rest -> SS.elements (List.fold_left SS.inter s rest)

let glb dm cs =
  let common = common_descendants dm cs in
  List.filter
    (fun c ->
      not (List.exists (fun c' -> strictly_below dm c c') common))
    common
