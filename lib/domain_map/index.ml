type anchor = {
  source : string;
  cm_class : string;
  concept : string;
  context : string list;
}

type t = anchor list  (* small: linear scans are fine and keep it simple *)

let empty = []

let add t ~source ~cm_class ~concept ?(context = []) () =
  let a = { source; cm_class; concept; context } in
  if List.mem a t then t else a :: t

let remove_source t s = List.filter (fun a -> not (String.equal a.source s)) t

let anchors t = List.rev t

let sources t =
  List.map (fun a -> a.source) t |> List.sort_uniq String.compare

let anchors_of_source t s =
  List.filter (fun a -> String.equal a.source s) (anchors t)

let concepts_of t ~source ~cm_class =
  List.filter_map
    (fun a ->
      if String.equal a.source source && String.equal a.cm_class cm_class then
        Some a.concept
      else None)
    t
  |> List.sort_uniq String.compare

let covering dm t concept =
  let below = Closure.descendants dm concept in
  List.filter (fun a -> List.mem a.concept below) t

let sources_at dm t ~concept =
  covering dm t concept
  |> List.map (fun a -> a.source)
  |> List.sort_uniq String.compare

let sources_for dm t ~concepts =
  List.concat_map (fun c -> sources_at dm t ~concept:c) concepts
  |> List.sort_uniq String.compare

(* Traversal region of a context concept (Region.downward semantics,
   invoked through Closure to keep Index below Region in the module
   order). *)
let context_region dm ctx = Closure.reachable (Closure.traversal dm) ctx

let context_compatible dm a query_concept =
  a.context = []
  || List.exists
       (fun ctx ->
         List.mem query_concept (context_region dm ctx)
         || String.equal ctx query_concept)
       a.context

let sources_for_pairs dm t ~pairs =
  List.concat_map
    (fun (neuron, compartment) ->
      let covering_either =
        covering dm t compartment @ covering dm t neuron
      in
      List.filter_map
        (fun a ->
          if context_compatible dm a neuron then Some a.source else None)
        covering_either)
    pairs
  |> List.sort_uniq String.compare

let classes_at dm t ~source ~concept =
  covering dm t concept
  |> List.filter_map (fun a ->
         if String.equal a.source source then Some a.cm_class else None)
  |> List.sort_uniq String.compare

let anchored_concepts t ~source =
  List.filter_map
    (fun a -> if String.equal a.source source then Some a.concept else None)
    t
  |> List.sort_uniq String.compare

let coverage dm t ~concept =
  covering dm t concept
  |> List.map (fun a -> (a.source, a.cm_class))
  |> List.sort_uniq compare

let pp ppf t =
  List.iter
    (fun a ->
      Format.fprintf ppf "%s.%s @@ %s%s@." a.source a.cm_class a.concept
        (match a.context with
        | [] -> ""
        | ctx -> " [" ^ String.concat ", " ctx ^ "]"))
    (anchors t)
