module Term = Logic.Term
module Molecule = Flogic.Molecule

let dm_isa_p = "dm_isa"
let dm_role_p = "dm_role"
let dm_poss_p = "dm_poss"
let tc_isa_p = "tc_isa"
let dc_role_p = "dc_role"
let has_a_star_p = "has_a_star"

let v = Term.var
let s = Term.sym

let fact p args = Molecule.fact (Molecule.pred p args)

let concept_facts dm =
  let isa = Dmap.isa_links dm in
  let isa_facts =
    List.map (fun (a, b) -> fact dm_isa_p [ s a; s b ]) isa.Dmap.definite
    (* possible isa (through OR nodes) recorded as possible links of a
       pseudo-role so they stay queryable *)
    @ List.map (fun (a, b) -> fact dm_poss_p [ s "isa"; s a; s b ]) isa.Dmap.possible
  in
  let eqv_facts =
    List.concat_map
      (fun (a, b) ->
        [ fact dm_isa_p [ s a; s b ]; fact dm_isa_p [ s b; s a ] ])
      (Dmap.eqv_links dm)
  in
  let role_facts =
    List.concat_map
      (fun r ->
        let links = Dmap.role_links dm r in
        List.map (fun (a, b) -> fact dm_role_p [ s r; s a; s b ]) links.Dmap.definite
        @ List.map (fun (a, b) -> fact dm_poss_p [ s r; s a; s b ]) links.Dmap.possible)
      (Dmap.roles dm)
  in
  isa_facts @ eqv_facts @ role_facts

let closure_rules ?(quadratic_tc = false) ?(has_role = "has") () =
  let p = Molecule.pred in
  let pos m = Molecule.Pos m in
  let tc_rules =
    if quadratic_tc then
      [
        (* the paper's formulation: tc(X,Y) :- tc(X,Z), tc(Z,Y). *)
        Molecule.rule (p tc_isa_p [ v "X"; v "Y" ]) [ pos (p dm_isa_p [ v "X"; v "Y" ]) ];
        Molecule.rule
          (p tc_isa_p [ v "X"; v "Y" ])
          [ pos (p tc_isa_p [ v "X"; v "Z" ]); pos (p tc_isa_p [ v "Z"; v "Y" ]) ];
      ]
    else
      [
        Molecule.rule (p tc_isa_p [ v "X"; v "Y" ]) [ pos (p dm_isa_p [ v "X"; v "Y" ]) ];
        Molecule.rule
          (p tc_isa_p [ v "X"; v "Y" ])
          [ pos (p tc_isa_p [ v "X"; v "Z" ]); pos (p dm_isa_p [ v "Z"; v "Y" ]) ];
      ]
  in
  tc_rules
  @ [
      (* dc(R): base, down, up — Section 4. *)
      Molecule.rule
        (p dc_role_p [ v "R"; v "X"; v "Y" ])
        [ pos (p dm_role_p [ v "R"; v "X"; v "Y" ]) ];
      Molecule.rule
        (p dc_role_p [ v "R"; v "X"; v "Y" ])
        [ pos (p tc_isa_p [ v "X"; v "Z" ]); pos (p dm_role_p [ v "R"; v "Z"; v "Y" ]) ];
      Molecule.rule
        (p dc_role_p [ v "R"; v "X"; v "Y" ])
        [ pos (p dm_role_p [ v "R"; v "X"; v "Z" ]); pos (p tc_isa_p [ v "Z"; v "Y" ]) ];
      Molecule.rule
        (p has_a_star_p [ v "X"; v "Y" ])
        [ pos (p dc_role_p [ s has_role; v "X"; v "Y" ]) ];
    ]

let instance_rules ~mode dm = Dl.Translate.axioms ~mode (Dmap.to_axioms dm)

let program ?(mode = Dl.Translate.Assertion) ?quadratic_tc ?has_role
    ?(include_instance_rules = true) dm =
  let base = concept_facts dm @ closure_rules ?quadratic_tc ?has_role () in
  let inst =
    if include_instance_rules then instance_rules ~mode dm
    else { Dl.Translate.rules = []; warnings = [] }
  in
  ( Flogic.Fl_program.make (base @ inst.Dl.Translate.rules),
    inst.Dl.Translate.warnings )
