module SM = Map.Make (String)
module SS = Set.Make (String)

type node_kind = Concept | And_node | Or_node

type edge_kind =
  | Isa
  | Eqv
  | Ex of string
  | All of string

type edge = { src : string; dst : string; kind : edge_kind }

module ES = Set.Make (struct
  type t = edge

  let compare = Stdlib.compare
end)

type t = {
  node_kinds : node_kind SM.t;
  edge_list : edge list;  (* reverse insertion order *)
  edge_set : ES.t;        (* same edges, for O(log e) dedup *)
  anon : int;             (* anonymous node counter *)
  extra_axioms : Dl.Concept.axiom list;
      (* axioms with a complex left-hand side: Definition 1's graphical
         forms have no edge for them, so they are carried alongside the
         graph and re-emitted by to_axioms *)
}

let empty =
  {
    node_kinds = SM.empty;
    edge_list = [];
    edge_set = ES.empty;
    anon = 0;
    extra_axioms = [];
  }

let add_concept dm name =
  match SM.find_opt name dm.node_kinds with
  | Some Concept -> dm
  | Some _ -> invalid_arg (Printf.sprintf "Dmap.add_concept: %s is an anonymous node" name)
  | None -> { dm with node_kinds = SM.add name Concept dm.node_kinds }

let add_concepts dm names = List.fold_left add_concept dm names

let ensure dm name =
  if SM.mem name dm.node_kinds then dm
  else { dm with node_kinds = SM.add name Concept dm.node_kinds }

let add_edge dm e =
  let dm = ensure (ensure dm e.src) e.dst in
  if ES.mem e dm.edge_set then dm
  else
    { dm with edge_list = e :: dm.edge_list; edge_set = ES.add e dm.edge_set }

let isa dm c d = add_edge dm { src = c; dst = d; kind = Isa }
let ex dm ~role c d = add_edge dm { src = c; dst = d; kind = Ex role }
let all_ dm ~role c d = add_edge dm { src = c; dst = d; kind = All role }
let eqv dm c d = add_edge dm { src = c; dst = d; kind = Eqv }

let fresh_anon dm kind =
  let id =
    Printf.sprintf "%s#%d" (if kind = And_node then "AND" else "OR") (dm.anon + 1)
  in
  ({ dm with anon = dm.anon + 1; node_kinds = SM.add id kind dm.node_kinds }, id)

let anon_members dm id members =
  List.fold_left (fun dm m -> add_edge dm { src = id; dst = m; kind = Isa }) dm members

let and_node dm members =
  let dm, id = fresh_anon dm And_node in
  (anon_members dm id members, id)

let or_node dm members =
  let dm, id = fresh_anon dm Or_node in
  (anon_members dm id members, id)

let mem dm name = SM.mem name dm.node_kinds
let kind_of dm name = SM.find_opt name dm.node_kinds

let concepts dm =
  SM.fold (fun n k acc -> if k = Concept then n :: acc else acc) dm.node_kinds []
  |> List.sort String.compare

let nodes dm = SM.fold (fun n _ acc -> n :: acc) dm.node_kinds [] |> List.sort String.compare

let edges dm = List.rev dm.edge_list

let roles dm =
  List.filter_map
    (fun e -> match e.kind with Ex r | All r -> Some r | Isa | Eqv -> None)
    dm.edge_list
  |> List.sort_uniq String.compare

let out_edges dm n = List.filter (fun e -> String.equal e.src n) (edges dm)
let in_edges dm n = List.filter (fun e -> String.equal e.dst n) (edges dm)

let size dm = (SM.cardinal dm.node_kinds, List.length dm.edge_list)

let members dm n =
  match kind_of dm n with
  | Some Concept | None -> [ n ]
  | Some (And_node | Or_node) ->
    List.filter_map
      (fun e -> if e.kind = Isa && String.equal e.src n then Some e.dst else None)
      dm.edge_list
    |> List.sort String.compare

type links = { definite : (string * string) list; possible : (string * string) list }

(* A resolved concept-level link: a named source related to a named
   target through a relation (isa or a role), definitely or possibly. *)
type resolved = {
  rel : [ `Isa | `Role of string ];
  target : string;
  sure : bool;
}

(* Expand an edge target through anonymous nodes, recursively.

   - [C ->(isa) AND{A, ∃r.B}]: C ⊑ A (definite isa) and C ⊑ ∃r.B
     (definite role link) — role edges of AND nodes reached through an
     isa context hoist to the source;
   - [C -r-> AND{A,B}]: the filler is both, so (C,r,A) and (C,r,B) are
     definite; nested structure belongs to the filler, not to C;
   - any step through an OR node demotes links to possible. *)
let rec resolve dm ~rel ~sure dst =
  match kind_of dm dst with
  | Some Concept | None -> [ { rel; target = dst; sure } ]
  | Some And_node ->
    List.concat_map
      (fun e ->
        if not (String.equal e.src dst) then []
        else
          match e.kind, rel with
          | Isa, _ -> resolve dm ~rel ~sure e.dst
          | Ex r, `Isa | All r, `Isa ->
            (* hoisted role edge of a conjunction used as a class *)
            resolve dm ~rel:(`Role r) ~sure e.dst
          | (Ex _ | All _), `Role _ ->
            (* nested filler structure: not a link of the source *)
            []
          | Eqv, _ -> resolve dm ~rel ~sure e.dst)
      (out_edges dm dst)
  | Some Or_node ->
    List.concat_map
      (fun e ->
        if e.kind = Isa && String.equal e.src dst then
          resolve dm ~rel ~sure:false e.dst
        else [])
      (out_edges dm dst)

let resolved_links dm =
  List.concat_map
    (fun e ->
      match kind_of dm e.src with
      | Some (And_node | Or_node) -> [] (* handled via resolution *)
      | _ -> (
        match e.kind with
        | Isa -> List.map (fun r -> (e.src, r)) (resolve dm ~rel:`Isa ~sure:true e.dst)
        | Eqv ->
          (* downward implication; the named-named reverse direction is
             added by eqv_links consumers *)
          List.map (fun r -> (e.src, r)) (resolve dm ~rel:`Isa ~sure:true e.dst)
        | Ex role | All role ->
          List.map (fun r -> (e.src, r)) (resolve dm ~rel:(`Role role) ~sure:true e.dst)))
    (edges dm)

let collect dm pred =
  let definite = ref [] and possible = ref [] in
  List.iter
    (fun (src, r) ->
      if pred r.rel then
        if r.sure then definite := (src, r.target) :: !definite
        else possible := (src, r.target) :: !possible)
    (resolved_links dm);
  {
    definite = List.sort_uniq compare !definite;
    possible = List.sort_uniq compare !possible;
  }

let eqv_links dm =
  List.filter_map
    (fun e ->
      if e.kind = Eqv
         && kind_of dm e.src = Some Concept
         && kind_of dm e.dst = Some Concept
      then Some (e.src, e.dst)
      else None)
    (edges dm)
  |> List.sort_uniq compare

let isa_links dm = collect dm (fun r -> r = `Isa)

let role_links dm role = collect dm (fun r -> r = `Role role)

(* ------------------------------------------------------------------ *)
(* DL interface *)

let rec node_concept dm n =
  match kind_of dm n with
  | Some Concept | None -> Dl.Concept.Name n
  | Some And_node ->
    let parts =
      List.filter_map
        (fun e ->
          if not (String.equal e.src n) then None
          else
            match e.kind with
            | Isa | Eqv -> Some (node_concept dm e.dst)
            | Ex r -> Some (Dl.Concept.Exists (r, node_concept dm e.dst))
            | All r -> Some (Dl.Concept.Forall (r, node_concept dm e.dst)))
        (out_edges dm n)
    in
    Dl.Concept.conj parts
  | Some Or_node ->
    Dl.Concept.disj (List.map (node_concept dm) (members dm n))

let to_axioms dm =
  List.filter_map
    (fun e ->
      match kind_of dm e.src with
      | Some (And_node | Or_node) -> None (* member edges are part of the node *)
      | _ ->
        let dst = node_concept dm e.dst in
        let src = Dl.Concept.Name e.src in
        (match e.kind with
        | Isa -> Some (Dl.Concept.Subsumes (src, dst))
        | Eqv -> Some (Dl.Concept.Equiv (src, dst))
        | Ex r -> Some (Dl.Concept.Subsumes (src, Dl.Concept.Exists (r, dst)))
        | All r -> Some (Dl.Concept.Subsumes (src, Dl.Concept.Forall (r, dst)))))
    (edges dm)
  @ List.rev dm.extra_axioms

(* Turn a concept expression into a node (possibly anonymous),
   returning the updated map and node id. *)
let rec node_of_concept dm c =
  match c with
  | Dl.Concept.Name n -> (ensure dm n, n)
  | Dl.Concept.Top -> (ensure dm "TOP", "TOP")
  | Dl.Concept.Bot -> (ensure dm "BOT", "BOT")
  | Dl.Concept.And cs ->
    let dm, ids =
      List.fold_left
        (fun (dm, ids) c ->
          let dm, id = node_of_concept dm c in
          (dm, id :: ids))
        (dm, []) cs
    in
    let dm, id = fresh_anon dm And_node in
    (anon_members dm id (List.rev ids), id)
  | Dl.Concept.Or cs ->
    let dm, ids =
      List.fold_left
        (fun (dm, ids) c ->
          let dm, id = node_of_concept dm c in
          (dm, id :: ids))
        (dm, []) cs
    in
    let dm, id = fresh_anon dm Or_node in
    (anon_members dm id (List.rev ids), id)
  | Dl.Concept.Exists (r, filler) ->
    (* A bare ∃r.C as a node: introduce an anonymous concept standing
       for it, with an ex edge. Rare (only from nested fillers). *)
    let dm, target = node_of_concept dm filler in
    let dm, id = fresh_anon dm And_node in
    (add_edge dm { src = id; dst = target; kind = Ex r }, id)
  | Dl.Concept.Forall (r, filler) ->
    let dm, target = node_of_concept dm filler in
    let dm, id = fresh_anon dm And_node in
    (add_edge dm { src = id; dst = target; kind = All r }, id)

(* Attach rhs structure directly to concept [c] ("AND nodes omitted"). *)
let rec attach dm ~via c rhs =
  let edge kind dst = add_edge dm { src = c; dst; kind } in
  match rhs with
  | Dl.Concept.Name d -> edge via d
  | Dl.Concept.Top -> dm
  | Dl.Concept.Bot -> edge via "BOT"
  | Dl.Concept.And cs when via = Isa ->
    List.fold_left (fun dm part -> attach dm ~via c part) dm cs
  | Dl.Concept.Exists (r, filler) when via = Isa ->
    let dm, target = node_of_concept dm filler in
    add_edge dm { src = c; dst = target; kind = Ex r }
  | Dl.Concept.Forall (r, filler) when via = Isa ->
    let dm, target = node_of_concept dm filler in
    add_edge dm { src = c; dst = target; kind = All r }
  | _ ->
    let dm, target = node_of_concept dm rhs in
    add_edge dm { src = c; dst = target; kind = via }

let of_axiom dm = function
  | Dl.Concept.Subsumes (Dl.Concept.Name c, rhs) ->
    attach (ensure dm c) ~via:Isa c rhs
  | Dl.Concept.Equiv (Dl.Concept.Name c, rhs) ->
    attach (ensure dm c) ~via:Eqv c rhs
  | (Dl.Concept.Subsumes (lhs, _) | Dl.Concept.Equiv (lhs, _)) as ax ->
    (* Complex left-hand sides have no Definition 1 edge form; keep the
       axiom alongside the graph (names registered as concepts) so
       to_axioms and the reasoner still see it. *)
    let dm =
      List.fold_left ensure dm (Dl.Concept.axiom_names ax)
    in
    ignore lhs;
    if List.mem ax dm.extra_axioms then dm
    else { dm with extra_axioms = ax :: dm.extra_axioms }

let of_axioms axs = List.fold_left of_axiom empty axs

let merge dm1 dm2 =
  (* Re-add dm2's structure into dm1; anonymous ids of dm2 are renamed
     to avoid clashes. *)
  let rename =
    let tbl = Hashtbl.create 8 in
    fun dm id kind ->
      match Hashtbl.find_opt tbl id with
      | Some nid -> (dm, nid)
      | None ->
        let dm, nid = fresh_anon dm kind in
        Hashtbl.add tbl id nid;
        (dm, nid)
  in
  let dm, mapping =
    SM.fold
      (fun n k (dm, mapping) ->
        match k with
        | Concept -> (add_concept dm n, SM.add n n mapping)
        | And_node | Or_node ->
          let dm, nid = rename dm n k in
          (dm, SM.add n nid mapping))
      dm2.node_kinds (dm1, SM.empty)
  in
  let dm =
    List.fold_left
      (fun dm e ->
        let m n = match SM.find_opt n mapping with Some x -> x | None -> n in
        add_edge dm { e with src = m e.src; dst = m e.dst })
      dm (edges dm2)
  in
  List.fold_left
    (fun dm ax ->
      if List.mem ax dm.extra_axioms then dm
      else { dm with extra_axioms = ax :: dm.extra_axioms })
    dm (List.rev dm2.extra_axioms)

let validate dm =
  let dangling =
    List.find_opt
      (fun e -> not (mem dm e.src && mem dm e.dst))
      (edges dm)
  in
  match dangling with
  | Some e -> Error (Printf.sprintf "dangling edge %s -> %s" e.src e.dst)
  | None -> (
    let empty_anon =
      SM.fold
        (fun n k acc ->
          match k with
          | (And_node | Or_node) when out_edges dm n = [] -> n :: acc
          | _ -> acc)
        dm.node_kinds []
    in
    match empty_anon with
    | n :: _ -> Error (Printf.sprintf "anonymous node %s has no members" n)
    | [] -> Ok ())

let pp_edge ppf e =
  match e.kind with
  | Isa -> Format.fprintf ppf "%s -> %s" e.src e.dst
  | Eqv -> Format.fprintf ppf "%s = %s" e.src e.dst
  | Ex r -> Format.fprintf ppf "%s -%s-> %s" e.src r e.dst
  | All r -> Format.fprintf ppf "%s -ALL:%s-> %s" e.src r e.dst

let pp ppf dm =
  let n, e = size dm in
  Format.fprintf ppf "domain map: %d nodes, %d edges@." n e;
  List.iter (fun e -> Format.fprintf ppf "  %a@." pp_edge e) (edges dm)

let to_dot ?(highlight = []) dm =
  let buf = Buffer.create 1024 in
  let quoted n = Printf.sprintf "%S" n in
  Buffer.add_string buf "digraph domain_map {\n";
  Buffer.add_string buf "  rankdir=BT;\n  node [fontname=\"Helvetica\"];\n";
  SM.iter
    (fun n k ->
      let attrs =
        match k with
        | Concept ->
          if List.mem n highlight then
            "shape=box, style=filled, fillcolor=gray25, fontcolor=white"
          else "shape=box"
        | And_node -> "shape=diamond, label=\"AND\", width=0.3, height=0.3"
        | Or_node -> "shape=diamond, label=\"OR\", width=0.3, height=0.3"
      in
      Buffer.add_string buf (Printf.sprintf "  %s [%s];\n" (quoted n) attrs))
    dm.node_kinds;
  List.iter
    (fun e ->
      let attrs =
        match e.kind with
        | Isa -> "color=gray, arrowhead=empty"
        | Eqv -> "label=\"=\", dir=both"
        | Ex r -> Printf.sprintf "label=%S" r
        | All r -> Printf.sprintf "label=\"ALL:%s\"" r
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [%s];\n" (quoted e.src) (quoted e.dst) attrs))
    (edges dm);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
