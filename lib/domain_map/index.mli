(** The semantic index: anchors from source data into the domain map.

    "As part of registering a source's CM with the mediator, the wrapper
    creates a semantic index of its data into the domain map" — each
    exported class (or individual object) is tagged with the concept(s)
    it instantiates. The index is what lets the mediator {e select
    relevant sources} during query processing (Section 5, step 2). *)

type anchor = {
  source : string;    (** registered source name *)
  cm_class : string;  (** class of CM(S) whose objects are anchored *)
  concept : string;   (** domain-map concept *)
  context : string list;
      (** optional extra "semantic coordinates" (e.g. organism, brain
          region) used to refine source selection *)
}

type t

val empty : t

val add :
  t -> source:string -> cm_class:string -> concept:string ->
  ?context:string list -> unit -> t

val remove_source : t -> string -> t

val anchors : t -> anchor list
val sources : t -> string list
val anchors_of_source : t -> string -> anchor list
val concepts_of : t -> source:string -> cm_class:string -> string list

val sources_at : Dmap.t -> t -> concept:string -> string list
(** Sources with data anchored at [concept] or at any isa-descendant of
    it (data about purkinje cells answers questions about neurons). *)

val sources_for : Dmap.t -> t -> concepts:string list -> string list
(** Sources relevant to {e any} of the given concepts — the query
    planner's source-selection primitive. *)

val context_compatible : Dmap.t -> anchor -> string -> bool
(** Is an anchor's context consistent with a query concept? True when
    the anchor declares no context, or when some context concept's
    traversal region (part-of links plus isa descent) covers the query
    concept. E.g. data anchored "in hippocampus" does not speak to
    Purkinje cells, which live in the cerebellum. *)

val sources_for_pairs :
  Dmap.t -> t -> pairs:(string * string) list -> string list
(** Step 2 of the paper's query plan, pair-aware: a source qualifies
    for a (neuron, compartment) pair when it has an anchor covering the
    compartment or the neuron whose context is compatible with the
    neuron. This is what makes "only NCMIR" come back for
    (purkinje_cell, spine) even though SYNAPSE also measures spines —
    in the hippocampus. *)

val classes_at : Dmap.t -> t -> source:string -> concept:string -> string list
(** Which classes of one source carry data for a concept. *)

val anchored_concepts : t -> source:string -> string list

val coverage : Dmap.t -> t -> concept:string -> (string * string) list
(** (source, cm_class) pairs covering a concept, via isa descent. *)

val pp : Format.formatter -> t -> unit
