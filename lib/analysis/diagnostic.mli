(** Structured diagnostics for kindlint, the federation-wide static
    analyzer.

    Every analysis pass ({!Rule_lint}, {!Strat_lint}, {!Schema_lint},
    {!Cap_lint}, {!Dmap_lint}) reports its findings as values of this
    one type so that callers — the [kindctl lint] CLI, the mediator's
    registration policy, tests — can filter, render and serialize them
    uniformly. *)

type severity = Error | Warning | Info

type location =
  | Rule of { index : int; text : string; pos : (int * int) option }
      (** [index] is the rule's position in the linted program
          (0-based); [pos] the 1-based (line, column) of the rule in
          its source file, when it was parsed from one (programmatic
          rules carry [None]) *)
  | Predicate of string
  | Edge of { src : string; dst : string; label : string }
      (** a domain-map or dependency-graph edge *)
  | Concept of string
  | Source of string
  | Query of string  (** an IVD body / query template, rendered *)
  | Federation

type t = {
  severity : severity;
  pass : string;  (** ["rules"], ["stratification"], ["schema"],
                      ["capability"] or ["domain-map"] *)
  code : string;  (** stable machine-readable code, e.g. ["unsafe-rule"] *)
  location : location;
  message : string;
  hint : string option;  (** how to fix it, when we can tell *)
}

val make :
  ?hint:string ->
  severity:severity ->
  pass:string ->
  code:string ->
  location:location ->
  string ->
  t

val severity_order : severity -> int
(** [Error] < [Warning] < [Info] — for sorting worst-first. *)

val sort : t list -> t list
(** Stable sort by severity (errors first), then pass, then code — the
    human-report order. *)

val normalize : t list -> t list
(** Deterministic machine order, independent of pass registration:
    stable sort by (location, pass, code, severity, message, hint) and
    dedup of identical diagnostics. {!Kindlint.lint_program} and the
    {!Mediation.Lint} facade normalize before returning, so [--json]
    goldens don't depend on which pass emitted a finding first. *)

val errors : t list -> t list
val warnings : t list -> t list

val count : t list -> severity -> int

val pp_severity : Format.formatter -> severity -> unit
val pp_location : Format.formatter -> location -> unit

val pp : Format.formatter -> t -> unit
(** One human-readable block:
    [error[unsafe-rule] rule #2 `p(X) :- q(Y).`: variable X ...] plus an
    indented hint line when present. *)

val pp_report : Format.formatter -> t list -> unit
(** All diagnostics (sorted) followed by a one-line summary. *)

val to_json : t -> string
val list_to_json : t list -> string
(** A JSON array of objects with fields [severity], [pass], [code],
    [location] (an object with a [kind] field), [message] and [hint]
    (absent when there is none). *)

val list_to_sarif : (string option * t list) list -> string
(** SARIF 2.1.0 log with a single [kindlint] run: one result per
    diagnostic, [ruleId] = ["pass/code"], severity mapped to
    [error]/[warning]/[note]. Each group carries the URI of the file
    its diagnostics were linted from ([None] — e.g. [--demo] — omits
    physical locations); rule source positions become
    [startLine]/[startColumn] regions. *)
