(** Skolem-safety: termination of the bottom-up fixpoint under value
    invention, via weak acyclicity of the position dependency graph
    with a functor-graph refinement in the spirit of super-weak
    acyclicity.

    Positions are rendered ["pred#i"], with the [isa] instance
    position split per class (["isa@neuron"]) when every [isa]-head
    names its class — the split models the GCM propagation axiom
    [isa(X,C2) :- isa(X,C1), sub(C1,C2)] by static edges instead of
    collapsing all classes into one recursive position. The
    {!Flogic.Gcm_axioms.core} rules are recognised and modeled rather
    than traversed. Arithmetic assignment and aggregate results are
    treated as pseudo-functors [<arith>]/[<agg>].

    The verdict is sound for acceptance: [Safe _] implies every
    derivation chain adds bounded term depth, so materialization
    reaches a fixpoint without relying on the engine's
    [max_term_depth] suppression. [Unsafe _] is conservative — the
    program {e may} still terminate. *)

type cycle = {
  positions : string list;
      (** the offending position cycle, in order (first node not
          repeated at the end) *)
  functors : string list; (** functors of the special edges on it *)
  rules : int list;
      (** indices (into the analyzed rule list) of the rules whose
          flows contribute cycle edges; axiom-modeled edges carry no
          index *)
}

type verdict =
  | Safe of { refined : bool }
      (** [refined = true]: weak acyclicity failed but the functor
          graph is acyclic *)
  | Unsafe of cycle

val analyze :
  ?gcm:bool ->
  ?extra_sub:(string * string) list ->
  Logic.Rule.t list ->
  verdict
(** [gcm] (default true) enables GCM axiom recognition/modeling;
    pass [false] for plain Datalog rule sets. [extra_sub] adds
    subsumption pairs the rules themselves don't state (the domain
    map's isa closure). *)

val cycle_to_string : cycle -> string
