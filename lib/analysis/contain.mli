(** Conjunctive-query containment, satisfiability and semantic rule
    minimization modulo the domain map.

    [contained ctx q1 q2] decides [q1 ⊑ q2] (every answer of [q1] is an
    answer of [q2] in every database closed under the GCM axioms and
    the context's subsumption pairs) by the Chandra–Merlin test: freeze
    [q1]'s body, {e chase} the frozen atoms with the consequences the
    axioms guarantee (declared ⟹ closed, [isa] up-propagation through
    the combined program/domain-map subsumption preorder, [sub]
    reflexivity/transitivity, signature inheritance), and search for a
    homomorphism from [q2]'s body into the chased canonical database
    that maps head to head.

    Non-CQ literals (negation, comparisons, assignments, aggregates)
    are handled conservatively — exact syntactic coverage plus numeric
    interval entailment — so every verdict errs toward "not contained" /
    "satisfiable", never the reverse. All entry points are pure. *)

type ctx
(** Semantic context: the subsumption preorder (program [sub] facts
    combined with the domain map's definite isa/eqv closure), declared
    disjointness pairs, and whether the GCM axioms are in force. *)

val empty_ctx : ctx
(** No subsumption pairs, no disjointness, GCM axioms assumed. *)

val make_ctx :
  ?dm:Domain_map.Dmap.t ->
  ?rules:Logic.Rule.t list ->
  ?disjoint:(string * string) list ->
  ?gcm:bool ->
  unit ->
  ctx
(** [rules] contributes its ground [sub]/[sub_d] facts (truths in every
    model); [dm] contributes {!Domain_map.Closure.isa_tc} with eqv
    edges in both directions. [gcm:false] turns the chase into plain
    freezing (pure Datalog, no F-logic closure). *)

val sub_pairs : ctx -> (string * string) list
(** The transitively-closed proper-subsumption pairs of the context. *)

val contained :
  ?budget:int -> ctx -> Logic.Rule.t -> Logic.Rule.t -> bool
(** [contained ctx q1 q2]: sound, and complete for pure CQs within
    [budget] (default 16) positive body atoms in [q2] (and twice that
    in [q1]) — larger rules conservatively answer [false]. *)

val equivalent : ?budget:int -> ctx -> Logic.Rule.t -> Logic.Rule.t -> bool

val unsatisfiable : ctx -> Logic.Rule.t -> string option
(** [Some reason] when the rule's body can never be satisfied: a
    ground-false comparison, contradictory numeric constraints on one
    variable, a negated atom implied by the positive body under the
    chase, or membership in two declared-disjoint concepts. [None]
    means "not provably unsatisfiable". *)

val implied_atoms : ctx -> Logic.Rule.t -> Logic.Atom.t list
(** Positive body atoms that are individually redundant: dropping the
    atom keeps the rule safe and yields an equivalent rule. *)

val minimize_rule : ctx -> Logic.Rule.t -> Logic.Rule.t
(** Greedily drop implied atoms until none remains. The result is
    equivalent to the input (each step is containment-verified in both
    directions — the candidate is trivially contained in the original).
    Facts and single-atom bodies are returned unchanged. *)

val minimize : ctx -> Logic.Rule.t list -> Logic.Rule.t list
(** {!minimize_rule} on every rule — the shape of the
    [Engine.config.minimize] hook. *)

val redundant_view :
  ctx -> against:Logic.Rule.t list -> Logic.Rule.t list -> bool
(** [redundant_view ctx ~against candidate]: every rule of the
    candidate view is contained in some rule of [against] with the same
    head predicate — registering the candidate adds no answers. *)

val resolve_eqs : Logic.Rule.t -> Logic.Rule.t
(** Substitute [V = t] body equations through the rule (occurs-check
    guarded) and drop the trivial equations that result. Exposed for
    the termination analysis, which needs the same normalization to see
    skolem terms placed in head positions. *)
