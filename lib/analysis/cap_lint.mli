(** Pass 4 — capability feasibility.

    Decides {e statically}, against each source's declared query
    capabilities (Sec. 2 binding patterns), whether a conjunctive
    query / IVD body in the {!Mediation.Conjunctive} fragment admits
    any executable ordering — instead of discovering an unexecutable
    plan as an empty answer or an [Unplannable] exception at run time.

    The model mirrors the planner: a literal is {e executable} under a
    set of bound variables when

    - a class group [X : c] has at least one covering source whose
      class is scannable (or selectable on methods already bound);
      executing it binds [X] and its method-value variables;
    - a relation access ['SRC.rel'[a -> T; ...]] matches a declared
      binding pattern whose [Bound] positions are all bound (or the
      relation is scannable); executing it binds all its field
      variables;
    - an [Eq] comparison with one side bound binds the other; other
      comparisons need both sides bound;
    - a domain-map test ([dm_isa] etc.) is always executable (its pairs
      are enumerable) and binds both arguments.

    Executability is monotone in the bound set, so a greedy fixpoint is
    complete: if it stalls, {e no} ordering executes the remaining
    literals, and the stalled subgoals are reported.

    Codes:
    - {b infeasible-access} (error): a relation access no ordering can
      satisfy — e.g. a bound-argument-only relation used with a
      variable nothing else binds ("the wrapper refuses every access");
    - {b unscannable-class} (error): a class group whose every covering
      source forbids scanning and whose pushable selections cannot be
      bound;
    - {b no-covering-source} (warning): a class/concept no registered
      source covers — the plan executes but is vacuously empty;
    - {b infeasible-comparison} (warning): a comparison over variables
      nothing binds (answers are silently dropped);
    - {b ungrouped-method} (error): [X[m ->> V]] with no class
      constraint for [X] ({!Mediation.Conjunctive} rejects it);
    - {b unplannable-literal} (warning): a literal outside the
      planner's fragment (negation, aggregation, assignment).
    - {b unused-template-param} / {b unknown-template-param}
      (warning): a declared query template whose parameter list and
      [$param] placeholders disagree ({!lint_templates}). *)

type source_info = {
  name : string;
  capabilities : Wrapper.Capability.t list;
  relations : (string * string list) list;
      (** relation name, attribute layout (source-local names) *)
  classes : string list;
  relation_counts : (string * int) list;
      (** tuples per relation at registration time — cardinality caps
          for the cost analysis ({!Card}) *)
  class_counts : (string * int) list;
      (** objects per class at registration time *)
}

val of_source : Wrapper.Source.t -> source_info

type stats = { source_subgoals : int; infeasible_subgoals : int }
(** How many subgoals of the query touch sources (class groups and
    qualified relation accesses) and how many of those are provably
    unanswerable (vacuous/unscannable groups, unknown or infeasible
    accesses). *)

val feasibility :
  sources:source_info list ->
  class_targets:(string -> (string * string) list) ->
  ?label:string ->
  Flogic.Molecule.lit list ->
  Diagnostic.t list
(** [class_targets c] resolves a class name occurring in [X : c] to
    [(source, source-local class)] pairs — qualified names resolve to
    their source, concept names through the semantic index (the
    caller provides the mediator-shaped closure). [label] overrides
    the rendered query in diagnostic locations. *)

val feasibility_stats :
  sources:source_info list ->
  class_targets:(string -> (string * string) list) ->
  ?label:string ->
  Flogic.Molecule.lit list ->
  Diagnostic.t list * stats
(** {!feasibility} plus the subgoal counts — [Mediation.Lint] combines
    them with {!Prov_lint} to flag IVDs whose every source subgoal is
    infeasible ({b infeasible-provenance}). *)

val lint_templates : source_info -> Diagnostic.t list
(** Parameter hygiene of declared query templates. *)
