module Rule = Logic.Rule
module Atom = Logic.Atom
module Literal = Logic.Literal
module Term = Logic.Term

exception Diverged

(* ------------------------------------------------------------------ *)
(* The generic worklist fixpoint *)

module type DOMAIN = sig
  type t

  val bot : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (D : DOMAIN) = struct
  type 'r spec = {
    heads : 'r -> string list;
    deps : 'r -> string list;
    transfer : (string -> D.t) -> 'r -> D.t;
  }

  let fixpoint ?(max_steps = 1_000_000) ?(init = fun _ -> D.bot) spec rules =
    let arr = Array.of_list rules in
    let n = Array.length arr in
    let env : (string, D.t) Hashtbl.t = Hashtbl.create 64 in
    let lookup p =
      match Hashtbl.find_opt env p with Some v -> v | None -> init p
    in
    (* readers: predicate -> indexes of rules whose transfer reads it *)
    let readers : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
    Array.iteri
      (fun i r ->
        List.iter
          (fun p ->
            match Hashtbl.find_opt readers p with
            | Some l -> if not (List.mem i !l) then l := i :: !l
            | None -> Hashtbl.add readers p (ref [ i ]))
          (spec.deps arr.(i));
        ignore r)
      arr;
    let queue = Queue.create () in
    let queued = Array.make (max n 1) false in
    let enqueue i =
      if n > 0 && not (queued.(i)) then begin
        queued.(i) <- true;
        Queue.add i queue
      end
    in
    Array.iteri (fun i _ -> enqueue i) arr;
    let steps = ref 0 in
    while not (Queue.is_empty queue) do
      incr steps;
      if !steps > max_steps then raise Diverged;
      let i = Queue.pop queue in
      queued.(i) <- false;
      let v = spec.transfer lookup arr.(i) in
      List.iter
        (fun h ->
          let old = lookup h in
          let v' = D.join old v in
          if not (D.equal v' old) then begin
            Hashtbl.replace env h v';
            match Hashtbl.find_opt readers h with
            | Some l -> List.iter enqueue !l
            | None -> ()
          end)
        (spec.heads arr.(i))
    done;
    lookup
end

(* ------------------------------------------------------------------ *)
(* The value lattice: constant sets and DM-concept cones *)

module TS = Set.Make (Term)

type cones = {
  members : string -> string list;
  lub : string list -> string option;
}

type value = Vbot | Consts of TS.t | Cone of string | Vtop

type ctx = { cap : int; cones : cones option }

let default_cap = 32

let make_ctx ?cones ?(cap = default_cap) () = { cap; cones }

let value_equal a b =
  match a, b with
  | Vbot, Vbot | Vtop, Vtop -> true
  | Consts s1, Consts s2 -> TS.equal s1 s2
  | Cone c1, Cone c2 -> String.equal c1 c2
  | _ -> false

let cone_set cones c =
  TS.of_list (List.map Term.sym (cones.members c))

let syms_of_set s =
  TS.fold
    (fun t acc ->
      match acc, t with
      | Some syms, Term.Const (Term.Sym x) -> Some (x :: syms)
      | _ -> None)
    s (Some [])

let norm_consts s = if TS.is_empty s then Vbot else Consts s

(* Widen an over-cap constant set: try to cover it with a concept cone,
   else give up to ⊤. *)
let widen_consts ctx s =
  if TS.cardinal s <= ctx.cap then norm_consts s
  else
    match ctx.cones, syms_of_set s with
    | Some cones, Some syms -> (
      match cones.lub syms with Some c -> Cone c | None -> Vtop)
    | _ -> Vtop

let value_join ctx a b =
  match a, b with
  | Vtop, _ | _, Vtop -> Vtop
  | Vbot, x | x, Vbot -> x
  | Consts s1, Consts s2 -> widen_consts ctx (TS.union s1 s2)
  | (Cone c, Consts s | Consts s, Cone c) -> (
    match ctx.cones with
    | None -> Vtop
    | Some cones -> (
      let members = cone_set cones c in
      if TS.subset s members then Cone c
      else
        match syms_of_set s with
        | None -> Vtop
        | Some syms -> (
          match cones.lub (c :: syms) with Some l -> Cone l | None -> Vtop)))
  | Cone c1, Cone c2 -> (
    if String.equal c1 c2 then Cone c1
    else
      match ctx.cones with
      | None -> Vtop
      | Some cones -> (
        match cones.lub [ c1; c2 ] with Some l -> Cone l | None -> Vtop))

let value_meet ctx a b =
  match a, b with
  | Vbot, _ | _, Vbot -> Vbot
  | Vtop, x | x, Vtop -> x
  | Consts s1, Consts s2 -> norm_consts (TS.inter s1 s2)
  | (Cone c, Consts s | Consts s, Cone c) -> (
    match ctx.cones with
    | None -> Consts s (* unknown cone: keep the tighter side *)
    | Some cones -> norm_consts (TS.inter s (cone_set cones c)))
  | Cone c1, Cone c2 -> (
    if String.equal c1 c2 then Cone c1
    else
      match ctx.cones with
      | None -> Cone c1
      | Some cones -> norm_consts (TS.inter (cone_set cones c1) (cone_set cones c2)))

let value_mem ctx t = function
  | Vbot -> false
  | Vtop -> true
  | Consts s -> TS.mem t s
  | Cone c -> (
    match ctx.cones, t with
    | Some cones, Term.Const (Term.Sym x) -> List.mem x (cones.members c)
    | Some _, _ -> false
    | None, _ -> true (* no cone oracle: assume possible *))

let pp_value ppf = function
  | Vbot -> Format.pp_print_string ppf "⊥"
  | Vtop -> Format.pp_print_string ppf "⊤"
  | Cone c -> Format.fprintf ppf "cone(%s)" c
  | Consts s ->
    Format.fprintf ppf "{%s}"
      (String.concat ", " (List.map Term.to_string (TS.elements s)))

(* ------------------------------------------------------------------ *)
(* Per-predicate argument domains *)

type pred_dom = Empty | Any | Row of value array

let pred_dom_equal a b =
  match a, b with
  | Empty, Empty | Any, Any -> true
  | Row r1, Row r2 ->
    Array.length r1 = Array.length r2
    && Array.for_all2 (fun x y -> value_equal x y) r1 r2
  | _ -> false

let row_join ctx r1 r2 =
  if Array.length r1 <> Array.length r2 then
    (* arity conflict (flagged separately by Rule_lint): degrade to Any *)
    Any
  else Row (Array.map2 (fun a b -> value_join ctx a b) r1 r2)

let pred_dom_join ctx a b =
  match a, b with
  | Any, _ | _, Any -> Any
  | Empty, x | x, Empty -> x
  | Row r1, Row r2 -> row_join ctx r1 r2

let column d i =
  match d with
  | Empty -> Vbot
  | Any -> Vtop
  | Row r -> if i < Array.length r then r.(i) else Vtop

let pp_pred_dom ppf = function
  | Empty -> Format.pp_print_string ppf "empty"
  | Any -> Format.pp_print_string ppf "any"
  | Row r ->
    Format.fprintf ppf "(%s)"
      (String.concat ", "
         (Array.to_list (Array.map (Format.asprintf "%a" pp_value) r)))

(* ------------------------------------------------------------------ *)
(* Emptiness / deadness: abstract evaluation of one rule body *)

type reason =
  | Empty_pred of string
      (** a positive body literal reads a predicate proved unpopulatable *)
  | Disjoint_var of { var : string; left : string; right : string }
      (** the meet of a shared variable's argument domains is empty *)
  | False_cmp of Literal.t  (** a comparison that can never hold *)
  | Foreign_const of { pred : string; arg : Term.t }
      (** a constant argument outside the predicate's column domain *)

type verdict = Live | Dead of reason

let describe_reason = function
  | Empty_pred p ->
    Printf.sprintf "body predicate %s is provably empty" p
  | Disjoint_var { var; left; right } ->
    Printf.sprintf
      "the occurrences of variable %s have disjoint domains (%s vs %s)" var
      left right
  | False_cmp l ->
    Printf.sprintf "comparison %s can never hold" (Literal.to_string l)
  | Foreign_const { pred; arg } ->
    Printf.sprintf "constant %s never appears in that column of %s"
      (Term.to_string arg) pred

(* Abstract evaluation of a rule against a predicate environment:
   returns the abstract head row and a verdict. Negated literals and
   aggregates are ignored (sound: ignoring a constraint can only make
   the abstraction larger), and comparisons are only refuted when both
   sides are ground. *)
let eval_rule ctx lookup (r : Rule.t) =
  let venv : (string, value * string) Hashtbl.t = Hashtbl.create 8 in
  let dead = ref None in
  let kill reason = if !dead = None then dead := Some reason in
  let constrain x v desc =
    if !dead = None then begin
      let old, old_desc =
        match Hashtbl.find_opt venv x with
        | Some (v, d) -> (v, d)
        | None -> (Vtop, "")
      in
      let m = value_meet ctx old v in
      Hashtbl.replace venv x (m, if old_desc = "" then desc else old_desc);
      match m with
      | Vbot ->
        kill
          (Disjoint_var
             {
               var = x;
               left = (if old_desc = "" then desc else old_desc);
               right = desc;
             })
      | _ -> ()
    end
  in
  let pos_atom (a : Atom.t) =
    if not (Literal.is_builtin a.Atom.pred) then begin
      let d = lookup a.Atom.pred in
      match d with
      | Empty -> kill (Empty_pred a.Atom.pred)
      | Any | Row _ ->
        List.iteri
          (fun i arg ->
            let cv = column d i in
            match arg with
            | Term.Var x ->
              constrain x cv
                (Printf.sprintf "%s/arg %d" a.Atom.pred (i + 1))
            | Term.Const _ ->
              if not (value_mem ctx arg cv) then
                kill (Foreign_const { pred = a.Atom.pred; arg })
            | Term.App _ -> ())
          a.Atom.args
    end
  in
  List.iter
    (fun lit ->
      if !dead = None then
        match lit with
        | Literal.Pos a -> pos_atom a
        | Literal.Neg _ -> ()
        | Literal.Cmp (Literal.Eq, t1, t2) -> (
          match t1, t2 with
          | Term.Var x, Term.Var y ->
            let vx =
              match Hashtbl.find_opt venv x with Some (v, _) -> v | None -> Vtop
            in
            let vy =
              match Hashtbl.find_opt venv y with Some (v, _) -> v | None -> Vtop
            in
            constrain x vy (Printf.sprintf "%s = %s" x y);
            constrain y vx (Printf.sprintf "%s = %s" x y)
          | Term.Var x, t when Term.vars t = [] ->
            constrain x (Consts (TS.singleton t))
              (Printf.sprintf "%s = %s" x (Term.to_string t))
          | t, Term.Var x when Term.vars t = [] ->
            constrain x (Consts (TS.singleton t))
              (Printf.sprintf "%s = %s" (Term.to_string t) x)
          | t1, t2 when Term.vars t1 = [] && Term.vars t2 = [] -> (
            match Literal.eval_cmp Literal.Eq t1 t2 with
            | Some false -> kill (False_cmp lit)
            | _ -> ())
          | _ -> ())
        | Literal.Cmp (op, t1, t2)
          when Term.vars t1 = [] && Term.vars t2 = [] -> (
          match Literal.eval_cmp op t1 t2 with
          | Some false -> kill (False_cmp lit)
          | _ -> ())
        | Literal.Cmp _ -> ()
        | Literal.Assign (Term.Var x, e) -> (
          match Literal.eval_expr e with
          | Some t ->
            constrain x (Consts (TS.singleton t))
              (Printf.sprintf "%s is %s" x (Term.to_string t))
          | None -> ())
        | Literal.Assign _ -> ()
        | Literal.Agg _ -> ())
    r.Rule.body;
  match !dead with
  | Some reason -> (Empty, Dead reason)
  | None ->
    let row =
      Array.of_list
        (List.map
           (fun arg ->
             match arg with
             | Term.Var x -> (
               match Hashtbl.find_opt venv x with
               | Some (v, _) -> v
               | None -> Vtop)
             | Term.Const _ -> Consts (TS.singleton arg)
             | Term.App _ -> Vtop)
           r.Rule.head.Atom.args)
    in
    (Row row, Live)

(* ------------------------------------------------------------------ *)
(* The emptiness analysis: fixpoint + per-rule verdicts *)

type emptiness = {
  value_of : string -> pred_dom;
  verdicts : verdict list;  (** aligned with the input rule list *)
}

let emptiness ?cones ?cap ?(assume_nonempty = fun _ -> false) ?edb rules =
  let ctx = make_ctx ?cones ?cap () in
  let module D = struct
    type t = pred_dom

    let bot = Empty
    let equal = pred_dom_equal
    let join = pred_dom_join ctx
  end in
  let module F = Make (D) in
  (* base environment: EDB columns plus assumed-nonempty predicates *)
  let base : (string, pred_dom) Hashtbl.t = Hashtbl.create 32 in
  (match edb with
  | None -> ()
  | Some db ->
    List.iter
      (fun p ->
        let d =
          List.fold_left
            (fun acc (a : Atom.t) ->
              let row =
                Row
                  (Array.of_list
                     (List.map (fun t -> Consts (TS.singleton t)) a.Atom.args))
              in
              pred_dom_join ctx acc row)
            Empty
            (Datalog.Database.facts db p)
        in
        Hashtbl.replace base p d)
      (Datalog.Database.predicates db));
  let init p =
    if assume_nonempty p || Literal.is_builtin p then Any
    else match Hashtbl.find_opt base p with Some d -> d | None -> Empty
  in
  let spec =
    {
      F.heads = (fun (r : Rule.t) -> [ Rule.head_pred r ]);
      F.deps =
        (fun r ->
          List.filter_map
            (fun (p, nonmono) -> if nonmono then None else Some p)
            (Rule.body_predicates r));
      F.transfer = (fun lookup r -> fst (eval_rule ctx lookup r));
    }
  in
  let lookup = F.fixpoint ~init spec rules in
  let verdicts = List.map (fun r -> snd (eval_rule ctx lookup r)) rules in
  { value_of = lookup; verdicts }

(* ------------------------------------------------------------------ *)
(* Dead-rule pruning (the Engine/Maintain hook) *)

let prune ?cones ?cap ?assume_nonempty rules db =
  match emptiness ?cones ?cap ?assume_nonempty ~edb:db rules with
  | { verdicts; _ } ->
    List.filter_map
      (fun (r, v) -> match v with Live -> Some r | Dead _ -> None)
      (List.combine rules verdicts)
  | exception Diverged -> rules
