(** Pass 2 — stratification analysis.

    Where {!Datalog.Engine.Unstratified} carries a bare predicate list,
    this pass extracts an {e actual} offending cycle through the
    dependency graph — the path a reader can follow to see why the
    program destratifies — and flags the rules that sit on it.

    Codes:
    - {b negative-cycle}: a dependency cycle through at least one
      negated or aggregated edge, rendered as
      [p -¬-> q -> r -> p]. Severity is [Warning] when
      [fallback_ok] (the engine will fall back to the well-founded
      semantics, as the paper's Sec. 3 (SEM) permits), [Error]
      otherwise.
    - {b unmaintainable-rule} (warning): a rule on such a cycle —
      programs containing it cannot be incrementally maintained
      ({!Datalog.Maintain.init} refuses unstratified programs), so
      every source update triggers a full rebuild. *)

val negative_cycle : Datalog.Program.t -> Datalog.Stratify.edge list option
(** A shortest-by-construction dependency cycle with at least one
    nonmonotonic edge, as consecutive edges (the last edge returns to
    the first edge's source); [None] iff the program is stratified. *)

val pp_cycle : Format.formatter -> Datalog.Stratify.edge list -> unit
(** [p -¬-> q -> p]. *)

val lint :
  ?fallback_ok:bool ->
  ?loc:(int -> Logic.Rule.t -> Diagnostic.location) ->
  Datalog.Program.t ->
  Diagnostic.t list
(** [fallback_ok] defaults to [true], matching
    {!Datalog.Engine.default_config.allow_wellfounded_fallback}.
    [loc] maps a rule index and rule to its diagnostic location
    (default: no source position). *)
