(* Lint pass 10, "termination": skolem-safety of the rule set.

   One [possible-nontermination] warning when {!Terminate} cannot
   prove the bottom-up fixpoint finite — the diagnostic carries the
   offending position cycle and the functors on it. A warning, not an
   error: the engine's [max_term_depth] guard still terminates the
   materialization (counting suppressions in the report), but the
   result is then depth-truncated rather than the actual least model. *)

module Rule = Logic.Rule
module D = Diagnostic

let pass = "termination"

let default_loc i r = D.Rule { index = i; text = Rule.to_string r; pos = None }

let lint ?dm ?(gcm = true) ?(loc = default_loc) rules =
  let extra_sub =
    match dm with
    | None -> []
    | Some d -> Domain_map.Closure.isa_tc d
  in
  match Terminate.analyze ~gcm ~extra_sub rules with
  | Terminate.Safe _ -> []
  | Terminate.Unsafe cycle ->
    let location =
      match cycle.Terminate.rules with
      | i :: _ when i < List.length rules -> loc i (List.nth rules i)
      | _ -> D.Federation
    in
    [
      D.make ~severity:D.Warning ~pass ~code:"possible-nontermination"
        ~location
        (Printf.sprintf
           "value-inventing recursion: position dependency cycle %s passes \
            through a function symbol, so the fixpoint may grow terms \
            forever%s"
           (Terminate.cycle_to_string cycle)
           (match cycle.Terminate.rules with
           | [] | [ _ ] -> ""
           | rs ->
             Printf.sprintf " (rules %s)"
               (String.concat ", " (List.map string_of_int rs))))
        ~hint:
          "only max_term_depth truncation terminates this; break the cycle \
           with a guard (builtin:not_functor_prefix / builtin:is_const) or \
           remove the constructor from the recursive case";
    ]
