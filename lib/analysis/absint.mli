(** A small abstract-interpretation framework over the predicate
    dependency graph, and the emptiness analysis built on it.

    The framework ({!Make}) computes the least fixpoint of a monotone
    transfer function assigning each predicate a value in a join
    semilattice: rules are processed from a worklist, the transferred
    value is joined into every head predicate, and the rules reading a
    changed predicate are requeued. It is generic in the rule type, so
    the same engine drives the Datalog-level type/emptiness pass here
    and the molecule-level provenance pass ({!Prov_lint}).

    The concrete {!value} lattice abstracts one argument column:
    bottom, a finite constant set, a domain-map {e concept cone} (every
    isa-descendant of a concept — the paper's "semantic coordinate
    system" turned into an abstract value), or ⊤. Constant sets that
    outgrow [cap] are widened to the lub cone when a {!cones} oracle is
    available, else to ⊤ — so every chain stabilises and the fixpoint
    terminates.

    Soundness contract of {!emptiness} (what makes {!prune} safe):
    abstract extents over-approximate every concrete extent reachable
    from the given EDB and rules, negated literals and aggregates never
    contribute to a [Dead] verdict, and comparisons are refuted only on
    ground terms. A [Dead] rule therefore derives nothing in the least
    (or well-founded) model. *)

exception Diverged
(** Raised by {!Make.fixpoint} when [max_steps] is exceeded — only
    possible with a caller-supplied domain whose join does not
    stabilise; {!emptiness} domains always terminate. *)

(** {1 The generic fixpoint} *)

module type DOMAIN = sig
  type t

  val bot : t
  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Must be monotone and include any widening needed for chains to
      stabilise. *)
end

module Make (D : DOMAIN) : sig
  type 'r spec = {
    heads : 'r -> string list;
        (** predicates a rule defines (several for multi-head molecule
            rules) *)
    deps : 'r -> string list;
        (** predicates whose change requeues the rule *)
    transfer : (string -> D.t) -> 'r -> D.t;
        (** abstract value the rule contributes to each head, given the
            current environment *)
  }

  val fixpoint :
    ?max_steps:int -> ?init:(string -> D.t) -> 'r spec -> 'r list ->
    string -> D.t
  (** Least fixpoint above [init] (default: everything starts at
      [D.bot]). Returns the stable environment as a lookup function. *)
end

(** {1 Column values} *)

type cones = {
  members : string -> string list;
      (** isa-descendant cone of a concept, including the concept *)
  lub : string list -> string option;
      (** tightest common ancestor, e.g. {!Domain_map.Lub.lub_unique} *)
}

module TS : Set.S with type elt = Logic.Term.t
(** Sets of ground terms (constant-set values). *)

type value = Vbot | Consts of TS.t | Cone of string | Vtop

type ctx

val default_cap : int
(** Constant-set size limit before widening (32). *)

val make_ctx : ?cones:cones -> ?cap:int -> unit -> ctx

val value_equal : value -> value -> bool
val value_join : ctx -> value -> value -> value
val value_meet : ctx -> value -> value -> value

val value_mem : ctx -> Logic.Term.t -> value -> bool
(** Membership test; conservatively [true] for cones without an
    oracle. *)

val pp_value : Format.formatter -> value -> unit

(** {1 Predicate domains} *)

type pred_dom =
  | Empty
  | Any  (** assumed populated with unknown columns (open predicates) *)
  | Row of value array

val pred_dom_equal : pred_dom -> pred_dom -> bool
val pred_dom_join : ctx -> pred_dom -> pred_dom -> pred_dom

val column : pred_dom -> int -> value

val pp_pred_dom : Format.formatter -> pred_dom -> unit

(** {1 Emptiness analysis} *)

type reason =
  | Empty_pred of string
  | Disjoint_var of { var : string; left : string; right : string }
  | False_cmp of Logic.Literal.t
  | Foreign_const of { pred : string; arg : Logic.Term.t }

type verdict = Live | Dead of reason

val describe_reason : reason -> string

val eval_rule :
  ctx -> (string -> pred_dom) -> Logic.Rule.t -> pred_dom * verdict
(** Abstract evaluation of one rule against an environment: the head
    row it contributes and whether the body is provably
    unsatisfiable. *)

type emptiness = {
  value_of : string -> pred_dom;
  verdicts : verdict list;  (** aligned with the input rule list *)
}

val emptiness :
  ?cones:cones ->
  ?cap:int ->
  ?assume_nonempty:(string -> bool) ->
  ?edb:Datalog.Database.t ->
  Logic.Rule.t list ->
  emptiness
(** Fixpoint over the rules (fact rules contribute their constant
    rows). [assume_nonempty] marks open predicates — externally
    populated relations whose extent the analysis must not reason
    about; [edb] seeds base columns from a database. *)

val prune :
  ?cones:cones ->
  ?cap:int ->
  ?assume_nonempty:(string -> bool) ->
  Logic.Rule.t list ->
  Datalog.Database.t ->
  Logic.Rule.t list
(** The {!Datalog.Engine} pruning hook: the sublist of rules not proved
    dead w.r.t. the EDB. Returns the input unchanged on {!Diverged}. *)
