(* Conjunctive-query containment modulo the domain map.

   The classical Chandra–Merlin test decides [q1 ⊆ q2] by freezing
   [q1]'s body into a canonical database and searching for a
   homomorphism from [q2]'s body into it that maps head to head. Here
   the canonical database is first *chased* with the consequences the
   GCM axioms and the domain map guarantee in every model of a
   compiled program:

   - declared facts imply their closed versions ([isa_d ⟹ isa], ...);
   - [isa] propagates up the subsumption preorder ([isa(x,C)] and
     [C ⊑* D] give [isa(x,D)]), where [⊑*] combines the program's own
     ground [sub]/[sub_d] facts with the domain map's definite isa
     links (eqv edges contribute both directions) and is transitively
     closed;
   - [sub] is reflexive over the mentioned concepts and transitively
     closed; every mentioned concept is a [class];
   - declared signatures are inherited downward ([meth_sig]).

   The chase only ever adds facts that are derivable from the frozen
   body in any model containing the GCM axioms and the context's
   subsumption pairs, so a homomorphism into the chased database still
   witnesses genuine containment — and a body atom present in the
   chase of the *other* atoms is genuinely implied, which is what the
   minimization hook removes.

   Non-CQ literals (negation, comparisons, assignments, aggregates)
   are handled conservatively: a candidate homomorphism survives only
   if every such literal of [q2] is ground-true under it, entailed by
   [q1]'s numeric constraints (interval reasoning per variable), or
   syntactically present in [q1]'s frozen body. Every shortcut errs
   toward "not contained", never the reverse. *)

module Term = Logic.Term
module Atom = Logic.Atom
module Literal = Logic.Literal
module Rule = Logic.Rule
module Subst = Logic.Subst
module Database = Datalog.Database
module SS = Set.Make (String)
module SM = Map.Make (String)

type ctx = {
  up : SS.t SM.t;
      (* concept -> proper ancestors under the combined subsumption *)
  disjoint : (string * string) list;
  gcm : bool;
}

let empty_ctx = { up = SM.empty; disjoint = []; gcm = true }

let isa_p = Flogic.Compile.isa_p
let sub_p = Flogic.Compile.sub_p
let meth_sig_p = Flogic.Compile.meth_sig_p
let class_p = Flogic.Compile.class_p

(* declared-predicate -> closed-predicate renaming (the closure copy
   axioms of {!Flogic.Gcm_axioms.core}) *)
let closed_of_declared =
  List.map
    (fun p -> (Flogic.Compile.declared p, p))
    [
      isa_p; sub_p; meth_sig_p; Flogic.Compile.meth_val_p; class_p;
    ]

let add_pair up (c, d) =
  if String.equal c d then up
  else
    SM.update c
      (function None -> Some (SS.singleton d) | Some s -> Some (SS.add d s))
      up

let transitive_close pairs =
  Domain_map.Closure.tc pairs

(* ground sub/sub_d facts of the rule set: the subsumptions every model
   of the program contains *)
let harvest_sub_facts rules =
  let subs = [ sub_p; Flogic.Compile.declared sub_p ] in
  List.filter_map
    (fun (r : Rule.t) ->
      if not (Rule.is_fact r) then None
      else
        match r.Rule.head with
        | { Atom.pred; args = [ c; d ] } when List.mem pred subs -> (
          match (Term.as_sym c, Term.as_sym d) with
          | Some c, Some d when not (String.equal c d) -> Some (c, d)
          | _ -> None)
        | _ -> None)
    rules

let make_ctx ?dm ?(rules = []) ?(disjoint = []) ?(gcm = true) () =
  let dm_pairs =
    match dm with None -> [] | Some d -> Domain_map.Closure.isa_tc d
  in
  let pairs = transitive_close (dm_pairs @ harvest_sub_facts rules) in
  let up = List.fold_left add_pair SM.empty pairs in
  { up; disjoint; gcm }

let up_of ctx c =
  match SM.find_opt c ctx.up with Some s -> s | None -> SS.empty

let sub_pairs ctx =
  SM.fold
    (fun c ds acc -> SS.fold (fun d acc -> (c, d) :: acc) ds acc)
    ctx.up []

(* ------------------------------------------------------------------ *)
(* Equality resolution: substitute [v = t] body equations through the
   rule so the canonical instance identifies the merged terms. Trivial
   equations are dropped afterwards. Analysis-internal only — callers
   never see the resolved rule. *)

let resolve_eqs (r : Rule.t) =
  let rec loop fuel (r : Rule.t) =
    if fuel <= 0 then r
    else
      let binding =
        List.find_map
          (function
            | Literal.Cmp (Literal.Eq, Term.Var v, t)
              when not (Term.occurs v t) ->
              Some (v, t)
            | Literal.Cmp (Literal.Eq, t, Term.Var v)
              when (match t with Term.Var _ -> false | _ -> true)
                   && not (Term.occurs v t) ->
              Some (v, t)
            | _ -> None)
          r.Rule.body
      in
      match binding with
      | None -> r
      | Some (v, t) ->
        let s = Subst.bind v t Subst.empty in
        let r = Rule.apply s r in
        let body =
          List.filter
            (function
              | Literal.Cmp (Literal.Eq, a, b) -> not (Term.equal a b)
              | _ -> true)
            r.Rule.body
        in
        loop (fuel - 1) { r with Rule.body }
  in
  loop (List.length r.Rule.body) r

let split_body (r : Rule.t) =
  List.partition_map
    (function
      | Literal.Pos a when not (Literal.is_builtin a.Atom.pred) -> Left a
      | l -> Right l)
    r.Rule.body

(* ------------------------------------------------------------------ *)
(* Freezing *)

let frozen_prefix = "\xCF\x87_" (* χ_ — same reserved namespace as Cq *)

let frozen v = Term.sym (frozen_prefix ^ v)

let is_frozen s =
  String.length s > String.length frozen_prefix
  && String.sub s 0 (String.length frozen_prefix) = frozen_prefix

let var_of_frozen s =
  String.sub s
    (String.length frozen_prefix)
    (String.length s - String.length frozen_prefix)

let freeze_subst (r : Rule.t) =
  List.fold_left
    (fun s v -> Subst.bind v (frozen v) s)
    Subst.empty (Rule.vars r)

(* ------------------------------------------------------------------ *)
(* The chase *)

let chase ctx (atoms : Atom.t list) =
  let db = Database.create () in
  let add a = ignore (Database.add_fact db a) in
  List.iter add atoms;
  if not ctx.gcm then db
  else begin
    (* declared facts imply their closed versions *)
    let copies =
      List.filter_map
        (fun (a : Atom.t) ->
          Option.map
            (fun p -> { a with Atom.pred = p })
            (List.assoc_opt a.Atom.pred closed_of_declared))
        atoms
    in
    List.iter add copies;
    let atoms = atoms @ copies in
    (* collect the concepts, isa memberships, ground sub pairs and
       declared signatures mentioned by the (closed) atoms *)
    let concepts = ref SS.empty in
    let isas = ref [] and subs = ref [] and meths = ref [] in
    let concept c = concepts := SS.add c !concepts in
    List.iter
      (fun (a : Atom.t) ->
        match (a.Atom.pred, a.Atom.args) with
        | p, [ x; c ] when String.equal p isa_p -> (
          match Term.as_sym c with
          | Some c ->
            concept c;
            isas := (x, c) :: !isas
          | None -> ())
        | p, [ c; d ] when String.equal p sub_p -> (
          match (Term.as_sym c, Term.as_sym d) with
          | Some c, Some d ->
            concept c;
            concept d;
            subs := (c, d) :: !subs
          | _ -> ())
        | p, [ c ] when String.equal p class_p -> (
          match Term.as_sym c with Some c -> concept c | None -> ())
        | p, [ c; m; d ] when String.equal p meth_sig_p -> (
          match Term.as_sym c with
          | Some c ->
            concept c;
            (match Term.as_sym d with Some d -> concept d | None -> ());
            meths := (c, m, d) :: !meths
          | None -> ())
        | _ -> ())
      atoms;
    (* local subsumption: the atoms' own ground pairs plus the context
       pairs rooted at mentioned concepts, transitively closed *)
    let ctx_pairs =
      SS.fold
        (fun c acc -> SS.fold (fun d acc -> (c, d) :: acc) (up_of ctx c) acc)
        !concepts []
    in
    let pairs = transitive_close (!subs @ ctx_pairs) in
    let universe =
      List.fold_left
        (fun u (c, d) -> SS.add c (SS.add d u))
        !concepts pairs
    in
    List.iter
      (fun (c, d) -> add (Atom.make sub_p [ Term.sym c; Term.sym d ]))
      pairs;
    SS.iter
      (fun c ->
        add (Atom.make sub_p [ Term.sym c; Term.sym c ]);
        add (Atom.make class_p [ Term.sym c ]))
      universe;
    (* isa propagates up, declared signatures inherit down *)
    let ups = Hashtbl.create 16 and downs = Hashtbl.create 16 in
    List.iter
      (fun (c, d) ->
        Hashtbl.replace ups c (d :: Option.value (Hashtbl.find_opt ups c) ~default:[]);
        Hashtbl.replace downs d
          (c :: Option.value (Hashtbl.find_opt downs d) ~default:[]))
      pairs;
    List.iter
      (fun (x, c) ->
        List.iter
          (fun d -> add (Atom.make isa_p [ x; Term.sym d ]))
          (Option.value (Hashtbl.find_opt ups c) ~default:[]))
      !isas;
    List.iter
      (fun (c2, m, d) ->
        List.iter
          (fun c1 -> add (Atom.make meth_sig_p [ Term.sym c1; m; d ]))
          (Option.value (Hashtbl.find_opt downs c2) ~default:[]))
      !meths;
    db
  end

(* ------------------------------------------------------------------ *)
(* Numeric interval constraints per variable *)

type interval = {
  lo : float option;
  lo_strict : bool;
  hi : float option;
  hi_strict : bool;
  ne : float list;
}

let top = { lo = None; lo_strict = false; hi = None; hi_strict = false; ne = [] }

let num = function
  | Term.Const (Term.Int i) -> Some (float_of_int i)
  | Term.Const (Term.Float f) -> Some f
  | _ -> None

let rec tighten iv op n =
  match (op : Literal.cmp) with
  | Literal.Lt ->
    if iv.hi = None || n < Option.get iv.hi then
      { iv with hi = Some n; hi_strict = true }
    else if iv.hi = Some n then { iv with hi_strict = true }
    else iv
  | Literal.Le ->
    if iv.hi = None || n < Option.get iv.hi then
      { iv with hi = Some n; hi_strict = false }
    else iv
  | Literal.Gt ->
    if iv.lo = None || n > Option.get iv.lo then
      { iv with lo = Some n; lo_strict = true }
    else if iv.lo = Some n then { iv with lo_strict = true }
    else iv
  | Literal.Ge ->
    if iv.lo = None || n > Option.get iv.lo then
      { iv with lo = Some n; lo_strict = false }
    else iv
  | Literal.Eq -> tighten (tighten iv Literal.Le n) Literal.Ge n
  | Literal.Ne -> { iv with ne = n :: iv.ne }

let interval_empty iv =
  match (iv.lo, iv.hi) with
  | Some lo, Some hi ->
    lo > hi
    || (lo = hi && (iv.lo_strict || iv.hi_strict))
    || (lo = hi && List.mem lo iv.ne)
  | _ -> false

(* does [iv] entail [v op n]? *)
let rec entails iv op n =
  match (op : Literal.cmp) with
  | Literal.Lt -> (
    match iv.hi with
    | Some hi -> hi < n || (hi = n && iv.hi_strict)
    | None -> false)
  | Literal.Le -> ( match iv.hi with Some hi -> hi <= n | None -> false)
  | Literal.Gt -> (
    match iv.lo with
    | Some lo -> lo > n || (lo = n && iv.lo_strict)
    | None -> false)
  | Literal.Ge -> ( match iv.lo with Some lo -> lo >= n | None -> false)
  | Literal.Eq ->
    iv.lo = Some n && iv.hi = Some n && (not iv.lo_strict)
    && not iv.hi_strict
  | Literal.Ne ->
    List.mem n iv.ne
    || entails iv Literal.Lt n
    || entails iv Literal.Gt n

let flip = function
  | Literal.Lt -> Literal.Gt
  | Literal.Le -> Literal.Ge
  | Literal.Gt -> Literal.Lt
  | Literal.Ge -> Literal.Le
  | (Literal.Eq | Literal.Ne) as op -> op

(* variable -> interval map from a rule body (after eq resolution) *)
let constraints_of body =
  List.fold_left
    (fun m l ->
      match l with
      | Literal.Cmp (op, Term.Var v, t) when num t <> None ->
        SM.update v
          (fun iv ->
            Some (tighten (Option.value iv ~default:top) op (Option.get (num t))))
          m
      | Literal.Cmp (op, t, Term.Var v) when num t <> None ->
        SM.update v
          (fun iv ->
            Some
              (tighten (Option.value iv ~default:top) (flip op)
                 (Option.get (num t))))
          m
      | _ -> m)
    SM.empty body

(* ------------------------------------------------------------------ *)
(* Satisfiability *)

let unsatisfiable ctx (r : Rule.t) =
  let r = resolve_eqs r in
  let ground_false =
    List.find_map
      (function
        | Literal.Cmp (op, t1, t2) as l
          when Literal.eval_cmp op t1 t2 = Some false ->
          Some
            (Printf.sprintf "comparison %s is always false"
               (Literal.to_string l))
        | _ -> None)
      r.Rule.body
  in
  match ground_false with
  | Some _ as reason -> reason
  | None -> (
    let ivs = constraints_of r.Rule.body in
    match
      SM.fold
        (fun v iv acc ->
          match acc with
          | Some _ -> acc
          | None ->
            if interval_empty iv then
              Some
                (Printf.sprintf
                   "numeric constraints on %s are contradictory (empty \
                    interval)"
                   v)
            else None)
        ivs None
    with
    | Some _ as reason -> reason
    | None -> (
      let pos, rest = split_body r in
      let fs = freeze_subst r in
      let db = chase ctx (List.map (Atom.apply fs) pos) in
      let neg_conflict =
        List.find_map
          (function
            | Literal.Neg a when Database.mem db (Atom.apply fs a) ->
              Some
                (Printf.sprintf
                   "negated atom %s is implied by the positive body modulo \
                    the domain map"
                   (Atom.to_string a))
            | _ -> None)
          rest
      in
      match neg_conflict with
      | Some _ as reason -> reason
      | None ->
        if ctx.disjoint = [] then None
        else begin
          (* classes of each entity in the chased database *)
          let classes = Hashtbl.create 8 in
          List.iter
            (fun (a : Atom.t) ->
              match (a.Atom.pred, a.Atom.args) with
              | p, [ x; c ] when String.equal p isa_p -> (
                match Term.as_sym c with
                | Some c ->
                  let k = Term.to_string x in
                  Hashtbl.replace classes k
                    (SS.add c
                       (Option.value
                          (Hashtbl.find_opt classes k)
                          ~default:SS.empty))
                | None -> ())
              | _ -> ())
            (Database.all_facts db);
          Hashtbl.fold
            (fun x cs acc ->
              match acc with
              | Some _ -> acc
              | None ->
                List.find_map
                  (fun (c1, c2) ->
                    if SS.mem c1 cs && SS.mem c2 cs then
                      Some
                        (Printf.sprintf
                           "%s would belong to the disjoint concepts %s and \
                            %s"
                           x c1 c2)
                    else None)
                  ctx.disjoint)
            classes None
        end))

(* ------------------------------------------------------------------ *)
(* Containment *)

let literal_equal (l1 : Literal.t) (l2 : Literal.t) =
  l1 = l2
  ||
  match (l1, l2) with
  | Literal.Cmp (o1, a1, b1), Literal.Cmp (o2, a2, b2)
    when (o1 = Literal.Eq && o2 = Literal.Eq)
         || (o1 = Literal.Ne && o2 = Literal.Ne) ->
    Term.equal a1 b2 && Term.equal b1 a2
  | _ -> false

let default_pos_budget = 16

(* is the instantiated q2-literal [l] justified by q1's residual
   literals / numeric constraints? *)
let covered ~frozen_rest1 ~ivs1 l =
  let exact () = List.exists (literal_equal l) frozen_rest1 in
  match l with
  | Literal.Cmp (op, t1, t2) -> (
    match Literal.eval_cmp op t1 t2 with
    | Some b -> b
    | None -> (
      let by_interval sv op n =
        if is_frozen sv then
          match SM.find_opt (var_of_frozen sv) ivs1 with
          | Some iv -> entails iv op n
          | None -> false
        else false
      in
      exact ()
      ||
      match (t1, t2) with
      | Term.Const (Term.Sym sv), t when num t <> None ->
        by_interval sv op (Option.get (num t))
      | t, Term.Const (Term.Sym sv) when num t <> None ->
        by_interval sv (flip op) (Option.get (num t))
      | _ -> false))
  | _ -> exact ()

let contained ?(budget = default_pos_budget) ctx (r1 : Rule.t) (r2 : Rule.t)
    =
  String.equal (Rule.head_pred r1) (Rule.head_pred r2)
  && Atom.arity r1.Rule.head = Atom.arity r2.Rule.head
  &&
  let r1 = resolve_eqs r1 and r2 = resolve_eqs r2 in
  let pos1, _rest1 = split_body r1 in
  let pos2, rest2 = split_body r2 in
  List.length pos2 <= budget
  && List.length pos1 <= 2 * budget
  &&
  let fs = freeze_subst r1 in
  let frozen_head = Atom.apply fs r1.Rule.head in
  let frozen_rest1 = List.map (Literal.apply fs) _rest1 in
  let ivs1 = constraints_of r1.Rule.body in
  let db = chase ctx (List.map (Atom.apply fs) pos1) in
  let sols =
    Datalog.Eval.solve_body ~db ~neg:db
      (List.map (fun a -> Literal.Pos a) pos2)
  in
  List.exists
    (fun s ->
      Atom.equal (Atom.apply s r2.Rule.head) frozen_head
      && List.for_all
           (fun l -> covered ~frozen_rest1 ~ivs1 (Literal.apply s l))
           rest2)
    sols

let equivalent ?budget ctx r1 r2 =
  contained ?budget ctx r1 r2 && contained ?budget ctx r2 r1

(* ------------------------------------------------------------------ *)
(* Implied body atoms and semantic minimization *)

let drop_nth body n = List.filteri (fun i _ -> i <> n) body

let droppable ctx (r : Rule.t) n =
  match List.nth r.Rule.body n with
  | Literal.Pos a when not (Literal.is_builtin a.Atom.pred) -> (
    let candidate = { r with Rule.body = drop_nth r.Rule.body n } in
    match Rule.check_safety candidate with
    | Error _ -> None
    | Ok () -> if contained ctx candidate r then Some (a, candidate) else None)
  | _ -> None

let implied_atoms ctx (r : Rule.t) =
  if Rule.is_fact r || List.length r.Rule.body < 2 then []
  else
    List.filteri (fun n _ -> droppable ctx r n <> None) r.Rule.body
    |> List.filter_map (function
         | Literal.Pos a -> Some a
         | _ -> None)

let minimize_rule ctx (r : Rule.t) =
  if Rule.is_fact r || List.length r.Rule.body < 2 then r
  else
    let rec shrink fuel (r : Rule.t) =
      if fuel <= 0 then r
      else
        let n = List.length r.Rule.body in
        let rec first i =
          if i >= n then None
          else
            match droppable ctx r i with
            | Some (_, candidate) -> Some candidate
            | None -> first (i + 1)
        in
        match first 0 with
        | Some candidate -> shrink (fuel - 1) candidate
        | None -> r
    in
    shrink (List.length r.Rule.body) r

let minimize ctx rules = List.map (minimize_rule ctx) rules

(* ------------------------------------------------------------------ *)
(* View-level redundancy: a candidate IVD whose every rule is already
   contained in some registered rule contributes no answers. *)

let redundant_view ctx ~against candidates =
  candidates <> []
  && List.for_all
       (fun c ->
         List.exists
           (fun r ->
             String.equal (Rule.head_pred c) (Rule.head_pred r)
             && contained ctx c r)
           against)
       candidates
