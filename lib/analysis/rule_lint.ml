module Rule = Logic.Rule
module Atom = Logic.Atom
module Literal = Logic.Literal
module Term = Logic.Term
module D = Diagnostic

let pass = "rules"

let reserved_predicates =
  Flogic.Compile.reserved
  @ [
      Flogic.Compile.ic_p;
      Flogic.Gcm_axioms.default_p;
      Flogic.Gcm_axioms.strict_sub_p;
      "dm_isa"; "dm_poss"; "dm_role"; "dc_role"; "tc_isa"; "has_a_star";
    ]

let default_loc i r =
  D.Rule { index = i; text = Rule.to_string r; pos = None }

(* ------------------------------------------------------------------ *)
(* Safety *)

let safety_diags rule_loc i r =
  List.map
    (fun (e : Rule.safety_error) ->
      match e with
      | Rule.Unbound_var x ->
        D.make ~severity:D.Error ~pass ~code:"unsafe-rule"
          ~location:(rule_loc i r)
          (Printf.sprintf "variable %s is not range-restricted" x)
          ~hint:
            (Printf.sprintf
               "bind %s in a positive body literal, an equality or an \
                assignment before using it"
               x)
      | Rule.Agg_unbound x ->
        D.make ~severity:D.Error ~pass ~code:"aggregate-unbound"
          ~location:(rule_loc i r)
          (Printf.sprintf
             "aggregate target/group-by variable %s is not bound by the \
              inner conjunction"
             x)
      | Rule.Stuck_literal l ->
        D.make ~severity:D.Error ~pass ~code:"stuck-literal"
          ~location:(rule_loc i r)
          (Printf.sprintf "literal %s can never be evaluated"
             (Literal.to_string l)))
    (Rule.safety_errors r)

(* ------------------------------------------------------------------ *)
(* Unused (singleton) variables *)

let rec term_vars = function
  | Term.Var x -> [ x ]
  | Term.Const _ -> []
  | Term.App (_, ts) -> List.concat_map term_vars ts

let rec expr_vars = function
  | Literal.Leaf t -> term_vars t
  | Literal.Bin (_, e1, e2) -> expr_vars e1 @ expr_vars e2

let literal_var_occurrences = function
  | Literal.Pos a | Literal.Neg a ->
    List.concat_map term_vars a.Atom.args
  | Literal.Cmp (_, t1, t2) -> term_vars t1 @ term_vars t2
  | Literal.Assign (t, e) -> term_vars t @ expr_vars e
  | Literal.Agg { target; group_by; result; body; _ } ->
    term_vars target
    @ List.concat_map term_vars group_by
    @ term_vars result
    @ List.concat_map (fun a -> List.concat_map term_vars a.Atom.args) body

let unused_diags rule_loc i (r : Rule.t) =
  let occurrences =
    List.concat_map term_vars r.Rule.head.Atom.args
    @ List.concat_map literal_var_occurrences r.Rule.body
  in
  let count x = List.length (List.filter (String.equal x) occurrences) in
  List.sort_uniq String.compare occurrences
  |> List.filter_map (fun x ->
         if String.length x > 0 && x.[0] = '_' then None
         else if count x = 1 then
           Some
             (D.make ~severity:D.Warning ~pass ~code:"unused-variable"
                ~location:(rule_loc i r)
                (Printf.sprintf "variable %s occurs only once" x)
                ~hint:
                  (Printf.sprintf
                     "it joins nothing and is never projected; rename it to \
                      _%s if intentional"
                     x))
         else None)

(* ------------------------------------------------------------------ *)
(* Duplicate and subsumed rules *)

(* One-sided subsumption check: does a substitution map [general]'s head
   to [specific]'s head and every body literal of [general] to some body
   literal of [specific]? Only attempted over atomic (Pos/Neg) bodies. *)
let subsumes ~(general : Rule.t) ~(specific : Rule.t) =
  let atomic l =
    match l with Literal.Pos _ | Literal.Neg _ -> true | _ -> false
  in
  if
    (not (List.for_all atomic general.Rule.body))
    || not (List.for_all atomic specific.Rule.body)
  then false
  else
    let general = Rule.rename_apart ~suffix:"__g" general in
    match Atom.matches ~pattern:general.Rule.head specific.Rule.head with
    | None -> false
    | Some init ->
      let rec cover s = function
        | [] -> true
        | l :: rest ->
          List.exists
            (fun l' ->
              match l, l' with
              | Literal.Pos a, Literal.Pos b | Literal.Neg a, Literal.Neg b
                -> (
                match Atom.matches ~init:s ~pattern:a b with
                | Some s' -> cover s' rest
                | None -> false)
              | _ -> false)
            specific.Rule.body
      in
      cover init general.Rule.body

(* Canonical renaming for alpha-equivalence: variables are renamed to
   V0, V1, ... in first-occurrence order (head first, then body).  Two
   rules are equal up to variable renaming iff their canonical forms
   are structurally equal.  The rename happens in two steps — first to
   a namespace no user variable can collide with, then to V%d — so the
   target names never capture a still-unrenamed source variable. *)
let alpha_canonical (r : Rule.t) =
  let r = Rule.rename_apart ~suffix:"\001" r in
  let s =
    List.fold_left
      (fun (n, s) x ->
        (n + 1, Logic.Subst.bind x (Term.var (Printf.sprintf "V%d" n)) s))
      (0, Logic.Subst.empty) (Rule.vars r)
    |> snd
  in
  Rule.apply s r

(* Semantic subsumption between distinct rules now lives in
   {!Contain_lint} ([rule-implied-by-rule], containment modulo the
   domain map); this pass keeps only the syntactic duplicate check so
   the two never report the same pair. {!subsumes} stays exported as
   the differential oracle: whatever it catches, containment must
   catch too (test_contain). *)
let redundancy_diags rule_loc rules =
  let arr = Array.of_list rules in
  let canon = Array.map alpha_canonical arr in
  let out = ref [] in
  Array.iteri
    (fun i r ->
      let dup = ref None and alpha = ref None in
      for j = 0 to i - 1 do
        if !dup = None && Rule.equal arr.(j) r then dup := Some j;
        if !dup = None && !alpha = None && Rule.equal canon.(j) canon.(i)
        then alpha := Some j
      done;
      match !dup, !alpha with
      | Some j, _ ->
        out :=
          D.make ~severity:D.Warning ~pass ~code:"duplicate-rule"
            ~location:(rule_loc i r)
            (Printf.sprintf "identical to rule #%d" j)
            ~hint:"delete one of the two copies"
          :: !out
      | None, Some j ->
        out :=
          D.make ~severity:D.Warning ~pass ~code:"duplicate-rule"
            ~location:(rule_loc i r)
            (Printf.sprintf "identical to rule #%d (up to variable renaming)" j)
            ~hint:"delete one of the two copies"
          :: !out
      | None, None -> ())
    arr;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Predicate use: undeclared names and arity mismatches *)

module SM = Map.Make (String)

let literal_atoms = function
  | Literal.Pos a | Literal.Neg a -> [ a ]
  | Literal.Agg { body; _ } -> body
  | Literal.Cmp _ | Literal.Assign _ -> []

let predicate_diags ?signature ?(known_predicates = []) rule_loc rules =
  let sg = Option.value signature ~default:Flogic.Signature.empty in
  let defined =
    List.fold_left
      (fun acc (r : Rule.t) -> SM.add (Rule.head_pred r) () acc)
      SM.empty rules
  in
  let known p =
    SM.mem p defined
    || Flogic.Signature.mem sg p
    || List.mem p reserved_predicates
    || List.mem p known_predicates
    || Literal.is_builtin p
  in
  (* the first use of each predicate fixes the expected arity; a
     signature layout overrides *)
  let expected = ref SM.empty in
  let reported_undeclared = Hashtbl.create 8 in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let check_arity i r (a : Atom.t) =
    let p = a.Atom.pred and n = Atom.arity a in
    match Flogic.Signature.arity sg p with
    | Some k when k <> n ->
      emit
        (D.make ~severity:D.Error ~pass ~code:"arity-mismatch"
           ~location:(rule_loc i r)
           (Printf.sprintf
              "%s used with %d argument(s) but declared with %d attribute(s) \
               (%s)"
              p n k
              (String.concat ", "
                 (Option.value (Flogic.Signature.attributes sg p) ~default:[]))))
    | Some _ -> ()
    | None -> (
      match SM.find_opt p !expected with
      | Some k when k <> n ->
        emit
          (D.make ~severity:D.Error ~pass ~code:"arity-mismatch"
             ~location:(rule_loc i r)
             (Printf.sprintf "%s used with %d argument(s), elsewhere with %d"
                p n k))
      | Some _ -> ()
      | None -> expected := SM.add p n !expected)
  in
  List.iteri
    (fun i (r : Rule.t) ->
      check_arity i r r.Rule.head;
      List.iter
        (fun (a : Atom.t) ->
          check_arity i r a;
          let p = a.Atom.pred in
          if (not (known p)) && not (Hashtbl.mem reported_undeclared p) then begin
            Hashtbl.add reported_undeclared p ();
            emit
              (D.make ~severity:D.Warning ~pass ~code:"undeclared-predicate"
                 ~location:(rule_loc i r)
                 (Printf.sprintf
                    "%s is read here but defined by no rule, relation \
                     signature or reserved predicate"
                    p)
                 ~hint:"misspelled predicate names make goals silently empty")
          end)
        (List.concat_map literal_atoms r.Rule.body))
    rules;
  List.rev !diags

let lint ?signature ?known_predicates ?(check_unused = true)
    ?(loc = default_loc) rules =
  List.concat
    (List.mapi
       (fun i r ->
         safety_diags loc i r
         @ (if check_unused then unused_diags loc i r else []))
       rules)
  @ redundancy_diags loc rules
  @ predicate_diags ?signature ?known_predicates loc rules
