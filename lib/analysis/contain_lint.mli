(** Lint pass 9 ("contain"): semantic redundancy and contradiction via
    conjunctive-query containment modulo the domain map ({!Contain}).

    Codes: [unsatisfiable-body] (the rule can never fire),
    [implied-atom] (a body atom is entailed by the rest of the body —
    pure join overhead), [rule-implied-by-rule] (another rule already
    produces every answer). All are warnings: redundant or dead rules
    are correct, just wasteful. Syntactic duplicates stay with
    {!Rule_lint}'s [duplicate-rule]; under [gcm] the GCM axioms and
    closed-predicate heads are skipped. *)

val pass : string

val lint :
  ?dm:Domain_map.Dmap.t ->
  ?disjoint:(string * string) list ->
  ?gcm:bool ->
  ?loc:(int -> Logic.Rule.t -> Diagnostic.location) ->
  Logic.Rule.t list ->
  Diagnostic.t list
(** [loc] maps a rule (with its index in the input list) to a
    diagnostic location; defaults to the rendered rule text. *)
