module Term = Logic.Term
module Atom = Logic.Atom
module Literal = Logic.Literal
module Rule = Logic.Rule
module SS = Set.Make (String)

(* Cardinality/cost abstract interpretation over the predicate
   dependency graph: every predicate gets an interval [lo, hi] bounding
   its fixpoint extent, a per-column bound on the number of distinct
   values, and single-column key flags. The same per-rule walk that
   produces the sound size bound also runs a System-R-style selectivity
   heuristic, which is what orders literals for the cost oracle — the
   bound must be sound, the order only has to be good. *)

(* ------------------------------------------------------------------ *)
(* Saturating interval arithmetic. [None] is "unbounded": the honest
   answer for skolem-growing recursion. Finite values saturate at
   [huge] — still a sound upper bound for anything a database can
   physically hold. *)

let huge = max_int / 4
let sat n = if n >= huge then huge else n

let sat_add a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some a, Some b -> Some (sat (a + b))

let sat_mul a b =
  match (a, b) with
  | Some 0, _ | _, Some 0 -> Some 0
  | None, _ | _, None -> None
  | Some a, Some b -> Some (if a > huge / b then huge else a * b)

let min_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)

let max_opt a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some a, Some b -> Some (max a b)

let opt_gt a n = match a with None -> true | Some a -> a > n

type interval = { lo : int; hi : int option }

let pp_interval ppf { lo; hi } =
  match hi with
  | Some hi -> Format.fprintf ppf "[%d, %d]" lo hi
  | None -> Format.fprintf ppf "[%d, ∞]" lo

let contains { lo; hi } n =
  n >= lo && match hi with None -> true | Some h -> n <= h

(* ------------------------------------------------------------------ *)
(* The abstract domain: one value per predicate. [cols.(j)] bounds the
   number of distinct values column j can take ([None] = no bound),
   [keys.(j)] records that column j is a key (no two tuples agree on
   it). [widen] marks predicates in a recursive SCC: only their chains
   need widening, so DAG programs keep exact counts. *)

type pinfo = {
  card : interval;
  cols : int option array;
  keys : bool array;
  widen : bool;
}

let bot = { card = { lo = 0; hi = Some 0 }; cols = [||]; keys = [||]; widen = false }

(* Snap growing bounds to powers of two above a small threshold: a
   widened chain takes O(log huge) strict increases, so the worklist
   terminates even when the join estimates creep up by one per round. *)
let widen_threshold = 64

let rec pow2_above n k = if k >= n || k >= huge then sat k else pow2_above n (k * 2)

let widen_up n = if n <= widen_threshold then n else pow2_above n widen_threshold

let join_hi ~widen a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some x, Some y ->
    if x = y then Some x
    else
      let m = max x y in
      Some (if widen then widen_up m else m)

let join_cols ~widen a b =
  if a = [||] then b
  else if b = [||] then a
  else if Array.length a <> Array.length b then [||]
  else Array.map2 (fun x y -> join_hi ~widen x y) a b

let join_keys a b =
  if a = [||] then b
  else if b = [||] then a
  else if Array.length a <> Array.length b then [||]
  else Array.map2 ( && ) a b

module Dom = struct
  type t = pinfo

  let bot = bot
  let equal = ( = )

  let join a b =
    let widen = a.widen || b.widen in
    {
      card =
        {
          lo = max a.card.lo b.card.lo;
          hi = join_hi ~widen a.card.hi b.card.hi;
        };
      cols = join_cols ~widen a.cols b.cols;
      keys = join_keys a.keys b.keys;
      widen;
    }
end

module Fix = Absint.Make (Dom)

(* ------------------------------------------------------------------ *)
(* Dependency graph, SCCs, and the boundedness check. A rule is
   {e growing} when it sits on a dependency cycle and synthesises fresh
   values on the way around — a function symbol in the head (skolem
   towers) or arithmetic/aggregation in the body. Such a head predicate
   has no finite bound (the engine's depth guard is what terminates
   it), so the analysis reports ∞ rather than pretending. *)

let rule_deps (r : Rule.t) =
  List.sort_uniq String.compare (List.map fst (Rule.body_predicates r))

let sccs rules =
  (* Tarjan over predicate names. *)
  let adj = Hashtbl.create 16 in
  let nodes = ref SS.empty in
  List.iter
    (fun r ->
      let h = Rule.head_pred r in
      nodes := SS.add h !nodes;
      List.iter
        (fun d ->
          nodes := SS.add d !nodes;
          Hashtbl.add adj h d)
        (rule_deps r))
    rules;
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let comp_of = Hashtbl.create 16 in
  let ncomp = ref 0 in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Hashtbl.find_all adj v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let c = !ncomp in
      incr ncomp;
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          Hashtbl.replace comp_of w c;
          if not (String.equal w v) then pop ()
      in
      pop ()
    end
  in
  SS.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) !nodes;
  fun p -> Hashtbl.find_opt comp_of p

let term_has_app = function
  | Term.App _ -> true
  | Term.Var _ | Term.Const _ -> false

let head_has_app (r : Rule.t) = List.exists term_has_app r.Rule.head.Atom.args

let body_synthesises (r : Rule.t) =
  List.exists
    (function Literal.Assign _ | Literal.Agg _ -> true | _ -> false)
    r.Rule.body

(* recursive: some body predicate shares the head's SCC *)
let rule_recursive comp (r : Rule.t) =
  match comp (Rule.head_pred r) with
  | None -> false
  | Some c -> List.exists (fun d -> comp d = Some c) (rule_deps r)

let rule_growing comp r =
  rule_recursive comp r && (head_has_app r || body_synthesises r)

(* ------------------------------------------------------------------ *)
(* Seeding: in-program fact rules, an external EDB database, and
   caller-supplied caps (store counts, capability templates, domain-map
   cone sizes). Facts are scanned once for exact counts, per-column
   distinct counts and single-column keys. *)

module TS = Set.Make (Term)

type seed_acc = {
  mutable tuples : Term.t list list;
}

let fact_stats tuples =
  match tuples with
  | [] -> bot
  | first :: _ ->
    let arity = List.length first in
    let n = List.length tuples in
    let consistent = List.for_all (fun t -> List.length t = arity) tuples in
    if not consistent then
      { bot with card = { lo = n; hi = Some n } }
    else begin
      let colsets = Array.make arity TS.empty in
      List.iter
        (List.iteri (fun j t -> colsets.(j) <- TS.add t colsets.(j)))
        tuples;
      let cols = Array.map (fun s -> Some (TS.cardinal s)) colsets in
      let keys = Array.map (fun s -> TS.cardinal s = n) colsets in
      { card = { lo = n; hi = Some n }; cols; keys; widen = false }
    end

let seeds ?edb ?(assume_nonempty = fun _ -> false) ?(seed = fun _ -> None) rules
    =
  let acc : (string, seed_acc) Hashtbl.t = Hashtbl.create 16 in
  let touch p =
    match Hashtbl.find_opt acc p with
    | Some a -> a
    | None ->
      let a = { tuples = [] } in
      Hashtbl.add acc p a;
      a
  in
  List.iter
    (fun r ->
      if Rule.is_fact r then
        let a = touch (Rule.head_pred r) in
        a.tuples <- r.Rule.head.Atom.args :: a.tuples)
    rules;
  (match edb with
  | None -> ()
  | Some db ->
    List.iter
      (fun p ->
        let a = touch p in
        List.iter
          (fun (f : Atom.t) -> a.tuples <- f.Atom.args :: a.tuples)
          (Datalog.Database.facts db p))
      (Datalog.Database.predicates db));
  let base = Hashtbl.create 16 in
  Hashtbl.iter (fun p a -> Hashtbl.replace base p (fact_stats a.tuples)) acc;
  fun p ->
    let facts = Option.value (Hashtbl.find_opt base p) ~default:bot in
    let cap = seed p in
    if assume_nonempty p then
      (* open predicate: the extent is externally populated, so column
         stats from lifted facts do not bound it — only a caller cap
         (e.g. a store count) does. *)
      let hi =
        match cap with
        | Some c -> max_opt c.hi facts.card.hi
        | None -> None
      in
      {
        card = { lo = facts.card.lo; hi };
        cols = [||];
        keys = [||];
        widen = false;
      }
    else facts

(* ------------------------------------------------------------------ *)
(* The per-rule walk: pick a literal order (greedy by estimated rows,
   or a forced order), thread a sound row bound and a heuristic cost
   through it, and record cross-product steps. *)

type rule_cost = {
  order : int list;  (** chosen body order, as literal indices *)
  est : interval;  (** sound bound on tuples the rule derives *)
  cost : int option;  (** heuristic work units for [order] *)
  greedy_cost : int option;  (** same model on the syntactic greedy order *)
  cross_products : int;  (** join steps sharing no bound variable *)
  inputs_hi : int option;  (** Σ hi over positive body predicates *)
  recursive : bool;
  growing : bool;  (** recursive and synthesising fresh values *)
}

exception Stuck

let lit_evaluable bound lit =
  match lit with
  | Literal.Cmp (Literal.Eq, t1, t2) ->
    List.for_all (fun x -> SS.mem x bound) (Term.vars t1)
    || List.for_all (fun x -> SS.mem x bound) (Term.vars t2)
  | l -> List.for_all (fun x -> SS.mem x bound) (Literal.needs l)

(* mirror of [Plan.compile]'s scoring, to cost the order the engine
   would pick on its own *)
let syntactic_order (r : Rule.t) ~focus =
  let lits = Array.of_list r.Rule.body in
  let n = Array.length lits in
  let used = Array.make n false in
  let focus_idx = match focus with Some i -> i | None -> -1 in
  let order = ref [] in
  let bound = ref SS.empty in
  (try
     for _ = 1 to n do
       let score i =
         match lits.(i) with
         | Literal.Pos a ->
           let vs = Atom.vars a in
           let boundness =
             List.length (List.filter (fun x -> SS.mem x !bound) vs)
           in
           if i = focus_idx then 1000 + boundness else 100 + boundness
         | Literal.Neg _ | Literal.Cmp _ | Literal.Assign _ -> 500
         | Literal.Agg _ -> 10
       in
       let best = ref (-1) in
       for i = 0 to n - 1 do
         if
           (not used.(i))
           && lit_evaluable !bound lits.(i)
           && (!best = -1 || score i > score !best)
         then best := i
       done;
       if !best = -1 then raise Stuck;
       used.(!best) <- true;
       order := !best :: !order;
       bound :=
         List.fold_left
           (fun acc x -> SS.add x acc)
           !bound
           (Literal.binds lits.(!best))
     done;
     Some (List.rev !order)
   with Stuck -> None)

type walk = {
  w_order : int list;
  w_est : int option;  (* sound bound on derived head tuples *)
  w_cost : int option;
  w_cross : int;
  w_head_cols : int option array;
  w_head_keys : bool array;
}

let walk env (r : Rule.t) ~focus ~forced_order =
  let lits = Array.of_list r.Rule.body in
  let n = Array.length lits in
  let used = Array.make n false in
  let focus_idx = match focus with Some i -> i | None -> -1 in
  let bound = ref SS.empty in
  let dvar : (string, int option) Hashtbl.t = Hashtbl.create 8 in
  let note_var x d =
    match Hashtbl.find_opt dvar x with
    | None -> Hashtbl.replace dvar x d
    | Some d0 -> Hashtbl.replace dvar x (min_opt d0 d)
  in
  let rows_est = ref (Some 1) in
  let rows_cost = ref (Some 1) in
  let cost = ref (Some 0) in
  let cross = ref 0 in
  let scanned_positive = ref false in
  let add_cost c = cost := sat_add !cost c in
  let info p : pinfo = env p in
  (* heuristic matches for a probe of [a] under the current bindings *)
  let probe_estimate (a : Atom.t) =
    let pi = info a.Atom.pred in
    let hi = pi.card.hi in
    let bound_positions =
      List.mapi (fun j t -> (j, t)) a.Atom.args
      |> List.filter (fun (_, t) ->
             List.for_all (fun x -> SS.mem x !bound) (Term.vars t))
      |> List.map fst
    in
    let full = List.length bound_positions = List.length a.Atom.args in
    let key_hit =
      List.exists
        (fun j -> j < Array.length pi.keys && pi.keys.(j))
        bound_positions
    in
    let sel =
      List.fold_left
        (fun s j ->
          let d =
            if j < Array.length pi.cols then
              match pi.cols.(j) with Some d -> d | None -> 1
            else 1
          in
          sat_mul s (Some (max 1 d)))
        (Some 1) bound_positions
    in
    let matches_h =
      if full || key_hit then Some 1
      else if bound_positions = [] then hi
      else
        match (hi, sel) with
        | Some h, Some s -> Some (max 1 (h / max 1 s))
        | _ -> hi
    in
    (pi, hi, bound_positions, full, key_hit, matches_h)
  in
  let apply i =
    used.(i) <- true;
    let lit = lits.(i) in
    (match lit with
    | Literal.Pos a when Literal.is_builtin a.Atom.pred -> add_cost !rows_cost
    | Literal.Pos a ->
      let pi, hi, bound_positions, full, key_hit, matches_h =
        probe_estimate a
      in
      let sound_factor = if full || key_hit then Some 1 else hi in
      if
        !scanned_positive && bound_positions = [] && Atom.vars a <> []
        && opt_gt !rows_est 1 && opt_gt hi 1
      then incr cross;
      scanned_positive := true;
      rows_est := sat_mul !rows_est sound_factor;
      add_cost
        (sat_mul !rows_cost
           (if bound_positions = [] then hi else matches_h));
      rows_cost := sat_mul !rows_cost matches_h;
      List.iteri
        (fun j t ->
          match t with
          | Term.Var x ->
            let colb =
              if j < Array.length pi.cols then pi.cols.(j) else None
            in
            note_var x (min_opt colb hi)
          | _ -> ())
        a.Atom.args
    | Literal.Neg _ -> add_cost !rows_cost
    | Literal.Cmp (Literal.Eq, t1, t2) ->
      add_cost !rows_cost;
      let newly =
        List.filter
          (fun x -> not (SS.mem x !bound))
          (Term.vars t1 @ Term.vars t2)
      in
      List.iter (fun x -> note_var x !rows_est) newly
    | Literal.Cmp _ -> add_cost !rows_cost
    | Literal.Assign (t, _) ->
      add_cost !rows_cost;
      List.iter
        (fun x -> if not (SS.mem x !bound) then note_var x !rows_est)
        (Term.vars t)
    | Literal.Agg ag ->
      let inner =
        List.fold_left
          (fun acc (a : Atom.t) -> sat_mul acc (info a.Atom.pred).card.hi)
          (Some 1) ag.Literal.body
      in
      let groups = max_opt (Some 1) inner in
      rows_est := sat_mul !rows_est groups;
      add_cost (sat_mul !rows_cost inner);
      rows_cost := sat_mul !rows_cost groups;
      List.iter
        (fun x -> if not (SS.mem x !bound) then note_var x groups)
        (Literal.vars lit));
    bound :=
      List.fold_left (fun acc x -> SS.add x acc) !bound (Literal.binds lit)
  in
  let category i =
    match lits.(i) with
    | Literal.Pos a when Literal.is_builtin a.Atom.pred -> 0
    | Literal.Neg _ | Literal.Cmp _ | Literal.Assign _ -> 0
    | Literal.Pos _ -> 1
    | Literal.Agg _ -> 2
  in
  let order = ref [] in
  let pick_greedy () =
    (* focus literal first: it is the delta scan *)
    if focus_idx >= 0 && not used.(focus_idx) then focus_idx
    else begin
      let best = ref (-1) in
      let best_key = ref (3, None, 0) in
      for i = 0 to n - 1 do
        if (not used.(i)) && lit_evaluable !bound lits.(i) then begin
          let est =
            match lits.(i) with
            | Literal.Pos a when not (Literal.is_builtin a.Atom.pred) ->
              let _, _, _, _, _, matches_h = probe_estimate a in
              sat_mul !rows_cost matches_h
            | _ -> !rows_cost
          in
          let key = (category i, est, i) in
          let less (c1, e1, i1) (c2, e2, i2) =
            c1 < c2
            || (c1 = c2
               &&
               match (e1, e2) with
               | Some a, Some b -> a < b || (a = b && i1 < i2)
               | Some _, None -> true
               | None, Some _ -> false
               | None, None -> i1 < i2)
          in
          if !best = -1 || less key !best_key then begin
            best := i;
            best_key := key
          end
        end
      done;
      if !best = -1 then raise Stuck;
      !best
    end
  in
  (match forced_order with
  | Some o ->
    List.iter
      (fun i ->
        if i < 0 || i >= n || used.(i) || not (lit_evaluable !bound lits.(i))
        then raise Stuck;
        order := i :: !order;
        apply i)
      o
  | None ->
    for _ = 1 to n do
      let i = pick_greedy () in
      order := i :: !order;
      apply i
    done);
  (* head clamp: the output also fits in the product of per-column
     distinct bounds *)
  let rec term_distinct t =
    match t with
    | Term.Const _ -> Some 1
    | Term.Var x -> Option.join (Hashtbl.find_opt dvar x)
    | Term.App (_, args) ->
      List.fold_left (fun acc a -> sat_mul acc (term_distinct a)) (Some 1) args
  in
  let head_cols =
    Array.of_list (List.map term_distinct r.Rule.head.Atom.args)
  in
  let col_prod =
    Array.fold_left (fun acc c -> sat_mul acc c) (Some 1) head_cols
  in
  let est = min_opt !rows_est col_prod in
  (* key inference: a single positive literal plus filters only shrinks
     the relation, so a head column copying one of its key columns
     stays a key *)
  let positives =
    List.filter
      (function
        | Literal.Pos a -> not (Literal.is_builtin a.Atom.pred)
        | _ -> false)
      r.Rule.body
  in
  let head_keys =
    match positives with
    | [ Literal.Pos a ]
      when List.for_all
             (function
               | Literal.Pos _ | Literal.Neg _ | Literal.Cmp _ -> true
               | _ -> false)
             r.Rule.body ->
      let pi = info a.Atom.pred in
      let key_vars =
        List.filteri
          (fun j _ -> j < Array.length pi.keys && pi.keys.(j))
          a.Atom.args
        |> List.filter_map (function Term.Var x -> Some x | _ -> None)
      in
      Array.of_list
        (List.map
           (function
             | Term.Var x -> List.mem x key_vars
             | _ -> false)
           r.Rule.head.Atom.args)
    | _ -> Array.make (List.length r.Rule.head.Atom.args) false
  in
  {
    w_order = List.rev !order;
    w_est = est;
    w_cost = !cost;
    w_cross = !cross;
    w_head_cols = head_cols;
    w_head_keys = head_keys;
  }

(* ------------------------------------------------------------------ *)
(* The fixpoint: one transfer per head predicate, recomputing the whole
   head value (seed plus the sum over its rules) so the per-predicate
   join is a plain pointwise max. *)

type result = {
  env : string -> pinfo;
  rules : Rule.t list;
  costs : rule_cost option array;  (* aligned with [rules]; None for facts *)
  memo : (Rule.t * int option, int list option) Hashtbl.t;
}

let analyze ?(max_steps = 200_000) ?edb ?assume_nonempty ?seed rules =
  let seed_of = seeds ?edb ?assume_nonempty ?seed rules in
  let comp = sccs rules in
  let defined = List.filter (fun r -> not (Rule.is_fact r)) rules in
  let by_head = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let h = Rule.head_pred r in
      Hashtbl.replace by_head h (r :: Option.value (Hashtbl.find_opt by_head h) ~default:[]))
    defined;
  let groups =
    Hashtbl.fold (fun p rs acc -> (p, List.rev rs) :: acc) by_head []
  in
  let in_cycle p =
    (* p sits on a dependency cycle iff some rule of its SCC depends on
       that same SCC *)
    match comp p with
    | None -> false
    | Some c ->
      List.exists
        (fun r ->
          comp (Rule.head_pred r) = Some c
          && List.exists (fun d -> comp d = Some c) (rule_deps r))
        defined
  in
  let cap_of p =
    match seed with
    | Some f -> ( match f p with Some c -> c.hi | None -> None)
    | None -> None
  in
  (* distinct(union of contributions) ≤ Σ per-contribution distincts;
     [None] accumulator = nothing contributed yet, [||] = unknown *)
  let add_cols acc contrib =
    match acc with
    | None -> Some contrib
    | Some a ->
      if a = [||] || contrib = [||] || Array.length a <> Array.length contrib
      then Some [||]
      else Some (Array.map2 sat_add a contrib)
  in
  let transfer env (p, rs) =
    let s = seed_of p in
    let walks =
      List.map
        (fun r ->
          if rule_growing comp r then None
          else
            match walk env r ~focus:None ~forced_order:None with
            | w -> Some w
            | exception Stuck -> None)
        rs
    in
    let hi =
      List.fold_left
        (fun hi w ->
          match w with None -> None | Some w -> sat_add hi w.w_est)
        s.card.hi walks
    in
    let cols0 = if s.card.hi = Some 0 then None else Some s.cols in
    let cols =
      List.fold_left
        (fun acc w ->
          add_cols acc (match w with None -> [||] | Some w -> w.w_head_cols))
        cols0 walks
      |> Option.value ~default:[||]
    in
    (* a key survives only when the head has exactly one contribution *)
    let keys =
      match (walks, s.card.hi) with
      | [ Some w ], Some 0 -> w.w_head_keys
      | _ -> [||]
    in
    let hi = min_opt hi (cap_of p) in
    { card = { lo = s.card.lo; hi }; cols; keys; widen = in_cycle p }
  in
  let spec =
    {
      Fix.heads = (fun (p, _) -> [ p ]);
      deps = (fun (_, rs) -> List.concat_map rule_deps rs);
      transfer;
    }
  in
  (* [init] matters: inside the fixpoint, predicates with no rules (EDB
     facts, open predicates, caps) must read as their seed, not ⊥ *)
  let fix_env = Fix.fixpoint ~max_steps ~init:seed_of spec groups in
  let env p =
    (* defined predicates: the fixpoint value (its transfer already
       folds the seed in); everything else: pure seed (EDB facts, open
       predicates, caps) *)
    if Hashtbl.mem by_head p then fix_env p else seed_of p
  in
  let costs =
    Array.of_list
      (List.map
         (fun r ->
           if Rule.is_fact r then None
           else
             let recursive = rule_recursive comp r in
             let growing = rule_growing comp r in
             let inputs_hi =
               List.fold_left
                 (fun acc (p, _) -> sat_add acc (env p).card.hi)
                 (Some 0)
                 (List.filter (fun (_, neg) -> not neg) (Rule.body_predicates r))
             in
             let mk w greedy =
               Some
                 {
                   order = w.w_order;
                   est = { lo = 0; hi = (if growing then None else w.w_est) };
                   cost = w.w_cost;
                   greedy_cost = greedy;
                   cross_products = w.w_cross;
                   inputs_hi;
                   recursive;
                   growing;
                 }
             in
             match walk env r ~focus:None ~forced_order:None with
             | w ->
               let greedy =
                 match syntactic_order r ~focus:None with
                 | None -> None
                 | Some o -> (
                   match walk env r ~focus:None ~forced_order:(Some o) with
                   | wg -> wg.w_cost
                   | exception Stuck -> None)
               in
               mk w greedy
             | exception Stuck -> None)
         rules)
  in
  { env; rules; costs; memo = Hashtbl.create 64 }

(* ------------------------------------------------------------------ *)
(* Accessors and the engine-facing oracle *)

let card res p = (res.env p).card
let column_bounds res p = (res.env p).cols

let keys res p =
  let k = (res.env p).keys in
  Array.to_list k
  |> List.mapi (fun i b -> if b then Some i else None)
  |> List.filter_map Fun.id

let unbounded res p = (res.env p).card.hi = None

let intervals res =
  let preds =
    List.sort_uniq String.compare
      (List.concat_map
         (fun r -> Rule.head_pred r :: rule_deps r)
         res.rules)
  in
  List.map (fun p -> (p, card res p)) preds

let rule_costs res =
  List.concat
    (List.mapi
       (fun i r ->
         match res.costs.(i) with Some c -> [ (r, c) ] | None -> [])
       res.rules)

let order res r ~focus =
  let k = (r, focus) in
  match Hashtbl.find_opt res.memo k with
  | Some o -> o
  | None ->
    let o =
      if Rule.is_fact r then None
      else
        match walk res.env r ~focus ~forced_order:None with
        | w -> Some w.w_order
        | exception Stuck -> None
    in
    Hashtbl.replace res.memo k o;
    o

let estimate res p = (card res p).hi

let oracle res =
  {
    Datalog.Engine.order = (fun r ~focus -> order res r ~focus);
    estimate = (fun p -> estimate res p);
  }
