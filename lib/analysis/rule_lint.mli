(** Pass 1 — rule-level lint of a Datalog rule set.

    Checks, per rule and across the set:
    - {b unsafe-rule} / {b aggregate-unbound} / {b stuck-literal}
      (errors): range-restriction violations, naming the offending
      variable or literal ({!Logic.Rule.safety_errors});
    - {b unused-variable} (warning): a variable occurring exactly once
      in the rule (it joins nothing and projects nothing — usually a
      typo; prefix with [_] to silence);
    - {b duplicate-rule} (warning): a rule identical to an earlier one,
      either textually or up to a renaming of its variables
      (alpha-equivalence — canonical first-occurrence renaming of both
      sides);
    - {b undeclared-predicate} (warning): a body predicate that no rule
      head defines and that is neither a declared relation
      ({!Flogic.Signature}), a reserved GCM predicate, a builtin, nor
      listed in [known_predicates];
    - {b arity-mismatch} (error): one predicate used at two arities, or
      a declared relation used at an arity different from its
      signature layout. *)

val reserved_predicates : string list
(** The GCM encoding's predicate universe ({!Flogic.Compile.reserved},
    the inheritance predicates, the domain-map test predicates) — never
    reported as undeclared. *)

val subsumes : general:Logic.Rule.t -> specific:Logic.Rule.t -> bool
(** One-sided syntactic subsumption: a substitution maps [general]'s
    head onto [specific]'s head and each of its body literals onto some
    body literal of [specific] (atomic bodies only). No longer emitted
    as a diagnostic — {!Contain_lint}'s semantic [rule-implied-by-rule]
    supersedes it — but kept as the differential oracle: syntactic
    subsumption must imply containment. *)

val alpha_canonical : Logic.Rule.t -> Logic.Rule.t
(** Canonical variable renaming (V0, V1, ... in first-occurrence
    order); two rules are alpha-equivalent iff their canonical forms
    are {!Logic.Rule.equal}. Shared with {!Contain_lint} to keep
    alpha-duplicates out of the containment pass. *)

val lint :
  ?signature:Flogic.Signature.t ->
  ?known_predicates:string list ->
  ?check_unused:bool ->
  ?loc:(int -> Logic.Rule.t -> Diagnostic.location) ->
  Logic.Rule.t list ->
  Diagnostic.t list
(** [check_unused] (default [true]) controls the singleton-variable
    pass; turn it off when linting rules compiled from multi-head
    F-logic molecules, where one surface rule becomes several Datalog
    rules sharing a body and singleton occurrences are an artifact —
    {!Kindlint.lint_program} re-runs the check at the molecule level.
    [loc] maps a rule index and rule to the diagnostic location
    (default: the rendered rule with no source position); callers that
    parsed the rules from a file pass a locator carrying line/column. *)
