(** Pass 1 — rule-level lint of a Datalog rule set.

    Checks, per rule and across the set:
    - {b unsafe-rule} / {b aggregate-unbound} / {b stuck-literal}
      (errors): range-restriction violations, naming the offending
      variable or literal ({!Logic.Rule.safety_errors});
    - {b unused-variable} (warning): a variable occurring exactly once
      in the rule (it joins nothing and projects nothing — usually a
      typo; prefix with [_] to silence);
    - {b duplicate-rule} (warning): a rule identical to an earlier one,
      either textually or up to a renaming of its variables
      (alpha-equivalence — canonical first-occurrence renaming of both
      sides);
    - {b subsumed-rule} (warning): a rule whose answers are already
      produced by a more general earlier rule (one-sided matching of
      head and body literals);
    - {b undeclared-predicate} (warning): a body predicate that no rule
      head defines and that is neither a declared relation
      ({!Flogic.Signature}), a reserved GCM predicate, a builtin, nor
      listed in [known_predicates];
    - {b arity-mismatch} (error): one predicate used at two arities, or
      a declared relation used at an arity different from its
      signature layout. *)

val reserved_predicates : string list
(** The GCM encoding's predicate universe ({!Flogic.Compile.reserved},
    the inheritance predicates, the domain-map test predicates) — never
    reported as undeclared. *)

val lint :
  ?signature:Flogic.Signature.t ->
  ?known_predicates:string list ->
  ?check_unused:bool ->
  ?loc:(int -> Logic.Rule.t -> Diagnostic.location) ->
  Logic.Rule.t list ->
  Diagnostic.t list
(** [check_unused] (default [true]) controls the singleton-variable
    pass; turn it off when linting rules compiled from multi-head
    F-logic molecules, where one surface rule becomes several Datalog
    rules sharing a body and singleton occurrences are an artifact —
    {!Kindlint.lint_program} re-runs the check at the molecule level.
    [loc] maps a rule index and rule to the diagnostic location
    (default: the rendered rule with no source position); callers that
    parsed the rules from a file pass a locator carrying line/column. *)
