module Rule = Logic.Rule
module D = Diagnostic

let pass = "cost"

let default_loc i r =
  D.Rule { index = i; text = Rule.to_string r; pos = None }

type report = {
  diags : D.t list;
  intervals : (string * Card.interval) list;
  costs : (Rule.t * Card.rule_cost) list;
}

let empty = { diags = []; intervals = []; costs = [] }

let pp_hi = function None -> "unbounded" | Some h -> string_of_int h

(* A non-recursive rule whose worst case dwarfs its inputs: the join is
   building a product, not following keys. The floor keeps tiny
   programs (where 3 x 4 x 5 is fine) quiet. *)
let blowup_factor = 4
let blowup_floor = 64

let rule_diags ~budget ~loc i r (c : Card.rule_cost) =
  let mk ?hint severity code msg =
    D.make ?hint ~severity ~pass ~code ~location:(loc i r) msg
  in
  let cross =
    if c.Card.cross_products > 0 then
      [
        mk D.Warning "cross-product-join"
          (Printf.sprintf
             "%d join step%s share%s no bound variable with the literals \
              before %s (cross product); worst case %s rows"
             c.Card.cross_products
             (if c.Card.cross_products = 1 then "" else "s")
             (if c.Card.cross_products = 1 then "s" else "")
             (if c.Card.cross_products = 1 then "it" else "them")
             (pp_hi c.Card.est.Card.hi))
          ~hint:
            "add a join condition linking the scans, or split the rule — \
             every pair (triple, ...) of rows is materialized otherwise";
      ]
    else []
  in
  let growth =
    if c.Card.growing then
      [
        mk D.Warning "unbounded-growth"
          "recursive rule synthesises fresh values (function symbols, \
           arithmetic or aggregation on a dependency cycle): the head has \
           no finite bound"
          ~hint:
            "only the engine's max_term_depth guard terminates this; \
             bound the recursion with a base relation or drop the \
             constructor from the recursive case";
      ]
    else []
  in
  let blowup =
    match (c.Card.recursive, c.Card.est.Card.hi, c.Card.inputs_hi) with
    | false, Some est, Some inputs
      when est > max blowup_floor (blowup_factor * inputs) ->
      [
        mk D.Warning "super-linear-blowup"
          (Printf.sprintf
             "worst-case result (%d rows) is super-linear in the rule's \
              inputs (%d rows summed over body predicates)"
             est inputs)
          ~hint:
            "the body joins multiply instead of filtering; check for \
             missing key joins or push a selection into the body";
      ]
    | _ -> []
  in
  let over =
    match (budget, c.Card.est.Card.hi) with
    | Some b, Some est when est > b ->
      [
        mk D.Error "over-budget"
          (Printf.sprintf
             "estimated result (%d rows) exceeds the configured budget \
              (%d)"
             est b);
      ]
    | Some b, None ->
      [
        mk D.Error "over-budget"
          (Printf.sprintf
             "estimated result is unbounded; a budget of %d is configured"
             b);
      ]
    | _ -> []
  in
  cross @ growth @ blowup @ over

let analyze ?budget ?assume_nonempty ?seed ?edb ?(loc = default_loc) rules =
  match Card.analyze ?edb ?assume_nonempty ?seed rules with
  | res ->
    let costs = Card.rule_costs res in
    let remaining = ref costs in
    let diags =
      List.concat
        (List.mapi
           (fun i r ->
             if Rule.is_fact r then []
             else
               match !remaining with
               | (r', c) :: rest when Rule.equal r r' ->
                 remaining := rest;
                 rule_diags ~budget ~loc i r c
               | _ -> [])
           rules)
    in
    { diags; intervals = Card.intervals res; costs }
  | exception Absint.Diverged -> empty

let lint ?budget ?assume_nonempty ?seed ?edb ?loc rules =
  (analyze ?budget ?assume_nonempty ?seed ?edb ?loc rules).diags
