(* Lint pass 9, "contain": semantic redundancy via CQ containment
   modulo the domain map.

   - [unsatisfiable-body]: the rule can never fire (ground-false or
     contradictory comparisons, a negated atom implied by the positive
     body, disjoint-concept membership).
   - [implied-atom]: a body atom is entailed by the rest of the body
     under the chase — the join is pure overhead (the
     [Engine.config.minimize] hook would drop it).
   - [rule-implied-by-rule]: every answer of one rule is produced by
     another rule of the program; the contained rule is dead weight.
     Syntactic duplicates (including alpha-variants) are left to
     {!Rule_lint}'s [duplicate-rule] so the two passes never report
     the same pair twice.

   Under [gcm] the {!Flogic.Gcm_axioms} rules and any rule whose head
   writes a closed reserved predicate are skipped: the chase encodes
   those axioms, so they would trivially "imply" each other. *)

module Rule = Logic.Rule
module D = Diagnostic

let pass = "contain"

let default_loc i r = D.Rule { index = i; text = Rule.to_string r; pos = None }

let closed_preds =
  [
    Flogic.Compile.isa_p;
    Flogic.Compile.sub_p;
    Flogic.Compile.meth_sig_p;
    Flogic.Compile.meth_val_p;
    Flogic.Compile.class_p;
  ]

let is_axiom r =
  List.exists (Rule.equal r)
    (Flogic.Gcm_axioms.core @ Flogic.Gcm_axioms.nonmonotonic_inheritance)

(* pairwise-containment budgets: [contained] is a join under the hood,
   so bound both the per-head-predicate group size and the total number
   of pairs checked per program *)
let group_cap = 24
let pair_budget = 512

let lint ?dm ?(disjoint = []) ?(gcm = true) ?(loc = default_loc) rules =
  let ctx = Contain.make_ctx ?dm ~rules ~disjoint ~gcm () in
  let skip r =
    Rule.is_fact r
    || (gcm && (is_axiom r || List.mem (Rule.head_pred r) closed_preds))
  in
  let unsat_results =
    List.mapi
      (fun i r ->
        (i, r, if skip r then None else Contain.unsatisfiable ctx r))
      rules
  in
  let unsat =
    List.filter_map
      (fun (i, r, res) ->
        Option.map
          (fun reason ->
            D.make ~severity:D.Warning ~pass ~code:"unsatisfiable-body"
              ~location:(loc i r)
              (Printf.sprintf "rule can never fire: %s" reason)
              ~hint:
                "the body is contradictory in every model of the program \
                 and domain map; delete the rule or fix the conflicting \
                 literals")
          res)
      unsat_results
  in
  let unsat_idx =
    List.filter_map
      (fun (i, _, res) -> if res = None then None else Some i)
      unsat_results
  in
  let implied =
    List.concat
      (List.mapi
         (fun i r ->
           if skip r || List.mem i unsat_idx then []
           else
             match Contain.implied_atoms ctx r with
             | [] -> []
             | atoms ->
               [
                 D.make ~severity:D.Warning ~pass ~code:"implied-atom"
                   ~location:(loc i r)
                   (Printf.sprintf
                      "body atom%s %s %s implied by the rest of the body \
                       (modulo the domain map): the join adds no \
                       selectivity"
                      (if List.length atoms = 1 then "" else "s")
                      (String.concat ", "
                         (List.map Logic.Atom.to_string atoms))
                      (if List.length atoms = 1 then "is" else "are each"))
                   ~hint:
                     "drop the atom, or enable config.minimize to have the \
                      engine drop it before planning";
               ])
         rules)
  in
  (* rule-implied-by-rule, grouped by head predicate *)
  let indexed =
    List.mapi (fun i r -> (i, r)) rules
    |> List.filter (fun (_, r) -> not (skip r))
  in
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (i, r) ->
      let k = Rule.head_pred r in
      Hashtbl.replace groups k
        ((i, r) :: Option.value (Hashtbl.find_opt groups k) ~default:[]))
    indexed;
  let checked = ref 0 in
  let subsumed =
    Hashtbl.fold
      (fun _ group acc ->
        let group = List.rev group in
        if List.length group > group_cap then acc
        else
          List.concat_map
            (fun (j, rj) ->
              let witness =
                List.find_opt
                  (fun (i, ri) ->
                    i <> j && !checked < pair_budget
                    &&
                    (incr checked;
                     (* leave exact duplicates and alpha-variants to
                        Rule_lint's duplicate-rule *)
                     (not (Rule.equal ri rj))
                     && (not
                           (Rule.equal
                              (Rule_lint.alpha_canonical ri)
                              (Rule_lint.alpha_canonical rj)))
                     && Contain.contained ctx rj ri
                     && (i < j || not (Contain.contained ctx ri rj))))
                  group
              in
              match witness with
              | Some (i, ri) ->
                [
                  D.make ~severity:D.Warning ~pass ~code:"rule-implied-by-rule"
                    ~location:(loc j rj)
                    (Printf.sprintf
                       "every answer of this rule is already produced by \
                        rule #%d `%s` (containment modulo the domain map)"
                       i (Rule.to_string ri))
                    ~hint:
                      "the rule is semantically redundant; delete it or \
                       make it more specific";
                ]
              | None -> [])
            group
          @ acc)
      groups []
  in
  unsat @ implied @ subsumed
