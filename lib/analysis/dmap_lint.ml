module Dmap = Domain_map.Dmap
module Index = Domain_map.Index
module D = Diagnostic

let pass = "domain-map"

module SM = Map.Make (String)

let isa_cycle dm =
  let links = (Dmap.isa_links dm).Dmap.definite in
  let adj =
    List.fold_left
      (fun m (u, v) ->
        SM.update u (fun vs -> Some (v :: Option.value vs ~default:[])) m)
      SM.empty links
  in
  (* shortest path dst ->* src closing each edge src -> dst; BFS *)
  let back ~src ~dst =
    if String.equal src dst then Some [ src ]
    else begin
      let parent = Hashtbl.create 16 in
      let queue = Queue.create () in
      Queue.add dst queue;
      Hashtbl.add parent dst dst;
      let found = ref false in
      while (not !found) && not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun v ->
            if (not !found) && not (Hashtbl.mem parent v) then begin
              Hashtbl.add parent v u;
              if String.equal v src then found := true else Queue.add v queue
            end)
          (Option.value (SM.find_opt u adj) ~default:[])
      done;
      if not !found then None
      else begin
        let rec walk v acc =
          if String.equal v dst then v :: acc
          else walk (Hashtbl.find parent v) (v :: acc)
        in
        Some (walk src [])
      end
    end
  in
  List.fold_left
    (fun best (u, v) ->
      match back ~src:u ~dst:v with
      | None -> best
      | Some path ->
        (* path runs v ... u, so prefixing u closes the cycle *)
        let cycle = u :: path in
        (match best with
        | Some b when List.length b <= List.length cycle -> best
        | _ -> Some cycle))
    None links

let lint ?(anchors = []) dm =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (match Dmap.validate dm with
  | Ok () -> ()
  | Error e ->
    emit
      (D.make ~severity:D.Error ~pass ~code:"invalid-domain-map"
         ~location:D.Federation e));
  List.iter
    (fun (a : Index.anchor) ->
      if not (Dmap.mem dm a.Index.concept) then
        emit
          (D.make ~severity:D.Error ~pass ~code:"unknown-anchor-concept"
             ~location:(D.Concept a.Index.concept)
             (Printf.sprintf
                "source %s anchors class %s at %s, which is not a concept of \
                 the domain map"
                a.Index.source a.Index.cm_class a.Index.concept)
             ~hint:
               "the anchored data can never be selected; add the concept or \
                fix the anchor"))
    anchors;
  (match isa_cycle dm with
  | None -> ()
  | Some cycle ->
    let src = List.hd cycle in
    let dst = match cycle with _ :: d :: _ -> d | _ -> src in
    emit
      (D.make ~severity:D.Warning ~pass ~code:"isa-cycle"
         ~location:(D.Edge { src; dst; label = "isa" })
         (Printf.sprintf "isa edges form a cycle: %s"
            (String.concat " -> " cycle))
         ~hint:
           "all concepts on the cycle collapse into one; use eqv if \
            equivalence is intended"));
  (* conflicting/redundant edge combinations over the same node pair *)
  let edge_kinds = Hashtbl.create 16 in
  let pair_key a b = if String.compare a b <= 0 then a ^ "|" ^ b else b ^ "|" ^ a in
  List.iter
    (fun (e : Dmap.edge) ->
      let key = (pair_key e.Dmap.src e.Dmap.dst, e.Dmap.kind) in
      Hashtbl.replace edge_kinds key
        (1 + Option.value (Hashtbl.find_opt edge_kinds key) ~default:0))
    (Dmap.edges dm);
  let seen_pair = Hashtbl.create 16 in
  List.iter
    (fun (e : Dmap.edge) ->
      let pair = pair_key e.Dmap.src e.Dmap.dst in
      let count kind =
        Option.value (Hashtbl.find_opt edge_kinds (pair, kind)) ~default:0
      in
      if not (Hashtbl.mem seen_pair pair) then begin
        Hashtbl.add seen_pair pair ();
        if count e.Dmap.kind > 1 then
          emit
            (D.make ~severity:D.Warning ~pass ~code:"duplicate-edge"
               ~location:
                 (D.Edge { src = e.Dmap.src; dst = e.Dmap.dst; label = "" })
               (Printf.sprintf "%s and %s are connected by duplicate edges \
                                of the same kind"
                  e.Dmap.src e.Dmap.dst));
        if count Dmap.Eqv > 0 && count Dmap.Isa > 0 then
          emit
            (D.make ~severity:D.Warning ~pass ~code:"conflicting-eqv"
               ~location:
                 (D.Edge { src = e.Dmap.src; dst = e.Dmap.dst; label = "=" })
               (Printf.sprintf
                  "%s and %s are related by both eqv and isa; eqv already \
                   implies inclusion both ways"
                  e.Dmap.src e.Dmap.dst)
               ~hint:"keep one of the two edges")
      end)
    (Dmap.edges dm);
  List.iter
    (fun n ->
      match Dmap.kind_of dm n with
      | Some (Dmap.And_node | Dmap.Or_node) ->
        if List.length (Dmap.members dm n) = 1 then
          emit
            (D.make ~severity:D.Info ~pass ~code:"trivial-anon-node"
               ~location:(D.Concept n)
               (Printf.sprintf
                  "anonymous node %s has a single member — it reads the same \
                   as a plain isa edge"
                  n))
      | _ -> ())
    (Dmap.nodes dm);
  let anchored c =
    List.exists (fun (a : Index.anchor) -> String.equal a.Index.concept c) anchors
  in
  List.iter
    (fun c ->
      if
        Dmap.out_edges dm c = []
        && Dmap.in_edges dm c = []
        && not (anchored c)
      then
        emit
          (D.make ~severity:D.Info ~pass ~code:"isolated-concept"
             ~location:(D.Concept c)
             (Printf.sprintf
                "concept %s has no edges and no anchors; it can never select \
                 a source"
                c)))
    (Dmap.concepts dm);
  List.rev !diags
