(** Pass 3 — schema conformance.

    Checks a source's conceptual model, and rule sets written against
    it (semantic rules, IVDs), against the GCM [=>] declarations of
    Table 1: every method value some rule asserts or reads should be
    declared by a [C[M => D]] signature somewhere, every relation
    access must match a [relation(R, A1=C1, ...)] layout.

    Codes:
    - {b invalid-schema} (error): {!Gcm.Schema.validate} rejected the
      schema (duplicate classes/methods, reserved relation names, ...);
    - {b unknown-relation} / {b unknown-attribute} (error): a
      [R[a -> v]] molecule against a relation or attribute no signature
      declares — registration would raise [Compile_error] at
      materialization time;
    - {b undeclared-method} (warning): a [X[m ->> V]] molecule whose
      method name no class of the schema (or of the federation)
      declares with [=>];
    - {b unknown-class} (warning): an [X : c] molecule naming a class
      that is neither a schema class nor known to the caller (e.g. a
      domain-map concept);
    - {b dangling-method-range} (info): a [=>] range naming a class
      defined nowhere in the schema — legal (ranges may live in the
      domain map) but worth surfacing;
    - {b dangling-superclass} (info): same for a superclass name. *)

val rule_molecules : Flogic.Molecule.rule -> Flogic.Molecule.t list
(** Every molecule of a rule — heads, positive and negated body
    molecules, aggregate inner bodies. *)

val lint :
  ?known_class:(string -> bool) ->
  ?known_method:(string -> bool) ->
  Gcm.Schema.t ->
  Diagnostic.t list

val lint_rules :
  signature:Flogic.Signature.t ->
  known_class:(string -> bool) ->
  known_method:(string -> bool) ->
  ?source:string ->
  ?loc:(int -> Flogic.Molecule.rule -> Diagnostic.location) ->
  Flogic.Molecule.rule list ->
  Diagnostic.t list
(** Conformance of a molecule rule set (schema rules, IVDs) against an
    accumulated signature and class/method universe. [source] labels
    the diagnostics' location; a [loc] locator (taking precedence over
    [source]) attaches per-rule positions instead. *)
