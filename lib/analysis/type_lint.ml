module Rule = Logic.Rule
module D = Diagnostic

let pass = "types"

let default_loc i r =
  D.Rule { index = i; text = Rule.to_string r; pos = None }

let diag_of_verdict ~loc i r = function
  | Absint.Live -> []
  | Absint.Dead reason ->
    let code =
      match reason with
      | Absint.Disjoint_var _ | Absint.Foreign_const _ -> "empty-join"
      | Absint.Empty_pred _ | Absint.False_cmp _ -> "dead-rule"
    in
    [
      D.make ~severity:D.Warning ~pass ~code ~location:(loc i r)
        (Printf.sprintf "rule can never fire: %s"
           (Absint.describe_reason reason))
        ~hint:
          "the head stays unpopulated no matter what the sources push; \
           delete the rule or fix the join (the engine prunes it when \
           dead-rule pruning is on)";
    ]

let lint ?cones ?cap ?assume_nonempty ?edb ?(loc = default_loc) rules =
  match Absint.emptiness ?cones ?cap ?assume_nonempty ?edb rules with
  | { Absint.verdicts; _ } ->
    List.concat (List.mapi (fun i (r, v) -> diag_of_verdict ~loc i r v)
                   (List.combine rules verdicts))
  | exception Absint.Diverged -> []

(* Argument-domain report for tooling: the stable abstract row of each
   head predicate, rendered. *)
let domains ?cones ?cap ?assume_nonempty ?edb rules =
  match Absint.emptiness ?cones ?cap ?assume_nonempty ?edb rules with
  | { Absint.value_of; _ } ->
    List.sort_uniq String.compare (List.map Rule.head_pred rules)
    |> List.map (fun p ->
           (p, Format.asprintf "%a" Absint.pp_pred_dom (value_of p)))
  | exception Absint.Diverged -> []
