(** Pass 8 — complexity-hazard lint over the {!Card} cardinality/cost
    analysis.

    Four codes:
    - ["cross-product-join"] (warning): a rule whose chosen join order
      still contains a scan sharing no bound variable with the prefix —
      the step multiplies row counts instead of filtering.
    - ["unbounded-growth"] (warning): the boundedness check failed — a
      recursive rule synthesises fresh values (function symbols in the
      head, arithmetic or aggregation on a dependency cycle), so the
      head has no finite bound and only the engine's term-depth guard
      terminates it.
    - ["super-linear-blowup"] (warning): a non-recursive rule whose
      worst-case result is more than 4x the summed size of its inputs
      (and above a small floor) — the joins build a product.
    - ["over-budget"] (error, only when [budget] is given): the rule's
      estimated result exceeds the configured row budget, or has no
      finite bound at all — the reject-level hazard the mediator's
      registration policy uses for incoming IVDs. *)

val pass : string
(** ["cost"] *)

val default_loc : int -> Logic.Rule.t -> Diagnostic.location

type report = {
  diags : Diagnostic.t list;
  intervals : (string * Card.interval) list;
      (** per-predicate cardinality bounds, sorted *)
  costs : (Logic.Rule.t * Card.rule_cost) list;
      (** per-rule orders/estimates, in input order *)
}

val empty : report

val analyze :
  ?budget:int ->
  ?assume_nonempty:(string -> bool) ->
  ?seed:(string -> Card.interval option) ->
  ?edb:Datalog.Database.t ->
  ?loc:(int -> Logic.Rule.t -> Diagnostic.location) ->
  Logic.Rule.t list ->
  report
(** Diagnostics plus the underlying analysis (what [kindctl cost]
    renders). Returns {!empty} on {!Absint.Diverged}. [loc] maps a rule
    index to a source location (defaults to the rendered rule). *)

val lint :
  ?budget:int ->
  ?assume_nonempty:(string -> bool) ->
  ?seed:(string -> Card.interval option) ->
  ?edb:Datalog.Database.t ->
  ?loc:(int -> Logic.Rule.t -> Diagnostic.location) ->
  Logic.Rule.t list ->
  Diagnostic.t list
(** Just the diagnostics — the {!Kindlint} pass entry point. *)
