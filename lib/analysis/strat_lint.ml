module Stratify = Datalog.Stratify
module Program = Datalog.Program
module Rule = Logic.Rule
module D = Diagnostic

let pass = "stratification"

module SM = Map.Make (String)

(* Shortest path [from] -> [to_] over the dependency graph, as an edge
   list; BFS with parent-edge reconstruction. *)
let path edges ~src ~dst =
  let adj =
    List.fold_left
      (fun m (e : Stratify.edge) ->
        SM.update e.Stratify.from_pred
          (fun es -> Some (e :: Option.value es ~default:[]))
          m)
      SM.empty edges
  in
  if String.equal src dst then Some []
  else begin
    let parent : (string, Stratify.edge) Hashtbl.t = Hashtbl.create 16 in
    let queue = Queue.create () in
    Queue.add src queue;
    Hashtbl.add parent src { Stratify.from_pred = src; to_pred = src; nonmono = false };
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun (e : Stratify.edge) ->
          if (not !found) && not (Hashtbl.mem parent e.Stratify.to_pred) then begin
            Hashtbl.add parent e.Stratify.to_pred e;
            if String.equal e.Stratify.to_pred dst then found := true
            else Queue.add e.Stratify.to_pred queue
          end)
        (Option.value (SM.find_opt u adj) ~default:[])
    done;
    if not !found then None
    else begin
      let rec walk v acc =
        if String.equal v src then acc
        else
          let e = Hashtbl.find parent v in
          walk e.Stratify.from_pred (e :: acc)
      in
      Some (walk dst [])
    end
  end

let negative_cycle p =
  let edges = Stratify.dependency_edges p in
  let nonmono = List.filter (fun (e : Stratify.edge) -> e.Stratify.nonmono) edges in
  (* close each nonmonotonic edge u -¬-> v with a shortest path v ->* u;
     keep the shortest witness overall so the report stays readable *)
  List.fold_left
    (fun best (e : Stratify.edge) ->
      match path edges ~src:e.Stratify.to_pred ~dst:e.Stratify.from_pred with
      | None -> best
      | Some back ->
        let cycle = e :: back in
        (match best with
        | Some b when List.length b <= List.length cycle -> best
        | _ -> Some cycle))
    None nonmono

let pp_cycle ppf cycle =
  List.iteri
    (fun i (e : Stratify.edge) ->
      if i = 0 then Format.pp_print_string ppf e.Stratify.from_pred;
      Format.fprintf ppf " -%s-> %s"
        (if e.Stratify.nonmono then "¬" else "")
        e.Stratify.to_pred)
    cycle

let default_loc i r =
  D.Rule { index = i; text = Rule.to_string r; pos = None }

let lint ?(fallback_ok = true) ?(loc = default_loc) p =
  match negative_cycle p with
  | None -> []
  | Some cycle ->
    let first = List.hd cycle in
    let cycle_preds =
      List.map (fun (e : Stratify.edge) -> e.Stratify.from_pred) cycle
    in
    let on_cycle q = List.mem q cycle_preds in
    let cycle_edge (q, nonmono) =
      List.exists
        (fun (e : Stratify.edge) ->
          String.equal e.Stratify.to_pred q && e.Stratify.nonmono = nonmono)
        cycle
    in
    let head =
      D.make
        ~severity:(if fallback_ok then D.Warning else D.Error)
        ~pass ~code:"negative-cycle"
        ~location:
          (D.Edge
             {
               src = first.Stratify.from_pred;
               dst = first.Stratify.to_pred;
               label = "¬";
             })
        (Format.asprintf
           "predicates depend on themselves through negation/aggregation: %a"
           pp_cycle cycle)
        ~hint:
          (if fallback_ok then
             "the engine falls back to the well-founded semantics; \
              incremental maintenance and the result cache are disabled \
              for this program"
           else
             "break the cycle (move the negated predicate to a lower \
              stratum) or allow the well-founded fallback")
    in
    let rule_diags =
      List.concat
        (List.mapi
           (fun i (r : Rule.t) ->
             if
               on_cycle (Rule.head_pred r)
               && List.exists cycle_edge (Rule.body_predicates r)
             then
               [
                 D.make ~severity:D.Warning ~pass ~code:"unmaintainable-rule"
                   ~location:(loc i r)
                   (Format.asprintf
                      "this rule closes the nonmonotonic cycle %a; \
                       Datalog.Maintain refuses the program, so every \
                       update becomes a full rebuild"
                      pp_cycle cycle);
               ]
             else [])
           (Program.rules p))
    in
    head :: rule_diags
