(** Pass 7 — source provenance ({!Absint} at the molecule level).

    Computes, per derived predicate (class defined by an [Isa] head,
    relation, method or plain predicate), the set of registered sources
    whose data can transitively reach it: class constraints seed the
    sources anchored at the class (via the caller's [class_sources],
    backed by the semantic index at the mediator), qualified
    ['SRC.name'] references seed their own source, and the fixpoint
    closes the view-over-view graph. A [local] bit tracks predicates
    reachable only from mediator-local facts.

    Codes:
    - {b unknown-namespace}: a qualified reference whose prefix is not
      a registered source — error when [require_sources] (a federation
      must not reference unknown namespaces), warning for standalone
      programs;
    - {b no-source} (warning): a rule whose body can draw from no
      registered source. Standalone programs are only flagged when the
      rule references at least one qualified name (a plain local
      program is not a federation); with [require_sources], every
      sourceless view is flagged.

    The third IVD failure mode of the tentpole — sources reachable only
    through subgoals with no feasible binding pattern — composes this
    pass with {!Cap_lint}: see [Mediation.Lint.federation]. *)

type result = {
  predicates : (string * string list) list;
      (** derived predicate (head key) -> sorted source names *)
  rule_sources : string list list;  (** aligned with the input rules *)
  diags : Diagnostic.t list;
}

val analyze :
  ?require_sources:bool ->
  ?loc:(int -> Flogic.Molecule.rule -> Diagnostic.location) ->
  sources:string list ->
  ?class_sources:(string -> string list) ->
  Flogic.Molecule.rule list ->
  result

val query_diags :
  sources:string list ->
  ?label:string ->
  Flogic.Molecule.lit list ->
  Diagnostic.t list
(** Unknown-namespace references among one query's subgoals. *)

val split_qualified : string -> (string * string) option
(** ['SRC.name'] -> [(SRC, name)]. *)

val key_of : Flogic.Molecule.t -> string option
(** The provenance-graph key a molecule defines or reads. *)
