module Molecule = Flogic.Molecule
module Term = Logic.Term
module Literal = Logic.Literal
module D = Diagnostic

let lint_datalog ?signature ?known_predicates ?fallback_ok p =
  Rule_lint.lint ?signature ?known_predicates (Datalog.Program.rules p)
  @ Strat_lint.lint ?fallback_ok p

(* ------------------------------------------------------------------ *)
(* Molecule-level occurrence counting (multi-head aware) *)

let rec term_occs = function
  | Term.Var x -> [ x ]
  | Term.Const _ -> []
  | Term.App (_, ts) -> List.concat_map term_occs ts

let rec expr_occs = function
  | Literal.Leaf t -> term_occs t
  | Literal.Bin (_, e1, e2) -> expr_occs e1 @ expr_occs e2

let molecule_occs = function
  | Molecule.Isa (t1, t2)
  | Molecule.Sub (t1, t2)
  | Molecule.Meth_sig (t1, _, t2)
  | Molecule.Meth_val (t1, _, t2) -> term_occs t1 @ term_occs t2
  | Molecule.Rel_sig (_, avs) | Molecule.Rel_val (_, avs) ->
    List.concat_map (fun (_, t) -> term_occs t) avs
  | Molecule.Pred a -> List.concat_map term_occs a.Logic.Atom.args

let lit_occs = function
  | Molecule.Pos m | Molecule.Neg m -> molecule_occs m
  | Molecule.Cmp (_, t1, t2) -> term_occs t1 @ term_occs t2
  | Molecule.Assign (t, e) -> term_occs t @ expr_occs e
  | Molecule.Agg { target; group_by; result; body; _ } ->
    term_occs target
    @ List.concat_map term_occs group_by
    @ term_occs result
    @ List.concat_map molecule_occs body

let unused_diags i (r : Molecule.rule) =
  let occurrences =
    List.concat_map molecule_occs r.Molecule.heads
    @ List.concat_map lit_occs r.Molecule.body
  in
  let count x = List.length (List.filter (String.equal x) occurrences) in
  List.sort_uniq String.compare occurrences
  |> List.filter_map (fun x ->
         if String.length x > 0 && x.[0] = '_' then None
         else if count x = 1 then
           Some
             (D.make ~severity:D.Warning ~pass:"rules" ~code:"unused-variable"
                ~location:
                  (D.Rule { index = i; text = Molecule.rule_to_string r })
                (Printf.sprintf "variable %s occurs only once" x)
                ~hint:
                  (Printf.sprintf
                     "it joins nothing and is never projected; rename it to \
                      _%s if intentional"
                     x))
         else None)

(* Classes and methods the program itself declares, for conformance. *)
let declared_universe rules =
  let classes = ref [] and methods = ref [] in
  let add_class c = if not (List.mem c !classes) then classes := c :: !classes in
  let const_class = function
    | Term.Const (Term.Sym c) -> add_class c
    | _ -> ()
  in
  List.iter
    (fun r ->
      List.iter
        (fun m ->
          match m with
          | Molecule.Isa (_, c) -> const_class c
          | Molecule.Sub (c1, c2) ->
            const_class c1;
            const_class c2
          | Molecule.Meth_sig (c, meth, range) ->
            const_class c;
            const_class range;
            if not (List.mem meth !methods) then methods := meth :: !methods
          | _ -> ())
        (Schema_lint.rule_molecules r))
    rules;
  (!classes, !methods)

let lint_program ?(known_class = fun _ -> false)
    ?(known_method = fun _ -> false) ?known_predicates ?fallback_ok
    (p : Flogic.Fl_program.t) =
  let classes, methods = declared_universe p.Flogic.Fl_program.rules in
  let schema_diags =
    Schema_lint.lint_rules ~signature:p.Flogic.Fl_program.signature
      ~known_class:(fun c -> List.mem c classes || known_class c)
      ~known_method:(fun m -> List.mem m methods || known_method m)
      p.Flogic.Fl_program.rules
  in
  let unused =
    List.concat
      (List.mapi (fun i r -> unused_diags i r) p.Flogic.Fl_program.rules)
  in
  let compiled =
    try
      Ok
        (Flogic.Compile.rules p.Flogic.Fl_program.signature
           p.Flogic.Fl_program.rules)
    with Flogic.Compile.Compile_error e -> Error e
  in
  match compiled with
  | Error e ->
    schema_diags @ unused
    @ [
        D.make ~severity:D.Error ~pass:"rules" ~code:"compile-error"
          ~location:D.Federation e;
      ]
  | Ok dl_rules ->
    let rule_diags =
      Rule_lint.lint ~signature:p.Flogic.Fl_program.signature ?known_predicates
        ~check_unused:false dl_rules
    in
    let has_errors =
      List.exists (fun (d : D.t) -> d.D.severity = D.Error) rule_diags
    in
    let strat_diags =
      if has_errors then
        (* the full program will not compile; still report cycles over
           the rules that are individually fine *)
        let safe =
          List.filter (fun r -> Logic.Rule.safety_errors r = []) dl_rules
        in
        match Datalog.Program.make safe with
        | Ok p -> Strat_lint.lint ?fallback_ok p
        | Error _ -> []
      else
        match Flogic.Fl_program.compile p with
        | Ok dp -> Strat_lint.lint ?fallback_ok dp
        | Error e ->
          [
            D.make ~severity:D.Error ~pass:"rules" ~code:"compile-error"
              ~location:D.Federation e;
          ]
    in
    schema_diags @ unused @ rule_diags @ strat_diags
