module Molecule = Flogic.Molecule
module Term = Logic.Term
module Literal = Logic.Literal
module D = Diagnostic
module SS = Set.Make (String)

(* The open-world boundary for the emptiness analysis: declared
   relations and caller-known predicates are populated externally;
   reserved GCM predicates are open only when nothing in the program
   defines them (a compiled program carries the axioms, which close
   [isa] and friends over the program's own facts). *)
let open_predicate ?signature ?(known_predicates = []) rules =
  let sg = Option.value signature ~default:Flogic.Signature.empty in
  let defined =
    List.fold_left
      (fun acc r -> SS.add (Logic.Rule.head_pred r) acc)
      SS.empty rules
  in
  fun p ->
    Flogic.Signature.mem sg p
    || List.mem p known_predicates
    || (List.mem p Rule_lint.reserved_predicates && not (SS.mem p defined))

let lint_datalog ?signature ?known_predicates ?fallback_ok ?cones ?edb ?budget
    ?seed ?dm ?(gcm = true) p =
  let rules = Datalog.Program.rules p in
  let assume_nonempty = open_predicate ?signature ?known_predicates rules in
  D.normalize
    (Rule_lint.lint ?signature ?known_predicates rules
    @ Strat_lint.lint ?fallback_ok p
    @ Type_lint.lint ?cones ~assume_nonempty ?edb rules
    @ Cost_lint.lint ?budget ~assume_nonempty ?seed ?edb rules
    @ Contain_lint.lint ?dm ~gcm rules
    @ Term_lint.lint ?dm ~gcm rules)

(* ------------------------------------------------------------------ *)
(* Molecule-level occurrence counting (multi-head aware) *)

let rec term_occs = function
  | Term.Var x -> [ x ]
  | Term.Const _ -> []
  | Term.App (_, ts) -> List.concat_map term_occs ts

let rec expr_occs = function
  | Literal.Leaf t -> term_occs t
  | Literal.Bin (_, e1, e2) -> expr_occs e1 @ expr_occs e2

let molecule_occs = function
  | Molecule.Isa (t1, t2)
  | Molecule.Sub (t1, t2)
  | Molecule.Meth_sig (t1, _, t2)
  | Molecule.Meth_val (t1, _, t2) -> term_occs t1 @ term_occs t2
  | Molecule.Rel_sig (_, avs) | Molecule.Rel_val (_, avs) ->
    List.concat_map (fun (_, t) -> term_occs t) avs
  | Molecule.Pred a -> List.concat_map term_occs a.Logic.Atom.args

let lit_occs = function
  | Molecule.Pos m | Molecule.Neg m -> molecule_occs m
  | Molecule.Cmp (_, t1, t2) -> term_occs t1 @ term_occs t2
  | Molecule.Assign (t, e) -> term_occs t @ expr_occs e
  | Molecule.Agg { target; group_by; result; body; _ } ->
    term_occs target
    @ List.concat_map term_occs group_by
    @ term_occs result
    @ List.concat_map molecule_occs body

let unused_diags loc i (r : Molecule.rule) =
  let occurrences =
    List.concat_map molecule_occs r.Molecule.heads
    @ List.concat_map lit_occs r.Molecule.body
  in
  let count x = List.length (List.filter (String.equal x) occurrences) in
  List.sort_uniq String.compare occurrences
  |> List.filter_map (fun x ->
         if String.length x > 0 && x.[0] = '_' then None
         else if count x = 1 then
           Some
             (D.make ~severity:D.Warning ~pass:"rules" ~code:"unused-variable"
                ~location:(loc i r)
                (Printf.sprintf "variable %s occurs only once" x)
                ~hint:
                  (Printf.sprintf
                     "it joins nothing and is never projected; rename it to \
                      _%s if intentional"
                     x))
         else None)

(* Classes and methods the program itself declares, for conformance. *)
let declared_universe rules =
  let classes = ref [] and methods = ref [] in
  let add_class c = if not (List.mem c !classes) then classes := c :: !classes in
  let const_class = function
    | Term.Const (Term.Sym c) -> add_class c
    | _ -> ()
  in
  List.iter
    (fun r ->
      List.iter
        (fun m ->
          match m with
          | Molecule.Isa (_, c) -> const_class c
          | Molecule.Sub (c1, c2) ->
            const_class c1;
            const_class c2
          | Molecule.Meth_sig (c, meth, range) ->
            const_class c;
            const_class range;
            if not (List.mem meth !methods) then methods := meth :: !methods
          | _ -> ())
        (Schema_lint.rule_molecules r))
    rules;
  (!classes, !methods)

let lint_program ?(known_class = fun _ -> false)
    ?(known_method = fun _ -> false) ?known_predicates ?fallback_ok
    ?(positions = []) ?cones ?(sources = []) ?class_sources ?budget ?seed ?dm
    (p : Flogic.Fl_program.t) =
  let mol_pos i = List.nth_opt positions i in
  let mol_loc i r =
    D.Rule { index = i; text = Molecule.rule_to_string r; pos = mol_pos i }
  in
  let classes, methods = declared_universe p.Flogic.Fl_program.rules in
  let schema_diags =
    Schema_lint.lint_rules ~signature:p.Flogic.Fl_program.signature
      ~known_class:(fun c -> List.mem c classes || known_class c)
      ~known_method:(fun m -> List.mem m methods || known_method m)
      ~loc:mol_loc p.Flogic.Fl_program.rules
  in
  let unused =
    List.concat
      (List.mapi (fun i r -> unused_diags mol_loc i r) p.Flogic.Fl_program.rules)
  in
  let prov_diags =
    (Prov_lint.analyze ~sources ?class_sources ~loc:mol_loc
       p.Flogic.Fl_program.rules)
      .Prov_lint.diags
  in
  let compiled =
    try
      Ok
        (List.map
           (Flogic.Compile.rule p.Flogic.Fl_program.signature)
           p.Flogic.Fl_program.rules)
    with Flogic.Compile.Compile_error e -> Error e
  in
  match compiled with
  | Error e ->
    D.normalize
      (schema_diags @ unused @ prov_diags
      @ [
          D.make ~severity:D.Error ~pass:"rules" ~code:"compile-error"
            ~location:D.Federation e;
        ])
  | Ok per_molecule ->
    let dl_rules = List.concat per_molecule in
    (* each compiled rule inherits the source position of the molecule
       it came from; rendered text is the join key because both the
       stratifier and the type pass re-index rules *)
    let pos_of_rule = Hashtbl.create 16 in
    List.iteri
      (fun i rs ->
        match mol_pos i with
        | Some p ->
          List.iter
            (fun r -> Hashtbl.replace pos_of_rule (Logic.Rule.to_string r) p)
            rs
        | None -> ())
      per_molecule;
    let dl_loc i r =
      let text = Logic.Rule.to_string r in
      D.Rule { index = i; text; pos = Hashtbl.find_opt pos_of_rule text }
    in
    let rule_diags =
      Rule_lint.lint ~signature:p.Flogic.Fl_program.signature ?known_predicates
        ~check_unused:false ~loc:dl_loc dl_rules
    in
    let has_errors =
      List.exists (fun (d : D.t) -> d.D.severity = D.Error) rule_diags
    in
    (* The emptiness analysis wants the axioms in scope (they close
       [isa] and friends over the program's own facts), but only the
       user's rules are worth flagging — a program that never declares
       relations would otherwise light up the unused axioms. *)
    let user_rules =
      List.fold_left
        (fun acc r -> SS.add (Logic.Rule.to_string r) acc)
        SS.empty dl_rules
    in
    let only_user ds =
      List.filter
        (fun (d : D.t) ->
          match d.D.location with
          | D.Rule { text; _ } -> SS.mem text user_rules
          | _ -> true)
        ds
    in
    let type_diags dp =
      let rules = Datalog.Program.rules dp in
      only_user
        (Type_lint.lint ?cones
           ~assume_nonempty:
             (open_predicate ~signature:p.Flogic.Fl_program.signature
                ?known_predicates rules)
           ~loc:dl_loc rules)
    in
    (* pass 8 — cardinality/cost hazards, same scoping as the type pass:
       the axioms participate in the analysis but only user rules are
       flagged *)
    let cost_diags dp =
      let rules = Datalog.Program.rules dp in
      only_user
        (Cost_lint.lint ?budget
           ~assume_nonempty:
             (open_predicate ~signature:p.Flogic.Fl_program.signature
                ?known_predicates rules)
           ?seed ~loc:dl_loc rules)
    in
    (* passes 9 and 10 — semantic containment and skolem-safety; the
       axioms stay in scope (the chase and the position graph model
       them) but only user rules are flagged *)
    let contain_diags dp =
      let rules = Datalog.Program.rules dp in
      only_user
        (Contain_lint.lint ?dm ~loc:dl_loc rules
        @ Term_lint.lint ?dm ~loc:dl_loc rules)
    in
    let deep_diags =
      if has_errors then
        (* the full program will not compile; still report cycles and
           emptiness over the rules that are individually fine, with the
           axioms in scope *)
        let safe =
          Flogic.Gcm_axioms.core
          @ (if p.Flogic.Fl_program.inheritance then
               Flogic.Gcm_axioms.nonmonotonic_inheritance
             else [])
          @ List.filter (fun r -> Logic.Rule.safety_errors r = []) dl_rules
        in
        match Datalog.Program.make safe with
        | Ok p ->
          Strat_lint.lint ?fallback_ok ~loc:dl_loc p
          @ type_diags p @ cost_diags p @ contain_diags p
        | Error _ -> []
      else
        match Flogic.Fl_program.compile p with
        | Ok dp ->
          Strat_lint.lint ?fallback_ok ~loc:dl_loc dp
          @ type_diags dp @ cost_diags dp @ contain_diags dp
        | Error e ->
          [
            D.make ~severity:D.Error ~pass:"rules" ~code:"compile-error"
              ~location:D.Federation e;
          ]
    in
    D.normalize (schema_diags @ unused @ prov_diags @ rule_diags @ deep_diags)
