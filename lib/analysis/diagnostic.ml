type severity = Error | Warning | Info

type location =
  | Rule of { index : int; text : string; pos : (int * int) option }
  | Predicate of string
  | Edge of { src : string; dst : string; label : string }
  | Concept of string
  | Source of string
  | Query of string
  | Federation

type t = {
  severity : severity;
  pass : string;
  code : string;
  location : location;
  message : string;
  hint : string option;
}

let make ?hint ~severity ~pass ~code ~location message =
  { severity; pass; code; location; message; hint }

let severity_order = function Error -> 0 | Warning -> 1 | Info -> 2

let sort ds =
  List.stable_sort
    (fun a b ->
      let c = compare (severity_order a.severity) (severity_order b.severity) in
      if c <> 0 then c
      else
        let c = String.compare a.pass b.pass in
        if c <> 0 then c else String.compare a.code b.code)
    ds

(* Deterministic output order, independent of pass registration: by
   location first (so everything about one rule sits together), then
   pass, code, severity, message. [normalize] also drops exact
   duplicates — passes overlap (e.g. two passes may flag the same dead
   rule) and goldens should not depend on which one ran first. *)
let location_rank = function
  | Rule _ -> 0
  | Predicate _ -> 1
  | Edge _ -> 2
  | Concept _ -> 3
  | Source _ -> 4
  | Query _ -> 5
  | Federation -> 6

let location_compare a b =
  match (a, b) with
  | Rule r1, Rule r2 ->
    let c = compare r1.index r2.index in
    if c <> 0 then c
    else
      let c = compare r1.pos r2.pos in
      if c <> 0 then c else String.compare r1.text r2.text
  | Predicate p1, Predicate p2 -> String.compare p1 p2
  | Edge e1, Edge e2 ->
    let c = String.compare e1.src e2.src in
    if c <> 0 then c
    else
      let c = String.compare e1.dst e2.dst in
      if c <> 0 then c else String.compare e1.label e2.label
  | Concept c1, Concept c2 -> String.compare c1 c2
  | Source s1, Source s2 -> String.compare s1 s2
  | Query q1, Query q2 -> String.compare q1 q2
  | Federation, Federation -> 0
  | a, b -> compare (location_rank a) (location_rank b)

let normalize ds =
  let cmp a b =
    let c = location_compare a.location b.location in
    if c <> 0 then c
    else
      let c = String.compare a.pass b.pass in
      if c <> 0 then c
      else
        let c = String.compare a.code b.code in
        if c <> 0 then c
        else
          let c = compare (severity_order a.severity) (severity_order b.severity) in
          if c <> 0 then c
          else
            let c = String.compare a.message b.message in
            if c <> 0 then c else compare a.hint b.hint
  in
  let rec dedup = function
    | a :: b :: rest when a = b -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup (List.stable_sort cmp ds)

let errors = List.filter (fun d -> d.severity = Error)
let warnings = List.filter (fun d -> d.severity = Warning)
let count ds s = List.length (List.filter (fun d -> d.severity = s) ds)

let pp_severity ppf s =
  Format.pp_print_string ppf
    (match s with Error -> "error" | Warning -> "warning" | Info -> "info")

let pp_location ppf = function
  | Rule { index; text; pos = Some (line, col) } ->
    Format.fprintf ppf "line %d:%d, rule #%d `%s`" line col index text
  | Rule { index; text; pos = None } ->
    Format.fprintf ppf "rule #%d `%s`" index text
  | Predicate p -> Format.fprintf ppf "predicate %s" p
  | Edge { src; dst; label } ->
    Format.fprintf ppf "edge %s -%s-> %s" src label dst
  | Concept c -> Format.fprintf ppf "concept %s" c
  | Source s -> Format.fprintf ppf "source %s" s
  | Query q -> Format.fprintf ppf "query `%s`" q
  | Federation -> Format.pp_print_string ppf "federation"

let pp ppf d =
  Format.fprintf ppf "%a[%s] %a: %s" pp_severity d.severity d.code pp_location
    d.location d.message;
  match d.hint with
  | Some h -> Format.fprintf ppf "@.  hint: %s" h
  | None -> ()

let pp_report ppf ds =
  let ds = sort ds in
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) ds;
  Format.fprintf ppf "%d error(s), %d warning(s), %d info@." (count ds Error)
    (count ds Warning) (count ds Info)

(* ------------------------------------------------------------------ *)
(* JSON *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"

let location_json = function
  | Rule { index; text; pos } ->
    json_obj
      ([
         ("kind", json_string "rule");
         ("index", string_of_int index);
         ("rule", json_string text);
       ]
      @
      match pos with
      | Some (line, col) ->
        [ ("line", string_of_int line); ("col", string_of_int col) ]
      | None -> [])
  | Predicate p ->
    json_obj [ ("kind", json_string "predicate"); ("predicate", json_string p) ]
  | Edge { src; dst; label } ->
    json_obj
      [
        ("kind", json_string "edge");
        ("src", json_string src);
        ("dst", json_string dst);
        ("label", json_string label);
      ]
  | Concept c ->
    json_obj [ ("kind", json_string "concept"); ("concept", json_string c) ]
  | Source s ->
    json_obj [ ("kind", json_string "source"); ("source", json_string s) ]
  | Query q ->
    json_obj [ ("kind", json_string "query"); ("query", json_string q) ]
  | Federation -> json_obj [ ("kind", json_string "federation") ]

let to_json d =
  json_obj
    ([
       ("severity", json_string (Format.asprintf "%a" pp_severity d.severity));
       ("pass", json_string d.pass);
       ("code", json_string d.code);
       ("location", location_json d.location);
       ("message", json_string d.message);
     ]
    @ match d.hint with None -> [] | Some h -> [ ("hint", json_string h) ])

let list_to_json ds =
  "[" ^ String.concat ",\n " (List.map to_json (sort ds)) ^ "]"

(* ------------------------------------------------------------------ *)
(* SARIF 2.1.0 — one run, one result per diagnostic, rules collected
   as pass/code reportingDescriptors so CI annotation tools can group
   findings. Results carry the file URI of the group they were linted
   from (None for programmatic rule sets -> no physical location). *)

let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

let sarif_rule_id d = d.pass ^ "/" ^ d.code

let sarif_result uri d =
  let physical =
    match (uri, d.location) with
    | Some uri, Rule { pos; _ } ->
      let region =
        match pos with
        | Some (line, col) ->
          [
            ( "region",
              json_obj
                [
                  ("startLine", string_of_int line);
                  ("startColumn", string_of_int col);
                ] );
          ]
        | None -> []
      in
      [
        ( "locations",
          "["
          ^ json_obj
              [
                ( "physicalLocation",
                  json_obj
                    ([
                       ( "artifactLocation",
                         json_obj [ ("uri", json_string uri) ] );
                     ]
                    @ region) );
              ]
          ^ "]" );
      ]
    | _ -> []
  in
  json_obj
    ([
       ("ruleId", json_string (sarif_rule_id d));
       ("level", json_string (sarif_level d.severity));
       ( "message",
         json_obj
           [
             ( "text",
               json_string
                 (Format.asprintf "%a: %s%s" pp_location d.location d.message
                    (match d.hint with
                    | Some h -> " (hint: " ^ h ^ ")"
                    | None -> "")) );
           ] );
     ]
    @ physical)

let list_to_sarif groups =
  let all = List.concat_map snd groups in
  let rules =
    List.sort_uniq String.compare (List.map sarif_rule_id all)
    |> List.map (fun id -> json_obj [ ("id", json_string id) ])
  in
  let results =
    List.concat_map
      (fun (uri, ds) -> List.map (sarif_result uri) (sort ds))
      groups
  in
  json_obj
    [
      ( "$schema",
        json_string
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
      );
      ("version", json_string "2.1.0");
      ( "runs",
        "["
        ^ json_obj
            [
              ( "tool",
                json_obj
                  [
                    ( "driver",
                      json_obj
                        [
                          ("name", json_string "kindlint");
                          ("informationUri", json_string "");
                          ("rules", "[" ^ String.concat "," rules ^ "]");
                        ] );
                  ] );
              ("results", "[" ^ String.concat ",\n " results ^ "]");
            ]
        ^ "]" );
    ]
