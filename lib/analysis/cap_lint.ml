module Term = Logic.Term
module Literal = Logic.Literal
module Molecule = Flogic.Molecule
module Capability = Wrapper.Capability
module Source = Wrapper.Source
module Store = Wrapper.Store
module D = Diagnostic

let pass = "capability"

type source_info = {
  name : string;
  capabilities : Capability.t list;
  relations : (string * string list) list;
  classes : string list;
  relation_counts : (string * int) list;
  class_counts : (string * int) list;
}

let of_source src =
  let store = Source.store src in
  let sg = Store.signature store in
  {
    name = Source.name src;
    capabilities = Source.capabilities src;
    relations =
      List.map
        (fun r ->
          (r, Option.value (Flogic.Signature.attributes sg r) ~default:[]))
        (Flogic.Signature.relations sg);
    classes = Gcm.Schema.class_names (Source.schema src);
    (* registration metadata for the cardinality analysis: how many
       tuples/objects the store holds right now — trusted caps for the
       corresponding open predicates *)
    relation_counts =
      List.map (fun r -> (r, Store.tuple_count store ~rel:r)) (Store.relations store);
    class_counts =
      List.map (fun c -> (c, Store.object_count store ~cls:c)) (Store.classes store);
  }

(* mirror of Mediation.Namespace.split: 'SRC.name' *)
let split_qualified name =
  match String.index_opt name '.' with
  | Some i ->
    Some
      ( String.sub name 0 i,
        String.sub name (i + 1) (String.length name - i - 1) )
  | None -> None

let dm_predicates = [ "dm_isa"; "tc_isa"; "has_a_star" ]

(* ------------------------------------------------------------------ *)
(* The feasibility fixpoint *)

module SS = Set.Make (String)

type group = {
  gvar : string;
  cls : string;
  targets : (string * string) list;
  mutable methods : (string * Term.t) list;
}

type rel_access = {
  rsource : source_info;
  rel : string;
  fields : (string * Term.t) list;
  text : string;
}

let term_bound bound t =
  List.for_all (fun x -> SS.mem x bound) (Term.vars t)

let bind_term bound t =
  List.fold_left (fun acc x -> SS.add x acc) bound (Term.vars t)

let admits_access info ~rel ~attrs ~bound_attrs =
  let flags = List.map (fun a -> List.mem a bound_attrs) attrs in
  Capability.admits_pattern info.capabilities ~rel ~bound:flags

type stats = { source_subgoals : int; infeasible_subgoals : int }

let feasibility_stats ~sources ~class_targets ?label lits =
  let src_subgoals = ref 0 and infeasible = ref 0 in
  let query_text =
    match label with
    | Some l -> l
    | None ->
      String.concat ", "
        (List.map (fun l -> Format.asprintf "%a" Molecule.pp_lit l) lits)
  in
  let loc = D.Query query_text in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let groups : group list ref = ref [] in
  let rels : rel_access list ref = ref [] in
  let comparisons = ref [] in
  let dm_tests = ref [] in
  let find_group x = List.find_opt (fun g -> String.equal g.gvar x) !groups in
  let find_source s = List.find_opt (fun i -> String.equal i.name s) sources in
  let out_of_fragment l =
    emit
      (D.make ~severity:D.Info ~pass ~code:"unplannable-literal" ~location:loc
         (Format.asprintf
            "literal %a is outside the conjunctive planner's fragment"
            Molecule.pp_lit l)
         ~hint:
           "it answers only on the mediated object base (Mediator.query), \
            not through Conjunctive.run")
  in
  List.iter
    (fun lit ->
      match lit with
      | Molecule.Pos (Molecule.Isa (Term.Var x, Term.Const (Term.Sym c))) ->
        if find_group x <> None then
          emit
            (D.make ~severity:D.Error ~pass ~code:"ungrouped-method"
               ~location:loc
               (Printf.sprintf "variable %s has two class constraints" x))
        else begin
          incr src_subgoals;
          let targets = class_targets c in
          if targets = [] then begin
            incr infeasible;
            emit
              (D.make ~severity:D.Warning ~pass ~code:"no-covering-source"
                 ~location:loc
                 (Printf.sprintf
                    "no registered source covers %s; the subgoal %s : %s is \
                     vacuously empty"
                    c x c)
                 ~hint:
                   "register a source anchored at the concept, or fix the \
                    class name")
          end;
          groups := { gvar = x; cls = c; targets; methods = [] } :: !groups
        end
      | Molecule.Pos (Molecule.Meth_val (Term.Var x, m, t)) -> (
        match find_group x with
        | Some g -> g.methods <- g.methods @ [ (m, t) ]
        | None ->
          emit
            (D.make ~severity:D.Error ~pass ~code:"ungrouped-method"
               ~location:loc
               (Printf.sprintf
                  "method access %s[%s ->> _] has no preceding class \
                   constraint for %s"
                  x m x)
               ~hint:
                 (Printf.sprintf
                    "add `%s : some_class` before the method access" x)))
      | Molecule.Pos (Molecule.Rel_val (qrel, fields)) -> (
        match split_qualified qrel with
        | None ->
          out_of_fragment lit
        | Some (src_name, rel) -> (
          incr src_subgoals;
          match find_source src_name with
          | None ->
            incr infeasible;
            emit
              (D.make ~severity:D.Error ~pass ~code:"unknown-source"
                 ~location:loc
                 (Printf.sprintf
                    "relation access %s names a source that is not \
                     registered"
                    qrel))
          | Some info -> (
            let text = Format.asprintf "%a" Molecule.pp (Molecule.Rel_val (qrel, fields)) in
            match List.assoc_opt rel info.relations with
            | None ->
              incr infeasible;
              emit
                (D.make ~severity:D.Error ~pass ~code:"unknown-relation"
                   ~location:loc
                   (Printf.sprintf "source %s has no relation %s" src_name rel))
            | Some attrs ->
              List.iter
                (fun (a, _) ->
                  if not (List.mem a attrs) then
                    emit
                      (D.make ~severity:D.Error ~pass ~code:"unknown-attribute"
                         ~location:loc
                         (Printf.sprintf
                            "relation %s.%s has no attribute %s (layout: %s)"
                            src_name rel a (String.concat ", " attrs))))
                fields;
              rels := { rsource = info; rel; fields; text } :: !rels)))
      | Molecule.Cmp (op, t1, t2) -> comparisons := (op, t1, t2) :: !comparisons
      | Molecule.Pos (Molecule.Pred a)
        when List.mem a.Logic.Atom.pred dm_predicates ->
        dm_tests := a :: !dm_tests
      | l -> out_of_fragment l)
    lits;
  let groups = List.rev !groups and rels = List.rev !rels in
  let comparisons = List.rev !comparisons and dm_tests = List.rev !dm_tests in
  (* greedy fixpoint: executability is monotone in the bound set, so if
     this stalls no literal ordering exists *)
  let bound = ref SS.empty in
  let pending_groups = ref groups and pending_rels = ref rels in
  let pending_cmps = ref comparisons in
  (* domain-map tests bind both sides by enumeration *)
  List.iter
    (fun (a : Logic.Atom.t) ->
      List.iter
        (fun t -> bound := bind_term !bound t)
        a.Logic.Atom.args)
    dm_tests;
  let progress = ref true in
  while !progress do
    progress := false;
    pending_groups :=
      List.filter
        (fun g ->
          (* a group with a scannable target always executes (the
             planner degrades refused selections to scan-and-filter) *)
          let scannable =
            List.exists
              (fun (src_name, cls) ->
                match find_source src_name with
                | Some info -> Capability.can_scan_class info.capabilities cls
                | None -> false)
              g.targets
          in
          if g.targets = [] then false (* already reported: vacuous *)
          else if scannable then begin
            bound := SS.add g.gvar !bound;
            List.iter (fun (_, t) -> bound := bind_term !bound t) g.methods;
            progress := true;
            false
          end
          else begin
            incr infeasible;
            emit
              (D.make ~severity:D.Error ~pass ~code:"unscannable-class"
                 ~location:loc
                 (Printf.sprintf
                    "no covering source of %s : %s allows scanning its class \
                     (%s)"
                    g.gvar g.cls
                    (String.concat ", "
                       (List.map (fun (s, c) -> s ^ "." ^ c) g.targets)))
                 ~hint:
                   "declare Scan_class or Select_class for it; the planner \
                    silently returns no objects otherwise");
            false
          end)
        !pending_groups;
    pending_rels :=
      List.filter
        (fun r ->
          let attrs =
            match List.assoc_opt r.rel r.rsource.relations with
            | Some attrs -> attrs
            | None -> []
          in
          let bound_attrs =
            List.filter_map
              (fun (a, t) -> if term_bound !bound t then Some a else None)
              r.fields
          in
          if admits_access r.rsource ~rel:r.rel ~attrs ~bound_attrs then begin
            List.iter (fun (_, t) -> bound := bind_term !bound t) r.fields;
            progress := true;
            false
          end
          else true)
        !pending_rels;
    pending_cmps :=
      List.filter
        (fun (op, t1, t2) ->
          match op with
          | Literal.Eq when term_bound !bound t1 || term_bound !bound t2 ->
            bound := bind_term (bind_term !bound t1) t2;
            progress := true;
            false
          | Literal.Eq -> true
          | _ ->
            if term_bound !bound t1 && term_bound !bound t2 then begin
              (* pure test; executable once both sides are bound *)
              false
            end
            else true)
        !pending_cmps
  done;
  (* whatever is left admits no executable ordering *)
  List.iter
    (fun r ->
      incr infeasible;
      let attrs =
        match List.assoc_opt r.rel r.rsource.relations with
        | Some attrs -> attrs
        | None -> []
      in
      let free =
        List.filter_map
          (fun (a, t) -> if term_bound !bound t then None else Some a)
          r.fields
      in
      emit
        (D.make ~severity:D.Error ~pass ~code:"infeasible-access" ~location:loc
           (Printf.sprintf
              "no ordering of the query can execute %s: source %s declares \
               no capability admitting attribute(s) %s free, and nothing \
               else binds %s"
              r.text r.rsource.name
              (String.concat ", " free)
              (String.concat ", " free))
           ~hint:
             (Printf.sprintf
                "bind %s earlier in the query, or declare Scan_relation %s / \
                 a matching Bind_relation pattern (layout: %s)"
                (String.concat ", " free)
                r.rel
                (String.concat ", " attrs))))
    !pending_rels;
  List.iter
    (fun (op, t1, t2) ->
      emit
        (D.make ~severity:D.Warning ~pass ~code:"infeasible-comparison"
           ~location:loc
           (Format.asprintf
              "comparison %a %a %a can never evaluate: %s"
              Term.pp t1 Literal.pp_cmp op Term.pp t2
              (let free =
                 List.filter (fun x -> not (SS.mem x !bound))
                   (Term.vars t1 @ Term.vars t2)
               in
               "nothing binds " ^ String.concat ", " free))
           ~hint:"the planner silently drops all answers on unevaluable \
                  comparisons"))
    !pending_cmps;
  ( List.rev !diags,
    { source_subgoals = !src_subgoals; infeasible_subgoals = !infeasible } )

let feasibility ~sources ~class_targets ?label lits =
  fst (feasibility_stats ~sources ~class_targets ?label lits)

(* ------------------------------------------------------------------ *)
(* Template hygiene *)

let template_placeholders body =
  (* occurrences of $name in the template body *)
  let n = String.length body in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if body.[!i] = '$' then begin
      let j = ref (!i + 1) in
      while
        !j < n
        && (match body.[!j] with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
           | _ -> false)
      do
        incr j
      done;
      if !j > !i + 1 then out := String.sub body (!i + 1) (!j - !i - 1) :: !out;
      i := !j
    end
    else incr i
  done;
  List.sort_uniq String.compare !out

let lint_templates info =
  List.concat_map
    (fun cap ->
      match cap with
      | Capability.Template { name; params; body } ->
        let used = template_placeholders body in
        let loc = D.Source info.name in
        List.filter_map
          (fun p ->
            if List.mem p used then None
            else
              Some
                (D.make ~severity:D.Warning ~pass ~code:"unused-template-param"
                   ~location:loc
                   (Printf.sprintf "template %s declares $%s but never uses it"
                      name p)))
          params
        @ List.filter_map
            (fun u ->
              if List.mem u params then None
              else
                Some
                  (D.make ~severity:D.Warning ~pass
                     ~code:"unknown-template-param" ~location:loc
                     (Printf.sprintf
                        "template %s interpolates $%s, which is not a \
                         declared parameter"
                        name u)
                     ~hint:"the placeholder survives into the query text \
                            and will fail to parse"))
            used
      | _ -> [])
    info.capabilities
