(** Pass 5 — domain-map well-formedness.

    Structural checks on a {!Domain_map.Dmap.t} (Definition 1) and on
    the semantic-index anchors registered against it.

    Codes:
    - {b invalid-domain-map} (error): {!Domain_map.Dmap.validate}
      rejected the graph — a dangling edge endpoint or an anonymous
      [AND]/[OR] node without members;
    - {b unknown-anchor-concept} (error): a semantic-index anchor whose
      concept is not a node of the domain map — the source's data is
      unreachable from every query;
    - {b isa-cycle} (warning): a cycle through definite isa links
      (anonymous nodes resolved), printed as a concept path; the
      concepts on it are semantically equivalent, which is usually an
      authoring mistake — say [eqv] if equivalence is intended;
    - {b conflicting-eqv} (warning): a node pair related by both [eqv]
      and [isa] — equivalence already implies inclusion both ways;
    - {b duplicate-edge} (warning): the same pair connected twice by
      edges of the same kind;
    - {b trivial-anon-node} (info): an [AND]/[OR] node with a single
      member — the same reading as a plain isa edge;
    - {b isolated-concept} (info): a concept with no edges and no
      anchors; it can never select a source. *)

val isa_cycle : Domain_map.Dmap.t -> string list option
(** A shortest cycle through definite isa links, as the list of
    concepts on it (first element repeated at the end), or [None] if
    the isa reading is acyclic. *)

val lint :
  ?anchors:Domain_map.Index.anchor list ->
  Domain_map.Dmap.t ->
  Diagnostic.t list
