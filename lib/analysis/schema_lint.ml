module Molecule = Flogic.Molecule
module Signature = Flogic.Signature
module Term = Logic.Term
module D = Diagnostic

let pass = "schema"

(* Shared value classes: method ranges that denote literals rather than
   schema or domain-map membership (the paper's [string], [number]). *)
let value_classes =
  [ "string"; "number"; "integer"; "float"; "boolean"; "symbol" ]

(* Molecules of a rule, heads and bodies alike, with aggregate inner
   bodies flattened. *)
let rule_molecules (r : Molecule.rule) =
  let of_lit = function
    | Molecule.Pos m | Molecule.Neg m -> [ m ]
    | Molecule.Agg { body; _ } -> body
    | Molecule.Cmp _ | Molecule.Assign _ -> []
  in
  r.Molecule.heads @ List.concat_map of_lit r.Molecule.body

let rule_loc ?source i r =
  match source with
  | Some s -> D.Source s
  | None ->
    D.Rule { index = i; text = Molecule.rule_to_string r; pos = None }

let lint_rules ~signature ~known_class ~known_method ?source ?loc rules =
  let locate =
    match loc with Some f -> f | None -> fun i r -> rule_loc ?source i r
  in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let reported = Hashtbl.create 8 in
  let once key f =
    if not (Hashtbl.mem reported key) then begin
      Hashtbl.add reported key ();
      f ()
    end
  in
  List.iteri
    (fun i r ->
      let loc = locate i r in
      List.iter
        (fun m ->
          match m with
          | Molecule.Meth_val (_, meth, _) ->
            if not (known_method meth) then
              once ("m" ^ meth) (fun () ->
                  emit
                    (D.make ~severity:D.Warning ~pass ~code:"undeclared-method"
                       ~location:loc
                       (Printf.sprintf
                          "method %s carries values but no class declares \
                           [%s => _]"
                          meth meth)
                       ~hint:
                         "declare it with a method signature so schema \
                          conformance can be checked"))
          | Molecule.Isa (_, Term.Const (Term.Sym c)) ->
            (* the distinguished inconsistency class is always known *)
            if
              (not (String.equal c Flogic.Compile.ic_class))
              && not (known_class c)
            then
              once ("c" ^ c) (fun () ->
                  emit
                    (D.make ~severity:D.Warning ~pass ~code:"unknown-class"
                       ~location:loc
                       (Printf.sprintf
                          "%s is neither a declared class nor a domain-map \
                           concept"
                          c)))
          | Molecule.Rel_val (rel, avs) -> (
            match Signature.attributes signature rel with
            | None ->
              once ("r" ^ rel) (fun () ->
                  emit
                    (D.make ~severity:D.Error ~pass ~code:"unknown-relation"
                       ~location:loc
                       (Printf.sprintf
                          "relation %s is not declared in any signature" rel)
                       ~hint:"declare it with @relation or a Rel_sig molecule"))
            | Some attrs ->
              List.iter
                (fun (a, _) ->
                  if not (List.mem a attrs) then
                    once ("a" ^ rel ^ "." ^ a) (fun () ->
                        emit
                          (D.make ~severity:D.Error ~pass
                             ~code:"unknown-attribute" ~location:loc
                             (Printf.sprintf
                                "relation %s has no attribute %s (layout: %s)"
                                rel a
                                (String.concat ", " attrs)))))
                avs)
          | _ -> ())
        (rule_molecules r))
    rules;
  List.rev !diags

let lint ?(known_class = fun _ -> false) ?(known_method = fun _ -> false)
    (schema : Gcm.Schema.t) =
  let known_class c = List.mem c value_classes || known_class c in
  let sname = schema.Gcm.Schema.name in
  let loc = D.Source sname in
  let validity =
    match Gcm.Schema.validate schema with
    | Ok () -> []
    | Error e ->
      [ D.make ~severity:D.Error ~pass ~code:"invalid-schema" ~location:loc e ]
  in
  let class_names = Gcm.Schema.class_names schema in
  let local_class c = List.mem c class_names in
  let local_methods =
    List.concat_map
      (fun (c : Gcm.Schema.class_def) -> List.map fst c.Gcm.Schema.methods)
      schema.Gcm.Schema.classes
  in
  (* method signatures asserted by the schema's own rules also count as
     declarations *)
  let rule_declared_methods =
    List.concat_map
      (fun r ->
        List.filter_map
          (function Molecule.Meth_sig (_, m, _) -> Some m | _ -> None)
          (rule_molecules r))
      schema.Gcm.Schema.rules
  in
  let method_known m =
    List.mem m local_methods || List.mem m rule_declared_methods
    || known_method m
  in
  let dangling =
    List.concat_map
      (fun (c : Gcm.Schema.class_def) ->
        List.filter_map
          (fun sup ->
            if local_class sup || known_class sup then None
            else
              Some
                (D.make ~severity:D.Info ~pass ~code:"dangling-superclass"
                   ~location:loc
                   (Printf.sprintf
                      "class %s extends %s, which the schema does not define"
                      c.Gcm.Schema.cname sup)))
          c.Gcm.Schema.supers
        @ List.filter_map
            (fun (m, range) ->
              if local_class range || known_class range then None
              else
                Some
                  (D.make ~severity:D.Info ~pass ~code:"dangling-method-range"
                     ~location:loc
                     (Printf.sprintf
                        "method %s.%s ranges over %s, which the schema does \
                         not define"
                        c.Gcm.Schema.cname m range)))
            c.Gcm.Schema.methods)
      schema.Gcm.Schema.classes
  in
  let rules_diags =
    lint_rules
      ~signature:(Gcm.Schema.signature schema)
      ~known_class:(fun c -> local_class c || known_class c)
      ~known_method:method_known ~source:sname schema.Gcm.Schema.rules
  in
  validity @ dangling @ rules_diags
