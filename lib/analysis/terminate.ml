(* Skolem-safety: does the bottom-up fixpoint terminate despite value
   invention?

   Assertion-mode domain-map edges and DL translations place function
   terms (skolem placeholders like [f_C_r_D(X)]) in rule heads, so the
   Herbrand base is infinite and the usual "finitely many facts"
   argument fails. The classical criterion is *weak acyclicity* of the
   position dependency graph: nodes are predicate argument positions;
   a variable flowing from a body position to a head position adds an
   ordinary edge, and a variable flowing *into a function term* adds a
   special edge labeled with its innermost wrapping functor. If no
   cycle passes through a special edge, every derived term has bounded
   depth and the fixpoint is finite.

   Two refinements adapt the textbook construction to this engine:

   - GCM-aware position specialization. The closure axiom
     [isa(X,C2) :- isa(X,C1), sub(C1,C2)] read naively collapses every
     class into one [isa] position and flags any recursive assertion
     program. When every [isa]-head carries a constant class (checked;
     violations fall back to the generic graph), the instance position
     is split per class ([isa@c]) and the propagation axiom is modeled
     exactly by static edges [isa@c -> isa@d] for the
     statically-derivable subsumption pairs. The
     {!Flogic.Gcm_axioms.core} rules themselves are skipped (their
     flows are modeled: declared/closed predicates are canonicalized
     to one name, reflexivity/transitivity/classhood contribute the
     fixed ordinary edges below).

   - A super-weak-acyclicity-style refinement on the functor graph.
     When a special cycle exists, termination can still hold if the
     invented values never feed a growing *chain* of functors: build
     the graph over function symbols with an edge [f -> k] whenever a
     position receiving f-terms reaches a position feeding a k-special
     edge — following only ordinary flows whose variable is not
     guarded against f-prefixed terms ([builtin:is_const] /
     [builtin:not_functor_prefix] guards, the idiom the DL translation
     uses to stop skolem chains) — plus a static edge [g -> f] for
     each nesting [f(..g(..)..)] in a head. If that graph is acyclic,
     functor nesting depth is bounded and the program is accepted.

   Arithmetic ([Y is X+1]) and aggregate results are treated as
   pseudo-functors (["<arith>"], ["<agg>"]) so counting loops are
   flagged too; stratification already rules out aggregate recursion,
   so ["<agg>"] edges never close a cycle in accepted programs. *)

module Term = Logic.Term
module Atom = Logic.Atom
module Literal = Logic.Literal
module Rule = Logic.Rule
module SS = Set.Make (String)
module SM = Map.Make (String)

let isa_p = Flogic.Compile.isa_p
let sub_p = Flogic.Compile.sub_p
let meth_sig_p = Flogic.Compile.meth_sig_p
let class_p = Flogic.Compile.class_p

let arith_f = "<arith>"
let agg_f = "<agg>"

type guard = Gconst | Gnot_prefix of string

type edge = {
  src : string;
  dst : string;
  func : string option; (* [Some f]: special edge, innermost functor [f] *)
  guards : guard list; (* guards on the flowing variable *)
  rule : int; (* original rule index; -1 for axiom-modeled edges *)
}

type cycle = {
  positions : string list; (* the position cycle, first = last omitted *)
  functors : string list; (* functors of the special edges on it *)
  rules : int list; (* contributing rule indices, sorted *)
}

type verdict = Safe of { refined : bool } | Unsafe of cycle

(* ------------------------------------------------------------------ *)

let canonical =
  let tbl =
    List.map
      (fun p -> (Flogic.Compile.declared p, p))
      [ isa_p; sub_p; meth_sig_p; Flogic.Compile.meth_val_p; class_p ]
  in
  fun p -> Option.value (List.assoc_opt p tbl) ~default:p

let canon_atom (a : Atom.t) = { a with Atom.pred = canonical a.Atom.pred }

let canon_rule (r : Rule.t) =
  {
    Rule.head = canon_atom r.Rule.head;
    body =
      List.map
        (function
          | Literal.Pos a -> Literal.Pos (canon_atom a)
          | Literal.Neg a -> Literal.Neg (canon_atom a)
          | l -> l)
        r.Rule.body;
  }

let is_sym = function Term.Const (Term.Sym _) -> true | _ -> false
let sym_of = function Term.Const (Term.Sym s) -> Some s | _ -> None

(* positions are strings: "pred#i", or "isa@c" for the class-split
   instance position *)
let gpos p j = Printf.sprintf "%s#%d" p j
let cpos c = isa_p ^ "@" ^ c

(* ------------------------------------------------------------------ *)
(* Head-term variable flows: each variable with its innermost wrapping
   functor (None at top level), plus direct (inner, outer) functor
   nestings for the static functor-graph edges. *)

let head_var_flows t =
  let flows = ref [] and nest = ref [] in
  let rec go wrapper t =
    match t with
    | Term.Var x -> flows := (x, wrapper) :: !flows
    | Term.Const _ -> ()
    | Term.App (f, args) ->
      (match wrapper with Some w -> nest := (f, w) :: !nest | None -> ());
      List.iter (go (Some f)) args
  in
  go None t;
  (!flows, !nest)

let rec expr_vars = function
  | Literal.Leaf t -> Term.vars t
  | Literal.Bin (_, a, b) -> expr_vars a @ expr_vars b

(* ------------------------------------------------------------------ *)

let union_find m x =
  match SM.find_opt x m with Some s -> s | None -> SS.empty

let add_src m x node =
  SM.update x
    (function None -> Some (SS.singleton node) | Some s -> Some (SS.add node s))
    m

(* source position nodes contributed by one argument position of a
   positive body atom *)
let arg_nodes ~specialized ~classes p j args =
  if specialized && String.equal p isa_p then
    if j = 0 then
      match List.nth_opt args 1 with
      | Some (Term.Const (Term.Sym c)) -> [ cpos c ]
      | _ -> List.map cpos (SS.elements classes)
    else [] (* class position: values drawn from the finite class set *)
  else [ gpos p j ]

let atom_sources ~specialized ~classes (a : Atom.t) m =
  List.fold_left
    (fun (m, j) t ->
      let nodes = arg_nodes ~specialized ~classes a.Atom.pred j a.Atom.args in
      let m =
        List.fold_left
          (fun m x -> List.fold_left (fun m n -> add_src m x n) m nodes)
          m (Term.vars t)
      in
      (m, j + 1))
    (m, 0) a.Atom.args
  |> fst

let analyze ?(gcm = true) ?(extra_sub = []) (rules : Rule.t list) =
  let indexed = List.mapi (fun i r -> (i, r)) rules in
  let user =
    if gcm then
      List.filter
        (fun (_, r) ->
          not (List.exists (Rule.equal r) Flogic.Gcm_axioms.core))
        indexed
    else indexed
  in
  let user =
    List.map (fun (i, r) -> (i, canon_rule (Contain.resolve_eqs r))) user
  in
  (* class-safety: every isa head names its class, every sub head is a
     ground symbol pair — otherwise the class-split graph could miss
     flows and we fall back to generic positions *)
  let head_ok (r : Rule.t) =
    let h = r.Rule.head in
    if String.equal h.Atom.pred isa_p then
      match h.Atom.args with [ _; c ] -> is_sym c | _ -> false
    else if String.equal h.Atom.pred sub_p then
      List.for_all is_sym h.Atom.args
    else true
  in
  let specialized = gcm && List.for_all (fun (_, r) -> head_ok r) user in
  (* the statically-derivable subsumption pairs (over-approximation:
     conditional sub heads count unconditionally) and the class
     universe *)
  let harvested =
    List.filter_map
      (fun (_, (r : Rule.t)) ->
        let h = r.Rule.head in
        if String.equal h.Atom.pred sub_p then
          match h.Atom.args with
          | [ c; d ] -> (
            match (sym_of c, sym_of d) with
            | Some c, Some d when not (String.equal c d) -> Some (c, d)
            | _ -> None)
          | _ -> None
        else None)
      user
  in
  let static_sub = Domain_map.Closure.tc (harvested @ extra_sub) in
  let classes =
    let add_atom acc (a : Atom.t) =
      if String.equal a.Atom.pred isa_p then
        match a.Atom.args with
        | [ _; c ] -> (
          match sym_of c with Some c -> SS.add c acc | None -> acc)
        | _ -> acc
      else if
        String.equal a.Atom.pred sub_p || String.equal a.Atom.pred class_p
      then
        List.fold_left
          (fun acc t ->
            match sym_of t with Some c -> SS.add c acc | None -> acc)
          acc a.Atom.args
      else acc
    in
    List.fold_left
      (fun acc (_, (r : Rule.t)) ->
        let acc = add_atom acc r.Rule.head in
        List.fold_left
          (fun acc l ->
            match l with
            | Literal.Pos a | Literal.Neg a -> add_atom acc a
            | _ -> acc)
          acc r.Rule.body)
      SS.empty user
    |> fun s ->
    List.fold_left (fun s (c, d) -> SS.add c (SS.add d s)) s static_sub
  in
  let edges = ref [] in
  let nestings = ref [] in
  let add_edge src dst func guards rule =
    edges := { src; dst; func; guards; rule } :: !edges
  in
  (* per-rule variable flows *)
  List.iter
    (fun (i, (r : Rule.t)) ->
      let srcs = ref SM.empty in
      let guards = ref SM.empty in
      let add_guard x g =
        guards :=
          SM.update x
            (function None -> Some [ g ] | Some gs -> Some (g :: gs))
            !guards
      in
      let agg_vars = ref SS.empty and arith_vars = ref SS.empty in
      List.iter
        (function
          | Literal.Pos a when not (Literal.is_builtin a.Atom.pred) ->
            srcs := atom_sources ~specialized ~classes a !srcs
          | Literal.Pos { Atom.pred; args } -> (
            (* structural builtins act as guards on skolem flows *)
            match (pred, args) with
            | "builtin:is_const", [ Term.Var x ] -> add_guard x Gconst
            | "builtin:not_functor_prefix", [ Term.Var x; p ] -> (
              match Term.as_string p with
              | Some pfx -> add_guard x (Gnot_prefix pfx)
              | None -> ())
            | _ -> ())
          | Literal.Agg a ->
            List.iter
              (fun inner -> srcs := atom_sources ~specialized ~classes inner !srcs)
              a.Literal.body
          | _ -> ())
        r.Rule.body;
      (* assignment chains: result variables carry arithmetic growth *)
      let assigns =
        List.filter_map
          (function
            | Literal.Assign (Term.Var v, e) -> Some (v, expr_vars e)
            | _ -> None)
          r.Rule.body
      in
      List.iter
        (fun _ ->
          List.iter
            (fun (v, ys) ->
              arith_vars := SS.add v !arith_vars;
              List.iter
                (fun y ->
                  srcs :=
                    SS.fold (fun n m -> add_src m v n) (union_find !srcs y)
                      !srcs)
                ys)
            assigns)
        assigns;
      (* aggregate results *)
      List.iter
        (function
          | Literal.Agg a -> (
            match a.Literal.result with
            | Term.Var v ->
              agg_vars := SS.add v !agg_vars;
              List.iter
                (fun y ->
                  srcs :=
                    SS.fold (fun n m -> add_src m v n) (union_find !srcs y)
                      !srcs)
                (Term.vars a.Literal.target
                @ List.concat_map Term.vars a.Literal.group_by)
            | _ -> ())
          | _ -> ())
        r.Rule.body;
      (* head flows *)
      let h = r.Rule.head in
      List.iteri
        (fun j t ->
          let dsts = arg_nodes ~specialized ~classes h.Atom.pred j h.Atom.args in
          let flows, nests = head_var_flows t in
          nestings := nests @ !nestings;
          List.iter
            (fun (x, wrapper) ->
              let pseudo =
                if SS.mem x !arith_vars then Some arith_f
                else if SS.mem x !agg_vars then Some agg_f
                else None
              in
              let func =
                match wrapper with Some f -> Some f | None -> pseudo
              in
              (match (pseudo, wrapper) with
              | Some p, Some f -> nestings := (p, f) :: !nestings
              | _ -> ());
              let gs =
                Option.value (SM.find_opt x !guards) ~default:[]
              in
              SS.iter
                (fun s -> List.iter (fun d -> add_edge s d func gs i) dsts)
                (union_find !srcs x))
            flows)
        h.Atom.args)
    user;
  (* modeled flows of the skipped GCM axioms *)
  if gcm then begin
    if specialized then
      List.iter
        (fun (c, d) -> add_edge (cpos c) (cpos d) None [] (-1))
        static_sub
    else begin
      add_edge (gpos isa_p 0) (gpos isa_p 0) None [] (-1);
      add_edge (gpos sub_p 1) (gpos isa_p 1) None [] (-1);
      add_edge (gpos isa_p 1) (gpos class_p 0) None [] (-1)
    end;
    List.iter
      (fun (s, d) -> add_edge s d None [] (-1))
      [
        (gpos class_p 0, gpos sub_p 0); (* sub reflexivity *)
        (gpos class_p 0, gpos sub_p 1);
        (gpos sub_p 0, gpos class_p 0); (* classhood *)
        (gpos sub_p 1, gpos class_p 0);
        (gpos meth_sig_p 0, gpos class_p 0);
        (gpos sub_p 0, gpos meth_sig_p 0) (* signature inheritance *);
      ]
  end;
  let edges = !edges in
  (* --------------------------------------------------------------- *)
  (* weak acyclicity: no special edge inside a strongly connected
     component *)
  let nodes =
    List.fold_left (fun s e -> SS.add e.src (SS.add e.dst s)) SS.empty edges
  in
  let succs =
    List.fold_left
      (fun m e ->
        SM.update e.src
          (function None -> Some [ e ] | Some es -> Some (e :: es))
          m)
      SM.empty edges
  in
  let succ_edges n = Option.value (SM.find_opt n succs) ~default:[] in
  (* Tarjan *)
  let comp = Hashtbl.create 64 in
  let index = Hashtbl.create 64 in
  let low = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 and comp_counter = ref 0 in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun e ->
        let w = e.dst in
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w && Hashtbl.find on_stack w then
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (succ_edges v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let id = !comp_counter in
      incr comp_counter;
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          Hashtbl.replace comp w id;
          if not (String.equal w v) then pop ()
      in
      pop ()
    end
  in
  SS.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  let same_scc a b =
    match (Hashtbl.find_opt comp a, Hashtbl.find_opt comp b) with
    | Some x, Some y -> x = y
    | _ -> false
  in
  let violations =
    List.filter (fun e -> e.func <> None && same_scc e.src e.dst) edges
  in
  if violations = [] then Safe { refined = false }
  else begin
    (* ------------------------------------------------------------- *)
    (* functor-graph refinement *)
    let special = List.filter (fun e -> e.func <> None) edges in
    let functors =
      List.fold_left
        (fun s e -> match e.func with Some f -> SS.add f s | None -> s)
        SS.empty special
      |> fun s ->
      List.fold_left (fun s (g, f) -> SS.add g (SS.add f s)) s !nestings
    in
    let blocks g f =
      if String.equal f arith_f || String.equal f agg_f then false
      else
        match g with
        | Gconst -> true
        | Gnot_prefix p ->
          String.length p <= String.length f
          && String.equal (String.sub f 0 (String.length p)) p
    in
    (* positions reachable from f-term destinations along ordinary
       edges whose variable may carry an f-term *)
    let reach_from f starts =
      let seen = ref (SS.of_list starts) in
      let frontier = ref starts in
      while !frontier <> [] do
        let next =
          List.concat_map
            (fun n ->
              List.filter_map
                (fun e ->
                  if
                    e.func = None
                    && (not (List.exists (fun g -> blocks g f) e.guards))
                    && not (SS.mem e.dst !seen)
                  then Some e.dst
                  else None)
                (succ_edges n))
            !frontier
        in
        List.iter (fun n -> seen := SS.add n !seen) next;
        frontier := next
      done;
      !seen
    in
    (* an f-term feeds the creation of a k-term iff it reaches the
       source position of some k-special edge AND survives that edge's
       own guards on the flowing variable (an [is_const]-guarded rule
       never consumes a function term, whatever reaches it) *)
    let feeds f k r =
      List.exists
        (fun e ->
          e.func = Some k
          && SS.mem e.src r
          && not (List.exists (fun g -> blocks g f) e.guards))
        special
    in
    let fedges =
      SS.fold
        (fun f acc ->
          let dests =
            List.filter_map
              (fun e -> if e.func = Some f then Some e.dst else None)
              special
          in
          if dests = [] then acc
          else
            let r = reach_from f dests in
            SS.fold
              (fun k acc -> if feeds f k r then (f, k) :: acc else acc)
              functors acc)
        functors []
      @ !nestings
    in
    (* cycle in the functor graph? *)
    let fsucc f =
      List.filter_map
        (fun (a, b) -> if String.equal a f then Some b else None)
        fedges
    in
    let cyclic =
      let color = Hashtbl.create 8 in
      let rec visit f =
        match Hashtbl.find_opt color f with
        | Some 1 -> true (* grey: back edge *)
        | Some _ -> false
        | None ->
          Hashtbl.replace color f 1;
          let c = List.exists visit (fsucc f) in
          Hashtbl.replace color f 2;
          c
      in
      SS.exists visit functors
    in
    if not cyclic then Safe { refined = true }
    else begin
      (* diagnostic: shortest cycle through the first violating special
         edge, found by BFS from its destination back to its source
         inside the component *)
      let e0 = List.hd violations in
      let parent = Hashtbl.create 16 in
      let seen = ref (SS.singleton e0.dst) in
      let frontier = ref [ e0.dst ] in
      let found = ref (String.equal e0.dst e0.src) in
      while (not !found) && !frontier <> [] do
        let next =
          List.concat_map
            (fun n ->
              List.filter_map
                (fun e ->
                  if
                    same_scc e.dst e0.src
                    && not (SS.mem e.dst !seen)
                  then begin
                    Hashtbl.replace parent e.dst (n, e);
                    Some e.dst
                  end
                  else None)
                (succ_edges n))
            !frontier
        in
        List.iter (fun n -> seen := SS.add n !seen) next;
        if List.exists (String.equal e0.src) next then found := true;
        frontier := next
      done;
      let rec path n acc edges_acc =
        if String.equal n e0.dst then (n :: acc, edges_acc)
        else
          match Hashtbl.find_opt parent n with
          | Some (p, e) -> path p (n :: acc) (e :: edges_acc)
          | None -> (n :: acc, edges_acc)
      in
      let back, path_edges =
        if String.equal e0.dst e0.src then ([ e0.dst ], [])
        else path e0.src [] []
      in
      let positions = e0.src :: (if back = [ e0.src ] then [] else back) in
      let positions =
        (* drop a trailing repeat of the start *)
        match List.rev positions with
        | last :: _ when String.equal last e0.src && List.length positions > 1
          ->
          List.rev (List.tl (List.rev positions))
        | _ -> positions
      in
      let cyc_edges = e0 :: path_edges in
      let functors =
        List.filter_map (fun e -> e.func) cyc_edges
        |> List.sort_uniq String.compare
      in
      let rules =
        List.filter_map
          (fun e -> if e.rule >= 0 then Some e.rule else None)
          cyc_edges
        |> List.sort_uniq compare
      in
      Unsafe { positions; functors; rules }
    end
  end

let cycle_to_string c =
  Printf.sprintf "%s -> %s [functors: %s]"
    (String.concat " -> " c.positions)
    (match c.positions with p :: _ -> p | [] -> "")
    (String.concat ", " c.functors)
