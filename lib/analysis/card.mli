(** Cardinality/cost abstract interpretation.

    One more instantiation of the {!Absint.Make} worklist fixpoint over
    the predicate dependency graph: where {!Absint.emptiness} tracks
    {e which values} can reach a column, this pass tracks {e how many}
    — a per-predicate cardinality interval, a per-column bound on
    distinct values, and single-column key flags — seeded from
    in-program facts, an optional EDB, and caller-supplied caps (store
    fact counts, capability templates, domain-map cone sizes).

    Soundness contract: for every predicate, [card] contains the true
    extent of the least (or well-founded) model of the analyzed rules
    over the seeded base facts — negation, comparisons and assignments
    are treated as filters (never shrink an estimate below what the
    positive part allows... i.e. never contribute a factor < 1 is not
    needed for an {e upper} bound: they contribute factor 1), aggregates
    are bounded by the product of their inner extents, and recursive
    rules that synthesise fresh values (function symbols in the head,
    arithmetic, aggregation on a cycle) get an unbounded interval
    rather than a guess. Finite bounds saturate (they stay finite and
    sound); widening snaps growing bounds to powers of two only for
    predicates on dependency cycles, so DAG programs keep exact counts.

    On top of the intervals, the same per-rule walk runs a
    selectivity-based join-cost model producing literal orderings — the
    {!oracle} the engine's planner consumes
    ({!Datalog.Engine.config}[.cost_oracle]) — and the raw material for
    the {!Cost_lint} diagnostics pass. *)

exception Stuck
(** Raised internally when a body cannot be ordered (not
    range-restricted); {!analyze} converts it to a [None] cost. *)

(** {1 Intervals and per-predicate info} *)

type interval = { lo : int; hi : int option }
(** [hi = None] means unbounded. *)

val pp_interval : Format.formatter -> interval -> unit

val contains : interval -> int -> bool

val huge : int
(** Finite saturation point of the interval arithmetic
    ([max_int / 4]). *)

(** {1 Per-rule cost} *)

type rule_cost = {
  order : int list;  (** chosen body order, as literal indices *)
  est : interval;  (** sound bound on tuples the rule derives *)
  cost : int option;  (** heuristic work units for [order] *)
  greedy_cost : int option;
      (** the same cost model applied to the syntactic greedy order the
          planner would pick unaided — [cost] vs [greedy_cost] is the
          static case for the oracle *)
  cross_products : int;
      (** join steps scanning a positive literal that shares no bound
          variable with what came before (counted only when both sides
          can exceed one row) *)
  inputs_hi : int option;  (** Σ hi over positive body predicates *)
  recursive : bool;  (** some body predicate shares the head's SCC *)
  growing : bool;
      (** recursive {e and} synthesising fresh values — the head has no
          finite bound (boundedness check) *)
}

(** {1 The analysis} *)

type result

val analyze :
  ?max_steps:int ->
  ?edb:Datalog.Database.t ->
  ?assume_nonempty:(string -> bool) ->
  ?seed:(string -> interval option) ->
  Logic.Rule.t list ->
  result
(** Run the fixpoint. [assume_nonempty] marks open predicates
    (externally populated): their extent is unbounded unless [seed]
    caps it. [seed] supplies trusted upper-bound caps per predicate —
    store fact counts, capability templates, cone sizes. [edb] seeds
    base predicates with exact counts, per-column distincts and keys.
    Raises {!Absint.Diverged} if [max_steps] is exceeded (the domain
    widens, so this needs an adversarial program). *)

val card : result -> string -> interval
(** Sound bounds on the predicate's extent in the model. *)

val column_bounds : result -> string -> int option array
(** Per-column distinct-value upper bounds ([[||]] = no information). *)

val keys : result -> string -> int list
(** Columns inferred to be single-column keys. *)

val unbounded : result -> string -> bool
(** [card] has no finite upper bound (failed boundedness check or
    unbounded inputs). *)

val intervals : result -> (string * interval) list
(** All predicates mentioned by the analyzed rules, sorted. *)

val rule_costs : result -> (Logic.Rule.t * rule_cost) list
(** Cost records for every non-fact rule, in input order. *)

val order : result -> Logic.Rule.t -> focus:int option -> int list option
(** The cost-model literal order for a rule (memoized); [None] when the
    body cannot be ordered. This is what the {!oracle} serves. *)

val estimate : result -> string -> int option
(** [card]'s upper bound, oracle-shaped. *)

val oracle : result -> Datalog.Engine.cost_oracle
(** Package the analysis for {!Datalog.Engine.config}[.cost_oracle]. *)
