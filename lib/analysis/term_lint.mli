(** Lint pass 10 ("termination"): skolem-safety via {!Terminate}.

    Emits at most one [possible-nontermination] warning naming the
    position-dependency cycle and its functors. [dm] contributes the
    domain map's isa closure as static subsumption pairs (assertion
    rules route values along those edges). *)

val pass : string

val lint :
  ?dm:Domain_map.Dmap.t ->
  ?gcm:bool ->
  ?loc:(int -> Logic.Rule.t -> Diagnostic.location) ->
  Logic.Rule.t list ->
  Diagnostic.t list
