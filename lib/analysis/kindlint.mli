(** kindlint — whole-program entry points over the analysis passes.

    The pass modules ({!Rule_lint}, {!Strat_lint}, {!Schema_lint},
    {!Cap_lint}, {!Dmap_lint}) each check one artifact in isolation;
    this module sequences them over the two program shapes the rest of
    the system produces — a compiled Datalog program and an F-logic
    program — so callers (the [kindctl lint] command, mediator
    registration via [Mediation.Lint]) get one diagnostic list.

    Everything here is {e static}: nothing is materialized, no wrapper
    is contacted. *)

val open_predicate :
  ?signature:Flogic.Signature.t ->
  ?known_predicates:string list ->
  Logic.Rule.t list ->
  string ->
  bool
(** The open-world boundary used for {!Type_lint}: declared relations,
    caller-known predicates, and reserved GCM predicates that nothing
    in [rules] defines are assumed populated externally and never cause
    emptiness verdicts. *)

val lint_datalog :
  ?signature:Flogic.Signature.t ->
  ?known_predicates:string list ->
  ?fallback_ok:bool ->
  ?cones:Absint.cones ->
  ?edb:Datalog.Database.t ->
  ?budget:int ->
  ?seed:(string -> Card.interval option) ->
  ?dm:Domain_map.Dmap.t ->
  ?gcm:bool ->
  Datalog.Program.t ->
  Diagnostic.t list
(** Passes 1 (rule lint), 2 (stratification), 6 (type/emptiness
    inference, seeded with [edb] and widened over [cones]), 8
    (cardinality/cost hazards, {!Cost_lint}, capped by [seed] and the
    row [budget]), 9 (semantic containment, {!Contain_lint}, modulo the
    optional domain map [dm]) and 10 (skolem-safety, {!Term_lint}) on a
    compiled Datalog program. [fallback_ok] (default [true]) downgrades
    a negative cycle to a warning, matching the engine's well-founded
    fallback. The result is {!Diagnostic.normalize}d. *)

val lint_program :
  ?known_class:(string -> bool) ->
  ?known_method:(string -> bool) ->
  ?known_predicates:string list ->
  ?fallback_ok:bool ->
  ?positions:(int * int) list ->
  ?cones:Absint.cones ->
  ?sources:string list ->
  ?class_sources:(string -> string list) ->
  ?budget:int ->
  ?seed:(string -> Card.interval option) ->
  ?dm:Domain_map.Dmap.t ->
  Flogic.Fl_program.t ->
  Diagnostic.t list
(** Passes 1–3 plus the abstract-interpretation passes (6: type /
    emptiness, 7: provenance, 8: cardinality/cost) on an F-logic
    program:

    - schema conformance of the molecule rules against the program's
      signature plus the classes/methods the program itself declares
      (extend with [known_class]/[known_method] for federation-level
      universes, e.g. domain-map concepts);
    - rule lint on the compiled Datalog rules — except the
      singleton-variable check, which runs on the surface molecules
      (one multi-head molecule compiles to several Datalog rules
      sharing a body, so compiled-level occurrence counts lie);
    - stratification of the full program, GCM axioms included;
    - type/domain inference ({!Type_lint}) over the full compiled
      program (axioms included, so [isa] closes over the program's own
      facts), reporting only on the user's rules;
    - source provenance ({!Prov_lint}) over the surface molecules, with
      [sources] the registered source names (default: none — standalone
      programs are only flagged on qualified ['SRC.x'] references);
    - cardinality/cost hazards ({!Cost_lint}) over the full compiled
      program, reporting only on the user's rules; [seed] caps open
      predicates (store fact counts, cone sizes), [budget] turns
      over-budget estimates into reject-level errors;
    - semantic containment ({!Contain_lint}, pass 9) and skolem-safety
      ({!Term_lint}, pass 10) over the full compiled program, reporting
      only on the user's rules; [dm] widens the containment chase and
      the termination sub-hierarchy with the federation domain map.

    The result is {!Diagnostic.normalize}d: sorted by (location, pass,
    code) with exact duplicates removed, independent of pass
    registration order.

    [positions] (from {!Flogic.Fl_parser.parsed.rule_positions}) aligns
    1-based (line, column) pairs with the program's rules; every
    diagnostic — including those on compiled Datalog rules, which map
    back to their source molecule — then carries a source position.

    A molecule set {!Flogic.Compile} rejects outright yields a single
    {b compile-error} diagnostic (plus whatever schema conformance
    found). *)
