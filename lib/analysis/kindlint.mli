(** kindlint — whole-program entry points over the analysis passes.

    The pass modules ({!Rule_lint}, {!Strat_lint}, {!Schema_lint},
    {!Cap_lint}, {!Dmap_lint}) each check one artifact in isolation;
    this module sequences them over the two program shapes the rest of
    the system produces — a compiled Datalog program and an F-logic
    program — so callers (the [kindctl lint] command, mediator
    registration via [Mediation.Lint]) get one diagnostic list.

    Everything here is {e static}: nothing is materialized, no wrapper
    is contacted. *)

val lint_datalog :
  ?signature:Flogic.Signature.t ->
  ?known_predicates:string list ->
  ?fallback_ok:bool ->
  Datalog.Program.t ->
  Diagnostic.t list
(** Passes 1 (rule lint) and 2 (stratification) on a compiled Datalog
    program. [fallback_ok] (default [true]) downgrades a negative
    cycle to a warning, matching the engine's well-founded fallback. *)

val lint_program :
  ?known_class:(string -> bool) ->
  ?known_method:(string -> bool) ->
  ?known_predicates:string list ->
  ?fallback_ok:bool ->
  Flogic.Fl_program.t ->
  Diagnostic.t list
(** Passes 1–3 on an F-logic program:

    - schema conformance of the molecule rules against the program's
      signature plus the classes/methods the program itself declares
      (extend with [known_class]/[known_method] for federation-level
      universes, e.g. domain-map concepts);
    - rule lint on the compiled Datalog rules — except the
      singleton-variable check, which runs on the surface molecules
      (one multi-head molecule compiles to several Datalog rules
      sharing a body, so compiled-level occurrence counts lie);
    - stratification of the full program, GCM axioms included.

    A molecule set {!Flogic.Compile} rejects outright yields a single
    {b compile-error} diagnostic (plus whatever schema conformance
    found). *)
