module Molecule = Flogic.Molecule
module Term = Logic.Term
module D = Diagnostic
module SS = Set.Make (String)

let pass = "provenance"

(* mirror of Mediation.Namespace.split: 'SRC.name' *)
let split_qualified name =
  match String.index_opt name '.' with
  | Some i ->
    Some
      ( String.sub name 0 i,
        String.sub name (i + 1) (String.length name - i - 1) )
  | None -> None

(* The key a molecule defines or reads in the provenance graph: the
   class of an isa molecule, the method name of a method value, the
   relation or predicate name otherwise. *)
let key_of = function
  | Molecule.Pred a -> Some a.Logic.Atom.pred
  | Molecule.Isa (_, Term.Const (Term.Sym c)) -> Some c
  | Molecule.Meth_val (_, m, _) -> Some m
  | Molecule.Rel_val (r, _) -> Some r
  | Molecule.Isa _ | Molecule.Sub _ | Molecule.Meth_sig _
  | Molecule.Rel_sig _ -> None

let body_molecules (r : Molecule.rule) =
  List.concat_map
    (function
      | Molecule.Pos m | Molecule.Neg m -> [ m ]
      | Molecule.Agg { body; _ } -> body
      | Molecule.Cmp _ | Molecule.Assign _ -> [])
    r.Molecule.body

(* ------------------------------------------------------------------ *)
(* The provenance domain: which registered sources can reach a
   predicate, and whether mediator-local facts can. *)

module Dom = struct
  type t = { sources : SS.t; local : bool }

  let bot = { sources = SS.empty; local = false }

  let equal a b = SS.equal a.sources b.sources && Bool.equal a.local b.local

  let join a b =
    { sources = SS.union a.sources b.sources; local = a.local || b.local }
end

module F = Absint.Make (Dom)

type result = {
  predicates : (string * string list) list;
      (** derived predicate (head key) -> sorted source names *)
  rule_sources : string list list;  (** aligned with the input rules *)
  diags : D.t list;
}

let default_loc i r =
  D.Rule { index = i; text = Molecule.rule_to_string r; pos = None }

let analyze ?(require_sources = false) ?(loc = default_loc) ~sources
    ?(class_sources = fun _ -> []) rules =
  let registered = SS.of_list sources in
  let local_preds = Rule_lint.reserved_predicates in
  let mol_value lookup m =
    let qualified name from_env =
      match split_qualified name with
      | Some (s, _) when SS.mem s registered ->
        { Dom.sources = SS.singleton s; local = false }
      | Some _ -> Dom.bot (* unregistered namespace, flagged below *)
      | None -> from_env ()
    in
    match m with
    | Molecule.Isa (_, Term.Const (Term.Sym c)) ->
      qualified c (fun () ->
          Dom.join (lookup c)
            { Dom.sources = SS.of_list (class_sources c); local = false })
    | Molecule.Rel_val (r, _) ->
      qualified r (fun () -> Dom.join (lookup r) { Dom.sources = SS.empty; local = true })
    | Molecule.Pred a ->
      let p = a.Logic.Atom.pred in
      qualified p (fun () ->
          if List.mem p local_preds then
            { Dom.sources = SS.empty; local = true }
          else lookup p)
    | Molecule.Meth_val (_, meth, _) -> lookup meth
    | Molecule.Isa _ | Molecule.Sub _ | Molecule.Meth_sig _
    | Molecule.Rel_sig _ -> Dom.bot
  in
  let transfer lookup (r : Molecule.rule) =
    if r.Molecule.body = [] then { Dom.sources = SS.empty; local = true }
    else
      List.fold_left
        (fun acc m -> Dom.join acc (mol_value lookup m))
        Dom.bot (body_molecules r)
  in
  let spec =
    {
      F.heads = (fun r -> List.filter_map key_of r.Molecule.heads);
      F.deps = (fun r -> List.filter_map key_of (body_molecules r));
      F.transfer;
    }
  in
  let lookup = F.fixpoint spec rules in
  let rule_values = List.map (transfer lookup) rules in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  List.iteri
    (fun i (r : Molecule.rule) ->
      let v = List.nth rule_values i in
      let quals =
        List.filter_map
          (fun m ->
            match key_of m with
            | Some name -> (
              match split_qualified name with
              | Some (s, _) -> Some (name, s)
              | None -> None)
            | None -> None)
          (body_molecules r)
      in
      let unknown =
        List.sort_uniq compare
          (List.filter (fun (_, s) -> not (SS.mem s registered)) quals)
      in
      List.iter
        (fun (name, s) ->
          emit
            (D.make
               ~severity:(if require_sources then D.Error else D.Warning)
               ~pass ~code:"unknown-namespace" ~location:(loc i r)
               (Printf.sprintf
                  "%s names namespace %s, which is not a registered source"
                  name s)
               ~hint:
                 "the qualified subgoal can never be populated; register \
                  the source or fix the name"))
        unknown;
      if
        r.Molecule.body <> []
        && SS.is_empty v.Dom.sources
        && (require_sources || quals <> [])
      then
        emit
          (D.make ~severity:D.Warning ~pass ~code:"no-source"
             ~location:(loc i r)
             (Printf.sprintf "view draws from no registered source%s"
                (if v.Dom.local then
                   " (only mediator-local facts reach its body)"
                 else ""))
             ~hint:
               "no source push can ever change this view; anchor a source \
                at one of its body classes or drop it"))
    rules;
  let predicates =
    List.concat_map (fun r -> List.filter_map key_of r.Molecule.heads) rules
    |> List.sort_uniq String.compare
    |> List.map (fun p -> (p, SS.elements (lookup p).Dom.sources))
  in
  { predicates; rule_sources = List.map (fun v -> SS.elements v.Dom.sources) rule_values; diags = List.rev !diags }

(* Provenance-related diagnostics of one conjunctive query: unknown
   namespaces among its subgoals. *)
let query_diags ~sources ?label lits =
  let registered = SS.of_list sources in
  let text =
    match label with
    | Some l -> l
    | None ->
      String.concat ", "
        (List.map (fun l -> Format.asprintf "%a" Molecule.pp_lit l) lits)
  in
  let r = { Molecule.heads = []; body = lits } in
  List.filter_map
    (fun m ->
      match key_of m with
      | Some name -> (
        match split_qualified name with
        | Some (s, _) when not (SS.mem s registered) ->
          Some
            (D.make ~severity:D.Error ~pass ~code:"unknown-namespace"
               ~location:(D.Query text)
               (Printf.sprintf
                  "%s names namespace %s, which is not a registered source"
                  name s))
        | _ -> None)
      | None -> None)
    (body_molecules r)
