(** Pass 6 — type/domain inference ({!Absint} over the compiled
    program).

    Infers per-predicate argument domains (constant sets / domain-map
    concept cones, widened to ⊤ at a size cap) and flags rules that
    provably derive nothing:

    - {b empty-join} (warning): a join variable whose occurrences have
      disjoint argument domains, or a constant argument outside the
      predicate's column domain;
    - {b dead-rule} (warning): a body predicate proved unpopulatable,
      or a ground comparison that can never hold.

    Both verdicts are exactly the ones {!Absint.prune} acts on, so a
    flagged rule is also the one the engine would skip with dead-rule
    pruning enabled. Open predicates (declared relations, predicates
    the caller knows are populated externally) must be passed through
    [assume_nonempty] — they are treated as ⊤ rows and never cause a
    verdict. *)

val lint :
  ?cones:Absint.cones ->
  ?cap:int ->
  ?assume_nonempty:(string -> bool) ->
  ?edb:Datalog.Database.t ->
  ?loc:(int -> Logic.Rule.t -> Diagnostic.location) ->
  Logic.Rule.t list ->
  Diagnostic.t list

val domains :
  ?cones:Absint.cones ->
  ?cap:int ->
  ?assume_nonempty:(string -> bool) ->
  ?edb:Datalog.Database.t ->
  Logic.Rule.t list ->
  (string * string) list
(** The stable abstract row of each head predicate, rendered — the
    inspection half used by [kindctl provenance --domains]-style
    tooling and the tests. *)
