(** A Datalog program: a set of (safety-checked) rules. Ground facts may
    be included as body-less rules; {!split_facts} separates them. *)

type t

val make : Logic.Rule.t list -> (t, string) result
(** Validates range restriction of every rule ({!Logic.Rule.check_safety})
    and returns the program, or the first violation. *)

val make_exn : Logic.Rule.t list -> t
(** Like {!make} but raises [Invalid_argument]. *)

val empty : t
val rules : t -> Logic.Rule.t list
val append : t -> t -> t
val add_rule : t -> Logic.Rule.t -> (t, string) result
val size : t -> int

val idb_predicates : t -> string list
(** Predicates defined by at least one rule head (sorted). *)

val predicates : t -> string list
(** All predicates mentioned in heads or bodies (sorted). *)

val split_facts : t -> Logic.Atom.t list * t
(** Ground facts (body-less rules with ground heads) and the remaining
    proper rules. Body-less rules with variables in the head are
    rejected by {!make} already (unsafe). *)

val pp : Format.formatter -> t -> unit
