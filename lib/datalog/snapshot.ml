module Term = Logic.Term

type t = {
  db : Database.t;
  edb : Database.t;
  counters : (string * float) list;
}

let magic = "KINDSNP1"

(* frame kinds *)
let k_terms = 1
let k_db_rel = 2
let k_edb_rel = 3
let k_counters = 4
let k_end = 255

(* term-record tags *)
let t_sym = 0
let t_str = 1
let t_int = 2
let t_float = 3
let t_bool = 4
let t_app = 5
let t_var = 6

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

(* The file-local term table: every distinct term gets one record,
   children before parents, and tuples refer to records by index. Ids
   are file-local by construction — nothing about the process intern
   pool leaks into the image. *)
module TT = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

type table = { ids : int TT.t; enc : Codec.Enc.t; mutable next : int }

let rec intern table (t : Term.t) =
  match TT.find_opt table.ids t with
  | Some i -> i
  | None ->
    let record tag fill =
      Codec.Enc.u8 table.enc tag;
      fill ();
      let i = table.next in
      table.next <- i + 1;
      TT.add table.ids t i;
      i
    in
    let e = table.enc in
    (match t with
    | Term.Const (Term.Sym s) -> record t_sym (fun () -> Codec.Enc.str e s)
    | Term.Const (Term.Str s) -> record t_str (fun () -> Codec.Enc.str e s)
    | Term.Const (Term.Int n) -> record t_int (fun () -> Codec.Enc.i64 e n)
    | Term.Const (Term.Float x) -> record t_float (fun () -> Codec.Enc.f64 e x)
    | Term.Const (Term.Bool b) -> record t_bool (fun () -> Codec.Enc.bool e b)
    | Term.Var x -> record t_var (fun () -> Codec.Enc.str e x)
    | Term.App (f, args) ->
      (* children first: their records must precede this one, so the
         loader can resolve indices in a single pass *)
      let arg_ids = List.map (intern table) args in
      record t_app (fun () ->
          Codec.Enc.str e f;
          Codec.Enc.u32 e (List.length arg_ids);
          List.iter (Codec.Enc.u32 e) arg_ids))

let encode_relations table db kind =
  List.filter_map
    (fun pred ->
      match Database.relation_opt db pred with
      | None -> None
      | Some rel ->
        let tuples = Relation.to_list rel in
        let e = Codec.Enc.create () in
        Codec.Enc.str e pred;
        Codec.Enc.u32 e (List.length tuples);
        List.iter
          (fun tup ->
            Codec.Enc.u32 e (List.length tup);
            List.iter (fun t -> Codec.Enc.u32 e (intern table t)) tup)
          tuples;
        Some { Codec.kind; payload = Codec.Enc.contents e })
    (Database.predicates db)

let encode snap =
  let table = { ids = TT.create 1024; enc = Codec.Enc.create (); next = 0 } in
  let db_frames = encode_relations table snap.db k_db_rel in
  let edb_frames = encode_relations table snap.edb k_edb_rel in
  let terms_frame =
    let e = Codec.Enc.create () in
    Codec.Enc.u32 e table.next;
    Codec.Enc.str e (Codec.Enc.contents table.enc);
    { Codec.kind = k_terms; payload = Codec.Enc.contents e }
  in
  let counters_frame =
    let e = Codec.Enc.create () in
    Codec.Enc.u32 e (List.length snap.counters);
    List.iter
      (fun (k, v) ->
        Codec.Enc.str e k;
        Codec.Enc.f64 e v)
      snap.counters;
    { Codec.kind = k_counters; payload = Codec.Enc.contents e }
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Codec.file_header ~magic);
  List.iter
    (fun f -> Buffer.add_string buf (Codec.encode_frame f))
    ((terms_frame :: db_frames) @ edb_frames
    @ [ counters_frame; { Codec.kind = k_end; payload = "" } ]);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

(* Returns the term table plus the process intern id of every ground
   entry (-1 for the non-ground ones, which no stored tuple may
   reference): resolving ids once per {e table entry} instead of once
   per tuple column keeps the per-tuple work free of the intern pool's
   mutex — the table is small (distinct terms), the tuple volume is
   not. *)
let decode_terms payload =
  let d = Codec.Dec.of_string payload in
  let n = Codec.Dec.u32 d in
  let body = Codec.Dec.of_string (Codec.Dec.str d) in
  let terms = Array.make (max n 1) (Term.sym "") in
  for i = 0 to n - 1 do
    let tag = Codec.Dec.u8 body in
    let t =
      if tag = t_sym then Term.sym (Codec.Dec.str body)
      else if tag = t_str then Term.str (Codec.Dec.str body)
      else if tag = t_int then Term.int (Codec.Dec.i64 body)
      else if tag = t_float then Term.float (Codec.Dec.f64 body)
      else if tag = t_bool then Term.bool (Codec.Dec.bool body)
      else if tag = t_var then Term.var (Codec.Dec.str body)
      else if tag = t_app then begin
        let f = Codec.Dec.str body in
        let argc = Codec.Dec.u32 body in
        if argc = 0 then raise (Codec.Dec.Corrupt "term table: nullary app");
        let args =
          List.init argc (fun _ ->
              let j = Codec.Dec.u32 body in
              if j >= i then
                raise (Codec.Dec.Corrupt "term table: forward reference");
              terms.(j))
        in
        Term.app f args
      end
      else raise (Codec.Dec.Corrupt (Printf.sprintf "term tag %d" tag))
    in
    terms.(i) <- t
  done;
  let ids =
    Array.map (fun t -> if Term.is_ground t then Term.id t else -1) terms
  in
  (terms, ids)

(* Bulk load: rows go in packed ([Relation.add_packed]) with their
   intern ids taken from the table, into a relation pre-sized to the
   frame's row count — no per-tuple groundness walk, no per-column
   intern lookup, no hash-set resizes. *)
let decode_relation (terms, tids) payload db =
  let d = Codec.Dec.of_string payload in
  let pred = Codec.Dec.str d in
  let count = Codec.Dec.u32 d in
  (* sized creation also makes an empty relation round-trip as present *)
  let rel = Database.relation_hint db pred ~hint:count in
  (* the encoder writes each predicate once, from a set, so rows are
     distinct in any file it produced — but the CRC only detects
     accidental corruption, so a crafted or buggy writer could still
     present duplicates. Inserts stay membership-checked and a
     duplicate is rejected as corruption rather than silently breaking
     the set invariant (cardinality, removal). *)
  let n = Array.length terms in
  for _ = 1 to count do
    let arity = Codec.Dec.u32 d in
    let row = Array.make arity (Term.sym "") in
    let ids = Array.make arity 0 in
    for i = 0 to arity - 1 do
      let j = Codec.Dec.u32 d in
      if j >= n then raise (Codec.Dec.Corrupt "tuple: term index out of range");
      if tids.(j) < 0 then
        raise (Codec.Dec.Corrupt "tuple: non-ground component");
      row.(i) <- terms.(j);
      ids.(i) <- tids.(j)
    done;
    if not (Relation.add_packed rel (Tuple.Packed.of_parts row ids)) then
      raise (Codec.Dec.Corrupt ("duplicate row in relation " ^ pred))
  done

let decode s =
  match Codec.decode_file ~magic s with
  | Error e -> Error ("checkpoint: " ^ e)
  | Ok (_, Codec.Torn { at; reason }) ->
    (* a checkpoint is replaced atomically, so any tear means the file
       as a whole cannot be trusted — there is no meaningful prefix *)
    Error (Printf.sprintf "checkpoint: torn at byte %d (%s)" at reason)
  | Ok (frames, Codec.Clean) -> (
    match List.rev frames with
    | { Codec.kind; _ } :: _ when kind <> k_end ->
      Error "checkpoint: missing end marker"
    | [] -> Error "checkpoint: empty"
    | _ -> (
      try
        let terms = ref ([||], [||]) in
        let db = Database.create () in
        let edb = Database.create () in
        let counters = ref [] in
        List.iter
          (fun { Codec.kind; payload } ->
            if kind = k_terms then terms := decode_terms payload
            else if kind = k_db_rel then decode_relation !terms payload db
            else if kind = k_edb_rel then decode_relation !terms payload edb
            else if kind = k_counters then begin
              let d = Codec.Dec.of_string payload in
              let n = Codec.Dec.u32 d in
              counters :=
                List.init n (fun _ ->
                    let k = Codec.Dec.str d in
                    (k, Codec.Dec.f64 d))
            end
            else if kind = k_end then ()
            else () (* unknown frame kinds are skipped, for evolvability *))
          frames;
        Ok { db; edb; counters = !counters }
      with Codec.Dec.Corrupt msg -> Error ("checkpoint: " ^ msg)))

let write fs ~path snap =
  let image = encode snap in
  Codec.write_file_atomic fs ~path image;
  String.length image

let read fs ~path =
  match fs.Codec.read path with
  | None -> Ok None
  | Some s -> (
    match decode s with Ok snap -> Ok (Some snap) | Error e -> Error e)
