(** Well-founded semantics via Van Gelder's alternating fixpoint.

    The GCM extension mechanism requires "Datalog with well-founded
    negation", which expresses exactly FO(LFP) on ordered structures
    (Section 3, (EXPR)/(SEM) of the paper). Stratified programs get
    identical results from {!Engine.materialize}; this module exists for
    programs where negation is entangled with recursion, such as
    nonmonotonic inheritance over a registered domain map (Section 4,
    "if we want to specify that it only projects to the latter").

    Aggregates are treated like negation: each alternating step
    evaluates them against the fixed candidate model of the previous
    step. *)

type model = {
  true_facts : Database.t;   (** facts true in the well-founded model *)
  undefined : Database.t;    (** facts with truth value "undefined" *)
  alternations : int;        (** number of Γ applications performed *)
}

val compute :
  ?stats:Eval.stats ->
  ?pool:Pool.t ->
  ?compiled:bool ->
  ?max_term_depth:int ->
  ?max_rounds:int ->
  Program.t ->
  Database.t ->
  model
(** [compute p edb] returns the well-founded model of [p] over the
    extensional database [edb] (which is not mutated). [true_facts]
    includes the EDB. [pool] parallelizes the semi-naive rounds inside
    each Γ application (see {!Seminaive.run}); the alternation itself
    is inherently sequential. *)

val is_total : model -> bool
(** [true] iff nothing is undefined — e.g. always for stratified
    programs. *)
