type model = {
  true_facts : Database.t;
  undefined : Database.t;
  alternations : int;
}

(* Γ(I): least model of the program with negative/aggregate literals
   evaluated against the fixed interpretation I. Monotone decreasing in
   I, so Γ∘Γ is monotone increasing and the even iterates converge to
   the set of well-founded-true facts while the odd iterates converge to
   the non-false facts. *)
let gamma ?stats ?pool ?compiled ?max_term_depth ?max_rounds rules edb i =
  let db = Database.copy edb in
  ignore
    (Seminaive.run ?stats ?pool ?compiled ?max_term_depth ?max_rounds ~neg:i
       rules db);
  db

let db_subset a b =
  List.for_all (fun f -> Database.mem b f) (Database.all_facts a)

let db_equal a b = Database.cardinal a = Database.cardinal b && db_subset a b

let compute ?stats ?pool ?compiled ?max_term_depth ?max_rounds p edb =
  let rules = Program.rules p in
  let alternations = ref 0 in
  let step i =
    incr alternations;
    gamma ?stats ?pool ?compiled ?max_term_depth ?max_rounds rules edb i
  in
  (* A_0 = ∅ (so Γ(A_0) is the maximal candidate). *)
  let rec iterate under over =
    (* invariant: under ⊆ true facts ⊆ over *)
    let under' = step over in
    let over' = step under' in
    if db_equal under under' && db_equal over over' then (under', over')
    else iterate under' over'
  in
  let empty = Database.create () in
  let over0 = step empty in
  let under0 = step over0 in
  let under, over =
    if db_equal under0 over0 then (under0, over0)
    else iterate under0 over0
  in
  let undefined = Database.create () in
  List.iter
    (fun f ->
      if not (Database.mem under f) then ignore (Database.add_fact undefined f))
    (Database.all_facts over);
  { true_facts = under; undefined; alternations = !alternations }

let is_total m = Database.cardinal m.undefined = 0
