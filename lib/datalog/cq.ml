module Term = Logic.Term
module Atom = Logic.Atom
module Literal = Logic.Literal

type t = { head : Atom.t; body : Atom.t list }

let no_functions (a : Atom.t) =
  List.for_all
    (fun t -> match t with Term.App _ -> false | _ -> true)
    a.Atom.args

let make head body =
  if not (List.for_all no_functions (head :: body)) then
    Error "Cq.make: function symbols are not allowed in conjunctive queries"
  else
    let body_vars = List.concat_map Atom.vars body in
    match
      List.find_opt (fun v -> not (List.mem v body_vars)) (Atom.vars head)
    with
    | Some v -> Error (Printf.sprintf "Cq.make: head variable %s not in body" v)
    | None -> Ok { head; body }

let make_exn head body =
  match make head body with Ok q -> q | Error e -> invalid_arg e

let of_rule (r : Logic.Rule.t) =
  let rec atoms acc = function
    | [] -> Ok (List.rev acc)
    | Literal.Pos a :: rest when not (Literal.is_builtin a.Atom.pred) ->
      atoms (a :: acc) rest
    | l :: _ ->
      Error
        (Printf.sprintf "Cq.of_rule: non-CQ literal %s" (Literal.to_string l))
  in
  match atoms [] r.Logic.Rule.body with
  | Error e -> Error e
  | Ok body -> make r.Logic.Rule.head body

(* Freezing: variables become reserved constants that cannot clash with
   user symbols (no user symbol starts with '\xE2' in our tests, but be
   explicit with a prefix unlikely in data). *)
let frozen_const v = Term.sym ("\xCF\x87_" ^ v) (* χ_v *)

let freeze q =
  let sub =
    List.fold_left
      (fun s v -> Logic.Subst.bind v (frozen_const v) s)
      Logic.Subst.empty
      (List.sort_uniq String.compare
         (List.concat_map Atom.vars (q.head :: q.body)))
  in
  let db = Database.create () in
  List.iter (fun a -> ignore (Database.add_fact db (Atom.apply sub a))) q.body;
  (db, Atom.apply sub q.head)

let contained_in q1 q2 =
  Atom.arity q1.head = Atom.arity q2.head
  && String.equal q1.head.Atom.pred q2.head.Atom.pred
  &&
  let db, frozen_head = freeze q1 in
  let solutions =
    Eval.solve_body ~db ~neg:db (List.map (fun a -> Literal.Pos a) q2.body)
  in
  List.exists
    (fun s -> Atom.equal (Atom.apply s q2.head) frozen_head)
    solutions

let equivalent q1 q2 = contained_in q1 q2 && contained_in q2 q1

let minimize q =
  (* try dropping body atoms one at a time; keep the drop when the
     smaller query is still contained in the original (the other
     containment is trivial). *)
  let rec shrink kept = function
    | [] -> List.rev kept
    | a :: rest ->
      let candidate_body = List.rev_append kept rest in
      let candidate_ok =
        match make q.head candidate_body with
        | Ok candidate -> contained_in candidate q
        | Error _ -> false
      in
      if candidate_ok then shrink kept rest else shrink (a :: kept) rest
  in
  { q with body = shrink [] q.body }

let is_minimal q = List.length (minimize q).body = List.length q.body

let pp ppf q =
  Format.fprintf ppf "%a :- %a" Atom.pp q.head
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Atom.pp)
    q.body
