module Atom = Logic.Atom
module Subst = Logic.Subst

type strategy = Naive | Seminaive

type cost_oracle = {
  order : Logic.Rule.t -> focus:int option -> int list option;
  estimate : string -> int option;
}

type durability = { fs : Codec.fs; wal_max_bytes : int }

let checkpoint_file = "checkpoint.kind"
let wal_file = "wal.kind"

let durability ?(wal_max_bytes = 1_000_000) ~dir () =
  { fs = Codec.real_fs ~root:dir; wal_max_bytes }

type config = {
  strategy : strategy;
  max_term_depth : int;
  max_rounds : int;
  allow_wellfounded_fallback : bool;
  compiled_plans : bool;
  prune : (Logic.Rule.t list -> Database.t -> Logic.Rule.t list) option;
  minimize : (Logic.Rule.t list -> Logic.Rule.t list) option;
  cost_oracle : cost_oracle option;
  domains : int;
  durability : durability option;
}

let default_config =
  {
    strategy = Seminaive;
    max_term_depth = 8;
    max_rounds = 100_000;
    allow_wellfounded_fallback = true;
    compiled_plans = true;
    prune = None;
    minimize = None;
    cost_oracle = None;
    domains = 0;
    durability = None;
  }

(* KIND_DURABLE_DIR makes every stratified materialization checkpoint
   and every maintenance batch write-ahead-log into the named directory
   — how `dune runtest` exercises durability without per-test wiring. *)
let env_durability =
  lazy
    (match Sys.getenv_opt "KIND_DURABLE_DIR" with
    | None | Some "" -> None
    | Some dir -> Some (durability ~dir ()))

let effective_durability config =
  match config.durability with
  | Some d -> Some d
  | None -> Lazy.force env_durability

let effective_domains config =
  if config.domains > 0 then min config.domains 64 else Pool.env_domains ()

(* Parallel evaluation needs the compiled-plan kernel (the interpreted
   path shares no partitionable delta representation), so the pool is
   only engaged when both are on. *)
let pool_of config =
  if config.compiled_plans then Pool.get (effective_domains config) else None

exception Unstratified of string list
exception Undefined_atoms of int

type report = {
  stratified : bool;
  strata : int;
  rounds : int;
  derived : int;
  skolems_suppressed : int;
  joins : int;
  tuples_scanned : int;
  index_hits : int;
  plan_cache_hits : int;
  strata_skipped : int;
  delta_facts : int;
  rules_pruned : int;
  atoms_minimized : int;
  cost_oracle_used : int;
  est_vs_actual : float;
  domains_used : int;
  parallel_batches : int;
  checkpoint_ms : float;
  recovery_ms : float;
  wal_bytes : int;
}

let empty_report =
  {
    stratified = true;
    strata = 0;
    rounds = 0;
    derived = 0;
    skolems_suppressed = 0;
    joins = 0;
    tuples_scanned = 0;
    index_hits = 0;
    plan_cache_hits = 0;
    strata_skipped = 0;
    delta_facts = 0;
    rules_pruned = 0;
    atoms_minimized = 0;
    cost_oracle_used = 0;
    est_vs_actual = 0.0;
    domains_used = 1;
    parallel_batches = 0;
    checkpoint_ms = 0.0;
    recovery_ms = 0.0;
    wal_bytes = 0;
  }

(* Geometric mean of estimate/actual over the predicates the oracle can
   bound — the honest summary of how tight the static analysis is
   (1.0 = exact, 10.0 = an order of magnitude over). 0.0 = no oracle
   or nothing finite to compare. *)
let est_vs_actual_of (o : cost_oracle) db =
  let logs, n =
    List.fold_left
      (fun (acc, n) p ->
        match o.estimate p with
        | Some est ->
          let actual = Database.count db p in
          ( acc
            +. log (float_of_int (max 1 est) /. float_of_int (max 1 actual)),
            n + 1 )
        | None -> (acc, n))
      (0.0, 0) (Database.predicates db)
  in
  if n = 0 then 0.0 else exp (logs /. float_of_int n)

let run_stratum config ?pool stats rules db =
  match config.strategy with
  | Seminaive ->
    let o =
      Seminaive.run ~stats ?pool ~compiled:config.compiled_plans
        ~max_term_depth:config.max_term_depth ~max_rounds:config.max_rounds
        ~neg:db rules db
    in
    (o.Seminaive.rounds, o.Seminaive.derived, o.Seminaive.skolems_suppressed)
  | Naive ->
    let o =
      Naive.run ~stats ~max_term_depth:config.max_term_depth
        ~max_rounds:config.max_rounds ~neg:db rules db
    in
    (o.Naive.rounds, o.Naive.derived, o.Naive.skolems_suppressed)

let materialize ?(config = default_config) ?report p edb =
  let stats = Eval.new_stats () in
  let pool = pool_of config in
  let durable = effective_durability config in
  let facts, p = Program.split_facts p in
  let db = Database.copy edb in
  List.iter (fun f -> ignore (Database.add_fact db f)) facts;
  (* the base-fact database a checkpoint must carry so recovery can
     re-adopt the materialization for incremental maintenance *)
  let base = match durable with Some _ -> Some (Database.copy db) | None -> None in
  (* semantics-preserving dead-rule pruning: the hook sees the rule-only
     program and the loaded base facts, and must return a sublist of
     rules that derive nothing in the model (Analysis.Absint.prune). *)
  let p, pruned =
    match config.prune with
    | None -> (p, 0)
    | Some f ->
      let rules = Program.rules p in
      let kept = f rules db in
      (Program.make_exn kept, List.length rules - List.length kept)
  in
  (* semantic minimization: the hook (Analysis.Contain.minimize — same
     wiring inversion as [prune]) may drop body atoms that are implied
     by the rest of their rule's body, but must preserve the model. *)
  let p, minimized =
    match config.minimize with
    | None -> (p, 0)
    | Some f ->
      let rules = Program.rules p in
      let before = List.fold_left (fun n r -> n + List.length r.Logic.Rule.body) 0 rules in
      let kept = f rules in
      let after = List.fold_left (fun n r -> n + List.length r.Logic.Rule.body) 0 kept in
      (Program.make_exn kept, max 0 (before - after))
  in
  let fill_report ~checkpoint_ms ~wal_bytes ~stratified ~strata
      ~rounds ~derived ~skolems ~result =
    match report with
    | None -> ()
    | Some r ->
      r :=
        {
          stratified;
          strata;
          rounds;
          derived;
          skolems_suppressed = skolems;
          joins = Atomic.get stats.Eval.joins;
          tuples_scanned = Atomic.get stats.Eval.tuples_scanned;
          index_hits = Atomic.get stats.Eval.index_hits;
          plan_cache_hits = Atomic.get stats.Eval.plan_cache_hits;
          strata_skipped = 0;
          delta_facts = 0;
          rules_pruned = pruned;
          atoms_minimized = minimized;
          cost_oracle_used = Atomic.get stats.Eval.cost_oracle_used;
          est_vs_actual =
            (match config.cost_oracle with
            | None -> 0.0
            | Some o -> est_vs_actual_of o result);
          domains_used =
            (match pool with Some p -> Pool.size p | None -> 1);
          parallel_batches = Atomic.get stats.Eval.parallel_batches;
          checkpoint_ms;
          recovery_ms = 0.0;
          wal_bytes;
        }
  in
  let eval () =
    match Stratify.rules_by_stratum p with
    | Ok strata ->
      let rounds = ref 0 and derived = ref 0 and skolems = ref 0 in
      List.iter
        (fun rules ->
          if rules <> [] then begin
            let r, d, s = run_stratum config ?pool stats rules db in
            rounds := !rounds + r;
            derived := !derived + d;
            skolems := !skolems + s
          end)
        strata;
      let checkpoint_ms, wal_bytes =
        match (durable, base) with
        | Some d, Some base ->
          let t0 = Unix.gettimeofday () in
          (* the checkpoint and the log reset that follows carry a
             fresh generation: a crash between the two leaves the old
             log stamped with the old generation, which recovery
             detects and discards instead of replaying stale deltas
             over a materialization they never touched *)
          let gen = Wal.generation d.fs ~path:wal_file + 1 in
          ignore
            (Snapshot.write d.fs ~path:checkpoint_file
               {
                 Snapshot.db;
                 edb = base;
                 counters =
                   [
                     ("generation", float_of_int gen);
                     ("strata", float_of_int (List.length strata));
                     ("rounds", float_of_int !rounds);
                     ("derived", float_of_int !derived);
                     ("skolems_suppressed", float_of_int !skolems);
                   ];
               });
          (* a fresh checkpoint subsumes every logged batch *)
          Wal.reset d.fs ~path:wal_file ~gen;
          ( (Unix.gettimeofday () -. t0) *. 1000.0,
            d.fs.Codec.size wal_file )
        | _ -> (0.0, 0)
      in
      fill_report ~checkpoint_ms ~wal_bytes ~stratified:true
        ~strata:(List.length strata)
        ~rounds:!rounds ~derived:!derived ~skolems:!skolems ~result:db;
      db
    | Error cycle ->
      if not config.allow_wellfounded_fallback then raise (Unstratified cycle);
      let model =
        Wellfounded.compute ~stats ?pool ~compiled:config.compiled_plans
          ~max_term_depth:config.max_term_depth ~max_rounds:config.max_rounds
          p db
      in
      let undef = Database.cardinal model.Wellfounded.undefined in
      if undef > 0 then raise (Undefined_atoms undef);
      fill_report ~checkpoint_ms:0.0 ~wal_bytes:0 ~stratified:false ~strata:1
        ~rounds:model.Wellfounded.alternations
        ~derived:(Database.cardinal model.Wellfounded.true_facts
                  - Database.cardinal db)
        ~skolems:0 ~result:model.Wellfounded.true_facts;
      model.Wellfounded.true_facts
  in
  (* the oracle is consulted by [Plan.lookup], which the strategies call
     deep inside their drivers (semi-naive resolves every plan up
     front) — so install it around the whole evaluation *)
  match config.cost_oracle with
  | None -> eval ()
  | Some o -> Plan.with_oracle o.order eval

(* derive through the join kernel selected by [config]. *)
let config_derive config ?stats ~db ~neg ?focus r =
  if config.compiled_plans then Plan.derive ?stats ~db ~neg ?focus r
  else Eval.derive ?stats ~db ~neg ?focus r

let extend ?(config = default_config) p db new_facts =
  let nonmono =
    List.exists
      (fun r -> List.exists snd (Logic.Rule.body_predicates r))
      (Program.rules p)
  in
  if nonmono then
    Error
      "Engine.extend: the program has negation/aggregation; incremental \
       addition is not monotone — re-materialize instead"
  else begin
    let facts, p = Program.split_facts p in
    ignore facts;
    let rules = Program.rules p in
    let added = ref 0 in
    let delta0 = Database.create () in
    List.iter
      (fun f ->
        if Database.add_fact db f then begin
          incr added;
          ignore (Database.add_fact delta0 f)
        end)
      new_facts;
    let too_deep (a : Atom.t) =
      List.exists
        (fun t -> Logic.Term.depth t > config.max_term_depth)
        a.Atom.args
    in
    let rec loop rounds delta =
      if Database.cardinal delta = 0 then ()
      else begin
        if rounds >= config.max_rounds then
          failwith "Engine.extend: max_rounds exceeded";
        let next = Database.create () in
        List.iter
          (fun r ->
            List.iter
              (fun i ->
                List.iter
                  (fun a ->
                    if (not (too_deep a)) && Database.add_fact db a then begin
                      incr added;
                      ignore (Database.add_fact next a)
                    end)
                  (config_derive config ~db ~neg:db ~focus:(i, delta) r))
              (Eval.positive_positions r))
          rules;
        loop (rounds + 1) next
      end
    in
    loop 0 delta0;
    Ok !added
  end

let retract ?(config = default_config) p db facts_to_remove =
  let nonmono =
    List.exists
      (fun r -> List.exists snd (Logic.Rule.body_predicates r))
      (Program.rules p)
  in
  if nonmono then
    Error
      "Engine.retract: the program has negation/aggregation; DRed here \
       supports only positive stratified programs — re-materialize instead"
  else begin
    let _, p = Program.split_facts p in
    let rules = Program.rules p in
    (* 1. over-delete: propagate deletion candidates through the rules
       (body joins still run against the pre-deletion database). *)
    let deleted = Database.create () in
    let delta0 = Database.create () in
    List.iter
      (fun f ->
        if Database.mem db f && Database.add_fact deleted f then
          ignore (Database.add_fact delta0 f))
      facts_to_remove;
    let rec overdelete delta =
      if Database.cardinal delta = 0 then ()
      else begin
        let next = Database.create () in
        List.iter
          (fun r ->
            List.iter
              (fun i ->
                List.iter
                  (fun a ->
                    if Database.mem db a && not (Database.mem deleted a) then begin
                      ignore (Database.add_fact deleted a);
                      ignore (Database.add_fact next a)
                    end)
                  (config_derive config ~db ~neg:db ~focus:(i, delta) r))
              (Eval.positive_positions r))
          rules;
        overdelete next
      end
    in
    overdelete delta0;
    (* 2. physically remove the over-deleted facts. *)
    List.iter (fun f -> ignore (Database.remove_fact db f)) (Database.all_facts deleted);
    (* 3. re-derive: candidates (excluding the explicitly retracted
       facts) that still have a proof from the remaining database. *)
    let explicitly_removed = Database.of_facts facts_to_remove in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun r ->
          List.iter
            (fun a ->
              if
                Database.mem deleted a
                && (not (Database.mem explicitly_removed a))
                && Database.add_fact db a
              then changed := true)
            (config_derive config ~db ~neg:db r))
        rules
    done;
    let gone =
      List.filter (fun f -> not (Database.mem db f)) (Database.all_facts deleted)
    in
    Ok (List.length gone)
  end

let maintain ?(config = default_config) ?report p db delta =
  let pool = pool_of config in
  match
    Maintain.of_materialized ?pool ~max_term_depth:config.max_term_depth
      ~max_rounds:config.max_rounds ~compiled:config.compiled_plans p db
  with
  | Error e -> Error e
  | Ok h -> (
    let durable = effective_durability config in
    (* Write-ahead: the batch frame is durable (fsync'd) before any of
       it is applied, so a crash mid-maintenance recovers to either the
       pre-batch state (append torn) or the post-batch state (append
       complete, batch replayed). Only a batch [apply] will accept is
       logged — a non-ground fact fails validation without mutating,
       and must not poison recovery. *)
    let wal =
      match durable with
      | Some d
        when List.for_all Atom.is_ground
               (delta.Maintain.additions @ delta.Maintain.deletions) ->
        let w = Wal.open_log d.fs ~path:wal_file in
        Wal.append w
          {
            Wal.additions = delta.Maintain.additions;
            deletions = delta.Maintain.deletions;
          };
        Some w
      | _ -> None
    in
    (* the sink must not leak even when [apply] raises (e.g. max_rounds
       exceeded deep in maintenance); [Wal.close] is idempotent, so the
       rotation path's early close composes with the finalizer *)
    Fun.protect
      ~finally:(fun () -> Option.iter Wal.close wal)
    @@ fun () ->
    match Maintain.apply h delta with
    | Error e -> Error e
    | Ok rep ->
      let checkpoint_ms, wal_bytes =
        match (durable, wal) with
        | Some d, Some w ->
          let bytes = Wal.bytes w in
          Wal.close w;
          if bytes > d.wal_max_bytes then begin
            (* rotation: checkpoint the maintained state under a fresh
               generation, then compact the log. A crash between the
               two leaves the old-generation log paired with the new
               checkpoint — recovery sees the mismatch and uses the
               checkpoint alone, which already includes this batch. *)
            let t0 = Unix.gettimeofday () in
            let gen = Wal.gen w + 1 in
            ignore
              (Snapshot.write d.fs ~path:checkpoint_file
                 {
                   Snapshot.db;
                   edb = Maintain.edb h;
                   counters = [ ("generation", float_of_int gen) ];
                 });
            Wal.reset d.fs ~path:wal_file ~gen;
            ( (Unix.gettimeofday () -. t0) *. 1000.0,
              d.fs.Codec.size wal_file )
          end
          else (0.0, bytes)
        | _ -> (0.0, 0)
      in
      (match report with
      | None -> ()
      | Some r ->
        r :=
          {
            stratified = true;
            strata = rep.Maintain.strata;
            rounds = rep.Maintain.rounds;
            derived = rep.Maintain.added;
            skolems_suppressed = rep.Maintain.skolems_suppressed;
            joins = rep.Maintain.joins;
            tuples_scanned = rep.Maintain.tuples_scanned;
            index_hits = rep.Maintain.index_hits;
            plan_cache_hits = rep.Maintain.plan_cache_hits;
            strata_skipped = rep.Maintain.skipped;
            delta_facts = rep.Maintain.added + rep.Maintain.removed;
            rules_pruned = 0;
            atoms_minimized = 0;
            cost_oracle_used = 0;
            est_vs_actual = 0.0;
            domains_used =
              (match pool with Some p -> Pool.size p | None -> 1);
            parallel_batches = rep.Maintain.parallel_batches;
            checkpoint_ms;
            recovery_ms = 0.0;
            wal_bytes;
          });
      Ok rep)

let recover ?(config = default_config) ?report p =
  match effective_durability config with
  | None ->
    Error
      "Engine.recover: no durability configured (set config.durability or \
       KIND_DURABLE_DIR)"
  | Some d -> (
    let t0 = Unix.gettimeofday () in
    match Snapshot.read d.fs ~path:checkpoint_file with
    | Error e -> Error ("Engine.recover: " ^ e)
    | Ok None -> Ok None
    | Ok (Some snap) -> (
      match Wal.replay d.fs ~path:wal_file with
      | Error e -> Error ("Engine.recover: " ^ e)
      | Ok (wal_gen, entries, _tail) -> (
        (* a torn tail is a batch whose append barrier never completed:
           it was not applied before the crash, so dropping it is the
           pre-batch state — exactly what atomicity promises *)
        let ckpt_gen =
          match List.assoc_opt "generation" snap.Snapshot.counters with
          | Some v -> int_of_float v
          | None -> 0
        in
        (* a generation mismatch means the crash fell between a
           checkpoint write and its log reset: the surviving entries
           belong to the previous checkpoint (materialize: superseded;
           rotation: already included), so the checkpoint alone is the
           recovered state — and the pairing is repaired on disk so
           later appends land in a log recovery will trust *)
        let entries =
          if wal_gen = ckpt_gen then entries
          else begin
            Wal.reset d.fs ~path:wal_file ~gen:ckpt_gen;
            []
          end
        in
        let db = snap.Snapshot.db in
        let delta_facts = ref 0 in
        (* the model is a function of the final base database, so the
           whole log suffix replays as ONE coalesced maintenance batch
           — one propagation pass instead of one per entry; an empty
           net delta skips maintenance (and its prewarm copy) entirely *)
        let net = Wal.coalesce entries in
        let replay_all () =
          if net.Wal.additions = [] && net.Wal.deletions = [] then Ok ()
          else
            match
              Maintain.of_materialized ?pool:(pool_of config)
                ~max_term_depth:config.max_term_depth
                ~max_rounds:config.max_rounds
                ~compiled:config.compiled_plans ~edb:snap.Snapshot.edb
                ~prewarm:false p db
            with
            | Error e -> Error ("Engine.recover: " ^ e)
            | Ok h -> (
              match
                Maintain.apply h
                  (Maintain.delta ~additions:net.Wal.additions
                     ~deletions:net.Wal.deletions ())
              with
              | Error err -> Error ("Engine.recover: " ^ err)
              | Ok rep ->
                delta_facts := rep.Maintain.added + rep.Maintain.removed;
                Ok ())
        in
        match replay_all () with
        | Error e -> Error e
        | Ok () ->
          let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
          (match report with
          | None -> ()
          | Some r ->
            let geti k =
              match List.assoc_opt k snap.Snapshot.counters with
              | Some v -> int_of_float v
              | None -> 0
            in
            r :=
              {
                empty_report with
                strata = geti "strata";
                rounds = geti "rounds";
                derived = geti "derived";
                skolems_suppressed = geti "skolems_suppressed";
                delta_facts = !delta_facts;
                recovery_ms = ms;
                wal_bytes = d.fs.Codec.size wal_file;
              });
          Ok (Some db))))

let query ?stats db lits = Eval.solve_body ?stats ~db ~neg:db lits

let answers db (a : Atom.t) =
  let ss = query db [ Logic.Literal.Pos a ] in
  List.map (fun s -> List.map (Subst.apply s) a.Atom.args) ss
  |> List.sort_uniq Tuple.compare

let holds db a = answers db a <> []
