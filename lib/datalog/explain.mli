(** Why-provenance: derivation trees for materialized facts.

    A mediated view answer is only as trustworthy as its derivation —
    "which laboratory's rows, through which domain-map links, made this
    protein show up?" [explain] reconstructs one proof tree for a fact
    by backward-chaining over the already-materialized database: pick a
    rule whose head matches, bind its body against facts in the model,
    recurse on derived ones. Negated literals are justified by absence,
    aggregates/assignments/comparisons by re-evaluation.

    The tree is one witness, not all of them (lowest-index rule and
    first matching body instantiation — deterministic for a fixed
    program and database). *)

type justification =
  | Extensional                       (** an EDB/source fact *)
  | Rule of { rule : Logic.Rule.t; premises : t list }
  | Absent of Logic.Atom.t            (** a negated literal's witness *)
  | Computed of string                (** comparison/assignment/aggregate *)

and t = { fact : Logic.Atom.t; how : justification }

val explain :
  Program.t -> Database.t -> edb:Database.t -> Logic.Atom.t -> t option
(** [explain p db ~edb fact] — [None] when [fact] is not in [db].
    [edb] distinguishes source facts from derived ones (a fact in both
    is explained as extensional). *)

val depth : t -> int
val size : t -> int

val leaves : t -> Logic.Atom.t list
(** The extensional facts the derivation rests on — the provenance
    set. *)

val pp : Format.formatter -> t -> unit
