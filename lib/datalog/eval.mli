(** Rule-body evaluation: the join machinery shared by naive,
    semi-naive and well-founded evaluation.

    A body is solved left-to-right after a greedy reorder that always
    picks an evaluable literal (one whose {!Logic.Literal.needs} are
    bound). Positive atoms read from [db] — except one optional
    [focus] literal which reads from a delta database (the semi-naive
    trick). Negated atoms and aggregate literals read from [neg], which
    equals [db] for stratified evaluation and is a fixed candidate model
    during the well-founded alternating fixpoint. *)

type stats = {
  joins : int Atomic.t;  (** positive-literal extension steps *)
  tuples_scanned : int Atomic.t;
  index_hits : int Atomic.t;
      (** extension steps answered via an index probe *)
  plan_cache_hits : int Atomic.t;
      (** compiled-plan lookups answered from the plan cache (see
          {!Plan}; 0 on the interpreted path) *)
  cost_oracle_used : int Atomic.t;
      (** plan compilations whose literal order came from an installed
          cost oracle ({!Plan.with_oracle}) rather than the syntactic
          greedy score *)
  parallel_batches : int Atomic.t;
      (** delta batches fanned out across the domain pool (see
          {!Parexec}; 0 under sequential evaluation) *)
  mutable order_time : float;
      (** seconds spent ordering literals / compiling plans — on the
          compiled path this is paid once per (rule, focus), not per
          round. Main-domain only, hence not atomic. *)
}
(** Hot counters are [Atomic.t] so compiled plans may execute
    concurrently on the domain pool; all are order-independent sums, so
    parallel and sequential evaluation report identical values. *)

val new_stats : unit -> stats

val no_stats : stats
(** Shared sink for callers that don't collect stats. *)

val bump : int Atomic.t -> int -> unit
(** [bump c n] adds [n] to counter [c]. *)

val solve_body :
  ?stats:stats ->
  db:Database.t ->
  neg:Database.t ->
  ?focus:int * Database.t ->
  Logic.Literal.t list ->
  Logic.Subst.t list
(** All substitutions (restricted to body variables) satisfying the
    body. [focus = (i, delta)] forces the [i]-th literal (0-based, must
    be positive) to match against [delta] instead of [db]. *)

val derive :
  ?stats:stats ->
  db:Database.t ->
  neg:Database.t ->
  ?focus:int * Database.t ->
  Logic.Rule.t ->
  Logic.Atom.t list
(** Head instances derivable by one rule. All returned atoms are ground
    (guaranteed by rule safety). *)

val positive_positions : Logic.Rule.t -> int list
(** Indexes of the positive literals of a rule's body. *)

val eval_builtin : Logic.Atom.t -> bool
(** Evaluate a ground structural builtin atom (predicate prefixed
    [builtin:]); raises [Invalid_argument] on unknown builtins. *)

val eval_agg :
  stats ->
  neg:Database.t ->
  Logic.Subst.t ->
  Logic.Literal.agg ->
  Logic.Subst.t list
(** Evaluate an aggregate literal under an outer substitution: solve the
    inner conjunction against [neg], group, fold, and return one
    extension of the substitution per surviving group. Shared with the
    compiled-plan kernel ({!Plan}). *)
