(** A mutable fact base: one {!Relation} per predicate name. *)

type t

val create : unit -> t

val relation : t -> string -> Relation.t
(** The relation for a predicate, created empty on first access. *)

val relation_opt : t -> string -> Relation.t option
(** The relation if the predicate has ever been touched. *)

val relation_hint : t -> string -> hint:int -> Relation.t
(** Like {!relation}, but a relation created by this call is sized for
    [hint] rows up front — the bulk-load entry for readers that know
    the row count (the snapshot loader), avoiding the doubling-resize
    cascade of [hint] successive inserts. *)

val add_fact : t -> Logic.Atom.t -> bool
(** Insert a ground atom; [true] if new. Raises [Invalid_argument] on
    non-ground atoms. *)

val add_tuple : t -> string -> Tuple.t -> bool

val remove_fact : t -> Logic.Atom.t -> bool
(** Delete a ground fact; [true] if it was present. *)

val mem : t -> Logic.Atom.t -> bool
val predicates : t -> string list
val cardinal : t -> int
(** Total number of facts across all predicates. *)

val count : t -> string -> int
(** Number of facts of one predicate. *)

val facts : t -> string -> Logic.Atom.t list

val all_facts : t -> Logic.Atom.t list

val copy : t -> t
(** Snapshot: every relation is copied with its rows and built indexes
    cloned (see {!Relation.copy}), so the copy starts warm and
    mutations never alias. *)

val equal : t -> t -> bool
(** Extensional equality: the same facts under every predicate
    (predicates that exist but hold no tuples are ignored, so a
    database that merely {e touched} a relation equals one that never
    did). Deterministic via {!Relation.to_list}'s sorted enumeration. *)

val merge_into : dst:t -> t -> int
(** Add every fact of the source database into [dst]; returns the number
    of facts that were new. *)

val of_facts : Logic.Atom.t list -> t
val pp : Format.formatter -> t -> unit
