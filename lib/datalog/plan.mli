(** Compiled rule plans: the join kernel's fast path.

    A rule body is compiled once per delta-focus position into an
    ordered array of ops over a slot-numbered environment (a fixed
    [Term.t array] replacing the string-keyed substitution maps of the
    interpreted path). Compilation runs the same greedy literal
    ordering as {!Eval.solve_body} — evaluability and scores are
    identical, so compiled and interpreted evaluation visit literals in
    the same order — but pays it once per (rule, focus) instead of once
    per fixpoint round. Positive literals become indexed lookups with
    precomputed key extractors against the signature indexes of
    {!Relation}; comparisons, negations, assignments and aggregates
    become residual filter/bind steps.

    Plans are cached globally, keyed by (rule, focus, oracle order).
    The interpreted path in {!Eval} is kept as the differential-testing
    oracle (see [test/test_differential.ml]).

    A {e cost oracle} ({!with_oracle}) may propose analysis-derived
    literal orders: {!lookup} consults the installed oracle, validates
    the proposed order ({!order_ok}), and compiles with it — falling
    back to the greedy score whenever the oracle declines or proposes
    an unusable order. See [Analysis.Card.oracle]. *)

type t
(** A compiled plan for one rule and one optional focus position. *)

val compile : ?order:int list -> Logic.Rule.t -> focus:int option -> t
(** Compile without consulting the cache. [order], when given, fixes
    the literal order (indices into the body) instead of the greedy
    score. Raises [Invalid_argument] if the body is not
    range-restricted (same condition as {!Eval.solve_body}, detected at
    compile time) or if [order] is not a stepwise-evaluable permutation
    of the body. *)

val lookup : ?stats:Eval.stats -> Logic.Rule.t -> focus:int option -> t
(** Cached compile. Increments [stats.plan_cache_hits] on a hit and
    adds compile time to [stats.order_time] on a miss. When a cost
    oracle is installed ({!with_oracle}) and proposes a valid order,
    the plan uses that order and [stats.cost_oracle_used] is
    incremented. *)

type oracle = Logic.Rule.t -> focus:int option -> int list option
(** Analysis-supplied literal ordering: [Some order] to override the
    greedy score for this (rule, focus), [None] to decline. *)

val with_oracle : oracle -> (unit -> 'a) -> 'a
(** Run a computation with a cost oracle installed; every {!lookup}
    inside consults it. Restores the previous oracle on exit (also on
    exceptions). Installation is process-global — evaluation strategies
    resolve plans deep inside their drivers, so {!Engine.materialize}
    wraps whole evaluations rather than threading the oracle through
    every signature. *)

val order_ok : Logic.Rule.t -> int list -> bool
(** Whether an order is a permutation of the rule body that stays
    evaluable step by step — the validity condition {!lookup} applies
    to oracle proposals before trusting them. *)

val run :
  ?stats:Eval.stats ->
  db:Database.t ->
  neg:Database.t ->
  ?delta:Database.t ->
  t ->
  Logic.Atom.t list
(** Execute a plan: all derivable ground head instances. A plan
    compiled with a focus must be run with [delta] (the focus literal
    reads from it); a plan without focus ignores [delta]. *)

val derive :
  ?stats:Eval.stats ->
  db:Database.t ->
  neg:Database.t ->
  ?focus:int * Database.t ->
  Logic.Rule.t ->
  Logic.Atom.t list
(** Drop-in replacement for {!Eval.derive} on the compiled path:
    cached-compile then run. *)

val streamable : t -> bool
(** Whether {!run_stream}'s [emit] may insert into the plan's head
    relation while the plan executes: true unless the plan full-scans
    its own head predicate (mutating a hash table under iteration) or
    contains an aggregate (whose subquery re-enters the interpreter
    over the database). Keyed scans and delta scans iterate immutable
    snapshots, so they tolerate concurrent insertion. *)

val parallel_safe : t -> bool
(** Whether the plan may execute concurrently on several domains
    against a fixed database: true unless it contains an aggregate
    (whose subquery re-enters the interpreter, which builds indexes
    lazily). Probed-index warm-up is handled separately by {!warm}. *)

val reads_own_head : t -> bool
(** Whether a non-focus scan of the plan reads its own head predicate.
    {!Seminaive} buffers such plans instead of streaming them, so that
    one execution's emissions are never visible to its own probes —
    the property that makes partitioned-parallel execution
    ({!Parexec}) bit-identical to sequential execution. *)

val warm : db:Database.t -> t -> unit
(** Build and catch up every index the plan probes
    ({!Relation.warm_exact}), so concurrent executions of the plan are
    read-only on [db]. Call on the coordinating domain before handing
    the plan to workers. *)

val partition_column : t -> int option
(** The delta-scan column to hash-partition delta rows by — the first
    column the scan binds. [None] when the plan has no delta scan or
    the scan binds nothing (the caller falls back to whole-row
    hashing). *)

val run_stream :
  ?stats:Eval.stats ->
  max_term_depth:int ->
  db:Database.t ->
  neg:Database.t ->
  ?delta:Database.t ->
  ?delta_rows:Tuple.Packed.t list ->
  t ->
  emit:(Tuple.Packed.t -> unit) ->
  int
(** Like {!run_rows} but hands each packed row to [emit] as it is
    derived (returning the suppression count), so a caller cleared by
    {!streamable} can absorb rows without buffering them first. *)

val focus_pred : t -> string option
(** Predicate of the plan's delta-focus literal, if compiled with one.
    Lets a caller that keeps its own per-predicate delta rows hand them
    to {!run_rows} via [delta_rows] without building a database. *)

val run_rows :
  ?stats:Eval.stats ->
  max_term_depth:int ->
  db:Database.t ->
  neg:Database.t ->
  ?delta:Database.t ->
  ?delta_rows:Tuple.Packed.t list ->
  t ->
  Tuple.Packed.t list * int
(** Like {!run} but emits packed rows (see {!derive_rows}); for callers
    that hold pre-resolved plans. [delta_rows], when given, feeds the
    focus scan directly (taking precedence over [delta]) — the
    semi-naive driver keeps each round's delta as per-predicate row
    lists, not a database, because rows entering the delta are already
    deduplicated by their insertion into the model. *)

val derive_rows :
  ?stats:Eval.stats ->
  max_term_depth:int ->
  db:Database.t ->
  neg:Database.t ->
  ?focus:int * Database.t ->
  Logic.Rule.t ->
  Tuple.Packed.t list * int
(** Like {!derive} but emits packed rows directly (reusing the intern
    ids already tracked by the executor, so absorbing a row into a
    relation re-interns nothing) and applies the skolem depth guard
    before packing — heads deeper than [max_term_depth] are counted in
    the returned suppression count, not interned, not returned. The
    hot path under {!Seminaive.run}. *)

val cache_size : unit -> int
val clear_cache : unit -> unit
