module Atom = Logic.Atom
module Rule = Logic.Rule
module Literal = Logic.Literal
module SS = Set.Make (String)

type delta = { additions : Atom.t list; deletions : Atom.t list }

let delta ?(additions = []) ?(deletions = []) () = { additions; deletions }

let delta_is_empty d = d.additions = [] && d.deletions = []

type action = Skipped | Propagated | Recomputed

type stratum_report = {
  stratum : int;
  action : action;
  delta_in : int;
  added : int;
  removed : int;
  rounds : int;
}

type report = {
  added : int;
  removed : int;
  rounds : int;
  strata : int;
  skipped : int;
  recomputed : int;
  skolems_suppressed : int;
  joins : int;
  tuples_scanned : int;
  index_hits : int;
  plan_cache_hits : int;
  parallel_batches : int;
  touched : string list;
  per_stratum : stratum_report list;
}

type t = {
  max_term_depth : int;
  max_rounds : int;
  compiled : bool;
  pool : Pool.t option;
  mutable rules : Rule.t list;
  mutable strata : Rule.t list list;
  mutable idb : SS.t;
  edb : Database.t;
  db : Database.t;
}

(* The derive entry used by every maintenance join: compiled plans by
   default, the interpreted oracle when the handle was built with
   [~compiled:false]. *)
let derive t ?stats ~db ~neg ?focus r =
  if t.compiled then Plan.derive ?stats ~db ~neg ?focus r
  else Eval.derive ?stats ~db ~neg ?focus r

let db t = t.db
let edb t = t.edb
let rules t = t.rules

let idb_of rules =
  List.fold_left (fun s r -> SS.add (Rule.head_pred r) s) SS.empty rules

let unstratified_msg cycle =
  Printf.sprintf "not stratified (nonmonotonic cycle through %s)"
    (String.concat ", " cycle)

(* Warm the join indexes the maintenance passes will need: a body
   literal's position gets looked up by key whenever its variable is
   bound by another body literal (semi-naive focus joins) or by the
   head (goal-directed re-derivation in DRed). Bulk materialization
   rarely binds every such position, so without this the first delta
   pays for building an index over the whole extent. *)
let warm_indexes db rules =
  List.iter
    (fun (r : Rule.t) ->
      let body_atoms =
        List.filter_map
          (function
            | Literal.Pos (a : Atom.t) when not (Literal.is_builtin a.Atom.pred)
              ->
              Some a
            | _ -> None)
          r.Rule.body
      in
      List.iteri
        (fun i (a : Atom.t) ->
          let bound_elsewhere =
            Atom.vars r.Rule.head
            @ List.concat
                (List.mapi
                   (fun j (b : Atom.t) -> if j = i then [] else Atom.vars b)
                   body_atoms)
          in
          match Database.relation_opt db a.Atom.pred with
          | None -> ()
          | Some rel ->
            List.iteri
              (fun pos arg ->
                match arg with
                | Logic.Term.Var x when List.mem x bound_elsewhere ->
                  Relation.warm_index rel ~pos
                | _ -> ())
              a.Atom.args)
        body_atoms)
    rules

let init ?(max_term_depth = 8) ?(max_rounds = 100_000) ?(compiled = true) ?pool
    ?prune ?minimize p edb0 =
  let facts, p' = Program.split_facts p in
  (* Semantic minimization rewrites rules to equivalent ones with fewer
     body atoms; unlike [prune] it is valid for every database, so the
     minimized rules replace the originals for the whole lifetime of
     the handle (deltas included). *)
  let p' =
    match minimize with
    | None -> p'
    | Some f -> Program.make_exn (f (Program.rules p'))
  in
  match Stratify.rules_by_stratum p' with
  | Error cycle -> Error ("Maintain.init: " ^ unstratified_msg cycle)
  | Ok strata ->
    let edb = Database.copy edb0 in
    List.iter (fun f -> ignore (Database.add_fact edb f)) facts;
    let db = Database.copy edb in
    (* Dead-rule pruning applies to the initial materialization only:
       the handle keeps the full rule set, because a later delta can
       revive a rule that is dead w.r.t. the current base (every
       instantiation of a revived rule contains a delta fact, so the
       semi-naive focus joins of [apply] derive it). *)
    let keep =
      match prune with
      | None -> fun _ -> true
      | Some f ->
        let kept = f (Program.rules p') db in
        fun r -> List.exists (Rule.equal r) kept
    in
    let stats = Eval.new_stats () in
    List.iter
      (fun rs ->
        let rs = List.filter keep rs in
        if rs <> [] then
          ignore
            (Seminaive.run ~stats ?pool ~compiled ~max_term_depth ~max_rounds
               ~neg:db rs db))
      strata;
    let rules = Program.rules p' in
    warm_indexes db rules;
    Ok
      {
        max_term_depth;
        max_rounds;
        compiled;
        pool;
        rules;
        strata;
        idb = idb_of rules;
        edb;
        db;
      }

let of_materialized ?(max_term_depth = 8) ?(max_rounds = 100_000)
    ?(compiled = true) ?pool ?edb:edb0 ?(prewarm = true) p db =
  let facts, p' = Program.split_facts p in
  match Stratify.rules_by_stratum p' with
  | Error cycle -> Error ("Maintain.of_materialized: " ^ unstratified_msg cycle)
  | Ok strata ->
    let rules = Program.rules p' in
    let idb = idb_of rules in
    (* With an explicit base database (a checkpoint's): adopt it as-is.
       Without one, reconstruct the base from the non-IDB extents —
       sound only when base facts never share a predicate with a rule
       head, which recovery cannot assume (the mediator asserts source
       data on predicates its anchor rules also derive into). *)
    let edb =
      match edb0 with
      | Some e -> Database.copy e
      | None ->
        let edb = Database.create () in
        List.iter
          (fun pred ->
            if not (SS.mem pred idb) then
              List.iter
                (fun f -> ignore (Database.add_fact edb f))
                (Database.facts db pred))
          (Database.predicates db);
        edb
    in
    List.iter (fun f -> ignore (Database.add_fact edb f)) facts;
    if prewarm then warm_indexes db rules;
    Ok
      { max_term_depth; max_rounds; compiled; pool; rules; strata; idb; edb; db }

let too_deep t (a : Atom.t) =
  List.exists (fun x -> Logic.Term.depth x > t.max_term_depth) a.Atom.args

(* One stratum, propagate path, deletion side: delete-and-rederive
   (DRed). Facts already removed globally are restored for the duration
   of the over-deletion fixpoint so rule bodies join against the
   pre-deletion extents; candidates asserted in the base are immune.
   [explicit] holds base-level retractions of this stratum's own head
   predicates: they join the re-derivation pool (a retracted base fact
   survives when rules still prove it) and [unremove] is called on the
   survivors so downstream strata stop treating them as deleted. *)
let dred_stratum t stats rs ~removed_db ~explicit ~unremove ~note_removed =
  let restored =
    List.filter (fun f -> Database.add_fact t.db f) (Database.all_facts removed_db)
  in
  let overdel = Database.create () in
  let rounds = ref 0 in
  let rec over d =
    if Database.cardinal d = 0 then ()
    else begin
      incr rounds;
      if !rounds > t.max_rounds then
        failwith "Maintain: max_rounds exceeded during over-deletion";
      let next = Database.create () in
      List.iter
        (fun r ->
          List.iter
            (fun i ->
              List.iter
                (fun a ->
                  if
                    Database.mem t.db a
                    && (not (Database.mem t.edb a))
                    && not (Database.mem overdel a)
                  then begin
                    ignore (Database.add_fact overdel a);
                    ignore (Database.add_fact next a)
                  end)
                (derive t ~stats ~db:t.db ~neg:t.db ~focus:(i, d) r))
            (Eval.positive_positions r))
        rs;
      over next
    end
  in
  over removed_db;
  List.iter (fun f -> ignore (Database.remove_fact t.db f)) restored;
  let candidates = Database.all_facts overdel in
  List.iter (fun f -> ignore (Database.remove_fact t.db f)) candidates;
  (* Re-derive survivors goal-directedly: a candidate stays deleted only
     if no rule instance proves it from the remaining database. *)
  let provable (a : Atom.t) =
    List.exists
      (fun (r : Rule.t) ->
        String.equal (Rule.head_pred r) a.Atom.pred
        &&
        match Logic.Unify.matches_list ~patterns:r.Rule.head.Atom.args a.Atom.args with
        | None -> false
        | Some s ->
          let body = List.map (Literal.apply s) r.Rule.body in
          Eval.solve_body ~stats ~db:t.db ~neg:t.db body <> [])
      rs
  in
  let pool =
    candidates
    @ List.filter (fun (a : Atom.t) -> not (Database.mem overdel a)) explicit
  in
  let rec rederive () =
    let progress = ref false in
    List.iter
      (fun a ->
        if (not (Database.mem t.db a)) && provable a then begin
          ignore (Database.add_fact t.db a);
          progress := true
        end)
      pool;
    if !progress then rederive ()
  in
  rederive ();
  List.iter
    (fun f ->
      if (not (Database.mem t.db f)) && not (Database.mem removed_db f) then
        note_removed f)
    candidates;
  List.iter (fun f -> if Database.mem t.db f then unremove f) explicit;
  !rounds

(* The shared stratum walk behind [apply] and [extend_rules].
   Precondition: [t.strata]/[t.idb] already reflect [new_rules], and the
   EDB delta has been validated. *)
let run_maintenance t ~new_rules ~additions ~deletions =
  let stats = Eval.new_stats () in
  let skolems = ref 0 in
  let added_db = Database.create () in
  let removed_db = Database.create () in
  let changed = ref SS.empty in
  let note_changed p = changed := SS.add p !changed in
  (* Base delta: deletions first, then insertions (a fact listed in
     both ends up present). Extensional predicates settle here; a
     retracted base fact of a {e derived} predicate is only
     provisionally removed — its defining stratum re-derives it below
     if the rules still prove it. *)
  List.iter
    (fun f ->
      if Database.remove_fact t.edb f then begin
        ignore (Database.remove_fact t.db f);
        ignore (Database.add_fact removed_db f);
        note_changed f.Atom.pred
      end)
    deletions;
  List.iter
    (fun f ->
      if Database.add_fact t.edb f then begin
        ignore (Database.add_fact t.db f);
        ignore (Database.add_fact added_db f);
        note_changed f.Atom.pred
      end)
    additions;
  let is_new r = List.exists (Rule.equal r) new_rules in
  let per_stratum = ref [] in
  let total_rounds = ref 0 in
  List.iteri
    (fun si rs ->
      if rs <> [] then begin
        let delta_in = Database.cardinal added_db + Database.cardinal removed_db in
        let heads =
          List.fold_left (fun s r -> SS.add (Rule.head_pred r) s) SS.empty rs
        in
        let deps = List.concat_map Rule.body_predicates rs in
        let pos_changed =
          List.exists (fun (p, nm) -> (not nm) && SS.mem p !changed) deps
        in
        let neg_changed =
          List.exists (fun (p, nm) -> nm && SS.mem p !changed) deps
        in
        let has_new = new_rules <> [] && List.exists is_new rs in
        let s_added = ref 0 and s_removed = ref 0 and s_rounds = ref 0 in
        let note_added (a : Atom.t) =
          ignore (Database.add_fact added_db a);
          note_changed a.Atom.pred;
          incr s_added
        in
        let note_removed (a : Atom.t) =
          ignore (Database.add_fact removed_db a);
          note_changed a.Atom.pred;
          incr s_removed
        in
        (* base retractions of this stratum's own heads: even when no
           body dependency changed, the stratum must get a chance to
           re-derive them. *)
        let explicit_rm =
          List.filter
            (fun (a : Atom.t) -> SS.mem a.Atom.pred heads)
            (Database.all_facts removed_db)
        in
        let action =
          if
            (not pos_changed) && (not neg_changed) && (not has_new)
            && explicit_rm = []
          then Skipped
          else if neg_changed then begin
            (* A nonmonotonic dependency saw its extent change: rebuild
               just this stratum from the (already-maintained) strata
               below it. *)
            let old_facts =
              SS.fold (fun h acc -> Database.facts t.db h @ acc) heads []
            in
            List.iter (fun f -> ignore (Database.remove_fact t.db f)) old_facts;
            SS.iter
              (fun h ->
                List.iter
                  (fun f -> ignore (Database.add_fact t.db f))
                  (Database.facts t.edb h))
              heads;
            let o =
              Seminaive.run ~stats ?pool:t.pool ~compiled:t.compiled
                ~max_term_depth:t.max_term_depth ~max_rounds:t.max_rounds
                ~neg:t.db rs t.db
            in
            skolems := !skolems + o.Seminaive.skolems_suppressed;
            s_rounds := o.Seminaive.rounds;
            let old_set = Database.of_facts old_facts in
            List.iter
              (fun f -> if not (Database.mem t.db f) then note_removed f)
              old_facts;
            SS.iter
              (fun h ->
                List.iter
                  (fun f -> if not (Database.mem old_set f) then note_added f)
                  (Database.facts t.db h))
              heads;
            List.iter
              (fun (a : Atom.t) ->
                if Database.mem t.db a then
                  ignore (Database.remove_fact removed_db a))
              explicit_rm;
            Recomputed
          end
          else begin
            (* Propagate: deletions via DRed, then new-rule seeding, then
               semi-naive insertion propagation focused on the delta. *)
            let rem_relevant =
              List.exists
                (fun (p, nm) -> (not nm) && Database.count removed_db p > 0)
                deps
            in
            if rem_relevant || explicit_rm <> [] then begin
              let unremove (a : Atom.t) =
                ignore (Database.remove_fact removed_db a)
              in
              s_rounds :=
                !s_rounds
                + dred_stratum t stats rs ~removed_db ~explicit:explicit_rm
                    ~unremove ~note_removed
            end;
            if has_new then
              List.iter
                (fun r ->
                  if is_new r then
                    List.iter
                      (fun a ->
                        if too_deep t a then incr skolems
                        else if Database.add_fact t.db a then note_added a)
                      (derive t ~stats ~db:t.db ~neg:t.db r))
                rs;
            let add_relevant =
              List.exists
                (fun (p, nm) -> (not nm) && Database.count added_db p > 0)
                deps
            in
            if add_relevant then begin
              (* One (rule, focus) propagation batch: fanned out across
                 the domain pool when the handle has one and the delta
                 extent is big enough — same partitioned execution as
                 Seminaive's round loop (DRed over-deletion above stays
                 sequential: its batches are deletion-bounded and
                 interleave with db mutation). The parallel branch
                 filters skolem-deep heads inside [Parexec.run_delta]
                 (same count, counted per emission either way). *)
              let derive_batch r i d ~absorb =
                let seq atoms =
                  List.iter
                    (fun a -> if too_deep t a then incr skolems else absorb a)
                    atoms
                in
                match t.pool with
                | Some _ when t.compiled -> (
                  (* one Plan.lookup either way, so plan_cache_hits
                     stays identical to the pool-less run *)
                  let plan = Plan.lookup ~stats r ~focus:(Some i) in
                  let rows =
                    match Plan.focus_pred plan with
                    | None -> []
                    | Some fp -> (
                      match Database.relation_opt d fp with
                      | Some rel ->
                        Relation.fold_packed (fun p acc -> p :: acc) rel []
                      | None -> [])
                  in
                  match Parexec.eligible ~pool:t.pool plan rows with
                  | Some pool ->
                    let out, supp =
                      Parexec.run_delta ~stats ~pool
                        ~max_term_depth:t.max_term_depth ~db:t.db ~neg:t.db
                        plan ~delta_rows:rows
                    in
                    skolems := !skolems + supp;
                    List.iter
                      (fun row ->
                        absorb
                          (Atom.make (Rule.head_pred r)
                             (Tuple.Packed.to_list row)))
                      out
                  | None -> seq (Plan.run ~stats ~db:t.db ~neg:t.db ~delta:d plan))
                | _ -> seq (derive t ~stats ~db:t.db ~neg:t.db ~focus:(i, d) r)
              in
              let rec prop rounds d =
                if Database.cardinal d = 0 then rounds
                else begin
                  if rounds > t.max_rounds then
                    failwith "Maintain: max_rounds exceeded during propagation";
                  let next = Database.create () in
                  List.iter
                    (fun r ->
                      List.iter
                        (fun i ->
                          derive_batch r i d ~absorb:(fun a ->
                              if Database.add_fact t.db a then begin
                                ignore (Database.add_fact next a);
                                note_added a
                              end))
                        (Eval.positive_positions r))
                    rs;
                  prop (rounds + 1) next
                end
              in
              s_rounds := !s_rounds + prop 0 (Database.copy added_db)
            end;
            Propagated
          end
        in
        total_rounds := !total_rounds + !s_rounds;
        per_stratum :=
          {
            stratum = si;
            action;
            delta_in;
            added = !s_added;
            removed = !s_removed;
            rounds = !s_rounds;
          }
          :: !per_stratum
      end)
    t.strata;
  let per_stratum = List.rev !per_stratum in
  let count a = List.length (List.filter (fun s -> s.action = a) per_stratum) in
  {
    added = Database.cardinal added_db;
    removed = Database.cardinal removed_db;
    rounds = !total_rounds;
    strata = List.length per_stratum;
    skipped = count Skipped;
    recomputed = count Recomputed;
    skolems_suppressed = !skolems;
    joins = Atomic.get stats.Eval.joins;
    tuples_scanned = Atomic.get stats.Eval.tuples_scanned;
    index_hits = Atomic.get stats.Eval.index_hits;
    plan_cache_hits = Atomic.get stats.Eval.plan_cache_hits;
    parallel_batches = Atomic.get stats.Eval.parallel_batches;
    touched = SS.elements !changed;
    per_stratum;
  }

let validate_delta atoms =
  let rec check = function
    | [] -> Ok ()
    | (a : Atom.t) :: rest ->
      if not (Atom.is_ground a) then
        Error
          (Printf.sprintf "Maintain: delta fact %s is not ground"
             (Atom.to_string a))
      else check rest
  in
  check atoms

let apply t d =
  match validate_delta (d.additions @ d.deletions) with
  | Error e -> Error e
  | Ok () ->
    Ok
      (run_maintenance t ~new_rules:[] ~additions:d.additions
         ~deletions:d.deletions)

let extend_rules t ?(delta = { additions = []; deletions = [] }) new_rules =
  if new_rules = [] then apply t delta
  else
    match Program.make (t.rules @ new_rules) with
    | Error e -> Error e
    | Ok p -> (
      match Stratify.rules_by_stratum p with
      | Error cycle -> Error ("Maintain.extend_rules: " ^ unstratified_msg cycle)
      | Ok strata -> (
        let rules = Program.rules p in
        let idb = idb_of rules in
        match validate_delta (delta.additions @ delta.deletions) with
        | Error e -> Error e
        | Ok () ->
          t.rules <- rules;
          t.strata <- strata;
          t.idb <- idb;
          warm_indexes t.db new_rules;
          Ok
            (run_maintenance t ~new_rules ~additions:delta.additions
               ~deletions:delta.deletions)))
