module Term = Logic.Term
module Atom = Logic.Atom
module Literal = Logic.Literal
module Subst = Logic.Subst
module Unify = Logic.Unify
module Rule = Logic.Rule

type stats = {
  joins : int Atomic.t;
  tuples_scanned : int Atomic.t;
  index_hits : int Atomic.t;
  plan_cache_hits : int Atomic.t;
  cost_oracle_used : int Atomic.t;
  parallel_batches : int Atomic.t;
  mutable order_time : float;
}

let new_stats () =
  {
    joins = Atomic.make 0;
    tuples_scanned = Atomic.make 0;
    index_hits = Atomic.make 0;
    plan_cache_hits = Atomic.make 0;
    cost_oracle_used = Atomic.make 0;
    parallel_batches = Atomic.make 0;
    order_time = 0.0;
  }

let no_stats = new_stats ()
let bump c n = ignore (Atomic.fetch_and_add c n)

module SS = Set.Make (String)

(* Extend one substitution against a positive atom read from [rel]. *)
let extend_pos stats rel s (a : Atom.t) =
  let pattern = List.map (Subst.apply s) a.Atom.args in
  let candidates = Relation.select rel ~pattern in
  bump stats.joins 1;
  if List.exists Term.is_ground pattern then bump stats.index_hits 1;
  bump stats.tuples_scanned (List.length candidates);
  List.filter_map
    (fun tup -> Unify.matches_list ~init:s ~patterns:pattern tup)
    candidates

let rel_of db pred =
  match Database.relation_opt db pred with
  | Some r -> r
  | None -> Relation.create ()

(* Structural builtins (see Literal's documentation). Arguments are
   ground by the time the greedy order reaches the literal. *)
let eval_builtin (a : Atom.t) =
  let prefix_of f p =
    String.length p <= String.length f && String.sub f 0 (String.length p) = p
  in
  match a.Atom.pred, a.Atom.args with
  | "builtin:is_app", [ t ] -> (match t with Term.App _ -> true | _ -> false)
  | "builtin:is_const", [ t ] -> (
    match t with Term.Const _ -> true | _ -> false)
  | "builtin:functor_prefix", [ t; p ] -> (
    match t, Term.as_string p with
    | Term.App (f, _), Some prefix -> prefix_of f prefix
    | _ -> false)
  | "builtin:not_functor_prefix", [ t; p ] -> (
    match t, Term.as_string p with
    | Term.App (f, _), Some prefix -> not (prefix_of f prefix)
    | Term.App _, None -> false
    | _ -> true)
  | p, _ -> invalid_arg ("Eval: unknown builtin predicate " ^ p)

(* Aggregate evaluation: solve the inner conjunction against [neg]
   under the outer substitution, group the distinct (group_by, target)
   pairs by group key, fold the aggregate function, and emit one
   extension per group. *)
let eval_agg stats ~neg s (ag : Literal.agg) =
  let inner = List.map (Atom.apply s) ag.Literal.body in
  let inner_lits = List.map (fun a -> Literal.Pos a) inner in
  (* Inner solve: positive only, against neg database. *)
  let rec solve lits ss =
    match lits with
    | [] -> ss
    | Literal.Pos a :: rest ->
      let ss' =
        List.concat_map
          (fun s -> extend_pos stats (rel_of neg a.Atom.pred) s a)
          ss
      in
      if ss' = [] then [] else solve rest ss'
    | _ :: _ -> assert false
  in
  let solutions = solve inner_lits [ Subst.empty ] in
  let module TM = Map.Make (struct
    type t = Term.t list

    let compare = Term.compare_list
  end) in
  (* Distinct (key, target) pairs per group; set semantics. *)
  let groups =
    List.fold_left
      (fun m tau ->
        let key = List.map (fun t -> Subst.apply tau (Subst.apply s t)) ag.group_by in
        let v = Subst.apply tau (Subst.apply s ag.target) in
        let prev = match TM.find_opt key m with Some vs -> vs | None -> [] in
        if List.exists (Term.equal v) prev then m else TM.add key (v :: prev) m)
      TM.empty solutions
  in
  let numeric vs =
    List.filter_map
      (fun v ->
        match v with
        | Term.Const (Term.Int i) -> Some (float_of_int i)
        | Term.Const (Term.Float f) -> Some f
        | _ -> None)
      vs
  in
  let value vs =
    match ag.func with
    | Literal.Count -> Some (Term.int (List.length vs))
    | Literal.Sum ->
      let ns = numeric vs in
      if List.length ns <> List.length vs then None
      else Some (Term.float (List.fold_left ( +. ) 0.0 ns))
    | Literal.Avg ->
      let ns = numeric vs in
      if ns = [] || List.length ns <> List.length vs then None
      else
        Some
          (Term.float
             (List.fold_left ( +. ) 0.0 ns /. float_of_int (List.length ns)))
    | Literal.Min | Literal.Max -> (
      match vs with
      | [] -> None
      | v0 :: rest ->
        let pick =
          if ag.func = Literal.Min then fun a b ->
            if Term.compare b a < 0 then b else a
          else fun a b -> if Term.compare b a > 0 then b else a
        in
        Some (List.fold_left pick v0 rest))
  in
  TM.fold
    (fun key vs acc ->
      match value vs with
      | None -> acc
      | Some v -> (
        (* Bind the group-by terms to the key and the result to v. *)
        let patterns = List.map (Subst.apply s) ag.group_by in
        match Unify.matches_list ~init:s ~patterns key with
        | None -> acc
        | Some s' -> (
          match Unify.matches ~init:s' ~pattern:(Subst.apply s' ag.result) v with
          | Some s'' -> s'' :: acc
          | None -> acc)))
    groups []

let solve_body ?(stats = no_stats) ~db ~neg ?focus lits =
  let lits = Array.of_list lits in
  let n = Array.length lits in
  let used = Array.make n false in
  let focus_idx, focus_db =
    match focus with Some (i, d) -> (i, Some d) | None -> (-1, None)
  in
  (* Greedy order: all substitutions at the same step share the same set
     of bound variables, so evaluability is a property of the step. *)
  let rec step bound ss remaining =
    if remaining = 0 || ss = [] then ss
    else begin
      let evaluable i =
        (not used.(i))
        &&
        match lits.(i) with
        | Literal.Cmp (Literal.Eq, t1, t2) ->
          (* Unification can only proceed once one side is fully bound,
             otherwise later negations would be tested non-ground. *)
          List.for_all (fun x -> SS.mem x bound) (Term.vars t1)
          || List.for_all (fun x -> SS.mem x bound) (Term.vars t2)
        | l -> List.for_all (fun x -> SS.mem x bound) (Literal.needs l)
      in
      (* Prefer the focus literal, then positive atoms with many bound
         variables (more selective joins), then tests/aggregates. *)
      let score i =
        match lits.(i) with
        | Literal.Pos a ->
          let vs = Atom.vars a in
          let boundness =
            List.length (List.filter (fun x -> SS.mem x bound) vs)
          in
          if i = focus_idx then 1000 + boundness else 100 + boundness
        | Literal.Neg _ | Literal.Cmp _ | Literal.Assign _ -> 500
        | Literal.Agg _ -> 10
      in
      let best = ref (-1) in
      for i = 0 to n - 1 do
        if evaluable i && (!best = -1 || score i > score !best) then best := i
      done;
      if !best = -1 then
        invalid_arg "Eval.solve_body: body is not range-restricted"
      else begin
        let i = !best in
        used.(i) <- true;
        let lit = lits.(i) in
        let ss' =
          match lit with
          | Literal.Pos a when Literal.is_builtin a.Atom.pred ->
            List.filter (fun s -> eval_builtin (Atom.apply s a)) ss
          | Literal.Pos a ->
            let rel =
              match focus_db with
              | Some d when i = focus_idx -> rel_of d a.Atom.pred
              | _ -> rel_of db a.Atom.pred
            in
            List.concat_map (fun s -> extend_pos stats rel s a) ss
          | Literal.Neg a ->
            (* The greedy order only reaches a negated literal once all
               its variables are bound, so [a'] is ground here. *)
            List.filter (fun s -> not (Database.mem neg (Atom.apply s a))) ss
          | Literal.Cmp (Literal.Eq, t1, t2) ->
            (* Equality binds (e.g. the skolem assignment Y = f(X) in
               domain-map assertions), so solve it by unification. *)
            List.filter_map
              (fun s -> Unify.unify ~init:s (Subst.apply s t1) (Subst.apply s t2))
              ss
          | Literal.Cmp (op, t1, t2) ->
            List.filter
              (fun s ->
                match
                  Literal.eval_cmp op (Subst.apply s t1) (Subst.apply s t2)
                with
                | Some b -> b
                | None -> false)
              ss
          | Literal.Assign (t, e) ->
            List.filter_map
              (fun s ->
                match Literal.eval_expr (Literal.apply_expr s e) with
                | None -> None
                | Some v -> Unify.unify ~init:s (Subst.apply s t) v)
              ss
          | Literal.Agg ag -> List.concat_map (fun s -> eval_agg stats ~neg s ag) ss
        in
        let bound' =
          List.fold_left (fun acc x -> SS.add x acc) bound (Literal.binds lit)
        in
        step bound' ss' (remaining - 1)
      end
    end
  in
  step SS.empty [ Subst.empty ] n

let derive ?stats ~db ~neg ?focus (r : Rule.t) =
  let ss = solve_body ?stats ~db ~neg ?focus r.Rule.body in
  List.map (fun s -> Atom.apply s r.Rule.head) ss

let positive_positions (r : Rule.t) =
  List.mapi (fun i l -> (i, l)) r.Rule.body
  |> List.filter_map (fun (i, l) ->
         match l with Literal.Pos _ -> Some i | _ -> None)
