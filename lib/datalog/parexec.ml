(* Partitioned-parallel execution of one compiled delta plan.

   The unit of parallelism is deliberately small: a single (rule,
   focus) execution against one round's delta rows. The driver
   (Seminaive / Maintain) still absorbs results into the model
   sequentially, in rule order, exactly where the sequential path
   would — so the parallel evaluation is equivalent round for round:

   - during a fan-out nothing mutates the database: every index the
     plan probes is built and caught up first ([Plan.warm]), plans
     containing aggregates never get here ([Plan.parallel_safe]), and
     self-reading plans are buffered on the sequential path too
     ([Plan.reads_own_head]), so a buffered execution against a fixed
     database is a pure function of (plan, delta rows);
   - each delta row is processed by exactly one worker, and a row's
     emissions depend only on the database and that row — so the
     emitted multiset equals the sequential one, partitioning be
     damned, and with it [derived], [skolems_suppressed], [rounds] and
     the scan counters (all order-independent sums);
   - workers return per-partition buffers that are merged in partition
     order on the coordinating domain before absorption.

   Hence domains=1 and domains=N produce identical databases and
   identical report counters; only [parallel_batches]/[domains_used]
   record that the pool was used. See DESIGN.md §13. *)

module Packed = Tuple.Packed

let default_min_rows =
  match Sys.getenv_opt "KIND_PAR_MIN_ROWS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 16)
  | None -> 16

let min_rows = ref default_min_rows

let eligible ~pool plan delta_rows =
  match pool with
  | None -> None
  | Some p ->
    if
      Plan.parallel_safe plan
      && List.compare_length_with delta_rows !min_rows >= 0
    then Some p
    else None

(* Hash-partition the delta by the plan's first bound column (falling
   back to whole-row hashing), preserving relative row order inside
   each partition. Intern ids are process-run-specific, so *which*
   partition a row lands in is not stable across processes — but no
   observable result depends on the assignment, only on each row being
   processed exactly once. *)
let partition ~k ~col rows =
  let buckets = Array.make k [] in
  let put b row = buckets.(b) <- row :: buckets.(b) in
  List.iter
    (fun row ->
      let h =
        match col with
        | Some c when Packed.arity row > c ->
          let id = Packed.column_id row c in
          if id >= 0 then id else Packed.hash row
        | _ -> Packed.hash row
      in
      put (h land max_int mod k) row)
    rows;
  Array.map List.rev buckets

let run_delta ?stats ~pool ~max_term_depth ~db ~neg plan ~delta_rows =
  Plan.warm ~db plan;
  (match stats with
  | Some s -> Eval.bump s.Eval.parallel_batches 1
  | None -> ());
  let parts =
    partition ~k:(Pool.size pool) ~col:(Plan.partition_column plan) delta_rows
    |> Array.to_list
    |> List.filter (fun rows -> rows <> [])
  in
  match parts with
  | [] -> ([], 0)
  | [ rows ] -> Plan.run_rows ?stats ~max_term_depth ~db ~neg ~delta_rows:rows plan
  | parts ->
    let outs =
      Pool.run_list pool
        (List.map
           (fun rows () ->
             Plan.run_rows ?stats ~max_term_depth ~db ~neg ~delta_rows:rows
               plan)
           parts)
    in
    ( List.concat_map fst outs,
      List.fold_left (fun n (_, s) -> n + s) 0 outs )
