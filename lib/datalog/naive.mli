(** Naive bottom-up evaluation: re-derive everything from scratch each
    round until fixpoint. Kept as the baseline for the engine ablation
    bench (A1 in DESIGN.md); {!Seminaive} is the production strategy. *)

type outcome = {
  rounds : int;
  derived : int;          (** new facts added over the run *)
  skolems_suppressed : int; (** derivations dropped by the depth bound *)
}

val run :
  ?stats:Eval.stats ->
  ?max_term_depth:int ->
  ?max_rounds:int ->
  neg:Database.t ->
  Logic.Rule.t list ->
  Database.t ->
  outcome
(** Evaluate the rules against (and into) [db], with negation and
    aggregation reading [neg]. Mutates [db]. Raises [Failure] when
    [max_rounds] is exceeded (runaway recursion through skolems). *)
