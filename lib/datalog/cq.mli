(** Conjunctive-query theory: containment, equivalence and
    minimization by the canonical-database (freezing) method.

    The mediator uses these for view maintenance hygiene: detecting
    that one integrated view subsumes another, minimizing generated
    view bodies before shipping subqueries, and validating rewritings
    (the "semantic knowledge as rewrite rules Q1 -> Q2" of the paper's
    related work [FRV96] is exactly a containment obligation).

    Queries here are positive CQs: a head atom over distinguished
    variables and a body of positive, function-free atoms. *)

type t = { head : Logic.Atom.t; body : Logic.Atom.t list }

val make : Logic.Atom.t -> Logic.Atom.t list -> (t, string) result
(** Checks safety (head variables occur in the body) and rejects
    function symbols. *)

val make_exn : Logic.Atom.t -> Logic.Atom.t list -> t

val of_rule : Logic.Rule.t -> (t, string) result
(** A rule qualifies when its body is purely positive atoms. *)

val freeze : t -> Database.t * Logic.Atom.t
(** The canonical database: each variable becomes a fresh constant;
    returns the frozen body as facts and the frozen head. *)

val contained_in : t -> t -> bool
(** [contained_in q1 q2] — is every answer of [q1] also an answer of
    [q2] on every database? Decided by evaluating [q2] over [q1]'s
    canonical database (NP-complete in general; bodies here are
    small). *)

val equivalent : t -> t -> bool

val minimize : t -> t
(** The core: a minimal equivalent subquery (drops redundant atoms).
    Deterministic for a given atom order. *)

val is_minimal : t -> bool

val pp : Format.formatter -> t -> unit
