module Atom = Logic.Atom

type outcome = { rounds : int; derived : int; skolems_suppressed : int }

let too_deep max_term_depth (a : Atom.t) =
  List.exists (fun t -> Logic.Term.depth t > max_term_depth) a.Atom.args

let run ?stats ?(max_term_depth = 8) ?(max_rounds = 100_000) ~neg rules db =
  let rounds = ref 0 in
  let derived = ref 0 in
  let suppressed = ref 0 in
  let changed = ref true in
  while !changed do
    incr rounds;
    if !rounds > max_rounds then
      failwith "Naive.run: max_rounds exceeded (diverging program?)";
    changed := false;
    List.iter
      (fun r ->
        let heads = Eval.derive ?stats ~db ~neg r in
        List.iter
          (fun a ->
            if too_deep max_term_depth a then incr suppressed
            else if Database.add_fact db a then begin
              incr derived;
              changed := true
            end)
          heads)
      rules
  done;
  { rounds = !rounds; derived = !derived; skolems_suppressed = !suppressed }
