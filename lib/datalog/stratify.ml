module Rule = Logic.Rule

type edge = { from_pred : string; to_pred : string; nonmono : bool }

let dependency_edges p =
  List.concat_map
    (fun r ->
      List.map
        (fun (q, nonmono) ->
          { from_pred = Rule.head_pred r; to_pred = q; nonmono })
        (Rule.body_predicates r))
    (Program.rules p)
  |> List.sort_uniq Stdlib.compare

type outcome =
  | Stratified of string list list
  | Unstratified of string list

module SM = Map.Make (String)

(* Iterative stratum assignment: s(h) >= s(b) for positive deps,
   s(h) >= s(b) + 1 for nonmonotonic ones. If a stratum exceeds the
   number of predicates, there is a nonmonotonic cycle. *)
let stratify p =
  let preds = Program.predicates p in
  let n = List.length preds in
  let edges = dependency_edges p in
  let strata = ref (List.fold_left (fun m q -> SM.add q 0 m) SM.empty preds) in
  let changed = ref true in
  let overflow = ref false in
  let rounds = ref 0 in
  while !changed && not !overflow do
    changed := false;
    incr rounds;
    List.iter
      (fun { from_pred; to_pred; nonmono } ->
        let sb = SM.find to_pred !strata in
        let needed = if nonmono then sb + 1 else sb in
        let sh = SM.find from_pred !strata in
        if sh < needed then begin
          strata := SM.add from_pred needed !strata;
          if needed > n then overflow := true;
          changed := true
        end)
      edges
  done;
  if !overflow then begin
    (* Recover a witness cycle: walk nonmono edges among predicates with
       maximal strata. *)
    let high =
      SM.fold (fun q s acc -> if s > n then q :: acc else acc) !strata []
    in
    Unstratified (List.sort String.compare high)
  end
  else begin
    let max_stratum = SM.fold (fun _ s acc -> max s acc) !strata 0 in
    let buckets = Array.make (max_stratum + 1) [] in
    List.iter
      (fun q ->
        let s = SM.find q !strata in
        buckets.(s) <- q :: buckets.(s))
      preds;
    Stratified
      (Array.to_list buckets
      |> List.map (List.sort String.compare)
      |> List.filter (fun b -> b <> []))
  end

let is_stratified p =
  match stratify p with Stratified _ -> true | Unstratified _ -> false

let rules_by_stratum p =
  match stratify p with
  | Unstratified cycle -> Error cycle
  | Stratified strata ->
    let stratum_of =
      List.concat (List.mapi (fun i qs -> List.map (fun q -> (q, i)) qs) strata)
      |> List.to_seq |> Hashtbl.of_seq
    in
    let nb = List.length strata in
    let buckets = Array.make (max nb 1) [] in
    List.iter
      (fun r ->
        let s =
          match Hashtbl.find_opt stratum_of (Rule.head_pred r) with
          | Some s -> s
          | None -> 0
        in
        buckets.(s) <- r :: buckets.(s))
      (Program.rules p);
    Ok (Array.to_list buckets |> List.map List.rev)
