(** Ground tuples: the rows stored in extensional and intensional
    relations. A tuple is a list of ground terms. *)

type t = Logic.Term.t list

val is_ground : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
