(** Ground tuples: the rows stored in extensional and intensional
    relations. The wire-level representation stays a list of ground
    terms; relations store {!Packed} rows that cache one intern id per
    column ({!Logic.Term.id}) plus a combined hash, so the join kernel
    compares, hashes and probes rows on ints. *)

type t = Logic.Term.t list

val is_ground : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Interned array rows. Construction interns every column; raises
    [Invalid_argument] on non-ground columns. *)
module Packed : sig
  type t

  val of_list : Logic.Term.t list -> t

  val of_array : Logic.Term.t array -> t

  val of_parts : Logic.Term.t array -> int array -> t
  (** [of_parts terms ids] — kernel fast path. [ids.(i)] must be the
      intern id of [terms.(i)] where known, or -1 to let the
      constructor intern it. Takes ownership of both arrays. *)

  val probe : Logic.Term.t list -> t option
  (** Like {!of_list} but without interning: [None] when some column
      was never interned — no stored row can equal such a probe. *)

  val to_list : t -> Logic.Term.t list
  val arity : t -> int

  val column : t -> int -> Logic.Term.t
  (** O(1) positional access (raises on out-of-range). *)

  val column_id : t -> int -> int
  (** The cached intern id of a column. *)

  val hash : t -> int
  val equal : t -> t -> bool
  (** Id-based equality: int-array comparison, no structural walk. *)
end

(** Mutable hash set of packed rows keyed by their cached id-key (the
    replacement for the former balanced-tree [Tuple.Set]). *)
module Hashset : sig
  type t

  val create : int -> t
  val cardinal : t -> int
  val is_empty : t -> bool
  val mem : t -> Packed.t -> bool

  val find : t -> Packed.t -> Packed.t option
  (** The canonical stored row equal to the probe, if any — callers use
      it for physical-equality bucket pruning. *)

  val add : t -> Packed.t -> bool
  (** [true] if the row was new. *)

  val add_new : t -> Packed.t -> unit
  (** Insert without the membership walk — only for bulk loads whose
      caller guarantees the row is absent (a deduplicated checkpoint
      frame). Inserting a duplicate breaks the set invariant. *)

  val remove : t -> Packed.t -> bool
  (** [true] if the row was present. *)

  val iter : (Packed.t -> unit) -> t -> unit
  val fold : (Packed.t -> 'a -> 'a) -> t -> 'a -> 'a
  val copy : t -> t
end
