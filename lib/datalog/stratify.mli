(** Predicate-level stratification.

    A program is stratified when no predicate depends on itself through
    negation or aggregation. Stratified programs are evaluated stratum
    by stratum; non-stratified programs fall back to the well-founded
    semantics ({!Wellfounded}), which is the semantics the paper
    requires of the GCM rule language (Section 3, (SEM)). *)

type edge = {
  from_pred : string;  (** the head predicate *)
  to_pred : string;    (** a predicate its body reads *)
  nonmono : bool;      (** read through negation or aggregation *)
}

val dependency_edges : Program.t -> edge list

type outcome =
  | Stratified of string list list
      (** predicate strata, bottom (stratum 0) first; every predicate of
          the program appears in exactly one stratum *)
  | Unstratified of string list
      (** a cycle of predicates through at least one nonmonotonic edge *)

val stratify : Program.t -> outcome

val is_stratified : Program.t -> bool

val rules_by_stratum :
  Program.t -> (Logic.Rule.t list list, string list) result
(** Rules grouped by the stratum of their head predicate, bottom first;
    [Error cycle] when the program is not stratified. *)
