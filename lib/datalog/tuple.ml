type t = Logic.Term.t list

let is_ground = List.for_all Logic.Term.is_ground
let compare = Logic.Term.compare_list
let equal t1 t2 = compare t1 t2 = 0

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Logic.Term.pp)
    t

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
