module Term = Logic.Term

type t = Term.t list

let is_ground = List.for_all Term.is_ground
let compare = Term.compare_list
let equal t1 t2 = compare t1 t2 = 0

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Term.pp)
    t

(* ------------------------------------------------------------------ *)
(* Packed rows: the storage representation inside relations. Columns
   are an array (O(1) positional access for index maintenance) and each
   row caches the intern ids of its columns plus a combined hash, so
   set membership, index probes and removal all run on ints. *)

module Packed = struct
  type row = { terms : Term.t array; key : int array; hash : int }
  type t = row

  let hash_key key =
    Array.fold_left (fun h k -> (h * 1000003) + k + 1) (Array.length key) key
    land max_int

  let of_array terms =
    let key = Array.map Term.id terms in
    { terms; key; hash = hash_key key }

  let of_list l = of_array (Array.of_list l)

  (* Kernel fast path: [ids.(i)] is the intern id of [terms.(i)] where
     the caller already knows it, or -1 to compute it here. Takes
     ownership of both arrays ([ids] becomes the row's key in place). *)
  let of_parts terms ids =
    let n = Array.length terms in
    for i = 0 to n - 1 do
      if ids.(i) < 0 then ids.(i) <- Term.id terms.(i)
    done;
    { terms; key = ids; hash = hash_key ids }

  (* Build a probe row without interning: [None] when some column has
     never been interned, in which case no stored row can equal it. *)
  let probe l =
    let terms = Array.of_list l in
    let n = Array.length terms in
    let key = Array.make n 0 in
    let rec go i =
      if i = n then Some { terms; key; hash = hash_key key }
      else
        match Term.find_id terms.(i) with
        | Some k ->
          key.(i) <- k;
          go (i + 1)
        | None -> None
    in
    go 0
  let to_list p = Array.to_list p.terms
  let arity p = Array.length p.terms
  let column p i = p.terms.(i)
  let column_id p i = p.key.(i)
  let hash p = p.hash

  let equal p q =
    p.hash = q.hash && p.key = q.key (* structural int-array comparison *)
end

(* ------------------------------------------------------------------ *)
(* Id-keyed hash set of packed rows. Rows are mapped to themselves so
   [find] returns the canonical stored row, which relations use for
   physical-equality removal from index buckets. *)

module Hashset = struct
  module H = Hashtbl.Make (struct
    type t = Packed.t

    let equal = Packed.equal
    let hash = Packed.hash
  end)

  type t = Packed.t H.t

  let create n : t = H.create n
  let cardinal = H.length
  let is_empty s = H.length s = 0
  let mem s p = H.mem s p
  let find s p = H.find_opt s p

  (* One bucket walk, not two: keys are unique, so a plain [H.add]
     after a failed find cannot create a duplicate binding. *)
  let add s p =
    match H.find_opt s p with
    | Some _ -> false
    | None ->
      H.add s p p;
      true

  (* No walk at all: the caller guarantees [p] is absent (bulk load of
     an already-deduplicated row set). *)
  let add_new s p = H.add s p p

  let remove s p =
    if H.mem s p then begin
      H.remove s p;
      true
    end
    else false

  let iter f s = H.iter (fun _ p -> f p) s
  let fold f s init = H.fold (fun _ p acc -> f p acc) s init
  let copy = H.copy
end
