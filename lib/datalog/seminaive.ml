module Atom = Logic.Atom
module Rule = Logic.Rule

type outcome = { rounds : int; derived : int; skolems_suppressed : int }

let too_deep max_term_depth (a : Atom.t) =
  List.exists (fun t -> Logic.Term.depth t > max_term_depth) a.Atom.args

(* Interpreted path: the differential-testing oracle. Heads come back
   as atoms and are re-packed by [Database.add_fact]. *)
let run_interpreted ?stats ~max_term_depth ~max_rounds ~neg rules db =
  let derived = ref 0 in
  let suppressed = ref 0 in
  let absorb ~into heads =
    List.iter
      (fun a ->
        if too_deep max_term_depth a then incr suppressed
        else if Database.add_fact db a then begin
          incr derived;
          ignore (Database.add_fact into a)
        end)
      heads
  in
  (* Round 1: full evaluation to seed the delta. Rules whose bodies read
     only extensional predicates fire here and never again. *)
  let delta0 = Database.create () in
  List.iter (fun r -> absorb ~into:delta0 (Eval.derive ?stats ~db ~neg r)) rules;
  let rec loop rounds delta =
    if Database.cardinal delta = 0 then rounds
    else begin
      if rounds >= max_rounds then
        failwith "Seminaive.run: max_rounds exceeded (diverging program?)";
      let next = Database.create () in
      List.iter
        (fun r ->
          List.iter
            (fun i ->
              absorb ~into:next
                (Eval.derive ?stats ~db ~neg ~focus:(i, delta) r))
            (Eval.positive_positions r))
        rules;
      loop (rounds + 1) next
    end
  in
  let rounds = loop 1 delta0 in
  { rounds; derived = !derived; skolems_suppressed = !suppressed }

(* Compiled path: rule bodies run through cached {!Plan}s and heads
   arrive as packed rows with their intern ids already cached, so
   absorbing a row into the model re-interns nothing. Rows are buffered
   per derive call (never streamed), so a rule scanning its own head
   predicate cannot observe a relation mutating under its iteration.

   Each round's delta is a per-predicate list of rows, not a database:
   a row enters the delta exactly when its insertion into the model
   succeeded, so the delta needs no deduplication of its own — and the
   focus scan is a full scan either way (see [Plan]), so losing the
   hash set costs nothing. *)
let run_compiled ?stats ?pool ~max_term_depth ~max_rounds ~neg rules db =
  let derived = ref 0 in
  let suppressed = ref 0 in
  let absorb ~(into : (string, Tuple.Packed.t list ref) Hashtbl.t) pred rel
      (rows, supp) =
    suppressed := !suppressed + supp;
    let fresh =
      List.filter
        (fun row ->
          if Relation.add_packed rel row then begin
            incr derived;
            true
          end
          else false)
        rows
    in
    (* only touch the delta table when something was new: an
       all-duplicate batch must not leave an empty bucket behind (the
       round loop treats a non-empty table as "one more round") *)
    if fresh <> [] then begin
      let bucket =
        match Hashtbl.find_opt into pred with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.add into pred b;
          b
      in
      bucket := List.rev_append fresh !bucket
    end
  in
  let run_plan ?delta_rows plan =
    Plan.run_rows ?stats ~max_term_depth ~db ~neg ?delta_rows plan
  in
  (* Resolve plans and head relations once up front — the round loop
     must not pay the plan-cache lookup (which hashes the whole rule)
     or the predicate-name lookup per rule per round. *)
  let head_rel r = Database.relation db (Rule.head_pred r) in
  let seed_plans =
    List.map
      (fun r -> (Rule.head_pred r, head_rel r, Plan.lookup ?stats r ~focus:None))
      rules
  in
  let delta_plans =
    List.concat_map
      (fun r ->
        List.map
          (fun i ->
            let plan = Plan.lookup ?stats r ~focus:(Some i) in
            (* self-reading plans are buffered, not streamed: streamed
               emissions would be visible to the plan's own later
               probes, making results depend on whether the execution
               was partitioned across domains (see Parexec) *)
            let stream_ok =
              Plan.streamable plan && not (Plan.reads_own_head plan)
            in
            ( Rule.head_pred r,
              head_rel r,
              Plan.focus_pred plan,
              stream_ok,
              plan ))
          (Eval.positive_positions r))
      rules
  in
  let delta0 = Hashtbl.create 16 in
  List.iter
    (fun (pred, rel, plan) -> absorb ~into:delta0 pred rel (run_plan plan))
    seed_plans;
  let rec loop rounds delta =
    if Hashtbl.length delta = 0 then rounds
    else begin
      if rounds >= max_rounds then
        failwith "Seminaive.run: max_rounds exceeded (diverging program?)";
      let next = Hashtbl.create 16 in
      List.iter
        (fun (pred, rel, focus_pred, stream_ok, plan) ->
          let rows =
            match focus_pred with
            | None -> Some []
            | Some fp -> (
              match Hashtbl.find_opt delta fp with
              | Some b -> Some !b
              | None -> None)
          in
          (* no delta rows for the focus predicate: the plan cannot
             fire this round, skip the execution outright *)
          match rows with
          | None -> ()
          | Some delta_rows -> (
            match Parexec.eligible ~pool plan delta_rows with
            | Some pool ->
              absorb ~into:next pred rel
                (Parexec.run_delta ?stats ~pool ~max_term_depth ~db ~neg plan
                   ~delta_rows)
            | None ->
            if stream_ok then begin
              (* stream rows into the model as they are derived — no
                 intermediate buffer; the bucket is resolved on the
                 first genuinely new row so all-duplicate executions
                 leave the delta table untouched *)
              let bucket = ref None in
              let supp =
                Plan.run_stream ?stats ~max_term_depth ~db ~neg ~delta_rows
                  plan ~emit:(fun row ->
                    if Relation.add_packed rel row then begin
                      incr derived;
                      let b =
                        match !bucket with
                        | Some b -> b
                        | None ->
                          let b =
                            match Hashtbl.find_opt next pred with
                            | Some b -> b
                            | None ->
                              let b = ref [] in
                              Hashtbl.add next pred b;
                              b
                          in
                          bucket := Some b;
                          b
                      in
                      b := row :: !b
                    end)
              in
              suppressed := !suppressed + supp
            end
            else absorb ~into:next pred rel (run_plan ~delta_rows plan)))
        delta_plans;
      loop (rounds + 1) next
    end
  in
  let rounds = loop 1 delta0 in
  { rounds; derived = !derived; skolems_suppressed = !suppressed }

let run ?stats ?pool ?(compiled = true) ?(max_term_depth = 8)
    ?(max_rounds = 100_000) ~neg rules db =
  if compiled then
    run_compiled ?stats ?pool ~max_term_depth ~max_rounds ~neg rules db
  else run_interpreted ?stats ~max_term_depth ~max_rounds ~neg rules db
