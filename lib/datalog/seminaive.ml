module Atom = Logic.Atom

type outcome = { rounds : int; derived : int; skolems_suppressed : int }

let too_deep max_term_depth (a : Atom.t) =
  List.exists (fun t -> Logic.Term.depth t > max_term_depth) a.Atom.args

let run ?stats ?(max_term_depth = 8) ?(max_rounds = 100_000) ~neg rules db =
  let derived = ref 0 in
  let suppressed = ref 0 in
  let absorb ~into heads =
    List.iter
      (fun a ->
        if too_deep max_term_depth a then incr suppressed
        else if Database.add_fact db a then begin
          incr derived;
          ignore (Database.add_fact into a)
        end)
      heads
  in
  (* Round 1: full evaluation to seed the delta. Rules whose bodies read
     only extensional predicates fire here and never again. *)
  let delta0 = Database.create () in
  List.iter (fun r -> absorb ~into:delta0 (Eval.derive ?stats ~db ~neg r)) rules;
  let rec loop rounds delta =
    if Database.cardinal delta = 0 then rounds
    else begin
      if rounds >= max_rounds then
        failwith "Seminaive.run: max_rounds exceeded (diverging program?)";
      let next = Database.create () in
      List.iter
        (fun r ->
          List.iter
            (fun i ->
              absorb ~into:next
                (Eval.derive ?stats ~db ~neg ~focus:(i, delta) r))
            (Eval.positive_positions r))
        rules;
      loop (rounds + 1) next
    end
  in
  let rounds = loop 1 delta0 in
  { rounds; derived = !derived; skolems_suppressed = !suppressed }
