module Term = Logic.Term
module Atom = Logic.Atom

type entry = { additions : Atom.t list; deletions : Atom.t list }

let magic = "KINDWAL1"
let k_batch = 1
let k_gen = 2

(* term tags — WAL batches are small, so terms are encoded inline and
   recursively rather than through a table like the checkpoint's *)
let t_sym = 0
let t_str = 1
let t_int = 2
let t_float = 3
let t_bool = 4
let t_app = 5
let t_var = 6

let rec enc_term e (t : Term.t) =
  match t with
  | Term.Const (Term.Sym s) ->
    Codec.Enc.u8 e t_sym;
    Codec.Enc.str e s
  | Term.Const (Term.Str s) ->
    Codec.Enc.u8 e t_str;
    Codec.Enc.str e s
  | Term.Const (Term.Int n) ->
    Codec.Enc.u8 e t_int;
    Codec.Enc.i64 e n
  | Term.Const (Term.Float x) ->
    Codec.Enc.u8 e t_float;
    Codec.Enc.f64 e x
  | Term.Const (Term.Bool b) ->
    Codec.Enc.u8 e t_bool;
    Codec.Enc.bool e b
  | Term.Var x ->
    Codec.Enc.u8 e t_var;
    Codec.Enc.str e x
  | Term.App (f, args) ->
    Codec.Enc.u8 e t_app;
    Codec.Enc.str e f;
    Codec.Enc.u32 e (List.length args);
    List.iter (enc_term e) args

let rec dec_term d =
  let tag = Codec.Dec.u8 d in
  if tag = t_sym then Term.sym (Codec.Dec.str d)
  else if tag = t_str then Term.str (Codec.Dec.str d)
  else if tag = t_int then Term.int (Codec.Dec.i64 d)
  else if tag = t_float then Term.float (Codec.Dec.f64 d)
  else if tag = t_bool then Term.bool (Codec.Dec.bool d)
  else if tag = t_var then Term.var (Codec.Dec.str d)
  else if tag = t_app then begin
    let f = Codec.Dec.str d in
    let argc = Codec.Dec.u32 d in
    if argc = 0 then raise (Codec.Dec.Corrupt "wal: nullary app");
    Term.app f (List.init argc (fun _ -> dec_term d))
  end
  else raise (Codec.Dec.Corrupt (Printf.sprintf "wal: term tag %d" tag))

let enc_atom e (a : Atom.t) =
  Codec.Enc.str e a.Atom.pred;
  Codec.Enc.u32 e (List.length a.Atom.args);
  List.iter (enc_term e) a.Atom.args

let dec_atom d =
  let pred = Codec.Dec.str d in
  let argc = Codec.Dec.u32 d in
  Atom.make pred (List.init argc (fun _ -> dec_term d))

let encode_entry { additions; deletions } =
  let e = Codec.Enc.create () in
  Codec.Enc.u32 e (List.length additions);
  List.iter (enc_atom e) additions;
  Codec.Enc.u32 e (List.length deletions);
  List.iter (enc_atom e) deletions;
  Codec.encode_frame { Codec.kind = k_batch; payload = Codec.Enc.contents e }

let decode_entry payload =
  let d = Codec.Dec.of_string payload in
  let n_add = Codec.Dec.u32 d in
  let additions = List.init n_add (fun _ -> dec_atom d) in
  let n_del = Codec.Dec.u32 d in
  let deletions = List.init n_del (fun _ -> dec_atom d) in
  { additions; deletions }

(* ------------------------------------------------------------------ *)
(* The generation frame                                                *)

(* The checkpoint and the log it may replay are paired by a generation
   number: {!reset} stamps the log with the generation of the
   checkpoint that subsumed it, and recovery replays entries only when
   the two match. A crash between a checkpoint write and the log reset
   leaves a mismatched pair — the fingerprint that the surviving log
   belongs to the {e previous} checkpoint and must not be replayed over
   the new one. *)

let gen_frame gen =
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e gen;
  Codec.encode_frame { Codec.kind = k_gen; payload = Codec.Enc.contents e }

(* last one wins; a log without a generation frame reads as 0, which a
   stamped checkpoint (generation >= 1) never pairs with *)
let gen_of_frames frames =
  List.fold_left
    (fun acc { Codec.kind; payload } ->
      if kind = k_gen then Codec.Dec.i64 (Codec.Dec.of_string payload) else acc)
    0 frames

(* ------------------------------------------------------------------ *)
(* The append handle                                                   *)

type t = {
  fs : Codec.fs;
  path : string;
  gen : int;
  mutable sink : Codec.sink option;
  mutable bytes : int;
}

let header_bytes = String.length (Codec.file_header ~magic)

let open_log fs ~path =
  let create () =
    Codec.write_file_atomic fs ~path (Codec.file_header ~magic);
    { fs; path; gen = 0; sink = None; bytes = header_bytes }
  in
  match fs.Codec.read path with
  | None -> create ()
  | Some s when String.length s < header_bytes ->
    (* torn during creation: nothing durable yet *)
    create ()
  | Some s -> (
    match Codec.decode_file ~magic s with
    | Error e -> failwith (Printf.sprintf "Wal.open_log: %s: %s" path e)
    | Ok (frames, tail) -> (
      let gen =
        try gen_of_frames frames
        with Codec.Dec.Corrupt m ->
          failwith (Printf.sprintf "Wal.open_log: %s: %s" path m)
      in
      match tail with
      | Codec.Clean ->
        { fs; path; gen; sink = None; bytes = String.length s }
      | Codec.Torn { at; _ } ->
        (* Repair the tear BEFORE accepting appends. The torn bytes are
           a batch whose append barrier never completed, so dropping
           them is the pre-batch state; but appending BEHIND them would
           strand every subsequent fsync'd batch past a tear the reader
           stops at — a second crash would then "recover" to a state
           missing acknowledged batches. *)
        Codec.write_file_atomic fs ~path (String.sub s 0 at);
        { fs; path; gen; sink = None; bytes = at }))

let sink_of t =
  match t.sink with
  | Some s -> s
  | None ->
    let s = t.fs.Codec.sink ~append:true t.path in
    t.sink <- Some s;
    s

let append t entry =
  let image = encode_entry entry in
  let s = sink_of t in
  s.Codec.write image;
  s.Codec.flush ();
  t.bytes <- t.bytes + String.length image

let bytes t = t.bytes
let gen t = t.gen

let close t =
  match t.sink with
  | Some s ->
    s.Codec.close ();
    t.sink <- None
  | None -> ()

let replay fs ~path =
  match fs.Codec.read path with
  | None -> Ok (0, [], Codec.Clean)
  | Some s -> (
    match Codec.decode_file ~magic s with
    | Error e -> Error ("wal: " ^ e)
    | Ok (frames, tail) -> (
      try
        Ok
          ( gen_of_frames frames,
            List.filter_map
              (fun { Codec.kind; payload } ->
                if kind = k_batch then Some (decode_entry payload) else None)
              frames,
            tail )
      with Codec.Dec.Corrupt msg -> Error ("wal: " ^ msg)))

let generation fs ~path =
  match fs.Codec.read path with
  | None -> 0
  | Some s -> (
    match Codec.decode_file ~magic s with
    | Error _ -> 0
    | Ok (frames, _) -> ( try gen_of_frames frames with Codec.Dec.Corrupt _ -> 0))

let reset fs ~path ~gen =
  Codec.write_file_atomic fs ~path (Codec.file_header ~magic ^ gen_frame gen)

(* The materialized model is a function of the final base database, so
   a log suffix can be replayed as ONE maintenance batch instead of one
   per entry: for every fact the chronologically last operation wins.
   Result order follows first appearance, so coalescing is
   deterministic. Within a single entry deletions apply before
   additions ({!Maintain.apply}: a fact listed on both sides ends up
   present) — deletions are recorded first here so the addition
   overwrites, matching what entry-by-entry replay produces. *)
let coalesce entries =
  let last = Hashtbl.create 64 in
  List.iter
    (fun e ->
      List.iter (fun a -> Hashtbl.replace last a false) e.deletions;
      List.iter (fun a -> Hashtbl.replace last a true) e.additions)
    entries;
  let seen = Hashtbl.create 64 in
  let adds = ref [] and dels = ref [] in
  List.iter
    (fun e ->
      List.iter
        (fun a ->
          if not (Hashtbl.mem seen a) then begin
            Hashtbl.add seen a ();
            if Hashtbl.find last a then adds := a :: !adds
            else dels := a :: !dels
          end)
        (e.additions @ e.deletions))
    entries;
  { additions = List.rev !adds; deletions = List.rev !dels }
